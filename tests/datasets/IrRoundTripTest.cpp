//===- IrRoundTripTest.cpp - parse(print(M)) re-prints identically ----------===//
//
// The textual IR round-trip property, checked mechanically over every
// dataset generator instead of hand-picked samples: for each module M
// the corpus produces, print(M) parses back, the reparse re-prints to
// the identical text (print o parse is the identity on printed
// modules), and the reparsed module passes the verifier. One
// parametrized suite; adding a generator is adding a corpus entry.
//
//===----------------------------------------------------------------------===//

#include "datasets/Dataset.h"
#include "datasets/Models.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

using namespace mlirrl;

namespace {

struct Corpus {
  const char *Name;
  std::vector<Module> (*Build)();
};

std::vector<Module> dnnOperators() {
  Rng R(11);
  std::vector<Module> Modules =
      generateDnnOperatorDataset(R, DnnDatasetCounts::scaled(0.02));
  for (OperatorBenchmark &B : makeOperatorBenchmarks())
    Modules.push_back(std::move(B.M));
  return Modules;
}

std::vector<Module> evaluationModels() {
  return {makeResNet18(), makeVgg16(), makeMobileNetV2()};
}

std::vector<Module> lqcdKernels() {
  Rng R(12);
  return generateLqcdDataset(R, 12);
}

std::vector<Module> operatorSequences() {
  Rng R(13);
  return generateSequenceDataset(R, 16);
}

std::vector<Module> assembledTrainingSet() {
  return buildTrainingDataset(DatasetConfig::scaled(0.01));
}

class IrRoundTripFixture : public ::testing::TestWithParam<Corpus> {};

} // namespace

TEST_P(IrRoundTripFixture, PrintParsePrintIsIdentityAndVerifies) {
  std::vector<Module> Corpus = GetParam().Build();
  ASSERT_FALSE(Corpus.empty());
  for (const Module &M : Corpus) {
    std::string First = printModule(M);
    Expected<Module> Reparsed = parseModule(First);
    ASSERT_TRUE(Reparsed.hasValue())
        << M.getName() << ": " << Reparsed.getError() << "\n" << First;
    EXPECT_EQ(printModule(*Reparsed), First) << M.getName();
    std::string Error;
    EXPECT_TRUE(verifyModule(*Reparsed, Error)) << M.getName() << ": "
                                                << Error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatasetGenerators, IrRoundTripFixture,
    ::testing::Values(Corpus{"DnnOps", dnnOperators},
                      Corpus{"Models", evaluationModels},
                      Corpus{"Lqcd", lqcdKernels},
                      Corpus{"Sequences", operatorSequences},
                      Corpus{"Assembled", assembledTrainingSet}),
    [](const ::testing::TestParamInfo<Corpus> &Info) {
      return Info.param.Name;
    });
