//===- DatasetsTest.cpp - Tests for dataset generators ----------------------===//

#include "datasets/Dataset.h"
#include "datasets/Models.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

void expectAllVerify(const std::vector<Module> &Modules) {
  std::string Error;
  for (const Module &M : Modules)
    ASSERT_TRUE(verifyModule(M, Error)) << M.getName() << ": " << Error;
}

} // namespace

TEST(DnnDatasetTest, TableTwoCounts) {
  DnnDatasetCounts Counts;
  EXPECT_EQ(Counts.Matmul, 187u);
  EXPECT_EQ(Counts.Conv2d, 278u);
  EXPECT_EQ(Counts.Maxpool, 250u);
  EXPECT_EQ(Counts.Add, 271u);
  EXPECT_EQ(Counts.Relu, 149u);
  EXPECT_EQ(Counts.total(), 1135u);
}

TEST(DnnDatasetTest, GeneratedSamplesVerify) {
  Rng R(1);
  std::vector<Module> Data =
      generateDnnOperatorDataset(R, DnnDatasetCounts::scaled(0.05));
  EXPECT_GT(Data.size(), 30u);
  expectAllVerify(Data);
}

TEST(DnnDatasetTest, GenerationIsSeedDeterministic) {
  Rng A(7), B(7);
  DnnDatasetCounts Counts = DnnDatasetCounts::scaled(0.02);
  std::vector<Module> Da = generateDnnOperatorDataset(A, Counts);
  std::vector<Module> Db = generateDnnOperatorDataset(B, Counts);
  ASSERT_EQ(Da.size(), Db.size());
  for (size_t I = 0; I < Da.size(); ++I)
    EXPECT_EQ(Da[I].getOp(0).getLoopBounds(), Db[I].getOp(0).getLoopBounds());
}

TEST(DnnDatasetTest, OperatorBenchmarksCoverFigureFive) {
  std::vector<OperatorBenchmark> B = makeOperatorBenchmarks();
  std::map<std::string, unsigned> PerOp;
  for (const OperatorBenchmark &Bench : B) {
    ++PerOp[Bench.OperatorName];
    std::string Error;
    EXPECT_TRUE(verifyModule(Bench.M, Error)) << Error;
  }
  for (const char *Op : {"matmul", "conv2d", "maxpool", "add", "relu"})
    EXPECT_GE(PerOp[Op], 3u) << Op;
}

TEST(SequenceDatasetTest, LengthAndChaining) {
  Rng R(3);
  SequenceConfig Config;
  for (int I = 0; I < 20; ++I) {
    Module M = generateOperatorSequence(R, Config);
    EXPECT_EQ(M.getNumOps(), Config.Length);
    std::string Error;
    EXPECT_TRUE(verifyModule(M, Error)) << Error;
    // Each op (after the first) consumes some produced value.
    for (unsigned Op = 1; Op < M.getNumOps(); ++Op)
      EXPECT_FALSE(M.getProducers(Op).empty());
  }
}

TEST(LqcdDatasetTest, KernelsAreDeepWithInnerReductions) {
  Rng R(5);
  for (int I = 0; I < 30; ++I) {
    Module M = generateLqcdKernel(R, 12);
    const LinalgOp &Op = M.getOp(0);
    EXPECT_GE(Op.getNumLoops(), 6u);
    EXPECT_LE(Op.getNumLoops(), 12u);
    EXPECT_GE(Op.getNumReductionLoops(), 2u);
    // Reductions at the inner levels (paper Sec. VI-B).
    EXPECT_EQ(Op.getIterator(Op.getNumLoops() - 1),
              IteratorKind::Reduction);
    std::string Error;
    EXPECT_TRUE(verifyModule(M, Error)) << Error;
  }
}

TEST(LqcdDatasetTest, ApplicationsVerifyAndScaleWithS) {
  for (Module M : {makeDibaryonDibaryon(12), makeDibaryonHexaquark(12),
                   makeHexaquarkHexaquark(8)}) {
    std::string Error;
    EXPECT_TRUE(verifyModule(M, Error)) << M.getName() << ": " << Error;
    EXPECT_GE(M.getNumOps(), 3u);
  }
  EXPECT_GT(makeDibaryonDibaryon(24).getTotalFlops(),
            makeDibaryonDibaryon(12).getTotalFlops());
}

TEST(LqcdDatasetTest, HexaquarkNestsReachNineLevels) {
  Module M = makeHexaquarkHexaquark(12);
  unsigned Deepest = 0;
  for (const LinalgOp &Op : M.getOps())
    Deepest = std::max(Deepest, Op.getNumLoops());
  EXPECT_GE(Deepest, 9u);
}

TEST(ModelsTest, AllModelsVerify) {
  for (Module M : {makeResNet18(), makeVgg16(), makeMobileNetV2()}) {
    std::string Error;
    EXPECT_TRUE(verifyModule(M, Error)) << M.getName() << ": " << Error;
  }
}

TEST(ModelsTest, VggCompositionMatchesArchitecture) {
  std::map<std::string, unsigned> C = getOpComposition(makeVgg16());
  EXPECT_EQ(C["conv2d"], 13u);
  EXPECT_EQ(C["pool"], 5u);
  EXPECT_EQ(C["matmul"], 3u);
  EXPECT_GE(C["unknown"], 1u); // the flatten view
}

TEST(ModelsTest, ResNetCompositionPlausible) {
  std::map<std::string, unsigned> C = getOpComposition(makeResNet18());
  EXPECT_EQ(C["conv2d"], 20u); // 1 stem + 16 block + 3 downsample
  EXPECT_EQ(C["pool"], 1u);
  EXPECT_EQ(C["matmul"], 1u);
  EXPECT_GT(C["generic"], 20u); // BN / ReLU / residual adds
}

TEST(ModelsTest, MobileNetHasDepthwiseStages) {
  Module M = makeMobileNetV2();
  std::map<std::string, unsigned> C = getOpComposition(M);
  EXPECT_GE(C["conv2d"], 30u);
  // Depthwise stages are 6-loop generics with window reductions.
  unsigned Depthwise = 0;
  for (const LinalgOp &Op : M.getOps())
    if (Op.getKind() == OpKind::Generic && Op.getNumLoops() == 6 &&
        Op.getNumReductionLoops() == 2)
      ++Depthwise;
  EXPECT_EQ(Depthwise, 17u); // one per inverted-residual block
}

TEST(ModelsTest, ConvDominatesModelFlops) {
  // The paper's Table III discussion: matmul/conv kernels are the
  // bottleneck of the models.
  for (Module M : {makeResNet18(), makeVgg16()}) {
    int64_t ConvFlops = 0, Total = 0;
    for (const LinalgOp &Op : M.getOps()) {
      Total += Op.getFlops();
      if (Op.getKind() == OpKind::Conv2D || Op.getKind() == OpKind::Matmul)
        ConvFlops += Op.getFlops();
    }
    EXPECT_GT(static_cast<double>(ConvFlops) / Total, 0.8);
  }
}

TEST(FullDatasetTest, ScaledAssemblyShufflesAndVerifies) {
  DatasetConfig Config = DatasetConfig::scaled(0.01);
  std::vector<Module> Data = buildTrainingDataset(Config);
  EXPECT_EQ(Data.size(), Config.total());
  expectAllVerify(Data);
}

TEST(FullDatasetTest, PaperScaleCountsAddUp) {
  DatasetConfig Config;
  EXPECT_EQ(Config.total(), 3959u);
}
