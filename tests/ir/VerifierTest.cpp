//===- VerifierTest.cpp - Tests for structural validation -------------------===//

#include "ir/Builder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

Module makeValidMatmul() {
  Module M("ok");
  Builder B(M);
  std::string A = B.declareInput({16, 32});
  std::string Bv = B.declareInput({32, 8});
  B.matmul(A, Bv);
  return M;
}

} // namespace

TEST(VerifierTest, AcceptsValidModule) {
  Module M = makeValidMatmul();
  std::string Error;
  EXPECT_TRUE(verifyModule(M, Error)) << Error;
}

TEST(VerifierTest, RejectsMapDimMismatch) {
  Module M("bad");
  M.addInput("%A", TensorType({8}, ElementType::F32));
  ArithCounts Arith;
  // Map over 2 dims but the op has 1 loop.
  LinalgOp Op("%r", OpKind::Generic, {8}, {IteratorKind::Parallel},
              {OpOperand{"%A", AffineMap::identity(2)}},
              AffineMap::identity(1), Arith);
  M.addOp(std::move(Op), TensorType({8}, ElementType::F32));
  std::string Error;
  EXPECT_FALSE(verifyModule(M, Error));
  EXPECT_NE(Error.find("dims"), std::string::npos);
}

TEST(VerifierTest, RejectsRankMismatch) {
  Module M("bad");
  M.addInput("%A", TensorType({8, 8}, ElementType::F32));
  ArithCounts Arith;
  // Rank-2 tensor accessed through a rank-1 map.
  LinalgOp Op("%r", OpKind::Generic, {8}, {IteratorKind::Parallel},
              {OpOperand{"%A", AffineMap::identity(1)}},
              AffineMap::identity(1), Arith);
  M.addOp(std::move(Op), TensorType({8}, ElementType::F32));
  std::string Error;
  EXPECT_FALSE(verifyModule(M, Error));
  EXPECT_NE(Error.find("rank"), std::string::npos);
}

TEST(VerifierTest, RejectsOutOfBoundsAccess) {
  Module M("bad");
  M.addInput("%A", TensorType({8}, ElementType::F32));
  ArithCounts Arith;
  // d0 + 4 over [0, 8) exceeds extent 8.
  AffineExpr Shifted = AffineExpr::dim(0, 1) + AffineExpr::constant(4, 1);
  LinalgOp Op("%r", OpKind::Generic, {8}, {IteratorKind::Parallel},
              {OpOperand{"%A", AffineMap(1, {Shifted})}},
              AffineMap::identity(1), Arith);
  M.addOp(std::move(Op), TensorType({8}, ElementType::F32));
  std::string Error;
  EXPECT_FALSE(verifyModule(M, Error));
  EXPECT_NE(Error.find("outside"), std::string::npos);
}

TEST(VerifierTest, RejectsReductionInOutputMap) {
  Module M("bad");
  M.addInput("%A", TensorType({8, 8}, ElementType::F32));
  ArithCounts Arith;
  // d1 is a reduction iterator but appears in the output map.
  LinalgOp Op("%r", OpKind::Generic, {8, 8},
              {IteratorKind::Parallel, IteratorKind::Reduction},
              {OpOperand{"%A", AffineMap::identity(2)}},
              AffineMap::identity(2), Arith);
  M.addOp(std::move(Op), TensorType({8, 8}, ElementType::F32));
  std::string Error;
  EXPECT_FALSE(verifyModule(M, Error));
  EXPECT_NE(Error.find("reduction"), std::string::npos);
}

TEST(VerifierTest, AcceptsNegativeCoefficientInBounds) {
  Module M("ok");
  M.addInput("%A", TensorType({8}, ElementType::F32));
  ArithCounts Arith;
  Arith.Add = 1;
  // Reversal access 7 - d0 stays within [0, 8).
  AffineExpr Rev = AffineExpr::constant(7, 1) - AffineExpr::dim(0, 1);
  LinalgOp Op("%r", OpKind::Generic, {8}, {IteratorKind::Parallel},
              {OpOperand{"%A", AffineMap(1, {Rev})}},
              AffineMap::identity(1), Arith);
  M.addOp(std::move(Op), TensorType({8}, ElementType::F32));
  std::string Error;
  EXPECT_TRUE(verifyModule(M, Error)) << Error;
}

TEST(VerifierTest, VerifiesEveryBuilderOpKind) {
  Module M("all");
  Builder B(M);
  std::string X = B.declareInput({2, 8, 16, 16});
  std::string K = B.declareInput({8, 8, 3, 3});
  std::string C = B.conv2d(X, K, 1);
  std::string P = B.poolingMax(C, 2, 2, 2);
  std::string R = B.relu(P);
  std::string S = B.sigmoid(R);
  std::string A2 = B.add(S, S);
  (void)A2;
  std::string Error;
  EXPECT_TRUE(verifyModule(M, Error)) << Error;
}
