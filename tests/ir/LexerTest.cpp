//===- LexerTest.cpp - Tokenizer tests ---------------------------------------===//

#include "ir/Lexer.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

std::vector<Token> lex(const std::string &Source) {
  std::vector<Token> Tokens;
  std::string Error;
  EXPECT_TRUE(tokenize(Source, Tokens, Error)) << Error;
  return Tokens;
}

} // namespace

TEST(LexerTest, EmptyInputYieldsEof) {
  std::vector<Token> Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, WordsIncludeDotsAndDigits) {
  std::vector<Token> Tokens = lex("linalg.matmul 256x1024xf32 d0");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "linalg.matmul");
  EXPECT_EQ(Tokens[1].Text, "256x1024xf32");
  EXPECT_EQ(Tokens[2].Text, "d0");
}

TEST(LexerTest, SsaIdentifiers) {
  std::vector<Token> Tokens = lex("%arg0 = %v1");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::SsaId);
  EXPECT_EQ(Tokens[0].Text, "%arg0");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Equal);
  EXPECT_EQ(Tokens[2].Text, "%v1");
}

TEST(LexerTest, ArrowVsMinus) {
  std::vector<Token> Tokens = lex("-> - >");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Arrow);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Minus);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Greater);
}

TEST(LexerTest, AllPunctuation) {
  std::vector<Token> Tokens = lex("{ } ( ) [ ] < > , : = + * @");
  TokenKind Expected[] = {
      TokenKind::LBrace,   TokenKind::RBrace, TokenKind::LParen,
      TokenKind::RParen,   TokenKind::LBracket, TokenKind::RBracket,
      TokenKind::Less,     TokenKind::Greater, TokenKind::Comma,
      TokenKind::Colon,    TokenKind::Equal,  TokenKind::Plus,
      TokenKind::Star,     TokenKind::At};
  for (size_t I = 0; I < std::size(Expected); ++I)
    EXPECT_EQ(Tokens[I].Kind, Expected[I]) << I;
}

TEST(LexerTest, CommentsSkippedAndLinesTracked) {
  std::vector<Token> Tokens = lex("// comment\nmodule // trailing\n%x");
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Text, "module");
  EXPECT_EQ(Tokens[0].Line, 2u);
  EXPECT_EQ(Tokens[1].Text, "%x");
  EXPECT_EQ(Tokens[1].Line, 3u);
}

TEST(LexerTest, ColumnsTracked) {
  std::vector<Token> Tokens = lex("ab cd");
  EXPECT_EQ(Tokens[0].Col, 1u);
  EXPECT_EQ(Tokens[1].Col, 4u);
}

TEST(LexerTest, RejectsBarePercent) {
  std::vector<Token> Tokens;
  std::string Error;
  EXPECT_FALSE(tokenize("% ", Tokens, Error));
  EXPECT_NE(Error.find("expected name"), std::string::npos);
}

TEST(LexerTest, RejectsUnknownCharacter) {
  std::vector<Token> Tokens;
  std::string Error;
  EXPECT_FALSE(tokenize("module $", Tokens, Error));
  EXPECT_NE(Error.find("unexpected character"), std::string::npos);
}
