//===- ModuleTest.cpp - Tests for use-def queries ---------------------------===//

#include "ir/Builder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

/// x -> relu -> add(with y) chain plus a second reader of the relu.
struct Chain {
  Module M{"chain"};
  std::string X, Y, R, S, T;
  Chain() {
    Builder B(M);
    X = B.declareInput({8, 8});
    Y = B.declareInput({8, 8});
    R = B.relu(X);      // op 0
    S = B.add(R, Y);    // op 1
    T = B.relu(S);      // op 2
  }
};

} // namespace

TEST(ModuleTest, DefiningOps) {
  Chain C;
  EXPECT_EQ(C.M.getDefiningOp(C.X), -1);
  EXPECT_EQ(C.M.getDefiningOp(C.R), 0);
  EXPECT_EQ(C.M.getDefiningOp(C.T), 2);
}

TEST(ModuleTest, ProducersOfConsumer) {
  Chain C;
  EXPECT_EQ(C.M.getProducers(1), (std::vector<unsigned>{0}));
  EXPECT_EQ(C.M.getProducers(0), (std::vector<unsigned>{}));
  EXPECT_EQ(C.M.getLastProducer(2), 1);
  EXPECT_EQ(C.M.getLastProducer(0), -1);
}

TEST(ModuleTest, LastProducerPicksTextuallyClosest) {
  // Consumer reading two produced values: the later one wins (Sec. III).
  Module M("two");
  Builder B(M);
  std::string X = B.declareInput({4, 4});
  std::string P1 = B.relu(X);  // op 0
  std::string P2 = B.relu(X);  // op 1
  B.add(P1, P2);               // op 2
  EXPECT_EQ(M.getLastProducer(2), 1);
}

TEST(ModuleTest, ConsumersAndModuleOutputs) {
  Chain C;
  EXPECT_EQ(C.M.getConsumers(0), (std::vector<unsigned>{1}));
  EXPECT_EQ(C.M.getConsumers(2), (std::vector<unsigned>{}));
  EXPECT_FALSE(C.M.isModuleOutput(0));
  EXPECT_TRUE(C.M.isModuleOutput(2));
}

TEST(ModuleTest, TotalFlopsSumsOps) {
  Chain C;
  int64_t Expected = 0;
  for (const LinalgOp &Op : C.M.getOps())
    Expected += Op.getFlops();
  EXPECT_EQ(C.M.getTotalFlops(), Expected);
  EXPECT_GT(Expected, 0);
}

TEST(ModuleTest, ReplaceOpKeepsName) {
  Chain C;
  LinalgOp Copy = C.M.getOp(0);
  C.M.replaceOp(0, Copy);
  EXPECT_EQ(C.M.getOp(0).getResult(), C.R);
}

TEST(ModuleDeathTest, UndeclaredOperandAborts) {
  Module M;
  ArithCounts Arith;
  LinalgOp Op("%r", OpKind::ReLU, {4}, {IteratorKind::Parallel},
              {OpOperand{"%nope", AffineMap::identity(1)}},
              AffineMap::identity(1), Arith);
  EXPECT_DEATH(M.addOp(std::move(Op), TensorType({4}, ElementType::F32)),
               "undeclared");
}
