//===- BuilderTest.cpp - Tests for named-op construction --------------------===//

#include "ir/Builder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

class BuilderTest : public ::testing::Test {
protected:
  Module M{"test"};
  Builder B{M};

  void expectVerifies() {
    std::string Error;
    EXPECT_TRUE(verifyModule(M, Error)) << Error;
  }
};

} // namespace

TEST_F(BuilderTest, MatmulShapesAndMaps) {
  std::string A = B.declareInput({256, 1024});
  std::string Bv = B.declareInput({1024, 512});
  std::string C = B.matmul(A, Bv);

  const LinalgOp &Op = M.getOp(0);
  EXPECT_EQ(Op.getKind(), OpKind::Matmul);
  EXPECT_EQ(Op.getLoopBounds(), (std::vector<int64_t>{256, 512, 1024}));
  EXPECT_EQ(Op.getIterator(2), IteratorKind::Reduction);
  EXPECT_EQ(M.getValue(C).Type.getShape(), (std::vector<int64_t>{256, 512}));
  EXPECT_EQ(Op.getFlops(), 2ll * 256 * 512 * 1024);
  expectVerifies();
}

TEST_F(BuilderTest, Conv2dDomainAndAccess) {
  std::string In = B.declareInput({1, 3, 32, 32});
  std::string Ker = B.declareInput({16, 3, 3, 3});
  std::string Out = B.conv2d(In, Ker, /*Stride=*/1);

  const LinalgOp &Op = M.getOp(0);
  EXPECT_EQ(Op.getKind(), OpKind::Conv2D);
  // (n, f, oh, ow, c, kh, kw)
  EXPECT_EQ(Op.getLoopBounds(),
            (std::vector<int64_t>{1, 16, 30, 30, 3, 3, 3}));
  EXPECT_EQ(Op.getNumParallelLoops(), 4u);
  EXPECT_EQ(M.getValue(Out).Type.getShape(),
            (std::vector<int64_t>{1, 16, 30, 30}));
  // Input indexed at (n, c, oh + kh, ow + kw).
  const AffineExpr &HExpr = Op.getInput(0).Map.getResult(2);
  EXPECT_EQ(HExpr.getCoeff(2), 1);
  EXPECT_EQ(HExpr.getCoeff(5), 1);
  expectVerifies();
}

TEST_F(BuilderTest, Conv2dStrideTwo) {
  std::string In = B.declareInput({1, 8, 33, 33});
  std::string Ker = B.declareInput({8, 8, 3, 3});
  B.conv2d(In, Ker, /*Stride=*/2);
  const LinalgOp &Op = M.getOp(0);
  EXPECT_EQ(Op.getLoopBound(2), 16); // (33 - 3) / 2 + 1
  const AffineExpr &HExpr = Op.getInput(0).Map.getResult(2);
  EXPECT_EQ(HExpr.getCoeff(2), 2);
  expectVerifies();
}

TEST_F(BuilderTest, PoolingMaxWindow) {
  std::string In = B.declareInput({1, 16, 32, 32});
  std::string Out = B.poolingMax(In, 2, 2, 2);
  const LinalgOp &Op = M.getOp(0);
  EXPECT_EQ(Op.getKind(), OpKind::PoolingMax);
  EXPECT_EQ(Op.getLoopBounds(), (std::vector<int64_t>{1, 16, 16, 16, 2, 2}));
  EXPECT_EQ(Op.getArith().Max, 1);
  EXPECT_EQ(M.getValue(Out).Type.getShape(),
            (std::vector<int64_t>{1, 16, 16, 16}));
  expectVerifies();
}

TEST_F(BuilderTest, AddAndReluElementwise) {
  std::string X = B.declareInput({64, 128});
  std::string Y = B.declareInput({64, 128});
  std::string S = B.add(X, Y);
  std::string R = B.relu(S);

  EXPECT_EQ(M.getOp(0).getKind(), OpKind::Add);
  EXPECT_EQ(M.getOp(1).getKind(), OpKind::ReLU);
  EXPECT_EQ(M.getOp(1).getInput(0).Value, S);
  EXPECT_EQ(M.getValue(R).Type.getShape(), (std::vector<int64_t>{64, 128}));
  EXPECT_EQ(M.getOp(0).getNumReductionLoops(), 0u);
  expectVerifies();
}

TEST_F(BuilderTest, SigmoidArithBody) {
  std::string X = B.declareInput({32});
  B.sigmoid(X);
  const ArithCounts &A = M.getOp(0).getArith();
  EXPECT_EQ(A.Exp, 1);
  EXPECT_EQ(A.Div, 1);
  EXPECT_EQ(A.Add, 1);
  expectVerifies();
}

TEST_F(BuilderTest, GenericOpExplicitMaps) {
  std::string X = B.declareInput({10, 20});
  ArithCounts Arith;
  Arith.Mul = 2;
  std::string R = B.generic(
      OpKind::Generic, {10, 20},
      {IteratorKind::Parallel, IteratorKind::Parallel}, {X},
      {AffineMap::identity(2)}, AffineMap::identity(2), Arith);
  EXPECT_EQ(M.getValue(R).Type.getShape(), (std::vector<int64_t>{10, 20}));
  EXPECT_EQ(M.getOp(0).getFlops(), 2ll * 10 * 20);
  expectVerifies();
}

TEST_F(BuilderTest, FreshNamesAreUnique) {
  std::string A = B.declareInput({4});
  std::string C = B.relu(A);
  std::string D = B.relu(C);
  EXPECT_NE(C, D);
  EXPECT_NE(A, C);
}
