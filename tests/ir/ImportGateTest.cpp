//===- ImportGateTest.cpp - The untrusted-input sanitization gate ---------===//
//
// importModule = size caps -> lexer token cap -> parser with in-flight
// limits -> verifier -> sanitizeModule. Each layer must reject its class
// of hostile input with a diagnostic (and bump the robustness counter),
// and a survivor must be safe for the environment.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Builder.h"
#include "ir/Lexer.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

const char *ValidSource = R"(module @ok {
  %t = tensor<16x16xf32>
  %v = linalg.relu {
    bounds = [16, 16],
    iterators = [parallel, parallel],
    maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
    arith = {max: 1}
  } ins(%t) : tensor<16x16xf32>
})";

std::string relu16(unsigned Index, const std::string &Input) {
  return "  %v" + std::to_string(Index) + " = linalg.relu {\n"
         "    bounds = [16, 16], iterators = [parallel, parallel],\n"
         "    maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],\n"
         "    arith = {max: 1} } ins(" + Input + ") : tensor<16x16xf32>\n";
}

} // namespace

TEST(ImportGateTest, ValidModulePassesAllLayers) {
  Expected<Module> M = importModule(ValidSource);
  ASSERT_TRUE(static_cast<bool>(M)) << M.getError();
  EXPECT_EQ(M->getNumOps(), 1u);
}

TEST(ImportGateTest, RejectionsBumpTheRobustnessCounter) {
  uint64_t Before =
      robustnessCounter(RobustnessEvent::ImportRejected).Misses.load();
  EXPECT_FALSE(static_cast<bool>(importModule("not ir at all")));
  EXPECT_FALSE(static_cast<bool>(importModule("")));
  EXPECT_EQ(robustnessCounter(RobustnessEvent::ImportRejected).Misses.load(),
            Before + 2);
}

TEST(ImportGateTest, SourceByteCap) {
  ImportLimits Limits;
  Limits.MaxSourceBytes = 16;
  Expected<Module> M = importModule(ValidSource, Limits);
  ASSERT_FALSE(static_cast<bool>(M));
  EXPECT_NE(M.getError().find("source"), std::string::npos) << M.getError();
}

TEST(ImportGateTest, LexerTokenCap) {
  std::vector<Token> Tokens;
  std::string Err;
  EXPECT_TRUE(tokenize(ValidSource, Tokens, Err));
  EXPECT_FALSE(tokenize(ValidSource, Tokens, Err, /*MaxTokens=*/10));
  EXPECT_NE(Err.find("token cap"), std::string::npos) << Err;

  ImportLimits Limits;
  Limits.MaxTokens = 10;
  EXPECT_FALSE(static_cast<bool>(importModule(ValidSource, Limits)));
}

TEST(ImportGateTest, OpAndValueCountCaps) {
  std::string Source = "module @many {\n  %t = tensor<16x16xf32>\n";
  std::string In = "%t";
  for (unsigned I = 0; I < 8; ++I) {
    Source += relu16(I, In);
    In = "%v" + std::to_string(I);
  }
  Source += "}\n";
  ASSERT_TRUE(static_cast<bool>(importModule(Source)));

  ImportLimits OpCap;
  OpCap.MaxOps = 4;
  Expected<Module> M = importModule(Source, OpCap);
  ASSERT_FALSE(static_cast<bool>(M));
  EXPECT_NE(M.getError().find("operation"), std::string::npos) << M.getError();

  ImportLimits ValueCap;
  ValueCap.MaxValues = 3;
  EXPECT_FALSE(static_cast<bool>(importModule(Source, ValueCap)));
}

TEST(ImportGateTest, DimensionAndIterationSpaceCaps) {
  // A single dimension over the cap dies in the parser.
  Expected<Module> Huge = importModule(R"(module {
    %t = tensor<99999999x4xf32>
    %v = linalg.relu { bounds = [99999999, 4],
      iterators = [parallel, parallel],
      maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
      arith = {max: 1} } ins(%t) : tensor<99999999x4xf32> })");
  EXPECT_FALSE(static_cast<bool>(Huge));

  // Each dimension under the cap but the product over it dies in the
  // sanitizer (per-dim cap is 2^24, product cap 2^42 < (2^23)^3).
  Expected<Module> Product = importModule(R"(module {
    %a = tensor<8388608x8388608xf32>
    %b = tensor<8388608x8388608xf32>
    %c = linalg.matmul { bounds = [8388608, 8388608, 8388608],
      iterators = [parallel, parallel, reduction],
      maps = [(d0, d1, d2) -> (d0, d2), (d0, d1, d2) -> (d2, d1),
              (d0, d1, d2) -> (d0, d1)],
      arith = {mul: 1, add: 1} } ins(%a, %b)
      : tensor<8388608x8388608xf32> })");
  ASSERT_FALSE(static_cast<bool>(Product));
  EXPECT_NE(Product.getError().find("iteration space"), std::string::npos)
      << Product.getError();
}

TEST(ImportGateTest, AffineTermCap) {
  std::string Expr = "d0";
  for (unsigned I = 0; I < 80; ++I)
    Expr += " + d0";
  std::string Source = "module {\n  %t = tensor<16x16xf32>\n"
                       "  %v = linalg.relu { bounds = [16, 16],\n"
                       "    iterators = [parallel, parallel],\n"
                       "    maps = [(d0, d1) -> (" + Expr + ", d1),\n"
                       "            (d0, d1) -> (d0, d1)],\n"
                       "    arith = {max: 1} } ins(%t) : tensor<16x16xf32> }";
  Expected<Module> M = importModule(Source);
  ASSERT_FALSE(static_cast<bool>(M));
  EXPECT_NE(M.getError().find("term cap"), std::string::npos) << M.getError();
  // Without limits, the same source parses (the accumulated coefficient
  // is legal in generated IR).
  EXPECT_TRUE(static_cast<bool>(parseModule(Source)));
}

TEST(ImportGateTest, SanitizeRejectsDegenerateBounds) {
  // Built modules bypass the parser; sanitizeModule must still reject.
  Module M("built");
  Builder B(M);
  B.relu(B.declareInput({16, 16}));
  ImportLimits Limits;
  std::string Err;
  EXPECT_TRUE(sanitizeModule(M, Limits, Err)) << Err;

  Module Empty("empty");
  EXPECT_FALSE(sanitizeModule(Empty, Limits, Err));
  EXPECT_NE(Err.find("no operations"), std::string::npos) << Err;
}

TEST(ImportGateTest, ZeroAndNegativeBoundsRejected) {
  EXPECT_FALSE(static_cast<bool>(importModule(R"(module {
    %t = tensor<0x4xf32>
    %v = linalg.relu { bounds = [0, 4],
      iterators = [parallel, parallel],
      maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
      arith = {max: 1} } ins(%t) : tensor<0x4xf32> })")));
  EXPECT_FALSE(static_cast<bool>(importModule(R"(module {
    %t = tensor<4x4xf32>
    %v = linalg.relu { bounds = [-1, 4],
      iterators = [parallel, parallel],
      maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
      arith = {max: 1} } ins(%t) : tensor<4x4xf32> })")));
}

TEST(ImportGateTest, OverflowingIntegerLiteralRejected) {
  // Both paths route through support/Args checked parsing now: a tensor
  // dimension past 64 bits is rejected outright (no strtoll
  // saturation), and a bounds literal is diagnosed as not fitting
  // 64 bits.
  Expected<Module> Dim = importModule(R"(module {
    %t = tensor<99999999999999999999x4xf32>
    %v = linalg.relu { bounds = [4, 4],
      iterators = [parallel, parallel],
      maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
      arith = {max: 1} } ins(%t) : tensor<4x4xf32> })");
  ASSERT_FALSE(static_cast<bool>(Dim));
  EXPECT_FALSE(Dim.getError().empty());

  Expected<Module> Bound = importModule(R"(module {
    %t = tensor<4x4xf32>
    %v = linalg.relu { bounds = [99999999999999999999, 4],
      iterators = [parallel, parallel],
      maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
      arith = {max: 1} } ins(%t) : tensor<4x4xf32> })");
  ASSERT_FALSE(static_cast<bool>(Bound));
  EXPECT_NE(Bound.getError().find("64 bits"), std::string::npos)
      << Bound.getError();
}

TEST(ImportGateTest, RedefinedValueRejectedRecoverably) {
  // Module::addOp treats a duplicate result name as a fatal internal
  // bug; hostile text must never reach it. The parser's own symbol
  // table has to catch the redefinition first and surface it as an
  // Expected error.
  Expected<Module> M = importModule(R"(module {
    %t = tensor<16x16xf32>
    %t = tensor<16x16xf32>
    %v = linalg.relu { bounds = [16, 16],
      iterators = [parallel, parallel],
      maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
      arith = {max: 1} } ins(%t) : tensor<16x16xf32> })");
  ASSERT_FALSE(static_cast<bool>(M));
  EXPECT_NE(M.getError().find("redefinition"), std::string::npos)
      << M.getError();
}

TEST(ImportGateTest, UndeclaredOperandRejectedRecoverably) {
  // Same policy for the undeclared-value fatal in Module::addOp: the
  // parser diagnoses the dangling operand recoverably before any op is
  // materialized.
  Expected<Module> M = importModule(R"(module {
    %t = tensor<16x16xf32>
    %v = linalg.relu { bounds = [16, 16],
      iterators = [parallel, parallel],
      maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
      arith = {max: 1} } ins(%ghost) : tensor<16x16xf32> })");
  ASSERT_FALSE(static_cast<bool>(M));
  EXPECT_NE(M.getError().find("undeclared"), std::string::npos)
      << M.getError();
}
