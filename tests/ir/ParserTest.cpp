//===- ParserTest.cpp - Parser / printer round-trip tests -------------------===//

#include "ir/Builder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace mlirrl;

TEST(ParserTest, ParsesMinimalModule) {
  auto M = parseModule("module @m { %A = tensor<4x4xf32> }");
  ASSERT_TRUE(M) << M.getError();
  EXPECT_EQ(M->getName(), "m");
  EXPECT_TRUE(M->hasValue("%A"));
  EXPECT_EQ(M->getValue("%A").Type.getShape(), (std::vector<int64_t>{4, 4}));
}

TEST(ParserTest, ParsesMatmulListingOne) {
  // The paper's Listing 1 matmul in our textual form.
  const char *Source = R"(
    module @listing1 {
      %A = tensor<256x1024xf32>
      %B = tensor<1024x512xf32>
      %C = linalg.matmul {
        bounds = [256, 512, 1024],
        iterators = [parallel, parallel, reduction],
        maps = [(d0, d1, d2) -> (d0, d2),
                (d0, d1, d2) -> (d2, d1),
                (d0, d1, d2) -> (d0, d1)],
        arith = {mul: 1, add: 1}
      } ins(%A, %B) : tensor<256x512xf32>
    }
  )";
  auto M = parseModule(Source);
  ASSERT_TRUE(M) << M.getError();
  ASSERT_EQ(M->getNumOps(), 1u);
  const LinalgOp &Op = M->getOp(0);
  EXPECT_EQ(Op.getKind(), OpKind::Matmul);
  EXPECT_EQ(Op.getLoopBounds(), (std::vector<int64_t>{256, 512, 1024}));
  EXPECT_EQ(Op.getArith().Mul, 1);
  std::string Error;
  EXPECT_TRUE(verifyModule(*M, Error)) << Error;
}

TEST(ParserTest, ParsesAffineArithmetic) {
  const char *Source = R"(
    module {
      %I = tensor<64x64xf32>
      %O = linalg.generic {
        bounds = [31, 31],
        iterators = [parallel, parallel],
        maps = [(d0, d1) -> (2 * d0 + 1, d1 * 2), (d0, d1) -> (d0, d1)],
        arith = {add: 1}
      } ins(%I) : tensor<31x31xf32>
    }
  )";
  auto M = parseModule(Source);
  ASSERT_TRUE(M) << M.getError();
  const AffineExpr &E0 = M->getOp(0).getInput(0).Map.getResult(0);
  EXPECT_EQ(E0.getCoeff(0), 2);
  EXPECT_EQ(E0.getConstant(), 1);
  const AffineExpr &E1 = M->getOp(0).getInput(0).Map.getResult(1);
  EXPECT_EQ(E1.getCoeff(1), 2);
}

TEST(ParserTest, ParsesNegativeCoefficients) {
  const char *Source = R"(
    module {
      %I = tensor<16xf32>
      %O = linalg.generic {
        bounds = [8],
        iterators = [parallel],
        maps = [(d0) -> (15 - d0), (d0) -> (d0)],
        arith = {add: 1}
      } ins(%I) : tensor<8xf32>
    }
  )";
  auto M = parseModule(Source);
  ASSERT_TRUE(M) << M.getError();
  const AffineExpr &E = M->getOp(0).getInput(0).Map.getResult(0);
  EXPECT_EQ(E.getCoeff(0), -1);
  EXPECT_EQ(E.getConstant(), 15);
}

TEST(ParserTest, RoundTripBuilderModules) {
  Module M("roundtrip");
  Builder B(M);
  std::string A = B.declareInput({32, 64});
  std::string Bv = B.declareInput({64, 16});
  std::string C = B.matmul(A, Bv);
  std::string R = B.relu(C);
  std::string In4 = B.declareInput({1, 4, 16, 16});
  std::string Ker = B.declareInput({4, 4, 3, 3});
  B.conv2d(In4, Ker, 1);
  (void)R;

  std::string Printed = printModule(M);
  auto Reparsed = parseModule(Printed);
  ASSERT_TRUE(Reparsed) << Reparsed.getError() << "\n" << Printed;
  EXPECT_EQ(printModule(*Reparsed), Printed);
  EXPECT_EQ(Reparsed->getNumOps(), M.getNumOps());
}

TEST(ParserTest, ErrorOnUnknownOp) {
  auto M = parseModule("module { %x = linalg.bogus {bounds = [1], "
                       "iterators = [parallel], maps = [(d0) -> (d0)]} "
                       "ins() : tensor<1xf32> }");
  ASSERT_FALSE(M);
  EXPECT_NE(M.getError().find("unknown operation"), std::string::npos);
}

TEST(ParserTest, ErrorOnUndeclaredValue) {
  auto M = parseModule("module { %y = linalg.relu {bounds = [4], "
                       "iterators = [parallel], "
                       "maps = [(d0) -> (d0), (d0) -> (d0)], "
                       "arith = {max: 1}} ins(%ghost) : tensor<4xf32> }");
  ASSERT_FALSE(M);
  EXPECT_NE(M.getError().find("undeclared"), std::string::npos);
}

TEST(ParserTest, ErrorOnRedefinition) {
  auto M = parseModule(
      "module { %A = tensor<4xf32> %A = tensor<4xf32> }");
  ASSERT_FALSE(M);
  EXPECT_NE(M.getError().find("redefinition"), std::string::npos);
}

TEST(ParserTest, ErrorCarriesLocation) {
  auto M = parseModule("module {\n  %A = tonsor<4xf32>\n}");
  ASSERT_FALSE(M);
  // Error on line 2.
  EXPECT_NE(M.getError().find("2:"), std::string::npos);
}

TEST(ParserTest, ErrorOnMapArityMismatch) {
  auto M = parseModule("module { %I = tensor<4xf32> "
                       "%y = linalg.relu {bounds = [4], "
                       "iterators = [parallel], maps = [(d0) -> (d0)], "
                       "arith = {max: 1}} ins(%I) : tensor<4xf32> }");
  ASSERT_FALSE(M);
  EXPECT_NE(M.getError().find("one map per input"), std::string::npos);
}

TEST(ParserTest, ErrorOnTrailingInput) {
  auto M = parseModule("module { } garbage");
  ASSERT_FALSE(M);
  EXPECT_NE(M.getError().find("trailing"), std::string::npos);
}

TEST(ParserTest, CommentsAreIgnored) {
  auto M = parseModule("// header comment\nmodule { // trailing\n"
                       "  %A = tensor<4xf32> // decl\n}");
  ASSERT_TRUE(M) << M.getError();
  EXPECT_TRUE(M->hasValue("%A"));
}

TEST(ParserTest, F64ElementType) {
  auto M = parseModule("module { %A = tensor<8x8xf64> }");
  ASSERT_TRUE(M) << M.getError();
  EXPECT_EQ(M->getValue("%A").Type.getElementType(), ElementType::F64);
  EXPECT_EQ(M->getValue("%A").Type.getByteSize(), 8 * 8 * 8);
}
