//===- AffineTest.cpp - Tests for affine expressions and maps --------------===//

#include "ir/AffineExpr.h"
#include "ir/AffineMap.h"

#include <gtest/gtest.h>

using namespace mlirrl;

TEST(AffineExprTest, DimAndConstant) {
  AffineExpr D1 = AffineExpr::dim(1, 3);
  EXPECT_EQ(D1.evaluate({5, 7, 9}), 7);
  AffineExpr C = AffineExpr::constant(4, 3);
  EXPECT_EQ(C.evaluate({5, 7, 9}), 4);
  EXPECT_TRUE(C.isConstantExpr());
  EXPECT_FALSE(D1.isConstantExpr());
}

TEST(AffineExprTest, ArithmeticCombination) {
  // d0 + 2*d1 - 3*d2 + 1 (the paper's Fig. 2 style expression).
  AffineExpr E = AffineExpr::dim(0, 3) + AffineExpr::dim(1, 3) * 2 -
                 AffineExpr::dim(2, 3) * 3 + AffineExpr::constant(1, 3);
  EXPECT_EQ(E.evaluate({1, 2, 3}), 1 + 4 - 9 + 1);
  EXPECT_EQ(E.getCoeff(0), 1);
  EXPECT_EQ(E.getCoeff(1), 2);
  EXPECT_EQ(E.getCoeff(2), -3);
  EXPECT_EQ(E.getConstant(), 1);
}

TEST(AffineExprTest, SingleDimDetection) {
  EXPECT_EQ(AffineExpr::dim(2, 4).getSingleDim(), 2);
  EXPECT_EQ((AffineExpr::dim(2, 4) * 2).getSingleDim(), -1);
  EXPECT_EQ((AffineExpr::dim(0, 4) + AffineExpr::dim(1, 4)).getSingleDim(),
            -1);
  EXPECT_EQ(AffineExpr::constant(0, 4).getSingleDim(), -1);
}

TEST(AffineExprTest, MinMaxOverBox) {
  // 2*d0 - d1 over box [0,4) x [0,3).
  AffineExpr E =
      AffineExpr::dim(0, 2) * 2 - AffineExpr::dim(1, 2);
  EXPECT_EQ(E.maxOverBox({4, 3}), 6);  // d0=3, d1=0
  EXPECT_EQ(E.minOverBox({4, 3}), -2); // d0=0, d1=2
}

TEST(AffineExprTest, PermuteDims) {
  // E = d0 + 3*d2; permutation placing old dim 2 at position 0.
  AffineExpr E = AffineExpr::dim(0, 3) + AffineExpr::dim(2, 3) * 3;
  AffineExpr P = E.permuteDims({2, 0, 1});
  EXPECT_EQ(P.getCoeff(0), 3); // new d0 is old d2
  EXPECT_EQ(P.getCoeff(1), 1); // new d1 is old d0
  EXPECT_EQ(P.getCoeff(2), 0);
}

TEST(AffineExprTest, ToStringForms) {
  EXPECT_EQ(AffineExpr::dim(0, 2).toString(), "d0");
  EXPECT_EQ((AffineExpr::dim(1, 2) * 3).toString(), "3 * d1");
  EXPECT_EQ((AffineExpr::dim(0, 2) - AffineExpr::dim(1, 2)).toString(),
            "d0 - d1");
  EXPECT_EQ(AffineExpr::constant(0, 2).toString(), "0");
  EXPECT_EQ((AffineExpr::constant(1, 2) - AffineExpr::dim(1, 2)).toString(),
            "-d1 + 1");
}

TEST(AffineMapTest, IdentityAndProjection) {
  AffineMap Id = AffineMap::identity(3);
  EXPECT_EQ(Id.getNumResults(), 3u);
  EXPECT_TRUE(Id.isProjectedPermutation());
  AffineMap Proj = AffineMap::projection({0, 2}, 3);
  EXPECT_EQ(Proj.evaluate({4, 5, 6}), (std::vector<int64_t>{4, 6}));
  EXPECT_TRUE(Proj.isProjectedPermutation());
}

TEST(AffineMapTest, NonPermutationDetected) {
  // (d0, d0) repeats a dim; (2*d0) scales.
  AffineMap Repeat(2, {AffineExpr::dim(0, 2), AffineExpr::dim(0, 2)});
  EXPECT_FALSE(Repeat.isProjectedPermutation());
  AffineMap Scaled(2, {AffineExpr::dim(0, 2) * 2});
  EXPECT_FALSE(Scaled.isProjectedPermutation());
}

TEST(AffineMapTest, InvolvesDim) {
  AffineMap Proj = AffineMap::projection({0, 2}, 3);
  EXPECT_TRUE(Proj.involvesDim(0));
  EXPECT_FALSE(Proj.involvesDim(1));
  EXPECT_TRUE(Proj.involvesDim(2));
}

TEST(AffineMapTest, AccessMatrixMatchesPaperExample) {
  // array[d0, d0 + 2*d1 - 3*d2, 1 - d1] (paper Fig. 2).
  AffineExpr R0 = AffineExpr::dim(0, 3);
  AffineExpr R1 = AffineExpr::dim(0, 3) + AffineExpr::dim(1, 3) * 2 -
                  AffineExpr::dim(2, 3) * 3;
  AffineExpr R2 = AffineExpr::constant(1, 3) - AffineExpr::dim(1, 3);
  AffineMap Map(3, {R0, R1, R2});
  auto Matrix = Map.toAccessMatrix();
  ASSERT_EQ(Matrix.size(), 3u);
  EXPECT_EQ(Matrix[0], (std::vector<int64_t>{1, 0, 0, 0}));
  EXPECT_EQ(Matrix[1], (std::vector<int64_t>{1, 2, -3, 0}));
  EXPECT_EQ(Matrix[2], (std::vector<int64_t>{0, -1, 0, 1}));
}

TEST(AffineMapTest, ToStringMatchesMlirSyntax) {
  AffineMap Proj = AffineMap::projection({0, 2}, 3);
  EXPECT_EQ(Proj.toString(), "(d0, d1, d2) -> (d0, d2)");
}

TEST(AffineMapTest, PermuteDimsComposesWithEvaluate) {
  AffineMap Map = AffineMap::projection({0, 2}, 3);
  // New iteration order: (d2, d0, d1) at position (0, 1, 2).
  AffineMap Permuted = Map.permuteDims({2, 0, 1});
  // Evaluating the permuted map at a permuted point must match.
  std::vector<int64_t> Point = {4, 5, 6};          // original (d0, d1, d2)
  std::vector<int64_t> PermPoint = {6, 4, 5};      // (d2, d0, d1)
  EXPECT_EQ(Map.evaluate(Point), Permuted.evaluate(PermPoint));
}
