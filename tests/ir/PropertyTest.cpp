//===- PropertyTest.cpp - Parameterized property sweeps ---------------------===//
//
// Property-style invariants swept across seeds with parameterized gtest:
//  * every module any generator produces verifies and round-trips
//    through the textual format;
//  * random legal schedules preserve total work (no fusion) and produce
//    nests the cost model prices positively;
//  * random episodes always terminate with a replayable schedule.
//
//===----------------------------------------------------------------------===//

#include "baselines/RandomSearch.h"
#include "datasets/Dataset.h"
#include "datasets/Models.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "perf/CostModel.h"
#include "perf/Runner.h"
#include "transforms/Apply.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace mlirrl;

namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

std::vector<Module> modulesForSeed(uint64_t Seed) {
  Rng R(Seed);
  std::vector<Module> Out;
  Out.push_back(generateOperatorSequence(R));
  Out.push_back(generateLqcdKernel(R, 12));
  DnnDatasetCounts Tiny;
  Tiny.Matmul = Tiny.Conv2d = Tiny.Maxpool = Tiny.Add = Tiny.Relu = 1;
  for (Module &M : generateDnnOperatorDataset(R, Tiny))
    Out.push_back(std::move(M));
  return Out;
}

} // namespace

TEST_P(SeedSweep, GeneratedModulesVerifyAndRoundTrip) {
  for (const Module &M : modulesForSeed(GetParam())) {
    std::string Error;
    ASSERT_TRUE(verifyModule(M, Error)) << M.getName() << ": " << Error;
    std::string Printed = printModule(M);
    Expected<Module> Reparsed = parseModule(Printed);
    ASSERT_TRUE(Reparsed) << Reparsed.getError() << "\n" << Printed;
    EXPECT_EQ(printModule(*Reparsed), Printed) << M.getName();
    EXPECT_TRUE(verifyModule(*Reparsed, Error)) << Error;
  }
}

TEST_P(SeedSweep, RandomSchedulesPreserveWorkWithoutFusion) {
  Rng R(GetParam() ^ 0xabcdef);
  for (const Module &M : modulesForSeed(GetParam())) {
    for (unsigned OpIdx = 0; OpIdx < M.getNumOps(); ++OpIdx) {
      const LinalgOp &Op = M.getOp(OpIdx);
      unsigned N = Op.getNumLoops();
      OpTransformState State(Op);
      OpSchedule Sched;
      // A random mix of tilings and interchanges.
      for (int Step = 0; Step < 3; ++Step) {
        Transformation T;
        if (R.nextBernoulli(0.5)) {
          std::vector<int64_t> Sizes(N, 0);
          for (int64_t &S : Sizes)
            if (R.nextBernoulli(0.5))
              S = int64_t(1) << R.nextInt(0, 6);
          T = Transformation::tiling(Sizes);
        } else {
          std::vector<unsigned> Perm(N);
          for (unsigned I = 0; I < N; ++I)
            Perm[I] = I;
          R.shuffle(Perm);
          T = Transformation::interchange(Perm);
        }
        if (State.apply(T).Applied)
          Sched.Transforms.push_back(T);
      }
      LoopNest Nest = materializeLoopNest(M, OpIdx, Sched);
      // Tiling and interchange never change total work when tile sizes
      // divide; with non-dividing tiles boundary rounding only adds, by
      // less than 2x per tiled dimension (deep nests compound).
      EXPECT_GE(Nest.getTotalFlops(), Op.getFlops()) << M.getName();
      EXPECT_LE(Nest.getTotalFlops(), Op.getFlops() * 16) << M.getName();
      // The model must price it as strictly positive, finite time.
      CostModel Model(MachineModel::xeonE5_2680v4());
      double T = Model.estimateNest(Nest).TotalSeconds;
      EXPECT_GT(T, 0.0);
      EXPECT_TRUE(std::isfinite(T));
    }
  }
}

TEST_P(SeedSweep, RandomEpisodesTerminateAndReplay) {
  Runner Run(MachineModel::xeonE5_2680v4());
  Rng R(GetParam());
  Module M = generateOperatorSequence(R);
  RandomSearchResult Result =
      randomSearch(EnvConfig::laptop(), Run, M, /*Episodes=*/3, GetParam());
  // The best schedule replays to exactly the reported speedup.
  EXPECT_NEAR(Run.speedup(M, Result.Schedule), Result.Speedup, 1e-9);
  EXPECT_GT(Result.Speedup, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

namespace {

class ModelSweep : public ::testing::TestWithParam<int> {};

Module modelForIndex(int Index) {
  switch (Index) {
  case 0:
    return makeResNet18();
  case 1:
    return makeVgg16();
  default:
    return makeMobileNetV2();
  }
}

} // namespace

TEST_P(ModelSweep, ModelsRoundTripThroughText) {
  Module M = modelForIndex(GetParam());
  std::string Printed = printModule(M);
  Expected<Module> Reparsed = parseModule(Printed);
  ASSERT_TRUE(Reparsed) << Reparsed.getError();
  EXPECT_EQ(Reparsed->getNumOps(), M.getNumOps());
  EXPECT_EQ(printModule(*Reparsed), Printed);
}

TEST_P(ModelSweep, BaselineMaterializesEveryOp) {
  Module M = modelForIndex(GetParam());
  std::vector<LoopNest> Nests = materializeBaseline(M);
  EXPECT_EQ(Nests.size(), M.getNumOps());
  int64_t Flops = 0;
  for (const LoopNest &Nest : Nests)
    Flops += Nest.getTotalFlops();
  EXPECT_EQ(Flops, M.getTotalFlops());
}

INSTANTIATE_TEST_SUITE_P(Models, ModelSweep, ::testing::Values(0, 1, 2));
