//===- FormatTest.cpp - Tests for string formatting ------------------------===//

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace mlirrl;

TEST(FormatTest, FormatStringBasic) {
  EXPECT_EQ(formatString("x=%d y=%s", 3, "ab"), "x=3 y=ab");
}

TEST(FormatTest, FormatStringLongOutput) {
  std::string Long(500, 'a');
  EXPECT_EQ(formatString("%s", Long.c_str()), Long);
}

TEST(FormatTest, FormatStringEmpty) { EXPECT_EQ(formatString("%s", ""), ""); }

TEST(FormatTest, JoinBasic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(FormatTest, JoinSingleAndEmpty) {
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({}, ","), "");
}

TEST(FormatTest, StartsWith) {
  EXPECT_TRUE(startsWith("linalg.matmul", "linalg."));
  EXPECT_FALSE(startsWith("linalg", "linalg."));
  EXPECT_TRUE(startsWith("abc", ""));
}
