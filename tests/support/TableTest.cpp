//===- TableTest.cpp - Tests for table / CSV rendering ---------------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace mlirrl;

TEST(TableTest, RendersHeaderAndRows) {
  TextTable T({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| name "), std::string::npos);
  EXPECT_NE(Out.find("| alpha "), std::string::npos);
  EXPECT_NE(Out.find("| 22 "), std::string::npos);
  // Header separator present.
  EXPECT_NE(Out.find("|---"), std::string::npos);
}

TEST(TableTest, ColumnsAligned) {
  TextTable T({"a", "b"});
  T.addRow({"xxxx", "y"});
  std::string Out = T.render();
  // Every line has the same length.
  size_t FirstLen = Out.find('\n');
  size_t Pos = FirstLen + 1;
  while (Pos < Out.size()) {
    size_t Next = Out.find('\n', Pos);
    EXPECT_EQ(Next - Pos, FirstLen);
    Pos = Next + 1;
  }
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(CsvTest, RendersCommaSeparated) {
  CsvWriter W({"iter", "speedup"});
  W.addRow({"1", "2.5"});
  EXPECT_EQ(W.render(), "iter,speedup\n1,2.5\n");
}

TEST(CsvTest, WriteFileRoundTrip) {
  CsvWriter W({"a"});
  W.addRow({"1"});
  std::string Path = testing::TempDir() + "/mlirrl_csv_test.csv";
  ASSERT_TRUE(W.writeFile(Path));
  FILE *F = fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[64] = {};
  size_t N = fread(Buf, 1, sizeof(Buf) - 1, F);
  fclose(F);
  EXPECT_EQ(std::string(Buf, N), "a\n1\n");
}
