//===- TsanStressTest.cpp - Many-thread hammers for the TSan gate ---------===//
//
// The dedicated workload for scripts/ci.sh --sanitize=thread: saturate
// the two most concurrency-dense structures in the tree -- the
// lock-striped LRU under forced eviction and the serving queue under
// submit/shutdown churn -- with more threads than cores so TSan sees a
// rich set of interleavings. The assertions are deliberately thin
// (accounting identity, every future resolves); in this test the
// sanitizer is the oracle and the hammer's job is coverage. It also
// runs in the normal build, where it doubles as a cheap smoke of the
// same paths.
//
// Thread counts stay identical across build modes (fewer threads means
// fewer interleavings); only per-thread iteration counts shrink under
// TSan, via tsanScale, to bound gate runtime.
//
//===----------------------------------------------------------------------===//

#include "support/StripedLru.h"
#include "support/TsanAnnotations.h"

#include "datasets/DnnOps.h"
#include "ir/Printer.h"
#include "serve/Server.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

using namespace mlirrl;

namespace {

ServeOptions stressServeOptions() {
  ServeOptions O;
  O.Net = testutil::tinyNet();
  O.BatchWidth = 2;
  O.Workers = 3;
  O.QueueCapacity = 8;
  O.Inference = InferenceDtype::F32;
  return O;
}

} // namespace

TEST(TsanStressTest, StripedLruEvictionHammer) {
  // Tiny capacity over a much larger key range: every shard is
  // constantly evicting while other threads hit, miss and duplicate on
  // the same keys, so the insert/evict/splice path runs under maximum
  // cross-thread interleaving.
  constexpr unsigned Threads = 8;
  constexpr uint64_t KeyRange = 512;
  const size_t PerThread = tsanScale(40000);
  StripedLruMemo<double> Memo("tsan_stress.lru_evict", /*Capacity=*/16,
                              /*ShardCount=*/4);

  std::atomic<unsigned> WrongValues{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      // Different stride per thread so threads collide on keys at
      // different phases instead of marching in lockstep.
      uint64_t Key = T * 17;
      for (size_t I = 0; I < PerThread; ++I) {
        Key = (Key + 2 * T + 1) % KeyRange;
        double Got =
            Memo.memoized(Key, [Key] { return static_cast<double>(Key) * 3.0; });
        if (Got != static_cast<double>(Key) * 3.0)
          WrongValues.fetch_add(1, std::memory_order_relaxed);
      }
    });

  // Maintenance churn racing the lookups: capacity re-splits, full
  // clears and counter snapshots, all of which walk every shard.
  std::atomic<bool> Stop{false};
  std::thread Maintenance([&] {
    size_t Flip = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      Memo.setCapacity(++Flip % 2 == 0 ? 16 : 64);
      Memo.clear();
      (void)Memo.size();
      (void)Memo.counters();
      (void)Memo.contention();
    }
  });

  for (std::thread &W : Workers)
    W.join();
  Stop.store(true, std::memory_order_relaxed);
  Maintenance.join();

  EXPECT_EQ(WrongValues.load(), 0u);
  // The race-exact accounting identity must survive eviction, clears
  // and capacity changes: every lookup is exactly one of hit, miss or
  // discarded duplicate.
  HitMissCounters Totals = Memo.counters();
  EXPECT_EQ(Totals.Hits.load() + Totals.Misses.load() +
                Totals.Duplicates.load(),
            static_cast<uint64_t>(Threads) * PerThread);
}

TEST(TsanStressTest, ServerSubmitShutdownChurn) {
  // Repeatedly build a server, hammer it from more clients than
  // workers, and tear it down while requests are still in flight. The
  // tiny queue forces the full admission matrix -- served, queue-full
  // and shutdown rejections -- and shutdown racing submitAsync is
  // exactly the path where a lost promise would hang a client forever.
  const std::string Request = printModule(makeReluModule({64, 64}));
  const size_t Rounds = tsanScale(4, 2);
  constexpr unsigned Clients = 6;
  const size_t PerClient = tsanScale(24, 4);

  for (size_t Round = 0; Round < Rounds; ++Round) {
    ScheduleServer Server(stressServeOptions());
    std::atomic<unsigned> Unresolved{0};
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&] {
        for (size_t I = 0; I < PerClient; ++I) {
          std::future<Expected<ServeResponse>> F = Server.submitAsync(Request);
          // Every submission must resolve -- served or cleanly
          // rejected -- even when shutdown lands mid-flight. A dropped
          // promise surfaces as broken_promise here instead of a hang.
          try {
            (void)F.get();
          } catch (const std::future_error &) {
            Unresolved.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });

    // Half the rounds shut down while clients are mid-hammer, half let
    // the destructor race the last submissions directly.
    if (Round % 2 == 0)
      Server.shutdown();
    for (std::thread &T : Threads)
      T.join();
    EXPECT_EQ(Unresolved.load(), 0u) << "round " << Round;
  }
}
