//===- SerializeTest.cpp - Archive framing, round-trips, corruption ---------===//
//
// The binary archive layer under checkpoints: scalar encodings
// round-trip bitwise (NaN payloads and signed zeros included), writing
// the same logical content twice is byte-identical, and every flavor of
// damage -- flipped payload bytes, truncation, a bad magic, a foreign
// version, oversized vector counts -- fails with a clean error instead
// of crashing or returning garbage.
//
//===----------------------------------------------------------------------===//

#include "support/Serialize.h"

#include "TestUtil.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

using namespace mlirrl;
using namespace mlirrl::serialize;

namespace {

constexpr uint32_t kTestVersion = 7;
constexpr uint32_t kTag = fourCC('T', 'S', 'T', ' ');
constexpr uint32_t kOther = fourCC('O', 'T', 'H', 'R');

/// A writer pre-loaded with one chunk of every scalar flavor.
std::vector<uint8_t> scalarArchive() {
  ArchiveWriter W(kTestVersion);
  W.beginChunk(kTag);
  W.writeU8(0xAB);
  W.writeU32(0xDEADBEEFu);
  W.writeU64(0x0123456789ABCDEFull);
  W.writeI64(-42);
  W.writeBool(true);
  W.writeDouble(-0.0);
  W.writeDouble(std::numeric_limits<double>::quiet_NaN());
  W.writeDouble(std::numeric_limits<double>::infinity());
  W.writeDouble(0x1.fffffffffffffp+1023);
  W.writeString("checkpointed long trainings");
  W.writeDoubles({1.5, -2.25, 0.0});
  W.writeU64s({1, 2, 3});
  W.writeU32s({4, 5});
  W.endChunk();
  return W.finish();
}

} // namespace

TEST(SerializeTest, ScalarsRoundTripBitwise) {
  Expected<ArchiveReader> Reader =
      ArchiveReader::fromBytes(scalarArchive(), kTestVersion);
  ASSERT_TRUE(Reader.hasValue()) << Reader.getError();
  EXPECT_EQ(Reader->version(), kTestVersion);
  ASSERT_TRUE(Reader->hasChunk(kTag));

  Expected<ChunkReader> Chunk = Reader->chunk(kTag);
  ASSERT_TRUE(Chunk.hasValue());
  EXPECT_EQ(Chunk->readU8(), 0xAB);
  EXPECT_EQ(Chunk->readU32(), 0xDEADBEEFu);
  EXPECT_EQ(Chunk->readU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(Chunk->readI64(), -42);
  EXPECT_TRUE(Chunk->readBool());
  EXPECT_SAME_BITS(Chunk->readDouble(), -0.0);
  double Nan = Chunk->readDouble();
  EXPECT_SAME_BITS(Nan, std::numeric_limits<double>::quiet_NaN());
  EXPECT_SAME_BITS(Chunk->readDouble(),
                   std::numeric_limits<double>::infinity());
  EXPECT_SAME_BITS(Chunk->readDouble(), 0x1.fffffffffffffp+1023);
  EXPECT_EQ(Chunk->readString(), "checkpointed long trainings");
  std::vector<double> Doubles = Chunk->readDoubles();
  ASSERT_EQ(Doubles.size(), 3u);
  EXPECT_SAME_BITS(Doubles[1], -2.25);
  EXPECT_EQ(Chunk->readU64s(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(Chunk->readU32s(), (std::vector<unsigned>{4, 5}));
  EXPECT_TRUE(Chunk->ok());
  EXPECT_TRUE(Chunk->atEnd());
}

TEST(SerializeTest, ChunksAreAddressedByTag) {
  ArchiveWriter W(kTestVersion);
  W.beginChunk(kTag);
  W.writeU32(1);
  W.endChunk();
  W.beginChunk(kOther);
  W.writeU32(2);
  W.endChunk();
  Expected<ArchiveReader> Reader =
      ArchiveReader::fromBytes(W.finish(), kTestVersion);
  ASSERT_TRUE(Reader.hasValue()) << Reader.getError();
  EXPECT_EQ(Reader->tags(), (std::vector<uint32_t>{kTag, kOther}));
  EXPECT_EQ(Reader->chunk(kOther)->readU32(), 2u);
  EXPECT_EQ(Reader->chunk(kTag)->readU32(), 1u);
  Expected<ChunkReader> Missing = Reader->chunk(fourCC('N', 'O', 'N', 'E'));
  EXPECT_FALSE(Missing.hasValue());
  EXPECT_NE(Missing.getError().find("NONE"), std::string::npos);
}

TEST(SerializeTest, RandomArchivesSurviveFileRoundTripByteIdentically) {
  Rng R(99);
  for (int Trial = 0; Trial < 10; ++Trial) {
    ArchiveWriter W(kTestVersion);
    unsigned Chunks = 1 + static_cast<unsigned>(R.nextBounded(4));
    for (unsigned C = 0; C < Chunks; ++C) {
      W.beginChunk(kTag + C);
      std::vector<double> Values(R.nextBounded(64));
      for (double &V : Values)
        V = R.nextGaussian();
      W.writeDoubles(Values);
      W.writeU64(R.next());
      W.endChunk();
    }
    std::vector<uint8_t> Original = W.finish();

    std::string Path = "serialize_test_roundtrip.bin";
    ASSERT_TRUE(writeFileBytesAtomic(Path, Original).hasValue());
    Expected<ArchiveReader> Reader =
        ArchiveReader::fromFile(Path, kTestVersion);
    ASSERT_TRUE(Reader.hasValue()) << Reader.getError();
    // The reader re-serializes to the exact bytes it was parsed from.
    mlirrl::testutil::expectSameBytes(Reader->bytes(), Original);
    std::remove(Path.c_str());
  }
}

TEST(SerializeTest, FlippedPayloadByteFailsWithCrcError) {
  std::vector<uint8_t> Bytes = scalarArchive();
  Bytes[Bytes.size() - 3] ^= 0x40; // somewhere inside the payload
  Expected<ArchiveReader> Reader =
      ArchiveReader::fromBytes(std::move(Bytes), kTestVersion);
  ASSERT_FALSE(Reader.hasValue());
  EXPECT_NE(Reader.getError().find("CRC"), std::string::npos)
      << Reader.getError();
}

TEST(SerializeTest, TruncationFailsCleanly) {
  std::vector<uint8_t> Bytes = scalarArchive();
  for (size_t Keep : {size_t(0), size_t(4), size_t(13), Bytes.size() - 1}) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Keep);
    Expected<ArchiveReader> Reader =
        ArchiveReader::fromBytes(std::move(Cut), kTestVersion);
    EXPECT_FALSE(Reader.hasValue()) << "kept " << Keep << " bytes";
  }
}

TEST(SerializeTest, BadMagicAndForeignVersionAreRejected) {
  std::vector<uint8_t> Bytes = scalarArchive();
  {
    std::vector<uint8_t> Mangled = Bytes;
    Mangled[0] = 'X';
    Expected<ArchiveReader> Reader =
        ArchiveReader::fromBytes(std::move(Mangled), kTestVersion);
    ASSERT_FALSE(Reader.hasValue());
    EXPECT_NE(Reader.getError().find("magic"), std::string::npos);
  }
  {
    Expected<ArchiveReader> Reader =
        ArchiveReader::fromBytes(Bytes, kTestVersion + 1);
    ASSERT_FALSE(Reader.hasValue());
    EXPECT_NE(Reader.getError().find("version"), std::string::npos);
  }
}

TEST(SerializeTest, ChunkUnderrunSetsStickyErrorInsteadOfCrashing) {
  ArchiveWriter W(kTestVersion);
  W.beginChunk(kTag);
  W.writeU32(1);
  // A vector count far larger than the payload: the reader must refuse
  // to allocate or read past the end.
  W.writeU64(std::numeric_limits<uint64_t>::max());
  W.endChunk();
  Expected<ArchiveReader> Reader =
      ArchiveReader::fromBytes(W.finish(), kTestVersion);
  ASSERT_TRUE(Reader.hasValue()) << Reader.getError();
  Expected<ChunkReader> Chunk = Reader->chunk(kTag);
  ASSERT_TRUE(Chunk.hasValue());
  EXPECT_EQ(Chunk->readU32(), 1u);
  std::vector<double> Values = Chunk->readDoubles();
  EXPECT_TRUE(Values.empty());
  EXPECT_FALSE(Chunk->ok());
  EXPECT_FALSE(Chunk->error().empty());
  // Errors are sticky: further reads stay failed and return zeros.
  EXPECT_EQ(Chunk->readU64(), 0u);
  EXPECT_FALSE(Chunk->ok());
}

TEST(SerializeTest, MissingFileIsACleanError) {
  Expected<ArchiveReader> Reader =
      ArchiveReader::fromFile("does_not_exist.ckpt", kTestVersion);
  ASSERT_FALSE(Reader.hasValue());
  EXPECT_FALSE(Reader.getError().empty());
}
