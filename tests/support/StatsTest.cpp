//===- StatsTest.cpp - Tests for summary statistics ------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace mlirrl;

TEST(StatsTest, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, MeanEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(StatsTest, MedianOddCount) {
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(StatsTest, MedianEvenCountAverages) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(StatsTest, MedianRobustToOutlier) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0, 1e9}), 3.0);
}

TEST(StatsTest, GeomeanBasic) {
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatsTest, GeomeanBelowMeanForSpread) {
  std::vector<double> V = {1.0, 100.0};
  EXPECT_LT(geomean(V), mean(V));
}

TEST(StatsTest, StddevBasic) {
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

TEST(StatsTest, StddevSingleValueIsZero) {
  EXPECT_DOUBLE_EQ(stddev({3.0}), 0.0);
}

TEST(StatsTest, MinMax) {
  std::vector<double> V = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(minOf(V), -1.0);
  EXPECT_DOUBLE_EQ(maxOf(V), 7.0);
}
