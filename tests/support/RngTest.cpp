//===- RngTest.cpp - Tests for the deterministic RNG ----------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace mlirrl;

TEST(RngTest, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Different = 0;
  for (int I = 0; I < 32; ++I)
    Different += A.next() != B.next();
  EXPECT_GT(Different, 30);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBounded(17), 17u);
}

TEST(RngTest, BoundedCoversRange) {
  Rng R(5);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBounded(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInt(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng R(13);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng R(17);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double V = R.nextGaussian();
    Sum += V;
    SumSq += V * V;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.1);
}

TEST(RngTest, SampleWeightedRespectsWeights) {
  Rng R(19);
  std::vector<double> Weights = {0.0, 1.0, 3.0};
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I < 4000; ++I)
    ++Counts[R.sampleWeighted(Weights)];
  EXPECT_EQ(Counts[0], 0);
  EXPECT_GT(Counts[2], Counts[1]);
  EXPECT_NEAR(static_cast<double>(Counts[2]) / Counts[1], 3.0, 0.6);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng R(23);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
}

TEST(RngTest, ChoiceIndexInRange) {
  Rng R(29);
  std::vector<int> V(5, 0);
  for (int I = 0; I < 100; ++I)
    EXPECT_LT(R.choiceIndex(V), V.size());
}
