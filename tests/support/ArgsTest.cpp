//===- ArgsTest.cpp - Tests for checked numeric argument parsing ----------===//

#include "support/Args.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

using namespace mlirrl;

TEST(ArgsTest, UnsignedParsesPlainDigits) {
  Expected<uint64_t> V = parseUnsignedInteger("12345");
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, 12345u);
}

TEST(ArgsTest, UnsignedParsesZeroAndMax) {
  Expected<uint64_t> Zero = parseUnsignedInteger("0");
  ASSERT_TRUE(static_cast<bool>(Zero));
  EXPECT_EQ(*Zero, 0u);

  Expected<uint64_t> Max = parseUnsignedInteger("18446744073709551615");
  ASSERT_TRUE(static_cast<bool>(Max));
  EXPECT_EQ(*Max, std::numeric_limits<uint64_t>::max());
}

TEST(ArgsTest, UnsignedRejectsMalformedText) {
  EXPECT_FALSE(static_cast<bool>(parseUnsignedInteger("")));
  EXPECT_FALSE(static_cast<bool>(parseUnsignedInteger("-1")));
  EXPECT_FALSE(static_cast<bool>(parseUnsignedInteger("-0")));
  EXPECT_FALSE(static_cast<bool>(parseUnsignedInteger("+3")));
  EXPECT_FALSE(static_cast<bool>(parseUnsignedInteger(" 3")));
  EXPECT_FALSE(static_cast<bool>(parseUnsignedInteger("3 ")));
  EXPECT_FALSE(static_cast<bool>(parseUnsignedInteger("10k")));
  EXPECT_FALSE(static_cast<bool>(parseUnsignedInteger("0x10")));
}

TEST(ArgsTest, UnsignedRejectsOverflow) {
  // One past uint64 max.
  EXPECT_FALSE(static_cast<bool>(parseUnsignedInteger("18446744073709551616")));
  // Wildly longer than any 64-bit value.
  EXPECT_FALSE(
      static_cast<bool>(parseUnsignedInteger("999999999999999999999999")));
}

TEST(ArgsTest, UnsignedHonorsCallerMax) {
  EXPECT_TRUE(static_cast<bool>(parseUnsignedInteger("16", 16)));
  Expected<uint64_t> TooBig = parseUnsignedInteger("17", 16);
  EXPECT_FALSE(static_cast<bool>(TooBig));
}

TEST(ArgsTest, SignedParsesBothSigns) {
  Expected<int64_t> Pos = parseSignedInteger("42");
  ASSERT_TRUE(static_cast<bool>(Pos));
  EXPECT_EQ(*Pos, 42);

  Expected<int64_t> Neg = parseSignedInteger("-42");
  ASSERT_TRUE(static_cast<bool>(Neg));
  EXPECT_EQ(*Neg, -42);
}

TEST(ArgsTest, SignedCoversInt64Extremes) {
  Expected<int64_t> Max = parseSignedInteger("9223372036854775807");
  ASSERT_TRUE(static_cast<bool>(Max));
  EXPECT_EQ(*Max, std::numeric_limits<int64_t>::max());

  // INT64_MIN's magnitude exceeds INT64_MAX, so it exercises the
  // negative-branch headroom specifically.
  Expected<int64_t> Min = parseSignedInteger("-9223372036854775808");
  ASSERT_TRUE(static_cast<bool>(Min));
  EXPECT_EQ(*Min, std::numeric_limits<int64_t>::min());

  EXPECT_FALSE(static_cast<bool>(parseSignedInteger("9223372036854775808")));
  EXPECT_FALSE(static_cast<bool>(parseSignedInteger("-9223372036854775809")));
}

TEST(ArgsTest, SignedRejectsMalformedText) {
  EXPECT_FALSE(static_cast<bool>(parseSignedInteger("")));
  EXPECT_FALSE(static_cast<bool>(parseSignedInteger("-")));
  EXPECT_FALSE(static_cast<bool>(parseSignedInteger("--3")));
  EXPECT_FALSE(static_cast<bool>(parseSignedInteger("+3")));
  EXPECT_FALSE(static_cast<bool>(parseSignedInteger("3-")));
  EXPECT_FALSE(static_cast<bool>(parseSignedInteger("1.5")));
}

TEST(ArgsTest, SignedHonorsCallerBounds) {
  EXPECT_TRUE(static_cast<bool>(parseSignedInteger("-8", -8, 8)));
  EXPECT_TRUE(static_cast<bool>(parseSignedInteger("8", -8, 8)));
  EXPECT_FALSE(static_cast<bool>(parseSignedInteger("-9", -8, 8)));
  EXPECT_FALSE(static_cast<bool>(parseSignedInteger("9", -8, 8)));
}
