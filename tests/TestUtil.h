//===- TestUtil.h - Shared bitwise-equality test helpers ---------*- C++-*-===//
///
/// \file
/// The determinism contract's measuring instruments, shared by every
/// test that checks it (VecEnvTest, BatchedForwardTest,
/// DeterminismMatrixTest, CheckpointResumeTest): bit-pattern equality
/// of doubles, ULP distances for tensor comparisons, golden-bytes
/// comparison for archives, and bitwise equality of whole training
/// histories.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_TESTS_TESTUTIL_H
#define MLIRRL_TESTS_TESTUTIL_H

#include "nn/Tensor.h"
#include "rl/Ppo.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

/// Two doubles carry the identical bit pattern (distinguishes -0.0
/// from 0.0 and NaN payloads, unlike EXPECT_EQ).
#define EXPECT_SAME_BITS(X, Y)                                              \
  EXPECT_EQ(std::bit_cast<uint64_t>(static_cast<double>(X)),                \
            std::bit_cast<uint64_t>(static_cast<double>(Y)))

namespace mlirrl {
namespace testutil {

/// Distance in units-in-the-last-place between two finite doubles of
/// the same sign ordering; 0 iff bitwise-identical.
inline uint64_t ulpDistance(double A, double B) {
  auto ToOrdered = [](double V) {
    int64_t Bits = std::bit_cast<int64_t>(V);
    return Bits < 0 ? std::numeric_limits<int64_t>::min() - Bits : Bits;
  };
  int64_t X = ToOrdered(A), Y = ToOrdered(B);
  return X < Y ? static_cast<uint64_t>(Y) - static_cast<uint64_t>(X)
               : static_cast<uint64_t>(X) - static_cast<uint64_t>(Y);
}

/// Elementwise tensor comparison within \p MaxUlps (0 = bitwise).
inline void expectTensorsWithinUlps(const nn::Tensor &A, const nn::Tensor &B,
                                    uint64_t MaxUlps = 0) {
  ASSERT_EQ(A.rows(), B.rows());
  ASSERT_EQ(A.cols(), B.cols());
  for (unsigned R = 0; R < A.rows(); ++R)
    for (unsigned C = 0; C < A.cols(); ++C)
      EXPECT_LE(ulpDistance(A.at(R, C), B.at(R, C)), MaxUlps)
          << "element (" << R << ", " << C << "): " << A.at(R, C) << " vs "
          << B.at(R, C);
}

inline void expectTensorsBitwiseEqual(const nn::Tensor &A,
                                      const nn::Tensor &B) {
  expectTensorsWithinUlps(A, B, 0);
}

/// Golden-bytes comparison: byte count plus the first diverging offset
/// on mismatch (readable failure for archive identity checks).
inline void expectSameBytes(const std::vector<uint8_t> &A,
                            const std::vector<uint8_t> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_EQ(A[I], B[I]) << "archives diverge at byte " << I;
}

/// Bitwise equality of two per-iteration training histories — the
/// repo's core determinism invariant (identical rollouts and updates
/// regardless of batch width, thread counts and save/load boundaries).
inline void expectSameHistories(const std::vector<PpoIterationStats> &A,
                                const std::vector<PpoIterationStats> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (unsigned I = 0; I < A.size(); ++I) {
    EXPECT_SAME_BITS(A[I].MeanEpisodeReward, B[I].MeanEpisodeReward)
        << "iteration " << I;
    EXPECT_SAME_BITS(A[I].MeanSpeedup, B[I].MeanSpeedup) << "iteration " << I;
    EXPECT_SAME_BITS(A[I].PolicyLoss, B[I].PolicyLoss) << "iteration " << I;
    EXPECT_SAME_BITS(A[I].ValueLoss, B[I].ValueLoss) << "iteration " << I;
    EXPECT_SAME_BITS(A[I].Entropy, B[I].Entropy) << "iteration " << I;
    EXPECT_EQ(A[I].StepsCollected, B[I].StepsCollected) << "iteration " << I;
    EXPECT_SAME_BITS(A[I].MeasurementSeconds, B[I].MeasurementSeconds)
        << "iteration " << I;
  }
}

/// Bitwise equality of two parameter lists (same shapes, same bits).
inline void expectSameParameters(const std::vector<nn::Tensor> &A,
                                 const std::vector<nn::Tensor> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    expectTensorsBitwiseEqual(A[I], B[I]);
}

/// The narrow network every determinism test trains (the architecture
/// is the paper's; the width keeps test trainings subsecond).
inline NetConfig tinyNet(unsigned Hidden = 16) {
  NetConfig Net;
  Net.LstmHidden = Hidden;
  Net.BackboneHidden = Hidden;
  return Net;
}

} // namespace testutil
} // namespace mlirrl

#endif // MLIRRL_TESTS_TESTUTIL_H
