//===- EpisodeSweepTest.cpp - Parameterized episode invariants ---------------===//
//
// Episode-level invariants swept over configurations and seeds: every
// combination of interchange mode, reward mode and action space must
// produce terminating episodes whose assembled schedules replay to the
// reported speedup, with masks respected throughout.
//
//===----------------------------------------------------------------------===//

#include "baselines/RandomSearch.h"
#include "datasets/Sequences.h"
#include "env/Environment.h"
#include "perf/Runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

using namespace mlirrl;

namespace {

using ConfigPoint = std::tuple<int /*interchange*/, int /*reward*/,
                               int /*space*/, uint64_t /*seed*/>;

class ConfigSweep : public ::testing::TestWithParam<ConfigPoint> {
protected:
  EnvConfig makeConfig() const {
    auto [Inter, Reward, Space, Seed] = GetParam();
    (void)Seed;
    EnvConfig C = EnvConfig::laptop();
    C.Interchange = static_cast<InterchangeMode>(Inter);
    C.Reward = static_cast<RewardMode>(Reward);
    C.ActionSpace = static_cast<ActionSpaceMode>(Space);
    return C;
  }
  uint64_t seed() const { return std::get<3>(GetParam()); }
};

} // namespace

TEST_P(ConfigSweep, RandomEpisodesTerminateWithConsistentRewards) {
  EnvConfig Config = makeConfig();
  Runner Run(MachineModel::xeonE5_2680v4());
  Rng R(seed());
  Module M = generateOperatorSequence(R);

  // Drive the episode with random masked actions via randomSearch's
  // machinery (one episode).
  RandomSearchResult Result = randomSearch(Config, Run, M, 1, seed());
  EXPECT_GT(Result.Speedup, 0.0);
  EXPECT_NEAR(Run.speedup(M, Result.Schedule), Result.Speedup, 1e-9);
}

TEST_P(ConfigSweep, RewardsSumToLogSpeedup) {
  // In both reward modes the summed rewards of an episode equal the
  // final log-speedup (terminal in Final mode; telescoping in
  // Immediate mode).
  EnvConfig Config = makeConfig();
  if (Config.ActionSpace == ActionSpaceMode::Flat)
    GTEST_SKIP() << "covered by the multi-discrete points";
  Runner Run(MachineModel::xeonE5_2680v4());
  Rng R(seed() ^ 0x77);
  Module M = generateOperatorSequence(R);

  Environment Env(Config, Run, M);
  Rng ActionRng(seed());
  double Total = 0.0;
  unsigned Guard = 0;
  while (!Env.isDone()) {
    ASSERT_LT(++Guard, 500u);
    // Reuse the random-search action sampler indirectly: step with
    // NoTransformation interleaved with one tiling, keeping it simple
    // and mask-legal.
    AgentAction A;
    if (ActionRng.nextBernoulli(0.5) &&
        Env.observe().TransformMask[static_cast<unsigned>(
            TransformKind::TiledParallelization)] > 0) {
      A.Kind = TransformKind::TiledParallelization;
      A.TileSizeIdx.assign(Config.MaxLoops, 3);
    } else if (Env.observe().InPointerSequence) {
      A.Kind = TransformKind::Interchange;
      A.PointerChoice = static_cast<unsigned>(
          ActionRng.sampleWeighted(Env.observe().InterchangeMask));
    } else {
      A.Kind = TransformKind::NoTransformation;
    }
    Total += Env.step(A).Reward;
  }
  EXPECT_NEAR(Total, std::log(Env.currentSpeedup()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigSweep,
    ::testing::Combine(::testing::Values(0, 1), // interchange mode
                       ::testing::Values(0, 1), // reward mode
                       ::testing::Values(0, 1), // action space
                       ::testing::Values(3u, 17u)));
