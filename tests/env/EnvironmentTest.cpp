//===- EnvironmentTest.cpp - Tests for the episode state machine ------------===//

#include "env/Environment.h"

#include "datasets/DnnOps.h"
#include "ir/Builder.h"
#include "perf/Runner.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace mlirrl;

namespace {

struct EnvFixture : ::testing::Test {
  EnvConfig Config = EnvConfig::laptop();
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  Runner Run{Machine};

  AgentAction tiled(TransformKind Kind, std::vector<unsigned> Idx) {
    AgentAction A;
    A.Kind = Kind;
    A.TileSizeIdx = std::move(Idx);
    return A;
  }
  AgentAction simple(TransformKind Kind) {
    AgentAction A;
    A.Kind = Kind;
    return A;
  }
};

} // namespace

TEST_F(EnvFixture, StartsAtLastOpWithMasks) {
  Module M = makeMatmulModule(128, 128, 128);
  Environment Env(Config, Run, M);
  EXPECT_FALSE(Env.isDone());
  EXPECT_EQ(Env.getCurrentOp(), 0);
  const Observation &Obs = Env.observe();
  EXPECT_EQ(Obs.NumLoops, 3u);
  // No producer: fusion masked.
  EXPECT_DOUBLE_EQ(
      Obs.TransformMask[static_cast<unsigned>(TransformKind::TiledFusion)],
      0.0);
  // Tiling allowed.
  EXPECT_DOUBLE_EQ(
      Obs.TransformMask[static_cast<unsigned>(TransformKind::Tiling)], 1.0);
  // Innermost trip 128 <= 512 and matmul passes preconditions.
  EXPECT_DOUBLE_EQ(
      Obs.TransformMask[static_cast<unsigned>(TransformKind::Vectorization)],
      1.0);
}

TEST_F(EnvFixture, VectorizationMaskedForLargeInnerLoop) {
  Module M = makeMatmulModule(64, 64, 1024); // innermost d2 = 1024 > 512
  Environment Env(Config, Run, M);
  EXPECT_DOUBLE_EQ(
      Env.observe()
          .TransformMask[static_cast<unsigned>(TransformKind::Vectorization)],
      0.0);
}

TEST_F(EnvFixture, VectorizationMaskedForPooling) {
  Module M = makeMaxpoolModule(1, 16, 32, 32, 2, 2);
  Environment Env(Config, Run, M);
  EXPECT_DOUBLE_EQ(
      Env.observe()
          .TransformMask[static_cast<unsigned>(TransformKind::Vectorization)],
      0.0);
}

TEST_F(EnvFixture, NoTransformationEndsEpisodeOnSingleOp) {
  Module M = makeMatmulModule(64, 64, 64);
  Environment Env(Config, Run, M);
  auto Out = Env.step(simple(TransformKind::NoTransformation));
  EXPECT_TRUE(Out.Done);
  EXPECT_TRUE(Env.isDone());
  // No optimization: speedup 1, reward log(1) = 0.
  EXPECT_NEAR(Out.Reward, 0.0, 1e-9);
}

TEST_F(EnvFixture, FinalRewardIsLogSpeedup) {
  Module M = makeMatmulModule(256, 256, 256);
  Environment Env(Config, Run, M);
  // Parallelize then stop.
  Env.step(tiled(TransformKind::TiledParallelization, {4, 4, 0}));
  auto Out = Env.step(simple(TransformKind::NoTransformation));
  ASSERT_TRUE(Out.Done);
  double Speedup = Env.currentSpeedup();
  EXPECT_GT(Speedup, 1.0);
  EXPECT_NEAR(Out.Reward, std::log(Speedup), 1e-9);
}

TEST_F(EnvFixture, TauLimitEndsOperation) {
  Module M = makeMatmulModule(256, 256, 256);
  Environment Env(Config, Run, M);
  // Burn tau steps with tilings; episode must finish by the limit.
  for (unsigned I = 0; I < Config.MaxScheduleLength; ++I) {
    EXPECT_FALSE(Env.isDone());
    Env.step(tiled(TransformKind::Tiling, {3, 3, 3}));
  }
  EXPECT_TRUE(Env.isDone());
}

TEST_F(EnvFixture, IllegalActionWastesStepWithoutEffect) {
  Module M = makeMatmulModule(256, 256, 256);
  Environment Env(Config, Run, M);
  // All-zero tiling is rejected by the engine.
  Env.step(tiled(TransformKind::Tiling, {0, 0, 0}));
  EXPECT_FALSE(Env.isDone());
  Env.step(simple(TransformKind::NoTransformation));
  EXPECT_TRUE(Env.isDone());
  EXPECT_TRUE(Env.getSchedule().OpSchedules.empty());
}

TEST_F(EnvFixture, VisitsOpsInReverseOrder) {
  Module M("chain");
  Builder B(M);
  std::string X = B.declareInput({4096, 64});
  std::string R = B.relu(X);   // op 0
  std::string S = B.sigmoid(R); // op 1
  (void)S;
  Environment Env(Config, Run, M);
  EXPECT_EQ(Env.getCurrentOp(), 1);
  Env.step(simple(TransformKind::NoTransformation));
  EXPECT_EQ(Env.getCurrentOp(), 0);
  Env.step(simple(TransformKind::NoTransformation));
  EXPECT_TRUE(Env.isDone());
}

TEST_F(EnvFixture, FusionConsumesProducerAndSkipsIt) {
  Module M("chain");
  Builder B(M);
  std::string X = B.declareInput({4096, 64});
  std::string R = B.relu(X);
  B.sigmoid(R);
  Environment Env(Config, Run, M);
  // Producer available at the consumer.
  EXPECT_DOUBLE_EQ(
      Env.observe()
          .TransformMask[static_cast<unsigned>(TransformKind::TiledFusion)],
      1.0);
  Env.step(tiled(TransformKind::TiledFusion, {4, 4}));
  auto Out = Env.step(simple(TransformKind::NoTransformation));
  // The fused producer is not visited separately.
  EXPECT_TRUE(Out.Done);
  EXPECT_TRUE(Env.getSchedule().isFusedAway(0));
  ASSERT_EQ(Env.getSchedule().OpSchedules.count(1), 1u);
  EXPECT_EQ(Env.getSchedule().OpSchedules.at(1).FusedProducers,
            (std::vector<unsigned>{0}));
}

TEST_F(EnvFixture, FusionMaskedForSharedProducer) {
  // A producer with two consumers must not be fused.
  Module M("shared");
  Builder B(M);
  std::string X = B.declareInput({256, 256});
  std::string P = B.relu(X);   // op 0, consumed twice
  std::string A = B.sigmoid(P); // op 1
  B.add(P, A);                  // op 2
  Environment Env(Config, Run, M);
  EXPECT_EQ(Env.getCurrentOp(), 2);
  // op 1 is a producer candidate (exclusively consumed); op 0 is not,
  // but the mask only reports whether *some* candidate exists.
  EXPECT_DOUBLE_EQ(
      Env.observe()
          .TransformMask[static_cast<unsigned>(TransformKind::TiledFusion)],
      1.0);
  // Fuse op1; then op0 feeds both the group (via op1) and ... it is
  // consumed by group members only (op1 and op2), so it becomes legal.
  Env.step(tiled(TransformKind::TiledFusion, {8, 8}));
  EXPECT_DOUBLE_EQ(
      Env.observe()
          .TransformMask[static_cast<unsigned>(TransformKind::TiledFusion)],
      1.0);
}

TEST_F(EnvFixture, LevelPointerSequenceForcesInterchange) {
  Module M = makeMatmulModule(128, 128, 128);
  Environment Env(Config, Run, M);
  AgentAction Start = simple(TransformKind::Interchange);
  Start.PointerChoice = 2; // place loop 2 at position 0
  Env.step(Start);
  const Observation &Obs = Env.observe();
  EXPECT_TRUE(Obs.InPointerSequence);
  // Only interchange allowed.
  for (unsigned K = 0; K < NumTransformKinds; ++K) {
    double Expected = K == static_cast<unsigned>(TransformKind::Interchange)
                          ? 1.0
                          : 0.0;
    EXPECT_DOUBLE_EQ(Obs.TransformMask[K], Expected);
  }
  // Loop 2 already taken.
  EXPECT_DOUBLE_EQ(Obs.InterchangeMask[2], 0.0);
  EXPECT_DOUBLE_EQ(Obs.InterchangeMask[0], 1.0);

  AgentAction Next = simple(TransformKind::Interchange);
  Next.PointerChoice = 0;
  Env.step(Next);
  Next.PointerChoice = 1;
  Env.step(Next);
  // Sequence complete: the interchange is applied as one transformation.
  EXPECT_FALSE(Env.observe().InPointerSequence);
  Env.step(simple(TransformKind::NoTransformation));
  ASSERT_TRUE(Env.isDone());
  const OpSchedule &S = Env.getSchedule().OpSchedules.at(0);
  ASSERT_EQ(S.Transforms.size(), 1u);
  EXPECT_EQ(S.Transforms[0].Kind, TransformKind::Interchange);
  EXPECT_EQ(S.Transforms[0].Permutation,
            (std::vector<unsigned>{2, 0, 1}));
}

TEST_F(EnvFixture, EnumeratedInterchangeAppliesSwap) {
  EnvConfig Enumerated = Config;
  Enumerated.Interchange = InterchangeMode::Enumerated;
  Module M = makeMatmulModule(128, 128, 128);
  Environment Env(Enumerated, Run, M);
  AgentAction A = simple(TransformKind::Interchange);
  A.EnumeratedChoice = 0; // swap levels (0, 1)
  Env.step(A);
  Env.step(simple(TransformKind::NoTransformation));
  const OpSchedule &S = Env.getSchedule().OpSchedules.at(0);
  ASSERT_EQ(S.Transforms.size(), 1u);
  EXPECT_EQ(S.Transforms[0].Permutation,
            (std::vector<unsigned>{1, 0, 2}));
}

TEST_F(EnvFixture, ImmediateRewardTelescopesToFinal) {
  EnvConfig Immediate = Config;
  Immediate.Reward = RewardMode::Immediate;
  Module M = makeMatmulModule(256, 256, 256);

  Environment Env(Immediate, Run, M);
  double Total = 0.0;
  Total += Env.step(tiled(TransformKind::TiledParallelization, {4, 4, 0}))
               .Reward;
  Total += Env.step(tiled(TransformKind::Tiling, {0, 0, 5})).Reward;
  Total += Env.step(simple(TransformKind::NoTransformation)).Reward;
  EXPECT_TRUE(Env.isDone());
  EXPECT_NEAR(Total, std::log(Env.currentSpeedup()), 1e-9);
}

TEST_F(EnvFixture, ImmediateRewardCostsMoreMeasurement) {
  Module M = makeMatmulModule(256, 256, 256);
  EnvConfig Immediate = Config;
  Immediate.Reward = RewardMode::Immediate;

  Environment FinalEnv(Config, Run, M);
  Environment ImmedEnv(Immediate, Run, M);
  for (Environment *E : {&FinalEnv, &ImmedEnv}) {
    E->step(tiled(TransformKind::Tiling, {4, 4, 0}));
    E->step(tiled(TransformKind::Tiling, {0, 0, 4}));
    E->step(simple(TransformKind::NoTransformation));
  }
  EXPECT_GT(ImmedEnv.getMeasurementSeconds(),
            FinalEnv.getMeasurementSeconds());
}

TEST_F(EnvFixture, FlatModeDecodesActions) {
  EnvConfig Flat = Config;
  Flat.ActionSpace = ActionSpaceMode::Flat;
  Module M = makeMatmulModule(256, 256, 256);
  Environment Env(Flat, Run, M);
  const Observation &Obs = Env.observe();
  ASSERT_FALSE(Obs.FlatMask.empty());
  std::vector<FlatAction> Actions = buildFlatActionList(Flat);
  // Pick a uniform tiling action.
  unsigned Choice = 0;
  for (unsigned I = 0; I < Actions.size(); ++I)
    if (Actions[I].Kind == TransformKind::Tiling &&
        Flat.TileCandidates[Actions[I].TileSizeIdx] == 8)
      Choice = I;
  AgentAction A;
  A.FlatChoice = Choice;
  Env.step(A);
  // Stop via the flat no-transformation action.
  for (unsigned I = 0; I < Actions.size(); ++I)
    if (Actions[I].Kind == TransformKind::NoTransformation)
      A.FlatChoice = I;
  Env.step(A);
  ASSERT_TRUE(Env.isDone());
  const OpSchedule &S = Env.getSchedule().OpSchedules.at(0);
  ASSERT_EQ(S.Transforms.size(), 1u);
  EXPECT_EQ(S.Transforms[0].Kind, TransformKind::Tiling);
  EXPECT_EQ(S.Transforms[0].TileSizes,
            (std::vector<int64_t>{8, 8, 8}));
}

TEST_F(EnvFixture, TheoreticalFlatSizeFormula) {
  ActionSpaceInfo Info(Config);
  // |A| = 3 M^N + N! + 2 for N = 3, M = 8: 3*512 + 6 + 2 = 1544.
  EXPECT_DOUBLE_EQ(Info.flatTheoreticalSize(3), 1544.0);
}

//===----------------------------------------------------------------------===//
// Robustness: finished episodes, malformed actions and the
// post-transform check gate must degrade gracefully, never fatally.
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include "transforms/PostTransformChecks.h"

TEST_F(EnvFixture, StepAfterDoneIsInert) {
  Module M = makeMatmulModule(64, 64, 64);
  Environment Env(Config, Run, M);
  Env.step(simple(TransformKind::NoTransformation));
  ASSERT_TRUE(Env.isDone());

  uint64_t Before =
      robustnessCounter(RobustnessEvent::StepAfterDone).Misses.load();
  ModuleSchedule Frozen = Env.getSchedule();
  auto Out = Env.step(tiled(TransformKind::Tiling, {4, 4, 0}));
  EXPECT_TRUE(Out.Done);
  EXPECT_DOUBLE_EQ(Out.Reward, 0.0);
  EXPECT_TRUE(Env.isDone());
  // The frozen schedule did not move, and the event was counted.
  EXPECT_EQ(Env.getSchedule().toString(), Frozen.toString());
  EXPECT_EQ(robustnessCounter(RobustnessEvent::StepAfterDone).Misses.load(),
            Before + 1);
}

TEST_F(EnvFixture, MalformedFlatActionWastesStep) {
  Config.ActionSpace = ActionSpaceMode::Flat;
  Module M = makeMatmulModule(64, 64, 64);
  Environment Env(Config, Run, M);

  AgentAction A;
  A.Kind = TransformKind::Tiling;
  A.FlatChoice = 1u << 30; // far past the flat action list
  ModuleSchedule Before = Env.getSchedule();
  auto Out = Env.step(A);
  EXPECT_FALSE(Env.isDone());
  EXPECT_FALSE(Out.Done);
  EXPECT_EQ(Env.getSchedule().toString(), Before.toString());

  // The episode still finishes normally afterwards.
  while (!Env.isDone())
    Env.step(simple(TransformKind::NoTransformation));
}

TEST_F(EnvFixture, CheckedEpisodeMatchesUncheckedBitwise) {
  // PostTransformChecks never fires on legal actions, so the whole
  // trajectory -- rewards included -- must be bitwise identical with
  // the pass on and off.
  std::vector<AgentAction> Script = {
      tiled(TransformKind::TiledParallelization, {4, 4, 0}),
      tiled(TransformKind::Tiling, {0, 0, 5}),
      simple(TransformKind::Vectorization),
  };
  std::vector<double> Rewards[2];
  for (int Checked = 0; Checked < 2; ++Checked) {
    EnvConfig C = Config;
    C.PostTransformChecks = Checked == 1;
    Module M = makeMatmulModule(128, 256, 192);
    Environment Env(C, Run, M);
    for (const AgentAction &A : Script)
      if (!Env.isDone())
        Rewards[Checked].push_back(Env.step(A).Reward);
  }
  ASSERT_EQ(Rewards[0].size(), Rewards[1].size());
  for (size_t I = 0; I < Rewards[0].size(); ++I) {
    EXPECT_EQ(Rewards[0][I], Rewards[1][I]) << "step " << I;
  }
}

TEST_F(EnvFixture, StateVerifiesAfterEveryScriptedStep) {
  Module M("fuse");
  {
    Builder B(M);
    std::string X = B.declareInput({96, 48});
    std::string W = B.declareInput({48, 64});
    B.relu(B.matmul(X, W));
  }
  Environment Env(Config, Run, M);
  std::vector<AgentAction> Script = {
      tiled(TransformKind::TiledFusion, {4, 4}),
      tiled(TransformKind::Tiling, {8, 0, 0}),
      simple(TransformKind::NoTransformation),
      tiled(TransformKind::TiledParallelization, {2, 2, 0}),
      simple(TransformKind::Vectorization),
  };
  for (const AgentAction &A : Script) {
    if (Env.isDone())
      break;
    Env.step(A);
    std::string Err;
    EXPECT_TRUE(verifyScheduleState(
        const_cast<ScheduleState &>(Env.getState()), Err))
        << Err;
  }
}
