//===- IncrementalEquivalenceTest.cpp - incremental == from-scratch ---------===//
//
// The property behind the ScheduleState transaction layer, checked
// mechanically over every dataset generator: an environment stepping
// incrementally (dirty-op pricing, delta featurization -- the default)
// is bitwise-indistinguishable from one recomputing everything from
// scratch. Two environments run in lockstep on identical randomized
// masked action sequences; at every step the observations (consumer,
// producer, all masks), rewards, done flags and measurement accounting
// must match exactly, and at the end the schedules and speedups must
// too. Both reward modes are swept -- Immediate is the mode whose every
// step prices the module, so it is where stale caches would surface.
//
//===----------------------------------------------------------------------===//

#include "datasets/Dataset.h"
#include "datasets/Models.h"
#include "env/Environment.h"
#include "perf/Evaluator.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mlirrl;

namespace {

struct Corpus {
  const char *Name;
  std::vector<Module> (*Build)();
  RewardMode Reward;
};

std::vector<Module> dnnOperators() {
  Rng R(31);
  return generateDnnOperatorDataset(R, DnnDatasetCounts::scaled(0.01));
}

std::vector<Module> evaluationModel() {
  // One full model: many ops, deep producer chains (fusion-heavy).
  return {makeMobileNetV2()};
}

std::vector<Module> lqcdKernels() {
  Rng R(32);
  return generateLqcdDataset(R, 4);
}

std::vector<Module> operatorSequences() {
  Rng R(33);
  return generateSequenceDataset(R, 6);
}

/// A uniformly random action under the observation's masks (the same
/// sampling scheme randomSearch uses).
AgentAction randomMaskedAction(const Observation &Obs,
                               const EnvConfig &Config, Rng &R) {
  AgentAction A;
  if (Obs.InPointerSequence) {
    A.Kind = TransformKind::Interchange;
    A.PointerChoice =
        static_cast<unsigned>(R.sampleWeighted(Obs.InterchangeMask));
    return A;
  }
  A.Kind = static_cast<TransformKind>(R.sampleWeighted(Obs.TransformMask));
  switch (A.Kind) {
  case TransformKind::Tiling:
  case TransformKind::TiledParallelization:
  case TransformKind::TiledFusion:
    A.TileSizeIdx.resize(Config.MaxLoops);
    for (unsigned &Idx : A.TileSizeIdx)
      Idx = static_cast<unsigned>(R.nextBounded(Config.NumTileSizes));
    break;
  case TransformKind::Interchange:
    A.PointerChoice =
        static_cast<unsigned>(R.sampleWeighted(Obs.InterchangeMask));
    A.EnumeratedChoice = A.PointerChoice;
    break;
  case TransformKind::Vectorization:
  case TransformKind::NoTransformation:
    break;
  }
  return A;
}

void expectSameVector(const std::vector<double> &A,
                      const std::vector<double> &B, const char *What,
                      unsigned Step) {
  ASSERT_EQ(A.size(), B.size()) << What << " at step " << Step;
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_EQ(A[I], B[I]) << What << "[" << I << "] at step " << Step;
}

void expectSameObservation(const Observation &A, const Observation &B,
                           unsigned Step) {
  expectSameVector(A.Consumer, B.Consumer, "Consumer", Step);
  expectSameVector(A.Producer, B.Producer, "Producer", Step);
  expectSameVector(A.TransformMask, B.TransformMask, "TransformMask", Step);
  expectSameVector(A.InterchangeMask, B.InterchangeMask, "InterchangeMask",
                   Step);
  expectSameVector(A.FlatMask, B.FlatMask, "FlatMask", Step);
  ASSERT_EQ(A.InPointerSequence, B.InPointerSequence) << "step " << Step;
  ASSERT_EQ(A.NumLoops, B.NumLoops) << "step " << Step;
}

class IncrementalEquivalenceFixture
    : public ::testing::TestWithParam<Corpus> {};

/// The lockstep sweep itself, over any (thread-safe, deterministic)
/// evaluator: both environments of each pair measure through \p Eval,
/// and \p Oracle cross-checks the final schedules from scratch.
void runLockstepSweep(const Corpus &Param, Evaluator &Eval,
                      CostModelEvaluator &Oracle) {
  std::vector<Module> Corpus = Param.Build();
  ASSERT_FALSE(Corpus.empty());

  EnvConfig Incremental = EnvConfig::laptop();
  Incremental.Reward = Param.Reward;
  Incremental.Incremental = true;
  EnvConfig FromScratch = Incremental;
  FromScratch.Incremental = false;

  uint64_t Seed = 0x1234;
  for (const Module &M : Corpus) {
    Environment Inc(Incremental, Eval, M);
    Environment Ref(FromScratch, Eval, M);
    Rng IncRng(Seed), RefRng(Seed);
    ++Seed;

    unsigned Step = 0;
    expectSameObservation(Inc.observe(), Ref.observe(), Step);
    while (!Inc.isDone()) {
      ASSERT_FALSE(Ref.isDone()) << M.getName();
      AgentAction A =
          randomMaskedAction(Inc.observe(), Incremental, IncRng);
      AgentAction B =
          randomMaskedAction(Ref.observe(), FromScratch, RefRng);
      Environment::StepOutcome OutA = Inc.step(A);
      Environment::StepOutcome OutB = Ref.step(B);
      ++Step;
      ASSERT_EQ(OutA.Reward, OutB.Reward)
          << M.getName() << " reward at step " << Step;
      ASSERT_EQ(OutA.Done, OutB.Done) << M.getName() << " step " << Step;
      expectSameObservation(Inc.observe(), Ref.observe(), Step);
      ASSERT_LT(Step, 10000u) << "runaway episode";
    }
    ASSERT_TRUE(Ref.isDone());

    // End-of-episode artifacts: schedule, prices, accounting.
    EXPECT_EQ(Inc.getSchedule().toString(), Ref.getSchedule().toString())
        << M.getName();
    EXPECT_EQ(Inc.currentSpeedup(), Ref.currentSpeedup()) << M.getName();
    EXPECT_EQ(Inc.getMeasurementSeconds(), Ref.getMeasurementSeconds())
        << M.getName();
    // The incremental price of the final schedule equals pricing the
    // same schedule from scratch through the module-level oracle.
    EXPECT_EQ(Oracle.timeModule(M, Inc.getSchedule()),
              Oracle.timeModule(M, Ref.getSchedule()))
        << M.getName();
  }
}

} // namespace

TEST_P(IncrementalEquivalenceFixture, LockstepEpisodesMatchBitwise) {
  CostModelEvaluator Eval(MachineModel::xeonE5_2680v4());
  runLockstepSweep(GetParam(), Eval, Eval);
}

TEST_P(IncrementalEquivalenceFixture,
       LockstepEpisodesMatchThroughSharedStripedMemo) {
  // The same sweep with both environments pricing through one shared
  // lock-striped CachingEvaluator: the incremental path answers from
  // the per-op memo, the from-scratch path from the whole-program memo,
  // and hit-vs-miss must never change a returned price. A fresh oracle
  // (outside the memo) cross-checks the final schedules.
  CostModelEvaluator Inner(MachineModel::xeonE5_2680v4());
  CachingEvaluator Shared(Inner, /*Capacity=*/1u << 12, /*Shards=*/8);
  CostModelEvaluator Oracle(MachineModel::xeonE5_2680v4());
  runLockstepSweep(GetParam(), Shared, Oracle);
  // The sweep actually exercised both memo tables.
  EXPECT_GT(Shared.getOpCounters().total(), 0u);
  EXPECT_GT(Shared.getCounters().total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DatasetGenerators, IncrementalEquivalenceFixture,
    ::testing::Values(
        Corpus{"DnnOperatorsFinal", dnnOperators, RewardMode::Final},
        Corpus{"DnnOperatorsImmediate", dnnOperators, RewardMode::Immediate},
        Corpus{"ModelImmediate", evaluationModel, RewardMode::Immediate},
        Corpus{"LqcdImmediate", lqcdKernels, RewardMode::Immediate},
        Corpus{"SequencesFinal", operatorSequences, RewardMode::Final},
        Corpus{"SequencesImmediate", operatorSequences,
               RewardMode::Immediate}),
    [](const ::testing::TestParamInfo<Corpus> &Info) {
      return std::string(Info.param.Name);
    });
