//===- VecEnvTest.cpp - Vectorized rollouts are exactly sequential ones ------===//
//
// The vectorized environment advances B episodes in lockstep through the
// batched policy path. Episode RNG streams are private per environment
// and the batched forward is bitwise row-identical to the single path,
// so a VecEnv rollout must reproduce B sequential single-environment
// rollouts *bitwise* -- same actions, log-probs, values and rewards.
// (Whole-training invariance to batch width and thread counts is swept
// by DeterminismMatrixTest; the shared helpers live in TestUtil.h.)
//
//===----------------------------------------------------------------------===//

#include "env/VecEnv.h"

#include "TestUtil.h"
#include "datasets/DnnOps.h"
#include "perf/Runner.h"
#include "rl/MlirRl.h"

#include <gtest/gtest.h>

using namespace mlirrl;
using mlirrl::testutil::tinyNet;

namespace {

std::vector<Module> testModules() {
  return {makeMatmulModule(64, 64, 64), makeReluModule({512, 128}),
          makeMatmulModule(128, 64, 32), makeReluModule({256, 256})};
}

/// One recorded step of a rollout, in plain doubles.
struct TraceStep {
  AgentAction Action;
  double LogProb = 0.0;
  double Value = 0.0;
  double Reward = 0.0;
};

/// Rolls every module sequentially through single Environments with
/// act(), one derived RNG stream per episode -- the reference the
/// vectorized path must reproduce.
std::vector<std::vector<TraceStep>>
rollSequential(const EnvConfig &Config, const ActorCritic &Agent,
               Evaluator &Eval, const std::vector<Module> &Samples,
               uint64_t Seed) {
  std::vector<std::vector<TraceStep>> Traces(Samples.size());
  for (unsigned E = 0; E < Samples.size(); ++E) {
    Rng EpisodeRng(Rng::deriveSeed(Seed, E));
    Environment Env(Config, Eval, Samples[E]);
    while (!Env.isDone()) {
      ActorCritic::Sampled S = Agent.act(Env.observe(), EpisodeRng);
      Environment::StepOutcome Out = Env.step(S.Action);
      Traces[E].push_back({S.Action, S.LogProb, S.Value, Out.Reward});
    }
  }
  return Traces;
}

/// Rolls the same modules through one lockstep VecEnv with actBatch().
std::vector<std::vector<TraceStep>>
rollVectorized(const EnvConfig &Config, const ActorCritic &Agent,
               Evaluator &Eval, std::vector<Module> Samples, uint64_t Seed) {
  unsigned B = static_cast<unsigned>(Samples.size());
  VecEnv Vec(Config, Eval, std::move(Samples));
  std::vector<Rng> Rngs;
  for (unsigned E = 0; E < B; ++E)
    Rngs.emplace_back(Rng::deriveSeed(Seed, E));

  std::vector<std::vector<TraceStep>> Traces(B);
  while (!Vec.allDone()) {
    std::vector<unsigned> Live = Vec.liveIndices();
    std::vector<const Observation *> Obs = Vec.observeLive();
    std::vector<Rng *> RngPtrs;
    for (unsigned Idx : Live)
      RngPtrs.push_back(&Rngs[Idx]);
    std::vector<ActorCritic::Sampled> Sampled = Agent.actBatch(Obs, RngPtrs);
    std::vector<AgentAction> Actions;
    for (const ActorCritic::Sampled &S : Sampled)
      Actions.push_back(S.Action);
    std::vector<VecEnv::StepOutcome> Outs = Vec.step(Actions);
    for (unsigned K = 0; K < Live.size(); ++K)
      Traces[Live[K]].push_back({Sampled[K].Action, Sampled[K].LogProb,
                                 Sampled[K].Value, Outs[K].Reward});
  }
  return Traces;
}

void expectSameTraces(const std::vector<std::vector<TraceStep>> &A,
                      const std::vector<std::vector<TraceStep>> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (unsigned E = 0; E < A.size(); ++E) {
    ASSERT_EQ(A[E].size(), B[E].size()) << "episode " << E;
    for (unsigned S = 0; S < A[E].size(); ++S) {
      const TraceStep &X = A[E][S];
      const TraceStep &Y = B[E][S];
      EXPECT_EQ(X.Action.Kind, Y.Action.Kind) << E << "/" << S;
      EXPECT_EQ(X.Action.TileSizeIdx, Y.Action.TileSizeIdx) << E << "/" << S;
      EXPECT_EQ(X.Action.PointerChoice, Y.Action.PointerChoice);
      EXPECT_EQ(X.Action.EnumeratedChoice, Y.Action.EnumeratedChoice);
      EXPECT_EQ(X.Action.FlatChoice, Y.Action.FlatChoice);
      EXPECT_SAME_BITS(X.LogProb, Y.LogProb);
      EXPECT_SAME_BITS(X.Value, Y.Value);
      EXPECT_SAME_BITS(X.Reward, Y.Reward);
    }
  }
}

} // namespace

TEST(VecEnvTest, BatchedRolloutsAreBitwiseSequentialRollouts) {
  EnvConfig Config = EnvConfig::laptop();
  Runner Run(MachineModel::xeonE5_2680v4());
  ActorCritic Agent(Config, Featurizer(Config).featureSize(), tinyNet(),
                    /*Seed=*/11);

  std::vector<Module> Samples = testModules();
  auto Sequential = rollSequential(Config, Agent, Run, Samples, /*Seed=*/40);
  auto Vectorized = rollVectorized(Config, Agent, Run, Samples, /*Seed=*/40);
  expectSameTraces(Sequential, Vectorized);
}

TEST(VecEnvTest, EnumeratedInterchangeRolloutsMatchToo) {
  EnvConfig Config = EnvConfig::laptop();
  Config.Interchange = InterchangeMode::Enumerated;
  Runner Run(MachineModel::xeonE5_2680v4());
  ActorCritic Agent(Config, Featurizer(Config).featureSize(), tinyNet(),
                    /*Seed=*/12);
  std::vector<Module> Samples = testModules();
  auto Sequential = rollSequential(Config, Agent, Run, Samples, /*Seed=*/41);
  auto Vectorized = rollVectorized(Config, Agent, Run, Samples, /*Seed=*/41);
  expectSameTraces(Sequential, Vectorized);
}

TEST(VecEnvTest, FlatActionSpaceRolloutsMatchToo) {
  EnvConfig Config = EnvConfig::laptop();
  Config.ActionSpace = ActionSpaceMode::Flat;
  Runner Run(MachineModel::xeonE5_2680v4());
  ActorCritic Agent(Config, Featurizer(Config).featureSize(), tinyNet(),
                    /*Seed=*/13);
  std::vector<Module> Samples = testModules();
  auto Sequential = rollSequential(Config, Agent, Run, Samples, /*Seed=*/42);
  auto Vectorized = rollVectorized(Config, Agent, Run, Samples, /*Seed=*/42);
  expectSameTraces(Sequential, Vectorized);
}

TEST(VecEnvTest, CachingEvaluatorPreservesRewardsAndCounts) {
  EnvConfig Config = EnvConfig::laptop();
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  ActorCritic Agent(Config, Featurizer(Config).featureSize(), tinyNet(),
                    /*Seed=*/14);

  Runner Direct(Machine);
  CostModelEvaluator Inner(Machine);
  CachingEvaluator Cached(Inner);

  std::vector<Module> Samples = testModules();
  auto Plain = rollVectorized(Config, Agent, Direct, Samples, /*Seed=*/43);
  auto Memoized = rollVectorized(Config, Agent, Cached, Samples, /*Seed=*/43);
  expectSameTraces(Plain, Memoized);

  HitMissCounters Counters = Cached.getCounters();
  EXPECT_GT(Counters.total(), 0u);
  // Every episode re-times its module's baseline; four episodes over
  // four distinct modules miss once each and hit at least nothing --
  // but replaying the same batch must now hit.
  uint64_t MissesBefore = Counters.Misses.load(std::memory_order_relaxed);
  rollVectorized(Config, Agent, Cached, Samples, /*Seed=*/43);
  HitMissCounters After = Cached.getCounters();
  EXPECT_EQ(After.Misses.load(std::memory_order_relaxed), MissesBefore);
  EXPECT_GT(After.Hits.load(std::memory_order_relaxed),
            Counters.Hits.load(std::memory_order_relaxed));
}

//===----------------------------------------------------------------------===//
// Robustness: degenerate batches and malformed action vectors.
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

TEST(VecEnvRobustness, EmptyBatchIsInert) {
  EnvConfig Config = EnvConfig::laptop();
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  Runner Eval(Machine);
  uint64_t Before =
      robustnessCounter(RobustnessEvent::VecEnvEmptyBatch).Misses.load();
  VecEnv Vec(Config, Eval, {});
  EXPECT_EQ(Vec.size(), 0u);
  EXPECT_TRUE(Vec.allDone());
  EXPECT_TRUE(Vec.observeLive().empty());
  EXPECT_EQ(robustnessCounter(RobustnessEvent::VecEnvEmptyBatch).Misses.load(),
            Before + 1);
}

TEST(VecEnvRobustness, ActionArityMismatchStepsNothing) {
  EnvConfig Config = EnvConfig::laptop();
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  Runner Eval(Machine);
  VecEnv Vec(Config, Eval, testModules());
  ASSERT_EQ(Vec.liveIndices().size(), 4u);

  uint64_t Before = robustnessCounter(RobustnessEvent::VecEnvActionArityMismatch)
                        .Misses.load();
  // Two actions for four live environments: nothing may advance.
  std::vector<AgentAction> TooFew(2);
  std::vector<VecEnv::StepOutcome> Outs = Vec.step(TooFew);
  EXPECT_EQ(Outs.size(), 4u);
  for (const VecEnv::StepOutcome &Out : Outs) {
    EXPECT_DOUBLE_EQ(Out.Reward, 0.0);
    EXPECT_FALSE(Out.Done);
  }
  EXPECT_EQ(Vec.liveIndices().size(), 4u);
  EXPECT_EQ(robustnessCounter(RobustnessEvent::VecEnvActionArityMismatch)
                .Misses.load(),
            Before + 1);

  // The batch still finishes normally with well-formed actions.
  AgentAction Stop;
  Stop.Kind = TransformKind::NoTransformation;
  while (!Vec.allDone())
    Vec.step(std::vector<AgentAction>(Vec.liveIndices().size(), Stop));
}
