//===- FeaturizerTest.cpp - Tests for the state representation --------------===//

#include "env/Featurizer.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace mlirrl;

namespace {

struct FeaturizerFixture : ::testing::Test {
  EnvConfig Config = EnvConfig::laptop();
  Featurizer Feat{Config};
  Module M{"m"};

  unsigned makeMatmul() {
    Builder B(M);
    std::string A = B.declareInput({64, 32});
    std::string Bv = B.declareInput({32, 16});
    B.matmul(A, Bv);
    return M.getNumOps() - 1;
  }
};

} // namespace

TEST_F(FeaturizerFixture, SizeIsStableAndMatchesLayout) {
  unsigned N = Config.MaxLoops;
  unsigned Expected = 6 + N * 3 + 1 +
                      Config.MaxArrays * Config.MaxRank * (N + 1) + 5 +
                      Config.MaxScheduleLength * N * Config.NumTileSizes +
                      Config.MaxScheduleLength * N * N;
  EXPECT_EQ(Feat.featureSize(), Expected);
  unsigned Op = makeMatmul();
  EXPECT_EQ(Feat.featurize(M, M.getOp(Op), ActionHistory()).size(), Expected);
}

TEST_F(FeaturizerFixture, OpTypeOneHot) {
  unsigned Op = makeMatmul();
  std::vector<double> F = Feat.featurize(M, M.getOp(Op), ActionHistory());
  // Categories: generic, matmul, conv, pooling, add, unknown.
  EXPECT_DOUBLE_EQ(F[0], 0.0);
  EXPECT_DOUBLE_EQ(F[1], 1.0);
  EXPECT_DOUBLE_EQ(F[2], 0.0);
  double Sum = F[0] + F[1] + F[2] + F[3] + F[4] + F[5];
  EXPECT_DOUBLE_EQ(Sum, 1.0);
}

TEST_F(FeaturizerFixture, LoopRangesEncodeBoundsAndKinds) {
  unsigned Op = makeMatmul();
  std::vector<double> F = Feat.featurize(M, M.getOp(Op), ActionHistory());
  // Loops start at offset 6; matmul bounds (64, 16, 32).
  EXPECT_NEAR(F[6 + 0], std::log2(64.0) / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(F[6 + 1], 1.0); // parallel
  EXPECT_DOUBLE_EQ(F[6 + 2], 0.0);
  // Third loop (d2) is the reduction.
  EXPECT_DOUBLE_EQ(F[6 + 2 * 3 + 1], 0.0);
  EXPECT_DOUBLE_EQ(F[6 + 2 * 3 + 2], 1.0);
  // Absent loops are all-zero.
  unsigned Last = 6 + (Config.MaxLoops - 1) * 3;
  EXPECT_DOUBLE_EQ(F[Last], 0.0);
  EXPECT_DOUBLE_EQ(F[Last + 1], 0.0);
}

TEST_F(FeaturizerFixture, VectorizationFlagDiffersByOp) {
  unsigned MatmulOp = makeMatmul();
  Builder B(M);
  std::string In = B.declareInput({1, 8, 16, 16});
  B.poolingMax(In, 2, 2, 2);
  unsigned PoolOp = M.getNumOps() - 1;

  unsigned FlagOffset = 6 + Config.MaxLoops * 3;
  std::vector<double> Fm =
      Feat.featurize(M, M.getOp(MatmulOp), ActionHistory());
  std::vector<double> Fp = Feat.featurize(M, M.getOp(PoolOp), ActionHistory());
  EXPECT_DOUBLE_EQ(Fm[FlagOffset], 1.0);
  EXPECT_DOUBLE_EQ(Fp[FlagOffset], 0.0);
}

TEST_F(FeaturizerFixture, AccessMatrixCoefficients) {
  unsigned Op = makeMatmul();
  std::vector<double> F = Feat.featurize(M, M.getOp(Op), ActionHistory());
  unsigned N = Config.MaxLoops;
  unsigned MapsOffset = 6 + N * 3 + 1;
  // First input map of matmul: (d0, d1, d2) -> (d0, d2).
  // Row 0 column 0 (coefficient of d0 in the first result) is 1 -> 1/8.
  EXPECT_NEAR(F[MapsOffset + 0], 1.0 / 8.0, 1e-12);
  // Row 1 column 2 (coefficient of d2 in the second result) is 1.
  EXPECT_NEAR(F[MapsOffset + (N + 1) + 2], 1.0 / 8.0, 1e-12);
  // Row 1 column 0 is 0.
  EXPECT_NEAR(F[MapsOffset + (N + 1)], 0.0, 1e-12);
}

TEST_F(FeaturizerFixture, HistoryTiledSlabOneHot) {
  unsigned Op = makeMatmul();
  ActionHistory H;
  H.recordTiled(0, TransformKind::Tiling, {3, 0, 5});
  std::vector<double> F = Feat.featurize(M, M.getOp(Op), H);

  unsigned N = Config.MaxLoops;
  unsigned HistOffset = 6 + N * 3 + 1 +
                        Config.MaxArrays * Config.MaxRank * (N + 1) + 5;
  unsigned MSizes = Config.NumTileSizes;
  // Step 0, loop 0, size index 3 must be hot.
  EXPECT_DOUBLE_EQ(F[HistOffset + 0 * MSizes + 3], 1.0);
  // Loop 2, size index 5 hot.
  EXPECT_DOUBLE_EQ(F[HistOffset + 2 * MSizes + 5], 1.0);
  // Step 1 slab is all zero.
  double Step1Sum = 0.0;
  for (unsigned I = 0; I < N * MSizes; ++I)
    Step1Sum += F[HistOffset + N * MSizes + I];
  EXPECT_DOUBLE_EQ(Step1Sum, 0.0);
}

TEST_F(FeaturizerFixture, HistoryInterchangeSlabPartial) {
  unsigned Op = makeMatmul();
  ActionHistory H;
  // Partial placement: position 0 <- loop 2 chosen, rest pending.
  H.recordInterchange(1, {2, -1, -1});
  std::vector<double> F = Feat.featurize(M, M.getOp(Op), H);

  unsigned N = Config.MaxLoops;
  unsigned Base = 6 + N * 3 + 1 + Config.MaxArrays * Config.MaxRank * (N + 1) +
                  5 + Config.MaxScheduleLength * N * Config.NumTileSizes;
  // Step 1 slab, position 0, loop 2.
  unsigned Idx = Base + 1 * N * N + 0 * N + 2;
  EXPECT_DOUBLE_EQ(F[Idx], 1.0);
  // Position 1 row all zero (pending).
  for (unsigned L = 0; L < N; ++L)
    EXPECT_DOUBLE_EQ(F[Base + 1 * N * N + 1 * N + L], 0.0);
}

TEST_F(FeaturizerFixture, ZeroVectorForMissingProducer) {
  std::vector<double> Z = Feat.zeroVector();
  EXPECT_EQ(Z.size(), Feat.featureSize());
  for (double V : Z)
    EXPECT_DOUBLE_EQ(V, 0.0);
}
