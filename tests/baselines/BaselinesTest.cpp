//===- BaselinesTest.cpp - Tests for the comparison systems ------------------===//

#include "baselines/HalideRl.h"
#include "baselines/LibraryOracle.h"
#include "baselines/Mullapudi.h"
#include "baselines/RandomSearch.h"
#include "datasets/DnnOps.h"
#include "datasets/Lqcd.h"
#include "ir/Builder.h"
#include "perf/Runner.h"
#include "transforms/Apply.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

struct BaselineFixture : ::testing::Test {
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  CostModel Model{Machine};

  double baselineSeconds(const Module &M) {
    return Model.estimateModule(materializeBaseline(M));
  }
};

} // namespace

TEST_F(BaselineFixture, PyTorchBeatsUnoptimizedOnMatmul) {
  Module M = makeMatmulModule(512, 512, 512);
  LibraryOracle Torch(Machine, LibraryProfile::pytorchEager());
  double Speedup = baselineSeconds(M) / Torch.timeModule(M);
  // Library GEMM vs scalar chained baseline: hundreds of times faster.
  EXPECT_GT(Speedup, 50.0);
  EXPECT_LT(Speedup, 5000.0);
}

TEST_F(BaselineFixture, TorchCompileAtLeastAsFastAsEager) {
  LibraryOracle Eager(Machine, LibraryProfile::pytorchEager());
  LibraryOracle Compiled(Machine, LibraryProfile::pytorchCompile());
  for (const OperatorBenchmark &B : makeOperatorBenchmarks())
    EXPECT_LE(Compiled.timeModule(B.M), Eager.timeModule(B.M) * 1.001)
        << B.OperatorName << " " << B.SizeName;
}

TEST_F(BaselineFixture, CompileFusesElementwiseChains) {
  Module M("chain");
  {
    Builder B(M);
    std::string X = B.declareInput({4096, 4096});
    std::string R = B.relu(X);
    B.sigmoid(R);
  }
  LibraryOracle Eager(Machine, LibraryProfile::pytorchEager());
  LibraryOracle Compiled(Machine, LibraryProfile::pytorchCompile());
  // Fusion removes one full pass over the 64 MiB intermediate.
  EXPECT_LT(Compiled.timeModule(M), Eager.timeModule(M) * 0.75);
}

TEST_F(BaselineFixture, OverheadDominatesTinyOps) {
  Module M = makeAddModule({8, 8});
  LibraryOracle Torch(Machine, LibraryProfile::pytorchEager());
  // A tiny add is pure dispatch overhead for the framework.
  EXPECT_GT(Torch.timeModule(M), 9e-6);
}

TEST_F(BaselineFixture, HalideRlVectorizesPooling) {
  Module M = makeMaxpoolModule(1, 64, 112, 112, 2, 2);
  HalideRlBaseline Halide(Machine);
  double Best = 0.0;
  HalideDirectives D = Halide.bestDirectives(M, 0, &Best);
  EXPECT_TRUE(D.Vectorize); // MLIR cannot, Halide can (Sec. VII-C1)
  EXPECT_LT(Best, baselineSeconds(M));
}

TEST_F(BaselineFixture, HalideRlWeakOnMatmulStrongOnElementwise) {
  HalideRlBaseline Halide(Machine);
  // Elementwise: near the parallel-bandwidth bound.
  Module Add = makeAddModule({4096, 4096});
  double AddSpeedup = baselineSeconds(Add) / Halide.timeModule(Add);
  EXPECT_GT(AddSpeedup, 4.0);
  // Matmul: no reduction tiling, so far below the library oracle.
  Module Mm = makeMatmulModule(1024, 1024, 1024);
  LibraryOracle Torch(Machine, LibraryProfile::pytorchEager());
  EXPECT_GT(Torch.timeModule(Mm) * 2.0 < Halide.timeModule(Mm)
                ? Halide.timeModule(Mm) / Torch.timeModule(Mm)
                : 99.0,
            2.0);
}

TEST_F(BaselineFixture, MullapudiSpeedsUpLqcd) {
  Module M = makeDibaryonDibaryon(12);
  MullapudiAutoscheduler Sched(Machine);
  double Speedup = baselineSeconds(M) / Sched.timeModule(M);
  EXPECT_GT(Speedup, 1.0);
}

TEST_F(BaselineFixture, MullapudiPicksFittingTiles) {
  Module M = makeMatmulModule(1024, 1024, 1024);
  MullapudiAutoscheduler Sched(Machine);
  HalideDirectives D = Sched.scheduleOp(M, 0);
  EXPECT_TRUE(D.Parallel);
  EXPECT_TRUE(D.Vectorize);
  EXPECT_GT(D.PureTile, 0);
}

TEST_F(BaselineFixture, RandomSearchFindsSpeedupAndIsDeterministic) {
  Module M = makeMatmulModule(256, 256, 256);
  Runner Run(Machine);
  RandomSearchResult A =
      randomSearch(EnvConfig::laptop(), Run, M, /*Episodes=*/30, 7);
  RandomSearchResult B =
      randomSearch(EnvConfig::laptop(), Run, M, /*Episodes=*/30, 7);
  EXPECT_GT(A.Speedup, 1.5);
  EXPECT_DOUBLE_EQ(A.Speedup, B.Speedup);
  EXPECT_EQ(A.EpisodesUsed, 30u);
}

TEST_F(BaselineFixture, RandomSearchScheduleReplays) {
  Module M = makeMatmulModule(256, 256, 256);
  Runner Run(Machine);
  RandomSearchResult R =
      randomSearch(EnvConfig::laptop(), Run, M, /*Episodes=*/20, 3);
  // The returned schedule must reproduce the reported speedup.
  EXPECT_NEAR(Run.speedup(M, R.Schedule), R.Speedup, 1e-9);
}
