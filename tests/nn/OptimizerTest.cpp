//===- OptimizerTest.cpp - Tests for Adam / SGD and training dynamics -------===//

#include "nn/Layers.h"
#include "nn/Optimizer.h"
#include "nn/Serialization.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace mlirrl;
using namespace mlirrl::nn;

TEST(OptimizerTest, SgdDescendsQuadratic) {
  // minimize (x - 3)^2.
  Tensor X = Tensor::parameter(1, 1, {0.0});
  Sgd Opt({X}, 0.1);
  for (int I = 0; I < 100; ++I) {
    Opt.zeroGrad();
    Tensor Diff = sub(X, Tensor::scalar(3.0));
    Tensor Loss = sumAll(hadamard(Diff, Diff));
    Loss.backward();
    Opt.step();
  }
  EXPECT_NEAR(X.item(), 3.0, 1e-4);
}

TEST(OptimizerTest, AdamDescendsQuadratic) {
  Tensor X = Tensor::parameter(1, 2, {-4.0, 7.0});
  Adam Opt({X}, 0.1);
  for (int I = 0; I < 300; ++I) {
    Opt.zeroGrad();
    Tensor Target = Tensor::fromData(1, 2, {1.0, -2.0});
    Tensor Diff = sub(X, Target);
    sumAll(hadamard(Diff, Diff)).backward();
    Opt.step();
  }
  EXPECT_NEAR(X.at(0, 0), 1.0, 1e-2);
  EXPECT_NEAR(X.at(0, 1), -2.0, 1e-2);
}

TEST(OptimizerTest, AdamStepSizeBounded) {
  // First Adam step moves by ~lr regardless of gradient scale.
  Tensor X = Tensor::parameter(1, 1, {0.0});
  Adam Opt({X}, 0.5);
  Opt.zeroGrad();
  sumAll(scale(X, 1e6)).backward();
  Opt.step();
  EXPECT_NEAR(std::fabs(X.item()), 0.5, 0.01);
}

TEST(OptimizerTest, GradClipScalesDown) {
  Tensor A = Tensor::parameter(1, 2, {0, 0});
  A.node()->Grad = {3.0, 4.0}; // norm 5
  double Norm = clipGradNorm({A}, 1.0);
  EXPECT_DOUBLE_EQ(Norm, 5.0);
  EXPECT_NEAR(A.grad()[0], 0.6, 1e-12);
  EXPECT_NEAR(A.grad()[1], 0.8, 1e-12);
}

TEST(OptimizerTest, GradClipNoOpUnderLimit) {
  Tensor A = Tensor::parameter(1, 2, {0, 0});
  A.node()->Grad = {0.3, 0.4};
  clipGradNorm({A}, 1.0);
  EXPECT_DOUBLE_EQ(A.grad()[0], 0.3);
}

TEST(OptimizerTest, LinearRegressionConverges) {
  // Fit y = 2x - 1 with a Linear layer.
  Rng R(42);
  Linear L(1, 1, R);
  Adam Opt(L.parameters(), 0.05);
  for (int Iter = 0; Iter < 500; ++Iter) {
    Opt.zeroGrad();
    std::vector<Tensor> Losses;
    for (double Xv : {-1.0, 0.0, 1.0, 2.0}) {
      Tensor X = Tensor::fromData(1, 1, {Xv});
      Tensor Y = Tensor::fromData(1, 1, {2 * Xv - 1});
      Tensor Diff = sub(L.forward(X), Y);
      Losses.push_back(sumAll(hadamard(Diff, Diff)));
    }
    meanOf(Losses).backward();
    Opt.step();
  }
  Tensor Pred = L.forward(Tensor::fromData(1, 1, {5.0}));
  EXPECT_NEAR(Pred.item(), 9.0, 0.05);
}

TEST(SerializationTest, SaveLoadRoundTrip) {
  Rng R(7);
  Linear L(3, 2, R);
  std::string Path = testing::TempDir() + "/mlirrl_params_test.txt";
  ASSERT_TRUE(saveParameters(L.parameters(), Path));

  Rng R2(99);
  Linear L2(3, 2, R2);
  // Different init; after load they must match L.
  ASSERT_TRUE(loadParameters(L2.parameters(), Path));
  for (unsigned I = 0; I < 3; ++I)
    for (unsigned J = 0; J < 2; ++J)
      EXPECT_DOUBLE_EQ(L2.parameters()[0].at(I, J),
                       L.parameters()[0].at(I, J));
}

TEST(SerializationTest, LoadRejectsShapeMismatch) {
  Rng R(7);
  Linear L(3, 2, R);
  std::string Path = testing::TempDir() + "/mlirrl_params_mismatch.txt";
  ASSERT_TRUE(saveParameters(L.parameters(), Path));
  Linear Bigger(4, 2, R);
  EXPECT_FALSE(loadParameters(Bigger.parameters(), Path));
}

TEST(SerializationTest, LoadRejectsMissingFile) {
  Rng R(7);
  Linear L(2, 2, R);
  EXPECT_FALSE(loadParameters(L.parameters(), "/nonexistent/path.txt"));
}
