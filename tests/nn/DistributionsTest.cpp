//===- DistributionsTest.cpp - Tests for masked categoricals ----------------===//

#include "nn/Distributions.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace mlirrl;
using namespace mlirrl::nn;

TEST(CategoricalTest, ProbabilitiesSumToOne) {
  Tensor Logits = Tensor::fromData(1, 4, {0.1, 2.0, -1.0, 0.5});
  MaskedCategorical Dist(Logits);
  double Sum = 0.0;
  for (double P : Dist.probabilities())
    Sum += P;
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(CategoricalTest, MaskZeroesProbabilities) {
  Tensor Logits = Tensor::fromData(1, 4, {5.0, 1.0, 1.0, 1.0});
  Tensor Mask = Tensor::fromData(1, 4, {0, 1, 1, 1});
  MaskedCategorical Dist(Logits, Mask);
  std::vector<double> P = Dist.probabilities();
  EXPECT_DOUBLE_EQ(P[0], 0.0);
  EXPECT_NEAR(P[1] + P[2] + P[3], 1.0, 1e-9);
  EXPECT_TRUE(Dist.isMasked(0));
  EXPECT_FALSE(Dist.isMasked(1));
}

TEST(CategoricalTest, SamplingNeverPicksMasked) {
  Tensor Logits = Tensor::fromData(1, 3, {10.0, 0.0, 0.0});
  Tensor Mask = Tensor::fromData(1, 3, {0, 1, 1});
  MaskedCategorical Dist(Logits, Mask);
  Rng R(5);
  for (int I = 0; I < 200; ++I)
    EXPECT_NE(Dist.sample(R), 0u);
}

TEST(CategoricalTest, SamplingFollowsProbabilities) {
  Tensor Logits = Tensor::fromData(1, 2, {std::log(3.0), 0.0});
  MaskedCategorical Dist(Logits);
  Rng R(11);
  int Counts[2] = {0, 0};
  for (int I = 0; I < 8000; ++I)
    ++Counts[Dist.sample(R)];
  EXPECT_NEAR(static_cast<double>(Counts[0]) / Counts[1], 3.0, 0.35);
}

TEST(CategoricalTest, ArgmaxRespectsMask) {
  Tensor Logits = Tensor::fromData(1, 3, {10.0, 1.0, 2.0});
  Tensor Mask = Tensor::fromData(1, 3, {0, 1, 1});
  MaskedCategorical Dist(Logits, Mask);
  EXPECT_EQ(Dist.argmax(), 2u);
}

TEST(CategoricalTest, LogProbMatchesProbabilities) {
  Tensor Logits = Tensor::fromData(1, 3, {1.0, 2.0, 3.0});
  MaskedCategorical Dist(Logits);
  std::vector<double> P = Dist.probabilities();
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_NEAR(Dist.logProb(I).item(), std::log(P[I]), 1e-9);
}

TEST(CategoricalTest, EntropyUniformIsLogN) {
  Tensor Logits = Tensor::fromData(1, 8, std::vector<double>(8, 0.0));
  MaskedCategorical Dist(Logits);
  EXPECT_NEAR(Dist.entropy().item(), std::log(8.0), 1e-9);
}

TEST(CategoricalTest, EntropyMaskedUniformIsLogValidCount) {
  Tensor Logits = Tensor::fromData(1, 8, std::vector<double>(8, 0.0));
  Tensor Mask = Tensor::fromData(1, 8, {1, 1, 1, 0, 0, 0, 0, 1});
  MaskedCategorical Dist(Logits, Mask);
  EXPECT_NEAR(Dist.entropy().item(), std::log(4.0), 1e-9);
}

TEST(CategoricalTest, PeakyDistributionLowEntropy) {
  Tensor Logits = Tensor::fromData(1, 4, {20.0, 0.0, 0.0, 0.0});
  MaskedCategorical Dist(Logits);
  EXPECT_LT(Dist.entropy().item(), 0.01);
}
