//===- GradCheckTest.cpp - Numerical gradient verification ------------------===//
//
// Central-difference gradient checks over every differentiable op and the
// composite layers (Linear, MLP, LSTM cell, masked categorical heads).
//
//===----------------------------------------------------------------------===//

#include "nn/Distributions.h"
#include "nn/Layers.h"
#include "nn/Lstm.h"
#include "nn/Ops.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

/// Checks d(Loss)/d(Param) against central differences for every entry.
void checkGradient(const Tensor &Param,
                   const std::function<Tensor()> &BuildLoss,
                   double Eps = 1e-5, double Tol = 1e-5) {
  Tensor Loss = BuildLoss();
  Param.zeroGrad();
  Loss.backward();
  std::vector<double> Analytic(Param.grad().begin(), Param.grad().end());

  for (size_t I = 0; I < Param.size(); ++I) {
    double Saved = Param.node()->Data[I];
    Param.node()->Data[I] = Saved + Eps;
    double Plus = BuildLoss().item();
    Param.node()->Data[I] = Saved - Eps;
    double Minus = BuildLoss().item();
    Param.node()->Data[I] = Saved;
    double Numeric = (Plus - Minus) / (2 * Eps);
    double Scale = std::max({1.0, std::fabs(Analytic[I]),
                             std::fabs(Numeric)});
    EXPECT_NEAR(Analytic[I], Numeric, Tol * Scale)
        << "entry " << I << " of " << Param.size();
  }
}

Rng &testRng() {
  static Rng R(12345);
  return R;
}

Tensor randomParam(unsigned Rows, unsigned Cols) {
  std::vector<double> V(static_cast<size_t>(Rows) * Cols);
  for (double &X : V)
    X = testRng().nextDouble(-1.0, 1.0);
  return Tensor::parameter(Rows, Cols, std::move(V));
}

} // namespace

TEST(GradCheckTest, Matmul) {
  Tensor A = randomParam(3, 4);
  Tensor B = randomParam(4, 2);
  checkGradient(A, [&] { return sumAll(matmul(A, B)); });
  checkGradient(B, [&] { return sumAll(hadamard(matmul(A, B), matmul(A, B))); });
}

TEST(GradCheckTest, AddSubHadamard) {
  Tensor A = randomParam(2, 3);
  Tensor B = randomParam(2, 3);
  checkGradient(A, [&] { return sumAll(hadamard(add(A, B), sub(A, B))); });
}

TEST(GradCheckTest, AddBias) {
  Tensor X = randomParam(3, 4);
  Tensor B = randomParam(1, 4);
  checkGradient(B, [&] { return sumAll(hadamard(addBias(X, B), X)); });
  checkGradient(X, [&] { return sumAll(hadamard(addBias(X, B), X)); });
}

TEST(GradCheckTest, Nonlinearities) {
  Tensor X = randomParam(2, 5);
  checkGradient(X, [&] { return sumAll(tanhOp(X)); });
  checkGradient(X, [&] { return sumAll(sigmoidOp(X)); });
  checkGradient(X, [&] { return sumAll(expOp(scale(X, 0.3))); });
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Keep inputs away from 0 where the subgradient is ambiguous.
  Tensor X = Tensor::parameter(1, 4, {1.5, -2.0, 0.7, -0.3});
  checkGradient(X, [&] { return sumAll(relu(X)); });
}

TEST(GradCheckTest, ClampInterior) {
  Tensor X = Tensor::parameter(1, 4, {0.5, -0.5, 2.5, -2.5});
  checkGradient(X, [&] { return sumAll(clamp(X, -1.0, 1.0)); });
}

TEST(GradCheckTest, MinOp) {
  Tensor A = Tensor::parameter(1, 3, {1.0, -1.0, 2.0});
  Tensor B = Tensor::parameter(1, 3, {0.5, 0.5, 3.0});
  checkGradient(A, [&] { return sumAll(minOp(A, B)); });
  checkGradient(B, [&] { return sumAll(minOp(A, B)); });
}

TEST(GradCheckTest, LogSoftmax) {
  Tensor Logits = randomParam(2, 5);
  checkGradient(Logits, [&] {
    // Weighted sum of log-probs exercises off-diagonal terms.
    Tensor W = Tensor::fromData(2, 5, {1, 0, 2, 0, 1, 0, 1, 0, 3, 0});
    return sumAll(hadamard(logSoftmaxRows(Logits), W));
  });
}

TEST(GradCheckTest, MaskedLogSoftmax) {
  Tensor Logits = randomParam(1, 6);
  Tensor Mask = Tensor::fromData(1, 6, {1, 0, 1, 1, 0, 1});
  checkGradient(Logits, [&] {
    return pick(logSoftmaxRows(Logits, Mask), 0, 2);
  });
  // Masked entries receive zero gradient.
  Tensor Loss = pick(logSoftmaxRows(Logits, Mask), 0, 2);
  Logits.zeroGrad();
  Loss.backward();
  EXPECT_DOUBLE_EQ(Logits.grad()[1], 0.0);
  EXPECT_DOUBLE_EQ(Logits.grad()[4], 0.0);
}

TEST(GradCheckTest, Entropy) {
  Tensor Logits = randomParam(1, 5);
  checkGradient(Logits, [&] { return entropyOfLogits(Logits); });
}

TEST(GradCheckTest, MaskedEntropy) {
  Tensor Logits = randomParam(1, 5);
  Tensor Mask = Tensor::fromData(1, 5, {1, 1, 0, 1, 0});
  checkGradient(Logits, [&] { return entropyOfLogits(Logits, Mask); });
}

TEST(GradCheckTest, ConcatCols) {
  Tensor A = randomParam(1, 3);
  Tensor B = randomParam(1, 2);
  checkGradient(A, [&] { return sumAll(hadamard(concatCols(A, B),
                                                concatCols(A, B))); });
  checkGradient(B, [&] { return sumAll(hadamard(concatCols(A, B),
                                                concatCols(A, B))); });
}

TEST(GradCheckTest, MeanOf) {
  Tensor A = randomParam(1, 1);
  Tensor B = randomParam(1, 1);
  checkGradient(A, [&] {
    return meanOf({sumAll(hadamard(A, A)), sumAll(B), sumAll(A)});
  });
}

TEST(GradCheckTest, LinearLayer) {
  Rng R(7);
  Linear L(4, 3, R);
  Tensor X = randomParam(2, 4);
  for (const Tensor &P : L.parameters())
    checkGradient(P, [&] { return sumAll(tanhOp(L.forward(X))); });
}

TEST(GradCheckTest, MlpBackbone) {
  Rng R(8);
  Mlp Backbone(6, 8, 3, R);
  Tensor X = randomParam(1, 6);
  std::vector<Tensor> Params = Backbone.parameters();
  EXPECT_EQ(Params.size(), 6u); // 3 layers x (W, B)
  // Check the first and last layers' weights.
  checkGradient(Params.front(),
                [&] { return sumAll(Backbone.forward(X)); }, 1e-5, 1e-4);
  checkGradient(Params.back(),
                [&] { return sumAll(Backbone.forward(X)); }, 1e-5, 1e-4);
}

TEST(GradCheckTest, LstmCellStep) {
  Rng R(9);
  LstmCell Cell(3, 4, R);
  Tensor X1 = randomParam(1, 3);
  Tensor X2 = randomParam(1, 3);
  auto Loss = [&] { return sumAll(Cell.runSequence({X1, X2})); };
  // Inputs and a weight tensor.
  checkGradient(X1, Loss, 1e-5, 1e-4);
  checkGradient(X2, Loss, 1e-5, 1e-4);
  checkGradient(Cell.parameters()[0], Loss, 1e-5, 1e-4);
}

TEST(GradCheckTest, CategoricalLogProbGradient) {
  Tensor Logits = randomParam(1, 4);
  checkGradient(Logits, [&] {
    MaskedCategorical Dist(Logits);
    return Dist.logProb(1);
  });
}
