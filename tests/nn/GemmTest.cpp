//===- GemmTest.cpp - Blocked matmul vs. naive reference --------------------===//
//
// The blocked kernels must be bit-compatible in shape handling with a
// naive triple loop on every shape, in particular shapes that are not
// multiples of the blocking parameters (MC/KC/NC/MR tails).
//
//===----------------------------------------------------------------------===//

#include "nn/Gemm.h"
#include "nn/Ops.h"
#include "nn/Tensor.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

std::vector<double> randomData(Rng &R, unsigned N) {
  std::vector<double> V(N);
  for (double &X : V)
    X = R.nextDouble(-1.0, 1.0);
  return V;
}

/// Naive C += A . B reference.
void naiveNN(unsigned M, unsigned N, unsigned K, const std::vector<double> &A,
             const std::vector<double> &B, std::vector<double> &C) {
  for (unsigned I = 0; I < M; ++I)
    for (unsigned Kk = 0; Kk < K; ++Kk)
      for (unsigned J = 0; J < N; ++J)
        C[I * N + J] += A[I * K + Kk] * B[Kk * N + J];
}

struct Shape {
  unsigned M, K, N;
};

// Tails in every dimension: primes, ones, and sizes straddling the
// MR = 4 / MC = 64 / KC = 256 / NC = 512 block boundaries.
const Shape Shapes[] = {{1, 1, 1},    {1, 7, 3},    {4, 4, 4},
                        {5, 9, 7},    {3, 257, 13}, {65, 5, 17},
                        {2, 300, 520}, {67, 259, 33}, {128, 64, 96}};

} // namespace

TEST(GemmTest, BlockedNNMatchesNaive) {
  Rng R(42);
  for (const Shape &S : Shapes) {
    std::vector<double> A = randomData(R, S.M * S.K);
    std::vector<double> B = randomData(R, S.K * S.N);
    std::vector<double> Ref(S.M * S.N, 0.0), Out(S.M * S.N, 0.0);
    naiveNN(S.M, S.N, S.K, A, B, Ref);
    gemmAccNN(S.M, S.N, S.K, A.data(), S.K, B.data(), S.N, Out.data(), S.N);
    for (unsigned I = 0; I < S.M * S.N; ++I)
      EXPECT_NEAR(Out[I], Ref[I], 1e-12 * (1.0 + std::fabs(Ref[I])))
          << "M=" << S.M << " K=" << S.K << " N=" << S.N << " idx=" << I;
  }
}

TEST(GemmTest, BlockedNTMatchesNaive) {
  Rng R(43);
  for (const Shape &S : Shapes) {
    // C(MxN) += A(MxK) . B^T with B stored NxK.
    std::vector<double> A = randomData(R, S.M * S.K);
    std::vector<double> B = randomData(R, S.N * S.K);
    std::vector<double> Ref(S.M * S.N, 0.0), Out(S.M * S.N, 0.0);
    for (unsigned I = 0; I < S.M; ++I)
      for (unsigned J = 0; J < S.N; ++J)
        for (unsigned Kk = 0; Kk < S.K; ++Kk)
          Ref[I * S.N + J] += A[I * S.K + Kk] * B[J * S.K + Kk];
    gemmAccNT(S.M, S.N, S.K, A.data(), S.K, B.data(), S.K, Out.data(), S.N);
    for (unsigned I = 0; I < S.M * S.N; ++I)
      EXPECT_NEAR(Out[I], Ref[I], 1e-12 * (1.0 + std::fabs(Ref[I])));
  }
}

TEST(GemmTest, BlockedTNMatchesNaive) {
  Rng R(44);
  for (const Shape &S : Shapes) {
    // C(MxN) += A^T . B with A stored KxM.
    std::vector<double> A = randomData(R, S.K * S.M);
    std::vector<double> B = randomData(R, S.K * S.N);
    std::vector<double> Ref(S.M * S.N, 0.0), Out(S.M * S.N, 0.0);
    for (unsigned Kk = 0; Kk < S.K; ++Kk)
      for (unsigned I = 0; I < S.M; ++I)
        for (unsigned J = 0; J < S.N; ++J)
          Ref[I * S.N + J] += A[Kk * S.M + I] * B[Kk * S.N + J];
    gemmAccTN(S.M, S.N, S.K, A.data(), S.M, B.data(), S.N, Out.data(), S.N);
    for (unsigned I = 0; I < S.M * S.N; ++I)
      EXPECT_NEAR(Out[I], Ref[I], 1e-12 * (1.0 + std::fabs(Ref[I])));
  }
}

TEST(GemmTest, AccumulatesIntoExistingValues) {
  std::vector<double> A = {1.0, 2.0};  // 1x2
  std::vector<double> B = {3.0, 4.0};  // 2x1
  std::vector<double> C = {10.0};      // pre-filled
  gemmAccNN(1, 1, 2, A.data(), 2, B.data(), 1, C.data(), 1);
  EXPECT_DOUBLE_EQ(C[0], 10.0 + 3.0 + 8.0);
}

TEST(GemmTest, MatmulOpBackwardMatchesManualGradients) {
  // d/dA sum(A.B) = ones . B^T, d/dB = A^T . ones; random odd shapes so
  // the kernel tails are exercised through the autograd path too.
  Rng R(45);
  for (const Shape &S : {Shape{3, 5, 7}, Shape{1, 130, 9}, Shape{66, 3, 5}}) {
    Tensor A = Tensor::parameter(S.M, S.K, randomData(R, S.M * S.K));
    Tensor B = Tensor::parameter(S.K, S.N, randomData(R, S.K * S.N));
    Tensor Loss = sumAll(matmul(A, B));
    Loss.backward();

    for (unsigned I = 0; I < S.M; ++I)
      for (unsigned Kk = 0; Kk < S.K; ++Kk) {
        double Expect = 0.0;
        for (unsigned J = 0; J < S.N; ++J)
          Expect += B.at(Kk, J);
        EXPECT_NEAR(A.grad()[I * S.K + Kk], Expect, 1e-10);
      }
    for (unsigned Kk = 0; Kk < S.K; ++Kk)
      for (unsigned J = 0; J < S.N; ++J) {
        double Expect = 0.0;
        for (unsigned I = 0; I < S.M; ++I)
          Expect += A.at(I, Kk);
        EXPECT_NEAR(B.grad()[Kk * S.N + J], Expect, 1e-10);
      }
  }
}

TEST(GemmTest, MatmulBackwardHandlesZeroEntries) {
  // The seed's Aik == 0 short-circuit skipped gradient rows; zeros in A
  // must not disturb any gradient entry.
  Tensor A = Tensor::parameter(2, 2, {0.0, 1.0, 2.0, 0.0});
  Tensor B = Tensor::parameter(2, 2, {3.0, 4.0, 5.0, 6.0});
  Tensor Loss = sumAll(matmul(A, B));
  Loss.backward();
  // dA[i][k] = sum_j B[k][j].
  EXPECT_DOUBLE_EQ(A.grad()[0], 7.0);
  EXPECT_DOUBLE_EQ(A.grad()[1], 11.0);
  EXPECT_DOUBLE_EQ(A.grad()[2], 7.0);
  EXPECT_DOUBLE_EQ(A.grad()[3], 11.0);
  // dB[k][j] = sum_i A[i][k].
  EXPECT_DOUBLE_EQ(B.grad()[0], 2.0);
  EXPECT_DOUBLE_EQ(B.grad()[1], 2.0);
  EXPECT_DOUBLE_EQ(B.grad()[2], 1.0);
  EXPECT_DOUBLE_EQ(B.grad()[3], 1.0);
}

TEST(GemmTest, FusedLinearMatchesMatmulAddBias) {
  Rng R(46);
  unsigned M = 5, K = 37, N = 11;
  std::vector<double> Xd = randomData(R, M * K);
  std::vector<double> Wd = randomData(R, K * N);
  std::vector<double> Bd = randomData(R, N);

  Tensor X1 = Tensor::parameter(M, K, Xd);
  Tensor W1 = Tensor::parameter(K, N, Wd);
  Tensor B1 = Tensor::parameter(1, N, Bd);
  Tensor Fused = linear(X1, W1, B1);
  Tensor LossFused = sumAll(hadamard(Fused, Fused));
  LossFused.backward();

  Tensor X2 = Tensor::parameter(M, K, Xd);
  Tensor W2 = Tensor::parameter(K, N, Wd);
  Tensor B2 = Tensor::parameter(1, N, Bd);
  Tensor Ref = addBias(matmul(X2, W2), B2);
  Tensor LossRef = sumAll(hadamard(Ref, Ref));
  LossRef.backward();

  for (unsigned I = 0; I < M * N; ++I)
    EXPECT_NEAR(Fused.data()[I], Ref.data()[I], 1e-12);
  for (unsigned I = 0; I < M * K; ++I)
    EXPECT_NEAR(X1.grad()[I], X2.grad()[I], 1e-10);
  for (unsigned I = 0; I < K * N; ++I)
    EXPECT_NEAR(W1.grad()[I], W2.grad()[I], 1e-10);
  for (unsigned I = 0; I < N; ++I)
    EXPECT_NEAR(B1.grad()[I], B2.grad()[I], 1e-10);
}

//===----------------------------------------------------------------------===//
// Dtype-parameterized kernels: float accuracy and scalar/SIMD parity.
//===----------------------------------------------------------------------===//

namespace {

std::vector<float> randomDataF(Rng &R, unsigned N) {
  std::vector<float> V(N);
  for (float &X : V)
    X = static_cast<float>(R.nextDouble(-1.0, 1.0));
  return V;
}

// Edge shapes per dimension: ones, primes, and non-multiples of the
// MR = 4 register tile and the SIMD vector length (8 floats / 4
// doubles per 32-byte vector).
const Shape EdgeShapes[] = {{1, 1, 1},     {1, 31, 1},   {1, 1, 257},
                            {4, 8, 16},    {5, 9, 7},    {13, 31, 17},
                            {2, 3, 514},   {3, 257, 13}, {67, 259, 33},
                            {130, 100, 300}};

/// Float results accumulate up to K products of values in [-1, 1]; the
/// bound is the usual K * eps * |.| forward-error envelope with slack.
double floatTol(unsigned K, double Ref) {
  return 1e-4 * (1.0 + static_cast<double>(K) * 1e-2) *
         (1.0 + std::fabs(Ref));
}

/// Restores the dispatch mode on scope exit so a failing expectation
/// cannot leak a forced kernel into the other tests.
struct KernelScope {
  GemmKernel Saved = getGemmKernel();
  ~KernelScope() { setGemmKernel(Saved); }
};

} // namespace

TEST(GemmTest, FloatNNMatchesNaiveWithinRelError) {
  Rng R(52);
  for (const Shape &S : EdgeShapes) {
    std::vector<float> A = randomDataF(R, S.M * S.K);
    std::vector<float> B = randomDataF(R, S.K * S.N);
    std::vector<float> Out(S.M * S.N, 0.0f);
    std::vector<double> Ref(S.M * S.N, 0.0);
    for (unsigned I = 0; I < S.M; ++I)
      for (unsigned Kk = 0; Kk < S.K; ++Kk)
        for (unsigned J = 0; J < S.N; ++J)
          Ref[I * S.N + J] +=
              static_cast<double>(A[I * S.K + Kk]) * B[Kk * S.N + J];
    gemmAccNN(S.M, S.N, S.K, A.data(), S.K, B.data(), S.N, Out.data(), S.N);
    for (unsigned I = 0; I < S.M * S.N; ++I)
      EXPECT_NEAR(static_cast<double>(Out[I]), Ref[I], floatTol(S.K, Ref[I]))
          << "M=" << S.M << " K=" << S.K << " N=" << S.N << " idx=" << I;
  }
}

TEST(GemmTest, FloatNTMatchesNaiveWithinRelError) {
  Rng R(53);
  for (const Shape &S : EdgeShapes) {
    std::vector<float> A = randomDataF(R, S.M * S.K);
    std::vector<float> B = randomDataF(R, S.N * S.K);
    std::vector<float> Out(S.M * S.N, 0.0f);
    std::vector<double> Ref(S.M * S.N, 0.0);
    for (unsigned I = 0; I < S.M; ++I)
      for (unsigned J = 0; J < S.N; ++J)
        for (unsigned Kk = 0; Kk < S.K; ++Kk)
          Ref[I * S.N + J] +=
              static_cast<double>(A[I * S.K + Kk]) * B[J * S.K + Kk];
    gemmAccNT(S.M, S.N, S.K, A.data(), S.K, B.data(), S.K, Out.data(), S.N);
    for (unsigned I = 0; I < S.M * S.N; ++I)
      EXPECT_NEAR(static_cast<double>(Out[I]), Ref[I], floatTol(S.K, Ref[I]))
          << "M=" << S.M << " K=" << S.K << " N=" << S.N << " idx=" << I;
  }
}

TEST(GemmTest, FloatTNMatchesNaiveWithinRelError) {
  Rng R(54);
  for (const Shape &S : EdgeShapes) {
    std::vector<float> A = randomDataF(R, S.K * S.M);
    std::vector<float> B = randomDataF(R, S.K * S.N);
    std::vector<float> Out(S.M * S.N, 0.0f);
    std::vector<double> Ref(S.M * S.N, 0.0);
    for (unsigned Kk = 0; Kk < S.K; ++Kk)
      for (unsigned I = 0; I < S.M; ++I)
        for (unsigned J = 0; J < S.N; ++J)
          Ref[I * S.N + J] +=
              static_cast<double>(A[Kk * S.M + I]) * B[Kk * S.N + J];
    gemmAccTN(S.M, S.N, S.K, A.data(), S.M, B.data(), S.N, Out.data(), S.N);
    for (unsigned I = 0; I < S.M * S.N; ++I)
      EXPECT_NEAR(static_cast<double>(Out[I]), Ref[I], floatTol(S.K, Ref[I]))
          << "M=" << S.M << " K=" << S.K << " N=" << S.N << " idx=" << I;
  }
}

TEST(GemmTest, DoubleEdgeShapesMatchNaive) {
  Rng R(55);
  for (const Shape &S : EdgeShapes) {
    std::vector<double> A = randomData(R, S.M * S.K);
    std::vector<double> B = randomData(R, S.K * S.N);
    std::vector<double> Ref(S.M * S.N, 0.0), Out(S.M * S.N, 0.0);
    naiveNN(S.M, S.N, S.K, A, B, Ref);
    gemmAccNN(S.M, S.N, S.K, A.data(), S.K, B.data(), S.N, Out.data(), S.N);
    for (unsigned I = 0; I < S.M * S.N; ++I)
      EXPECT_NEAR(Out[I], Ref[I], 1e-12 * (1.0 + std::fabs(Ref[I])))
          << "M=" << S.M << " K=" << S.K << " N=" << S.N << " idx=" << I;
  }
}

TEST(GemmTest, DispatchedNNBitwiseEqualsScalarDouble) {
  if (!gemmSimdAvailable())
    GTEST_SKIP() << "no SIMD kernel in this build";
  KernelScope Restore;
  Rng R(56);
  for (const Shape &S : EdgeShapes) {
    std::vector<double> A = randomData(R, S.M * S.K);
    std::vector<double> B = randomData(R, S.K * S.N);
    // Pre-filled C checks that both kernels share the accumulate
    // contract, not just the product.
    std::vector<double> Cs(S.M * S.N, 0.125), Cv(S.M * S.N, 0.125);
    setGemmKernel(GemmKernel::Scalar);
    gemmAccNN(S.M, S.N, S.K, A.data(), S.K, B.data(), S.N, Cs.data(), S.N);
    setGemmKernel(GemmKernel::Simd);
    gemmAccNN(S.M, S.N, S.K, A.data(), S.K, B.data(), S.N, Cv.data(), S.N);
    EXPECT_EQ(0, std::memcmp(Cs.data(), Cv.data(), Cs.size() * sizeof(double)))
        << "M=" << S.M << " K=" << S.K << " N=" << S.N;
  }
}

TEST(GemmTest, DispatchedNNBitwiseEqualsScalarFloat) {
  if (!gemmSimdAvailable())
    GTEST_SKIP() << "no SIMD kernel in this build";
  KernelScope Restore;
  Rng R(57);
  for (const Shape &S : EdgeShapes) {
    std::vector<float> A = randomDataF(R, S.M * S.K);
    std::vector<float> B = randomDataF(R, S.K * S.N);
    std::vector<float> Cs(S.M * S.N, 0.125f), Cv(S.M * S.N, 0.125f);
    setGemmKernel(GemmKernel::Scalar);
    gemmAccNN(S.M, S.N, S.K, A.data(), S.K, B.data(), S.N, Cs.data(), S.N);
    setGemmKernel(GemmKernel::Simd);
    gemmAccNN(S.M, S.N, S.K, A.data(), S.K, B.data(), S.N, Cv.data(), S.N);
    EXPECT_EQ(0, std::memcmp(Cs.data(), Cv.data(), Cs.size() * sizeof(float)))
        << "M=" << S.M << " K=" << S.K << " N=" << S.N;
  }
}

//===----------------------------------------------------------------------===//
// Packed macro-kernel path: 0-ULP against the streaming kernels.
//===----------------------------------------------------------------------===//

namespace {

/// Restores the packing mode on scope exit (same rationale as
/// KernelScope).
struct PackingScope {
  GemmPacking Saved = getGemmPacking();
  ~PackingScope() { setGemmPacking(Saved); }
};

/// Packing-specific edge shapes on top of EdgeShapes: M=1 skinny calls
/// with wide/deep panels (the pack arena still has to handle a single
/// register-tile row), exact block multiples, and one-past-block sizes.
const Shape PackShapes[] = {{1, 259, 516}, {1, 512, 64},  {4, 256, 512},
                            {5, 257, 513}, {64, 256, 512}, {12, 1024, 48}};

/// Runs kernel Op (NN/NT/TN dispatcher below) with packing forced Off
/// then On and memcmps the two C buffers; repeated under Scalar and
/// (when available) Simd kernel dispatch. 0 ULP is the contract --
/// packing is pure layout -- and this is the empirical guard that no
/// packed loop got a different fp-contraction mix than its streaming
/// twin.
template <typename T, typename Kernel>
void expectPackedBitwiseEqual(const char *Name, unsigned Seed, Kernel Op,
                              bool SwapsAK) {
  KernelScope RestoreKernel;
  PackingScope RestorePacking;
  Rng R(Seed);
  std::vector<Shape> All(std::begin(EdgeShapes), std::end(EdgeShapes));
  All.insert(All.end(), std::begin(PackShapes), std::end(PackShapes));
  for (const Shape &S : All) {
    const unsigned ARows = SwapsAK ? S.K : S.M, ACols = SwapsAK ? S.M : S.K;
    std::vector<T> A(ARows * ACols), B(S.K * S.N);
    for (T &X : A)
      X = static_cast<T>(R.nextDouble(-1.0, 1.0));
    for (T &X : B)
      X = static_cast<T>(R.nextDouble(-1.0, 1.0));
    for (GemmKernel Kind : {GemmKernel::Scalar, GemmKernel::Simd}) {
      if (Kind == GemmKernel::Simd && !gemmSimdAvailable())
        continue;
      setGemmKernel(Kind);
      std::vector<T> Cu(S.M * S.N, static_cast<T>(0.125)),
          Cp(S.M * S.N, static_cast<T>(0.125));
      setGemmPacking(GemmPacking::Off);
      Op(S, A.data(), B.data(), Cu.data());
      setGemmPacking(GemmPacking::On);
      Op(S, A.data(), B.data(), Cp.data());
      EXPECT_EQ(0, std::memcmp(Cu.data(), Cp.data(), Cu.size() * sizeof(T)))
          << Name << " M=" << S.M << " K=" << S.K << " N=" << S.N
          << " kernel=" << (Kind == GemmKernel::Simd ? "simd" : "scalar");
    }
  }
}

template <typename T> struct GemmOps {
  static void nn(const Shape &S, const T *A, const T *B, T *C) {
    gemmAccNN(S.M, S.N, S.K, A, S.K, B, S.N, C, S.N);
  }
  // NT stores B as NxK.
  static void nt(const Shape &S, const T *A, const T *B, T *C) {
    gemmAccNT(S.M, S.N, S.K, A, S.K, B, S.K, C, S.N);
  }
  // TN stores A as KxM.
  static void tn(const Shape &S, const T *A, const T *B, T *C) {
    gemmAccTN(S.M, S.N, S.K, A, S.M, B, S.N, C, S.N);
  }
};

} // namespace

TEST(GemmTest, PackedNNBitwiseEqualsUnpackedDouble) {
  expectPackedBitwiseEqual<double>("NN", 60, GemmOps<double>::nn, false);
}

TEST(GemmTest, PackedNNBitwiseEqualsUnpackedFloat) {
  expectPackedBitwiseEqual<float>("NN", 61, GemmOps<float>::nn, false);
}

TEST(GemmTest, PackedNTBitwiseEqualsUnpackedDouble) {
  expectPackedBitwiseEqual<double>("NT", 62, GemmOps<double>::nt, false);
}

TEST(GemmTest, PackedNTBitwiseEqualsUnpackedFloat) {
  expectPackedBitwiseEqual<float>("NT", 63, GemmOps<float>::nt, false);
}

TEST(GemmTest, PackedTNBitwiseEqualsUnpackedDouble) {
  expectPackedBitwiseEqual<double>("TN", 64, GemmOps<double>::tn, true);
}

TEST(GemmTest, PackedTNBitwiseEqualsUnpackedFloat) {
  expectPackedBitwiseEqual<float>("TN", 65, GemmOps<float>::tn, true);
}

TEST(GemmTest, PackedTNPreservesZeroSkipSemantics) {
  // The TN zero-skip must survive packing bitwise, including the case
  // where skipping keeps a -0.0 in C that an unskipped 0-add would
  // flip to +0.0.
  PackingScope Restore;
  const unsigned M = 6, N = 8, K = 9; // remainder k's after the MR groups
  std::vector<double> A(K * M, 0.0), B(K * N);
  A[2 * M + 1] = 0.75; // one nonzero feature in an otherwise zero column
  Rng R(66);
  for (double &X : B)
    X = R.nextDouble(-1.0, 1.0);
  std::vector<double> Cu(M * N, -0.0), Cp(M * N, -0.0);
  setGemmPacking(GemmPacking::Off);
  gemmAccTN(M, N, K, A.data(), M, B.data(), N, Cu.data(), N);
  setGemmPacking(GemmPacking::On);
  gemmAccTN(M, N, K, A.data(), M, B.data(), N, Cp.data(), N);
  EXPECT_EQ(0, std::memcmp(Cu.data(), Cp.data(), Cu.size() * sizeof(double)));
  // Untouched rows keep their -0.0 bit pattern in both paths.
  EXPECT_TRUE(std::signbit(Cu[0]));
  EXPECT_TRUE(std::signbit(Cp[0]));
}

TEST(GemmTest, PackedParallelBitwiseIdenticalAcrossPoolSizes) {
  // The packed macro-kernel partitions rows across the installed pool
  // with a fixed block -> thread assignment; results must be bitwise
  // identical for every pool size (the determinism contract).
  PackingScope RestorePacking;
  setGemmPacking(GemmPacking::On);
  const unsigned M = 96, N = 160, K = 300; // above MinParallelWork
  Rng R(67);
  std::vector<double> Ann(M * K), Bnn(K * N), Ant(M * K), Bnt(N * K),
      Atn(K * M), Btn(K * N);
  for (auto *V : {&Ann, &Bnn, &Ant, &Bnt, &Atn, &Btn})
    for (double &X : *V)
      X = R.nextDouble(-1.0, 1.0);
  auto runAll = [&](std::vector<double> &C) {
    gemmAccNN(M, N, K, Ann.data(), K, Bnn.data(), N, C.data(), N);
    gemmAccNT(M, N, K, Ant.data(), K, Bnt.data(), K, C.data(), N);
    gemmAccTN(M, N, K, Atn.data(), M, Btn.data(), N, C.data(), N);
  };
  std::vector<double> Serial(M * N, 0.25);
  runAll(Serial);
  for (unsigned Threads : {2u, 4u}) {
    ThreadPool Pool(Threads);
    setGemmPool(&Pool);
    std::vector<double> Par(M * N, 0.25);
    runAll(Par);
    setGemmPool(nullptr);
    EXPECT_EQ(0,
              std::memcmp(Serial.data(), Par.data(), Par.size() * sizeof(double)))
        << "pool size " << Threads;
  }
}

TEST(GemmTest, PackArenaIsReusedAndAccounted) {
  PackingScope Restore;
  setGemmPacking(GemmPacking::On);
  const unsigned M = 64, N = 96, K = 128;
  std::vector<double> A(M * K, 0.5), B(K * N, 0.25), C(M * N, 0.0);
  auto Before = CacheStatsRegistry::instance().categoryStats("gemm.pack_arena");
  gemmAccNN(M, N, K, A.data(), K, B.data(), N, C.data(), N);
  const size_t Cap = gemmPackScratchCapacity();
  EXPECT_GT(Cap, 0u);
  gemmAccNN(M, N, K, A.data(), K, B.data(), N, C.data(), N);
  gemmAccNT(M, N, K, A.data(), K, B.data(), K, C.data(), N);
  auto After = CacheStatsRegistry::instance().categoryStats("gemm.pack_arena");
  // Steady state: later packed calls on this thread reuse the block
  // (hits), never grow it (no new misses beyond the first call's).
  EXPECT_GE(After.Hits, Before.Hits + 2);
  EXPECT_LE(After.Misses, Before.Misses + 1);
  EXPECT_EQ(gemmPackScratchCapacity(), Cap);
}

TEST(GemmTest, SimdLanesReportedForBothDtypes) {
  if (!gemmSimdAvailable()) {
    EXPECT_EQ(gemmSimdLanes(sizeof(double)), 1u);
    EXPECT_EQ(gemmSimdLanes(sizeof(float)), 1u);
    return;
  }
  // 32-byte vectors: 4 doubles / 8 floats per lane group.
  EXPECT_EQ(gemmSimdLanes(sizeof(double)), 4u);
  EXPECT_EQ(gemmSimdLanes(sizeof(float)), 8u);
}
