//===- TensorTest.cpp - Tests for the autograd engine -----------------------===//

#include "nn/Ops.h"
#include "nn/Tensor.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace mlirrl;
using namespace mlirrl::nn;

TEST(TensorTest, ConstructionAndAccess) {
  Tensor T = Tensor::fromData(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(T.rows(), 2u);
  EXPECT_EQ(T.cols(), 3u);
  EXPECT_DOUBLE_EQ(T.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(T.at(1, 2), 6.0);
  EXPECT_FALSE(T.requiresGrad());
}

TEST(TensorTest, ParameterRequiresGrad) {
  Tensor P = Tensor::parameter(1, 2, {0.5, -0.5});
  EXPECT_TRUE(P.requiresGrad());
}

TEST(TensorTest, RequiresGradPropagates) {
  Tensor A = Tensor::parameter(1, 2, {1, 2});
  Tensor B = Tensor::fromData(1, 2, {3, 4});
  EXPECT_TRUE(add(A, B).requiresGrad());
  EXPECT_FALSE(add(B, B).requiresGrad());
}

TEST(TensorTest, SimpleBackward) {
  // f = sum(a * b); df/da = b, df/db = a.
  Tensor A = Tensor::parameter(1, 3, {1, 2, 3});
  Tensor B = Tensor::parameter(1, 3, {4, 5, 6});
  Tensor F = sumAll(hadamard(A, B));
  EXPECT_DOUBLE_EQ(F.item(), 4 + 10 + 18);
  F.backward();
  EXPECT_DOUBLE_EQ(A.grad()[0], 4.0);
  EXPECT_DOUBLE_EQ(A.grad()[2], 6.0);
  EXPECT_DOUBLE_EQ(B.grad()[1], 2.0);
}

TEST(TensorTest, GradAccumulatesAcrossUses) {
  // f = sum(a + a): df/da = 2 per element.
  Tensor A = Tensor::parameter(1, 2, {1, 1});
  Tensor F = sumAll(add(A, A));
  F.backward();
  EXPECT_DOUBLE_EQ(A.grad()[0], 2.0);
}

TEST(TensorTest, DiamondGraphBackward) {
  // f = sum((a+a) * a) = 2*a^2 summed; df/da = 4a.
  Tensor A = Tensor::parameter(1, 2, {3, -2});
  Tensor F = sumAll(hadamard(add(A, A), A));
  F.backward();
  EXPECT_DOUBLE_EQ(A.grad()[0], 12.0);
  EXPECT_DOUBLE_EQ(A.grad()[1], -8.0);
}

TEST(TensorTest, ZeroGradClears) {
  Tensor A = Tensor::parameter(1, 1, {2.0});
  Tensor F = sumAll(hadamard(A, A));
  F.backward();
  EXPECT_NE(A.grad()[0], 0.0);
  A.zeroGrad();
  EXPECT_DOUBLE_EQ(A.grad()[0], 0.0);
}

TEST(TensorTest, DeepChainBackwardIterative) {
  // A 2000-deep chain must not overflow the stack (iterative DFS).
  Tensor A = Tensor::parameter(1, 1, {1.0});
  Tensor X = A;
  for (int I = 0; I < 2000; ++I)
    X = scale(X, 1.001);
  X.backward();
  EXPECT_NEAR(A.grad()[0], std::pow(1.001, 2000), 1e-6 * A.grad()[0]);
}
