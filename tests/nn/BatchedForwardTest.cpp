//===- BatchedForwardTest.cpp - Batched == per-sample at 0 ULP ---------------===//
//
// The batched policy path turns B GEMVs into one GEMM. The blocked GEMM
// accumulates every output element in the same K order for every batch
// size, and log-softmax is row-wise, so row r of a batched forward must
// be *bitwise* identical (0 ULP) to a single-observation forward of
// observation r -- the property the VecEnv determinism contract rests
// on. Verified here for batch sizes 1, 2 and 32 on both networks.
//
//===----------------------------------------------------------------------===//

#include "rl/Agent.h"

#include "TestUtil.h"
#include "datasets/DnnOps.h"
#include "env/Environment.h"
#include "perf/Runner.h"

#include <gtest/gtest.h>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

NetConfig tinyNet() { return mlirrl::testutil::tinyNet(24); }

/// Collects \p Count diverse observations by rolling random episodes
/// over a couple of modules (pooling, matmul: different loop counts,
/// producers, masks).
std::vector<Observation> collectObservations(const EnvConfig &Config,
                                             Evaluator &Eval,
                                             unsigned Count) {
  std::vector<Observation> Out;
  Rng ActionRng(17);
  std::vector<Module> Samples = {makeMatmulModule(64, 64, 64),
                                 makeReluModule({256, 64})};
  unsigned SampleIdx = 0;
  while (Out.size() < Count) {
    Environment Env(Config, Eval, Samples[SampleIdx++ % Samples.size()]);
    while (!Env.isDone() && Out.size() < Count) {
      Out.push_back(Env.observe());
      // A legal-but-arbitrary action: pick the first unmasked kind.
      AgentAction Action;
      const Observation &Obs = Env.observe();
      if (Obs.InPointerSequence) {
        Action.Kind = TransformKind::Interchange;
        for (unsigned I = 0; I < Obs.InterchangeMask.size(); ++I)
          if (Obs.InterchangeMask[I] != 0.0) {
            Action.PointerChoice = I;
            break;
          }
      } else {
        unsigned Kind = static_cast<unsigned>(
            ActionRng.sampleWeighted(Obs.TransformMask));
        Action.Kind = static_cast<TransformKind>(Kind);
        Action.TileSizeIdx.assign(Config.MaxLoops, 0);
        for (unsigned &Idx : Action.TileSizeIdx)
          Idx = static_cast<unsigned>(
              ActionRng.nextBounded(Config.NumTileSizes));
        if (Action.Kind == TransformKind::Interchange)
          Action.PointerChoice = static_cast<unsigned>(
              ActionRng.sampleWeighted(Obs.InterchangeMask));
      }
      Env.step(Action);
    }
  }
  return Out;
}

void expectRowMatchesSingle(const Tensor &Batched, const Tensor &Single,
                            unsigned Row) {
  ASSERT_EQ(Single.rows(), 1u);
  ASSERT_EQ(Batched.cols(), Single.cols());
  for (unsigned J = 0; J < Single.cols(); ++J)
    EXPECT_SAME_BITS(Batched.at(Row, J), Single.at(0, J));
}

class BatchedForwardFixture : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(BatchedForwardFixture, PolicyHeadsMatchPerSampleForward) {
  unsigned B = GetParam();
  EnvConfig Config = EnvConfig::laptop();
  Runner Run(MachineModel::xeonE5_2680v4());
  std::vector<Observation> Obs = collectObservations(Config, Run, B);

  Rng InitRng(5);
  PolicyNet Policy(Config, Featurizer(Config).featureSize(), tinyNet(),
                   InitRng);

  std::vector<const Observation *> Batch;
  for (const Observation &O : Obs)
    Batch.push_back(&O);
  PolicyNet::Heads Batched = Policy.forward(Batch);
  ASSERT_EQ(Batched.TransformLogits.rows(), B);

  for (unsigned R = 0; R < B; ++R) {
    PolicyNet::Heads Single = Policy.forward(Obs[R]);
    expectRowMatchesSingle(Batched.TransformLogits, Single.TransformLogits,
                           R);
    expectRowMatchesSingle(Batched.InterchangeLogits,
                           Single.InterchangeLogits, R);
    ASSERT_EQ(Batched.TileLogits.size(), Single.TileLogits.size());
    for (unsigned H = 0; H < Batched.TileLogits.size(); ++H)
      expectRowMatchesSingle(Batched.TileLogits[H], Single.TileLogits[H], R);
  }
}

TEST_P(BatchedForwardFixture, ValueNetMatchesPerSampleForward) {
  unsigned B = GetParam();
  EnvConfig Config = EnvConfig::laptop();
  Runner Run(MachineModel::xeonE5_2680v4());
  std::vector<Observation> Obs = collectObservations(Config, Run, B);

  Rng InitRng(6);
  ValueNet Value(Config, Featurizer(Config).featureSize(), tinyNet(),
                 InitRng);

  std::vector<const Observation *> Batch;
  for (const Observation &O : Obs)
    Batch.push_back(&O);
  Tensor Batched = Value.forward(Batch);
  ASSERT_EQ(Batched.rows(), B);
  ASSERT_EQ(Batched.cols(), 1u);

  for (unsigned R = 0; R < B; ++R) {
    Tensor Single = Value.forward(Obs[R]);
    EXPECT_SAME_BITS(Batched.at(R, 0), Single.at(0, 0));
  }
}

TEST_P(BatchedForwardFixture, FlatHeadMatchesPerSampleForward) {
  unsigned B = GetParam();
  EnvConfig Config = EnvConfig::laptop();
  Config.ActionSpace = ActionSpaceMode::Flat;
  Runner Run(MachineModel::xeonE5_2680v4());
  std::vector<Observation> Obs = collectObservations(Config, Run, B);

  Rng InitRng(7);
  PolicyNet Policy(Config, Featurizer(Config).featureSize(), tinyNet(),
                   InitRng);

  std::vector<const Observation *> Batch;
  for (const Observation &O : Obs)
    Batch.push_back(&O);
  PolicyNet::Heads Batched = Policy.forward(Batch);
  for (unsigned R = 0; R < B; ++R) {
    PolicyNet::Heads Single = Policy.forward(Obs[R]);
    expectRowMatchesSingle(Batched.FlatLogits, Single.FlatLogits, R);
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, BatchedForwardFixture,
                         ::testing::Values(1u, 2u, 32u));
