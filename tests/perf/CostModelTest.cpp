//===- CostModelTest.cpp - Behavioural tests of the analytical model --------===//
//
// These tests pin down the *directional* behaviours the RL reward relies
// on: parallelization, vectorization, tiling, interchange and fusion must
// each pay off in the situations where they should on real hardware.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "perf/CostModel.h"
#include "transforms/Apply.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

struct CostFixture : ::testing::Test {
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  CostModel Model{Machine};

  Module MM{"mm"};
  void SetUp() override {
    Builder B(MM);
    std::string A = B.declareInput({512, 512});
    std::string Bv = B.declareInput({512, 512});
    B.matmul(A, Bv);
  }

  double timeWith(const OpSchedule &Sched) {
    return Model.estimateNest(materializeLoopNest(MM, 0, Sched)).TotalSeconds;
  }

  static OpSchedule sched(std::initializer_list<Transformation> Ts) {
    OpSchedule S;
    S.Transforms = Ts;
    return S;
  }
};

} // namespace

TEST_F(CostFixture, BaselineTimeIsPlausible) {
  // 512^3 matmul: 2.7e8 flops; scalar with a reduction chain at ~1.2
  // Gflop/s gives ~0.2s; it must land within an order of magnitude.
  double T = timeWith({});
  EXPECT_GT(T, 0.01);
  EXPECT_LT(T, 3.0);
}

TEST_F(CostFixture, ParallelizationSpeedsUp) {
  double Base = timeWith({});
  double Par = timeWith(
      sched({Transformation::tiledParallelization({32, 32, 0})}));
  EXPECT_LT(Par, Base);
  // Speedup is bounded by the core count.
  EXPECT_LT(Base / Par, Machine.NumCores * 1.05);
  EXPECT_GT(Base / Par, 4.0);
}

TEST_F(CostFixture, VectorizationSpeedsUp) {
  // Put the parallel dim innermost first so vectorization is legal and
  // unit-stride.
  OpSchedule Interchanged =
      sched({Transformation::interchange({2, 0, 1})});
  OpSchedule Vectorized =
      sched({Transformation::interchange({2, 0, 1}),
             Transformation::vectorization()});
  double NoVec = timeWith(Interchanged);
  double Vec = timeWith(Vectorized);
  EXPECT_LT(Vec, NoVec);
  EXPECT_LT(NoVec / Vec, Machine.VectorLanesF32 * 1.5);
}

TEST_F(CostFixture, TilingReducesMemoryTraffic) {
  TrafficBreakdown Base =
      Model.estimateTraffic(materializeLoopNest(MM, 0, {}));
  TrafficBreakdown Tiled = Model.estimateTraffic(materializeLoopNest(
      MM, 0, sched({Transformation::tiling({32, 32, 32})})));
  // The untiled 512x512 matmul streams B 512 times through L1 (1 MiB
  // working set per i iteration); 64x64 tiles capture that reuse.
  EXPECT_LT(Tiled.L1Bytes, Base.L1Bytes * 0.6);
  EXPECT_LE(Tiled.L3Bytes, Base.L3Bytes * 1.01);
}

TEST_F(CostFixture, InterchangeAffectsLocality) {
  // Make the innermost loop stride through the slow dim of C and B
  // (d1 outer, d2 middle, d0 inner) vs the cache-friendly order.
  Module M2("order");
  Builder B2(M2);
  std::string A = B2.declareInput({1024, 1024});
  std::string Bv = B2.declareInput({1024, 1024});
  B2.matmul(A, Bv);
  // Bad: d0 innermost (column-major walk of A and C).
  OpSchedule Bad = CostFixture::sched(
      {Transformation::interchange({1, 2, 0})});
  // Good: default (d2 innermost, rows of B).
  double BadT = Model.estimateNest(materializeLoopNest(M2, 0, Bad))
                    .TotalSeconds;
  double GoodT =
      Model.estimateNest(materializeLoopNest(M2, 0, {})).TotalSeconds;
  EXPECT_GT(BadT, GoodT);
}

TEST_F(CostFixture, FusionBeatsSeparateElementwise) {
  // Large elementwise chain: unfused writes + re-reads the intermediate
  // from DRAM; fusion keeps it in cache.
  Module M2("ew");
  Builder B2(M2);
  std::string X = B2.declareInput({4096, 4096});
  std::string R = B2.relu(X);
  B2.sigmoid(R);

  ModuleSchedule Unfused;
  double UnfusedT = Model.estimateModule(materializeModule(M2, Unfused));

  ModuleSchedule Fused;
  OpSchedule Consumer;
  Consumer.Transforms.push_back(Transformation::tiledFusion({64, 64}));
  Consumer.FusedProducers.push_back(0);
  Fused.OpSchedules[1] = Consumer;
  Fused.FusedAway.push_back(0);
  double FusedT = Model.estimateModule(materializeModule(M2, Fused));

  EXPECT_LT(FusedT, UnfusedT);
}

TEST_F(CostFixture, CombinedScheduleBeatsEachAlone) {
  OpSchedule Par = sched({Transformation::tiledParallelization({32, 32, 0})});
  OpSchedule Full =
      sched({Transformation::tiledParallelization({32, 32, 0}),
             Transformation::interchange({2, 0, 1}),
             Transformation::vectorization()});
  EXPECT_LT(timeWith(Full), timeWith(Par));
  double Speedup = timeWith({}) / timeWith(Full);
  // Bound: cores x lanes, plus removal of the baseline's reduction-chain
  // penalty (the baseline runs the K reduction innermost).
  EXPECT_GT(Speedup, 20.0);
  EXPECT_LT(Speedup, Machine.NumCores * Machine.VectorLanesF32 /
                         Machine.ReductionChainFactor);
}

TEST_F(CostFixture, ReductionInnermostPaysChainPenalty) {
  // d2 (reduction) innermost scalar vs d1 innermost scalar.
  double RedInner = timeWith({});
  double ParInner = timeWith(sched({Transformation::interchange({2, 0, 1})}));
  EXPECT_LT(ParInner, RedInner);
}

TEST_F(CostFixture, DegenerateTilingCostsLoopOverhead) {
  // Tile everything by 1: pure overhead, no reuse benefit.
  double Base = timeWith({});
  double Degenerate = timeWith(sched({Transformation::tiling({1, 1, 1})}));
  EXPECT_GT(Degenerate, Base * 0.9);
}

TEST_F(CostFixture, SmallOpGainsLittleFromParallelism) {
  // A tiny op is dominated by the fork overhead.
  Module M2("tiny");
  Builder B2(M2);
  std::string X = B2.declareInput({16, 16});
  std::string Y = B2.declareInput({16, 16});
  B2.add(X, Y);
  double Base =
      Model.estimateNest(materializeLoopNest(M2, 0, {})).TotalSeconds;
  OpSchedule Par;
  Par.Transforms.push_back(Transformation::tiledParallelization({1, 0}));
  double ParT =
      Model.estimateNest(materializeLoopNest(M2, 0, Par)).TotalSeconds;
  EXPECT_GT(ParT, Base);
}

TEST_F(CostFixture, MemoryBoundOpCappedByBandwidth) {
  // Huge elementwise add: time must be at least DRAM traffic / bandwidth
  // even fully parallel + vectorized.
  Module M2("bw");
  Builder B2(M2);
  std::string X = B2.declareInput({8192, 8192});
  std::string Y = B2.declareInput({8192, 8192});
  B2.add(X, Y);
  OpSchedule Full;
  // Tile d1 by 512 so the innermost trip satisfies the vectorization mask.
  Full.Transforms.push_back(Transformation::tiledParallelization({64, 512}));
  Full.Transforms.push_back(Transformation::vectorization());
  double T = Model.estimateNest(materializeLoopNest(M2, 0, Full)).TotalSeconds;
  double Bytes = 3.0 * 8192 * 8192 * 4;
  double MinTime = Bytes / (Machine.DramBandwidthGBps * 1024 * 1024 * 1024);
  EXPECT_GE(T, MinTime * 0.99);
  EXPECT_LT(T, MinTime * 5);
}

TEST_F(CostFixture, EstimateModuleSumsNests) {
  Module M2("two");
  Builder B2(M2);
  std::string X = B2.declareInput({256, 256});
  std::string R = B2.relu(X);
  B2.sigmoid(R);
  std::vector<LoopNest> Nests = materializeModule(M2, ModuleSchedule());
  double Sum = 0.0;
  for (const LoopNest &N : Nests)
    Sum += Model.estimateNest(N).TotalSeconds;
  EXPECT_DOUBLE_EQ(Model.estimateModule(Nests), Sum);
}
