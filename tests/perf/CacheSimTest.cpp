//===- CacheSimTest.cpp - Tests for the trace-driven cache simulator --------===//

#include "ir/Builder.h"
#include "perf/CacheSim.h"
#include "perf/CostModel.h"
#include "transforms/Apply.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

MachineModel machine() { return MachineModel::xeonE5_2680v4(); }

} // namespace

TEST(CacheLevelSimTest, HitsAfterInstall) {
  CacheLevelSim L(1024, 64, 2);
  EXPECT_FALSE(L.access(0));
  EXPECT_TRUE(L.access(0));
  EXPECT_TRUE(L.access(32)); // same line
  EXPECT_FALSE(L.access(64));
}

TEST(CacheLevelSimTest, LruEvictionWithinSet) {
  // 2-way, 2 sets (256 B / 64 B line / 2 ways): lines 0, 2, 4 map to set 0.
  CacheLevelSim L(256, 64, 2);
  EXPECT_FALSE(L.access(0 * 64));
  EXPECT_FALSE(L.access(2 * 64));
  EXPECT_TRUE(L.access(0 * 64));  // refresh line 0 (MRU)
  EXPECT_FALSE(L.access(4 * 64)); // evicts line 2 (LRU)
  EXPECT_TRUE(L.access(0 * 64));
  EXPECT_FALSE(L.access(2 * 64)); // line 2 was evicted
}

TEST(CacheHierarchySimTest, MissesPropagate) {
  CacheHierarchySim H(machine());
  H.access(0, 4);
  const CacheSimStats &S = H.getStats();
  EXPECT_EQ(S.Accesses, 1u);
  EXPECT_EQ(S.L1Misses, 1u);
  EXPECT_EQ(S.L3Misses, 1u);
  H.access(0, 4);
  EXPECT_EQ(H.getStats().L1Misses, 1u); // now a hit
}

TEST(CacheHierarchySimTest, StraddlingAccessTouchesTwoLines) {
  CacheHierarchySim H(machine());
  H.access(62, 4); // crosses the line boundary at 64
  EXPECT_EQ(H.getStats().Accesses, 2u);
}

TEST(CacheSimNestTest, SequentialStreamMissesOncePerLine) {
  // relu over 16K f32: 64 KiB stream; 16 elements per 64 B line.
  Module M("stream");
  Builder B(M);
  std::string X = B.declareInput({16384});
  B.relu(X);
  LoopNest Nest = materializeLoopNest(M, 0, OpSchedule());
  CacheSimStats S = simulateNest(Nest, machine());
  // Reads + writes: 2 accesses per point.
  EXPECT_EQ(S.Accesses, 2u * 16384);
  // Compulsory misses: input exceeds L1 so roughly one miss per line per
  // tensor (write-allocate of the output too).
  uint64_t Lines = 2 * 16384 * 4 / 64;
  EXPECT_NEAR(static_cast<double>(S.L1Misses), static_cast<double>(Lines),
              Lines * 0.05);
}

TEST(CacheSimNestTest, TilingReducesMatmulMisses) {
  Module M("mm");
  Builder B(M);
  std::string A = B.declareInput({128, 128});
  std::string Bv = B.declareInput({128, 128});
  B.matmul(A, Bv);

  LoopNest Base = materializeLoopNest(M, 0, OpSchedule());
  OpSchedule TiledSched;
  // 16^2 x 4 B x 3 tiles = 3 KiB: fits the shrunken 8 KiB L1 below.
  TiledSched.Transforms.push_back(Transformation::tiling({16, 16, 16}));
  LoopNest Tiled = materializeLoopNest(M, 0, TiledSched);

  MachineModel Small = machine();
  // Shrink L1 so the untiled working set (a 64 KiB matrix) overflows it.
  // Use high associativity: power-of-two row strides otherwise alias a
  // handful of sets (a conflict effect orthogonal to the capacity reuse
  // this test validates).
  Small.L1.SizeBytes = 8 * 1024;
  Small.L1.Associativity = 128;
  CacheSimStats BaseStats = simulateNest(Base, Small);
  CacheSimStats TiledStats = simulateNest(Tiled, Small);
  EXPECT_LT(TiledStats.L1Misses, BaseStats.L1Misses / 2);
}

TEST(CacheSimNestTest, InterchangeChangesMissRate) {
  // C[i,j] = A[i,j] walked row-major vs column-major.
  Module M("walk");
  Builder B(M);
  std::string X = B.declareInput({256, 256});
  B.relu(X);

  LoopNest RowMajor = materializeLoopNest(M, 0, OpSchedule());
  OpSchedule ColSched;
  ColSched.Transforms.push_back(Transformation::interchange({1, 0}));
  LoopNest ColMajor = materializeLoopNest(M, 0, ColSched);

  MachineModel Small = machine();
  Small.L1.SizeBytes = 4 * 1024; // a 256-row column walk thrashes 4 KiB
  CacheSimStats Row = simulateNest(RowMajor, Small);
  CacheSimStats Col = simulateNest(ColMajor, Small);
  EXPECT_LT(Row.L1Misses, Col.L1Misses);
}

TEST(CacheSimNestTest, MaxPointsCapsWork) {
  Module M("cap");
  Builder B(M);
  std::string X = B.declareInput({1024, 1024});
  B.relu(X);
  LoopNest Nest = materializeLoopNest(M, 0, OpSchedule());
  CacheSimStats S = simulateNest(Nest, machine(), /*MaxPoints=*/1000);
  EXPECT_EQ(S.Accesses, 2u * 1000);
}

TEST(CacheSimNestTest, AgreesWithAnalyticalModelOnTilingDirection) {
  // E10 (DESIGN.md): the analytical model and the trace simulator must
  // agree on which schedule has less memory traffic.
  Module M("agree");
  Builder B(M);
  std::string A = B.declareInput({96, 96});
  std::string Bv = B.declareInput({96, 96});
  B.matmul(A, Bv);

  MachineModel Small = machine();
  Small.L1.SizeBytes = 8 * 1024;
  CostModel Model(Small);

  OpSchedule TiledSched;
  TiledSched.Transforms.push_back(Transformation::tiling({16, 16, 16}));

  LoopNest Base = materializeLoopNest(M, 0, OpSchedule());
  LoopNest Tiled = materializeLoopNest(M, 0, TiledSched);

  double AnalyticBase = Model.estimateTraffic(Base).L1Bytes;
  double AnalyticTiled = Model.estimateTraffic(Tiled).L1Bytes;
  uint64_t SimBase = simulateNest(Base, Small).L1Misses;
  uint64_t SimTiled = simulateNest(Tiled, Small).L1Misses;

  EXPECT_LT(AnalyticTiled, AnalyticBase);
  EXPECT_LT(SimTiled, SimBase);
}
