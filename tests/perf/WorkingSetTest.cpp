//===- WorkingSetTest.cpp - Tests for footprint analysis --------------------===//

#include "ir/Builder.h"
#include "perf/WorkingSet.h"
#include "transforms/Apply.h"

#include <gtest/gtest.h>

#include <memory>

using namespace mlirrl;

namespace {

LoopNest matmulNest(int64_t M, int64_t N, int64_t K, OpSchedule Sched = {}) {
  // Fixtures outlive the nests (owned, so LeakSanitizer stays quiet).
  static std::vector<std::unique_ptr<Module>> Keep;
  Module *Mod = Keep.emplace_back(std::make_unique<Module>("mm")).get();
  Builder B(*Mod);
  std::string A = B.declareInput({M, K});
  std::string Bv = B.declareInput({K, N});
  B.matmul(A, Bv);
  return materializeLoopNest(*Mod, 0, Sched);
}

} // namespace

TEST(WorkingSetTest, FlattenBaselineMatmul) {
  LoopNest Nest = matmulNest(64, 32, 16);
  std::vector<FlatLoop> Loops = flattenBodyLoops(Nest, 0);
  ASSERT_EQ(Loops.size(), 3u);
  EXPECT_FALSE(Loops[0].Foreign);
  EXPECT_EQ(Loops[0].Loop.TripCount, 64);
}

TEST(WorkingSetTest, SubBoxExtentsFullAndPartial) {
  LoopNest Nest = matmulNest(64, 32, 16);
  std::vector<FlatLoop> Loops = flattenBodyLoops(Nest, 0);
  // Full nest: extents equal bounds.
  EXPECT_EQ(computeSubBoxExtents(Loops, 0, 3),
            (std::vector<int64_t>{64, 32, 16}));
  // Below the outermost loop: d0 is fixed.
  EXPECT_EQ(computeSubBoxExtents(Loops, 1, 3),
            (std::vector<int64_t>{1, 32, 16}));
  // One point.
  EXPECT_EQ(computeSubBoxExtents(Loops, 3, 3),
            (std::vector<int64_t>{1, 1, 1}));
}

TEST(WorkingSetTest, SubBoxExtentsComposeTileAndPoint) {
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiling({8, 8, 0}));
  LoopNest Nest = matmulNest(64, 32, 16, Sched);
  std::vector<FlatLoop> Loops = flattenBodyLoops(Nest, 0);
  // Tile loops (8, 4) then point loops (8, 8, 16): full extents restored.
  EXPECT_EQ(computeSubBoxExtents(Loops, 0, 3),
            (std::vector<int64_t>{64, 32, 16}));
  // Inside both tile loops: one 8x8 tile with full K.
  EXPECT_EQ(computeSubBoxExtents(Loops, 2, 3),
            (std::vector<int64_t>{8, 8, 16}));
}

TEST(WorkingSetTest, MatmulFootprintsAtDepths) {
  LoopNest Nest = matmulNest(64, 32, 16);
  std::vector<FlatLoop> Loops = flattenBodyLoops(Nest, 0);
  const std::vector<TensorAccess> &Acc = Nest.Bodies[0].Accesses;
  // A is 64x16 f32.
  AccessFootprint A0 = computeFootprint(Acc[0], Loops, 0, 64);
  EXPECT_EQ(A0.Elements, 64 * 16);
  EXPECT_EQ(A0.Bytes, 64 * 16 * 4);
  // Below d0: A touches one row (16 elements).
  AccessFootprint A1 = computeFootprint(Acc[0], Loops, 1, 64);
  EXPECT_EQ(A1.Elements, 16);
  // B (16x32) below d0: whole matrix still touched.
  AccessFootprint B1 = computeFootprint(Acc[1], Loops, 1, 64);
  EXPECT_EQ(B1.Elements, 16 * 32);
  // C below d1 (inside d0, d1): one element, reused across K.
  AccessFootprint C2 = computeFootprint(Acc[2], Loops, 2, 64);
  EXPECT_EQ(C2.Elements, 1);
}

TEST(WorkingSetTest, StridedAccessPadsToLines) {
  // Access A[d0 * 8] over 64 iterations: 64 distinct elements, 8-strided.
  Module M("strided");
  Builder B(M);
  std::string In = B.declareInput({512});
  ArithCounts Arith;
  Arith.Add = 1;
  B.generic(OpKind::Generic, {64}, {IteratorKind::Parallel}, {In},
            {AffineMap(1, {AffineExpr::dim(0, 1) * 8})}, AffineMap::identity(1),
            Arith);
  LoopNest Nest = materializeLoopNest(M, 0, OpSchedule());
  std::vector<FlatLoop> Loops = flattenBodyLoops(Nest, 0);
  AccessFootprint FP =
      computeFootprint(Nest.Bodies[0].Accesses[0], Loops, 0, 64);
  EXPECT_EQ(FP.Elements, 64);
  // Stride 8 x 4B = 32B per element group: padded by 8x.
  EXPECT_EQ(FP.Bytes, 64 * 4 * 8);
}

TEST(WorkingSetTest, UnitStrideDetection) {
  LoopNest Nest = matmulNest(8, 8, 8);
  const std::vector<TensorAccess> &Acc = Nest.Bodies[0].Accesses;
  // A (d0, d2): unit stride along d2 (its last dim), not along d1.
  EXPECT_TRUE(isUnitStrideForLoop(Acc[0], 2));
  EXPECT_FALSE(isUnitStrideForLoop(Acc[0], 1));
  // B (d2, d1): unit stride along d1; d2 drives the slow dim.
  EXPECT_TRUE(isUnitStrideForLoop(Acc[1], 1));
  EXPECT_FALSE(isUnitStrideForLoop(Acc[1], 2));
  // C (d0, d1): unit stride along d1.
  EXPECT_TRUE(isUnitStrideForLoop(Acc[2], 1));
}

TEST(WorkingSetTest, FusedBodyOuterBandIsForeign) {
  Module M("fused");
  Builder B(M);
  std::string X = B.declareInput({64, 64});
  std::string R = B.relu(X);
  B.relu(R);
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiledFusion({8, 8}));
  Sched.FusedProducers.push_back(0);
  LoopNest Nest = materializeLoopNest(M, 1, Sched);
  ASSERT_EQ(Nest.Bodies.size(), 2u);
  std::vector<FlatLoop> ProducerLoops = flattenBodyLoops(Nest, 0);
  // Outer band loops are foreign to the producer body.
  EXPECT_TRUE(ProducerLoops[0].Foreign);
  EXPECT_TRUE(ProducerLoops[1].Foreign);
  // Consumer body owns the band.
  std::vector<FlatLoop> ConsumerLoops = flattenBodyLoops(Nest, 1);
  EXPECT_FALSE(ConsumerLoops[0].Foreign);
}
