//===- CostCacheTest.cpp - Schedule memoization of the cost model -----------===//

#include "ir/Builder.h"
#include "perf/CostModel.h"
#include "transforms/Apply.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace mlirrl;

namespace {

struct CostCacheFixture : ::testing::Test {
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  CostModel Model{Machine};
  Module MM{"mm"};

  void SetUp() override {
    Builder B(MM);
    std::string A = B.declareInput({256, 256});
    std::string Bv = B.declareInput({256, 256});
    B.matmul(A, Bv);
  }

  LoopNest nestWith(std::initializer_list<Transformation> Ts) {
    OpSchedule S;
    S.Transforms = Ts;
    return materializeLoopNest(MM, 0, S);
  }
};

bool bitIdentical(const TimeBreakdown &X, const TimeBreakdown &Y) {
  return X.ComputeSeconds == Y.ComputeSeconds && X.L1Seconds == Y.L1Seconds &&
         X.L2Seconds == Y.L2Seconds && X.L3Seconds == Y.L3Seconds &&
         X.DramSeconds == Y.DramSeconds &&
         X.LoopOverheadSeconds == Y.LoopOverheadSeconds &&
         X.ForkSeconds == Y.ForkSeconds && X.TotalSeconds == Y.TotalSeconds;
}

} // namespace

TEST_F(CostCacheFixture, HitReturnsBitIdenticalBreakdown) {
  LoopNest Nest = nestWith({Transformation::tiling({16, 16, 16})});
  TimeBreakdown First = Model.estimateNest(Nest);
  TimeBreakdown Second = Model.estimateNest(Nest);
  EXPECT_TRUE(bitIdentical(First, Second));

  HitMissCounters C = Model.getCacheCounters();
  EXPECT_EQ(C.Misses, 1u);
  EXPECT_EQ(C.Hits, 1u);
  EXPECT_DOUBLE_EQ(C.hitRate(), 0.5);
}

TEST_F(CostCacheFixture, RematerializedScheduleStillHits) {
  // The key is structural, so a nest rebuilt from the same schedule (a
  // fresh materialization, as Environment::step does each step) hits.
  TimeBreakdown First =
      Model.estimateNest(nestWith({Transformation::tiling({8, 8, 8})}));
  TimeBreakdown Second =
      Model.estimateNest(nestWith({Transformation::tiling({8, 8, 8})}));
  EXPECT_TRUE(bitIdentical(First, Second));
  EXPECT_EQ(Model.getCacheCounters().Hits, 1u);
}

TEST_F(CostCacheFixture, DifferentSchedulesDoNotCollide) {
  double T1 = Model.estimateNest(nestWith({Transformation::tiling({8, 8, 8})}))
                  .TotalSeconds;
  double T2 =
      Model.estimateNest(nestWith({Transformation::tiling({32, 32, 32})}))
          .TotalSeconds;
  double T3 = Model
                  .estimateNest(nestWith(
                      {Transformation::tiledParallelization({32, 32, 0})}))
                  .TotalSeconds;
  EXPECT_EQ(Model.getCacheCounters().Misses, 3u);
  EXPECT_NE(T1, T2);
  EXPECT_NE(T2, T3);

  uint64_t H1 = hashLoopNest(nestWith({Transformation::tiling({8, 8, 8})}));
  uint64_t H2 = hashLoopNest(nestWith({Transformation::tiling({32, 32, 32})}));
  uint64_t H3 = hashLoopNest(
      nestWith({Transformation::interchange({2, 0, 1})}));
  EXPECT_NE(H1, H2);
  EXPECT_NE(H1, H3);
  EXPECT_NE(H2, H3);
}

TEST_F(CostCacheFixture, CachedEqualsUncachedPricing) {
  LoopNest Nest = nestWith({Transformation::tiledParallelization({4, 8, 0}),
                            Transformation::vectorization()});
  TimeBreakdown Cached = Model.estimateNest(Nest);
  CostModel Fresh(Machine); // no shared cache state
  TimeBreakdown Direct = Fresh.estimateNest(Nest);
  EXPECT_TRUE(bitIdentical(Cached, Direct));
}

TEST_F(CostCacheFixture, LruEvictsBeyondCapacity) {
  Model.setCacheCapacity(2);
  LoopNest N1 = nestWith({Transformation::tiling({2, 2, 2})});
  LoopNest N2 = nestWith({Transformation::tiling({4, 4, 4})});
  LoopNest N3 = nestWith({Transformation::tiling({8, 8, 8})});
  Model.estimateNest(N1); // miss
  Model.estimateNest(N2); // miss
  Model.estimateNest(N1); // hit (N1 now MRU)
  Model.estimateNest(N3); // miss, evicts LRU N2
  Model.estimateNest(N1); // hit: recency protected N1
  Model.estimateNest(N2); // miss: N2 was evicted
  HitMissCounters C = Model.getCacheCounters();
  EXPECT_EQ(C.Misses, 4u);
  EXPECT_EQ(C.Hits, 2u);
}

TEST_F(CostCacheFixture, CopyAndAssignmentTakeSettingsNotEntries) {
  Model.setCacheCapacity(123);
  Model.estimateNest(nestWith({Transformation::tiling({16, 16, 16})}));

  CostModel Copied(Model);
  EXPECT_EQ(Copied.getCacheCounters().total(), 0u); // fresh memo
  // The entry was not shared: pricing in the copy misses first.
  Copied.estimateNest(nestWith({Transformation::tiling({16, 16, 16})}));
  EXPECT_EQ(Copied.getCacheCounters().Misses, 1u);

  MachineModel Slower = Machine;
  Slower.FrequencyGHz = 1.2;
  CostModel Assigned(Slower);
  Assigned.estimateNest(nestWith({Transformation::tiling({8, 8, 8})}));
  Assigned = Model;
  // Assignment drops the old-machine entries and counters...
  EXPECT_EQ(Assigned.getCacheCounters().total(), 0u);
  // ...and prices like the source model afterwards.
  TimeBreakdown Ours =
      Assigned.estimateNest(nestWith({Transformation::tiling({4, 4, 4})}));
  TimeBreakdown Theirs =
      Model.estimateNest(nestWith({Transformation::tiling({4, 4, 4})}));
  EXPECT_TRUE(bitIdentical(Ours, Theirs));
}

TEST_F(CostCacheFixture, SelfAssignmentIsANoOp) {
  Model.estimateNest(nestWith({Transformation::tiling({16, 16, 16})}));
  Model.estimateNest(nestWith({Transformation::tiling({16, 16, 16})}));
  CostModel &Alias = Model;
  Model = Alias;
  // Self-assignment must neither deadlock (scoped_lock would lock the
  // same mutex twice) nor wipe the memo state.
  EXPECT_EQ(Model.getCacheCounters().Hits, 1u);
  EXPECT_EQ(Model.getCacheCounters().Misses, 1u);
  Model.estimateNest(nestWith({Transformation::tiling({16, 16, 16})}));
  EXPECT_EQ(Model.getCacheCounters().Hits, 2u);
}

TEST_F(CostCacheFixture, ConcurrentCopiesWhileInsertingStayCoherent) {
  // One thread keeps pricing fresh schedules into the shared model
  // (inserting under CacheMutex) while another copy-constructs and
  // copy-assigns from it: both copy paths lock the source, so the
  // capacity/machine reads can never tear against the inserts.
  std::atomic<bool> Stop{false};
  std::atomic<unsigned> CopiesMade{0};

  std::thread Inserter([&] {
    unsigned Size = 1;
    while (!Stop.load(std::memory_order_relaxed)) {
      int64_t S = 2 + static_cast<int64_t>(Size++ % 61);
      Model.estimateNest(nestWith({Transformation::tiling({S, S, S})}));
    }
  });
  std::thread Copier([&] {
    MachineModel Slower = Machine;
    Slower.FrequencyGHz = 1.2;
    CostModel Scratch(Slower);
    for (unsigned I = 0; I < 200; ++I) {
      CostModel Copy(Model); // copy-ctor locks the source
      Scratch = Model;       // copy-assign locks both sides
      CopiesMade.fetch_add(1, std::memory_order_relaxed);
    }
    // The last assignment left Scratch pricing on the shared machine.
    TimeBreakdown Ours =
        Scratch.estimateNest(nestWith({Transformation::tiling({2, 2, 2})}));
    CostModel Reference(Model);
    TimeBreakdown Theirs = Reference.estimateNest(
        nestWith({Transformation::tiling({2, 2, 2})}));
    EXPECT_TRUE(bitIdentical(Ours, Theirs));
  });
  Copier.join();
  Stop.store(true, std::memory_order_relaxed);
  Inserter.join();
  EXPECT_EQ(CopiesMade.load(), 200u);
}

TEST_F(CostCacheFixture, ClearCacheDropsEntriesKeepsCounters) {
  LoopNest Nest = nestWith({Transformation::tiling({16, 16, 16})});
  Model.estimateNest(Nest);
  Model.estimateNest(Nest);
  Model.clearCache();
  Model.estimateNest(Nest); // miss again after clear
  HitMissCounters C = Model.getCacheCounters();
  EXPECT_EQ(C.Misses, 2u);
  EXPECT_EQ(C.Hits, 1u);
  Model.resetCacheCounters();
  EXPECT_EQ(Model.getCacheCounters().total(), 0u);
}
