//===- MachineSweepTest.cpp - Parameterized machine-model sweeps -------------===//
//
// Property sweeps over machine parameters: the cost model must respond
// monotonically to hardware resources (more cores / wider vectors /
// bigger caches / more bandwidth never make a fixed schedule slower).
//
//===----------------------------------------------------------------------===//

#include "datasets/DnnOps.h"
#include "perf/CostModel.h"
#include "transforms/Apply.h"

#include <gtest/gtest.h>

#include <memory>

using namespace mlirrl;

namespace {

/// A parallel + vectorized matmul schedule exercising all resources.
LoopNest scheduledMatmul(int64_t Size) {
  // Fixtures outlive the nests (owned, so LeakSanitizer stays quiet).
  static std::vector<std::unique_ptr<Module>> Keep;
  Module *M = Keep.emplace_back(
                      std::make_unique<Module>(makeMatmulModule(Size, Size, Size)))
                  .get();
  OpSchedule S;
  S.Transforms.push_back(Transformation::tiledParallelization({16, 16, 0}));
  S.Transforms.push_back(Transformation::interchange({2, 0, 1}));
  S.Transforms.push_back(Transformation::vectorization());
  return materializeLoopNest(*M, 0, S);
}

class SizeSweep : public ::testing::TestWithParam<int64_t> {};

} // namespace

TEST_P(SizeSweep, MoreCoresNeverSlower) {
  LoopNest Nest = scheduledMatmul(GetParam());
  double Prev = 1e99;
  for (unsigned Cores : {1u, 2u, 4u, 8u, 16u, 28u}) {
    MachineModel M = MachineModel::xeonE5_2680v4();
    M.NumCores = Cores;
    double T = CostModel(M).estimateNest(Nest).TotalSeconds;
    EXPECT_LE(T, Prev * 1.0001) << "cores=" << Cores;
    Prev = T;
  }
}

TEST_P(SizeSweep, MoreDramBandwidthNeverSlower) {
  LoopNest Nest = scheduledMatmul(GetParam());
  double Prev = 1e99;
  for (double Bw : {10.0, 30.0, 68.0, 200.0}) {
    MachineModel M = MachineModel::xeonE5_2680v4();
    M.DramBandwidthGBps = Bw;
    double T = CostModel(M).estimateNest(Nest).TotalSeconds;
    EXPECT_LE(T, Prev * 1.0001) << "bw=" << Bw;
    Prev = T;
  }
}

TEST_P(SizeSweep, BiggerL1NeverMoreTraffic) {
  LoopNest Nest = scheduledMatmul(GetParam());
  double Prev = 1e99;
  for (int64_t Kb : {8, 16, 32, 64, 256}) {
    MachineModel M = MachineModel::xeonE5_2680v4();
    M.L1.SizeBytes = Kb * 1024;
    double Traffic = CostModel(M).estimateTraffic(Nest).L1Bytes;
    EXPECT_LE(Traffic, Prev * 1.0001) << "L1=" << Kb << "KiB";
    Prev = Traffic;
  }
}

TEST_P(SizeSweep, WiderVectorsNeverSlower) {
  LoopNest Nest = scheduledMatmul(GetParam());
  double Prev = 1e99;
  for (unsigned Lanes : {2u, 4u, 8u, 16u}) {
    MachineModel M = MachineModel::xeonE5_2680v4();
    M.VectorLanesF32 = Lanes;
    double T = CostModel(M).estimateNest(Nest).TotalSeconds;
    EXPECT_LE(T, Prev * 1.0001) << "lanes=" << Lanes;
    Prev = T;
  }
}

TEST_P(SizeSweep, BaselineScalesWithProblemSize) {
  // Doubling every dim multiplies work by 8; time must grow by at least
  // 4x (sub-linear growth would be a model bug).
  MachineModel M = MachineModel::xeonE5_2680v4();
  CostModel Model(M);
  int64_t Size = GetParam();
  Module Small = makeMatmulModule(Size, Size, Size);
  Module Big = makeMatmulModule(2 * Size, 2 * Size, 2 * Size);
  double TSmall =
      Model.estimateModule(materializeBaseline(Small));
  double TBig = Model.estimateModule(materializeBaseline(Big));
  EXPECT_GT(TBig, TSmall * 4.0);
  EXPECT_LT(TBig, TSmall * 64.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(64, 128, 256, 512));

namespace {

class TileSweep : public ::testing::TestWithParam<int64_t> {};

} // namespace

TEST_P(TileSweep, SquareTilingNeverIncreasesL2Traffic) {
  // Property: for the 512^3 matmul, any square tiling <= 64 reduces (or
  // keeps) traffic into L2 relative to untiled.
  Module M = makeMatmulModule(512, 512, 512);
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  CostModel Model(Machine);
  double Untiled =
      Model.estimateTraffic(materializeLoopNest(M, 0, {})).L2Bytes;
  int64_t Tile = GetParam();
  OpSchedule S;
  S.Transforms.push_back(Transformation::tiling({Tile, Tile, Tile}));
  double Tiled =
      Model.estimateTraffic(materializeLoopNest(M, 0, S)).L2Bytes;
  EXPECT_LE(Tiled, Untiled * 1.05) << "tile=" << Tile;
}

INSTANTIATE_TEST_SUITE_P(Tiles, TileSweep,
                         ::testing::Values(8, 16, 32, 64));
