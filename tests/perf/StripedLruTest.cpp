//===- StripedLruTest.cpp - The lock-striped concurrent memo table ----------===//
//
// The shared-cache contract behind cross-thread memo sharing
// (support/StripedLru.h): every lookup returns the deterministic value
// of its key no matter how many threads race, the accounting identity
// hits + misses + duplicates == lookups holds exactly, eviction never
// exceeds capacity and never evicts the just-inserted entry (the
// capacity-0 / tiny-capacity edge cases of the old single-mutex memo),
// and the contention counters tally every hot-path lock acquisition.
//
//===----------------------------------------------------------------------===//

#include "support/StripedLru.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

using namespace mlirrl;

namespace {

/// The deterministic "pricing" every test memoizes: a pure function of
/// the key with full 64-bit sensitivity.
double valueOf(uint64_t Key) {
  return static_cast<double>(stripedShardMix(Key ^ 0x9e3779b97f4a7c15ull)) *
         0x1p-64;
}

} // namespace

TEST(StripedLruTest, ShardCountRoundsToPowersOfTwo) {
  EXPECT_EQ(stripedShardCount(0), 1u);
  EXPECT_EQ(stripedShardCount(1), 1u);
  EXPECT_EQ(stripedShardCount(3), 4u);
  EXPECT_EQ(stripedShardCount(16), 16u);
  EXPECT_EQ(stripedShardCount(17), 32u);
  EXPECT_EQ(stripedShardCount(100000), 256u);

  StripedLruMemo<double> Memo("test.shards", 64, 5);
  EXPECT_EQ(Memo.shardCount(), 8u);
}

TEST(StripedLruTest, ZeroCapacityIsClampedAndCachesOneEntry) {
  // The old LruMemo at capacity 0 evicted the entry it had just
  // inserted; the striped table clamps to one entry per shard.
  StripedLruMemo<double> Memo("test.cap0", /*Capacity=*/0, /*ShardCount=*/1);
  EXPECT_EQ(Memo.shardCapacity(), 1u);

  unsigned Computes = 0;
  auto Compute = [&](uint64_t K) {
    return [&Computes, K] {
      ++Computes;
      return valueOf(K);
    };
  };
  EXPECT_EQ(Memo.memoized(7, Compute(7)), valueOf(7));
  // The just-inserted entry survived: the immediate re-lookup hits.
  EXPECT_EQ(Memo.memoized(7, Compute(7)), valueOf(7));
  EXPECT_EQ(Computes, 1u);
  EXPECT_EQ(Memo.size(), 1u);

  HitMissCounters C = Memo.counters();
  EXPECT_EQ(C.Hits, 1u);
  EXPECT_EQ(C.Misses, 1u);
  EXPECT_EQ(C.Duplicates, 0u);
}

TEST(StripedLruTest, CapacityOneKeepsMostRecentKey) {
  StripedLruMemo<double> Memo("test.cap1", 1, 1);
  Memo.memoized(1, [] { return 1.0; }); // miss, cache = {1}
  Memo.memoized(2, [] { return 2.0; }); // miss, evicts 1, cache = {2}
  EXPECT_EQ(Memo.memoized(2, [] { return -1.0; }), 2.0); // hit
  Memo.memoized(1, [] { return 1.0; }); // miss again: 1 was evicted
  EXPECT_EQ(Memo.size(), 1u);

  HitMissCounters C = Memo.counters();
  EXPECT_EQ(C.Hits, 1u);
  EXPECT_EQ(C.Misses, 3u);
}

TEST(StripedLruTest, CapacityTwoEvictsLeastRecentlyUsed) {
  // Same recency scenario CostCacheTest pins for the cost-model memo,
  // at the smallest capacity where recency matters.
  StripedLruMemo<double> Memo("test.cap2", 2, 1);
  Memo.memoized(1, [] { return 1.0; });                  // miss {1}
  Memo.memoized(2, [] { return 2.0; });                  // miss {2,1}
  EXPECT_EQ(Memo.memoized(1, [] { return -1.0; }), 1.0); // hit {1,2}
  Memo.memoized(3, [] { return 3.0; }); // miss, evicts LRU=2 -> {3,1}
  EXPECT_EQ(Memo.memoized(1, [] { return -1.0; }), 1.0); // hit: protected
  Memo.memoized(2, [] { return 2.0; }); // miss: 2 was the eviction victim
  EXPECT_EQ(Memo.size(), 2u);

  HitMissCounters C = Memo.counters();
  EXPECT_EQ(C.Hits, 2u);
  EXPECT_EQ(C.Misses, 4u);
  EXPECT_EQ(C.Hits + C.Misses + C.Duplicates, C.total());
}

TEST(StripedLruTest, ClearDropsEntriesKeepsCounters) {
  StripedLruMemo<double> Memo("test.clear", 16, 4);
  Memo.memoized(1, [] { return 1.0; });
  Memo.memoized(1, [] { return -1.0; });
  Memo.clear();
  EXPECT_EQ(Memo.size(), 0u);
  Memo.memoized(1, [] { return 1.0; }); // miss again after clear
  HitMissCounters C = Memo.counters();
  EXPECT_EQ(C.Hits, 1u);
  EXPECT_EQ(C.Misses, 2u);
  Memo.resetCounters();
  EXPECT_EQ(Memo.counters().total(), 0u);
  EXPECT_EQ(Memo.contention().Acquisitions, 0u);
}

TEST(StripedLruTest, RegistryAggregatesAcrossShards) {
  CacheStatsRegistry::instance().resetAll();
  StripedLruMemo<double> Memo("test.registry_agg", 64, 8);
  for (uint64_t K = 0; K < 32; ++K)
    Memo.memoized(K, [K] { return valueOf(K); });
  for (uint64_t K = 0; K < 32; ++K)
    Memo.memoized(K, [K] { return valueOf(K); });

  CacheStatsRegistry::CategoryStats S =
      CacheStatsRegistry::instance().categoryStats("test.registry_agg");
  EXPECT_EQ(S.Misses, 32u);
  EXPECT_EQ(S.Hits, 32u);
  // Single-threaded: no acquisition can find the lock held, and there
  // are exactly two acquisitions per lookup that missed (probe +
  // insert) and one per hit. try_lock may fail spuriously though
  // ([thread.mutex.requirements.mutex]), so allow a few false
  // "contended" counts rather than flake under instrumented runtimes.
  EXPECT_EQ(S.LockAcquisitions, 32u * 2 + 32u);
  EXPECT_LE(S.LockContended, 4u);
  EXPECT_LE(S.contendedRate(), 4.0 / 96.0);
}

TEST(StripedLruTest, ConcurrentHammerIsExactlyAccounted) {
  // N threads x M keys, capacity ample (no eviction): every lookup must
  // return the key's deterministic value, every key must be inserted
  // exactly once (misses == distinct keys), and benign races must land
  // in the duplicate counter -- never skew hits or misses -- so
  // hits + misses + duplicates == total lookups exactly.
  const unsigned Threads = 8;
  const uint64_t Keys = 64;
  const unsigned Rounds = 50;
  StripedLruMemo<double> Memo("test.hammer", /*Capacity=*/1024,
                              /*ShardCount=*/8);

  std::atomic<uint64_t> WrongValues{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      for (unsigned R = 0; R < Rounds; ++R) {
        for (uint64_t I = 0; I < Keys; ++I) {
          // Different walk order per thread so first-touches race.
          uint64_t Key = (I * (T + 1) + R) % Keys;
          double Got = Memo.memoized(Key, [Key] { return valueOf(Key); });
          if (Got != valueOf(Key))
            WrongValues.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(WrongValues.load(), 0u);
  HitMissCounters C = Memo.counters();
  const uint64_t Lookups =
      static_cast<uint64_t>(Threads) * Rounds * Keys;
  EXPECT_EQ(C.Hits + C.Misses + C.Duplicates, Lookups);
  EXPECT_EQ(C.total(), Lookups);
  // No eviction at this capacity: each key is inserted exactly once.
  EXPECT_EQ(C.Misses, Keys);
  EXPECT_EQ(Memo.size(), Keys);

  ContentionCounters L = Memo.contention();
  // Hits take one acquisition, misses and duplicates two.
  EXPECT_EQ(L.Acquisitions,
            C.Hits + 2 * (C.Misses + C.Duplicates));
  EXPECT_LE(L.Contended, L.Acquisitions);
}

TEST(StripedLruTest, ConcurrentEvictionNeverExceedsCapacityOrCorrupts) {
  // Keys far outnumber capacity so eviction churns constantly under
  // contention; values must stay deterministic and the table bounded.
  const unsigned Threads = 4;
  const uint64_t Keys = 512;
  const unsigned Rounds = 20;
  StripedLruMemo<double> Memo("test.evict", /*Capacity=*/32,
                              /*ShardCount=*/4);

  std::atomic<uint64_t> WrongValues{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      for (unsigned R = 0; R < Rounds; ++R) {
        for (uint64_t I = 0; I < Keys; ++I) {
          uint64_t Key = (I * 7 + T * 13 + R) % Keys;
          double Got = Memo.memoized(Key, [Key] { return valueOf(Key); });
          if (Got != valueOf(Key))
            WrongValues.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(WrongValues.load(), 0u);
  EXPECT_LE(Memo.size(), Memo.shardCount() * Memo.shardCapacity());
  HitMissCounters C = Memo.counters();
  EXPECT_EQ(C.total(),
            static_cast<uint64_t>(Threads) * Rounds * Keys);
  // With eviction on, keys are re-inserted -- misses exceed the key
  // count but the identity still holds exactly.
  EXPECT_GE(C.Misses, Keys);
}
