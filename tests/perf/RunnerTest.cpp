//===- RunnerTest.cpp - Tests for the execution facade ----------------------===//

#include "ir/Builder.h"
#include "perf/Runner.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

Module makeMatmul() {
  Module M("mm");
  Builder B(M);
  std::string A = B.declareInput({256, 256});
  std::string Bv = B.declareInput({256, 256});
  B.matmul(A, Bv);
  return M;
}

ModuleSchedule goodSchedule() {
  ModuleSchedule Sched;
  OpSchedule S;
  S.Transforms.push_back(Transformation::tiledParallelization({16, 16, 0}));
  S.Transforms.push_back(Transformation::interchange({2, 0, 1}));
  S.Transforms.push_back(Transformation::vectorization());
  Sched.OpSchedules[0] = S;
  return Sched;
}

} // namespace

TEST(RunnerTest, DeterministicWithoutNoise) {
  Module M = makeMatmul();
  Runner R(MachineModel::xeonE5_2680v4());
  EXPECT_DOUBLE_EQ(R.timeBaseline(M), R.timeBaseline(M));
  ModuleSchedule S = goodSchedule();
  EXPECT_DOUBLE_EQ(R.timeModule(M, S), R.timeModule(M, S));
}

TEST(RunnerTest, SpeedupAboveOneForGoodSchedule) {
  Module M = makeMatmul();
  Runner R(MachineModel::xeonE5_2680v4());
  EXPECT_GT(R.speedup(M, goodSchedule()), 2.0);
}

TEST(RunnerTest, EmptyScheduleSpeedupIsOne) {
  Module M = makeMatmul();
  Runner R(MachineModel::xeonE5_2680v4());
  EXPECT_DOUBLE_EQ(R.speedup(M, ModuleSchedule()), 1.0);
}

TEST(RunnerTest, NoiseStaysNearModelTime) {
  Module M = makeMatmul();
  RunnerOptions Opts;
  Opts.Noise = true;
  Opts.NoiseStddev = 0.02;
  Runner Noisy(MachineModel::xeonE5_2680v4(), Opts);
  Runner Clean(MachineModel::xeonE5_2680v4());
  double T0 = Clean.timeBaseline(M);
  double T1 = Noisy.timeBaseline(M);
  EXPECT_NEAR(T1 / T0, 1.0, 0.1);
  // Distinct draws differ.
  EXPECT_NE(Noisy.timeBaseline(M), T1);
}

TEST(RunnerTest, NoiseIsSeedDeterministic) {
  Module M = makeMatmul();
  RunnerOptions Opts;
  Opts.Noise = true;
  Opts.Seed = 99;
  Runner A(MachineModel::xeonE5_2680v4(), Opts);
  Runner B(MachineModel::xeonE5_2680v4(), Opts);
  EXPECT_DOUBLE_EQ(A.timeBaseline(M), B.timeBaseline(M));
}
