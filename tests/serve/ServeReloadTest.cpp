//===- ServeReloadTest.cpp - Checkpoint reload under serving load -----------===//
//
// The stale-policy race the version-stamped inference cache closes: a
// server thread mid-greedy-rollout while another thread restores a
// checkpoint must never serve a torn or stale policy. Two frozen
// checkpoints are prepared once for the suite with their reference
// answers; then a reloader thread flips the server between them while
// client threads hammer requests, and every response must be
// bitwise-identical to one of the two references -- nothing in between,
// no crash, no hang. The hammer runs at Workers = 1 and Workers = 4:
// with several workers, distinct batches can be in flight on *both*
// sides of a reload, which is exactly the interleaving a torn policy
// swap would corrupt. Runs under the ci.sh --sanitize pass (TSan
// config), where a torn publication would be a reported race even if
// the values happened to coincide.
//
// Inference runs in F32 here on purpose: that is the path with the
// packed-policy snapshot cache (the race's subject); F64 recomputes
// from the master parameters every call.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "datasets/DnnOps.h"
#include "ir/Printer.h"
#include "rl/MlirRl.h"
#include "rl/Checkpoint.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

using namespace mlirrl;

namespace {

MlirRlOptions trainingOptions() {
  MlirRlOptions O = MlirRlOptions::laptop();
  O.Net = testutil::tinyNet();
  O.Ppo.SamplesPerIteration = 4;
  O.Iterations = 1;
  O.Seed = 303;
  return O;
}

ServeOptions matchingServeOptions() {
  MlirRlOptions Train = trainingOptions();
  ServeOptions O;
  O.Env = Train.Env;
  O.Net = Train.Net;
  O.Ppo = Train.Ppo;
  O.Seed = 9;
  O.BatchWidth = 2;
  O.Inference = InferenceDtype::F32;
  return O;
}

} // namespace

/// Shares the expensive setup -- training two checkpoints and serving
/// their quiescent reference answers -- across the per-worker-count
/// hammer runs.
class ServeReloadTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Request = printModule(makeMatmulModule(96, 96, 96));

    // Two frozen policies: after one and after two training iterations.
    {
      MlirRl Sys(trainingOptions());
      std::vector<Module> Data = {makeMatmulModule(96, 96, 96)};
      Sys.train(Data);
      ASSERT_TRUE(saveCheckpoint(Sys.trainer(), PathA).hasValue());
      Sys.train(Data);
      ASSERT_TRUE(saveCheckpoint(Sys.trainer(), PathB).hasValue());
    }

    // Reference answers, served quiescently.
    ScheduleServer Server(matchingServeOptions());
    Expected<bool> LA = Server.loadPolicy(PathA);
    ASSERT_TRUE(LA.hasValue()) << LA.getError();
    Expected<ServeResponse> RA = Server.optimize(Request);
    ASSERT_TRUE(RA.hasValue()) << RA.getError();
    ScheduleA = RA->Schedule.toString();
    SpeedupA = RA->Speedup;

    Expected<bool> LB = Server.loadPolicy(PathB);
    ASSERT_TRUE(LB.hasValue()) << LB.getError();
    Expected<ServeResponse> RB = Server.optimize(Request);
    ASSERT_TRUE(RB.hasValue()) << RB.getError();
    ScheduleB = RB->Schedule.toString();
    SpeedupB = RB->Speedup;
    EXPECT_EQ(Server.stats().PolicyReloads, 2u);
  }

  static void TearDownTestSuite() {
    std::remove(PathA);
    std::remove(PathB);
  }

  /// Clients serve continuously while a reloader flips between the two
  /// checkpoints; every answer must match one reference exactly.
  static void hammerReloads(unsigned Workers) {
    ServeOptions O = matchingServeOptions();
    O.Workers = Workers;
    ScheduleServer Server(O);
    ASSERT_TRUE(Server.loadPolicy(PathA).hasValue());

    std::atomic<bool> Stop{false};
    std::atomic<unsigned> BadResponses{0};
    constexpr unsigned Clients = 4;

    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < Clients; ++T)
      Threads.emplace_back([&] {
        while (!Stop.load(std::memory_order_relaxed)) {
          Expected<ServeResponse> R = Server.optimize(Request);
          if (!R.hasValue()) {
            // Only the bounded-admission rejection is acceptable here.
            if (R.getError().find("queue full") == std::string::npos)
              BadResponses.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          std::string Sched = R->Schedule.toString();
          bool MatchesA = Sched == ScheduleA &&
                          std::bit_cast<uint64_t>(R->Speedup) ==
                              std::bit_cast<uint64_t>(SpeedupA);
          bool MatchesB = Sched == ScheduleB &&
                          std::bit_cast<uint64_t>(R->Speedup) ==
                              std::bit_cast<uint64_t>(SpeedupB);
          if (!MatchesA && !MatchesB)
            BadResponses.fetch_add(1, std::memory_order_relaxed);
        }
      });

    for (unsigned Reload = 0; Reload < 12; ++Reload) {
      Expected<bool> L = Server.loadPolicy(Reload % 2 == 0 ? PathB : PathA);
      EXPECT_TRUE(L.hasValue()) << L.getError();
    }
    Stop.store(true, std::memory_order_relaxed);
    for (std::thread &T : Threads)
      T.join();

    EXPECT_EQ(BadResponses.load(), 0u) << "workers=" << Workers;
    EXPECT_GT(Server.stats().Served, 0u);
    EXPECT_EQ(Server.stats().PolicyReloads, 13u);
  }

  static constexpr const char *PathA = "serve_reload_a.ckpt";
  static constexpr const char *PathB = "serve_reload_b.ckpt";
  static std::string Request;
  static std::string ScheduleA, ScheduleB;
  static double SpeedupA, SpeedupB;
};

std::string ServeReloadTest::Request;
std::string ServeReloadTest::ScheduleA;
std::string ServeReloadTest::ScheduleB;
double ServeReloadTest::SpeedupA = 0.0;
double ServeReloadTest::SpeedupB = 0.0;

TEST_F(ServeReloadTest, ReloadUnderLoadServesOnlyCompletePolicies) {
  hammerReloads(1);
}

TEST_F(ServeReloadTest, ReloadUnderLoadWithFourWorkers) { hammerReloads(4); }

TEST_F(ServeReloadTest, LoadPolicyRejectsMissingAndMismatchedCheckpoints) {
  ScheduleServer Server(matchingServeOptions());
  EXPECT_FALSE(Server.loadPolicy("no_such_checkpoint.ckpt").hasValue());

  // An architecture mismatch must fail cleanly and keep serving on the
  // previous (fresh-initialized) policy.
  const std::string Path = "serve_reload_mismatch.ckpt";
  {
    MlirRlOptions Wide = trainingOptions();
    Wide.Net.LstmHidden = 32;
    Wide.Net.BackboneHidden = 32;
    MlirRl Sys(Wide);
    ASSERT_TRUE(saveCheckpoint(Sys.trainer(), Path).hasValue());
  }
  EXPECT_FALSE(Server.loadPolicy(Path).hasValue());
  EXPECT_EQ(Server.stats().PolicyReloads, 0u);
  Expected<ServeResponse> R =
      Server.optimize(printModule(makeReluModule({256, 256})));
  EXPECT_TRUE(R.hasValue());
  std::remove(Path.c_str());
}
