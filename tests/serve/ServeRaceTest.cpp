//===- ServeRaceTest.cpp - Clients vs reloads vs shutdown, all at once ----===//
//
// ServeReloadTest pins reload correctness and TsanStressTest pins
// submit/shutdown liveness; this test runs all three actors
// simultaneously: client threads hammering optimize(), a reloader
// thread flipping between two frozen checkpoints, and shutdown landing
// while both are mid-flight. The contract under that full collision:
//
//  * no lost promises -- every submission resolves, served or rejected
//    with a reason, never a hang or a broken future;
//  * every served answer is bitwise one of the two reference answers
//    (worker- and batch-invariant, no torn or blended policy);
//  * loadPolicy racing shutdown either completes or fails cleanly.
//
// Runs in the normal build and under scripts/ci.sh --sanitize=thread,
// where the same interleavings must also produce zero TSan reports.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "datasets/DnnOps.h"
#include "ir/Printer.h"
#include "rl/Checkpoint.h"
#include "rl/MlirRl.h"
#include "support/TsanAnnotations.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

using namespace mlirrl;

namespace {

MlirRlOptions trainingOptions() {
  MlirRlOptions O = MlirRlOptions::laptop();
  O.Net = testutil::tinyNet();
  O.Ppo.SamplesPerIteration = 4;
  O.Iterations = 1;
  O.Seed = 1717;
  return O;
}

ServeOptions matchingServeOptions() {
  MlirRlOptions Train = trainingOptions();
  ServeOptions O;
  O.Env = Train.Env;
  O.Net = Train.Net;
  O.Ppo = Train.Ppo;
  O.Seed = 21;
  O.BatchWidth = 2;
  O.Inference = InferenceDtype::F32;
  return O;
}

} // namespace

/// Trains the two checkpoints and records their quiescent reference
/// answers once for every worker-count variant below.
class ServeRaceTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Request = printModule(makeMatmulModule(96, 96, 96));

    {
      MlirRl Sys(trainingOptions());
      std::vector<Module> Data = {makeMatmulModule(96, 96, 96)};
      Sys.train(Data);
      ASSERT_TRUE(saveCheckpoint(Sys.trainer(), PathA).hasValue());
      Sys.train(Data);
      ASSERT_TRUE(saveCheckpoint(Sys.trainer(), PathB).hasValue());
    }

    ScheduleServer Server(matchingServeOptions());
    for (const char *Path : {PathA, PathB}) {
      Expected<bool> L = Server.loadPolicy(Path);
      ASSERT_TRUE(L.hasValue()) << L.getError();
      Expected<ServeResponse> R = Server.optimize(Request);
      ASSERT_TRUE(R.hasValue()) << R.getError();
      References.push_back(
          {R->Schedule.toString(), std::bit_cast<uint64_t>(R->Speedup)});
    }
  }

  static void TearDownTestSuite() {
    std::remove(PathA);
    std::remove(PathB);
  }

  static bool matchesReference(const ServeResponse &R) {
    std::string Sched = R.Schedule.toString();
    uint64_t Bits = std::bit_cast<uint64_t>(R.Speedup);
    for (const auto &[RefSched, RefBits] : References)
      if (Sched == RefSched && Bits == RefBits)
        return true;
    return false;
  }

  /// The three-way collision. \p ShutdownMidFlight = false keeps the
  /// clients-vs-reloads phase pure and shuts down only after everyone
  /// stopped; true drops shutdown into the middle of both.
  static void collide(unsigned Workers, bool ShutdownMidFlight) {
    ServeOptions O = matchingServeOptions();
    O.Workers = Workers;
    O.QueueCapacity = 16;
    ScheduleServer Server(O);
    ASSERT_TRUE(Server.loadPolicy(PathA).hasValue());

    constexpr unsigned Clients = 4;
    const size_t PerClient = tsanScale(30, 4);
    const size_t Reloads = tsanScale(16, 4);

    std::atomic<unsigned> BadAnswers{0};
    std::atomic<unsigned> BadRejections{0};
    std::atomic<unsigned> LostPromises{0};
    std::atomic<uint64_t> ServedSeen{0};

    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&] {
        for (size_t I = 0; I < PerClient; ++I) {
          std::future<Expected<ServeResponse>> F = Server.submitAsync(Request);
          Expected<ServeResponse> R = [&] {
            try {
              return F.get();
            } catch (const std::future_error &) {
              LostPromises.fetch_add(1, std::memory_order_relaxed);
              return makeError<ServeResponse>("broken promise");
            }
          }();
          if (!R.hasValue()) {
            // The only legitimate rejections under this load are the
            // bounded queue and shutdown; anything else (import errors
            // on a known-good module, torn-policy failures) is a bug.
            if (R.getError().find("queue full") == std::string::npos &&
                R.getError().find("shut") == std::string::npos &&
                R.getError().find("broken promise") == std::string::npos)
              BadRejections.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          ServedSeen.fetch_add(1, std::memory_order_relaxed);
          if (!matchesReference(*R))
            BadAnswers.fetch_add(1, std::memory_order_relaxed);
        }
      });

    // The reloader races the clients (and possibly shutdown). Once
    // shutdown can land concurrently, a clean failure is acceptable;
    // silent corruption is not (the answer check above would catch it).
    std::thread Reloader([&] {
      for (size_t R = 0; R < Reloads; ++R) {
        Expected<bool> L = Server.loadPolicy(R % 2 == 0 ? PathB : PathA);
        if (!ShutdownMidFlight)
          EXPECT_TRUE(L.hasValue()) << L.getError();
      }
    });

    if (ShutdownMidFlight)
      Server.shutdown();

    for (std::thread &T : Threads)
      T.join();
    Reloader.join();

    EXPECT_EQ(LostPromises.load(), 0u) << "workers=" << Workers;
    EXPECT_EQ(BadAnswers.load(), 0u) << "workers=" << Workers;
    EXPECT_EQ(BadRejections.load(), 0u) << "workers=" << Workers;
    if (!ShutdownMidFlight) {
      // Without early shutdown nothing else may reject, so the clients'
      // served tally must match the server's own accounting.
      EXPECT_EQ(Server.stats().Served, ServedSeen.load());
      EXPECT_GT(ServedSeen.load(), 0u);
    }
  }

  static constexpr const char *PathA = "serve_race_a.ckpt";
  static constexpr const char *PathB = "serve_race_b.ckpt";
  static std::string Request;
  static std::vector<std::pair<std::string, uint64_t>> References;
};

std::string ServeRaceTest::Request;
std::vector<std::pair<std::string, uint64_t>> ServeRaceTest::References;

TEST_F(ServeRaceTest, ClientsVsReloadsSingleWorker) {
  collide(/*Workers=*/1, /*ShutdownMidFlight=*/false);
}

TEST_F(ServeRaceTest, ClientsVsReloadsFourWorkers) {
  collide(/*Workers=*/4, /*ShutdownMidFlight=*/false);
}

TEST_F(ServeRaceTest, ShutdownLandsMidCollision) {
  collide(/*Workers=*/4, /*ShutdownMidFlight=*/true);
}
