//===- ServeTest.cpp - Schedule server determinism and admission ------------===//
//
// The serving contract: (1) a module's answer is bitwise-identical
// whether it is served alone, inside a mixed batch, or under
// concurrent client threads (greedy rollouts draw no RNG and the
// batched forward is batch-invariant); (2) admission is bounded -- an
// over-capacity submission is a clean immediate rejection with a
// reason, never a hang; (3) malformed modules die at the import gate
// on the caller's thread.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "datasets/DnnOps.h"
#include "ir/Printer.h"
#include "support/Stats.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace mlirrl;

namespace {

ServeOptions tinyServeOptions() {
  ServeOptions O;
  O.Env = EnvConfig::laptop();
  O.Net = testutil::tinyNet();
  O.Seed = 77;
  O.BatchWidth = 4;
  return O;
}

std::string matmulText() { return printModule(makeMatmulModule(96, 96, 96)); }
std::string reluText() { return printModule(makeReluModule({512, 256})); }

} // namespace

TEST(ServeTest, SameModuleAloneAndInMixedBatchBitwise) {
  ScheduleServer Server(tinyServeOptions());

  Expected<ServeResponse> Alone = Server.optimize(matmulText());
  ASSERT_TRUE(Alone.hasValue()) << Alone.getError();

  // Queue a mixed batch while the worker is held, then release it so
  // all four are served as one lockstep group.
  Server.pauseWorker();
  auto F1 = Server.submitAsync(reluText());
  auto F2 = Server.submitAsync(matmulText());
  auto F3 = Server.submitAsync(reluText());
  auto F4 = Server.submitAsync(matmulText());
  Server.resumeWorker();

  Expected<ServeResponse> Mixed = F2.get();
  ASSERT_TRUE(Mixed.hasValue()) << Mixed.getError();
  EXPECT_SAME_BITS(Alone->Speedup, Mixed->Speedup);
  EXPECT_EQ(Alone->Schedule.toString(), Mixed->Schedule.toString());

  Expected<ServeResponse> MixedTail = F4.get();
  ASSERT_TRUE(MixedTail.hasValue());
  EXPECT_SAME_BITS(Alone->Speedup, MixedTail->Speedup);
  EXPECT_EQ(Alone->Schedule.toString(), MixedTail->Schedule.toString());
  ASSERT_TRUE(F1.get().hasValue());
  ASSERT_TRUE(F3.get().hasValue());

  ServeStats S = Server.stats();
  EXPECT_EQ(S.Served, 5u);
  EXPECT_EQ(S.RejectedImport + S.RejectedQueueFull + S.RejectedShutdown, 0u);
}

TEST(ServeTest, ConcurrentClientsGetBitwiseIdenticalAnswers) {
  ScheduleServer Server(tinyServeOptions());

  Expected<ServeResponse> Reference = Server.optimize(matmulText());
  ASSERT_TRUE(Reference.hasValue()) << Reference.getError();
  const std::string RefSchedule = Reference->Schedule.toString();
  const double RefSpeedup = Reference->Speedup;

  constexpr unsigned Threads = 4, PerThread = 3;
  std::vector<Expected<ServeResponse>> Responses(
      Threads * PerThread, makeError<ServeResponse>("unset"));
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T < Threads; ++T)
    Clients.emplace_back([&, T] {
      for (unsigned I = 0; I < PerThread; ++I)
        Responses[T * PerThread + I] = Server.optimize(matmulText());
    });
  for (std::thread &C : Clients)
    C.join();

  for (unsigned I = 0; I < Responses.size(); ++I) {
    ASSERT_TRUE(Responses[I].hasValue()) << Responses[I].getError();
    EXPECT_SAME_BITS(RefSpeedup, Responses[I]->Speedup) << "request " << I;
    EXPECT_EQ(RefSchedule, Responses[I]->Schedule.toString())
        << "request " << I;
  }
  // Cross-request memoization: repeated identical modules must hit the
  // shared memo, not re-price from scratch every time.
  EXPECT_GT(Server.stats().ProgramMemoHitRate, 0.0);
}

TEST(ServeTest, WorkerCountNeverChangesAnswers) {
  // Serve the same request mix at Workers = 1 and Workers = 4 under
  // concurrent clients. Batch composition is racy at 4 workers by
  // design; the answers must not be -- every response has to match the
  // single-worker reference bit for bit.
  std::string RefMatmulSchedule, RefReluSchedule;
  double RefMatmulSpeedup = 0.0, RefReluSpeedup = 0.0;
  for (unsigned Workers : {1u, 4u}) {
    ServeOptions O = tinyServeOptions();
    O.Workers = Workers;
    ScheduleServer Server(O);

    constexpr unsigned Threads = 4, PerThread = 3;
    std::vector<Expected<ServeResponse>> Responses(
        Threads * PerThread, makeError<ServeResponse>("unset"));
    std::vector<std::thread> Clients;
    for (unsigned T = 0; T < Threads; ++T)
      Clients.emplace_back([&, T] {
        for (unsigned I = 0; I < PerThread; ++I) {
          const unsigned Slot = T * PerThread + I;
          Responses[Slot] =
              Server.optimize(Slot % 2 ? reluText() : matmulText());
        }
      });
    for (std::thread &C : Clients)
      C.join();

    for (unsigned I = 0; I < Responses.size(); ++I)
      ASSERT_TRUE(Responses[I].hasValue())
          << "workers=" << Workers << " request " << I << ": "
          << Responses[I].getError();
    if (Workers == 1) {
      RefMatmulSchedule = Responses[0]->Schedule.toString();
      RefMatmulSpeedup = Responses[0]->Speedup;
      RefReluSchedule = Responses[1]->Schedule.toString();
      RefReluSpeedup = Responses[1]->Speedup;
    }
    for (unsigned I = 0; I < Responses.size(); ++I) {
      EXPECT_SAME_BITS(I % 2 ? RefReluSpeedup : RefMatmulSpeedup,
                       Responses[I]->Speedup)
          << "workers=" << Workers << " request " << I;
      EXPECT_EQ(I % 2 ? RefReluSchedule : RefMatmulSchedule,
                Responses[I]->Schedule.toString())
          << "workers=" << Workers << " request " << I;
    }
    EXPECT_EQ(Server.stats().Served, Threads * PerThread);
  }
}

TEST(ServeTest, OverCapacitySubmissionRejectsImmediately) {
  ServeOptions O = tinyServeOptions();
  O.QueueCapacity = 2;
  ScheduleServer Server(O);

  uint64_t CounterBefore =
      robustnessCounter(RobustnessEvent::ServerQueueFull).total();

  Server.pauseWorker();
  auto F1 = Server.submitAsync(matmulText());
  auto F2 = Server.submitAsync(reluText());
  auto F3 = Server.submitAsync(matmulText()); // over capacity

  // The rejection must already be resolved -- no hang, no timeout.
  ASSERT_EQ(F3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Expected<ServeResponse> Rejected = F3.get();
  ASSERT_FALSE(Rejected.hasValue());
  EXPECT_NE(Rejected.getError().find("queue full"), std::string::npos)
      << Rejected.getError();
  EXPECT_EQ(robustnessCounter(RobustnessEvent::ServerQueueFull).total(),
            CounterBefore + 1);
  EXPECT_EQ(Server.stats().RejectedQueueFull, 1u);

  // The admitted requests still complete once the worker resumes.
  Server.resumeWorker();
  EXPECT_TRUE(F1.get().hasValue());
  EXPECT_TRUE(F2.get().hasValue());
  EXPECT_EQ(Server.stats().Served, 2u);
}

TEST(ServeTest, MalformedModuleRejectedAtTheGate) {
  ScheduleServer Server(tinyServeOptions());

  Expected<ServeResponse> R = Server.optimize("module @broken { %A = ");
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.getError().find("import rejected"), std::string::npos)
      << R.getError();
  EXPECT_EQ(Server.stats().RejectedImport, 1u);
  EXPECT_EQ(Server.stats().Served, 0u);

  // The gate also applies resource caps, not just syntax.
  ServeOptions Capped = tinyServeOptions();
  Capped.Limits.MaxSourceBytes = 8;
  ScheduleServer Small(Capped);
  EXPECT_FALSE(Small.optimize(matmulText()).hasValue());
}

TEST(ServeTest, ShutdownRejectsQueuedAndLaterSubmissions) {
  ServeOptions O = tinyServeOptions();
  ScheduleServer Server(O);

  Server.pauseWorker();
  auto Queued = Server.submitAsync(matmulText());
  Server.shutdown();

  Expected<ServeResponse> R = Queued.get();
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.getError().find("shut down"), std::string::npos)
      << R.getError();

  Expected<ServeResponse> Late = Server.optimize(matmulText());
  ASSERT_FALSE(Late.hasValue());
  EXPECT_NE(Late.getError().find("shutting down"), std::string::npos);
  EXPECT_EQ(Server.stats().RejectedShutdown, 2u);
}
