//===- FuzzTest.cpp - Deterministic fuzzing as a regression test ----------===//
//
// The fuzz engine at ctest scale: a fixed-seed campaign over the import
// gate and the environment must finish with zero invariant violations,
// the campaign must be bit-deterministic, and every input ever checked
// into tests/fuzz/corpus/ must replay cleanly (rejected with a
// diagnostic or accepted with a finite baseline -- never a crash).
// scripts/ci.sh runs the same engine at ~10x scale via example_fuzz_smoke.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "perf/MachineModel.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace mlirrl;

namespace {

std::string violationReport(const FuzzStats &Stats) {
  std::string Out;
  for (const FuzzViolation &V : Stats.Violations)
    Out += "[" + V.Stage + "] " + V.Message + "\ninput:\n" + V.Input + "\n";
  return Out;
}

TEST(FuzzTest, GateCampaignFindsNothing) {
  FuzzOptions Opts;
  Opts.Seed = 20260808;
  Opts.ParserInputs = 1500;
  Opts.Episodes = 0;
  FuzzStats Stats = runFuzzCampaign(Opts);

  EXPECT_TRUE(Stats.ok()) << violationReport(Stats);
  EXPECT_EQ(Stats.ParserInputs, 1500u);
  // The generator must exercise both sides of the gate.
  EXPECT_GT(Stats.Accepted, 50u) << Stats.summary();
  EXPECT_GT(Stats.Rejected, 200u) << Stats.summary();
}

TEST(FuzzTest, EpisodeCampaignFindsNothing) {
  FuzzOptions Opts;
  Opts.Seed = 4242;
  Opts.ParserInputs = 200;
  Opts.Episodes = 25;
  FuzzStats Stats = runFuzzCampaign(Opts);

  EXPECT_TRUE(Stats.ok()) << violationReport(Stats);
  EXPECT_EQ(Stats.Episodes, 25u);
  EXPECT_GT(Stats.Steps, 25u) << Stats.summary();
}

TEST(FuzzTest, CampaignIsDeterministic) {
  FuzzOptions Opts;
  Opts.Seed = 7;
  Opts.ParserInputs = 300;
  Opts.Episodes = 5;
  FuzzStats A = runFuzzCampaign(Opts);
  FuzzStats B = runFuzzCampaign(Opts);

  EXPECT_EQ(A.Accepted, B.Accepted);
  EXPECT_EQ(A.Rejected, B.Rejected);
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Violations.size(), B.Violations.size());
  for (unsigned I = 0; I < 50; ++I)
    EXPECT_EQ(makeFuzzInput(Opts.Seed, I), makeFuzzInput(Opts.Seed, I));
}

TEST(FuzzTest, InputsDifferAcrossIndicesAndSeeds) {
  // Not a strict requirement of correctness, but a collapsed generator
  // would silently gut the campaign's coverage.
  EXPECT_NE(makeFuzzInput(1, 0), makeFuzzInput(1, 1));
  EXPECT_NE(makeFuzzInput(1, 0), makeFuzzInput(2, 0));
}

TEST(FuzzTest, CorpusReplays) {
  namespace fs = std::filesystem;
  fs::path Corpus = fs::path(MLIRRL_SOURCE_DIR) / "tests" / "fuzz" / "corpus";
  ASSERT_TRUE(fs::is_directory(Corpus)) << Corpus;

  CostModelEvaluator Eval(MachineModel::xeonE5_2680v4());
  ImportLimits Limits; // production limits, not the tightened fuzz ones
  FuzzStats Stats;
  unsigned Files = 0, Accepted = 0;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Corpus)) {
    if (!Entry.is_regular_file())
      continue;
    std::ifstream In(Entry.path());
    ASSERT_TRUE(In.good()) << Entry.path();
    std::ostringstream Buf;
    Buf << In.rdbuf();
    ++Files;
    if (fuzzOneInput(Buf.str(), Eval, Limits, Stats))
      ++Accepted;
    EXPECT_TRUE(Stats.ok()) << Entry.path() << "\n" << violationReport(Stats);
  }
  EXPECT_GE(Files, 7u) << "corpus went missing";
  // valid-chain.mlir must stay on the accept side.
  EXPECT_GE(Accepted, 1u);
}

TEST(FuzzTest, EpisodesOverAnImportedModule) {
  // Direct episode fuzzing over a known-good import, independent of the
  // campaign's acceptance rate.
  std::string Source = R"(module @direct {
    %x = tensor<24x48xf32>
    %w = tensor<48x16xf32>
    %h = linalg.matmul {
      bounds = [24, 16, 48],
      iterators = [parallel, parallel, reduction],
      maps = [(d0, d1, d2) -> (d0, d2), (d0, d1, d2) -> (d2, d1),
              (d0, d1, d2) -> (d0, d1)],
      arith = {mul: 1, add: 1}
    } ins(%x, %w) : tensor<24x16xf32>
    %a = linalg.relu {
      bounds = [24, 16],
      iterators = [parallel, parallel],
      maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
      arith = {max: 1}
    } ins(%h) : tensor<24x16xf32>
  })";
  Expected<Module> M = importModule(Source, fuzzImportLimits());
  ASSERT_TRUE(static_cast<bool>(M)) << M.getError();

  CostModelEvaluator Eval(MachineModel::xeonE5_2680v4());
  FuzzStats Stats;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed)
    fuzzOneEpisode(*M, Seed, Eval, 4000, Stats);
  EXPECT_TRUE(Stats.ok()) << violationReport(Stats);
  EXPECT_EQ(Stats.Episodes, 10u);
}

} // namespace
