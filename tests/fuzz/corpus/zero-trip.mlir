// Regression: zero-extent tensor and zero loop bound. A zero-trip
// nest prices to 0 seconds, which divides into a reward -- the
// sanitizer must reject non-positive bounds.
module @zero {
  %t = tensor<0x4xf32>
  %v = linalg.relu {
    bounds = [0, 4],
    iterators = [parallel, parallel],
    maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
    arith = {max: 1}
  } ins(%t) : tensor<0x4xf32>
}
