// Regression: a negative loop bound (and int64-min style values)
// must die in the gate, not in ceil-division later.
module @negative {
  %t = tensor<4x4xf32>
  %v = linalg.relu {
    bounds = [-1, 4],
    iterators = [parallel, parallel],
    maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
    arith = {max: 1}
  } ins(%t) : tensor<4x4xf32>
}
