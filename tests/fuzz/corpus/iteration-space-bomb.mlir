// Regression: a 2^46-point iteration space that once flowed straight
// into the cost model's int64 arithmetic. The sanitizer must reject it.
module @bomb {
  %t = tensor<8388608x8388608xf32>
  %v = linalg.relu {
    bounds = [8388608, 8388608],
    iterators = [parallel, parallel],
    maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
    arith = {max: 1}
  } ins(%t) : tensor<8388608x8388608xf32>
}
