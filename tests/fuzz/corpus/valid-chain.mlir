// A valid module: the replay must accept it and find the baseline
// finite (the corpus exercises the accept path too, not only
// rejections).
module @valid_chain {
  %x = tensor<32x96xf32>
  %w = tensor<96x24xf32>
  %h = linalg.matmul {
    bounds = [32, 24, 96],
    iterators = [parallel, parallel, reduction],
    maps = [(d0, d1, d2) -> (d0, d2), (d0, d1, d2) -> (d2, d1),
            (d0, d1, d2) -> (d0, d1)],
    arith = {mul: 1, add: 1}
  } ins(%x, %w) : tensor<32x24xf32>
  %a = linalg.relu {
    bounds = [32, 24],
    iterators = [parallel, parallel],
    maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
    arith = {max: 1}
  } ins(%h) : tensor<32x24xf32>
}
