// Regression: integer literals at and past the int64 boundary inside
// shapes, bounds and affine coefficients.
module @overflow {
  %t = tensor<9223372036854775807x4xf32>
  %v = linalg.relu {
    bounds = [99999999999999999999, 4],
    iterators = [parallel, parallel],
    maps = [(d0, d1) -> (9223372036854775807 * d0, d1),
            (d0, d1) -> (d0, d1)],
    arith = {max: 1}
  } ins(%t) : tensor<4x4xf32>
}
