// Regression: bounds larger than the operand tensor -- an
// out-of-bounds access the verifier must catch before any
// materialization happens.
module @oob {
  %t = tensor<4x4xf32>
  %v = linalg.relu {
    bounds = [8, 8],
    iterators = [parallel, parallel],
    maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
    arith = {max: 1}
  } ins(%t) : tensor<8x8xf32>
}
