//===- DeterminismMatrixTest.cpp - The bitwise invariance matrix ------------===//
//
// The repo's core invariant, checked systematically instead of
// point-by-point: for a fixed seed, training is bitwise-identical
// across every combination of vectorized-env batch width, collection
// thread count, update thread count -- and, since the ScheduleState
// layer landed, the incremental/from-scratch pricing axis. One
// table-driven sweep over {BatchWidth 1, 2, 32} x {CollectThreads 1, 4}
// x {UpdateThreads 1, 4} (incremental, the default) plus from-scratch
// probes at the matrix corners compares full per-iteration histories
// against the all-serial reference configuration.
//
// Since the lock-striped shared memo landed, the matrix also sweeps
// CollectThreads x memo shard counts {1, 4, 16, 64} plus memo-off
// probes: every returned price is a deterministic function of its key,
// so the shared striped CachingEvaluator must be trajectory-invisible
// -- identical histories whether collectors share one global-lock
// table, 64 stripes, or no memo at all, even though cache sharing and
// eviction order differ run to run.
//
//===----------------------------------------------------------------------===//

#include "rl/MlirRl.h"

#include "TestUtil.h"
#include "datasets/DnnOps.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mlirrl;
using namespace mlirrl::testutil;

namespace {

struct MatrixCase {
  unsigned BatchWidth;
  unsigned CollectThreads;
  unsigned UpdateThreads;
  /// False = the from-scratch pricing/featurization oracle; training
  /// trajectories must be bitwise-identical to the incremental default.
  bool Incremental = true;
  /// Stripes of the shared CachingEvaluator (1 = the global-lock
  /// single-mutex baseline). Ignored when Memoize is off.
  unsigned MemoShards = 16;
  /// False = no shared memo at all (the trainer prices through the bare
  /// Runner); the memo must be trajectory-invisible.
  bool Memoize = true;
};

std::vector<MatrixCase> matrixCases() {
  std::vector<MatrixCase> Cases;
  for (unsigned Width : {1u, 2u, 32u})
    for (unsigned Collect : {1u, 4u})
      for (unsigned Update : {1u, 4u})
        Cases.push_back({Width, Collect, Update});
  // From-scratch probes at the matrix corners: the incremental layer
  // must be trajectory-invisible at every parallelism shape.
  Cases.push_back({1, 1, 1, /*Incremental=*/false});
  Cases.push_back({32, 4, 4, /*Incremental=*/false});
  // CollectThreads x shard-count probes: one shared striped memo, from
  // the single-mutex baseline up to 64 stripes, serial and parallel.
  for (unsigned Shards : {1u, 4u, 64u}) {
    Cases.push_back({2, 1, 1, true, Shards});
    Cases.push_back({2, 4, 1, true, Shards});
  }
  // Memo-off probes: cached and uncached pricing must coincide bitwise.
  Cases.push_back({1, 1, 1, true, 16, /*Memoize=*/false});
  Cases.push_back({32, 4, 4, true, 16, /*Memoize=*/false});
  return Cases;
}

std::vector<PpoIterationStats> trainWith(const MatrixCase &Case) {
  MlirRlOptions O = MlirRlOptions::laptop();
  O.Net = tinyNet();
  O.Env.Incremental = Case.Incremental;
  O.Ppo.SamplesPerIteration = 8;
  O.Ppo.BatchWidth = Case.BatchWidth;
  O.Ppo.CollectThreads = Case.CollectThreads;
  O.Ppo.UpdateThreads = Case.UpdateThreads;
  O.MemoizeEvaluations = Case.Memoize;
  O.MemoShards = Case.MemoShards;
  O.Iterations = 2;
  O.Seed = 2025;
  MlirRl Sys(O);
  std::vector<Module> Data = {makeMatmulModule(64, 64, 64),
                              makeReluModule({512, 128})};
  return Sys.train(Data);
}

/// The all-serial reference history (incremental, the default),
/// computed once for the whole sweep.
const std::vector<PpoIterationStats> &referenceHistory() {
  static const std::vector<PpoIterationStats> Reference =
      trainWith({1, 1, 1});
  return Reference;
}

class DeterminismMatrixFixture
    : public ::testing::TestWithParam<MatrixCase> {};

} // namespace

TEST_P(DeterminismMatrixFixture, TrainingHistoryMatchesSerialReference) {
  expectSameHistories(trainWith(GetParam()), referenceHistory());
}

INSTANTIATE_TEST_SUITE_P(
    WidthByThreads, DeterminismMatrixFixture,
    ::testing::ValuesIn(matrixCases()),
    [](const ::testing::TestParamInfo<MatrixCase> &Info) {
      std::string Name =
          "Width" + std::to_string(Info.param.BatchWidth) + "Collect" +
          std::to_string(Info.param.CollectThreads) + "Update" +
          std::to_string(Info.param.UpdateThreads) +
          (Info.param.Incremental ? "" : "FromScratch");
      if (!Info.param.Memoize)
        Name += "NoMemo";
      else if (Info.param.MemoShards != 16)
        Name += "Shards" + std::to_string(Info.param.MemoShards);
      return Name;
    });
