//===- DeterminismMatrixTest.cpp - The bitwise invariance matrix ------------===//
//
// The repo's core invariant, checked systematically instead of
// point-by-point: for a fixed seed, training is bitwise-identical
// across every combination of vectorized-env batch width, collection
// thread count, update thread count -- and, since the ScheduleState
// layer landed, the incremental/from-scratch pricing axis. One
// table-driven sweep over {BatchWidth 1, 2, 32} x {CollectThreads 1, 4}
// x {UpdateThreads 1, 4} (incremental, the default) plus from-scratch
// probes at the matrix corners compares full per-iteration histories
// against the all-serial reference configuration.
//
//===----------------------------------------------------------------------===//

#include "rl/MlirRl.h"

#include "TestUtil.h"
#include "datasets/DnnOps.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mlirrl;
using namespace mlirrl::testutil;

namespace {

struct MatrixCase {
  unsigned BatchWidth;
  unsigned CollectThreads;
  unsigned UpdateThreads;
  /// False = the from-scratch pricing/featurization oracle; training
  /// trajectories must be bitwise-identical to the incremental default.
  bool Incremental = true;
};

std::vector<MatrixCase> matrixCases() {
  std::vector<MatrixCase> Cases;
  for (unsigned Width : {1u, 2u, 32u})
    for (unsigned Collect : {1u, 4u})
      for (unsigned Update : {1u, 4u})
        Cases.push_back({Width, Collect, Update});
  // From-scratch probes at the matrix corners: the incremental layer
  // must be trajectory-invisible at every parallelism shape.
  Cases.push_back({1, 1, 1, /*Incremental=*/false});
  Cases.push_back({32, 4, 4, /*Incremental=*/false});
  return Cases;
}

std::vector<PpoIterationStats> trainWith(const MatrixCase &Case) {
  MlirRlOptions O = MlirRlOptions::laptop();
  O.Net = tinyNet();
  O.Env.Incremental = Case.Incremental;
  O.Ppo.SamplesPerIteration = 8;
  O.Ppo.BatchWidth = Case.BatchWidth;
  O.Ppo.CollectThreads = Case.CollectThreads;
  O.Ppo.UpdateThreads = Case.UpdateThreads;
  O.Iterations = 2;
  O.Seed = 2025;
  MlirRl Sys(O);
  std::vector<Module> Data = {makeMatmulModule(64, 64, 64),
                              makeReluModule({512, 128})};
  return Sys.train(Data);
}

/// The all-serial reference history (incremental, the default),
/// computed once for the whole sweep.
const std::vector<PpoIterationStats> &referenceHistory() {
  static const std::vector<PpoIterationStats> Reference =
      trainWith({1, 1, 1});
  return Reference;
}

class DeterminismMatrixFixture
    : public ::testing::TestWithParam<MatrixCase> {};

} // namespace

TEST_P(DeterminismMatrixFixture, TrainingHistoryMatchesSerialReference) {
  expectSameHistories(trainWith(GetParam()), referenceHistory());
}

INSTANTIATE_TEST_SUITE_P(
    WidthByThreads, DeterminismMatrixFixture,
    ::testing::ValuesIn(matrixCases()),
    [](const ::testing::TestParamInfo<MatrixCase> &Info) {
      return "Width" + std::to_string(Info.param.BatchWidth) + "Collect" +
             std::to_string(Info.param.CollectThreads) + "Update" +
             std::to_string(Info.param.UpdateThreads) +
             (Info.param.Incremental ? "" : "FromScratch");
    });
