//===- CheckpointResumeTest.cpp - train(N) == train(k); save/load; rest -----===//
//
// The checkpoint contract: training N iterations straight through is
// bitwise-identical to training k, saving, loading into a fresh
// trainer and training the remaining N-k -- same per-iteration
// statistics, same parameters, same Adam moments, same RNG streams --
// across batch widths and collection thread counts. Plus the
// production file handling on top: keep-last-K rotation, resume from
// the newest checkpoint, and mid-epoch resume of a sharded dataset
// stream.
//
//===----------------------------------------------------------------------===//

#include "rl/Checkpoint.h"

#include "TestUtil.h"
#include "datasets/Dataset.h"
#include "datasets/DnnOps.h"
#include "rl/MlirRl.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace mlirrl;
using namespace mlirrl::testutil;

namespace {

constexpr unsigned kTotalIterations = 8;
constexpr unsigned kSplitAt = 3;

MlirRlOptions resumeOptions(unsigned BatchWidth, unsigned CollectThreads) {
  MlirRlOptions O = MlirRlOptions::laptop();
  O.Net = tinyNet();
  O.Ppo.SamplesPerIteration = 8;
  O.Ppo.BatchWidth = BatchWidth;
  O.Ppo.CollectThreads = CollectThreads;
  O.Seed = 2026;
  return O;
}

std::vector<Module> resumeDataset() {
  return {makeMatmulModule(64, 64, 64), makeReluModule({512, 128}),
          makeMatmulModule(128, 64, 32)};
}

/// A per-test scratch directory under the ctest working directory
/// (inside build/), removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string &Name) : Path(Name) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
  std::string file(const std::string &Name) const {
    return Path + "/" + Name;
  }
  std::string Path;
};

struct ResumeCase {
  unsigned BatchWidth;
  unsigned CollectThreads;
};

class CheckpointResumeFixture
    : public ::testing::TestWithParam<ResumeCase> {};

} // namespace

TEST_P(CheckpointResumeFixture, ResumedTrainingIsBitwiseUninterrupted) {
  const ResumeCase Case = GetParam();
  ScratchDir Scratch("checkpoint_resume_test_" +
                     std::to_string(Case.BatchWidth) + "_" +
                     std::to_string(Case.CollectThreads));
  const std::string Path = Scratch.file("split.ckpt");
  std::vector<Module> Data = resumeDataset();

  // The reference: N iterations with no interruption.
  MlirRl Straight(resumeOptions(Case.BatchWidth, Case.CollectThreads));
  std::vector<PpoIterationStats> StraightHistory;
  for (unsigned I = 0; I < kTotalIterations; ++I)
    StraightHistory.push_back(Straight.trainer().trainIteration(Data));

  // train(k); save.
  MlirRl First(resumeOptions(Case.BatchWidth, Case.CollectThreads));
  std::vector<PpoIterationStats> SplitHistory;
  for (unsigned I = 0; I < kSplitAt; ++I)
    SplitHistory.push_back(First.trainer().trainIteration(Data));
  Expected<bool> Saved = saveCheckpoint(First.trainer(), Path);
  ASSERT_TRUE(Saved.hasValue()) << Saved.getError();

  // load into a fresh trainer; train(N - k).
  MlirRl Resumed(resumeOptions(Case.BatchWidth, Case.CollectThreads));
  Expected<bool> Loaded = loadCheckpoint(Resumed.trainer(), Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.getError();
  EXPECT_EQ(Resumed.trainer().iterationsDone(), kSplitAt);
  for (unsigned I = kSplitAt; I < kTotalIterations; ++I)
    SplitHistory.push_back(Resumed.trainer().trainIteration(Data));

  // Bitwise-identical iteration statistics across the save/load seam...
  expectSameHistories(SplitHistory, StraightHistory);
  // ...and identical final state: parameters, Adam moments and step
  // count, RNG streams and cursors.
  expectSameParameters(Resumed.agent().parameters(),
                       Straight.agent().parameters());
  nn::Adam::State StraightAdam = Straight.trainer().optimizerState();
  nn::Adam::State ResumedAdam = Resumed.trainer().optimizerState();
  EXPECT_EQ(ResumedAdam.StepCount, StraightAdam.StepCount);
  ASSERT_EQ(ResumedAdam.FirstMoment.size(), StraightAdam.FirstMoment.size());
  for (size_t I = 0; I < StraightAdam.FirstMoment.size(); ++I) {
    ASSERT_EQ(ResumedAdam.FirstMoment[I].size(),
              StraightAdam.FirstMoment[I].size());
    for (size_t J = 0; J < StraightAdam.FirstMoment[I].size(); ++J) {
      EXPECT_SAME_BITS(ResumedAdam.FirstMoment[I][J],
                       StraightAdam.FirstMoment[I][J]);
      EXPECT_SAME_BITS(ResumedAdam.SecondMoment[I][J],
                       StraightAdam.SecondMoment[I][J]);
    }
  }
  Rng::Snapshot StraightRng = Straight.trainer().rng().snapshot();
  Rng::Snapshot ResumedRng = Resumed.trainer().rng().snapshot();
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(ResumedRng.Words[I], StraightRng.Words[I]);
  EXPECT_EQ(ResumedRng.HasSpareGaussian, StraightRng.HasSpareGaussian);
  EXPECT_SAME_BITS(ResumedRng.SpareGaussian, StraightRng.SpareGaussian);
  EXPECT_EQ(Resumed.trainer().episodeCounter(),
            Straight.trainer().episodeCounter());
  EXPECT_EQ(Resumed.trainer().iterationsDone(), kTotalIterations);
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndThreads, CheckpointResumeFixture,
    ::testing::Values(ResumeCase{1, 1}, ResumeCase{1, 4}, ResumeCase{8, 1},
                      ResumeCase{8, 4}),
    [](const ::testing::TestParamInfo<ResumeCase> &Info) {
      return "Width" + std::to_string(Info.param.BatchWidth) + "Threads" +
             std::to_string(Info.param.CollectThreads);
    });

TEST(CheckpointManagerTest, RotationKeepsOnlyTheNewestK) {
  ScratchDir Scratch("checkpoint_manager_test");
  CheckpointManager Manager({Scratch.Path, "rot", /*KeepLast=*/2});
  MlirRl Sys(resumeOptions(4, 1));
  std::vector<Module> Data = resumeDataset();

  for (unsigned I = 0; I < 4; ++I) {
    Sys.trainer().trainIteration(Data);
    Expected<std::string> Saved = Manager.save(Sys.trainer());
    ASSERT_TRUE(Saved.hasValue()) << Saved.getError();
  }

  unsigned Remaining = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Scratch.Path))
    Remaining += Entry.path().extension() == ".ckpt";
  EXPECT_EQ(Remaining, 2u);
  EXPECT_NE(Manager.latestPath().find("rot-0000000004.ckpt"),
            std::string::npos);

  // loadLatest resumes from the newest; training on matches a straight
  // run's fifth iteration.
  MlirRl Straight(resumeOptions(4, 1));
  std::vector<PpoIterationStats> Reference;
  for (unsigned I = 0; I < 5; ++I)
    Reference.push_back(Straight.trainer().trainIteration(Data));

  MlirRl Resumed(resumeOptions(4, 1));
  Expected<bool> Loaded = Manager.loadLatest(Resumed.trainer());
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.getError();
  EXPECT_TRUE(*Loaded);
  EXPECT_EQ(Resumed.trainer().iterationsDone(), 4u);
  PpoIterationStats Fifth = Resumed.trainer().trainIteration(Data);
  expectSameHistories({Fifth}, {Reference[4]});
}

TEST(CheckpointManagerTest, CorruptNewestFallsBackToOlderCheckpoint) {
  ScratchDir Scratch("checkpoint_manager_fallback_test");
  CheckpointManager Manager({Scratch.Path, "fb", /*KeepLast=*/2});
  MlirRl Sys(resumeOptions(4, 1));
  std::vector<Module> Data = resumeDataset();
  for (unsigned I = 0; I < 2; ++I) {
    Sys.trainer().trainIteration(Data);
    ASSERT_TRUE(Manager.save(Sys.trainer()).hasValue());
  }

  // Tear the newest checkpoint in half (a crashed disk / power loss).
  std::string Newest = Manager.latestPath();
  ASSERT_NE(Newest.find("fb-0000000002.ckpt"), std::string::npos);
  Expected<std::vector<uint8_t>> Bytes = serialize::readFileBytes(Newest);
  ASSERT_TRUE(Bytes.hasValue());
  Bytes->resize(Bytes->size() / 2);
  ASSERT_TRUE(serialize::writeFileBytesAtomic(Newest, *Bytes).hasValue());

  // loadLatest falls back to the retained iteration-1 checkpoint.
  MlirRl Resumed(resumeOptions(4, 1));
  Expected<bool> Loaded = Manager.loadLatest(Resumed.trainer());
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.getError();
  EXPECT_TRUE(*Loaded);
  EXPECT_EQ(Resumed.trainer().iterationsDone(), 1u);
}

TEST(CheckpointManagerTest, StaleHigherIndexCheckpointsDoNotSwallowFreshSaves) {
  ScratchDir Scratch("checkpoint_manager_stale_test");
  CheckpointManager Manager({Scratch.Path, "st", /*KeepLast=*/2});
  MlirRl Old(resumeOptions(4, 1));
  std::vector<Module> Data = resumeDataset();
  for (unsigned I = 0; I < 4; ++I) {
    Old.trainer().trainIteration(Data);
    ASSERT_TRUE(Manager.save(Old.trainer()).hasValue());
  }

  // A fresh run (iteration 1) saving into the same directory must not
  // rotate its own just-written checkpoint away.
  MlirRl FreshRun(resumeOptions(4, 1));
  FreshRun.trainer().trainIteration(Data);
  Expected<std::string> Saved = Manager.save(FreshRun.trainer());
  ASSERT_TRUE(Saved.hasValue()) << Saved.getError();
  EXPECT_TRUE(std::filesystem::exists(*Saved));
}

TEST(CheckpointManagerTest, LoadLatestOnEmptyDirectoryIsNotAnError) {
  ScratchDir Scratch("checkpoint_manager_empty_test");
  CheckpointManager Manager({Scratch.Path, "none", 2});
  EXPECT_TRUE(Manager.latestPath().empty());
  MlirRl Sys(resumeOptions(1, 1));
  Expected<bool> Loaded = Manager.loadLatest(Sys.trainer());
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.getError();
  EXPECT_FALSE(*Loaded);
}

TEST(ShardedStreamTest, SeekReproducesTheExactSampleSequence) {
  DatasetConfig Config;
  Config.Dnn.Matmul = 3;
  Config.Dnn.Conv2d = 1;
  Config.Dnn.Maxpool = 1;
  Config.Dnn.Add = 2;
  Config.Dnn.Relu = 2;
  Config.Sequences = 3;
  Config.Lqcd = 1;
  Config.Seed = 99;

  ShardedDataset A(Config, /*ShardSize=*/4);
  EXPECT_EQ(A.size(), 13u);
  // Walk one and a half epochs, remembering the tail.
  std::vector<std::string> Tail;
  for (unsigned I = 0; I < 19; ++I) {
    const Module &M = A.next();
    if (I >= 7)
      Tail.push_back(M.getName());
  }

  ShardedDataset B(Config, /*ShardSize=*/4);
  B.seek(7);
  for (const std::string &Expected : Tail)
    EXPECT_EQ(B.next().getName(), Expected);
}

TEST(ShardedStreamTest, StreamedTrainingResumesMidEpochBitwise) {
  ScratchDir Scratch("checkpoint_stream_test");
  const std::string Path = Scratch.file("stream.ckpt");
  DatasetConfig Config;
  Config.Dnn.Matmul = 2;
  Config.Dnn.Conv2d = 0;
  Config.Dnn.Maxpool = 0;
  Config.Dnn.Add = 2;
  Config.Dnn.Relu = 2;
  Config.Sequences = 2;
  Config.Lqcd = 0;
  Config.Seed = 7;

  MlirRlOptions Options = resumeOptions(4, 1);
  Options.Ppo.SamplesPerIteration = 5; // not a divisor of the 8-sample
                                       // epoch: every save lands
                                       // mid-epoch and mid-shard

  // Uninterrupted streamed training.
  MlirRl Straight(Options);
  ShardedDataset StraightStream(Config, /*ShardSize=*/4);
  std::vector<PpoIterationStats> Reference;
  for (unsigned I = 0; I < 4; ++I)
    Reference.push_back(Straight.trainer().trainIteration(StraightStream));

  // Two iterations, checkpoint (with the stream cursor), resume both
  // trainer and a fresh stream, two more.
  MlirRl First(Options);
  ShardedDataset FirstStream(Config, /*ShardSize=*/4);
  std::vector<PpoIterationStats> SplitHistory;
  for (unsigned I = 0; I < 2; ++I)
    SplitHistory.push_back(First.trainer().trainIteration(FirstStream));
  EXPECT_EQ(FirstStream.cursor(), 10u);
  Expected<bool> Saved = saveCheckpoint(First.trainer(), Path, &FirstStream);
  ASSERT_TRUE(Saved.hasValue()) << Saved.getError();

  MlirRl Resumed(Options);
  ShardedDataset ResumedStream(Config, /*ShardSize=*/4);
  Expected<bool> Loaded =
      loadCheckpoint(Resumed.trainer(), Path, &ResumedStream);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.getError();
  EXPECT_EQ(ResumedStream.cursor(), 10u);
  for (unsigned I = 0; I < 2; ++I)
    SplitHistory.push_back(Resumed.trainer().trainIteration(ResumedStream));

  expectSameHistories(SplitHistory, Reference);
  expectSameParameters(Resumed.agent().parameters(),
                       Straight.agent().parameters());
}

TEST(ShardedStreamTest, MismatchedStreamIsRejectedBeforeAnyMutation) {
  ScratchDir Scratch("checkpoint_stream_mismatch_test");
  const std::string Path = Scratch.file("stream.ckpt");
  DatasetConfig Config;
  Config.Dnn.Matmul = 2;
  Config.Dnn.Conv2d = 0;
  Config.Dnn.Maxpool = 0;
  Config.Dnn.Add = 1;
  Config.Dnn.Relu = 1;
  Config.Sequences = 1;
  Config.Lqcd = 0;

  MlirRlOptions Options = resumeOptions(2, 1);
  Options.Ppo.SamplesPerIteration = 3;
  MlirRl Sys(Options);
  ShardedDataset Stream(Config, 4);
  Sys.trainer().trainIteration(Stream);
  ASSERT_TRUE(saveCheckpoint(Sys.trainer(), Path, &Stream).hasValue());

  DatasetConfig OtherConfig = Config;
  OtherConfig.Seed = Config.Seed + 1;
  ShardedDataset OtherStream(OtherConfig, 4);
  MlirRl Fresh(Options);
  Expected<bool> Loaded =
      loadCheckpoint(Fresh.trainer(), Path, &OtherStream);
  ASSERT_FALSE(Loaded.hasValue());
  EXPECT_EQ(OtherStream.cursor(), 0u);
  EXPECT_EQ(Fresh.trainer().iterationsDone(), 0u);
}
