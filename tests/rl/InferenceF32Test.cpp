//===- InferenceF32Test.cpp - f32 greedy inference vs the f64 path ----------===//
//
// The f32 inference contract (MlirRlOptions::Inference): packed float
// logits track the double forward pass to float relative error, greedy
// actions agree with the f64 path, the packed cache follows parameter
// updates, and the default stays F64 so nothing changes unless asked.
//
//===----------------------------------------------------------------------===//

#include "rl/Agent.h"

#include "TestUtil.h"
#include "datasets/DnnOps.h"
#include "env/Featurizer.h"
#include "perf/Runner.h"
#include "rl/MlirRl.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace mlirrl;
using namespace mlirrl::testutil;

namespace {

/// Float forward error through a few GEMM layers stays well inside
/// this envelope for laptop-scale nets (hidden sizes < 64).
constexpr double kLogitTol = 1e-3;

MlirRlOptions inferenceOptions() {
  MlirRlOptions O = MlirRlOptions::laptop();
  O.Net = tinyNet();
  O.Ppo.SamplesPerIteration = 8;
  O.Seed = 4242;
  return O;
}

std::vector<Module> inferenceDataset() {
  return {makeMatmulModule(64, 64, 64), makeReluModule({512, 128})};
}

void expectNearRel(double A, double B, double Tol) {
  EXPECT_NEAR(A, B, Tol * (1.0 + std::fabs(B)));
}

struct InferenceF32Fixture : ::testing::Test {
  EnvConfig Config = EnvConfig::laptop();
  NetConfig Net{16, 16, 2};
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  Runner Run{Machine};
  unsigned FeatureSize = Featurizer(Config).featureSize();
};

} // namespace

TEST_F(InferenceF32Fixture, DefaultInferenceDtypeIsF64) {
  // Off by default, everywhere: the options struct, the laptop preset,
  // and a freshly built agent.
  EXPECT_EQ(MlirRlOptions().Inference, InferenceDtype::F64);
  EXPECT_EQ(MlirRlOptions::laptop().Inference, InferenceDtype::F64);
  ActorCritic Agent(Config, FeatureSize, Net, 1);
  EXPECT_EQ(Agent.inferenceDtype(), InferenceDtype::F64);
}

TEST_F(InferenceF32Fixture, PackedLogitsMatchDoubleForwardWithinRelError) {
  Rng InitRng(17);
  PolicyNet Policy(Config, FeatureSize, Net, InitRng);
  PolicyNetF32 Packed(Policy);

  Environment Env(Config, Run, makeMatmulModule(64, 64, 64));
  Observation Obs = Env.observe();
  std::vector<const Observation *> Batch = {&Obs};

  PolicyNet::Heads H64 = Policy.forward(Batch);
  PolicyNetF32::Heads H32 = Packed.forward(Batch);

  ASSERT_EQ(H32.TransformLogits.Rows, 1u);
  ASSERT_EQ(H32.TransformLogits.Cols, H64.TransformLogits.cols());
  for (unsigned J = 0; J < H32.TransformLogits.Cols; ++J)
    expectNearRel(H32.TransformLogits.at(0, J), H64.TransformLogits.at(0, J),
                  kLogitTol);

  ASSERT_EQ(H32.TileLogits.size(), H64.TileLogits.size());
  for (unsigned Head = 0; Head < H32.TileLogits.size(); ++Head) {
    ASSERT_EQ(H32.TileLogits[Head].Cols, H64.TileLogits[Head].cols());
    for (unsigned J = 0; J < H32.TileLogits[Head].Cols; ++J)
      expectNearRel(H32.TileLogits[Head].at(0, J),
                    H64.TileLogits[Head].at(0, J), kLogitTol);
  }

  ASSERT_EQ(H32.InterchangeLogits.Cols, H64.InterchangeLogits.cols());
  for (unsigned J = 0; J < H32.InterchangeLogits.Cols; ++J)
    expectNearRel(H32.InterchangeLogits.at(0, J),
                  H64.InterchangeLogits.at(0, J), kLogitTol);
}

TEST_F(InferenceF32Fixture, GreedyEpisodeMatchesF64StepByStep) {
  // Drive one episode with greedy f64 actions; at every step the f32
  // path must pick the same action from the same observation (the
  // logit gaps at random init are far wider than float error).
  ActorCritic Agent(Config, FeatureSize, Net, 21);
  Environment Env(Config, Run, makeMatmulModule(64, 64, 64));
  Rng R(22);
  unsigned Steps = 0;
  while (!Env.isDone()) {
    Observation Obs = Env.observe();
    Agent.setInferenceDtype(InferenceDtype::F64);
    ActorCritic::Sampled S64 = Agent.act(Obs, R, /*Greedy=*/true);
    Agent.setInferenceDtype(InferenceDtype::F32);
    ActorCritic::Sampled S32 = Agent.act(Obs, R, /*Greedy=*/true);

    EXPECT_EQ(S32.Action.Kind, S64.Action.Kind) << "step " << Steps;
    EXPECT_EQ(S32.Action.TileSizeIdx, S64.Action.TileSizeIdx)
        << "step " << Steps;
    EXPECT_EQ(S32.Action.EnumeratedChoice, S64.Action.EnumeratedChoice)
        << "step " << Steps;
    EXPECT_EQ(S32.Action.PointerChoice, S64.Action.PointerChoice)
        << "step " << Steps;
    expectNearRel(S32.LogProb, S64.LogProb, kLogitTol);

    Env.step(S64.Action);
    ++Steps;
  }
  EXPECT_GT(Steps, 0u);
}

TEST(InferenceF32EndToEnd, TrainedGreedyRolloutSpeedupWithinTolerance) {
  // Train once in f64 (training never touches the f32 path), then
  // compare the greedy optimize() rollout of the same trained agent
  // under both inference dtypes. Matching action sequences give
  // bitwise-equal speedups through the deterministic evaluator, so the
  // tolerance only absorbs a near-tie argmax flip.
  MlirRl System(inferenceOptions());
  std::vector<Module> Data = inferenceDataset();
  System.train(Data, nullptr);

  Module Target = makeMatmulModule(128, 64, 32);
  EXPECT_EQ(System.agent().inferenceDtype(), InferenceDtype::F64);
  double S64 = System.optimize(Target);

  System.agent().setInferenceDtype(InferenceDtype::F32);
  double S32 = System.optimize(Target);

  EXPECT_GT(S64, 0.0);
  EXPECT_NEAR(S32, S64, 0.05 * (1.0 + std::fabs(S64)));
}

TEST(InferenceF32EndToEnd, PackedCacheFollowsParameterUpdates) {
  // Pack the cache, train further (the optimizer steps the
  // parameters), and check the next f32 rollout reflects the fresh
  // parameters by agreeing with the f64 rollout of the same agent.
  MlirRlOptions O = inferenceOptions();
  O.Inference = InferenceDtype::F32;
  O.Iterations = 1;
  MlirRl System(O);
  EXPECT_EQ(System.agent().inferenceDtype(), InferenceDtype::F32);
  std::vector<Module> Data = inferenceDataset();

  Module Target = makeMatmulModule(128, 64, 32);
  System.train(Data, nullptr);
  (void)System.optimize(Target); // Packs the cache for this version.

  System.train(Data, nullptr); // Steps parameters; cache must refresh.
  double After32 = System.optimize(Target);

  System.agent().setInferenceDtype(InferenceDtype::F64);
  double After64 = System.optimize(Target);
  EXPECT_NEAR(After32, After64, 0.05 * (1.0 + std::fabs(After64)));
}
