//===- PpoTest.cpp - End-to-end PPO training tests ---------------------------===//

#include "rl/MlirRl.h"

#include "datasets/DnnOps.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

MlirRlOptions tinyOptions() {
  MlirRlOptions O = MlirRlOptions::laptop();
  O.Net.LstmHidden = 24;
  O.Net.BackboneHidden = 24;
  O.Ppo.SamplesPerIteration = 6;
  O.Iterations = 12;
  O.Seed = 99;
  return O;
}

} // namespace

TEST(PpoTest, TrainingImprovesMatmulSpeedup) {
  MlirRlOptions O = tinyOptions();
  MlirRl Sys(O);
  std::vector<Module> Data = {makeMatmulModule(256, 256, 256)};

  double Before = Sys.optimize(Data[0]);
  auto History = Sys.train(Data);
  double After = Sys.optimize(Data[0]);

  // The greedy policy after training must beat the baseline clearly and
  // not be worse than the untrained policy.
  EXPECT_GT(After, 2.0);
  EXPECT_GE(After, Before * 0.8);
  EXPECT_EQ(History.size(), O.Iterations);
}

TEST(PpoTest, TrainingIsSeedDeterministic) {
  std::vector<Module> Data = {makeMatmulModule(128, 128, 128)};
  MlirRlOptions O = tinyOptions();
  O.Iterations = 3;

  MlirRl A(O), B(O);
  auto Ha = A.train(Data);
  auto Hb = B.train(Data);
  for (unsigned I = 0; I < Ha.size(); ++I) {
    EXPECT_DOUBLE_EQ(Ha[I].MeanEpisodeReward, Hb[I].MeanEpisodeReward);
    EXPECT_DOUBLE_EQ(Ha[I].MeanSpeedup, Hb[I].MeanSpeedup);
  }
  EXPECT_DOUBLE_EQ(A.optimize(Data[0]), B.optimize(Data[0]));
}

TEST(PpoTest, StatsArePopulated) {
  MlirRlOptions O = tinyOptions();
  O.Iterations = 2;
  MlirRl Sys(O);
  std::vector<Module> Data = {makeReluModule({2048, 512})};
  auto History = Sys.train(Data);
  for (const PpoIterationStats &S : History) {
    EXPECT_GT(S.StepsCollected, 0u);
    EXPECT_GT(S.Entropy, 0.0);
    EXPECT_GT(S.MeanSpeedup, 0.0);
    EXPECT_GT(S.MeasurementSeconds, 0.0);
  }
}

TEST(PpoTest, ImmediateRewardTracksMoreMeasurementTime) {
  std::vector<Module> Data = {makeMatmulModule(128, 128, 128)};
  MlirRlOptions FinalOpts = tinyOptions();
  FinalOpts.Iterations = 2;
  MlirRlOptions ImmedOpts = FinalOpts;
  ImmedOpts.Env.Reward = RewardMode::Immediate;

  MlirRl FinalSys(FinalOpts), ImmedSys(ImmedOpts);
  auto Hf = FinalSys.train(Data);
  auto Hi = ImmedSys.train(Data);
  double FinalMeas = 0.0, ImmedMeas = 0.0;
  for (const auto &S : Hf)
    FinalMeas += S.MeasurementSeconds;
  for (const auto &S : Hi)
    ImmedMeas += S.MeasurementSeconds;
  EXPECT_GT(ImmedMeas, FinalMeas);
}

TEST(PpoTest, FlatActionSpaceTrains) {
  MlirRlOptions O = tinyOptions();
  O.Env.ActionSpace = ActionSpaceMode::Flat;
  O.Iterations = 4;
  MlirRl Sys(O);
  std::vector<Module> Data = {makeMatmulModule(256, 256, 256)};
  auto History = Sys.train(Data);
  EXPECT_EQ(History.size(), 4u);
  EXPECT_GT(Sys.optimize(Data[0]), 0.5);
}

TEST(PpoTest, EnumeratedInterchangeTrains) {
  MlirRlOptions O = tinyOptions();
  O.Env.Interchange = InterchangeMode::Enumerated;
  O.Iterations = 4;
  MlirRl Sys(O);
  std::vector<Module> Data = {makeMatmulModule(256, 256, 256)};
  Sys.train(Data);
  EXPECT_GT(Sys.optimize(Data[0]), 0.5);
}
