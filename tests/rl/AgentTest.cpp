//===- AgentTest.cpp - Tests for the actor-critic agent ---------------------===//

#include "rl/Agent.h"

#include "datasets/DnnOps.h"
#include "env/Featurizer.h"
#include "ir/Builder.h"
#include "perf/Runner.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace mlirrl;

namespace {

struct AgentFixture : ::testing::Test {
  EnvConfig Config = EnvConfig::laptop();
  NetConfig Net{16, 16, 2};
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  Runner Run{Machine};
  unsigned FeatureSize = Featurizer(Config).featureSize();

  std::unique_ptr<Environment> makeEnv(Module M) {
    return std::make_unique<Environment>(Config, Run, std::move(M));
  }
};

} // namespace

TEST_F(AgentFixture, ActRespectsTransformMask) {
  ActorCritic Agent(Config, FeatureSize, Net, 1);
  auto Env = makeEnv(makeMaxpoolModule(1, 16, 32, 32, 2, 2));
  Rng R(3);
  for (int I = 0; I < 100; ++I) {
    ActorCritic::Sampled S = Agent.act(Env->observe(), R);
    // Vectorization and fusion are masked for a lone pooling op.
    EXPECT_NE(S.Action.Kind, TransformKind::Vectorization);
    EXPECT_NE(S.Action.Kind, TransformKind::TiledFusion);
  }
}

TEST_F(AgentFixture, SampledTileIndicesInRange) {
  ActorCritic Agent(Config, FeatureSize, Net, 2);
  auto Env = makeEnv(makeMatmulModule(64, 64, 64));
  Rng R(4);
  for (int I = 0; I < 50; ++I) {
    ActorCritic::Sampled S = Agent.act(Env->observe(), R);
    if (!S.Action.TileSizeIdx.empty())
      for (unsigned Idx : S.Action.TileSizeIdx)
        EXPECT_LT(Idx, Config.NumTileSizes);
  }
}

TEST_F(AgentFixture, EvaluateReproducesSampledLogProb) {
  ActorCritic Agent(Config, FeatureSize, Net, 5);
  auto Env = makeEnv(makeMatmulModule(64, 64, 64));
  Rng R(6);
  Observation Obs = Env->observe();
  for (int I = 0; I < 20; ++I) {
    ActorCritic::Sampled S = Agent.act(Obs, R);
    ActorCritic::Evaluation E = Agent.evaluate(Obs, S.Action);
    EXPECT_NEAR(E.LogProb.item(), S.LogProb, 1e-9);
  }
}

TEST_F(AgentFixture, GreedyIsDeterministic) {
  ActorCritic Agent(Config, FeatureSize, Net, 7);
  auto Env = makeEnv(makeMatmulModule(64, 64, 64));
  Rng R(8);
  ActorCritic::Sampled A = Agent.act(Env->observe(), R, /*Greedy=*/true);
  ActorCritic::Sampled B = Agent.act(Env->observe(), R, /*Greedy=*/true);
  EXPECT_EQ(A.Action.Kind, B.Action.Kind);
  EXPECT_EQ(A.Action.TileSizeIdx, B.Action.TileSizeIdx);
  EXPECT_DOUBLE_EQ(A.LogProb, B.LogProb);
}

TEST_F(AgentFixture, PointerSubStepUsesInterchangeHeadOnly) {
  ActorCritic Agent(Config, FeatureSize, Net, 9);
  auto Env = makeEnv(makeMatmulModule(64, 64, 64));
  Rng R(10);
  // Force an interchange start.
  AgentAction Start;
  Start.Kind = TransformKind::Interchange;
  Start.PointerChoice = 1;
  Env->step(Start);
  ASSERT_TRUE(Env->observe().InPointerSequence);
  ActorCritic::Sampled S = Agent.act(Env->observe(), R);
  EXPECT_EQ(S.Action.Kind, TransformKind::Interchange);
  // The already-placed loop cannot be chosen again.
  EXPECT_NE(S.Action.PointerChoice, 1u);
}

TEST_F(AgentFixture, EpisodeRunsToCompletionUnderRandomPolicy) {
  ActorCritic Agent(Config, FeatureSize, Net, 11);
  Rng R(12);
  // Multi-op module exercises op advancement and fusion paths.
  Module M("seq");
  {
    Builder B(M);
    std::string X = B.declareInput({256, 256});
    std::string A = B.relu(X);
    std::string C = B.sigmoid(A);
    B.add(C, C);
  }
  for (uint64_t Seed = 0; Seed < 5; ++Seed) {
    auto Env = makeEnv(M);
    unsigned Guard = 0;
    while (!Env->isDone()) {
      ASSERT_LT(++Guard, 200u) << "episode failed to terminate";
      ActorCritic::Sampled S = Agent.act(Env->observe(), R);
      Env->step(S.Action);
    }
    EXPECT_GE(Env->currentSpeedup(), 0.0);
  }
}

TEST_F(AgentFixture, FlatAgentRunsEpisodes) {
  EnvConfig Flat = Config;
  Flat.ActionSpace = ActionSpaceMode::Flat;
  ActorCritic Agent(Flat, Featurizer(Flat).featureSize(), Net, 13);
  Rng R(14);
  Environment Env(Flat, Run, makeMatmulModule(128, 128, 128));
  unsigned Guard = 0;
  while (!Env.isDone()) {
    ASSERT_LT(++Guard, 100u);
    ActorCritic::Sampled S = Agent.act(Env.observe(), R);
    Env.step(S.Action);
  }
  SUCCEED();
}
