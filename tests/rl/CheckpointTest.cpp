//===- CheckpointTest.cpp - Checkpoint components and failure modes ---------===//
//
// The serialize round-trip contract under the trainer checkpoints:
// random Tensors, RNG states and PPO configurations pushed through
// save -> load -> save produce a byte-identical second archive, a
// corrupted chunk fails with a clean error while leaving the trainer
// bit-for-bit untouched, and a checkpoint from a different network
// architecture is rejected the same way.
//
//===----------------------------------------------------------------------===//

#include "rl/Checkpoint.h"

#include "TestUtil.h"
#include "datasets/DnnOps.h"
#include "env/Featurizer.h"
#include "perf/Runner.h"
#include "rl/MlirRl.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

using namespace mlirrl;
using namespace mlirrl::serialize;
using namespace mlirrl::testutil;

namespace {

constexpr uint32_t kTag = fourCC('F', 'U', 'Z', 'Z');

/// save -> load -> save over one writer-filling callback: both archives
/// must be byte-identical (serialization is a pure function of the
/// logical content).
template <typename FillFn, typename ReloadFn>
void expectSecondArchiveIdentical(FillFn Fill, ReloadFn Reload) {
  ArchiveWriter First(CheckpointFormatVersion);
  First.beginChunk(kTag);
  Fill(First);
  First.endChunk();
  std::vector<uint8_t> Bytes = First.finish();

  Expected<ArchiveReader> Reader =
      ArchiveReader::fromBytes(Bytes, CheckpointFormatVersion);
  ASSERT_TRUE(Reader.hasValue()) << Reader.getError();
  Expected<ChunkReader> Chunk = Reader->chunk(kTag);
  ASSERT_TRUE(Chunk.hasValue());

  ArchiveWriter Second(CheckpointFormatVersion);
  Second.beginChunk(kTag);
  Reload(*Chunk, Second);
  Second.endChunk();
  ASSERT_TRUE(Chunk->ok()) << Chunk->error();
  expectSameBytes(Second.finish(), Bytes);
}

MlirRlOptions tinyOptions(uint64_t Seed = 321) {
  MlirRlOptions O = MlirRlOptions::laptop();
  O.Net = tinyNet();
  O.Ppo.SamplesPerIteration = 4;
  O.Iterations = 1;
  O.Seed = Seed;
  return O;
}

std::vector<Module> tinyDataset() {
  return {makeMatmulModule(64, 64, 64), makeReluModule({256, 64})};
}

} // namespace

TEST(CheckpointTest, RandomTensorsRoundTripByteIdentically) {
  Rng R(41);
  for (int Trial = 0; Trial < 20; ++Trial) {
    unsigned Rows = 1 + static_cast<unsigned>(R.nextBounded(24));
    unsigned Cols = 1 + static_cast<unsigned>(R.nextBounded(24));
    std::vector<double> Values(static_cast<size_t>(Rows) * Cols);
    for (double &V : Values)
      V = R.nextGaussian() * std::pow(10.0, R.nextInt(-300, 300));
    nn::Tensor T = nn::Tensor::fromData(Rows, Cols, Values);

    expectSecondArchiveIdentical(
        [&](ArchiveWriter &W) { ckpt::writeTensor(W, T); },
        [&](ChunkReader &C, ArchiveWriter &W) {
          Expected<nn::Tensor> Loaded = ckpt::readTensor(C);
          ASSERT_TRUE(Loaded.hasValue()) << Loaded.getError();
          expectTensorsBitwiseEqual(*Loaded, T);
          ckpt::writeTensor(W, *Loaded);
        });
  }
}

TEST(CheckpointTest, RandomRngStatesRoundTripAndContinueBitwise) {
  Rng Source(77);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Rng Original(Source.next());
    // Leave the generator mid-stream, sometimes with a cached
    // Box-Muller spare (the half of the state a naive reseed loses).
    unsigned Draws = static_cast<unsigned>(Source.nextBounded(7));
    for (unsigned I = 0; I < Draws; ++I)
      Original.nextGaussian();

    Rng Restored(0);
    expectSecondArchiveIdentical(
        [&](ArchiveWriter &W) { ckpt::writeRng(W, Original); },
        [&](ChunkReader &C, ArchiveWriter &W) {
          ckpt::readRng(C, Restored);
          ckpt::writeRng(W, Restored);
        });

    // The restored stream continues exactly where the original's would.
    for (int I = 0; I < 16; ++I)
      EXPECT_SAME_BITS(Restored.nextGaussian(), Original.nextGaussian());
  }
}

TEST(CheckpointTest, RandomConfigsRoundTripByteIdentically) {
  Rng R(123);
  for (int Trial = 0; Trial < 20; ++Trial) {
    PpoConfig Config;
    Config.LearningRate = R.nextDouble(1e-6, 1e-1);
    Config.ClipRange = R.nextDouble();
    Config.Gamma = R.nextDouble();
    Config.Lambda = R.nextDouble();
    Config.ValueCoef = R.nextDouble();
    Config.EntropyCoef = R.nextDouble();
    Config.UpdateEpochs = static_cast<unsigned>(R.nextBounded(16));
    Config.MinibatchSize = 1 + static_cast<unsigned>(R.nextBounded(256));
    Config.SamplesPerIteration = 1 + static_cast<unsigned>(R.nextBounded(256));
    Config.MaxGradNorm = R.nextDouble(0.0, 10.0);
    Config.Seed = R.next();
    Config.BatchWidth = 1 + static_cast<unsigned>(R.nextBounded(64));
    Config.CollectThreads = static_cast<unsigned>(R.nextBounded(8));
    Config.UpdateThreads = static_cast<unsigned>(R.nextBounded(8));

    PpoConfig Loaded;
    expectSecondArchiveIdentical(
        [&](ArchiveWriter &W) { ckpt::writePpoConfig(W, Config); },
        [&](ChunkReader &C, ArchiveWriter &W) {
          Loaded = ckpt::readPpoConfig(C);
          ckpt::writePpoConfig(W, Loaded);
        });
    EXPECT_SAME_BITS(Loaded.LearningRate, Config.LearningRate);
    EXPECT_EQ(Loaded.Seed, Config.Seed);
    EXPECT_EQ(Loaded.BatchWidth, Config.BatchWidth);
  }
}

TEST(CheckpointTest, TrainerSaveLoadSaveIsByteIdentical) {
  MlirRl Sys(tinyOptions());
  std::vector<Module> Data = tinyDataset();
  Sys.trainer().trainIteration(Data);

  const std::string PathA = "checkpoint_test_a.ckpt";
  const std::string PathB = "checkpoint_test_b.ckpt";
  ASSERT_TRUE(saveCheckpoint(Sys.trainer(), PathA).hasValue());

  MlirRl Fresh(tinyOptions());
  Expected<bool> Loaded = loadCheckpoint(Fresh.trainer(), PathA);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.getError();
  ASSERT_TRUE(saveCheckpoint(Fresh.trainer(), PathB).hasValue());

  Expected<std::vector<uint8_t>> A = readFileBytes(PathA);
  Expected<std::vector<uint8_t>> B = readFileBytes(PathB);
  ASSERT_TRUE(A.hasValue());
  ASSERT_TRUE(B.hasValue());
  expectSameBytes(*B, *A);
  std::remove(PathA.c_str());
  std::remove(PathB.c_str());
}

TEST(CheckpointTest, CorruptChunkFailsCleanlyAndMutatesNothing) {
  MlirRl Sys(tinyOptions());
  std::vector<Module> Data = tinyDataset();
  Sys.trainer().trainIteration(Data);
  const std::string Path = "checkpoint_test_corrupt.ckpt";
  ASSERT_TRUE(saveCheckpoint(Sys.trainer(), Path).hasValue());

  // Flip one byte in the middle of the archive (inside some chunk's
  // payload -- the parameter chunk dominates the file).
  Expected<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  ASSERT_TRUE(Bytes.hasValue());
  (*Bytes)[Bytes->size() / 2] ^= 0x01;
  ASSERT_TRUE(writeFileBytesAtomic(Path, *Bytes).hasValue());

  MlirRl Victim(tinyOptions());
  Victim.trainer().trainIteration(Data);
  std::vector<uint8_t> StateBefore = [&] {
    ArchiveWriter W(CheckpointFormatVersion);
    Victim.trainer().saveState(W);
    return W.finish();
  }();

  Expected<bool> Loaded = loadCheckpoint(Victim.trainer(), Path);
  ASSERT_FALSE(Loaded.hasValue());
  EXPECT_NE(Loaded.getError().find("CRC"), std::string::npos)
      << Loaded.getError();

  // The failed load changed nothing: the trainer re-serializes to the
  // exact bytes it produced before the attempt.
  std::vector<uint8_t> StateAfter = [&] {
    ArchiveWriter W(CheckpointFormatVersion);
    Victim.trainer().saveState(W);
    return W.finish();
  }();
  expectSameBytes(StateAfter, StateBefore);
  std::remove(Path.c_str());
}

TEST(CheckpointTest, ArchitectureMismatchFailsCleanlyAndMutatesNothing) {
  MlirRl Small(tinyOptions());
  std::vector<Module> Data = tinyDataset();
  Small.trainer().trainIteration(Data);
  const std::string Path = "checkpoint_test_arch.ckpt";
  ASSERT_TRUE(saveCheckpoint(Small.trainer(), Path).hasValue());

  MlirRlOptions WideOptions = tinyOptions();
  WideOptions.Net = tinyNet(32);
  MlirRl Wide(WideOptions);
  std::vector<uint8_t> StateBefore = [&] {
    ArchiveWriter W(CheckpointFormatVersion);
    Wide.trainer().saveState(W);
    return W.finish();
  }();

  Expected<bool> Loaded = loadCheckpoint(Wide.trainer(), Path);
  ASSERT_FALSE(Loaded.hasValue());
  EXPECT_NE(Loaded.getError().find("architecture"), std::string::npos)
      << Loaded.getError();

  std::vector<uint8_t> StateAfter = [&] {
    ArchiveWriter W(CheckpointFormatVersion);
    Wide.trainer().saveState(W);
    return W.finish();
  }();
  expectSameBytes(StateAfter, StateBefore);
  std::remove(Path.c_str());
}
