//===- RolloutBufferTest.cpp - Tests for GAE / advantage computation --------===//

#include "rl/RolloutBuffer.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace mlirrl;

namespace {

RolloutStep makeStep(double Reward, double Value, bool End) {
  RolloutStep S;
  S.Reward = Reward;
  S.Value = Value;
  S.EpisodeEnd = End;
  return S;
}

} // namespace

TEST(RolloutBufferTest, SingleStepEpisode) {
  RolloutBuffer B;
  B.add(makeStep(2.0, 0.5, true));
  B.computeAdvantages(1.0, 0.95);
  // delta = r - V = 1.5; no bootstrap.
  EXPECT_DOUBLE_EQ(B.steps()[0].Advantage, 1.5);
  EXPECT_DOUBLE_EQ(B.steps()[0].Return, 2.0);
}

TEST(RolloutBufferTest, TerminalRewardPropagatesWithGammaOne) {
  // Paper setting: gamma = 1, all reward at the end.
  RolloutBuffer B;
  B.add(makeStep(0.0, 0.0, false));
  B.add(makeStep(0.0, 0.0, false));
  B.add(makeStep(3.0, 0.0, true));
  B.computeAdvantages(1.0, 1.0); // lambda = 1: Monte-Carlo returns
  for (const RolloutStep &S : B.steps()) {
    EXPECT_DOUBLE_EQ(S.Return, 3.0);
    EXPECT_DOUBLE_EQ(S.Advantage, 3.0);
  }
}

TEST(RolloutBufferTest, LambdaDiscountsCredit) {
  RolloutBuffer B;
  B.add(makeStep(0.0, 0.0, false));
  B.add(makeStep(1.0, 0.0, true));
  B.computeAdvantages(1.0, 0.5);
  // A1 = 1; A0 = 0 + 1*0.5*A1 = 0.5.
  EXPECT_DOUBLE_EQ(B.steps()[1].Advantage, 1.0);
  EXPECT_DOUBLE_EQ(B.steps()[0].Advantage, 0.5);
}

TEST(RolloutBufferTest, EpisodeBoundaryStopsBootstrap) {
  RolloutBuffer B;
  B.add(makeStep(5.0, 0.0, true));  // episode 1
  B.add(makeStep(0.0, 0.0, true));  // episode 2
  B.computeAdvantages(1.0, 0.95);
  // Episode 2 must not see episode 1's reward.
  EXPECT_DOUBLE_EQ(B.steps()[1].Advantage, 0.0);
  EXPECT_DOUBLE_EQ(B.steps()[0].Advantage, 5.0);
}

TEST(RolloutBufferTest, ValueBaselineReducesAdvantage) {
  RolloutBuffer B;
  B.add(makeStep(2.0, 2.0, true)); // perfectly predicted
  B.computeAdvantages(1.0, 0.95);
  EXPECT_DOUBLE_EQ(B.steps()[0].Advantage, 0.0);
  EXPECT_DOUBLE_EQ(B.steps()[0].Return, 2.0);
}

TEST(RolloutBufferTest, NormalizationZeroMeanUnitVar) {
  RolloutBuffer B;
  B.add(makeStep(1.0, 0.0, true));
  B.add(makeStep(2.0, 0.0, true));
  B.add(makeStep(3.0, 0.0, true));
  B.add(makeStep(6.0, 0.0, true));
  B.computeAdvantages(1.0, 0.95);
  B.normalizeAdvantages();
  double Sum = 0.0, SumSq = 0.0;
  for (const RolloutStep &S : B.steps()) {
    Sum += S.Advantage;
    SumSq += S.Advantage * S.Advantage;
  }
  EXPECT_NEAR(Sum, 0.0, 1e-9);
  EXPECT_NEAR(SumSq / B.size(), 1.0, 1e-6);
}
