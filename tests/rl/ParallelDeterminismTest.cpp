//===- ParallelDeterminismTest.cpp - Thread-count-invariant training --------===//
//
// Episode RNG streams are keyed by the global sample index, not the
// thread id, and collected steps merge back into the rollout buffer in
// sample order -- so training must be bitwise identical for every
// collection thread count given the same seed.
//
//===----------------------------------------------------------------------===//

#include "rl/MlirRl.h"

#include "datasets/DnnOps.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

using namespace mlirrl;

namespace {

/// Exact bit-pattern equality: EXPECT_DOUBLE_EQ tolerates 4 ULPs, which
/// would let a small thread-count-dependent divergence slip through the
/// bitwise-determinism contract.
#define EXPECT_SAME_BITS(X, Y)                                              \
  EXPECT_EQ(std::bit_cast<uint64_t>(static_cast<double>(X)),                \
            std::bit_cast<uint64_t>(static_cast<double>(Y)))

MlirRlOptions tinyOptions(unsigned CollectThreads) {
  MlirRlOptions O = MlirRlOptions::laptop();
  O.Net.LstmHidden = 16;
  O.Net.BackboneHidden = 16;
  O.Ppo.SamplesPerIteration = 6;
  O.Ppo.CollectThreads = CollectThreads;
  O.Iterations = 3;
  O.Seed = 2024;
  return O;
}

std::vector<PpoIterationStats> trainWithThreads(unsigned CollectThreads) {
  MlirRlOptions O = tinyOptions(CollectThreads);
  MlirRl Sys(O);
  std::vector<Module> Data = {makeMatmulModule(64, 64, 64),
                              makeReluModule({512, 128})};
  return Sys.train(Data);
}

} // namespace

TEST(ParallelDeterminismTest, OneAndFourThreadRunsAreBitwiseIdentical) {
  std::vector<PpoIterationStats> Seq = trainWithThreads(1);
  std::vector<PpoIterationStats> Par = trainWithThreads(4);
  ASSERT_EQ(Seq.size(), Par.size());
  for (unsigned I = 0; I < Seq.size(); ++I) {
    EXPECT_SAME_BITS(Seq[I].MeanEpisodeReward, Par[I].MeanEpisodeReward);
    EXPECT_SAME_BITS(Seq[I].MeanSpeedup, Par[I].MeanSpeedup);
    EXPECT_SAME_BITS(Seq[I].PolicyLoss, Par[I].PolicyLoss);
    EXPECT_SAME_BITS(Seq[I].ValueLoss, Par[I].ValueLoss);
    EXPECT_SAME_BITS(Seq[I].Entropy, Par[I].Entropy);
    EXPECT_EQ(Seq[I].StepsCollected, Par[I].StepsCollected);
    EXPECT_SAME_BITS(Seq[I].MeasurementSeconds, Par[I].MeasurementSeconds);
  }
}

TEST(ParallelDeterminismTest, HardwareThreadCountRunMatchesToo) {
  // CollectThreads = 0 resolves to the hardware thread count, whatever
  // that is on the host; results must still match the sequential run.
  std::vector<PpoIterationStats> Seq = trainWithThreads(1);
  std::vector<PpoIterationStats> Auto = trainWithThreads(0);
  ASSERT_EQ(Seq.size(), Auto.size());
  for (unsigned I = 0; I < Seq.size(); ++I) {
    EXPECT_SAME_BITS(Seq[I].MeanEpisodeReward, Auto[I].MeanEpisodeReward);
    EXPECT_SAME_BITS(Seq[I].MeanSpeedup, Auto[I].MeanSpeedup);
  }
}

TEST(ParallelDeterminismTest, GreedyEvaluationUnaffectedByThreadCount) {
  MlirRlOptions O1 = tinyOptions(1), O4 = tinyOptions(4);
  MlirRl A(O1), B(O4);
  std::vector<Module> Data = {makeMatmulModule(64, 64, 64)};
  A.train(Data);
  B.train(Data);
  EXPECT_SAME_BITS(A.optimize(Data[0]), B.optimize(Data[0]));
}

TEST(ParallelDeterminismTest, ThreadPoolRunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Counts(N);
  Pool.parallelFor(N, [&](size_t I) { Counts[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Counts[I].load(), 1) << "index " << I;
  // Reuse of the same pool must work (second batch).
  Pool.parallelFor(N, [&](size_t I) { Counts[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Counts[I].load(), 2);
}
