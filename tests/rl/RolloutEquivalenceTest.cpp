//===- RolloutEquivalenceTest.cpp - Engine vs legacy loop, bitwise ----------===//
//
// The RolloutEngine extraction's safety net: the engine replaced three
// hand-rolled episode loops (PPO collection inside PpoTrainer, the
// greedy single-Environment loop inside evaluate(), and the random
// search baseline's loop). These tests keep verbatim replicas of the
// legacy loops and assert the engine's trajectories are bitwise
// identical per seed -- any drift in step caps, done-handling, reward
// accounting or RNG consumption order fails here first, with a readable
// diff instead of a mysteriously changed training curve.
//
// The random baseline is the one deliberate exception: its old loop
// over-sampled tile levels (one RNG draw per MaxLoops level, where the
// policy heads draw one per *present* loop), so its trajectories were
// NOT policy-shaped. That fix is pinned by its own regression test
// below rather than by replica equality.
//
//===----------------------------------------------------------------------===//

#include "rl/RolloutEngine.h"

#include "baselines/RandomSearch.h"
#include "datasets/DnnOps.h"
#include "env/Featurizer.h"
#include "env/VecEnv.h"
#include "perf/Runner.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

void expectSameAction(const AgentAction &A, const AgentAction &B) {
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.TileSizeIdx, B.TileSizeIdx);
  EXPECT_EQ(A.EnumeratedChoice, B.EnumeratedChoice);
  EXPECT_EQ(A.PointerChoice, B.PointerChoice);
  EXPECT_EQ(A.FlatChoice, B.FlatChoice);
}

struct EquivalenceFixture : ::testing::Test {
  EnvConfig Config = EnvConfig::laptop();
  NetConfig Net = testutil::tinyNet();
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  Runner Run{Machine};
  unsigned FeatureSize = Featurizer(Config).featureSize();

  std::vector<Module> Samples = {makeMatmulModule(96, 96, 96),
                                 makeReluModule({512, 256}),
                                 makeMatmulModule(64, 128, 64)};
};

/// The PPO collection loop exactly as PpoTrainer::collectGroup shipped
/// it before the extraction (modulo the trainer's member plumbing).
struct LegacyEpisode {
  double Reward = 0.0;
  double Speedup = 1.0;
  double MeasurementSeconds = 0.0;
  uint64_t NestMaterializations = 0;
  std::vector<RolloutStep> Steps;
};

std::vector<LegacyEpisode>
legacyCollectGroup(const ActorCritic &Agent, Evaluator &Eval,
                   const std::vector<const Module *> &Samples,
                   const std::vector<uint64_t> &StreamKeys, uint64_t Seed) {
  unsigned B = static_cast<unsigned>(Samples.size());
  std::vector<Module> Copies;
  Copies.reserve(B);
  for (const Module *M : Samples)
    Copies.push_back(*M);
  VecEnv Vec(Agent.getEnvConfig(), Eval, std::move(Copies));

  std::vector<Rng> Rngs;
  Rngs.reserve(B);
  for (uint64_t Key : StreamKeys)
    Rngs.emplace_back(Rng::deriveSeed(Seed, Key));

  std::vector<LegacyEpisode> Results(B);
  while (!Vec.allDone()) {
    std::vector<unsigned> Live = Vec.liveIndices();
    std::vector<const Observation *> ObsPtrs = Vec.observeLive();
    std::vector<Observation> ObsCopies;
    ObsCopies.reserve(Live.size());
    for (const Observation *Obs : ObsPtrs)
      ObsCopies.push_back(*Obs);

    std::vector<Rng *> RngPtrs(Live.size());
    for (unsigned K = 0; K < Live.size(); ++K)
      RngPtrs[K] = &Rngs[Live[K]];

    std::vector<ActorCritic::Sampled> Sampled =
        Agent.actBatch(ObsPtrs, RngPtrs);
    std::vector<AgentAction> Actions(Live.size());
    for (unsigned K = 0; K < Live.size(); ++K)
      Actions[K] = Sampled[K].Action;
    std::vector<VecEnv::StepOutcome> Outs = Vec.step(Actions);

    for (unsigned K = 0; K < Live.size(); ++K) {
      LegacyEpisode &Episode = Results[Live[K]];
      RolloutStep Step;
      Step.Obs = std::move(ObsCopies[K]);
      Step.Action = std::move(Sampled[K].Action);
      Step.OldLogProb = Sampled[K].LogProb;
      Step.Value = Sampled[K].Value;
      Step.Reward = Outs[K].Reward;
      Step.EpisodeEnd = Outs[K].Done;
      Episode.Steps.push_back(std::move(Step));
      Episode.Reward += Outs[K].Reward;
    }
  }

  for (unsigned I = 0; I < B; ++I) {
    Results[I].Speedup = Vec.env(I).currentSpeedup();
    Results[I].MeasurementSeconds = Vec.env(I).getMeasurementSeconds();
    Results[I].NestMaterializations =
        Vec.env(I).getState().counters().NestMaterializations;
  }
  return Results;
}

} // namespace

TEST_F(EquivalenceFixture, SamplingGroupMatchesLegacyCollectLoopBitwise) {
  for (uint64_t Seed : {7u, 1234u}) {
    ActorCritic Agent(Config, FeatureSize, Net, Seed);

    std::vector<const Module *> Ptrs;
    for (const Module &M : Samples)
      Ptrs.push_back(&M);
    std::vector<uint64_t> Keys = {0, 1, 2};

    std::vector<LegacyEpisode> Legacy =
        legacyCollectGroup(Agent, Run, Ptrs, Keys, Seed);

    RolloutEngine Engine(Agent, Run);
    std::vector<Rng> Rngs;
    for (uint64_t Key : Keys)
      Rngs.emplace_back(Rng::deriveSeed(Seed, Key));
    std::vector<Rng *> RngPtrs;
    for (Rng &R : Rngs)
      RngPtrs.push_back(&R);
    RolloutEngine::Options Opts;
    Opts.RecordSteps = true;
    std::vector<RolloutEngine::Episode> Current =
        Engine.sampleGroup(Ptrs, RngPtrs, Opts);

    ASSERT_EQ(Legacy.size(), Current.size());
    for (size_t I = 0; I < Legacy.size(); ++I) {
      EXPECT_SAME_BITS(Legacy[I].Reward, Current[I].Reward) << "episode " << I;
      EXPECT_SAME_BITS(Legacy[I].Speedup, Current[I].Speedup)
          << "episode " << I;
      EXPECT_SAME_BITS(Legacy[I].MeasurementSeconds,
                       Current[I].MeasurementSeconds)
          << "episode " << I;
      EXPECT_EQ(Legacy[I].NestMaterializations,
                Current[I].NestMaterializations)
          << "episode " << I;
      ASSERT_EQ(Legacy[I].Steps.size(), Current[I].Steps.size())
          << "episode " << I;
      for (size_t S = 0; S < Legacy[I].Steps.size(); ++S) {
        const RolloutStep &L = Legacy[I].Steps[S];
        const RolloutStep &C = Current[I].Steps[S];
        expectSameAction(L.Action, C.Action);
        EXPECT_SAME_BITS(L.OldLogProb, C.OldLogProb)
            << "episode " << I << " step " << S;
        EXPECT_SAME_BITS(L.Value, C.Value)
            << "episode " << I << " step " << S;
        EXPECT_SAME_BITS(L.Reward, C.Reward)
            << "episode " << I << " step " << S;
        EXPECT_EQ(L.EpisodeEnd, C.EpisodeEnd)
            << "episode " << I << " step " << S;
        EXPECT_EQ(L.Obs.Consumer, C.Obs.Consumer)
            << "episode " << I << " step " << S;
        EXPECT_EQ(L.Obs.Producer, C.Obs.Producer)
            << "episode " << I << " step " << S;
      }
    }
  }
}

TEST_F(EquivalenceFixture, GreedyMatchesLegacySingleEnvironmentLoopBitwise) {
  ActorCritic Agent(Config, FeatureSize, Net, 42);

  for (const Module &M : Samples) {
    // The loop PpoTrainer::evaluate shipped before the extraction. The
    // RNG it passed was never drawn from in greedy mode; an engine
    // rollout that consumed entropy here would diverge on the next
    // sampling call, so the replica hands act() a throwaway stream.
    Environment Env(Config, Run, M);
    Rng Throwaway(999);
    while (!Env.isDone()) {
      ActorCritic::Sampled S =
          Agent.act(Env.observe(), Throwaway, /*Greedy=*/true);
      Env.step(S.Action);
    }
    ModuleSchedule LegacySchedule = Env.getSchedule();
    double LegacySpeedup = Env.currentSpeedup();

    RolloutEngine Engine(Agent, Run);
    RolloutEngine::Options Opts;
    Opts.RecordSchedule = true;
    RolloutEngine::Episode E = Engine.greedy(M, Opts);

    EXPECT_SAME_BITS(LegacySpeedup, E.Speedup);
    EXPECT_EQ(LegacySchedule.toString(), E.Schedule.toString());
  }
}

TEST_F(EquivalenceFixture, WidthBGroupEqualsSequentialWidthOneGroups) {
  ActorCritic Agent(Config, FeatureSize, Net, 5);
  RolloutEngine Engine(Agent, Run);

  std::vector<const Module *> Ptrs;
  for (const Module &M : Samples)
    Ptrs.push_back(&M);

  RolloutEngine::Options Opts;
  Opts.RecordSteps = true;

  std::vector<Rng> Wide;
  for (uint64_t Key : {0u, 1u, 2u})
    Wide.emplace_back(Rng::deriveSeed(5, Key));
  std::vector<Rng *> WidePtrs;
  for (Rng &R : Wide)
    WidePtrs.push_back(&R);
  std::vector<RolloutEngine::Episode> Batched =
      Engine.sampleGroup(Ptrs, WidePtrs, Opts);

  for (size_t I = 0; I < Ptrs.size(); ++I) {
    Rng Solo(Rng::deriveSeed(5, I));
    std::vector<RolloutEngine::Episode> Single =
        Engine.sampleGroup({Ptrs[I]}, {&Solo}, Opts);
    EXPECT_SAME_BITS(Batched[I].Reward, Single[0].Reward) << "episode " << I;
    EXPECT_SAME_BITS(Batched[I].Speedup, Single[0].Speedup)
        << "episode " << I;
    EXPECT_EQ(Batched[I].Steps.size(), Single[0].Steps.size())
        << "episode " << I;
  }
}

TEST_F(EquivalenceFixture, StepCapCountsRobustnessEventAndTerminates) {
  ActorCritic Agent(Config, FeatureSize, Net, 11);
  RolloutEngine Engine(Agent, Run);

  uint64_t Before =
      robustnessCounter(RobustnessEvent::RolloutStepCapHit).total();
  RolloutEngine::Options Opts;
  Opts.MaxGroupSteps = 1; // every real episode takes more than one step
  RolloutEngine::Episode E = Engine.greedy(Samples[0], Opts);
  uint64_t After =
      robustnessCounter(RobustnessEvent::RolloutStepCapHit).total();

  EXPECT_EQ(After, Before + 1);
  // The truncated episode still reports a consistent (if trivial)
  // speedup instead of garbage.
  EXPECT_GE(E.Speedup, 0.0);
}

TEST_F(EquivalenceFixture, RandomActionSamplesOnlyPresentTileLevels) {
  // The drift the extraction fixed: the old baseline drew one tile
  // index per MaxLoops level, including levels the op does not have;
  // the policy heads draw one per min(NumLoops, MaxLoops) and leave
  // the rest zero. A matmul has 3 loops < MaxLoops on the laptop
  // config, so under the old code trailing levels were (almost always)
  // nonzero draws; now they must be exactly zero.
  ASSERT_GT(Config.MaxLoops, 3u);
  Environment Env(Config, Run, Samples[0]);
  Observation Obs = Env.observe();
  ASSERT_EQ(Obs.NumLoops, 3u);

  unsigned TiledSeen = 0;
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    Rng R(Seed);
    AgentAction A = randomAction(Obs, Config, R);
    if (A.Kind != TransformKind::Tiling &&
        A.Kind != TransformKind::TiledParallelization &&
        A.Kind != TransformKind::TiledFusion)
      continue;
    ++TiledSeen;
    ASSERT_EQ(A.TileSizeIdx.size(), Config.MaxLoops);
    for (unsigned L = Obs.NumLoops; L < Config.MaxLoops; ++L)
      EXPECT_EQ(A.TileSizeIdx[L], 0u) << "level " << L << " seed " << Seed;
  }
  // The sweep must actually have exercised tiled kinds.
  EXPECT_GT(TiledSeen, 10u);
}

TEST_F(EquivalenceFixture, RandomSearchIsSeedDeterministicThroughEngine) {
  RolloutEngine Engine(Config, Run);
  RandomSearchResult A = randomSearch(Engine, Samples[0], 4, 21);
  RandomSearchResult B = randomSearch(Engine, Samples[0], 4, 21);
  EXPECT_SAME_BITS(A.Speedup, B.Speedup);
  EXPECT_EQ(A.Schedule.toString(), B.Schedule.toString());
  EXPECT_EQ(A.EpisodesUsed, 4u);
}
