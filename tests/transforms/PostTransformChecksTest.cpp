//===- PostTransformChecksTest.cpp - The invariant pass itself ------------===//
//
// The pass must accept everything the engine legally produces and
// reject hand-corrupted states and schedules: illegal replay sequences,
// underivable fused producers, tampered nests, and stale ScheduleState
// caches. checkCandidateAction is the per-step gate the environment
// runs; verifyScheduleState is the full-state form tests and the fuzz
// harness run.
//
//===----------------------------------------------------------------------===//

#include "transforms/PostTransformChecks.h"

#include "ir/Builder.h"
#include "transforms/Apply.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

struct ChainFixture : ::testing::Test {
  Module M{"chain"};
  std::string X, W, H, A;

  void SetUp() override {
    Builder B(M);
    X = B.declareInput({64, 96});
    W = B.declareInput({96, 32});
    H = B.matmul(X, W); // op 0, bounds (64, 32, 96)
    A = B.relu(H);      // op 1, bounds (64, 32)
  }
};

OpSchedule schedOf(std::initializer_list<Transformation> Ts) {
  OpSchedule S;
  S.Transforms = Ts;
  return S;
}

} // namespace

TEST_F(ChainFixture, LegalStatesPass) {
  OpTransformState S(M.getOp(0));
  ASSERT_TRUE(S.apply(Transformation::tiling({8, 8, 0})).Applied);
  ASSERT_TRUE(S.apply(Transformation::interchange({1, 0, 2})).Applied);
  std::string Err;
  EXPECT_TRUE(checkTransformState(S, Err)) << Err;
}

TEST_F(ChainFixture, LegalCandidatesPass) {
  std::string Err;
  EXPECT_TRUE(checkCandidateAction(M, 0, OpSchedule(), Err)) << Err;
  EXPECT_TRUE(checkCandidateAction(
      M, 0,
      schedOf({Transformation::tiledParallelization({16, 0, 0}),
               Transformation::tiling({4, 4, 8}),
               Transformation::vectorization()}),
      Err))
      << Err;
}

TEST_F(ChainFixture, IllegalReplaySequenceRejected) {
  // The engine rejects transforming past vectorization; a schedule that
  // claims to must not survive the gate.
  std::string Err;
  EXPECT_FALSE(checkCandidateAction(
      M, 0,
      schedOf({Transformation::vectorization(),
               Transformation::tiling({8, 8, 0})}),
      Err));
  EXPECT_FALSE(Err.empty());
}

TEST_F(ChainFixture, BadPermutationArityRejected) {
  std::string Err;
  EXPECT_FALSE(checkCandidateAction(
      M, 0, schedOf({Transformation::interchange({1, 0})}), Err));
  EXPECT_FALSE(checkCandidateAction(
      M, 0, schedOf({Transformation::interchange({0, 0, 0})}), Err));
}

TEST_F(ChainFixture, UnderivableFusedProducerRejected) {
  // Op 1 (relu) reads op 0's result, so fusing 0 into 1 is derivable --
  // but the reverse direction is not: op 0 does not read op 1.
  OpSchedule Fused = schedOf({Transformation::tiledFusion({8, 0, 0})});
  Fused.FusedProducers = {1};
  std::string Err;
  EXPECT_FALSE(checkCandidateAction(M, 0, Fused, Err));
  EXPECT_FALSE(Err.empty());

  OpSchedule Legal = schedOf({Transformation::tiledFusion({8, 0})});
  Legal.FusedProducers = {0};
  EXPECT_TRUE(checkCandidateAction(M, 1, Legal, Err)) << Err;
}

TEST_F(ChainFixture, ProducerIndexOutOfRangeRejected) {
  OpSchedule Fused = schedOf({Transformation::tiledFusion({8, 0})});
  Fused.FusedProducers = {7};
  std::string Err;
  EXPECT_FALSE(checkCandidateAction(M, 1, Fused, Err));
  Fused.FusedProducers = {1}; // the op itself
  EXPECT_FALSE(checkCandidateAction(M, 1, Fused, Err));
}

TEST_F(ChainFixture, TamperedNestRejected) {
  OpSchedule Sched = schedOf({Transformation::tiling({8, 8, 0})});
  Expected<LoopNest> Nest = materializeLoopNestChecked(M, 0, Sched);
  ASSERT_TRUE(static_cast<bool>(Nest)) << Nest.getError();
  std::string Err;
  ASSERT_TRUE(checkLoopNest(M, 0, Sched, *Nest, Err)) << Err;

  {
    // Corrupt a trip count.
    LoopNest Bad = *Nest;
    ASSERT_FALSE(Bad.OuterBand.empty());
    Bad.OuterBand[0].TripCount += 1;
    EXPECT_FALSE(checkLoopNest(M, 0, Sched, Bad, Err));
  }
  {
    // Mark a reduction loop parallel.
    LoopNest Bad = *Nest;
    bool Flipped = false;
    for (ScheduledLoop &L : Bad.OuterBand)
      if (L.Kind == IteratorKind::Reduction && !Flipped) {
        L.Parallel = true;
        Flipped = true;
      }
    if (Flipped)
      EXPECT_FALSE(checkLoopNest(M, 0, Sched, Bad, Err));
  }
  {
    // Vectorize a non-innermost loop.
    LoopNest Bad = *Nest;
    ASSERT_FALSE(Bad.Bodies.empty());
    ASSERT_GE(Bad.Bodies.back().Loops.size(), 2u);
    Bad.Bodies.back().Loops.front().Vectorized = true;
    EXPECT_FALSE(checkLoopNest(M, 0, Sched, Bad, Err));
  }
}

TEST_F(ChainFixture, CleanScheduleStateVerifies) {
  ScheduleState State(M);
  State.apply(1, Transformation::tiledFusion({8, 0}), 0);
  State.apply(1, Transformation::vectorization());
  State.materializeAll();
  std::string Err;
  EXPECT_TRUE(verifyScheduleState(State, Err)) << Err;
}

TEST_F(ChainFixture, CorruptFusedAwayBookkeepingRejected) {
  ScheduleState State(M);
  // Hand-corrupt the schedule: op 0 marked fused away, but no live op
  // claims it. ScheduleState never produces this; the check must see it.
  const_cast<ModuleSchedule &>(State.getSchedule()).FusedAway.push_back(0);
  std::string Err;
  EXPECT_FALSE(verifyScheduleState(State, Err));
  EXPECT_FALSE(Err.empty());
}

TEST_F(ChainFixture, OversizedVectorizationRejected) {
  // An innermost trip past the unroll limit (512): the engine masks it,
  // and a schedule claiming it must not survive the gate either.
  Module M2("wide");
  Builder B2(M2);
  B2.relu(B2.declareInput({4, 600}));
  std::string Err;
  EXPECT_FALSE(checkCandidateAction(
      M2, 0, schedOf({Transformation::vectorization()}), Err));
  EXPECT_FALSE(Err.empty());
}
