//===- ScheduleTest.cpp - Tests for the schedule IR -------------------------===//

#include "transforms/Schedule.h"

#include <gtest/gtest.h>

using namespace mlirrl;

TEST(ScheduleTest, FactoryKinds) {
  EXPECT_EQ(Transformation::tiling({8, 8, 0}).Kind, TransformKind::Tiling);
  EXPECT_EQ(Transformation::tiledParallelization({1, 1, 0}).Kind,
            TransformKind::TiledParallelization);
  EXPECT_EQ(Transformation::tiledFusion({4, 4}).Kind,
            TransformKind::TiledFusion);
  EXPECT_EQ(Transformation::interchange({1, 0}).Kind,
            TransformKind::Interchange);
  EXPECT_EQ(Transformation::vectorization().Kind,
            TransformKind::Vectorization);
  EXPECT_EQ(Transformation::noTransformation().Kind,
            TransformKind::NoTransformation);
}

TEST(ScheduleTest, TerminalActions) {
  EXPECT_TRUE(Transformation::vectorization().isTerminal());
  EXPECT_TRUE(Transformation::noTransformation().isTerminal());
  EXPECT_FALSE(Transformation::tiling({8}).isTerminal());
  EXPECT_FALSE(Transformation::interchange({0}).isTerminal());
}

TEST(ScheduleTest, ToStringIncludesParameters) {
  EXPECT_EQ(Transformation::tiling({8, 0, 4}).toString(), "tiling(8, 0, 4)");
  EXPECT_EQ(Transformation::interchange({2, 0, 1}).toString(),
            "interchange(2, 0, 1)");
  EXPECT_EQ(Transformation::vectorization().toString(), "vectorization");
}

TEST(ScheduleTest, OpScheduleToString) {
  OpSchedule S;
  S.Transforms.push_back(Transformation::tiling({8, 8}));
  S.Transforms.push_back(Transformation::vectorization());
  EXPECT_EQ(S.toString(), "[tiling(8, 8); vectorization]");
}

TEST(ScheduleTest, ModuleScheduleFusedAway) {
  ModuleSchedule S;
  S.FusedAway = {2, 5};
  EXPECT_TRUE(S.isFusedAway(2));
  EXPECT_TRUE(S.isFusedAway(5));
  EXPECT_FALSE(S.isFusedAway(0));
}

TEST(ScheduleTest, KindNamesRoundTrip) {
  for (unsigned I = 0; I < NumTransformKinds; ++I) {
    TransformKind K = static_cast<TransformKind>(I);
    EXPECT_FALSE(getTransformKindName(K).empty());
  }
}
