//===- LegalityTest.cpp - Tests for masking and legality rules --------------===//

#include "ir/Builder.h"
#include "transforms/Legality.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

struct OpsFixture : ::testing::Test {
  Module M{"ops"};
  Builder B{M};
  unsigned MatmulIdx, PoolIdx, ReluIdx;

  void SetUp() override {
    std::string A = B.declareInput({64, 64});
    std::string Bv = B.declareInput({64, 64});
    std::string C = B.matmul(A, Bv); // op 0
    std::string In = B.declareInput({1, 8, 16, 16});
    B.poolingMax(In, 2, 2, 2); // op 1
    B.relu(C);                 // op 2
    MatmulIdx = 0;
    PoolIdx = 1;
    ReluIdx = 2;
  }
};

} // namespace

TEST_F(OpsFixture, VectorizationPreconditionPerKind) {
  EXPECT_TRUE(vectorizationPrecondition(M.getOp(MatmulIdx)));
  EXPECT_TRUE(vectorizationPrecondition(M.getOp(ReluIdx)));
  // The paper: MLIR cannot vectorize pooling (Sec. VII-C1).
  EXPECT_FALSE(vectorizationPrecondition(M.getOp(PoolIdx)));
}

TEST_F(OpsFixture, VectorizationInnerTripMask) {
  const LinalgOp &Matmul = M.getOp(MatmulIdx);
  EXPECT_TRUE(isVectorizationLegal(Matmul, 64));
  EXPECT_TRUE(isVectorizationLegal(Matmul, MaxVectorizableInnerTrip));
  // More than 512 iterations: MLIR fully unrolls, must be masked.
  EXPECT_FALSE(isVectorizationLegal(Matmul, MaxVectorizableInnerTrip + 1));
}

TEST_F(OpsFixture, FusionRequiresDataflow) {
  // relu (op 2) reads matmul's result (op 0): fusable.
  EXPECT_TRUE(canFuseProducer(M, ReluIdx, MatmulIdx));
  // matmul does not read relu.
  EXPECT_FALSE(canFuseProducer(M, MatmulIdx, ReluIdx));
  // pooling reads a module input, not the matmul.
  EXPECT_FALSE(canFuseProducer(M, PoolIdx, MatmulIdx));
  EXPECT_FALSE(canFuseProducer(M, ReluIdx, ReluIdx));
}

TEST(LegalityTest, TileCandidatesMatchPaper) {
  const std::vector<int64_t> &C = getDefaultTileCandidates();
  // M = 8 sizes including zero (Sec. VII-A5).
  EXPECT_EQ(C.size(), 8u);
  EXPECT_EQ(C.front(), 0);
  for (size_t I = 1; I < C.size(); ++I)
    EXPECT_GT(C[I], C[I - 1]);
}

TEST(LegalityTest, PermutationValidation) {
  EXPECT_TRUE(isValidPermutation({2, 0, 1}, 3));
  EXPECT_TRUE(isValidPermutation({0}, 1));
  EXPECT_FALSE(isValidPermutation({0, 0, 1}, 3)); // repeat
  EXPECT_FALSE(isValidPermutation({0, 3, 1}, 3)); // out of range
  EXPECT_FALSE(isValidPermutation({0, 1}, 3));    // arity
}

TEST(LegalityTest, EnumeratedCandidatesCount) {
  // 3N - 6 for N >= 3 (Sec. V-A).
  for (unsigned N = 3; N <= 12; ++N)
    EXPECT_EQ(getEnumeratedInterchangeCandidates(N).size(), 3 * N - 6);
  // Small nests degrade gracefully.
  EXPECT_EQ(getEnumeratedInterchangeCandidates(2).size(), 1u);
  EXPECT_EQ(getEnumeratedInterchangeCandidates(1).size(), 0u);
}

TEST(LegalityTest, EnumeratedCandidatesDistances) {
  for (auto [I, J] : getEnumeratedInterchangeCandidates(8)) {
    EXPECT_LT(I, J);
    EXPECT_LE(J - I, 3u);
    EXPECT_LT(J, 8u);
  }
}

TEST(LegalityTest, SwapPermutation) {
  std::vector<unsigned> P = makeSwapPermutation(4, 1, 3);
  EXPECT_EQ(P, (std::vector<unsigned>{0, 3, 2, 1}));
  EXPECT_TRUE(isValidPermutation(P, 4));
}

//===----------------------------------------------------------------------===//
// Adversarial degenerate shapes: the masks must stay meaningful at the
// bottom of every size range.
//===----------------------------------------------------------------------===//

TEST(LegalityAdversarial, OneDimensionalOpMasks) {
  Module M("one_d");
  Builder B(M);
  B.relu(B.declareInput({17}));
  const LinalgOp &Op = M.getOp(0);

  EXPECT_TRUE(vectorizationPrecondition(Op));
  // Trips of 0 and 1 must never unlock SIMD.
  EXPECT_FALSE(isVectorizationLegal(Op, 0));
  EXPECT_TRUE(getEnumeratedInterchangeCandidates(Op.getNumLoops()).empty());
  EXPECT_TRUE(isValidPermutation({0}, 1));
  EXPECT_FALSE(isValidPermutation({}, 1));
}

TEST(LegalityAdversarial, ZeroLoopPermutation) {
  // Empty permutations: valid only for an (impossible) zero-loop op;
  // the gate rejects such modules, but the predicate must not crash.
  EXPECT_TRUE(isValidPermutation({}, 0));
  EXPECT_FALSE(isValidPermutation({0}, 0));
}

TEST(LegalityAdversarial, SelfFusionAndOutOfRangeProducers) {
  Module M("chain");
  Builder B(M);
  std::string X = B.declareInput({8, 8});
  std::string R1 = B.relu(X); // op 0
  B.relu(R1);                 // op 1
  EXPECT_TRUE(canFuseProducer(M, 1, 0));
  EXPECT_FALSE(canFuseProducer(M, 0, 0));
  EXPECT_FALSE(canFuseProducer(M, 1, 1));
  // Out-of-range indices answer false instead of touching getOp.
  EXPECT_FALSE(canFuseProducer(M, 1, 2));
  EXPECT_FALSE(canFuseProducer(M, 9, 0));
}
