//===- ScheduleStateTest.cpp - The incremental transaction layer ------------===//
//
// The dirty-op contract: apply() reports exactly which op nests changed
// (one op normally, consumer + removed producer for Tiled Fusion), cached
// nests and prices survive transactions on other ops, and nothing stale
// can ever be read back -- in particular after fusion, when the
// producer's standalone nest ceases to exist and the consumer's nest
// grows a producer body.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "perf/CostModel.h"
#include "perf/Evaluator.h"
#include "perf/Runner.h"
#include "transforms/Apply.h"
#include "transforms/ScheduleState.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mlirrl;

namespace {

/// relu -> sigmoid chain feeding an add: three ops, fusable chain.
struct ChainFixture : ::testing::Test {
  Module M{"chain"};
  std::string X, R, S;

  void SetUp() override {
    Builder B(M);
    X = B.declareInput({128, 128});
    R = B.relu(X);     // op 0
    S = B.sigmoid(R);  // op 1
    B.add(S, S);       // op 2
  }
};

bool contains(const std::vector<unsigned> &Values, unsigned V) {
  return std::find(Values.begin(), Values.end(), V) != Values.end();
}

} // namespace

TEST_F(ChainFixture, ApplyDirtiesExactlyTheActedOnOp) {
  ScheduleState State(M);
  ScheduleState::DirtySet Dirty =
      State.apply(2, Transformation::tiling({8, 8}));
  EXPECT_EQ(Dirty.Changed, std::vector<unsigned>{2u});
  EXPECT_TRUE(Dirty.FusedAway.empty());
  EXPECT_EQ(State.liveOps(), (std::vector<unsigned>{0, 1, 2}));
  ASSERT_EQ(State.getSchedule().OpSchedules.size(), 1u);
  EXPECT_EQ(State.getSchedule().OpSchedules.at(2).Transforms.size(), 1u);
}

TEST_F(ChainFixture, TiledFusionDirtiesConsumerAndRemovesProducer) {
  ScheduleState State(M);
  ScheduleState::DirtySet Dirty =
      State.apply(2, Transformation::tiledFusion({8, 8}),
                  /*FusedProducer=*/1);
  EXPECT_EQ(Dirty.Changed, std::vector<unsigned>{2u});
  EXPECT_EQ(Dirty.FusedAway, std::vector<unsigned>{1u});
  EXPECT_EQ(State.liveOps(), (std::vector<unsigned>{0, 2}));
  EXPECT_TRUE(State.getSchedule().isFusedAway(1));
  EXPECT_EQ(State.getSchedule().OpSchedules.at(2).FusedProducers,
            std::vector<unsigned>{1u});
}

TEST_F(ChainFixture, CleanOpsKeepCachedNestsAcrossTransactions) {
  ScheduleState State(M);
  // Materialize everything once.
  for (unsigned OpIdx : State.liveOps())
    State.getNest(OpIdx);
  EXPECT_EQ(State.counters().NestMaterializations, 3u);

  // A transaction on op 2 must not re-materialize ops 0 and 1.
  State.apply(2, Transformation::tiling({8, 8}));
  uint64_t H0 = hashLoopNest(State.getNest(0));
  uint64_t H1 = hashLoopNest(State.getNest(1));
  uint64_t H2 = hashLoopNest(State.getNest(2));
  EXPECT_EQ(State.counters().NestMaterializations, 4u);

  // The dirty op's nest changed; the clean ops' nests did not.
  EXPECT_EQ(H0, hashLoopNest(materializeLoopNest(M, 0, OpSchedule())));
  EXPECT_EQ(H1, hashLoopNest(materializeLoopNest(M, 1, OpSchedule())));
  OpSchedule Tiled;
  Tiled.Transforms.push_back(Transformation::tiling({8, 8}));
  EXPECT_EQ(H2, hashLoopNest(materializeLoopNest(M, 2, Tiled)));
}

TEST_F(ChainFixture, MaterializeAllMatchesMaterializeModule) {
  ScheduleState State(M);
  State.apply(2, Transformation::tiledFusion({8, 8}), /*FusedProducer=*/1);
  State.apply(0, Transformation::tiling({16, 16}));

  std::vector<LoopNest> FromState = State.materializeAll();
  std::vector<LoopNest> Oracle = materializeModule(M, State.getSchedule());
  ASSERT_EQ(FromState.size(), Oracle.size());
  for (size_t I = 0; I < Oracle.size(); ++I)
    EXPECT_EQ(hashLoopNest(FromState[I]), hashLoopNest(Oracle[I]));

  // And the cached per-op nests agree with the oracle, in liveOps order.
  ASSERT_EQ(State.liveOps().size(), Oracle.size());
  for (size_t I = 0; I < Oracle.size(); ++I)
    EXPECT_EQ(hashLoopNest(State.getNest(State.liveOps()[I])),
              hashLoopNest(Oracle[I]));
}

TEST_F(ChainFixture, MemoKeyTracksScheduleAndFusionStructure) {
  ScheduleState State(M);
  uint64_t Baseline2 = State.opMemoKey(2);
  // Stable until dirtied.
  EXPECT_EQ(State.opMemoKey(2), Baseline2);
  // Distinct ops get distinct keys.
  EXPECT_NE(State.opMemoKey(0), State.opMemoKey(1));

  State.apply(2, Transformation::tiling({8, 8}));
  uint64_t Tiled2 = State.opMemoKey(2);
  EXPECT_NE(Tiled2, Baseline2);
  // Clean ops keep their keys.
  EXPECT_EQ(State.opMemoKey(1), ScheduleState(M).opMemoKey(1));

  // The same schedule applied to a fresh state reproduces the key
  // (content-addressed: entries survive across states/samples).
  ScheduleState Fresh(M);
  Fresh.apply(2, Transformation::tiling({8, 8}));
  EXPECT_EQ(Fresh.opMemoKey(2), Tiled2);

  // Fusion folds the producer's structure into the consumer's key.
  ScheduleState Fused(M);
  Fused.apply(2, Transformation::tiledFusion({8, 8}), /*FusedProducer=*/1);
  ScheduleState PlainTiled(M);
  PlainTiled.apply(2, Transformation::tiledFusion({8, 8}));
  EXPECT_NE(Fused.opMemoKey(2), PlainTiled.opMemoKey(2));
}

TEST_F(ChainFixture, FusionInvalidationForbidsStaleNestReuse) {
  // The corruption scenario the per-nest caches must make impossible:
  // price the whole module, fuse op 1 into op 2, and re-price. A stale
  // consumer nest (without the producer body) or a lingering producer
  // price would corrupt the sum.
  CostModelEvaluator Eval(MachineModel::xeonE5_2680v4());
  ScheduleState State(M);
  double Before = Eval.timeState(State);
  EXPECT_EQ(Before, Eval.timeModule(M, State.getSchedule()));

  // Warm every per-op cache, then fuse.
  for (unsigned OpIdx : State.liveOps()) {
    State.getNest(OpIdx);
    EXPECT_TRUE(State.hasPrice(OpIdx));
  }
  State.apply(2, Transformation::tiledFusion({8, 8}), /*FusedProducer=*/1);

  // The consumer's price slot is invalidated, the producer is gone from
  // the live set entirely.
  EXPECT_FALSE(State.hasPrice(2));
  EXPECT_FALSE(contains(State.liveOps(), 1));

  // Re-pricing reflects the fused structure bitwise (== the oracle) and
  // the consumer's nest now carries the producer body.
  double After = Eval.timeState(State);
  EXPECT_EQ(After, Eval.timeModule(M, State.getSchedule()));
  EXPECT_NE(After, Before);
  const LoopNest &Fused = State.getNest(2);
  ASSERT_EQ(Fused.Bodies.size(), 2u);
  EXPECT_TRUE(Fused.isFusedIntermediate(S));

  // Same scenario through a CachingEvaluator: the op memo must not
  // resurrect the pre-fusion consumer price either.
  CostModelEvaluator Inner(MachineModel::xeonE5_2680v4());
  CachingEvaluator Caching(Inner);
  ScheduleState CachedState(M);
  EXPECT_EQ(Caching.timeState(CachedState), Before);
  CachedState.apply(2, Transformation::tiledFusion({8, 8}),
                    /*FusedProducer=*/1);
  EXPECT_EQ(Caching.timeState(CachedState), After);
}

TEST_F(ChainFixture, RunnerIncrementalMatchesWholeModule) {
  // Runner's noise protocol applies at module level: per-nest prices +
  // the combiner reproduce timeNests bitwise (noise off = training
  // default).
  Runner Run(MachineModel::xeonE5_2680v4());
  ScheduleState State(M);
  State.apply(2, Transformation::tiling({4, 4}));
  EXPECT_EQ(Run.timeState(State), Run.timeModule(M, State.getSchedule()));
}
