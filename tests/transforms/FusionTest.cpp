//===- FusionTest.cpp - Tests for tiled producer fusion ---------------------===//

#include "ir/Builder.h"
#include "transforms/Apply.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

/// relu -> add elementwise chain over 64x64.
struct ElemChain : ::testing::Test {
  Module M{"chain"};
  std::string X, Y, R;

  void SetUp() override {
    Builder B(M);
    X = B.declareInput({64, 64});
    Y = B.declareInput({64, 64});
    R = B.relu(X); // op 0 (producer)
    B.add(R, Y);   // op 1 (consumer)
  }
};

} // namespace

TEST_F(ElemChain, FusionRequiresEffectiveTiling) {
  OpTransformState S(M.getOp(1));
  EXPECT_FALSE(S.apply(Transformation::tiledFusion({0, 0})).Applied);
  EXPECT_TRUE(S.apply(Transformation::tiledFusion({8, 8})).Applied);
}

TEST_F(ElemChain, FusedNestStructure) {
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiledFusion({8, 8}));
  Sched.FusedProducers.push_back(0);
  LoopNest Nest = materializeLoopNest(M, 1, Sched);

  // Outer band: two tile loops of 8 tiles each.
  ASSERT_EQ(Nest.OuterBand.size(), 2u);
  EXPECT_EQ(Nest.OuterBand[0].TripCount, 8);
  EXPECT_TRUE(Nest.OuterBand[0].IsTileLoop);

  // Bodies: producer slice then consumer points.
  ASSERT_EQ(Nest.Bodies.size(), 2u);
  EXPECT_EQ(Nest.Bodies[0].Name, R);
  // Producer computes an 8x8 slice per tile.
  EXPECT_EQ(Nest.Bodies[0].getPointsPerVisit(), 64);
  EXPECT_EQ(Nest.Bodies[1].getPointsPerVisit(), 64);

  // The relu result is a fused intermediate.
  EXPECT_TRUE(Nest.isFusedIntermediate(R));
  // Total work is both ops' flops.
  EXPECT_EQ(Nest.getTotalFlops(),
            M.getOp(0).getFlops() + M.getOp(1).getFlops());
}

TEST_F(ElemChain, FusedProducerDomainFollowsWindow) {
  // A stencil-like consumer: conv reading a produced feature map needs a
  // halo around each tile.
  Module M2("halo");
  Builder B2(M2);
  std::string In = B2.declareInput({1, 4, 34, 34});
  std::string P = B2.relu(In); // op 0: produces 1x4x34x34
  std::string K = B2.declareInput({8, 4, 3, 3});
  B2.conv2d(P, K, 1); // op 1: output 1x8x32x32

  OpSchedule Sched;
  // Tile conv output spatial dims by 8 (loops n, f, oh, ow, c, kh, kw).
  Sched.Transforms.push_back(Transformation::tiledFusion({0, 0, 8, 8, 0, 0, 0}));
  Sched.FusedProducers.push_back(0);
  LoopNest Nest = materializeLoopNest(M2, 1, Sched);

  ASSERT_EQ(Nest.Bodies.size(), 2u);
  const NestBody &Producer = Nest.Bodies[0];
  // Producer dims (n, c, h, w): per 8x8 output tile the conv reads a
  // (8 + 2) halo window in each spatial dim; channels in full.
  ASSERT_EQ(Producer.Loops.size(), 4u);
  EXPECT_EQ(Producer.Loops[0].TripCount, 1);  // n
  EXPECT_EQ(Producer.Loops[1].TripCount, 4);  // c
  EXPECT_EQ(Producer.Loops[2].TripCount, 10); // h halo
  EXPECT_EQ(Producer.Loops[3].TripCount, 10); // w halo
}

TEST_F(ElemChain, MatmulProducerFusedAtTile) {
  Module M2("mmchain");
  Builder B2(M2);
  std::string A = B2.declareInput({128, 64});
  std::string Bv = B2.declareInput({64, 128});
  std::string C = B2.matmul(A, Bv); // op 0
  B2.relu(C);                       // op 1

  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiledFusion({16, 16}));
  Sched.FusedProducers.push_back(0);
  LoopNest Nest = materializeLoopNest(M2, 1, Sched);

  ASSERT_EQ(Nest.Bodies.size(), 2u);
  const NestBody &MatmulBody = Nest.Bodies[0];
  // Matmul computes a 16x16 output tile with the full K reduction.
  ASSERT_EQ(MatmulBody.Loops.size(), 3u);
  EXPECT_EQ(MatmulBody.Loops[0].TripCount, 16);
  EXPECT_EQ(MatmulBody.Loops[1].TripCount, 16);
  EXPECT_EQ(MatmulBody.Loops[2].TripCount, 64);
  // Work: matmul recomputation is exact here (projection is bijective on
  // the output tile), so total flops are preserved.
  EXPECT_EQ(Nest.getTotalFlops(),
            M2.getOp(0).getFlops() + M2.getOp(1).getFlops());
}

TEST_F(ElemChain, MultipleFusedProducers) {
  Module M2("multi");
  Builder B2(M2);
  std::string X = B2.declareInput({32, 32});
  std::string P1 = B2.relu(X);     // op 0
  std::string P2 = B2.sigmoid(P1); // op 1
  B2.relu(P2);                     // op 2

  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiledFusion({8, 8}));
  Sched.FusedProducers.push_back(1);
  Sched.Transforms.push_back(Transformation::tiledFusion({4, 4}));
  Sched.FusedProducers.push_back(0);

  // Note: op 0 is not a direct producer of op 2, but after fusing op 1 the
  // chain continues; the engine accepts any recorded producer list, and the
  // environment is responsible for only fusing direct producers of the
  // evolving consumer group. Here we only check both bodies materialize.
  // op 0 *is* a producer of the fused group (op1 reads it).
  LoopNest Nest = materializeLoopNest(M2, 2, Sched);
  EXPECT_EQ(Nest.Bodies.size(), 3u);
  EXPECT_EQ(Nest.FusedIntermediates.size(), 2u);
}
