//===- ApplyTest.cpp - Tests for the transformation engine ------------------===//

#include "ir/Builder.h"
#include "transforms/Apply.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

struct MatmulFixture : ::testing::Test {
  Module M{"mm"};
  std::string A, Bv, C;

  void SetUp() override {
    Builder B(M);
    A = B.declareInput({256, 1024});
    Bv = B.declareInput({1024, 512});
    C = B.matmul(A, Bv); // bounds (256, 512, 1024)
  }

  const LinalgOp &op() { return M.getOp(0); }
};

/// Counts loops matching a predicate.
template <typename Pred>
unsigned countLoops(const std::vector<ScheduledLoop> &Loops, Pred P) {
  unsigned N = 0;
  for (const ScheduledLoop &L : Loops)
    N += P(L);
  return N;
}

} // namespace

TEST_F(MatmulFixture, InitialStateIsIdentity) {
  OpTransformState S(op());
  EXPECT_EQ(S.getOrder(), (std::vector<unsigned>{0, 1, 2}));
  EXPECT_EQ(S.getPointTrips(), (std::vector<int64_t>{256, 512, 1024}));
  EXPECT_EQ(S.getInnermostTrip(), 1024);
  EXPECT_FALSE(S.isVectorized());
}

TEST_F(MatmulFixture, TilingUpdatesPointTrips) {
  OpTransformState S(op());
  auto R = S.apply(Transformation::tiling({8, 8, 0}));
  ASSERT_TRUE(R.Applied) << R.Reason;
  EXPECT_EQ(S.getPointTrips(), (std::vector<int64_t>{8, 8, 1024}));
  EXPECT_EQ(S.getInnermostTrip(), 1024);
}

TEST_F(MatmulFixture, AllZeroTilingRejected) {
  OpTransformState S(op());
  auto R = S.apply(Transformation::tiling({0, 0, 0}));
  EXPECT_FALSE(R.Applied);
  EXPECT_EQ(S.getBands().size(), 0u);
}

TEST_F(MatmulFixture, OversizedTileIsNoOpPerDim) {
  OpTransformState S(op());
  // 4096 > every bound: no effect on those dims; 8 on d1 is effective.
  auto R = S.apply(Transformation::tiling({4096, 8, 4096}));
  ASSERT_TRUE(R.Applied) << R.Reason;
  EXPECT_EQ(S.getPointTrips(), (std::vector<int64_t>{256, 8, 1024}));
}

TEST_F(MatmulFixture, TwoLevelTiling) {
  OpTransformState S(op());
  ASSERT_TRUE(S.apply(Transformation::tiling({64, 64, 0})).Applied);
  ASSERT_TRUE(S.apply(Transformation::tiling({8, 8, 0})).Applied);
  EXPECT_EQ(S.getBands().size(), 2u);
  EXPECT_EQ(S.getPointTrips(), (std::vector<int64_t>{8, 8, 1024}));
}

TEST_F(MatmulFixture, InterchangePermutesOrder) {
  OpTransformState S(op());
  // Paper semantics: position i receives loop Perm[i]; I(2,0,1) moves the
  // innermost loop to the outermost position.
  ASSERT_TRUE(S.apply(Transformation::interchange({2, 0, 1})).Applied);
  EXPECT_EQ(S.getOrder(), (std::vector<unsigned>{2, 0, 1}));
  EXPECT_EQ(S.getInnermostTrip(), 512); // d1 is now innermost
}

TEST_F(MatmulFixture, InterchangeComposes) {
  OpTransformState S(op());
  ASSERT_TRUE(S.apply(Transformation::interchange({2, 0, 1})).Applied);
  ASSERT_TRUE(S.apply(Transformation::interchange({2, 0, 1})).Applied);
  // Applying the rotation twice: order becomes (d1, d2, d0).
  EXPECT_EQ(S.getOrder(), (std::vector<unsigned>{1, 2, 0}));
}

TEST_F(MatmulFixture, InvalidPermutationRejected) {
  OpTransformState S(op());
  EXPECT_FALSE(S.apply(Transformation::interchange({0, 0, 1})).Applied);
  EXPECT_FALSE(S.apply(Transformation::interchange({0, 1})).Applied);
}

TEST_F(MatmulFixture, VectorizationRequiresSmallInnerTrip) {
  OpTransformState S(op());
  // Innermost d2 has 1024 iterations > 512: masked.
  EXPECT_FALSE(S.apply(Transformation::vectorization()).Applied);
  // After interchange, innermost d1 has 512 iterations: legal.
  ASSERT_TRUE(S.apply(Transformation::interchange({2, 0, 1})).Applied);
  EXPECT_TRUE(S.apply(Transformation::vectorization()).Applied);
  EXPECT_TRUE(S.isVectorized());
}

TEST_F(MatmulFixture, NoTransformAfterVectorizationRejected) {
  OpTransformState S(op());
  ASSERT_TRUE(S.apply(Transformation::interchange({2, 0, 1})).Applied);
  ASSERT_TRUE(S.apply(Transformation::vectorization()).Applied);
  EXPECT_FALSE(S.apply(Transformation::tiling({8, 8, 8})).Applied);
  EXPECT_FALSE(S.apply(Transformation::vectorization()).Applied);
  EXPECT_FALSE(S.apply(Transformation::interchange({0, 1, 2})).Applied);
}

TEST_F(MatmulFixture, MaterializeBaselineStructure) {
  LoopNest Nest = materializeLoopNest(M, 0, OpSchedule());
  ASSERT_EQ(Nest.Bodies.size(), 1u);
  EXPECT_TRUE(Nest.OuterBand.empty());
  const NestBody &Body = Nest.Bodies[0];
  ASSERT_EQ(Body.Loops.size(), 3u);
  EXPECT_EQ(Body.Loops[0].TripCount, 256);
  EXPECT_EQ(Body.Loops[1].TripCount, 512);
  EXPECT_EQ(Body.Loops[2].TripCount, 1024);
  EXPECT_EQ(Body.Accesses.size(), 3u); // A, B, C
  EXPECT_TRUE(Body.Accesses.back().IsWrite);
  EXPECT_EQ(Nest.getTotalFlops(), op().getFlops());
}

TEST_F(MatmulFixture, MaterializeTiledStructure) {
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiling({8, 8, 0}));
  LoopNest Nest = materializeLoopNest(M, 0, Sched);
  ASSERT_EQ(Nest.Bodies.size(), 1u);
  const NestBody &Body = Nest.Bodies[0];
  // Two tile loops (hoisted into the outer band) + three point loops.
  EXPECT_EQ(countLoops(Nest.OuterBand,
                       [](const ScheduledLoop &L) { return L.IsTileLoop; }),
            2u);
  EXPECT_EQ(countLoops(Body.Loops,
                       [](const ScheduledLoop &L) { return L.IsTileLoop; }),
            0u);
  EXPECT_EQ(Body.Loops.size() + Nest.OuterBand.size(), 5u);
  // Flops must be preserved by tiling (8 divides both extents).
  EXPECT_EQ(Nest.getTotalFlops(), op().getFlops());
}

TEST_F(MatmulFixture, MaterializeParallelMarksOuterBand) {
  OpSchedule Sched;
  Sched.Transforms.push_back(
      Transformation::tiledParallelization({8, 8, 0}));
  LoopNest Nest = materializeLoopNest(M, 0, Sched);
  ASSERT_FALSE(Nest.OuterBand.empty());
  EXPECT_TRUE(Nest.OuterBand[0].Parallel);
  EXPECT_EQ(Nest.getParallelIterations(), 32 * 64);
}

TEST_F(MatmulFixture, ReductionTileLoopNeverParallel) {
  OpSchedule Sched;
  Sched.Transforms.push_back(
      Transformation::tiledParallelization({8, 8, 8}));
  LoopNest Nest = materializeLoopNest(M, 0, Sched);
  for (const ScheduledLoop &L : Nest.OuterBand)
    if (L.Kind == IteratorKind::Reduction)
      EXPECT_FALSE(L.Parallel);
  // Parallelism only from d0 and d1 tile loops.
  EXPECT_EQ(Nest.getParallelIterations(), 32 * 64);
}

TEST_F(MatmulFixture, ParallelizationAloneViaUnitTiles) {
  // The paper: parallelization without tiling = tile sizes of 1.
  OpSchedule Sched;
  Sched.Transforms.push_back(
      Transformation::tiledParallelization({1, 0, 0}));
  LoopNest Nest = materializeLoopNest(M, 0, Sched);
  EXPECT_EQ(Nest.getParallelIterations(), 256);
  EXPECT_EQ(Nest.getTotalFlops(), op().getFlops());
}

TEST_F(MatmulFixture, MaterializeVectorizedMarksInnermost) {
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::interchange({2, 0, 1}));
  Sched.Transforms.push_back(Transformation::vectorization());
  LoopNest Nest = materializeLoopNest(M, 0, Sched);
  const NestBody &Body = Nest.Bodies[0];
  ASSERT_FALSE(Body.Loops.empty());
  EXPECT_TRUE(Body.Loops.back().Vectorized);
  EXPECT_EQ(Body.Loops.back().IterDim, 1u); // d1 innermost
}

TEST_F(MatmulFixture, NonDividingTileRoundsUp) {
  Module M2("nd");
  Builder B2(M2);
  std::string X = B2.declareInput({100, 100});
  std::string Y = B2.declareInput({100, 100});
  B2.matmul(X, Y);
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiling({64, 0, 0}));
  LoopNest Nest = materializeLoopNest(M2, 0, Sched);
  // ceil(100 / 64) = 2 tiles.
  bool Found = false;
  std::vector<ScheduledLoop> All = Nest.OuterBand;
  All.insert(All.end(), Nest.Bodies[0].Loops.begin(),
             Nest.Bodies[0].Loops.end());
  for (const ScheduledLoop &L : All) {
    if (L.IsTileLoop && L.IterDim == 0) {
      EXPECT_EQ(L.TripCount, 2);
      EXPECT_EQ(L.Step, 64);
      Found = true;
    }
  }
  EXPECT_TRUE(Found);
}

TEST_F(MatmulFixture, MaterializeModuleSkipsFusedAway) {
  Module M2("seq");
  Builder B2(M2);
  std::string X = B2.declareInput({32, 32});
  std::string R1 = B2.relu(X);
  B2.relu(R1);
  ModuleSchedule Sched;
  Sched.FusedAway.push_back(0);
  OpSchedule Consumer;
  Consumer.Transforms.push_back(Transformation::tiledFusion({8, 8}));
  Consumer.FusedProducers.push_back(0);
  Sched.OpSchedules[1] = Consumer;
  std::vector<LoopNest> Nests = materializeModule(M2, Sched);
  ASSERT_EQ(Nests.size(), 1u);
  EXPECT_EQ(Nests[0].Bodies.size(), 2u);
}
