//===- ApplyTest.cpp - Tests for the transformation engine ------------------===//

#include "ir/Builder.h"
#include "transforms/Apply.h"
#include "transforms/Legality.h"

#include <gtest/gtest.h>

using namespace mlirrl;

namespace {

struct MatmulFixture : ::testing::Test {
  Module M{"mm"};
  std::string A, Bv, C;

  void SetUp() override {
    Builder B(M);
    A = B.declareInput({256, 1024});
    Bv = B.declareInput({1024, 512});
    C = B.matmul(A, Bv); // bounds (256, 512, 1024)
  }

  const LinalgOp &op() { return M.getOp(0); }
};

/// Counts loops matching a predicate.
template <typename Pred>
unsigned countLoops(const std::vector<ScheduledLoop> &Loops, Pred P) {
  unsigned N = 0;
  for (const ScheduledLoop &L : Loops)
    N += P(L);
  return N;
}

} // namespace

TEST_F(MatmulFixture, InitialStateIsIdentity) {
  OpTransformState S(op());
  EXPECT_EQ(S.getOrder(), (std::vector<unsigned>{0, 1, 2}));
  EXPECT_EQ(S.getPointTrips(), (std::vector<int64_t>{256, 512, 1024}));
  EXPECT_EQ(S.getInnermostTrip(), 1024);
  EXPECT_FALSE(S.isVectorized());
}

TEST_F(MatmulFixture, TilingUpdatesPointTrips) {
  OpTransformState S(op());
  auto R = S.apply(Transformation::tiling({8, 8, 0}));
  ASSERT_TRUE(R.Applied) << R.Reason;
  EXPECT_EQ(S.getPointTrips(), (std::vector<int64_t>{8, 8, 1024}));
  EXPECT_EQ(S.getInnermostTrip(), 1024);
}

TEST_F(MatmulFixture, AllZeroTilingRejected) {
  OpTransformState S(op());
  auto R = S.apply(Transformation::tiling({0, 0, 0}));
  EXPECT_FALSE(R.Applied);
  EXPECT_EQ(S.getBands().size(), 0u);
}

TEST_F(MatmulFixture, OversizedTileIsNoOpPerDim) {
  OpTransformState S(op());
  // 4096 > every bound: no effect on those dims; 8 on d1 is effective.
  auto R = S.apply(Transformation::tiling({4096, 8, 4096}));
  ASSERT_TRUE(R.Applied) << R.Reason;
  EXPECT_EQ(S.getPointTrips(), (std::vector<int64_t>{256, 8, 1024}));
}

TEST_F(MatmulFixture, TwoLevelTiling) {
  OpTransformState S(op());
  ASSERT_TRUE(S.apply(Transformation::tiling({64, 64, 0})).Applied);
  ASSERT_TRUE(S.apply(Transformation::tiling({8, 8, 0})).Applied);
  EXPECT_EQ(S.getBands().size(), 2u);
  EXPECT_EQ(S.getPointTrips(), (std::vector<int64_t>{8, 8, 1024}));
}

TEST_F(MatmulFixture, InterchangePermutesOrder) {
  OpTransformState S(op());
  // Paper semantics: position i receives loop Perm[i]; I(2,0,1) moves the
  // innermost loop to the outermost position.
  ASSERT_TRUE(S.apply(Transformation::interchange({2, 0, 1})).Applied);
  EXPECT_EQ(S.getOrder(), (std::vector<unsigned>{2, 0, 1}));
  EXPECT_EQ(S.getInnermostTrip(), 512); // d1 is now innermost
}

TEST_F(MatmulFixture, InterchangeComposes) {
  OpTransformState S(op());
  ASSERT_TRUE(S.apply(Transformation::interchange({2, 0, 1})).Applied);
  ASSERT_TRUE(S.apply(Transformation::interchange({2, 0, 1})).Applied);
  // Applying the rotation twice: order becomes (d1, d2, d0).
  EXPECT_EQ(S.getOrder(), (std::vector<unsigned>{1, 2, 0}));
}

TEST_F(MatmulFixture, InvalidPermutationRejected) {
  OpTransformState S(op());
  EXPECT_FALSE(S.apply(Transformation::interchange({0, 0, 1})).Applied);
  EXPECT_FALSE(S.apply(Transformation::interchange({0, 1})).Applied);
}

TEST_F(MatmulFixture, VectorizationRequiresSmallInnerTrip) {
  OpTransformState S(op());
  // Innermost d2 has 1024 iterations > 512: masked.
  EXPECT_FALSE(S.apply(Transformation::vectorization()).Applied);
  // After interchange, innermost d1 has 512 iterations: legal.
  ASSERT_TRUE(S.apply(Transformation::interchange({2, 0, 1})).Applied);
  EXPECT_TRUE(S.apply(Transformation::vectorization()).Applied);
  EXPECT_TRUE(S.isVectorized());
}

TEST_F(MatmulFixture, NoTransformAfterVectorizationRejected) {
  OpTransformState S(op());
  ASSERT_TRUE(S.apply(Transformation::interchange({2, 0, 1})).Applied);
  ASSERT_TRUE(S.apply(Transformation::vectorization()).Applied);
  EXPECT_FALSE(S.apply(Transformation::tiling({8, 8, 8})).Applied);
  EXPECT_FALSE(S.apply(Transformation::vectorization()).Applied);
  EXPECT_FALSE(S.apply(Transformation::interchange({0, 1, 2})).Applied);
}

TEST_F(MatmulFixture, MaterializeBaselineStructure) {
  LoopNest Nest = materializeLoopNest(M, 0, OpSchedule());
  ASSERT_EQ(Nest.Bodies.size(), 1u);
  EXPECT_TRUE(Nest.OuterBand.empty());
  const NestBody &Body = Nest.Bodies[0];
  ASSERT_EQ(Body.Loops.size(), 3u);
  EXPECT_EQ(Body.Loops[0].TripCount, 256);
  EXPECT_EQ(Body.Loops[1].TripCount, 512);
  EXPECT_EQ(Body.Loops[2].TripCount, 1024);
  EXPECT_EQ(Body.Accesses.size(), 3u); // A, B, C
  EXPECT_TRUE(Body.Accesses.back().IsWrite);
  EXPECT_EQ(Nest.getTotalFlops(), op().getFlops());
}

TEST_F(MatmulFixture, MaterializeTiledStructure) {
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiling({8, 8, 0}));
  LoopNest Nest = materializeLoopNest(M, 0, Sched);
  ASSERT_EQ(Nest.Bodies.size(), 1u);
  const NestBody &Body = Nest.Bodies[0];
  // Two tile loops (hoisted into the outer band) + three point loops.
  EXPECT_EQ(countLoops(Nest.OuterBand,
                       [](const ScheduledLoop &L) { return L.IsTileLoop; }),
            2u);
  EXPECT_EQ(countLoops(Body.Loops,
                       [](const ScheduledLoop &L) { return L.IsTileLoop; }),
            0u);
  EXPECT_EQ(Body.Loops.size() + Nest.OuterBand.size(), 5u);
  // Flops must be preserved by tiling (8 divides both extents).
  EXPECT_EQ(Nest.getTotalFlops(), op().getFlops());
}

TEST_F(MatmulFixture, MaterializeParallelMarksOuterBand) {
  OpSchedule Sched;
  Sched.Transforms.push_back(
      Transformation::tiledParallelization({8, 8, 0}));
  LoopNest Nest = materializeLoopNest(M, 0, Sched);
  ASSERT_FALSE(Nest.OuterBand.empty());
  EXPECT_TRUE(Nest.OuterBand[0].Parallel);
  EXPECT_EQ(Nest.getParallelIterations(), 32 * 64);
}

TEST_F(MatmulFixture, ReductionTileLoopNeverParallel) {
  OpSchedule Sched;
  Sched.Transforms.push_back(
      Transformation::tiledParallelization({8, 8, 8}));
  LoopNest Nest = materializeLoopNest(M, 0, Sched);
  for (const ScheduledLoop &L : Nest.OuterBand)
    if (L.Kind == IteratorKind::Reduction)
      EXPECT_FALSE(L.Parallel);
  // Parallelism only from d0 and d1 tile loops.
  EXPECT_EQ(Nest.getParallelIterations(), 32 * 64);
}

TEST_F(MatmulFixture, ParallelizationAloneViaUnitTiles) {
  // The paper: parallelization without tiling = tile sizes of 1.
  OpSchedule Sched;
  Sched.Transforms.push_back(
      Transformation::tiledParallelization({1, 0, 0}));
  LoopNest Nest = materializeLoopNest(M, 0, Sched);
  EXPECT_EQ(Nest.getParallelIterations(), 256);
  EXPECT_EQ(Nest.getTotalFlops(), op().getFlops());
}

TEST_F(MatmulFixture, MaterializeVectorizedMarksInnermost) {
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::interchange({2, 0, 1}));
  Sched.Transforms.push_back(Transformation::vectorization());
  LoopNest Nest = materializeLoopNest(M, 0, Sched);
  const NestBody &Body = Nest.Bodies[0];
  ASSERT_FALSE(Body.Loops.empty());
  EXPECT_TRUE(Body.Loops.back().Vectorized);
  EXPECT_EQ(Body.Loops.back().IterDim, 1u); // d1 innermost
}

TEST_F(MatmulFixture, NonDividingTileRoundsUp) {
  Module M2("nd");
  Builder B2(M2);
  std::string X = B2.declareInput({100, 100});
  std::string Y = B2.declareInput({100, 100});
  B2.matmul(X, Y);
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiling({64, 0, 0}));
  LoopNest Nest = materializeLoopNest(M2, 0, Sched);
  // ceil(100 / 64) = 2 tiles.
  bool Found = false;
  std::vector<ScheduledLoop> All = Nest.OuterBand;
  All.insert(All.end(), Nest.Bodies[0].Loops.begin(),
             Nest.Bodies[0].Loops.end());
  for (const ScheduledLoop &L : All) {
    if (L.IsTileLoop && L.IterDim == 0) {
      EXPECT_EQ(L.TripCount, 2);
      EXPECT_EQ(L.Step, 64);
      Found = true;
    }
  }
  EXPECT_TRUE(Found);
}

TEST_F(MatmulFixture, MaterializeModuleSkipsFusedAway) {
  Module M2("seq");
  Builder B2(M2);
  std::string X = B2.declareInput({32, 32});
  std::string R1 = B2.relu(X);
  B2.relu(R1);
  ModuleSchedule Sched;
  Sched.FusedAway.push_back(0);
  OpSchedule Consumer;
  Consumer.Transforms.push_back(Transformation::tiledFusion({8, 8}));
  Consumer.FusedProducers.push_back(0);
  Sched.OpSchedules[1] = Consumer;
  std::vector<LoopNest> Nests = materializeModule(M2, Sched);
  ASSERT_EQ(Nests.size(), 1u);
  EXPECT_EQ(Nests[0].Bodies.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Adversarial inputs: degenerate shapes and boundary parameters the
// fuzzer generates on purpose. Every case must either apply cleanly and
// survive the post-transform checks, or be rejected with a reason --
// never corrupt the state.
//===----------------------------------------------------------------------===//

#include "transforms/PostTransformChecks.h"

namespace {

/// Materializes and validates, returning the first violation (empty =
/// clean).
std::string checkedMaterialize(const Module &M2, unsigned OpIdx,
                               const OpSchedule &Sched) {
  Expected<LoopNest> Nest = materializeLoopNestChecked(M2, OpIdx, Sched);
  if (!Nest)
    return Nest.getError();
  std::string Err;
  if (!checkLoopNest(M2, OpIdx, Sched, *Nest, Err))
    return Err;
  return "";
}

} // namespace

TEST(AdversarialApply, OneDimensionalOp) {
  Module M2("one_d");
  Builder B2(M2);
  B2.relu(B2.declareInput({193}));

  // Identity interchange is the only permutation; tiling with a
  // non-dividing size; vectorization of the residual point loop.
  OpTransformState S(M2.getOp(0));
  EXPECT_TRUE(S.apply(Transformation::interchange({0})).Applied);
  ASSERT_TRUE(S.apply(Transformation::tiling({10})).Applied);
  EXPECT_EQ(S.getPointTrips(), (std::vector<int64_t>{10}));
  std::string Err;
  EXPECT_TRUE(checkTransformState(S, Err)) << Err;

  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::interchange({0}));
  Sched.Transforms.push_back(Transformation::tiling({10}));
  Sched.Transforms.push_back(Transformation::vectorization());
  EXPECT_EQ(checkedMaterialize(M2, 0, Sched), "");
}

TEST(AdversarialApply, TwoLoopOpEveryLegalSwap) {
  Module M2("two_loop");
  Builder B2(M2);
  B2.relu(B2.declareInput({5, 7}));

  auto Candidates = getEnumeratedInterchangeCandidates(2);
  ASSERT_EQ(Candidates.size(), 1u);
  for (auto [I, J] : Candidates) {
    OpSchedule Sched;
    Sched.Transforms.push_back(
        Transformation::interchange(makeSwapPermutation(2, I, J)));
    EXPECT_EQ(checkedMaterialize(M2, 0, Sched), "");
  }
}

TEST(AdversarialApply, OneTripLoops) {
  // Bounds of 1 everywhere tiling could act: every tile size is >= the
  // trip, so tiling must degrade to a no-op band or a rejection, and
  // the nest must still check out.
  Module M2("one_trip");
  Builder B2(M2);
  std::string X = B2.declareInput({1, 64});
  std::string Y = B2.declareInput({64, 1});
  B2.matmul(X, Y); // bounds (1, 1, 64)

  OpTransformState S(M2.getOp(0));
  auto R = S.apply(Transformation::tiling({1, 1, 0}));
  if (R.Applied) {
    std::string Err;
    EXPECT_TRUE(checkTransformState(S, Err)) << Err;
  }
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiling({0, 0, 8}));
  EXPECT_EQ(checkedMaterialize(M2, 0, Sched), "");
}

TEST_F(MatmulFixture, MaxSizeTiles) {
  // Tile sizes at trip and trip-1: the former is a per-dim no-op, the
  // latter produces a 2-trip tile loop with a fat residue; both must
  // materialize to a checkable nest. Bounds are (256, 512, 1024).
  {
    OpSchedule Sched;
    Sched.Transforms.push_back(Transformation::tiling({256, 512, 1024}));
    Expected<OpTransformState> S = replayOpSchedule(op(), Sched);
    if (S) {
      std::string Err;
      EXPECT_TRUE(checkTransformState(*S, Err)) << Err;
    }
  }
  {
    OpSchedule Sched;
    Sched.Transforms.push_back(Transformation::tiling({255, 511, 1023}));
    LoopNest Nest = materializeLoopNest(M, 0, Sched);
    std::string Err;
    EXPECT_TRUE(checkLoopNest(M, 0, Sched, Nest, Err)) << Err;
    for (const ScheduledLoop &L : Nest.OuterBand)
      EXPECT_EQ(L.TripCount, 2);
  }
}

TEST(AdversarialApply, RepeatedInterchangeAtEveryLegalDistance) {
  // A 4-loop op: apply each enumerated swap twice (self-inverse, must
  // land back on identity) and chain all of them; the state must remain
  // a valid permutation and the nest must materialize after each step.
  Module M2("four_loop");
  Builder B2(M2);
  B2.poolingMax(B2.declareInput({1, 8, 16, 16}), 2, 2, 2);
  const LinalgOp &Op = M2.getOp(0);
  unsigned N = Op.getNumLoops();
  ASSERT_GE(N, 4u);

  for (auto [I, J] : getEnumeratedInterchangeCandidates(N)) {
    OpTransformState S(Op);
    std::vector<unsigned> Perm = makeSwapPermutation(N, I, J);
    ASSERT_TRUE(S.apply(Transformation::interchange(Perm)).Applied);
    ASSERT_TRUE(S.apply(Transformation::interchange(Perm)).Applied);
    std::vector<unsigned> Identity(N);
    for (unsigned L = 0; L < N; ++L)
      Identity[L] = L;
    EXPECT_EQ(S.getOrder(), Identity);
  }

  OpSchedule Chained;
  for (auto [I, J] : getEnumeratedInterchangeCandidates(N)) {
    Chained.Transforms.push_back(
        Transformation::interchange(makeSwapPermutation(N, I, J)));
    EXPECT_EQ(checkedMaterialize(M2, 0, Chained), "");
  }
}
