# Empty dependencies file for test_nn_DistributionsTest.
# This may be replaced when dependencies are built.
