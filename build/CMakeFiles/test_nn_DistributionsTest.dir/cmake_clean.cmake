file(REMOVE_RECURSE
  "CMakeFiles/test_nn_DistributionsTest.dir/tests/nn/DistributionsTest.cpp.o"
  "CMakeFiles/test_nn_DistributionsTest.dir/tests/nn/DistributionsTest.cpp.o.d"
  "test_nn_DistributionsTest"
  "test_nn_DistributionsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_DistributionsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
