# Empty dependencies file for test_nn_OptimizerTest.
# This may be replaced when dependencies are built.
