file(REMOVE_RECURSE
  "CMakeFiles/test_nn_OptimizerTest.dir/tests/nn/OptimizerTest.cpp.o"
  "CMakeFiles/test_nn_OptimizerTest.dir/tests/nn/OptimizerTest.cpp.o.d"
  "test_nn_OptimizerTest"
  "test_nn_OptimizerTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_OptimizerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
