file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_actionspace.dir/bench/bench_fig6_actionspace.cpp.o"
  "CMakeFiles/bench_fig6_actionspace.dir/bench/bench_fig6_actionspace.cpp.o.d"
  "bench_fig6_actionspace"
  "bench_fig6_actionspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_actionspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
