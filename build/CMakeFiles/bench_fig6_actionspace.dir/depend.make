# Empty dependencies file for bench_fig6_actionspace.
# This may be replaced when dependencies are built.
