# Empty dependencies file for test_ir_PropertyTest.
# This may be replaced when dependencies are built.
