file(REMOVE_RECURSE
  "CMakeFiles/test_ir_PropertyTest.dir/tests/ir/PropertyTest.cpp.o"
  "CMakeFiles/test_ir_PropertyTest.dir/tests/ir/PropertyTest.cpp.o.d"
  "test_ir_PropertyTest"
  "test_ir_PropertyTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_PropertyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
