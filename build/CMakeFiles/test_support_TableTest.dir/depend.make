# Empty dependencies file for test_support_TableTest.
# This may be replaced when dependencies are built.
