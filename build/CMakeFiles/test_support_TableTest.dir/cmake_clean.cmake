file(REMOVE_RECURSE
  "CMakeFiles/test_support_TableTest.dir/tests/support/TableTest.cpp.o"
  "CMakeFiles/test_support_TableTest.dir/tests/support/TableTest.cpp.o.d"
  "test_support_TableTest"
  "test_support_TableTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_TableTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
