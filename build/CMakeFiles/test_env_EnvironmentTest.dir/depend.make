# Empty dependencies file for test_env_EnvironmentTest.
# This may be replaced when dependencies are built.
