file(REMOVE_RECURSE
  "CMakeFiles/test_env_EnvironmentTest.dir/tests/env/EnvironmentTest.cpp.o"
  "CMakeFiles/test_env_EnvironmentTest.dir/tests/env/EnvironmentTest.cpp.o.d"
  "test_env_EnvironmentTest"
  "test_env_EnvironmentTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env_EnvironmentTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
