file(REMOVE_RECURSE
  "CMakeFiles/test_transforms_FusionTest.dir/tests/transforms/FusionTest.cpp.o"
  "CMakeFiles/test_transforms_FusionTest.dir/tests/transforms/FusionTest.cpp.o.d"
  "test_transforms_FusionTest"
  "test_transforms_FusionTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transforms_FusionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
