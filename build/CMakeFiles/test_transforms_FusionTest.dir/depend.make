# Empty dependencies file for test_transforms_FusionTest.
# This may be replaced when dependencies are built.
