# Empty dependencies file for test_ir_ParserTest.
# This may be replaced when dependencies are built.
