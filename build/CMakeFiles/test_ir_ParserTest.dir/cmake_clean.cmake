file(REMOVE_RECURSE
  "CMakeFiles/test_ir_ParserTest.dir/tests/ir/ParserTest.cpp.o"
  "CMakeFiles/test_ir_ParserTest.dir/tests/ir/ParserTest.cpp.o.d"
  "test_ir_ParserTest"
  "test_ir_ParserTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_ParserTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
