file(REMOVE_RECURSE
  "CMakeFiles/test_rl_AgentTest.dir/tests/rl/AgentTest.cpp.o"
  "CMakeFiles/test_rl_AgentTest.dir/tests/rl/AgentTest.cpp.o.d"
  "test_rl_AgentTest"
  "test_rl_AgentTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_AgentTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
