# Empty dependencies file for test_rl_AgentTest.
# This may be replaced when dependencies are built.
