file(REMOVE_RECURSE
  "CMakeFiles/test_support_StatsTest.dir/tests/support/StatsTest.cpp.o"
  "CMakeFiles/test_support_StatsTest.dir/tests/support/StatsTest.cpp.o.d"
  "test_support_StatsTest"
  "test_support_StatsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_StatsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
