# Empty dependencies file for test_support_StatsTest.
# This may be replaced when dependencies are built.
