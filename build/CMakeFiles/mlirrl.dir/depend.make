# Empty dependencies file for mlirrl.
# This may be replaced when dependencies are built.
