file(REMOVE_RECURSE
  "libmlirrl.a"
)
