
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/HalideRl.cpp" "CMakeFiles/mlirrl.dir/src/baselines/HalideRl.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/baselines/HalideRl.cpp.o.d"
  "/root/repo/src/baselines/LibraryOracle.cpp" "CMakeFiles/mlirrl.dir/src/baselines/LibraryOracle.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/baselines/LibraryOracle.cpp.o.d"
  "/root/repo/src/baselines/Mullapudi.cpp" "CMakeFiles/mlirrl.dir/src/baselines/Mullapudi.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/baselines/Mullapudi.cpp.o.d"
  "/root/repo/src/baselines/RandomSearch.cpp" "CMakeFiles/mlirrl.dir/src/baselines/RandomSearch.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/baselines/RandomSearch.cpp.o.d"
  "/root/repo/src/baselines/ScheduleUtil.cpp" "CMakeFiles/mlirrl.dir/src/baselines/ScheduleUtil.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/baselines/ScheduleUtil.cpp.o.d"
  "/root/repo/src/datasets/Dataset.cpp" "CMakeFiles/mlirrl.dir/src/datasets/Dataset.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/datasets/Dataset.cpp.o.d"
  "/root/repo/src/datasets/DnnOps.cpp" "CMakeFiles/mlirrl.dir/src/datasets/DnnOps.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/datasets/DnnOps.cpp.o.d"
  "/root/repo/src/datasets/Lqcd.cpp" "CMakeFiles/mlirrl.dir/src/datasets/Lqcd.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/datasets/Lqcd.cpp.o.d"
  "/root/repo/src/datasets/Models.cpp" "CMakeFiles/mlirrl.dir/src/datasets/Models.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/datasets/Models.cpp.o.d"
  "/root/repo/src/datasets/Sequences.cpp" "CMakeFiles/mlirrl.dir/src/datasets/Sequences.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/datasets/Sequences.cpp.o.d"
  "/root/repo/src/env/ActionSpace.cpp" "CMakeFiles/mlirrl.dir/src/env/ActionSpace.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/env/ActionSpace.cpp.o.d"
  "/root/repo/src/env/Environment.cpp" "CMakeFiles/mlirrl.dir/src/env/Environment.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/env/Environment.cpp.o.d"
  "/root/repo/src/env/Featurizer.cpp" "CMakeFiles/mlirrl.dir/src/env/Featurizer.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/env/Featurizer.cpp.o.d"
  "/root/repo/src/ir/AffineExpr.cpp" "CMakeFiles/mlirrl.dir/src/ir/AffineExpr.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/ir/AffineExpr.cpp.o.d"
  "/root/repo/src/ir/AffineMap.cpp" "CMakeFiles/mlirrl.dir/src/ir/AffineMap.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/ir/AffineMap.cpp.o.d"
  "/root/repo/src/ir/Builder.cpp" "CMakeFiles/mlirrl.dir/src/ir/Builder.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/ir/Builder.cpp.o.d"
  "/root/repo/src/ir/Lexer.cpp" "CMakeFiles/mlirrl.dir/src/ir/Lexer.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/ir/Lexer.cpp.o.d"
  "/root/repo/src/ir/LinalgOp.cpp" "CMakeFiles/mlirrl.dir/src/ir/LinalgOp.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/ir/LinalgOp.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "CMakeFiles/mlirrl.dir/src/ir/Module.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/ir/Module.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "CMakeFiles/mlirrl.dir/src/ir/Parser.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/ir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "CMakeFiles/mlirrl.dir/src/ir/Printer.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Types.cpp" "CMakeFiles/mlirrl.dir/src/ir/Types.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/ir/Types.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "CMakeFiles/mlirrl.dir/src/ir/Verifier.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/ir/Verifier.cpp.o.d"
  "/root/repo/src/nn/Distributions.cpp" "CMakeFiles/mlirrl.dir/src/nn/Distributions.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/nn/Distributions.cpp.o.d"
  "/root/repo/src/nn/Gemm.cpp" "CMakeFiles/mlirrl.dir/src/nn/Gemm.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/nn/Gemm.cpp.o.d"
  "/root/repo/src/nn/Layers.cpp" "CMakeFiles/mlirrl.dir/src/nn/Layers.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/nn/Layers.cpp.o.d"
  "/root/repo/src/nn/Lstm.cpp" "CMakeFiles/mlirrl.dir/src/nn/Lstm.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/nn/Lstm.cpp.o.d"
  "/root/repo/src/nn/Ops.cpp" "CMakeFiles/mlirrl.dir/src/nn/Ops.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/nn/Ops.cpp.o.d"
  "/root/repo/src/nn/Optimizer.cpp" "CMakeFiles/mlirrl.dir/src/nn/Optimizer.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/nn/Optimizer.cpp.o.d"
  "/root/repo/src/nn/Serialization.cpp" "CMakeFiles/mlirrl.dir/src/nn/Serialization.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/nn/Serialization.cpp.o.d"
  "/root/repo/src/nn/Tensor.cpp" "CMakeFiles/mlirrl.dir/src/nn/Tensor.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/nn/Tensor.cpp.o.d"
  "/root/repo/src/perf/CacheSim.cpp" "CMakeFiles/mlirrl.dir/src/perf/CacheSim.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/perf/CacheSim.cpp.o.d"
  "/root/repo/src/perf/CostModel.cpp" "CMakeFiles/mlirrl.dir/src/perf/CostModel.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/perf/CostModel.cpp.o.d"
  "/root/repo/src/perf/MachineModel.cpp" "CMakeFiles/mlirrl.dir/src/perf/MachineModel.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/perf/MachineModel.cpp.o.d"
  "/root/repo/src/perf/Runner.cpp" "CMakeFiles/mlirrl.dir/src/perf/Runner.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/perf/Runner.cpp.o.d"
  "/root/repo/src/perf/WorkingSet.cpp" "CMakeFiles/mlirrl.dir/src/perf/WorkingSet.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/perf/WorkingSet.cpp.o.d"
  "/root/repo/src/rl/Agent.cpp" "CMakeFiles/mlirrl.dir/src/rl/Agent.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/rl/Agent.cpp.o.d"
  "/root/repo/src/rl/MlirRl.cpp" "CMakeFiles/mlirrl.dir/src/rl/MlirRl.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/rl/MlirRl.cpp.o.d"
  "/root/repo/src/rl/PolicyNet.cpp" "CMakeFiles/mlirrl.dir/src/rl/PolicyNet.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/rl/PolicyNet.cpp.o.d"
  "/root/repo/src/rl/Ppo.cpp" "CMakeFiles/mlirrl.dir/src/rl/Ppo.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/rl/Ppo.cpp.o.d"
  "/root/repo/src/rl/RolloutBuffer.cpp" "CMakeFiles/mlirrl.dir/src/rl/RolloutBuffer.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/rl/RolloutBuffer.cpp.o.d"
  "/root/repo/src/support/Error.cpp" "CMakeFiles/mlirrl.dir/src/support/Error.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/support/Error.cpp.o.d"
  "/root/repo/src/support/Format.cpp" "CMakeFiles/mlirrl.dir/src/support/Format.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/support/Format.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "CMakeFiles/mlirrl.dir/src/support/Rng.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/support/Rng.cpp.o.d"
  "/root/repo/src/support/Stats.cpp" "CMakeFiles/mlirrl.dir/src/support/Stats.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/support/Stats.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "CMakeFiles/mlirrl.dir/src/support/Table.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/support/Table.cpp.o.d"
  "/root/repo/src/support/ThreadPool.cpp" "CMakeFiles/mlirrl.dir/src/support/ThreadPool.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/support/ThreadPool.cpp.o.d"
  "/root/repo/src/transforms/Apply.cpp" "CMakeFiles/mlirrl.dir/src/transforms/Apply.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/transforms/Apply.cpp.o.d"
  "/root/repo/src/transforms/Legality.cpp" "CMakeFiles/mlirrl.dir/src/transforms/Legality.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/transforms/Legality.cpp.o.d"
  "/root/repo/src/transforms/LoopNest.cpp" "CMakeFiles/mlirrl.dir/src/transforms/LoopNest.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/transforms/LoopNest.cpp.o.d"
  "/root/repo/src/transforms/Schedule.cpp" "CMakeFiles/mlirrl.dir/src/transforms/Schedule.cpp.o" "gcc" "CMakeFiles/mlirrl.dir/src/transforms/Schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
