# Empty dependencies file for test_ir_ModuleTest.
# This may be replaced when dependencies are built.
