file(REMOVE_RECURSE
  "CMakeFiles/test_ir_ModuleTest.dir/tests/ir/ModuleTest.cpp.o"
  "CMakeFiles/test_ir_ModuleTest.dir/tests/ir/ModuleTest.cpp.o.d"
  "test_ir_ModuleTest"
  "test_ir_ModuleTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_ModuleTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
