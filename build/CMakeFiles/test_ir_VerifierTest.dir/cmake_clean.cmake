file(REMOVE_RECURSE
  "CMakeFiles/test_ir_VerifierTest.dir/tests/ir/VerifierTest.cpp.o"
  "CMakeFiles/test_ir_VerifierTest.dir/tests/ir/VerifierTest.cpp.o.d"
  "test_ir_VerifierTest"
  "test_ir_VerifierTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_VerifierTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
