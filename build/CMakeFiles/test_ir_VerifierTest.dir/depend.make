# Empty dependencies file for test_ir_VerifierTest.
# This may be replaced when dependencies are built.
