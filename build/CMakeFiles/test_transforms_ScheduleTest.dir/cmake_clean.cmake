file(REMOVE_RECURSE
  "CMakeFiles/test_transforms_ScheduleTest.dir/tests/transforms/ScheduleTest.cpp.o"
  "CMakeFiles/test_transforms_ScheduleTest.dir/tests/transforms/ScheduleTest.cpp.o.d"
  "test_transforms_ScheduleTest"
  "test_transforms_ScheduleTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transforms_ScheduleTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
