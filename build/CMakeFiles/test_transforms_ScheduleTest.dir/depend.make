# Empty dependencies file for test_transforms_ScheduleTest.
# This may be replaced when dependencies are built.
