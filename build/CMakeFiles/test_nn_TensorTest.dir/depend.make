# Empty dependencies file for test_nn_TensorTest.
# This may be replaced when dependencies are built.
