file(REMOVE_RECURSE
  "CMakeFiles/test_nn_TensorTest.dir/tests/nn/TensorTest.cpp.o"
  "CMakeFiles/test_nn_TensorTest.dir/tests/nn/TensorTest.cpp.o.d"
  "test_nn_TensorTest"
  "test_nn_TensorTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_TensorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
