file(REMOVE_RECURSE
  "CMakeFiles/test_perf_CostModelTest.dir/tests/perf/CostModelTest.cpp.o"
  "CMakeFiles/test_perf_CostModelTest.dir/tests/perf/CostModelTest.cpp.o.d"
  "test_perf_CostModelTest"
  "test_perf_CostModelTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_CostModelTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
