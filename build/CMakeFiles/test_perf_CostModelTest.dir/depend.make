# Empty dependencies file for test_perf_CostModelTest.
# This may be replaced when dependencies are built.
