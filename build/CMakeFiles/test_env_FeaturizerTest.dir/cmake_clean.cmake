file(REMOVE_RECURSE
  "CMakeFiles/test_env_FeaturizerTest.dir/tests/env/FeaturizerTest.cpp.o"
  "CMakeFiles/test_env_FeaturizerTest.dir/tests/env/FeaturizerTest.cpp.o.d"
  "test_env_FeaturizerTest"
  "test_env_FeaturizerTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env_FeaturizerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
