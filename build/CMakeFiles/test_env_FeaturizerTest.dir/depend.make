# Empty dependencies file for test_env_FeaturizerTest.
# This may be replaced when dependencies are built.
