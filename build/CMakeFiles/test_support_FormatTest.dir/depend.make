# Empty dependencies file for test_support_FormatTest.
# This may be replaced when dependencies are built.
