file(REMOVE_RECURSE
  "CMakeFiles/test_support_FormatTest.dir/tests/support/FormatTest.cpp.o"
  "CMakeFiles/test_support_FormatTest.dir/tests/support/FormatTest.cpp.o.d"
  "test_support_FormatTest"
  "test_support_FormatTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_FormatTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
