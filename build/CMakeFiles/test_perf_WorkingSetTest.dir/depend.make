# Empty dependencies file for test_perf_WorkingSetTest.
# This may be replaced when dependencies are built.
