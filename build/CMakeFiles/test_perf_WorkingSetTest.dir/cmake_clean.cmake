file(REMOVE_RECURSE
  "CMakeFiles/test_perf_WorkingSetTest.dir/tests/perf/WorkingSetTest.cpp.o"
  "CMakeFiles/test_perf_WorkingSetTest.dir/tests/perf/WorkingSetTest.cpp.o.d"
  "test_perf_WorkingSetTest"
  "test_perf_WorkingSetTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_WorkingSetTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
