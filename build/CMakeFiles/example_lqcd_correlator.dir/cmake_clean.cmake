file(REMOVE_RECURSE
  "CMakeFiles/example_lqcd_correlator.dir/examples/lqcd_correlator.cpp.o"
  "CMakeFiles/example_lqcd_correlator.dir/examples/lqcd_correlator.cpp.o.d"
  "example_lqcd_correlator"
  "example_lqcd_correlator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lqcd_correlator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
