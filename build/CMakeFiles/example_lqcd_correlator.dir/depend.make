# Empty dependencies file for example_lqcd_correlator.
# This may be replaced when dependencies are built.
