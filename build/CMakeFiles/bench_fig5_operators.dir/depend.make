# Empty dependencies file for bench_fig5_operators.
# This may be replaced when dependencies are built.
