file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_operators.dir/bench/bench_fig5_operators.cpp.o"
  "CMakeFiles/bench_fig5_operators.dir/bench/bench_fig5_operators.cpp.o.d"
  "bench_fig5_operators"
  "bench_fig5_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
