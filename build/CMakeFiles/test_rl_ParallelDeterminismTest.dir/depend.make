# Empty dependencies file for test_rl_ParallelDeterminismTest.
# This may be replaced when dependencies are built.
