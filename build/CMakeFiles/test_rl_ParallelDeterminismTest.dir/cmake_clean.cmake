file(REMOVE_RECURSE
  "CMakeFiles/test_rl_ParallelDeterminismTest.dir/tests/rl/ParallelDeterminismTest.cpp.o"
  "CMakeFiles/test_rl_ParallelDeterminismTest.dir/tests/rl/ParallelDeterminismTest.cpp.o.d"
  "test_rl_ParallelDeterminismTest"
  "test_rl_ParallelDeterminismTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_ParallelDeterminismTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
