file(REMOVE_RECURSE
  "CMakeFiles/test_perf_RunnerTest.dir/tests/perf/RunnerTest.cpp.o"
  "CMakeFiles/test_perf_RunnerTest.dir/tests/perf/RunnerTest.cpp.o.d"
  "test_perf_RunnerTest"
  "test_perf_RunnerTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_RunnerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
