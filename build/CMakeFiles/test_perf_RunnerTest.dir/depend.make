# Empty dependencies file for test_perf_RunnerTest.
# This may be replaced when dependencies are built.
