# Empty dependencies file for test_transforms_ApplyTest.
# This may be replaced when dependencies are built.
