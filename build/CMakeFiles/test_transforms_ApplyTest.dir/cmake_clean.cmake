file(REMOVE_RECURSE
  "CMakeFiles/test_transforms_ApplyTest.dir/tests/transforms/ApplyTest.cpp.o"
  "CMakeFiles/test_transforms_ApplyTest.dir/tests/transforms/ApplyTest.cpp.o.d"
  "test_transforms_ApplyTest"
  "test_transforms_ApplyTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transforms_ApplyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
