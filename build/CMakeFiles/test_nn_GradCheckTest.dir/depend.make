# Empty dependencies file for test_nn_GradCheckTest.
# This may be replaced when dependencies are built.
