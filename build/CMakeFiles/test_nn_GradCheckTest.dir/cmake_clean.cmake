file(REMOVE_RECURSE
  "CMakeFiles/test_nn_GradCheckTest.dir/tests/nn/GradCheckTest.cpp.o"
  "CMakeFiles/test_nn_GradCheckTest.dir/tests/nn/GradCheckTest.cpp.o.d"
  "test_nn_GradCheckTest"
  "test_nn_GradCheckTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_GradCheckTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
