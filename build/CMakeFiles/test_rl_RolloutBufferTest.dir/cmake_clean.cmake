file(REMOVE_RECURSE
  "CMakeFiles/test_rl_RolloutBufferTest.dir/tests/rl/RolloutBufferTest.cpp.o"
  "CMakeFiles/test_rl_RolloutBufferTest.dir/tests/rl/RolloutBufferTest.cpp.o.d"
  "test_rl_RolloutBufferTest"
  "test_rl_RolloutBufferTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_RolloutBufferTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
