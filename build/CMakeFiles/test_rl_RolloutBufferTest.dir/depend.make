# Empty dependencies file for test_rl_RolloutBufferTest.
# This may be replaced when dependencies are built.
