# Empty dependencies file for test_env_EpisodeSweepTest.
# This may be replaced when dependencies are built.
