file(REMOVE_RECURSE
  "CMakeFiles/test_env_EpisodeSweepTest.dir/tests/env/EpisodeSweepTest.cpp.o"
  "CMakeFiles/test_env_EpisodeSweepTest.dir/tests/env/EpisodeSweepTest.cpp.o.d"
  "test_env_EpisodeSweepTest"
  "test_env_EpisodeSweepTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env_EpisodeSweepTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
