# Empty dependencies file for test_perf_MachineSweepTest.
# This may be replaced when dependencies are built.
