file(REMOVE_RECURSE
  "CMakeFiles/test_perf_MachineSweepTest.dir/tests/perf/MachineSweepTest.cpp.o"
  "CMakeFiles/test_perf_MachineSweepTest.dir/tests/perf/MachineSweepTest.cpp.o.d"
  "test_perf_MachineSweepTest"
  "test_perf_MachineSweepTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_MachineSweepTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
