# Empty dependencies file for test_perf_CacheSimTest.
# This may be replaced when dependencies are built.
