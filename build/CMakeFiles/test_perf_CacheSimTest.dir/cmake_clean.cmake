file(REMOVE_RECURSE
  "CMakeFiles/test_perf_CacheSimTest.dir/tests/perf/CacheSimTest.cpp.o"
  "CMakeFiles/test_perf_CacheSimTest.dir/tests/perf/CacheSimTest.cpp.o.d"
  "test_perf_CacheSimTest"
  "test_perf_CacheSimTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_CacheSimTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
