# Empty dependencies file for example_dnn_pipeline.
# This may be replaced when dependencies are built.
