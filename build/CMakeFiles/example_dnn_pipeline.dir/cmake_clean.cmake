file(REMOVE_RECURSE
  "CMakeFiles/example_dnn_pipeline.dir/examples/dnn_pipeline.cpp.o"
  "CMakeFiles/example_dnn_pipeline.dir/examples/dnn_pipeline.cpp.o.d"
  "example_dnn_pipeline"
  "example_dnn_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dnn_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
