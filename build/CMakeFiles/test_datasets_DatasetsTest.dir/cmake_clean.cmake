file(REMOVE_RECURSE
  "CMakeFiles/test_datasets_DatasetsTest.dir/tests/datasets/DatasetsTest.cpp.o"
  "CMakeFiles/test_datasets_DatasetsTest.dir/tests/datasets/DatasetsTest.cpp.o.d"
  "test_datasets_DatasetsTest"
  "test_datasets_DatasetsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datasets_DatasetsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
