# Empty dependencies file for test_datasets_DatasetsTest.
# This may be replaced when dependencies are built.
