# Empty dependencies file for test_rl_PpoTest.
# This may be replaced when dependencies are built.
