file(REMOVE_RECURSE
  "CMakeFiles/test_rl_PpoTest.dir/tests/rl/PpoTest.cpp.o"
  "CMakeFiles/test_rl_PpoTest.dir/tests/rl/PpoTest.cpp.o.d"
  "test_rl_PpoTest"
  "test_rl_PpoTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_PpoTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
