file(REMOVE_RECURSE
  "CMakeFiles/test_nn_GemmTest.dir/tests/nn/GemmTest.cpp.o"
  "CMakeFiles/test_nn_GemmTest.dir/tests/nn/GemmTest.cpp.o.d"
  "test_nn_GemmTest"
  "test_nn_GemmTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_GemmTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
