# Empty dependencies file for test_nn_GemmTest.
# This may be replaced when dependencies are built.
