file(REMOVE_RECURSE
  "CMakeFiles/test_transforms_LegalityTest.dir/tests/transforms/LegalityTest.cpp.o"
  "CMakeFiles/test_transforms_LegalityTest.dir/tests/transforms/LegalityTest.cpp.o.d"
  "test_transforms_LegalityTest"
  "test_transforms_LegalityTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transforms_LegalityTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
