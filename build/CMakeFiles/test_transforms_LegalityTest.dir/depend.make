# Empty dependencies file for test_transforms_LegalityTest.
# This may be replaced when dependencies are built.
