file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_lqcd.dir/bench/bench_table4_lqcd.cpp.o"
  "CMakeFiles/bench_table4_lqcd.dir/bench/bench_table4_lqcd.cpp.o.d"
  "bench_table4_lqcd"
  "bench_table4_lqcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_lqcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
