# Empty dependencies file for bench_table4_lqcd.
# This may be replaced when dependencies are built.
