# Empty dependencies file for test_support_RngTest.
# This may be replaced when dependencies are built.
