file(REMOVE_RECURSE
  "CMakeFiles/test_support_RngTest.dir/tests/support/RngTest.cpp.o"
  "CMakeFiles/test_support_RngTest.dir/tests/support/RngTest.cpp.o.d"
  "test_support_RngTest"
  "test_support_RngTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_RngTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
