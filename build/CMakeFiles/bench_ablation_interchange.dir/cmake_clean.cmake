file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interchange.dir/bench/bench_ablation_interchange.cpp.o"
  "CMakeFiles/bench_ablation_interchange.dir/bench/bench_ablation_interchange.cpp.o.d"
  "bench_ablation_interchange"
  "bench_ablation_interchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
