# Empty dependencies file for bench_ablation_interchange.
# This may be replaced when dependencies are built.
