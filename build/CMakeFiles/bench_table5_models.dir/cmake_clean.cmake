file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_models.dir/bench/bench_table5_models.cpp.o"
  "CMakeFiles/bench_table5_models.dir/bench/bench_table5_models.cpp.o.d"
  "bench_table5_models"
  "bench_table5_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
