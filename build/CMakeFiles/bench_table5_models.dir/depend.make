# Empty dependencies file for bench_table5_models.
# This may be replaced when dependencies are built.
