# Empty dependencies file for test_baselines_BaselinesTest.
# This may be replaced when dependencies are built.
