file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_BaselinesTest.dir/tests/baselines/BaselinesTest.cpp.o"
  "CMakeFiles/test_baselines_BaselinesTest.dir/tests/baselines/BaselinesTest.cpp.o.d"
  "test_baselines_BaselinesTest"
  "test_baselines_BaselinesTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_BaselinesTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
