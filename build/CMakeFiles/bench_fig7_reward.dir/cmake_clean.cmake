file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_reward.dir/bench/bench_fig7_reward.cpp.o"
  "CMakeFiles/bench_fig7_reward.dir/bench/bench_fig7_reward.cpp.o.d"
  "bench_fig7_reward"
  "bench_fig7_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
