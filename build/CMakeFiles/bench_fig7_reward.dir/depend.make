# Empty dependencies file for bench_fig7_reward.
# This may be replaced when dependencies are built.
