# Empty dependencies file for bench_trainstep.
# This may be replaced when dependencies are built.
