file(REMOVE_RECURSE
  "CMakeFiles/bench_trainstep.dir/bench/bench_trainstep.cpp.o"
  "CMakeFiles/bench_trainstep.dir/bench/bench_trainstep.cpp.o.d"
  "bench_trainstep"
  "bench_trainstep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trainstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
