# Empty dependencies file for test_perf_CostCacheTest.
# This may be replaced when dependencies are built.
