file(REMOVE_RECURSE
  "CMakeFiles/test_perf_CostCacheTest.dir/tests/perf/CostCacheTest.cpp.o"
  "CMakeFiles/test_perf_CostCacheTest.dir/tests/perf/CostCacheTest.cpp.o.d"
  "test_perf_CostCacheTest"
  "test_perf_CostCacheTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_CostCacheTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
