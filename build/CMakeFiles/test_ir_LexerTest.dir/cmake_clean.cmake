file(REMOVE_RECURSE
  "CMakeFiles/test_ir_LexerTest.dir/tests/ir/LexerTest.cpp.o"
  "CMakeFiles/test_ir_LexerTest.dir/tests/ir/LexerTest.cpp.o.d"
  "test_ir_LexerTest"
  "test_ir_LexerTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_LexerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
