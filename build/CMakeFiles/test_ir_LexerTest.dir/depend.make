# Empty dependencies file for test_ir_LexerTest.
# This may be replaced when dependencies are built.
