# Empty dependencies file for test_ir_AffineTest.
# This may be replaced when dependencies are built.
