file(REMOVE_RECURSE
  "CMakeFiles/test_ir_AffineTest.dir/tests/ir/AffineTest.cpp.o"
  "CMakeFiles/test_ir_AffineTest.dir/tests/ir/AffineTest.cpp.o.d"
  "test_ir_AffineTest"
  "test_ir_AffineTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_AffineTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
