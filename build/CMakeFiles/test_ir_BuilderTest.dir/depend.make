# Empty dependencies file for test_ir_BuilderTest.
# This may be replaced when dependencies are built.
