file(REMOVE_RECURSE
  "CMakeFiles/test_ir_BuilderTest.dir/tests/ir/BuilderTest.cpp.o"
  "CMakeFiles/test_ir_BuilderTest.dir/tests/ir/BuilderTest.cpp.o.d"
  "test_ir_BuilderTest"
  "test_ir_BuilderTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_BuilderTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
