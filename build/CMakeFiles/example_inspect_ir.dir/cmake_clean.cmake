file(REMOVE_RECURSE
  "CMakeFiles/example_inspect_ir.dir/examples/inspect_ir.cpp.o"
  "CMakeFiles/example_inspect_ir.dir/examples/inspect_ir.cpp.o.d"
  "example_inspect_ir"
  "example_inspect_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_inspect_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
