# Empty dependencies file for example_inspect_ir.
# This may be replaced when dependencies are built.
