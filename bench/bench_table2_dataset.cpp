//===- bench_table2_dataset.cpp - Table II / dataset reproduction -----------===//
//
// Table II: the composition of the single-operator training set
// (187 matmul / 278 conv2d / 250 maxpool / 271 add / 149 relu = 1135)
// and the full 3959-sample dataset of Sec. VI (1135 DNN operators +
// 2133 operator sequences + 691 LQCD kernels). Generates the full
// dataset and reports the counts plus generation throughput.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "ir/Verifier.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;

namespace {

void runTable2() {
  Rng R(2024);
  DnnDatasetCounts Counts; // paper defaults
  std::vector<Module> Dnn = generateDnnOperatorDataset(R, Counts);

  std::map<std::string, unsigned> PerKind;
  for (const Module &M : Dnn) {
    OpKind K = M.getOp(0).getKind();
    ++PerKind[getOpKindName(K)];
  }
  TextTable Table({"operation", "generated", "paper (Table II)"});
  Table.addRow({"Matrix multiplication",
                TextTable::num(PerKind["linalg.matmul"], 0), "187"});
  Table.addRow({"2d convolution",
                TextTable::num(PerKind["linalg.conv_2d"], 0), "278"});
  Table.addRow({"Maxpooling",
                TextTable::num(PerKind["linalg.pooling_max"], 0), "250"});
  Table.addRow({"Matrix addition", TextTable::num(PerKind["linalg.add"], 0),
                "271"});
  Table.addRow({"ReLU", TextTable::num(PerKind["linalg.relu"], 0), "149"});
  Table.addRow({"Total", TextTable::num(Dnn.size(), 0), "1135"});
  printTable("Table II: single-operator training set", Table);

  // Full dataset (Sec. VI): all three sources.
  DatasetConfig Config;
  std::vector<Module> Full = buildTrainingDataset(Config);
  unsigned Verified = 0;
  std::string Error;
  for (const Module &M : Full)
    Verified += verifyModule(M, Error);
  TextTable FullTable({"component", "samples", "paper"});
  FullTable.addRow({"DNN single operators",
                    TextTable::num(Config.Dnn.total(), 0), "1135"});
  FullTable.addRow({"Operator sequences (L=5)",
                    TextTable::num(Config.Sequences, 0), "2133"});
  FullTable.addRow({"LQCD kernels", TextTable::num(Config.Lqcd, 0), "691"});
  FullTable.addRow({"Total", TextTable::num(Full.size(), 0), "3959"});
  FullTable.addRow({"Verifier-clean", TextTable::num(Verified, 0), "all"});
  printTable("Sec. VI: full training dataset", FullTable);
}

void BM_Table2(benchmark::State &State) {
  for (auto _ : State)
    runTable2();
}

/// Generation throughput of the full 3959-sample dataset.
void BM_DatasetGeneration(benchmark::State &State) {
  for (auto _ : State) {
    std::vector<Module> Full = buildTrainingDataset(DatasetConfig());
    benchmark::DoNotOptimize(Full.data());
  }
}

} // namespace

BENCHMARK(BM_Table2)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(BM_DatasetGeneration)->Unit(benchmark::kMillisecond);
BENCHMARK_MAIN();
