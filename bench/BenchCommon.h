//===- BenchCommon.h - Shared benchmark-harness helpers ----------*- C++-*-===//
///
/// \file
/// Shared setup for the experiment harness: laptop-scale training of the
/// MLIR RL agent (same architecture as the paper, narrower nets and fewer
/// iterations — see DESIGN.md) and table printing. Every bench binary
/// regenerates one table or figure of the paper and prints the paper's
/// numbers next to ours.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_BENCH_BENCHCOMMON_H
#define MLIRRL_BENCH_BENCHCOMMON_H

#include "baselines/HalideRl.h"
#include "baselines/LibraryOracle.h"
#include "baselines/Mullapudi.h"
#include "datasets/Dataset.h"
#include "datasets/Models.h"
#include "rl/MlirRl.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <cstdio>
#include <memory>

namespace mlirrl {
namespace bench {

/// The standard laptop-scale agent configuration used across benches.
inline MlirRlOptions standardOptions(unsigned Iterations = 120,
                                     uint64_t Seed = 1234) {
  MlirRlOptions O = MlirRlOptions::laptop();
  O.Iterations = Iterations;
  O.Ppo.SamplesPerIteration = 16;
  O.Seed = Seed;
  return O;
}

/// The DNN-operator training set used by Fig. 5 / Table III benches.
inline std::vector<Module> operatorTrainingSet(uint64_t Seed = 11) {
  Rng R(Seed);
  return generateDnnOperatorDataset(R, DnnDatasetCounts::scaled(0.08));
}

/// Clears every cache hit/miss counter in the process (cost-model
/// schedule memo, evaluator program/op memos, incremental repricer) so
/// a bench's reported hit rates cover exactly the iterations it times,
/// instead of accumulating across warmup and earlier repetitions (which
/// overstated rates: every rep after the first started with a warm
/// cache *and* the previous reps' counts). One entry point for all of
/// them: the support/Stats.h registry.
inline void resetCacheStats() { CacheStatsRegistry::instance().resetAll(); }

/// Trains a fresh agent on \p Dataset and returns it.
inline std::unique_ptr<MlirRl> trainAgent(const MlirRlOptions &Options,
                                          const std::vector<Module> &Dataset,
                                          const char *Tag) {
  std::printf("[train] %s: %u iterations on %zu samples...\n", Tag,
              Options.Iterations, Dataset.size());
  auto Sys = std::make_unique<MlirRl>(Options);
  Sys->train(Dataset);
  return Sys;
}

/// Prints a rendered table with a heading.
inline void printTable(const char *Title, const TextTable &Table) {
  std::printf("\n== %s ==\n%s\n", Title, Table.render().c_str());
}

} // namespace bench
} // namespace mlirrl

#endif // MLIRRL_BENCH_BENCHCOMMON_H
