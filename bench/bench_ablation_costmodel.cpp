//===- bench_ablation_costmodel.cpp - E10: cost-model fidelity --------------===//
//
// Our own design-choice ablation (DESIGN.md E10): the analytical
// working-set model is the reward substrate; this bench validates that
// it ranks schedules the same way the trace-driven cache simulator does,
// and measures how much cheaper it is (the reason it can serve as an RL
// reward).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "perf/CacheSim.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;

namespace {

struct Candidate {
  const char *Name;
  OpSchedule Sched;
};

std::vector<Candidate> matmulCandidates() {
  std::vector<Candidate> C;
  C.push_back({"untiled", {}});
  Candidate T16;
  T16.Name = "tile 16^3";
  T16.Sched.Transforms.push_back(Transformation::tiling({16, 16, 16}));
  C.push_back(T16);
  Candidate T32;
  T32.Name = "tile 32^3";
  T32.Sched.Transforms.push_back(Transformation::tiling({32, 32, 32}));
  C.push_back(T32);
  Candidate Bad;
  Bad.Name = "column-major walk";
  Bad.Sched.Transforms.push_back(Transformation::interchange({1, 2, 0}));
  C.push_back(Bad);
  return C;
}

void runAgreement() {
  Module M = makeMatmulModule(96, 96, 96);
  MachineModel Small = MachineModel::xeonE5_2680v4();
  Small.L1.SizeBytes = 8 * 1024;
  Small.L1.Associativity = 128; // isolate capacity effects
  CostModel Model(Small);

  TextTable Table({"schedule", "analytical L1 bytes", "simulated L1 misses",
                   "analytical rank", "simulated rank"});
  std::vector<Candidate> Candidates = matmulCandidates();
  std::vector<double> Analytic;
  std::vector<double> Simulated;
  for (const Candidate &C : Candidates) {
    LoopNest Nest = materializeLoopNest(M, 0, C.Sched);
    Analytic.push_back(Model.estimateTraffic(Nest).L1Bytes);
    Simulated.push_back(
        static_cast<double>(simulateNest(Nest, Small).L1Misses));
  }
  auto RankOf = [](const std::vector<double> &V, unsigned I) {
    unsigned Rank = 0;
    for (double Other : V)
      Rank += Other < V[I];
    return Rank;
  };
  for (unsigned I = 0; I < Candidates.size(); ++I)
    Table.addRow({Candidates[I].Name, TextTable::num(Analytic[I], 0),
                  TextTable::num(Simulated[I], 0),
                  TextTable::num(RankOf(Analytic, I), 0),
                  TextTable::num(RankOf(Simulated, I), 0)});
  printTable("E10: analytical model vs trace simulator (96^3 matmul)",
             Table);

  // Pairwise concordance (Kendall-style): does the analytical model
  // order each pair of schedules the way the trace simulator does?
  unsigned Concordant = 0, Pairs = 0;
  for (unsigned I = 0; I < Candidates.size(); ++I)
    for (unsigned J = I + 1; J < Candidates.size(); ++J) {
      ++Pairs;
      Concordant += (Analytic[I] < Analytic[J]) ==
                    (Simulated[I] < Simulated[J]);
    }
  std::printf("pairwise order concordance: %u / %u schedule pairs\n",
              Concordant, Pairs);
}

void BM_Agreement(benchmark::State &State) {
  for (auto _ : State)
    runAgreement();
}

/// Relative cost: analytical estimate vs full trace simulation.
void BM_AnalyticalModel(benchmark::State &State) {
  Module M = makeMatmulModule(96, 96, 96);
  CostModel Model(MachineModel::xeonE5_2680v4());
  LoopNest Nest = materializeLoopNest(M, 0, OpSchedule());
  for (auto _ : State) {
    double T = Model.estimateNest(Nest).TotalSeconds;
    benchmark::DoNotOptimize(T);
  }
}

void BM_TraceSimulator(benchmark::State &State) {
  Module M = makeMatmulModule(96, 96, 96);
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  LoopNest Nest = materializeLoopNest(M, 0, OpSchedule());
  for (auto _ : State) {
    CacheSimStats S = simulateNest(Nest, Machine);
    benchmark::DoNotOptimize(S.L1Misses);
  }
}

} // namespace

BENCHMARK(BM_Agreement)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(BM_AnalyticalModel)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TraceSimulator)->Unit(benchmark::kMillisecond);
BENCHMARK_MAIN();
