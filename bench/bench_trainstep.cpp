//===- bench_trainstep.cpp - Training-core throughput ------------------------===//
//
// The perf trajectory of the training core: ns per PPO train iteration
// (episode collection + updates), blocked-matmul GFLOP/s forward and
// through the backward products, and the cost-model schedule-cache hit
// rate during training. scripts/bench_json.sh runs this binary with
// google-benchmark's JSON writer to produce BENCH_trainstep.json, the
// cross-PR comparison artifact.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "nn/Ops.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;
using namespace mlirrl::nn;

namespace {

/// One full PPO training iteration at the laptop benchmark scale. This
/// is the number every other bench amortizes; its inverse is training
/// iterations per second.
void BM_TrainIteration(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  MlirRl Sys(Options);
  std::vector<Module> Data = operatorTrainingSet();
  // Warm the schedule memo once, then reset its counters: the hit rate
  // reported below covers exactly this repetition's timed iterations.
  Sys.trainer().trainIteration(Data);
  resetMemoCounters(Sys);
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
  HitMissCounters Cache = Sys.runner().getCostModel().getCacheCounters();
  State.counters["cost_cache_hit_rate"] = Cache.hitRate();
  State.counters["cost_cache_lookups"] =
      static_cast<double>(Cache.total());
}

/// Train iteration with parallel episode collection (0 = all hardware
/// threads); on a single-core host this measures pool overhead.
void BM_TrainIterationParallelCollect(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  Options.Ppo.CollectThreads = 0;
  MlirRl Sys(Options);
  std::vector<Module> Data = operatorTrainingSet();
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
}

/// Train-iteration throughput as a function of the vectorized-env batch
/// width (Arg = BatchWidth; 1 reproduces the PR-1 single-env path
/// bitwise). steps_per_s counts collected environment steps; the
/// rollouts are identical for every width, so the counter isolates the
/// GEMV -> GEMM batching win.
void BM_TrainIterationBatchWidth(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  Options.Ppo.BatchWidth = static_cast<unsigned>(State.range(0));
  MlirRl Sys(Options);
  std::vector<Module> Data = operatorTrainingSet();
  uint64_t Steps = 0;
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    Steps += Stats.StepsCollected;
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
  State.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}

/// The batched update in isolation: minibatch GEMMs partitioned across
/// the ThreadPool (Arg = UpdateThreads; results are bitwise-invariant
/// to it).
void BM_TrainIterationUpdateThreads(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  Options.Ppo.UpdateThreads = static_cast<unsigned>(State.range(0));
  MlirRl Sys(Options);
  std::vector<Module> Data = operatorTrainingSet();
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
}

/// Forward blocked matmul at a square compute-bound size.
void BM_MatmulForward(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(7);
  std::vector<double> Ad(static_cast<size_t>(N) * N), Bd(Ad.size());
  for (double &V : Ad)
    V = R.nextDouble(-1, 1);
  for (double &V : Bd)
    V = R.nextDouble(-1, 1);
  Tensor A = Tensor::fromData(N, N, Ad);
  Tensor B = Tensor::fromData(N, N, Bd);
  for (auto _ : State) {
    Tensor C = matmul(A, B);
    benchmark::DoNotOptimize(C.data().data());
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

/// Forward + both backward products through autograd (the PPO update
/// path: dA = dC.B^T and dB = A^T.dC also run on the blocked kernels).
void BM_MatmulForwardBackward(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(8);
  std::vector<double> Ad(static_cast<size_t>(N) * N), Bd(Ad.size());
  for (double &V : Ad)
    V = R.nextDouble(-1, 1);
  for (double &V : Bd)
    V = R.nextDouble(-1, 1);
  for (auto _ : State) {
    Tensor A = Tensor::parameter(N, N, Ad);
    Tensor B = Tensor::parameter(N, N, Bd);
    Tensor Loss = sumAll(matmul(A, B));
    Loss.backward();
    benchmark::DoNotOptimize(A.grad().data());
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      6.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_TrainIteration)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainIterationParallelCollect)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainIterationBatchWidth)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainIterationUpdateThreads)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MatmulForward)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MatmulForwardBackward)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_MAIN();
