//===- bench_trainstep.cpp - Training-core throughput ------------------------===//
//
// The perf trajectory of the training core: ns per PPO train iteration
// (episode collection + updates), blocked-matmul GFLOP/s forward and
// through the backward products, and the cost-model schedule-cache hit
// rate during training. scripts/bench_json.sh runs this binary with
// google-benchmark's JSON writer to produce BENCH_trainstep.json, the
// cross-PR comparison artifact.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "datasets/Sequences.h"
#include "env/Environment.h"
#include "nn/Gemm.h"
#include "nn/Ops.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;
using namespace mlirrl::nn;

namespace {

/// One full PPO training iteration at the laptop benchmark scale,
/// drawing its samples from the sharded dataset stream (the default
/// training shape since streaming landed). This is the number every
/// other bench amortizes; its inverse is training iterations per
/// second.
void BM_TrainIteration(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  MlirRl Sys(Options);
  ShardedDataset Stream(DatasetConfig::scaled(0.02), /*ShardSize=*/16);
  // Warm the memo layers once, then reset every cache counter: the hit
  // rates reported below cover exactly this repetition's timed
  // iterations.
  Sys.trainer().trainIteration(Stream);
  Stream.seek(0);
  resetCacheStats();
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Stream);
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
  CacheStatsRegistry::CategoryStats Cache =
      CacheStatsRegistry::instance().categoryStats("cost_model.nest_memo");
  State.counters["cost_cache_hit_rate"] = Cache.hitRate();
  State.counters["cost_cache_lookups"] =
      static_cast<double>(Cache.total());
  CacheStatsRegistry::CategoryStats Reuse =
      CacheStatsRegistry::instance().categoryStats("state.price_reuse");
  State.counters["state_price_reuse_rate"] = Reuse.hitRate();
}

/// The pre-streaming workload (a fixed, fully materialized operator
/// dataset): the fixed-dataset path stays selectable and its number
/// stays comparable with earlier PRs' committed artifacts.
void BM_TrainIterationFixedDataset(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  MlirRl Sys(Options);
  std::vector<Module> Data = operatorTrainingSet();
  Sys.trainer().trainIteration(Data);
  resetCacheStats();
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
  CacheStatsRegistry::CategoryStats Cache =
      CacheStatsRegistry::instance().categoryStats("cost_model.nest_memo");
  State.counters["cost_cache_hit_rate"] = Cache.hitRate();
  State.counters["cost_cache_lookups"] =
      static_cast<double>(Cache.total());
}

/// Per-step environment cost in Immediate-reward mode on multi-op
/// modules -- the path the ScheduleState transaction layer targets
/// (Arg 0: 1 = incremental dirty-op pricing, 0 = the from-scratch
/// oracle; Arg 1: 0 = random operator sequences of a few ops, 1 =
/// MobileNetV2, a full model of dozens of ops, where the O(module) vs
/// O(dirty) gap is widest). Identical masked-random episodes either way
/// (the two paths are bitwise-equal); steps_per_s isolates the win.
void BM_ImmediateStepIncremental(benchmark::State &State) {
  EnvConfig Config = EnvConfig::laptop();
  Config.Reward = RewardMode::Immediate;
  Config.Incremental = State.range(0) != 0;
  CostModelEvaluator Eval(MachineModel::xeonE5_2680v4());

  Rng ModuleRng(21);
  std::vector<Module> Samples;
  if (State.range(1) == 0)
    for (unsigned I = 0; I < 4; ++I)
      Samples.push_back(generateOperatorSequence(ModuleRng));
  else
    Samples.push_back(makeMobileNetV2());

  uint64_t Steps = 0;
  unsigned Episode = 0;
  for (auto _ : State) {
    const Module &M = Samples[Episode % Samples.size()];
    Rng ActionRng(Rng::deriveSeed(77, Episode));
    ++Episode;
    Environment Env(Config, Eval, M);
    while (!Env.isDone()) {
      const Observation &Obs = Env.observe();
      AgentAction A;
      if (Obs.InPointerSequence) {
        A.Kind = TransformKind::Interchange;
        A.PointerChoice = static_cast<unsigned>(
            ActionRng.sampleWeighted(Obs.InterchangeMask));
      } else {
        A.Kind = static_cast<TransformKind>(
            ActionRng.sampleWeighted(Obs.TransformMask));
        A.TileSizeIdx.resize(Config.MaxLoops);
        for (unsigned &Idx : A.TileSizeIdx)
          Idx = static_cast<unsigned>(
              ActionRng.nextBounded(Config.NumTileSizes));
      }
      Env.step(A);
      ++Steps;
    }
    benchmark::DoNotOptimize(Env.currentSpeedup());
  }
  State.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}

/// Train iteration with parallel episode collection (0 = all hardware
/// threads); on a single-core host this measures pool overhead.
void BM_TrainIterationParallelCollect(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  Options.Ppo.CollectThreads = 0;
  MlirRl Sys(Options);
  std::vector<Module> Data = operatorTrainingSet();
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
}

/// The shared striped evaluator memo under parallel collection (Arg =
/// memo shard count, 0 = memo disabled): 4 collector threads price
/// through one CachingEvaluator, so 1 shard reproduces the old
/// global-lock serialization and higher counts show what striping buys.
/// Rollouts are bitwise-identical across the whole sweep; the counters
/// record the evaluator-memo hit rate and the contended-acquisition
/// fraction of the shard locks.
void BM_TrainIterationMemoShards(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  Options.Ppo.CollectThreads = 4;
  Options.MemoizeEvaluations = State.range(0) != 0;
  Options.MemoShards = static_cast<unsigned>(State.range(0));
  MlirRl Sys(Options);
  std::vector<Module> Data = operatorTrainingSet();
  Sys.trainer().trainIteration(Data);
  resetCacheStats();
  uint64_t Steps = 0;
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    Steps += Stats.StepsCollected;
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
  State.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
  if (CachingEvaluator *Memo = Sys.memo()) {
    HitMissCounters Op = Memo->getOpCounters();
    State.counters["op_memo_hit_rate"] = Op.hitRate();
    ContentionCounters L = Memo->getOpContention();
    State.counters["op_memo_contended_rate"] = L.contendedRate();
  }
}

/// Collection-thread wall-clock sweep (Arg = CollectThreads; rollouts
/// are bitwise-identical across the sweep). scripts/bench_json.sh
/// --threads runs this matrix and records the multi-core numbers in
/// PERF.md.
void BM_TrainIterationCollectThreads(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  Options.Ppo.CollectThreads = static_cast<unsigned>(State.range(0));
  MlirRl Sys(Options);
  std::vector<Module> Data = operatorTrainingSet();
  uint64_t Steps = 0;
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    Steps += Stats.StepsCollected;
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
  State.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}

/// Train-iteration throughput as a function of the vectorized-env batch
/// width (Arg = BatchWidth; 1 reproduces the PR-1 single-env path
/// bitwise). steps_per_s counts collected environment steps; the
/// rollouts are identical for every width, so the counter isolates the
/// GEMV -> GEMM batching win.
void BM_TrainIterationBatchWidth(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  Options.Ppo.BatchWidth = static_cast<unsigned>(State.range(0));
  MlirRl Sys(Options);
  std::vector<Module> Data = operatorTrainingSet();
  uint64_t Steps = 0;
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    Steps += Stats.StepsCollected;
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
  State.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}

/// The batched update in isolation: minibatch GEMMs partitioned across
/// the ThreadPool (Arg = UpdateThreads; results are bitwise-invariant
/// to it).
void BM_TrainIterationUpdateThreads(benchmark::State &State) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/0);
  Options.Ppo.UpdateThreads = static_cast<unsigned>(State.range(0));
  MlirRl Sys(Options);
  std::vector<Module> Data = operatorTrainingSet();
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
}

/// Forward blocked matmul at a square compute-bound size.
void BM_MatmulForward(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(7);
  std::vector<double> Ad(static_cast<size_t>(N) * N), Bd(Ad.size());
  for (double &V : Ad)
    V = R.nextDouble(-1, 1);
  for (double &V : Bd)
    V = R.nextDouble(-1, 1);
  Tensor A = Tensor::fromData(N, N, Ad);
  Tensor B = Tensor::fromData(N, N, Bd);
  for (auto _ : State) {
    Tensor C = matmul(A, B);
    benchmark::DoNotOptimize(C.data().data());
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

/// The float inference counterpart of BM_MatmulForward: the same
/// N x N x N product on the float gemmAccNN entry (the kernel the
/// packed f32 policy nets run on). The ratio against BM_MatmulForward
/// is the raw dtype speedup behind MlirRlOptions::Inference = F32.
void BM_MatmulForwardF32(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(7);
  std::vector<float> Af(static_cast<size_t>(N) * N), Bf(Af.size());
  for (float &V : Af)
    V = static_cast<float>(R.nextDouble(-1, 1));
  for (float &V : Bf)
    V = static_cast<float>(R.nextDouble(-1, 1));
  std::vector<float> C(Af.size(), 0.0f);
  for (auto _ : State) {
    gemmAccNN(N, N, N, Af.data(), N, Bf.data(), N, C.data(), N);
    benchmark::DoNotOptimize(C.data());
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

/// Forward + both backward products through autograd (the PPO update
/// path: dA = dC.B^T and dB = A^T.dC also run on the blocked kernels).
void BM_MatmulForwardBackward(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(8);
  std::vector<double> Ad(static_cast<size_t>(N) * N), Bd(Ad.size());
  for (double &V : Ad)
    V = R.nextDouble(-1, 1);
  for (double &V : Bd)
    V = R.nextDouble(-1, 1);
  for (auto _ : State) {
    Tensor A = Tensor::parameter(N, N, Ad);
    Tensor B = Tensor::parameter(N, N, Bd);
    Tensor Loss = sumAll(matmul(A, B));
    Loss.backward();
    benchmark::DoNotOptimize(A.grad().data());
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      6.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_TrainIteration)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainIterationFixedDataset)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ImmediateStepIncremental)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainIterationParallelCollect)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainIterationMemoShards)
    ->Arg(0)
    ->Arg(1)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainIterationBatchWidth)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainIterationCollectThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainIterationUpdateThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MatmulForward)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MatmulForwardF32)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MatmulForwardBackward)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_MAIN();
