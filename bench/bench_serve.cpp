//===- bench_serve.cpp - Schedule-server throughput and tail latency --------===//
//
// The serving numbers: requests/s and per-request latency percentiles
// of a ScheduleServer answering optimize() calls end to end -- import
// gate, admission queue, lockstep greedy batch, response. The policy is
// fresh-initialized (serving cost does not depend on the weight
// values); requests round-robin over three operator modules, so after
// the first touch the shared striped memo serves prices from cache and
// the numbers show steady-state serving, which is the production shape
// (a compile service sees the same operators over and over).
//
// BM_ServeLatency is single-client and records exact p50/p99 over its
// own request stream. BM_ServeThroughput hammers one shared server from
// {1, 2, 4, 8} client threads; items_processed counts requests, so the
// reported rate is requests/s across all clients. BM_ServeWorkerSweep
// holds the client load fixed (4 threads) and sweeps the *server's*
// worker count instead -- the knob ServeOptions::Workers adds; answers
// are worker-invariant, so the sweep moves only throughput. On a 1-core
// box both sweeps measure batching + admission overhead, not parallel
// speedup -- scripts/bench_json.sh --serve records nproc alongside and
// prunes the worker sweep to the host's cores for that reason.
//
//===----------------------------------------------------------------------===//

#include "datasets/DnnOps.h"
#include "ir/Printer.h"
#include "serve/Server.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

using namespace mlirrl;

namespace {

ServeOptions benchServeOptions() {
  ServeOptions O;
  O.Env = EnvConfig::laptop();
  O.Net.LstmHidden = 16;
  O.Net.BackboneHidden = 16;
  O.Seed = 1234;
  O.BatchWidth = 8;
  O.QueueCapacity = 256;
  return O;
}

const std::vector<std::string> &requestTexts() {
  static const std::vector<std::string> Texts = {
      printModule(makeMatmulModule(96, 96, 96)),
      printModule(makeReluModule({512, 256})),
      printModule(makeMatmulModule(64, 128, 64)),
  };
  return Texts;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1));
  std::nth_element(Sorted.begin(), Sorted.begin() + Idx, Sorted.end());
  return Sorted[Idx];
}

/// Single client, one request per iteration; exact per-request latency
/// distribution over the run, reported as p50/p99 counters in
/// microseconds.
void BM_ServeLatency(benchmark::State &State) {
  ScheduleServer Server(benchServeOptions());
  const std::vector<std::string> &Texts = requestTexts();

  // Warm the memo so the timed stream is steady-state.
  for (const std::string &T : Texts)
    if (!Server.optimize(T))
      State.SkipWithError("warmup request rejected");

  std::vector<double> SamplesUs;
  SamplesUs.reserve(4096);
  size_t Next = 0;
  for (auto _ : State) {
    auto T0 = std::chrono::steady_clock::now();
    Expected<ServeResponse> R = Server.optimize(Texts[Next++ % Texts.size()]);
    auto T1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(R);
    if (!R) {
      State.SkipWithError("request rejected");
      break;
    }
    SamplesUs.push_back(
        std::chrono::duration<double, std::micro>(T1 - T0).count());
  }
  State.SetItemsProcessed(static_cast<int64_t>(SamplesUs.size()));
  State.counters["p50_us"] = percentile(SamplesUs, 0.50);
  State.counters["p99_us"] = percentile(SamplesUs, 0.99);
  ServeStats S = Server.stats();
  State.counters["program_memo_hit_rate"] = S.ProgramMemoHitRate;
  State.counters["op_memo_hit_rate"] = S.OpMemoHitRate;
}

/// One shared server per run; thread 0 owns setup/teardown
/// (google-benchmark barriers the threads around the timed loop). All
/// client threads submit round-robin, offset so a lockstep batch mixes
/// modules.
ScheduleServer *SharedServer = nullptr;

void BM_ServeThroughput(benchmark::State &State) {
  const std::vector<std::string> &Texts = requestTexts();
  if (State.thread_index() == 0) {
    SharedServer = new ScheduleServer(benchServeOptions());
    for (const std::string &T : Texts)
      if (!SharedServer->optimize(T))
        State.SkipWithError("warmup request rejected");
  }

  size_t Next = static_cast<size_t>(State.thread_index());
  int64_t Served = 0;
  for (auto _ : State) {
    Expected<ServeResponse> R =
        SharedServer->optimize(Texts[Next++ % Texts.size()]);
    benchmark::DoNotOptimize(R);
    if (!R) {
      State.SkipWithError("request rejected");
      break;
    }
    ++Served;
  }
  State.SetItemsProcessed(Served);

  if (State.thread_index() == 0) {
    ServeStats S = SharedServer->stats();
    State.counters["batches"] = static_cast<double>(S.Batches);
    State.counters["requests_per_batch"] =
        S.Batches ? static_cast<double>(S.Served) /
                        static_cast<double>(S.Batches)
                  : 0.0;
    State.counters["program_memo_hit_rate"] = S.ProgramMemoHitRate;
    State.counters["op_memo_hit_rate"] = S.OpMemoHitRate;
    delete SharedServer;
    SharedServer = nullptr;
  }
}

/// Fixed 4-thread client load, server worker count swept via the
/// benchmark argument (the shared-server pattern from
/// BM_ServeThroughput, with Workers set at construction).
void BM_ServeWorkerSweep(benchmark::State &State) {
  const std::vector<std::string> &Texts = requestTexts();
  if (State.thread_index() == 0) {
    ServeOptions O = benchServeOptions();
    O.Workers = static_cast<unsigned>(State.range(0));
    SharedServer = new ScheduleServer(O);
    for (const std::string &T : Texts)
      if (!SharedServer->optimize(T))
        State.SkipWithError("warmup request rejected");
  }

  size_t Next = static_cast<size_t>(State.thread_index());
  int64_t Served = 0;
  for (auto _ : State) {
    Expected<ServeResponse> R =
        SharedServer->optimize(Texts[Next++ % Texts.size()]);
    benchmark::DoNotOptimize(R);
    if (!R) {
      State.SkipWithError("request rejected");
      break;
    }
    ++Served;
  }
  State.SetItemsProcessed(Served);

  if (State.thread_index() == 0) {
    ServeStats S = SharedServer->stats();
    State.counters["batches"] = static_cast<double>(S.Batches);
    State.counters["requests_per_batch"] =
        S.Batches ? static_cast<double>(S.Served) /
                        static_cast<double>(S.Batches)
                  : 0.0;
    delete SharedServer;
    SharedServer = nullptr;
  }
}

} // namespace

// Real time on all: a request's cost is wall-clock waiting on a server
// worker, not caller-side CPU.
BENCHMARK(BM_ServeLatency)->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServeThroughput)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServeWorkerSweep)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_MAIN();
