//===- bench_gemm.cpp - GEMM kernel throughput across dtypes ----------------===//
//
// GFLOP/s of the raw gemmAcc kernels (no autograd, no tensors) across
// element type {double, float} x kernel variant {scalar fallback,
// explicit SIMD} x packing {streaming, packed macro-kernel} x square
// sizes. This is the dtype speedup ledger behind the f32 inference
// path: the headline comparisons are NN/float/simd at 512 against
// NN/double/scalar at 512 (the pre-SIMD kernel), and each packed row
// against its unpacked twin (same name + _packed), committed to PERF.md
// and tracked across PRs through scripts/bench_json.sh --gemm
// (BENCH_gemm.json).
//
// The unpacked NT/TN rows force Scalar dispatch and packing Off -- the
// historical streaming kernels, kept under stable names for trajectory
// comparison. The packed rows run packing On under Auto dispatch: NT is
// where packing rewrites the story (the streaming kernel's k-reduction
// is a latency-bound scalar chain; the transpose-packed SIMD kernel
// runs independent lane chains), so its packed/unpacked ratio is the
// tentpole number.
//
//===----------------------------------------------------------------------===//

#include "nn/Gemm.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

template <typename T> std::vector<T> randomSquare(Rng &R, unsigned N) {
  std::vector<T> V(static_cast<size_t>(N) * N);
  for (T &X : V)
    X = static_cast<T>(R.nextDouble(-1.0, 1.0));
  return V;
}

/// Forces one kernel + packing dispatch pair for the benchmark's scope
/// and restores Auto on exit (the process-global defaults).
struct DispatchScope {
  DispatchScope(GemmKernel K, GemmPacking P) {
    setGemmKernel(K);
    setGemmPacking(P);
  }
  ~DispatchScope() {
    setGemmKernel(GemmKernel::Auto);
    setGemmPacking(GemmPacking::Auto);
  }
};

template <typename T>
void BM_GemmNN(benchmark::State &State, GemmKernel Kind, GemmPacking Pack) {
  if (Kind == GemmKernel::Simd && !gemmSimdAvailable()) {
    State.SkipWithError("no SIMD kernel in this build");
    return;
  }
  DispatchScope Scope(Kind, Pack);
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(5);
  std::vector<T> A = randomSquare<T>(R, N);
  std::vector<T> B = randomSquare<T>(R, N);
  std::vector<T> C(static_cast<size_t>(N) * N, T(0));
  for (auto _ : State) {
    gemmAccNN(N, N, N, A.data(), N, B.data(), N, C.data(), N);
    benchmark::DoNotOptimize(C.data());
    benchmark::ClobberMemory();
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

template <typename T>
void BM_GemmNT(benchmark::State &State, GemmKernel Kind, GemmPacking Pack) {
  DispatchScope Scope(Kind, Pack);
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(6);
  std::vector<T> A = randomSquare<T>(R, N);
  std::vector<T> B = randomSquare<T>(R, N);
  std::vector<T> C(static_cast<size_t>(N) * N, T(0));
  for (auto _ : State) {
    gemmAccNT(N, N, N, A.data(), N, B.data(), N, C.data(), N);
    benchmark::DoNotOptimize(C.data());
    benchmark::ClobberMemory();
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

template <typename T>
void BM_GemmTN(benchmark::State &State, GemmKernel Kind, GemmPacking Pack) {
  DispatchScope Scope(Kind, Pack);
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(7);
  std::vector<T> A = randomSquare<T>(R, N);
  std::vector<T> B = randomSquare<T>(R, N);
  std::vector<T> C(static_cast<size_t>(N) * N, T(0));
  for (auto _ : State) {
    gemmAccTN(N, N, N, A.data(), N, B.data(), N, C.data(), N);
    benchmark::DoNotOptimize(C.data());
    benchmark::ClobberMemory();
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_GemmNNF64(benchmark::State &State, GemmKernel Kind, GemmPacking Pack) {
  BM_GemmNN<double>(State, Kind, Pack);
}
void BM_GemmNNF32(benchmark::State &State, GemmKernel Kind, GemmPacking Pack) {
  BM_GemmNN<float>(State, Kind, Pack);
}
void BM_GemmNTF64(benchmark::State &State, GemmKernel Kind, GemmPacking Pack) {
  BM_GemmNT<double>(State, Kind, Pack);
}
void BM_GemmNTF32(benchmark::State &State, GemmKernel Kind, GemmPacking Pack) {
  BM_GemmNT<float>(State, Kind, Pack);
}
void BM_GemmTNF64(benchmark::State &State, GemmKernel Kind, GemmPacking Pack) {
  BM_GemmTN<double>(State, Kind, Pack);
}
void BM_GemmTNF32(benchmark::State &State, GemmKernel Kind, GemmPacking Pack) {
  BM_GemmTN<float>(State, Kind, Pack);
}

} // namespace

#define GEMM_SIZES Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
#define GEMM_BWD_SIZES Arg(256)->Arg(512)->Arg(1024)

BENCHMARK_CAPTURE(BM_GemmNNF64, f64_scalar, GemmKernel::Scalar,
                  GemmPacking::Off)
    ->GEMM_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNNF64, f64_simd, GemmKernel::Simd, GemmPacking::Off)
    ->GEMM_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNNF64, f64_simd_packed, GemmKernel::Simd,
                  GemmPacking::On)
    ->GEMM_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNNF32, f32_scalar, GemmKernel::Scalar,
                  GemmPacking::Off)
    ->GEMM_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNNF32, f32_simd, GemmKernel::Simd, GemmPacking::Off)
    ->GEMM_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNNF32, f32_simd_packed, GemmKernel::Simd,
                  GemmPacking::On)
    ->GEMM_SIZES->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(BM_GemmNTF64, f64, GemmKernel::Scalar, GemmPacking::Off)
    ->GEMM_BWD_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNTF64, f64_packed, GemmKernel::Auto, GemmPacking::On)
    ->GEMM_BWD_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNTF32, f32, GemmKernel::Scalar, GemmPacking::Off)
    ->GEMM_BWD_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNTF32, f32_packed, GemmKernel::Auto, GemmPacking::On)
    ->GEMM_BWD_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmTNF64, f64, GemmKernel::Scalar, GemmPacking::Off)
    ->GEMM_BWD_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmTNF64, f64_packed, GemmKernel::Auto, GemmPacking::On)
    ->GEMM_BWD_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmTNF32, f32, GemmKernel::Scalar, GemmPacking::Off)
    ->GEMM_BWD_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmTNF32, f32_packed, GemmKernel::Auto, GemmPacking::On)
    ->GEMM_BWD_SIZES->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
