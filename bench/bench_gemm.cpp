//===- bench_gemm.cpp - GEMM kernel throughput across dtypes ----------------===//
//
// GFLOP/s of the raw gemmAcc kernels (no autograd, no tensors) across
// element type {double, float} x kernel variant {scalar fallback,
// explicit SIMD} x square sizes 64..1024. This is the dtype speedup
// ledger behind the f32 inference path: the headline comparison is
// NN/float/simd at 512 against NN/double/scalar at 512 (the pre-SIMD
// kernel), committed to PERF.md and tracked across PRs through
// scripts/bench_json.sh --gemm (BENCH_gemm.json).
//
// The NT/TN backward kernels are benched in their scalar form only
// (they have no SIMD variant; training runs them on double).
//
//===----------------------------------------------------------------------===//

#include "nn/Gemm.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

template <typename T> std::vector<T> randomSquare(Rng &R, unsigned N) {
  std::vector<T> V(static_cast<size_t>(N) * N);
  for (T &X : V)
    X = static_cast<T>(R.nextDouble(-1.0, 1.0));
  return V;
}

/// Forces one dispatch mode for the benchmark's scope and restores
/// Auto on exit (the process-global default).
struct KernelScope {
  explicit KernelScope(GemmKernel K) { setGemmKernel(K); }
  ~KernelScope() { setGemmKernel(GemmKernel::Auto); }
};

template <typename T>
void BM_GemmNN(benchmark::State &State, GemmKernel Kind) {
  if (Kind == GemmKernel::Simd && !gemmSimdAvailable()) {
    State.SkipWithError("no SIMD kernel in this build");
    return;
  }
  KernelScope Scope(Kind);
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(5);
  std::vector<T> A = randomSquare<T>(R, N);
  std::vector<T> B = randomSquare<T>(R, N);
  std::vector<T> C(static_cast<size_t>(N) * N, T(0));
  for (auto _ : State) {
    gemmAccNN(N, N, N, A.data(), N, B.data(), N, C.data(), N);
    benchmark::DoNotOptimize(C.data());
    benchmark::ClobberMemory();
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

template <typename T> void BM_GemmNT(benchmark::State &State) {
  KernelScope Scope(GemmKernel::Scalar);
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(6);
  std::vector<T> A = randomSquare<T>(R, N);
  std::vector<T> B = randomSquare<T>(R, N);
  std::vector<T> C(static_cast<size_t>(N) * N, T(0));
  for (auto _ : State) {
    gemmAccNT(N, N, N, A.data(), N, B.data(), N, C.data(), N);
    benchmark::DoNotOptimize(C.data());
    benchmark::ClobberMemory();
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

template <typename T> void BM_GemmTN(benchmark::State &State) {
  KernelScope Scope(GemmKernel::Scalar);
  unsigned N = static_cast<unsigned>(State.range(0));
  Rng R(7);
  std::vector<T> A = randomSquare<T>(R, N);
  std::vector<T> B = randomSquare<T>(R, N);
  std::vector<T> C(static_cast<size_t>(N) * N, T(0));
  for (auto _ : State) {
    gemmAccTN(N, N, N, A.data(), N, B.data(), N, C.data(), N);
    benchmark::DoNotOptimize(C.data());
    benchmark::ClobberMemory();
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * N * N * N * static_cast<double>(State.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_GemmNNF64(benchmark::State &State, GemmKernel Kind) {
  BM_GemmNN<double>(State, Kind);
}
void BM_GemmNNF32(benchmark::State &State, GemmKernel Kind) {
  BM_GemmNN<float>(State, Kind);
}

} // namespace

#define GEMM_SIZES Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)

BENCHMARK_CAPTURE(BM_GemmNNF64, f64_scalar, GemmKernel::Scalar)
    ->GEMM_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNNF64, f64_simd, GemmKernel::Simd)
    ->GEMM_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNNF32, f32_scalar, GemmKernel::Scalar)
    ->GEMM_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GemmNNF32, f32_simd, GemmKernel::Simd)
    ->GEMM_SIZES->Unit(benchmark::kMicrosecond);

BENCHMARK_TEMPLATE(BM_GemmNT, double)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmNT, float)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmTN, double)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmTN, float)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
