//===- bench_fig5_operators.cpp - Figure 5 reproduction --------------------===//
//
// Figure 5 of the paper: speedups over the unoptimized MLIR baseline on
// single DNN operators, for MLIR RL, Halide RL, PyTorch and the PyTorch
// compiler. The paper's qualitative findings this must reproduce:
//   * Add / ReLU: MLIR RL competitive with PyTorch & the compiler;
//   * Maxpool: MLIR RL ~3.3x better than PyTorch; Halide RL ~1.25x
//     better than MLIR RL (it can vectorize pooling, MLIR cannot);
//   * Matmul / Conv2D: PyTorch wins (2.16x / 6.71x in the paper);
//     MLIR RL far ahead of Halide RL on matmul (5.32x in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace mlirrl;
using namespace mlirrl::bench;

namespace {

void runFigure5() {
  MlirRlOptions Options = standardOptions(/*Iterations=*/140);
  std::vector<Module> TrainSet = operatorTrainingSet();
  std::unique_ptr<MlirRl> Sys = trainAgent(Options, TrainSet, "fig5");

  MachineModel Machine = MachineModel::xeonE5_2680v4();
  HalideRlBaseline Halide(Machine);
  LibraryOracle Torch(Machine, LibraryProfile::pytorchEager());
  LibraryOracle TorchJit(Machine, LibraryProfile::pytorchCompile());

  TextTable Table({"operator", "size", "MLIR RL", "Halide RL", "PyTorch",
                   "PyTorch compiler"});
  struct Acc {
    std::vector<double> Rl, HalideS, TorchS, JitS;
  };
  std::map<std::string, Acc> PerOp;

  for (const OperatorBenchmark &B : makeOperatorBenchmarks()) {
    double Baseline = Sys->runner().timeBaseline(B.M);
    double Rl = Sys->optimize(B.M);
    double H = Baseline / Halide.timeModule(B.M);
    double T = Baseline / Torch.timeModule(B.M);
    double J = Baseline / TorchJit.timeModule(B.M);
    Table.addRow({B.OperatorName, B.SizeName, TextTable::num(Rl),
                  TextTable::num(H), TextTable::num(T), TextTable::num(J)});
    Acc &A = PerOp[B.OperatorName];
    A.Rl.push_back(Rl);
    A.HalideS.push_back(H);
    A.TorchS.push_back(T);
    A.JitS.push_back(J);
  }
  printTable("Figure 5: speedup over unoptimized MLIR per operator", Table);

  TextTable Summary({"operator", "MLIR RL", "Halide RL", "PyTorch",
                     "PyTorch compiler", "paper's headline"});
  std::map<std::string, std::string> Headline = {
      {"add", "MLIR RL competitive with PyTorch"},
      {"relu", "MLIR RL competitive with PyTorch"},
      {"maxpool", "MLIR RL 3.3x over PyTorch; Halide RL 1.25x over RL"},
      {"matmul", "PyTorch 2.16x over MLIR RL; RL 5.32x over Halide RL"},
      {"conv2d", "PyTorch 6.71x over MLIR RL"}};
  for (auto &[Op, A] : PerOp)
    Summary.addRow({Op, TextTable::num(geomean(A.Rl)),
                    TextTable::num(geomean(A.HalideS)),
                    TextTable::num(geomean(A.TorchS)),
                    TextTable::num(geomean(A.JitS)), Headline[Op]});
  printTable("Figure 5 summary (geomean per operator)", Summary);
}

void BM_Figure5(benchmark::State &State) {
  for (auto _ : State)
    runFigure5();
}

} // namespace

BENCHMARK(BM_Figure5)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_MAIN();
