//===- bench_overhead.cpp - Sec. VII-B compilation-pass overhead ------------===//
//
// Sec. VII-B: the overhead of the compilation pass itself — policy
// inference per code sample, and the cost of applying the selected
// transformation sequence. Paper numbers (on their hardware, full-size
// 512-unit nets): 0.028 s inference per sample; 0.089 s transformation
// time for DNN operators and 0.8 s for LQCD applications. These use
// google-benchmark's timing loop for real measurements.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "datasets/Lqcd.h"
#include "env/Environment.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;

namespace {

MlirRlOptions opts() { return standardOptions(/*Iterations=*/0); }

/// Full-sequence policy inference for one code sample (every step of an
/// episode queries the policy, as in deployment).
void BM_PolicyInferencePerSample(benchmark::State &State) {
  MlirRlOptions Options = opts();
  MlirRl Sys(Options);
  Module M = makeMatmulModule(512, 512, 512);
  for (auto _ : State) {
    double Speedup = Sys.optimize(M);
    benchmark::DoNotOptimize(Speedup);
  }
}

/// Policy inference with the paper-size networks (LSTM 512, Dense 512).
void BM_PolicyInferencePaperSizeNets(benchmark::State &State) {
  MlirRlOptions Options = opts();
  Options.Net = NetConfig(); // 512-unit LSTM + 3 x Dense(512)
  MlirRl Sys(Options);
  Module M = makeMatmulModule(512, 512, 512);
  for (auto _ : State) {
    double Speedup = Sys.optimize(M);
    benchmark::DoNotOptimize(Speedup);
  }
}

/// Full-sequence policy inference on the f32 path: the same greedy
/// rollout with MlirRlOptions::Inference = F32, so every policy
/// forward runs the packed float nets on the float SIMD kernels.
void BM_PolicyInferencePerSampleF32(benchmark::State &State) {
  MlirRlOptions Options = opts();
  Options.Inference = InferenceDtype::F32;
  MlirRl Sys(Options);
  Module M = makeMatmulModule(512, 512, 512);
  for (auto _ : State) {
    double Speedup = Sys.optimize(M);
    benchmark::DoNotOptimize(Speedup);
  }
}

/// f32 inference with the paper-size networks; the GEMM-bound case
/// where the float SIMD kernels buy the most.
void BM_PolicyInferencePaperSizeNetsF32(benchmark::State &State) {
  MlirRlOptions Options = opts();
  Options.Net = NetConfig(); // 512-unit LSTM + 3 x Dense(512)
  Options.Inference = InferenceDtype::F32;
  MlirRl Sys(Options);
  Module M = makeMatmulModule(512, 512, 512);
  for (auto _ : State) {
    double Speedup = Sys.optimize(M);
    benchmark::DoNotOptimize(Speedup);
  }
}

/// Applying a full transformation sequence to a DNN operator.
void BM_TransformApplicationDnnOp(benchmark::State &State) {
  Module M = makeConv2dModule(1, 64, 58, 58, 64, 3, 3, 1);
  OpSchedule Sched;
  Sched.Transforms.push_back(
      Transformation::tiledParallelization({1, 4, 8, 8, 0, 0, 0}));
  Sched.Transforms.push_back(
      Transformation::interchange({0, 1, 2, 4, 5, 6, 3}));
  Sched.Transforms.push_back(Transformation::vectorization());
  ModuleSchedule Full;
  Full.OpSchedules[0] = Sched;
  for (auto _ : State) {
    std::vector<LoopNest> Nests = materializeModule(M, Full);
    benchmark::DoNotOptimize(Nests.data());
  }
}

/// Applying transformation sequences across a whole LQCD application.
void BM_TransformApplicationLqcdApp(benchmark::State &State) {
  Module M = makeDibaryonDibaryon(24);
  ModuleSchedule Full;
  for (unsigned I = 0; I < M.getNumOps(); ++I) {
    OpSchedule Sched;
    std::vector<int64_t> Sizes(M.getOp(I).getNumLoops(), 0);
    Sizes[0] = 4;
    if (Sizes.size() > 1)
      Sizes[1] = 8;
    Sched.Transforms.push_back(Transformation::tiledParallelization(Sizes));
    Full.OpSchedules[I] = Sched;
  }
  for (auto _ : State) {
    std::vector<LoopNest> Nests = materializeModule(M, Full);
    benchmark::DoNotOptimize(Nests.data());
  }
}

/// One reward evaluation (materialize + cost model), the per-step cost
/// of the Immediate reward mode.
void BM_RewardEvaluation(benchmark::State &State) {
  MachineModel Machine = MachineModel::xeonE5_2680v4();
  CostModel Model(Machine);
  Module M = makeMatmulModule(512, 512, 512);
  OpSchedule Sched;
  Sched.Transforms.push_back(Transformation::tiledParallelization({8, 8, 0}));
  ModuleSchedule Full;
  Full.OpSchedules[0] = Sched;
  for (auto _ : State) {
    double T = Model.estimateModule(materializeModule(M, Full));
    benchmark::DoNotOptimize(T);
  }
}

} // namespace

BENCHMARK(BM_PolicyInferencePerSample)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyInferencePerSampleF32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyInferencePaperSizeNets)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyInferencePaperSizeNetsF32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TransformApplicationDnnOp)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TransformApplicationLqcdApp)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RewardEvaluation)->Unit(benchmark::kMicrosecond);
BENCHMARK_MAIN();
