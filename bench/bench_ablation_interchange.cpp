//===- bench_ablation_interchange.cpp - Sec. VII-D ablation 1 ---------------===//
//
// The interchange-formulation ablation: an agent trained with Level
// Pointers vs. one with Enumerated Candidates, evaluated on the
// benchmark suite. Paper numbers: 18.7x (level pointers) vs. 14.5x
// (enumerated) average speedup — the pointer formulation covers all N!
// permutations with an N-way head and learns the better policy.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "datasets/Lqcd.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;

namespace {

double trainAndEvaluate(InterchangeMode Mode,
                        const std::vector<Module> &TrainSet,
                        const std::vector<Module> &EvalSet) {
  MlirRlOptions Options = standardOptions(/*Iterations=*/120, /*Seed=*/88);
  Options.Env.Interchange = Mode;
  MlirRl Sys(Options);
  Sys.train(TrainSet);
  std::vector<double> Speedups;
  for (const Module &M : EvalSet)
    Speedups.push_back(std::max(Sys.optimize(M), 1e-9));
  return geomean(Speedups);
}

void runAblation() {
  std::vector<Module> TrainSet = operatorTrainingSet(/*Seed=*/19);
  Rng R(23);
  for (unsigned I = 0; I < 30; ++I)
    TrainSet.push_back(generateLqcdKernel(R, 9));

  std::vector<Module> EvalSet;
  for (const OperatorBenchmark &B : makeOperatorBenchmarks())
    EvalSet.push_back(B.M);
  for (unsigned I = 0; I < 6; ++I)
    EvalSet.push_back(generateLqcdKernel(R, 9));

  std::printf("[train] ablation: level pointers...\n");
  double Pointers =
      trainAndEvaluate(InterchangeMode::LevelPointers, TrainSet, EvalSet);
  std::printf("[train] ablation: enumerated candidates...\n");
  double Enumerated =
      trainAndEvaluate(InterchangeMode::Enumerated, TrainSet, EvalSet);

  TextTable Table({"interchange formulation", "avg speedup (geomean)",
                   "paper"});
  Table.addRow({"Level Pointers", TextTable::num(Pointers), "18.7"});
  Table.addRow({"Enumerated Candidates", TextTable::num(Enumerated),
                "14.5"});
  printTable("Ablation: interchange formulations (Sec. VII-D)", Table);
}

void BM_AblationInterchange(benchmark::State &State) {
  for (auto _ : State)
    runAblation();
}

} // namespace

BENCHMARK(BM_AblationInterchange)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_MAIN();
