//===- bench_table3_models.cpp - Table III reproduction --------------------===//
//
// Table III: speedups over unoptimized MLIR on full neural networks
// (ResNet-18, MobileNetV2, VGG) for MLIR RL, PyTorch and the PyTorch
// compiler. Paper numbers: ResNet-18 25.43 / 374.77 / 411.26,
// MobileNetV2 6.93 / 23.66 / 28.23, VGG 54.64 / 321.99 / 328.77 — the
// frameworks win everywhere (their Matmul/Conv2D kernels dominate the
// models' runtime), with the smallest gap on MobileNetV2.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;

namespace {

void runTable3() {
  MlirRlOptions Options = standardOptions(/*Iterations=*/140);
  std::vector<Module> TrainSet = operatorTrainingSet();
  // Mix in operator sequences so the agent sees multi-op samples
  // (fusion opportunities) before facing whole models.
  Rng R(21);
  for (Module &M : generateSequenceDataset(R, 30))
    TrainSet.push_back(std::move(M));
  std::unique_ptr<MlirRl> Sys = trainAgent(Options, TrainSet, "table3");

  MachineModel Machine = MachineModel::xeonE5_2680v4();
  LibraryOracle Torch(Machine, LibraryProfile::pytorchEager());
  LibraryOracle TorchJit(Machine, LibraryProfile::pytorchCompile());

  struct Row {
    const char *Name;
    Module M;
    double PaperRl, PaperTorch, PaperJit;
  };
  std::vector<Row> Rows;
  Rows.push_back({"ResNet-18", makeResNet18(), 25.43, 374.77, 411.26});
  Rows.push_back({"MobileNetV2", makeMobileNetV2(), 6.93, 23.66, 28.23});
  Rows.push_back({"VGG", makeVgg16(), 54.64, 321.99, 328.77});

  TextTable Table({"model", "MLIR RL", "PyTorch", "PyTorch compiler",
                   "paper: RL / PyTorch / compiler"});
  for (Row &Entry : Rows) {
    double Baseline = Sys->runner().timeBaseline(Entry.M);
    double Rl = Sys->optimize(Entry.M);
    double T = Baseline / Torch.timeModule(Entry.M);
    double J = Baseline / TorchJit.timeModule(Entry.M);
    Table.addRow({Entry.Name, TextTable::num(Rl), TextTable::num(T),
                  TextTable::num(J),
                  TextTable::num(Entry.PaperRl) + " / " +
                      TextTable::num(Entry.PaperTorch) + " / " +
                      TextTable::num(Entry.PaperJit)});
  }
  printTable("Table III: speedups on full models", Table);
}

void BM_Table3(benchmark::State &State) {
  for (auto _ : State)
    runTable3();
}

} // namespace

BENCHMARK(BM_Table3)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_MAIN();
