//===- bench_table5_models.cpp - Table V reproduction ------------------------===//
//
// Table V: operation composition of the benchmarked models. The paper
// counts the ops Torch-MLIR emits (ResNet 510 total / 53 conv; our
// from-scratch builders produce the architectural op counts — fewer
// generics because Torch-MLIR splits normalization into several
// linalg.generic ops). Both are printed side by side.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;

namespace {

void runTable5() {
  struct Row {
    const char *Name;
    Module M;
    const char *Paper; // total/conv/pool/matmul/generic/unknown
  };
  std::vector<Row> Rows;
  Rows.push_back(
      {"MobileNetV2", makeMobileNetV2(), "524/35/1/1/448/39"});
  Rows.push_back({"ResNet", makeResNet18(), "510/53/2/1/438/16"});
  Rows.push_back({"VGG", makeVgg16(), "65/13/6/3/19/24"});

  TextTable Table({"model", "total", "conv2d", "pool", "matmul", "generic",
                   "unknown", "paper (tot/conv/pool/mm/gen/unk)"});
  for (Row &Entry : Rows) {
    std::map<std::string, unsigned> C = getOpComposition(Entry.M);
    Table.addRow({Entry.Name, TextTable::num(C["total"], 0),
                  TextTable::num(C["conv2d"], 0),
                  TextTable::num(C["pool"], 0),
                  TextTable::num(C["matmul"], 0),
                  TextTable::num(C["generic"], 0),
                  TextTable::num(C["unknown"], 0), Entry.Paper});
  }
  printTable("Table V: operation composition of the models", Table);
}

void BM_Table5(benchmark::State &State) {
  for (auto _ : State)
    runTable5();
}

/// Model-construction throughput (the "import" path).
void BM_BuildResNet18(benchmark::State &State) {
  for (auto _ : State) {
    Module M = makeResNet18();
    benchmark::DoNotOptimize(M.getNumOps());
  }
}

} // namespace

BENCHMARK(BM_Table5)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(BM_BuildResNet18)->Unit(benchmark::kMillisecond);
BENCHMARK_MAIN();
