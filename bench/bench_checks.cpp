//===- bench_checks.cpp - Cost of always-on post-transform checks -----------===//
//
// PR 6 makes the environment validate every applied action through
// transforms/PostTransformChecks (EnvConfig::PostTransformChecks, on by
// default). This bench measures what that buys us in per-step and
// per-episode time: identical scripted random episodes with the checks
// on vs off, plus the two check entry points in isolation. Numbers feed
// the DESIGN note in PERF.md.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "env/Environment.h"
#include "ir/Builder.h"
#include "perf/Evaluator.h"
#include "transforms/PostTransformChecks.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;

namespace {

/// A module with a fusable chain so fusion/tiling/interchange all fire.
Module chainModule() {
  Module M("bench_checks");
  Builder B(M);
  std::string X = B.declareInput({128, 256});
  std::string W = B.declareInput({256, 64});
  B.relu(B.matmul(X, W));
  return M;
}

/// An in-range random action: every field valid for \p Config, so steps
/// mostly apply and the per-step check actually runs (out-of-range
/// actions would be rejected before the check and measure nothing).
AgentAction validRandomAction(Rng &R, const EnvConfig &Config) {
  AgentAction A;
  A.Kind = static_cast<TransformKind>(R.nextBounded(NumTransformKinds));
  A.TileSizeIdx.resize(Config.MaxLoops);
  for (unsigned &Idx : A.TileSizeIdx)
    Idx = static_cast<unsigned>(R.nextBounded(Config.TileCandidates.size()));
  A.EnumeratedChoice =
      static_cast<unsigned>(R.nextBounded(3 * Config.MaxLoops + 1));
  A.PointerChoice = static_cast<unsigned>(R.nextBounded(Config.MaxLoops));
  A.FlatChoice = static_cast<unsigned>(R.nextBounded(64));
  return A;
}

/// Runs scripted random episodes and reports per-step time. The action
/// stream depends only on the seed, so the checked and unchecked
/// variants replay bitwise-identical episodes.
void episodeBench(benchmark::State &State, bool Checks) {
  Module M = chainModule();
  CostModelEvaluator Eval(MachineModel::xeonE5_2680v4());
  EnvConfig Config = EnvConfig::laptop();
  Config.PostTransformChecks = Checks;
  uint64_t Steps = 0;
  for (auto _ : State) {
    Rng R(4242);
    Environment Env(Config, Eval, M);
    unsigned Guard = 0;
    while (!Env.isDone() && ++Guard < 4000) {
      Environment::StepOutcome Out = Env.step(validRandomAction(R, Config));
      benchmark::DoNotOptimize(Out.Reward);
      ++Steps;
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
}

void BM_EpisodeChecked(benchmark::State &State) {
  episodeBench(State, /*Checks=*/true);
}

void BM_EpisodeUnchecked(benchmark::State &State) {
  episodeBench(State, /*Checks=*/false);
}

/// The per-step gate on its own: validate one candidate schedule.
void BM_CheckCandidateAction(benchmark::State &State) {
  Module M = chainModule();
  OpSchedule Sched;
  Sched.Transforms = {Transformation::tiledParallelization({16, 0, 0}),
                      Transformation::interchange({1, 0, 2}),
                      Transformation::tiling({4, 4, 8}),
                      Transformation::vectorization()};
  std::string Err;
  for (auto _ : State) {
    bool Ok = checkCandidateAction(M, 0, Sched, Err);
    benchmark::DoNotOptimize(Ok);
  }
}

/// The full-state form tests and the fuzz harness run.
void BM_VerifyScheduleState(benchmark::State &State) {
  Module M = chainModule();
  ScheduleState SS(M);
  SS.apply(1, Transformation::tiledFusion({8, 0}), 0);
  SS.apply(1, Transformation::vectorization());
  SS.materializeAll();
  std::string Err;
  for (auto _ : State) {
    bool Ok = verifyScheduleState(SS, Err);
    benchmark::DoNotOptimize(Ok);
  }
}

/// One full PPO training iteration on the fixed operator dataset with
/// the checks on (Arg 1, the default) vs off (Arg 0): the end-to-end
/// number, where policy inference and pricing dwarf the per-step gate.
void BM_TrainIterationChecks(benchmark::State &State) {
  MlirRlOptions Options = bench::standardOptions(/*Iterations=*/0);
  Options.Env.PostTransformChecks = State.range(0) != 0;
  MlirRl Sys(Options);
  std::vector<Module> Data = bench::operatorTrainingSet();
  Sys.trainer().trainIteration(Data);
  bench::resetCacheStats();
  for (auto _ : State) {
    PpoIterationStats Stats = Sys.trainer().trainIteration(Data);
    benchmark::DoNotOptimize(Stats.MeanEpisodeReward);
  }
}

} // namespace

BENCHMARK(BM_EpisodeChecked)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EpisodeUnchecked)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CheckCandidateAction)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VerifyScheduleState)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TrainIterationChecks)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_MAIN();
