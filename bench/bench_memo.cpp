//===- bench_memo.cpp - Striped-memo contention micro-bench -----------------===//
//
// The contention curve of the lock-striped shared memo
// (support/StripedLru.h): lookup throughput of one table hammered by
// {1, 2, 4, 8} threads at shard counts {1, 4, 16, 64}, plus the
// single-threaded hit and miss costs. 1 shard is the global-lock
// baseline the old CachingEvaluator::LruMemo imposed on every collector
// thread; the spread between its numbers and the striped ones is the
// case for sharding. scripts/bench_json.sh --memo records the sweep
// (with the host's nproc) as BENCH_memo.json; per-config counters
// report the contended-acquisition fraction, which is the signal that
// survives even on a 1-core host where wall-clock cannot show scaling.
//
// The access pattern mirrors training: a bounded working set of keys,
// mostly hits after first touch, every thread walking the keys in a
// different order so first-touches race.
//
//===----------------------------------------------------------------------===//

#include "support/StripedLru.h"

#include <benchmark/benchmark.h>

#include <cstdint>

using namespace mlirrl;

namespace {

double valueOf(uint64_t Key) {
  return static_cast<double>(stripedShardMix(Key ^ 0x9e3779b97f4a7c15ull)) *
         0x1p-64;
}

/// One shared table per benchmark run; thread 0 owns setup/teardown
/// (google-benchmark barriers the threads around the timed loop).
StripedLruMemo<double> *SharedMemo = nullptr;

/// Arg(0) = shard count. Run with ->Threads(N): all N threads hammer
/// the same table over a shared working set. items_processed counts
/// lookups, so the reported rate is lookups/s across all threads.
void BM_StripedMemoLookup(benchmark::State &State) {
  const uint64_t Keys = 512;
  const unsigned Shards = static_cast<unsigned>(State.range(0));
  if (State.thread_index() == 0)
    SharedMemo = new StripedLruMemo<double>("bench.memo", Keys * 4, Shards);

  uint64_t Walk = static_cast<uint64_t>(State.thread_index()) + 1;
  uint64_t Lookups = 0;
  for (auto _ : State) {
    // One pass over the working set per iteration, thread-specific
    // stride so concurrent threads collide on shards, not in lockstep.
    for (uint64_t I = 0; I < Keys; ++I) {
      uint64_t Key = (I * Walk + Lookups) % Keys;
      benchmark::DoNotOptimize(
          SharedMemo->memoized(Key, [Key] { return valueOf(Key); }));
    }
    Lookups += Keys;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Lookups));

  if (State.thread_index() == 0) {
    HitMissCounters C = SharedMemo->counters();
    ContentionCounters L = SharedMemo->contention();
    State.counters["hit_rate"] = C.hitRate();
    State.counters["duplicates"] = static_cast<double>(
        C.Duplicates.load(std::memory_order_relaxed));
    State.counters["lock_acquisitions"] = static_cast<double>(
        L.Acquisitions.load(std::memory_order_relaxed));
    State.counters["contended_acquisitions"] = static_cast<double>(
        L.Contended.load(std::memory_order_relaxed));
    State.counters["contended_rate"] = L.contendedRate();
    delete SharedMemo;
    SharedMemo = nullptr;
  }
}

/// Single-threaded cost of a pure hit stream (the steady-state of a
/// warmed memo) per shard count: striping must not tax the fast path.
void BM_StripedMemoHit(benchmark::State &State) {
  const uint64_t Keys = 512;
  StripedLruMemo<double> Memo("bench.memo_hit", Keys * 4,
                              static_cast<unsigned>(State.range(0)));
  for (uint64_t K = 0; K < Keys; ++K)
    Memo.memoized(K, [K] { return valueOf(K); });
  uint64_t Next = 0;
  for (auto _ : State) {
    uint64_t Key = Next++ % Keys;
    benchmark::DoNotOptimize(
        Memo.memoized(Key, [Key] { return valueOf(Key); }));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}

/// Single-threaded miss + eviction churn: every lookup inserts and
/// evicts (working set 4x the capacity), the worst case for the
/// insert-then-trim path.
void BM_StripedMemoMissEvict(benchmark::State &State) {
  const uint64_t Capacity = 128;
  StripedLruMemo<double> Memo("bench.memo_evict", Capacity,
                              static_cast<unsigned>(State.range(0)));
  uint64_t Next = 0;
  for (auto _ : State) {
    uint64_t Key = Next++ % (Capacity * 4);
    benchmark::DoNotOptimize(
        Memo.memoized(Key, [Key] { return valueOf(Key); }));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}

} // namespace

BENCHMARK(BM_StripedMemoLookup)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StripedMemoHit)->Arg(1)->Arg(16);
BENCHMARK(BM_StripedMemoMissEvict)->Arg(1)->Arg(16);
BENCHMARK_MAIN();
