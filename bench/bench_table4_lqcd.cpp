//===- bench_table4_lqcd.cpp - Table IV reproduction ------------------------===//
//
// Table IV: speedups over unoptimized MLIR on the three LQCD
// applications, MLIR RL vs. the Halide (Mullapudi) autoscheduler. Paper
// numbers: hexaquark-hexaquark (S=12) 13.25 / 1.17, dibaryon-dibaryon
// (S=24) 7.57 / 5.15, dibaryon-hexaquark (S=32) 2.15 / 4.68 — MLIR RL
// wins the first two (deep nests where learned tiling + interchange +
// outer parallelism pay off), the autoscheduler the third.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "datasets/Lqcd.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;

namespace {

void runTable4() {
  MlirRlOptions Options = standardOptions(/*Iterations=*/140, /*Seed=*/77);
  // Train on LQCD kernels (the paper's agent saw 691 LQCD samples).
  Rng R(31);
  std::vector<Module> TrainSet;
  for (unsigned I = 0; I < 80; ++I)
    TrainSet.push_back(generateLqcdKernel(R, Options.Env.MaxLoops));
  std::unique_ptr<MlirRl> Sys = trainAgent(Options, TrainSet, "table4");

  MachineModel Machine = MachineModel::xeonE5_2680v4();
  MullapudiAutoscheduler Mullapudi(Machine);

  struct Row {
    const char *Name;
    Module M;
    double PaperRl, PaperMullapudi;
  };
  std::vector<Row> Rows;
  Rows.push_back(
      {"hexaquark-hexaquark (S=12)", makeHexaquarkHexaquark(12), 13.25, 1.17});
  Rows.push_back(
      {"dibaryon-dibaryon (S=24)", makeDibaryonDibaryon(24), 7.57, 5.15});
  Rows.push_back(
      {"dibaryon-hexaquark (S=32)", makeDibaryonHexaquark(32), 2.15, 4.68});

  TextTable Table({"benchmark", "MLIR RL", "Mullapudi",
                   "paper: RL / Mullapudi"});
  for (Row &Entry : Rows) {
    double Baseline = Sys->runner().timeBaseline(Entry.M);
    double Rl = Sys->optimize(Entry.M);
    double Mu = Baseline / Mullapudi.timeModule(Entry.M);
    Table.addRow({Entry.Name, TextTable::num(Rl), TextTable::num(Mu),
                  TextTable::num(Entry.PaperRl) + " / " +
                      TextTable::num(Entry.PaperMullapudi)});
  }
  printTable("Table IV: speedups on LQCD applications", Table);
}

void BM_Table4(benchmark::State &State) {
  for (auto _ : State)
    runTable4();
}

} // namespace

BENCHMARK(BM_Table4)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_MAIN();
