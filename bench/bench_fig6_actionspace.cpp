//===- bench_fig6_actionspace.cpp - Figure 6 reproduction -------------------===//
//
// Figure 6: training curves of the Flat vs. Multi-Discrete action
// spaces. The paper's finding: the flat space converges faster (fewer
// choices per step) but the multi-discrete space explores a richer space
// and ends with the higher speedup. Emits a CSV series
// (fig6_actionspace.csv) plus a summary table.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;

namespace {

std::vector<double> trainCurve(ActionSpaceMode Mode, unsigned Iterations,
                               const std::vector<Module> &Dataset) {
  MlirRlOptions Options = standardOptions(Iterations, /*Seed=*/55);
  Options.Env.ActionSpace = Mode;
  MlirRl Sys(Options);
  std::vector<double> Curve;
  Sys.train(Dataset, [&](unsigned, const PpoIterationStats &S) {
    Curve.push_back(S.MeanSpeedup);
  });
  return Curve;
}

void runFigure6() {
  const unsigned Iterations = 120;
  std::vector<Module> Dataset = operatorTrainingSet(/*Seed=*/13);

  std::printf("[train] fig6: flat action space...\n");
  std::vector<double> Flat =
      trainCurve(ActionSpaceMode::Flat, Iterations, Dataset);
  std::printf("[train] fig6: multi-discrete action space...\n");
  std::vector<double> Multi =
      trainCurve(ActionSpaceMode::MultiDiscrete, Iterations, Dataset);

  CsvWriter Csv({"iteration", "flat_speedup", "multidiscrete_speedup"});
  for (unsigned I = 0; I < Iterations; ++I)
    Csv.addRow({TextTable::num(I, 0), TextTable::num(Flat[I], 4),
                TextTable::num(Multi[I], 4)});
  Csv.writeFile("fig6_actionspace.csv");
  std::printf("wrote fig6_actionspace.csv (%u iterations)\n", Iterations);

  auto Tail = [](const std::vector<double> &Curve) {
    std::vector<double> Last(Curve.end() - Curve.size() / 5, Curve.end());
    return geomean(Last);
  };
  auto Head = [](const std::vector<double> &Curve) {
    std::vector<double> First(Curve.begin(),
                              Curve.begin() + Curve.size() / 5);
    return geomean(First);
  };
  TextTable Table({"action space", "early speedup (first 20%)",
                   "final speedup (last 20%)", "paper's finding"});
  Table.addRow({"Flat", TextTable::num(Head(Flat)),
                TextTable::num(Tail(Flat)), "converges faster"});
  Table.addRow({"Multi-Discrete", TextTable::num(Head(Multi)),
                TextTable::num(Tail(Multi)),
                "higher final speedup (wider exploration)"});
  printTable("Figure 6: flat vs multi-discrete action space", Table);
}

void BM_Figure6(benchmark::State &State) {
  for (auto _ : State)
    runFigure6();
}

} // namespace

BENCHMARK(BM_Figure6)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_MAIN();
