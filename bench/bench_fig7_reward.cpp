//===- bench_fig7_reward.cpp - Figure 7 reproduction -------------------------===//
//
// Figure 7: Immediate vs. Final reward. The paper's finding: both reach
// comparable speedups per training *iteration*, but the immediate-reward
// variant is much slower in *wall-clock* because the optimized program
// must be executed after every step to compute the incremental reward.
// We reproduce both axes: the per-iteration curve and the simulated
// measurement wall-clock (the sum of program executions the rewards
// required). Emits fig7_reward.csv.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace mlirrl;
using namespace mlirrl::bench;

namespace {

struct Curve {
  std::vector<double> Speedup;
  std::vector<double> WallClock; // cumulative simulated measurement time
};

Curve trainCurve(RewardMode Mode, unsigned Iterations,
                 const std::vector<Module> &Dataset) {
  MlirRlOptions Options = standardOptions(Iterations, /*Seed=*/66);
  Options.Env.Reward = Mode;
  MlirRl Sys(Options);
  Curve C;
  double Cumulative = 0.0;
  Sys.train(Dataset, [&](unsigned, const PpoIterationStats &S) {
    Cumulative += S.MeasurementSeconds;
    C.Speedup.push_back(S.MeanSpeedup);
    C.WallClock.push_back(Cumulative);
  });
  return C;
}

void runFigure7() {
  const unsigned Iterations = 100;
  std::vector<Module> Dataset = operatorTrainingSet(/*Seed=*/17);

  std::printf("[train] fig7: final reward...\n");
  Curve Final = trainCurve(RewardMode::Final, Iterations, Dataset);
  std::printf("[train] fig7: immediate reward...\n");
  Curve Immediate = trainCurve(RewardMode::Immediate, Iterations, Dataset);

  CsvWriter Csv({"iteration", "final_speedup", "final_wallclock_s",
                 "immediate_speedup", "immediate_wallclock_s"});
  for (unsigned I = 0; I < Iterations; ++I)
    Csv.addRow({TextTable::num(I, 0), TextTable::num(Final.Speedup[I], 4),
                TextTable::num(Final.WallClock[I], 4),
                TextTable::num(Immediate.Speedup[I], 4),
                TextTable::num(Immediate.WallClock[I], 4)});
  Csv.writeFile("fig7_reward.csv");
  std::printf("wrote fig7_reward.csv\n");

  auto Tail = [](const std::vector<double> &V) {
    std::vector<double> Last(V.end() - V.size() / 5, V.end());
    return geomean(Last);
  };
  TextTable Table({"reward", "final speedup (last 20%)",
                   "total measurement time (simulated s)",
                   "paper's finding"});
  Table.addRow({"Final", TextTable::num(Tail(Final.Speedup)),
                TextTable::num(Final.WallClock.back(), 3),
                "same speedup, much cheaper training"});
  Table.addRow({"Immediate", TextTable::num(Tail(Immediate.Speedup)),
                TextTable::num(Immediate.WallClock.back(), 3),
                "comparable speedup, slower wall-clock"});
  printTable("Figure 7: immediate vs final reward", Table);
}

void BM_Figure7(benchmark::State &State) {
  for (auto _ : State)
    runFigure7();
}

} // namespace

BENCHMARK(BM_Figure7)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_MAIN();
