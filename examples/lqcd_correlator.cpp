//===- lqcd_correlator.cpp - Optimizing LQCD correlators ---------------------===//
//
// The paper's second domain: Lattice QCD correlator code — long
// sequences of deep loop nests (up to 12 levels) with reductions at the
// inner levels. Trains on generated LQCD kernels and optimizes the
// dibaryon-dibaryon application, comparing against the Halide
// (Mullapudi) autoscheduler as in Table IV.
//
//===----------------------------------------------------------------------===//

#include "baselines/Mullapudi.h"
#include "datasets/Lqcd.h"
#include "rl/MlirRl.h"

#include <cstdio>

using namespace mlirrl;

int main() {
  MlirRlOptions Options = MlirRlOptions::laptop();
  Options.Iterations = 80;
  Options.Seed = 5;

  Rng R(9);
  std::vector<Module> TrainSet;
  for (unsigned I = 0; I < 60; ++I)
    TrainSet.push_back(generateLqcdKernel(R, Options.Env.MaxLoops));

  MlirRl Sys(Options);
  std::printf("training on %zu LQCD kernels...\n", TrainSet.size());
  Sys.train(TrainSet, [](unsigned I, const PpoIterationStats &S) {
    if (I % 20 == 0)
      std::printf("  iteration %3u: mean speedup %.2fx\n", I, S.MeanSpeedup);
  });

  Module App = makeDibaryonDibaryon(24);
  std::printf("\n%s: %u loop nests, deepest %u levels, %.2f GFLOP\n",
              App.getName().c_str(), App.getNumOps(),
              [&] {
                unsigned Deepest = 0;
                for (const LinalgOp &Op : App.getOps())
                  Deepest = std::max(Deepest, Op.getNumLoops());
                return Deepest;
              }(),
              static_cast<double>(App.getTotalFlops()) * 1e-9);

  double Baseline = Sys.runner().timeBaseline(App);
  ModuleSchedule Learned;
  double RlSpeedup = Sys.optimize(App, &Learned);

  MullapudiAutoscheduler Mullapudi(MachineModel::xeonE5_2680v4());
  double MuSpeedup = Baseline / Mullapudi.timeModule(App);

  std::printf("\nspeedups over unoptimized MLIR (paper Table IV row: "
              "7.57 / 5.15):\n");
  std::printf("  MLIR RL                %8.2fx\n", RlSpeedup);
  std::printf("  Halide autoscheduler   %8.2fx\n", MuSpeedup);
  std::printf("\nlearned schedule for the first contraction:\n%s",
              Learned.toString().c_str());
  return 0;
}
