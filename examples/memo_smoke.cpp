//===- memo_smoke.cpp - CI smoke check for the striped shared memo ----------===//
//
// The memo micro-bench in smoke mode, run by scripts/ci.sh: hammers a
// StripedLruMemo from 4 threads at the global-lock (1-shard) and the
// striped (16-shard) configurations and fails if the concurrency
// contract regressed:
//
//   * every lookup returns its key's deterministic value, racing or not;
//   * hits + misses + duplicates == lookups exactly (benign races land
//     in the duplicate counter, never as phantom misses);
//   * the table never exceeds its capacity;
//   * striping reduces contended lock acquisitions: at 16 shards the
//     contended count must not exceed the 1-shard count (asserted only
//     when the 1-shard run saw meaningful contention, so a lightly
//     loaded 1-core box cannot flake the check).
//
// It also reports lookups/s per configuration -- informational on a
// 1-core host (see PERF.md for the caveat), the contention counters are
// the load-bearing signal there.
//
//===----------------------------------------------------------------------===//

#include "support/StripedLru.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

using namespace mlirrl;

namespace {

bool check(bool Ok, const char *What) {
  std::printf("  [%s] %s\n", Ok ? "ok" : "FAIL", What);
  return Ok;
}

double valueOf(uint64_t Key) {
  return static_cast<double>(stripedShardMix(Key ^ 0x9e3779b97f4a7c15ull)) *
         0x1p-64;
}

struct HammerResult {
  uint64_t Lookups = 0;
  uint64_t WrongValues = 0;
  HitMissCounters Counts;
  ContentionCounters Locks;
  size_t FinalSize = 0;
  size_t CapacityBound = 0;
  double LookupsPerSecond = 0.0;
};

/// N threads walking the same key set in different orders through one
/// shared memo (the collector-thread access pattern: mostly hits with
/// racing first-touches).
HammerResult hammer(unsigned Shards, unsigned Threads, uint64_t Keys,
                    unsigned Rounds) {
  // Capacity leaves generous per-shard headroom over the expected
  // keys-per-shard so no shard evicts even with an uneven key spread
  // (eviction would turn re-lookups into extra misses and fail the
  // misses == keys assertion below).
  StripedLruMemo<double> Memo("memo_smoke", /*Capacity=*/Keys * 4, Shards);
  std::atomic<uint64_t> Wrong{0};

  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      for (unsigned R = 0; R < Rounds; ++R)
        for (uint64_t I = 0; I < Keys; ++I) {
          uint64_t Key = (I * (T + 1) + R) % Keys;
          if (Memo.memoized(Key, [Key] { return valueOf(Key); }) !=
              valueOf(Key))
            Wrong.fetch_add(1, std::memory_order_relaxed);
        }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  HammerResult Result;
  Result.Lookups = static_cast<uint64_t>(Threads) * Rounds * Keys;
  Result.WrongValues = Wrong.load();
  Result.Counts = Memo.counters();
  Result.Locks = Memo.contention();
  Result.FinalSize = Memo.size();
  Result.CapacityBound = Memo.capacity();
  Result.LookupsPerSecond =
      Seconds > 0.0 ? static_cast<double>(Result.Lookups) / Seconds : 0.0;
  return Result;
}

} // namespace

int main() {
  const unsigned Threads = 4;
  const uint64_t Keys = 256;
  const unsigned Rounds = 200;

  std::printf("memo smoke: %u threads x %u rounds over %llu keys\n", Threads,
              Rounds, static_cast<unsigned long long>(Keys));

  bool Ok = true;
  HammerResult PerShard[2];
  const unsigned ShardConfigs[2] = {1, 16};
  for (unsigned C = 0; C < 2; ++C) {
    HammerResult R = hammer(ShardConfigs[C], Threads, Keys, Rounds);
    PerShard[C] = R;
    std::printf("  shards=%-2u: %.2fM lookups/s, hit rate %.1f%%, "
                "duplicates %llu, contended %llu / %llu acquisitions "
                "(%.2f%%)\n",
                ShardConfigs[C], R.LookupsPerSecond * 1e-6,
                R.Counts.hitRate() * 100.0,
                static_cast<unsigned long long>(R.Counts.Duplicates.load()),
                static_cast<unsigned long long>(R.Locks.Contended.load()),
                static_cast<unsigned long long>(
                    R.Locks.Acquisitions.load()),
                R.Locks.contendedRate() * 100.0);

    Ok &= check(R.WrongValues == 0, "every lookup returned its key's value");
    Ok &= check(R.Counts.total() == R.Lookups,
                "hits + misses + duplicates == lookups");
    Ok &= check(R.Counts.Misses.load() == Keys,
                "each key inserted exactly once (misses == keys)");
    Ok &= check(R.FinalSize <= R.CapacityBound,
                "table size within the capacity bound");
    Ok &= check(R.Locks.Acquisitions.load() ==
                    R.Counts.Hits.load() +
                        2 * (R.Counts.Misses.load() +
                             R.Counts.Duplicates.load()),
                "every hot-path lock acquisition accounted");
  }

  // The striping claim itself. Only meaningful when the single-lock run
  // actually contended (on an unloaded 1-core box both counts can be
  // tiny); 1000 contended acquisitions out of the run's ~205k (4
  // threads x 200 rounds x 256 keys, one acquisition per hit) is far
  // below any host's real contention under this hammer.
  uint64_t ContendedGlobal = PerShard[0].Locks.Contended.load();
  uint64_t ContendedStriped = PerShard[1].Locks.Contended.load();
  if (ContendedGlobal >= 1000)
    Ok &= check(ContendedStriped <= ContendedGlobal,
                "16 shards contend no more than the global lock");
  else
    std::printf("  [--] contention comparison skipped (1-shard run saw "
                "only %llu contended acquisitions)\n",
                static_cast<unsigned long long>(ContendedGlobal));

  if (!Ok) {
    std::printf("memo smoke FAILED\n");
    return 1;
  }
  std::printf("memo smoke passed\n");
  return 0;
}
