//===- optimize_ir.cpp - Optimizing IR the system did not generate ----------===//
//
// The untrusted-module pipeline end to end: externally-authored textual
// IR goes through the import gate (lexer/parser caps -> verifier ->
// sanitizer), and only a module that survives reaches the greedy
// policy. Malformed, hostile or oversized inputs come back as Expected
// errors -- never a crash -- and tally into the robustness counters.
//
//   ./build/example_optimize_ir            # built-in external sample
//   ./build/example_optimize_ir file.mlir  # your own module
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "rl/MlirRl.h"
#include "support/Stats.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace mlirrl;

namespace {

/// A module this repository never generates: a small MLP block written
/// by hand, standing in for IR produced by a different frontend.
const char *ExternalSource = R"(
  // Externally-authored: dense layer + bias-free activation + projection.
  module @external_mlp {
    %x = tensor<128x512xf32>
    %w1 = tensor<512x256xf32>
    %h = linalg.matmul {
      bounds = [128, 256, 512],
      iterators = [parallel, parallel, reduction],
      maps = [(d0, d1, d2) -> (d0, d2),
              (d0, d1, d2) -> (d2, d1),
              (d0, d1, d2) -> (d0, d1)],
      arith = {mul: 1, add: 1}
    } ins(%x, %w1) : tensor<128x256xf32>
    %a = linalg.relu {
      bounds = [128, 256],
      iterators = [parallel, parallel],
      maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
      arith = {max: 1}
    } ins(%h) : tensor<128x256xf32>
    %w2 = tensor<256x64xf32>
    %y = linalg.matmul {
      bounds = [128, 64, 256],
      iterators = [parallel, parallel, reduction],
      maps = [(d0, d1, d2) -> (d0, d2),
              (d0, d1, d2) -> (d2, d1),
              (d0, d1, d2) -> (d0, d1)],
      arith = {mul: 1, add: 1}
    } ins(%a, %w2) : tensor<128x64xf32>
  }
)";

/// Inputs the gate must reject (each once took the process down or
/// would have built an absurd module).
const char *HostileInputs[] = {
    // Out-of-bounds access the verifier catches.
    R"(module { %t = tensor<4x4xf32>
       %v = linalg.relu { bounds = [8, 8],
         iterators = [parallel, parallel],
         maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
         arith = {max: 1} } ins(%t) : tensor<8x8xf32> })",
    // Iteration space far past the sanitizer's cap.
    R"(module { %t = tensor<8388608x8388608xf32>
       %v = linalg.relu { bounds = [8388608, 8388608],
         iterators = [parallel, parallel],
         maps = [(d0, d1) -> (d0, d1), (d0, d1) -> (d0, d1)],
         arith = {max: 1} } ins(%t) : tensor<8388608x8388608xf32> })",
    // Not IR at all.
    "]]]]{{{{ %%% module module <<<>>>",
};

} // namespace

int main(int Argc, char **Argv) {
  std::string Source = ExternalSource;
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "cannot read %s\n", Argv[1]);
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  // -- The gate rejects hostile inputs without crashing. -------------------
  std::printf("import gate on hostile inputs:\n");
  for (const char *Bad : HostileInputs) {
    Expected<Module> Rejected = importModule(Bad);
    std::printf("  %s\n", Rejected
                              ? "UNEXPECTEDLY ACCEPTED"
                              : ("rejected: " + Rejected.getError()).c_str());
    if (Rejected)
      return 1;
  }

  // -- Import the real input. ----------------------------------------------
  Expected<Module> Imported = importModule(Source);
  if (!Imported) {
    std::fprintf(stderr, "import rejected: %s\n", Imported.getError().c_str());
    return 1;
  }
  Module M = *Imported;
  std::printf("\nimported module (%u ops):\n%s\n", M.getNumOps(),
              printModule(M).c_str());

  // -- Optimize a program the system did not generate. ---------------------
  MlirRlOptions Options = MlirRlOptions::laptop();
  Options.Iterations = 10;
  MlirRl Sys(Options);
  std::printf("training a small agent on the imported module (%u "
              "iterations)...\n",
              Options.Iterations);
  std::vector<Module> TrainingSet = {M};
  for (unsigned I = 0; I < Options.Iterations; ++I)
    Sys.trainer().trainIteration(TrainingSet);

  ModuleSchedule Learned;
  double Speedup = Sys.optimize(M, &Learned);
  std::printf("\nlearned schedule:\n%s-> speedup %.2fx over the "
              "unoptimized baseline\n",
              Learned.toString().c_str(), Speedup);

  auto Rejections = CacheStatsRegistry::instance().categoryStats(
      getRobustnessEventName(RobustnessEvent::ImportRejected));
  std::printf("\nrobustness: %llu import rejection(s), 0 crashes\n",
              static_cast<unsigned long long>(Rejections.Misses));
  return 0;
}
