//===- quickstart.cpp - MLIR RL in five minutes ------------------------------===//
//
// The quickstart walks the whole public API on one matmul:
//   1. parse a Linalg module from its textual form;
//   2. apply a hand-written schedule (tile + parallelize + interchange +
//      vectorize) and "execute" it on the machine model;
//   3. let random search explore the same action space;
//   4. train a small RL agent and let it optimize the module.
//
// Build: cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "baselines/RandomSearch.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "perf/Runner.h"
#include "rl/MlirRl.h"

#include <cstdio>

using namespace mlirrl;

int main() {
  // -- 1. Parse the paper's Listing 1 matmul. ------------------------------
  const char *Source = R"(
    module @listing1 {
      %A = tensor<256x1024xf32>
      %B = tensor<1024x512xf32>
      %C = linalg.matmul {
        bounds = [256, 512, 1024],
        iterators = [parallel, parallel, reduction],
        maps = [(d0, d1, d2) -> (d0, d2),
                (d0, d1, d2) -> (d2, d1),
                (d0, d1, d2) -> (d0, d1)],
        arith = {mul: 1, add: 1}
      } ins(%A, %B) : tensor<256x512xf32>
    }
  )";
  Expected<Module> Parsed = parseModule(Source);
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.getError().c_str());
    return 1;
  }
  Module M = *Parsed;
  std::string Error;
  if (!verifyModule(M, Error)) {
    std::fprintf(stderr, "verifier error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("parsed module:\n%s\n", printModule(M).c_str());

  Runner Run(MachineModel::xeonE5_2680v4());
  double Baseline = Run.timeBaseline(M);
  std::printf("baseline (unoptimized, single-thread scalar): %.3f ms\n\n",
              Baseline * 1e3);

  // -- 2. A hand-written schedule. ------------------------------------------
  ModuleSchedule Hand;
  OpSchedule S;
  // Tile (8, 8) and parallelize the tile loops across cores...
  S.Transforms.push_back(Transformation::tiledParallelization({8, 8, 0}));
  // ...move the reduction out of the innermost position...
  S.Transforms.push_back(Transformation::interchange({2, 0, 1}));
  // ...and vectorize the innermost (now a parallel dim of trip 8).
  S.Transforms.push_back(Transformation::vectorization());
  Hand.OpSchedules[0] = S;
  std::printf("hand schedule %s -> speedup %.1fx\n", S.toString().c_str(),
              Run.speedup(M, Hand));

  // -- 3. Random search over the environment's action space. ----------------
  RandomSearchResult Best =
      randomSearch(EnvConfig::laptop(), Run, M, /*Episodes=*/50);
  std::printf("random search (50 episodes) -> speedup %.1fx\n",
              Best.Speedup);

  // -- 4. Train an agent. ----------------------------------------------------
  MlirRlOptions Options = MlirRlOptions::laptop();
  Options.Iterations = 40;
  MlirRl Sys(Options);
  std::printf("\ntraining a small PPO agent (%u iterations)...\n",
              Options.Iterations);
  Sys.train({M}, [](unsigned I, const PpoIterationStats &Stats) {
    if (I % 10 == 0)
      std::printf("  iteration %3u: mean speedup %.2fx, entropy %.2f\n", I,
                  Stats.MeanSpeedup, Stats.Entropy);
  });
  ModuleSchedule Learned;
  double Speedup = Sys.optimize(M, &Learned);
  std::printf("\nlearned schedule:\n%s-> speedup %.1fx\n",
              Learned.toString().c_str(), Speedup);
  return 0;
}
