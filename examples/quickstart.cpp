//===- quickstart.cpp - MLIR RL in five minutes ------------------------------===//
//
// The quickstart walks the whole public API on one matmul:
//   1. parse a Linalg module from its textual form;
//   2. apply a hand-written schedule (tile + parallelize + interchange +
//      vectorize) and "execute" it on the machine model;
//   3. let random search explore the same action space;
//   4. train a small RL agent and let it optimize the module.
//
// Build: cmake --build build && ./build/example_quickstart
//
// Training draws its samples from the sharded dataset stream by default
// (datasets/ShardedDataset: one shard resident, bitwise mid-epoch
// resume); --fixed-dataset trains on just the parsed matmul instead,
// the pre-streaming behavior.
//
// Training is checkpointed every 10 iterations (atomic writes,
// keep-last-2 rotation). Kill it mid-run and restart with
//   ./build/example_quickstart --resume [--checkpoint-dir DIR]
// and it continues from the newest checkpoint, bitwise-identically to
// an uninterrupted run (including the stream cursor).
//
//===----------------------------------------------------------------------===//

#include "baselines/RandomSearch.h"
#include "datasets/Dataset.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "perf/Runner.h"
#include "rl/Checkpoint.h"
#include "rl/MlirRl.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace mlirrl;

int main(int Argc, char **Argv) {
  bool Resume = false;
  bool FixedDataset = false;
  std::string CheckpointDir = "quickstart-ckpt";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--resume") == 0) {
      Resume = true;
    } else if (std::strcmp(Argv[I], "--fixed-dataset") == 0) {
      FixedDataset = true;
    } else if (std::strcmp(Argv[I], "--checkpoint-dir") == 0 &&
               I + 1 < Argc) {
      CheckpointDir = Argv[++I];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--resume] [--fixed-dataset] "
                   "[--checkpoint-dir DIR]\n",
                   Argv[0]);
      return 2;
    }
  }
  // -- 1. Parse the paper's Listing 1 matmul. ------------------------------
  const char *Source = R"(
    module @listing1 {
      %A = tensor<256x1024xf32>
      %B = tensor<1024x512xf32>
      %C = linalg.matmul {
        bounds = [256, 512, 1024],
        iterators = [parallel, parallel, reduction],
        maps = [(d0, d1, d2) -> (d0, d2),
                (d0, d1, d2) -> (d2, d1),
                (d0, d1, d2) -> (d0, d1)],
        arith = {mul: 1, add: 1}
      } ins(%A, %B) : tensor<256x512xf32>
    }
  )";
  Expected<Module> Parsed = parseModule(Source);
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.getError().c_str());
    return 1;
  }
  Module M = *Parsed;
  std::string Error;
  if (!verifyModule(M, Error)) {
    std::fprintf(stderr, "verifier error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("parsed module:\n%s\n", printModule(M).c_str());

  Runner Run(MachineModel::xeonE5_2680v4());
  double Baseline = Run.timeBaseline(M);
  std::printf("baseline (unoptimized, single-thread scalar): %.3f ms\n\n",
              Baseline * 1e3);

  // -- 2. A hand-written schedule. ------------------------------------------
  ModuleSchedule Hand;
  OpSchedule S;
  // Tile (8, 8) and parallelize the tile loops across cores...
  S.Transforms.push_back(Transformation::tiledParallelization({8, 8, 0}));
  // ...move the reduction out of the innermost position...
  S.Transforms.push_back(Transformation::interchange({2, 0, 1}));
  // ...and vectorize the innermost (now a parallel dim of trip 8).
  S.Transforms.push_back(Transformation::vectorization());
  Hand.OpSchedules[0] = S;
  std::printf("hand schedule %s -> speedup %.1fx\n", S.toString().c_str(),
              Run.speedup(M, Hand));

  // -- 3. Random search over the environment's action space. ----------------
  RandomSearchResult Best =
      randomSearch(EnvConfig::laptop(), Run, M, /*Episodes=*/50);
  std::printf("random search (50 episodes) -> speedup %.1fx\n",
              Best.Speedup);

  // -- 4. Train an agent (checkpointed; --resume continues a run). ----------
  // The default training draws from the sharded dataset stream (the
  // full mixed generator set, one shard resident at a time, cursor
  // checkpointed for bitwise mid-epoch resume); --fixed-dataset keeps
  // the single-module training of the walkthrough above.
  MlirRlOptions Options = MlirRlOptions::laptop();
  Options.Iterations = 40;
  MlirRl Sys(Options);
  ShardedDataset Stream(DatasetConfig::scaled(0.02), /*ShardSize=*/16);
  ShardedDataset *StreamPtr = FixedDataset ? nullptr : &Stream;
  CheckpointManager Checkpoints({CheckpointDir, "quickstart",
                                 /*KeepLast=*/2});
  if (Resume) {
    Expected<bool> Loaded = Checkpoints.loadLatest(Sys.trainer(), StreamPtr);
    if (!Loaded) {
      std::fprintf(stderr, "resume failed: %s\n", Loaded.getError().c_str());
      return 1;
    }
    if (*Loaded)
      std::printf("\nresumed from %s at iteration %llu\n",
                  CheckpointDir.c_str(),
                  static_cast<unsigned long long>(
                      Sys.trainer().iterationsDone()));
    else
      std::printf("\nno checkpoint in %s, starting fresh\n",
                  CheckpointDir.c_str());
  }
  std::printf("\ntraining a small PPO agent (%u iterations, %s)...\n",
              Options.Iterations,
              FixedDataset ? "fixed single-module dataset"
                           : "sharded dataset stream");
  std::vector<Module> TrainingSet = {M};
  for (unsigned I = static_cast<unsigned>(Sys.trainer().iterationsDone());
       I < Options.Iterations; ++I) {
    PpoIterationStats Stats = StreamPtr
                                  ? Sys.trainer().trainIteration(*StreamPtr)
                                  : Sys.trainer().trainIteration(TrainingSet);
    if (I % 10 == 0)
      std::printf("  iteration %3u: mean speedup %.2fx, entropy %.2f\n", I,
                  Stats.MeanSpeedup, Stats.Entropy);
    if ((I + 1) % 10 == 0) {
      Expected<std::string> Saved = Checkpoints.save(Sys.trainer(), StreamPtr);
      if (!Saved)
        std::fprintf(stderr, "checkpoint failed: %s\n",
                     Saved.getError().c_str());
    }
  }
  ModuleSchedule Learned;
  double Speedup = Sys.optimize(M, &Learned);
  std::printf("\nlearned schedule:\n%s-> speedup %.1fx\n",
              Learned.toString().c_str(), Speedup);
  return 0;
}
