//===- gemm_smoke.cpp - CI smoke check for the GEMM kernel dispatch ---------===//
//
// One-second guard run by scripts/ci.sh: cross-checks the dispatched
// GEMM kernel (Auto, i.e. the SIMD micro-kernel where the build has
// one) against the portable scalar fallback at runtime, on the actual
// machine CI runs on, and fails on the first bitwise mismatch:
//
//   * double NN/NT/TN must match the scalar kernel bit-for-bit (the
//     training determinism contract rides on this);
//   * float NN/NT/TN must match the scalar float kernel bit-for-bit
//     (the f32 inference path's scalar/SIMD parity);
//   * the packed macro-kernel path (packing forced On) must match the
//     streaming kernels bit-for-bit under both dispatch modes --
//     packing is pure layout, and this runs in the --sanitize CI pass
//     too, where ASan additionally vets the pack-arena scratch for
//     leaks and overruns;
//   * shapes cover the MR/vector-length tails and the blocked panels.
//
//===----------------------------------------------------------------------===//

#include "nn/Gemm.h"
#include "support/Rng.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace mlirrl;
using namespace mlirrl::nn;

namespace {

struct Shape {
  unsigned M, K, N;
};

// Ones, primes, block-boundary straddlers: every micro-kernel tail.
const Shape Shapes[] = {{1, 1, 1},    {1, 31, 1},    {4, 8, 16},
                        {5, 9, 7},    {13, 31, 17},  {3, 257, 13},
                        {67, 259, 33}, {130, 100, 300}};

bool Failed = false;

void check(bool Ok, const char *What, const Shape &S) {
  if (!Ok) {
    std::printf("  [FAIL] %s M=%u K=%u N=%u\n", What, S.M, S.K, S.N);
    Failed = true;
  }
}

template <typename T> void fill(Rng &R, std::vector<T> &V) {
  for (T &X : V)
    X = static_cast<T>(R.nextDouble(-1.0, 1.0));
}

/// Runs every kernel flavor for one element type under both dispatch
/// modes and both packing modes, and compares the raw bytes against the
/// scalar streaming reference.
template <typename T> void crossCheck(const char *Dtype) {
  Rng R(911);
  for (const Shape &S : Shapes) {
    std::vector<T> Ann(S.M * S.K), Bnn(S.K * S.N);
    std::vector<T> Ant(S.M * S.K), Bnt(S.N * S.K);
    std::vector<T> Atn(S.K * S.M), Btn(S.K * S.N);
    fill(R, Ann), fill(R, Bnn);
    fill(R, Ant), fill(R, Bnt);
    fill(R, Atn), fill(R, Btn);

    // Pre-filled C: all kernels must share the accumulate contract.
    std::vector<T> Cs(S.M * S.N, T(0.125));
    auto runAll = [&](std::vector<T> &C) {
      gemmAccNN(S.M, S.N, S.K, Ann.data(), S.K, Bnn.data(), S.N, C.data(),
                S.N);
      gemmAccNT(S.M, S.N, S.K, Ant.data(), S.K, Bnt.data(), S.K, C.data(),
                S.N);
      gemmAccTN(S.M, S.N, S.K, Atn.data(), S.M, Btn.data(), S.N, C.data(),
                S.N);
    };
    setGemmKernel(GemmKernel::Scalar);
    setGemmPacking(GemmPacking::Off);
    runAll(Cs);

    struct Mode {
      GemmKernel Kind;
      GemmPacking Pack;
      const char *Name;
    };
    const Mode Modes[] = {{GemmKernel::Auto, GemmPacking::Off, "auto"},
                          {GemmKernel::Scalar, GemmPacking::On,
                           "scalar packed"},
                          {GemmKernel::Auto, GemmPacking::On, "auto packed"}};
    for (const Mode &M : Modes) {
      std::vector<T> Cv(S.M * S.N, T(0.125));
      setGemmKernel(M.Kind);
      setGemmPacking(M.Pack);
      runAll(Cv);
      char Label[64];
      std::snprintf(Label, sizeof(Label), "%s %s", Dtype, M.Name);
      check(std::memcmp(Cs.data(), Cv.data(), Cs.size() * sizeof(T)) == 0,
            Label, S);
    }
  }
}

} // namespace

int main() {
  std::printf("gemm_smoke: dispatched kernel vs scalar fallback\n");
  std::printf("  simd=%s lanes(f64)=%u lanes(f32)=%u\n",
              gemmSimdAvailable() ? "yes" : "no",
              gemmSimdLanes(sizeof(double)), gemmSimdLanes(sizeof(float)));
  crossCheck<double>("double");
  crossCheck<float>("float");
  setGemmKernel(GemmKernel::Auto);
  setGemmPacking(GemmPacking::Auto);
  if (Failed) {
    std::printf("gemm_smoke: FAIL (dispatched kernel diverges from scalar)\n");
    return 1;
  }
  std::printf(
      "gemm_smoke: OK (all kernel/packing modes bitwise-equal to scalar)\n");
  return 0;
}
