//===- perf_smoke.cpp - CI smoke check for the incremental fast path --------===//
//
// One-repetition guard run by scripts/ci.sh: drives Immediate-reward
// episodes over multi-op modules through the default (incremental)
// environment path and fails if the ScheduleState machinery silently
// regressed to from-scratch behavior:
//
//   * the per-nest op memo ("evaluator.op_memo") must see lookups and,
//     across episodes sharing ops, hits;
//   * the incremental repricer ("state.price_reuse") must reuse cached
//     per-op prices (clean ops must not be re-priced);
//   * incremental stepping must actually run: nests materialized per
//     episode must stay far below ops x steps (the from-scratch count);
//   * the final incremental price must equal the from-scratch oracle
//     bitwise;
//   * the packed-GEMM scratch arena ("gemm.pack_arena") must reach its
//     steady state: repeated packed calls on one thread reuse the block
//     (hits) instead of re-allocating (misses) -- the no-per-call-
//     malloc contract the packed macro-kernel layer makes.
//
//===----------------------------------------------------------------------===//

#include "datasets/Sequences.h"
#include "env/Environment.h"
#include "nn/Gemm.h"
#include "perf/Evaluator.h"
#include "support/Rng.h"
#include "support/Stats.h"

#include <cstdio>
#include <vector>

using namespace mlirrl;

namespace {

bool check(bool Ok, const char *What) {
  std::printf("  [%s] %s\n", Ok ? "ok" : "FAIL", What);
  return Ok;
}

} // namespace

int main() {
  EnvConfig Config = EnvConfig::laptop();
  Config.Reward = RewardMode::Immediate;
  CostModelEvaluator Model(MachineModel::xeonE5_2680v4());
  CachingEvaluator Eval(Model);
  CacheStatsRegistry::instance().resetAll();

  Rng ModuleRng(5);
  Module M = generateOperatorSequence(ModuleRng);
  while (M.getNumOps() < 3)
    M = generateOperatorSequence(ModuleRng);

  uint64_t Steps = 0, Materialized = 0;
  ModuleSchedule LastSchedule;
  const unsigned Episodes = 3;
  for (unsigned E = 0; E < Episodes; ++E) {
    Environment Env(Config, Eval, M);
    Rng ActionRng(Rng::deriveSeed(99, E));
    while (!Env.isDone()) {
      const Observation &Obs = Env.observe();
      AgentAction A;
      if (Obs.InPointerSequence) {
        A.Kind = TransformKind::Interchange;
        A.PointerChoice = static_cast<unsigned>(
            ActionRng.sampleWeighted(Obs.InterchangeMask));
      } else {
        A.Kind = static_cast<TransformKind>(
            ActionRng.sampleWeighted(Obs.TransformMask));
        A.TileSizeIdx.resize(Config.MaxLoops);
        for (unsigned &Idx : A.TileSizeIdx)
          Idx = static_cast<unsigned>(
              ActionRng.nextBounded(Config.NumTileSizes));
      }
      Env.step(A);
      ++Steps;
    }
    Materialized += Env.getState().counters().NestMaterializations;
    LastSchedule = Env.getSchedule();
  }

  CacheStatsRegistry::CategoryStats OpMemo =
      CacheStatsRegistry::instance().categoryStats("evaluator.op_memo");
  CacheStatsRegistry::CategoryStats Reuse =
      CacheStatsRegistry::instance().categoryStats("state.price_reuse");

  std::printf("perf smoke: %llu steps over %u episodes on a %u-op module\n",
              static_cast<unsigned long long>(Steps), Episodes,
              M.getNumOps());
  std::printf("  op memo: %llu lookups, hit rate %.0f%%, %llu duplicates\n",
              static_cast<unsigned long long>(OpMemo.total()),
              OpMemo.hitRate() * 100.0,
              static_cast<unsigned long long>(OpMemo.Duplicates));
  std::printf("  price reuse: %llu lookups, hit rate %.0f%%\n",
              static_cast<unsigned long long>(Reuse.total()),
              Reuse.hitRate() * 100.0);
  std::printf("  nests materialized: %llu (from-scratch would be ~%llu)\n",
              static_cast<unsigned long long>(Materialized),
              static_cast<unsigned long long>(Steps * M.getNumOps()));

  bool Ok = true;
  Ok &= check(OpMemo.total() > 0, "per-nest op memo is consulted");
  Ok &= check(OpMemo.Hits > 0, "per-nest op memo hit rate > 0");
  Ok &= check(Reuse.Hits > 0, "clean-op prices are reused across steps");
  Ok &= check(Materialized < Steps * M.getNumOps(),
              "incremental stepping materializes less than from-scratch");

  // The incremental price of the last episode's schedule must equal the
  // from-scratch oracle bitwise.
  CostModelEvaluator Oracle(MachineModel::xeonE5_2680v4());
  ScheduleState Replay(M);
  for (const auto &[OpIdx, OpSched] : LastSchedule.OpSchedules) {
    unsigned Fused = 0;
    for (const Transformation &T : OpSched.Transforms) {
      int Producer = -1;
      if (T.Kind == TransformKind::TiledFusion &&
          Fused < OpSched.FusedProducers.size())
        Producer = static_cast<int>(OpSched.FusedProducers[Fused++]);
      Replay.apply(OpIdx, T, Producer);
    }
  }
  double Incremental = Oracle.timeState(Replay);
  double FromScratch = Oracle.timeModule(M, LastSchedule);
  Ok &= check(Incremental == FromScratch,
              "incremental price == from-scratch price (bitwise)");

  // Packed-GEMM scratch steady state: force the packed path and issue
  // several calls on this thread. The first may grow the arena (one
  // miss); every later call must reuse it (hits only).
  {
    CacheStatsRegistry::CategoryStats Before =
        CacheStatsRegistry::instance().categoryStats("gemm.pack_arena");
    nn::setGemmPacking(nn::GemmPacking::On);
    const unsigned N = 96;
    std::vector<double> A(N * N, 0.5), B(N * N, 0.25), C(N * N, 0.0);
    const unsigned Calls = 4;
    for (unsigned I = 0; I < Calls; ++I)
      nn::gemmAccNN(N, N, N, A.data(), N, B.data(), N, C.data(), N);
    nn::setGemmPacking(nn::GemmPacking::Auto);
    CacheStatsRegistry::CategoryStats After =
        CacheStatsRegistry::instance().categoryStats("gemm.pack_arena");
    std::printf("  pack arena: +%llu reuses, +%llu allocations, %zu bytes\n",
                static_cast<unsigned long long>(After.Hits - Before.Hits),
                static_cast<unsigned long long>(After.Misses - Before.Misses),
                nn::gemmPackScratchCapacity());
    Ok &= check(After.Misses - Before.Misses <= 1,
                "pack arena allocates at most once on this thread");
    Ok &= check(After.Hits - Before.Hits >= Calls - 1,
                "packed calls after the first reuse the arena");
  }

  if (!Ok) {
    std::printf("perf smoke FAILED\n");
    return 1;
  }
  std::printf("perf smoke passed\n");
  return 0;
}
