//===- dnn_pipeline.cpp - Optimizing a neural-network pipeline ---------------===//
//
// The paper's first motivating domain: deep-learning workloads. Trains an
// agent on single operators + operator sequences, then optimizes a
// ResNet-18 imported "from PyTorch" (our model builder mirrors what
// Torch-MLIR emits) and compares against the PyTorch library oracles.
//
//===----------------------------------------------------------------------===//

#include "baselines/LibraryOracle.h"
#include "datasets/Dataset.h"
#include "datasets/Models.h"
#include "rl/MlirRl.h"

#include <cstdio>

using namespace mlirrl;

int main() {
  // Train on operators and 5-op sequences (Sec. VI-A, scaled down).
  Rng R(3);
  std::vector<Module> TrainSet =
      generateDnnOperatorDataset(R, DnnDatasetCounts::scaled(0.05));
  for (Module &M : generateSequenceDataset(R, 20))
    TrainSet.push_back(std::move(M));

  MlirRlOptions Options = MlirRlOptions::laptop();
  Options.Iterations = 80;
  MlirRl Sys(Options);
  std::printf("training on %zu samples...\n", TrainSet.size());
  Sys.train(TrainSet, [](unsigned I, const PpoIterationStats &S) {
    if (I % 20 == 0)
      std::printf("  iteration %3u: mean speedup %.2fx\n", I, S.MeanSpeedup);
  });

  Module ResNet = makeResNet18();
  std::printf("\nResNet-18: %u ops, %.2f GFLOP\n", ResNet.getNumOps(),
              static_cast<double>(ResNet.getTotalFlops()) * 1e-9);

  double Baseline = Sys.runner().timeBaseline(ResNet);
  double RlSpeedup = Sys.optimize(ResNet);

  MachineModel Machine = MachineModel::xeonE5_2680v4();
  LibraryOracle Torch(Machine, LibraryProfile::pytorchEager());
  LibraryOracle Jit(Machine, LibraryProfile::pytorchCompile());

  std::printf("\nspeedups over unoptimized MLIR (paper Table III row: "
              "25.43 / 374.77 / 411.26):\n");
  std::printf("  MLIR RL           %8.2fx\n", RlSpeedup);
  std::printf("  PyTorch           %8.2fx\n",
              Baseline / Torch.timeModule(ResNet));
  std::printf("  PyTorch compiler  %8.2fx\n",
              Baseline / Jit.timeModule(ResNet));
  std::printf("\nThe frameworks win on the conv/matmul bottlenecks "
              "(register-tiled library kernels the action space cannot "
              "express), as in the paper.\n");
  return 0;
}
