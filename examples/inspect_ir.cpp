//===- inspect_ir.cpp - The compiler-infrastructure view ----------------------===//
//
// Shows the substrate as a compiler developer sees it: parse textual IR,
// verify it, apply transformations step by step, and dump the resulting
// loop-nest structure and its performance estimate after each step —
// the workflow an environment designer uses when growing the action
// space.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "perf/CostModel.h"
#include "transforms/Apply.h"

#include <cstdio>

using namespace mlirrl;

int main() {
  const char *Source = R"(
    // A conv-like stencil over a produced feature map.
    module @stencil {
      %in = tensor<1x8x66x66xf32>
      %act = linalg.relu {
        bounds = [1, 8, 66, 66],
        iterators = [parallel, parallel, parallel, parallel],
        maps = [(d0, d1, d2, d3) -> (d0, d1, d2, d3),
                (d0, d1, d2, d3) -> (d0, d1, d2, d3)],
        arith = {max: 1}
      } ins(%in) : tensor<1x8x66x66xf32>
      %ker = tensor<16x8x3x3xf32>
      %out = linalg.conv_2d {
        bounds = [1, 16, 64, 64, 8, 3, 3],
        iterators = [parallel, parallel, parallel, parallel,
                     reduction, reduction, reduction],
        maps = [(d0, d1, d2, d3, d4, d5, d6) -> (d0, d4, d2 + d5, d3 + d6),
                (d0, d1, d2, d3, d4, d5, d6) -> (d1, d4, d5, d6),
                (d0, d1, d2, d3, d4, d5, d6) -> (d0, d1, d2, d3)],
        arith = {mul: 1, add: 1}
      } ins(%act, %ker) : tensor<1x16x64x64xf32>
    }
  )";

  Expected<Module> Parsed = parseModule(Source);
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.getError().c_str());
    return 1;
  }
  Module M = *Parsed;
  std::string Error;
  if (!verifyModule(M, Error)) {
    std::fprintf(stderr, "verifier error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%s\n", printModule(M).c_str());

  CostModel Model(MachineModel::xeonE5_2680v4());
  auto Report = [&](const char *Title, const ModuleSchedule &Sched) {
    std::vector<LoopNest> Nests = materializeModule(M, Sched);
    double Total = Model.estimateModule(Nests);
    std::printf("--- %s: %.3f ms ---\n", Title, Total * 1e3);
    for (const LoopNest &Nest : Nests)
      std::printf("%s", Nest.toString().c_str());
    std::printf("\n");
  };

  Report("baseline", ModuleSchedule());

  // Step 1: tile + parallelize the conv.
  ModuleSchedule Step1;
  OpSchedule Conv;
  Conv.Transforms.push_back(
      Transformation::tiledParallelization({0, 4, 16, 16, 0, 0, 0}));
  Step1.OpSchedules[1] = Conv;
  Report("conv tiled + parallelized", Step1);

  // Step 2: fuse the relu producer into the conv tiles (with halo).
  ModuleSchedule Step2;
  OpSchedule Fused = Conv;
  Fused.Transforms.push_back(
      Transformation::tiledFusion({0, 0, 8, 8, 0, 0, 0}));
  Fused.FusedProducers.push_back(0);
  Step2.OpSchedules[1] = Fused;
  Step2.FusedAway.push_back(0);
  Report("relu fused at conv tile granularity", Step2);

  // Step 3: vectorize the innermost loop.
  ModuleSchedule Step3 = Step2;
  Step3.OpSchedules[1].Transforms.push_back(
      Transformation::interchange({0, 1, 2, 4, 5, 6, 3}));
  Step3.OpSchedules[1].Transforms.push_back(Transformation::vectorization());
  Report("ow moved innermost + vectorized", Step3);
  return 0;
}
