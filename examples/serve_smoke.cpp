//===- serve_smoke.cpp - End-to-end schedule-server smoke -----------------===//
//
// The serving pipeline end to end, at CI scale: train a tiny policy for
// one iteration, freeze it to a checkpoint, load it into a
// ScheduleServer, and push requests through every edge the server
// guards -- well-formed modules (served), a malformed module (rejected
// at the import gate), concurrent clients (answers must be
// bitwise-identical to the sequential ones), and an over-capacity burst
// (clean immediate rejection). Exits nonzero on any violated
// invariant. scripts/ci.sh runs it in the normal and --sanitize passes:
//
//   ./build/example_serve_smoke --requests 8 --ckpt build/serve_smoke.ckpt
//
//===----------------------------------------------------------------------===//

#include "datasets/DnnOps.h"
#include "ir/Printer.h"
#include "rl/Checkpoint.h"
#include "rl/MlirRl.h"
#include "serve/Server.h"
#include "support/Args.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

using namespace mlirrl;

namespace {

unsigned Failures = 0;

void check(bool Ok, const char *What) {
  if (Ok) {
    std::printf("  ok: %s\n", What);
  } else {
    std::printf("  FAIL: %s\n", What);
    ++Failures;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Requests = 8;
  uint64_t Seed = 42;
  std::string CkptPath = "serve_smoke.ckpt";

  for (int I = 1; I < Argc; ++I) {
    auto Value = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (!std::strcmp(Argv[I], "--requests"))
      Requests = static_cast<unsigned>(parseUnsignedArg(
          "--requests", Value(), std::numeric_limits<unsigned>::max()));
    else if (!std::strcmp(Argv[I], "--seed"))
      Seed = parseUnsignedArg("--seed", Value());
    else if (!std::strcmp(Argv[I], "--ckpt"))
      CkptPath = Value();
    else {
      std::fprintf(stderr, "usage: %s [--requests N] [--seed S] [--ckpt PATH]\n",
                   Argv[0]);
      return 2;
    }
  }

  // A tiny frozen policy: one laptop-scale training iteration.
  MlirRlOptions Train = MlirRlOptions::laptop();
  Train.Net.LstmHidden = 16;
  Train.Net.BackboneHidden = 16;
  Train.Ppo.SamplesPerIteration = 4;
  Train.Iterations = 1;
  Train.Seed = Seed;
  std::printf("serve_smoke: training 1 iteration...\n");
  {
    MlirRl Sys(Train);
    std::vector<Module> Data = {makeMatmulModule(96, 96, 96)};
    Sys.train(Data);
    Expected<bool> Saved = saveCheckpoint(Sys.trainer(), CkptPath);
    if (!Saved) {
      std::fprintf(stderr, "error: cannot save checkpoint: %s\n",
                   Saved.getError().c_str());
      return 1;
    }
  }

  ServeOptions Opts;
  Opts.Env = Train.Env;
  Opts.Net = Train.Net;
  Opts.Ppo = Train.Ppo;
  Opts.Seed = Seed + 1;
  Opts.BatchWidth = 4;
  Opts.QueueCapacity = 4;
  ScheduleServer Server(Opts);

  Expected<bool> Loaded = Server.loadPolicy(CkptPath);
  check(Loaded.hasValue(), "checkpoint loads into the server");
  if (!Loaded)
    std::fprintf(stderr, "  (%s)\n", Loaded.getError().c_str());

  // N requests, one of them malformed.
  std::vector<std::string> Texts;
  for (unsigned I = 0; I < Requests; ++I) {
    switch (I % 3) {
    case 0:
      Texts.push_back(printModule(makeMatmulModule(96, 96, 96)));
      break;
    case 1:
      Texts.push_back(printModule(makeReluModule({512, 256})));
      break;
    default:
      Texts.push_back(printModule(makeMatmulModule(64, 128, 64)));
      break;
    }
  }
  std::string Malformed = "module @broken { %A = tensor<oops> ";

  unsigned ServedOk = 0;
  for (const std::string &T : Texts) {
    Expected<ServeResponse> R = Server.optimize(T);
    if (R && R->Speedup > 0.0)
      ++ServedOk;
    else if (!R)
      std::fprintf(stderr, "  (unexpected rejection: %s)\n",
                   R.getError().c_str());
  }
  check(ServedOk == Requests, "all well-formed requests served");

  Expected<ServeResponse> Bad = Server.optimize(Malformed);
  check(!Bad.hasValue(), "malformed module rejected at the import gate");

  // Concurrency determinism: the same module from two client threads
  // must answer bitwise-identically to the sequential reference.
  Expected<ServeResponse> Ref = Server.optimize(Texts[0]);
  check(Ref.hasValue(), "reference request served");
  bool ConcurrentMatch = true;
  {
    std::vector<std::thread> Clients;
    std::vector<Expected<ServeResponse>> Out(
        4, makeError<ServeResponse>("unset"));
    for (unsigned T = 0; T < Out.size(); ++T)
      Clients.emplace_back(
          [&, T] { Out[T] = Server.optimize(Texts[0]); });
    for (std::thread &C : Clients)
      C.join();
    for (const Expected<ServeResponse> &R : Out)
      if (!R || !Ref ||
          R->Schedule.toString() != Ref->Schedule.toString() ||
          R->Speedup != Ref->Speedup)
        ConcurrentMatch = false;
  }
  check(ConcurrentMatch, "concurrent answers bitwise-match sequential");

  // Over-capacity burst against a held worker: the overflowing
  // submission must reject immediately instead of hanging.
  Server.pauseWorker();
  std::vector<std::future<Expected<ServeResponse>>> Held;
  for (unsigned I = 0; I < Opts.QueueCapacity; ++I)
    Held.push_back(Server.submitAsync(Texts[I % Texts.size()]));
  auto Overflow = Server.submitAsync(Texts[0]);
  bool OverflowRejected =
      Overflow.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready &&
      !Overflow.get().hasValue();
  Server.resumeWorker();
  check(OverflowRejected, "over-capacity submission rejected immediately");
  bool HeldServed = true;
  for (auto &F : Held)
    HeldServed = HeldServed && F.get().hasValue();
  check(HeldServed, "queued requests served after resume");

  ServeStats S = Server.stats();
  std::printf("serve_smoke: served %llu in %llu batches; rejected "
              "%llu import / %llu queue-full / %llu shutdown; memo hit "
              "rates program %.2f op %.2f\n",
              static_cast<unsigned long long>(S.Served),
              static_cast<unsigned long long>(S.Batches),
              static_cast<unsigned long long>(S.RejectedImport),
              static_cast<unsigned long long>(S.RejectedQueueFull),
              static_cast<unsigned long long>(S.RejectedShutdown),
              S.ProgramMemoHitRate, S.OpMemoHitRate);

  std::remove(CkptPath.c_str());
  if (Failures) {
    std::printf("serve_smoke: %u FAILURES\n", Failures);
    return 1;
  }
  std::printf("serve_smoke: clean\n");
  return 0;
}
