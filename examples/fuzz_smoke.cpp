//===- fuzz_smoke.cpp - CI-scale fuzzing with crash capture ---------------===//
//
// The fuzz engine at CI scale. scripts/ci.sh runs:
//
//   ./build/example_fuzz_smoke --inputs 10000 --episodes 200 \
//       --corpus tests/fuzz/corpus
//
// Before each parser input runs, its text is persisted to
// <corpus>/.inflight.mlir; if the process dies on it (signal, abort),
// the file survives and ci.sh promotes it to a checked-in crash case.
// Invariant violations the engine catches itself are written as
// crash-<n>.mlir next to it and the run exits nonzero; on a clean run
// the inflight file is removed.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"
#include "support/Args.h"

#include <cstdio>
#include <limits>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

using namespace mlirrl;
namespace fs = std::filesystem;

int main(int Argc, char **Argv) {
  FuzzOptions Opts;
  Opts.ParserInputs = 10000;
  Opts.Episodes = 200;
  fs::path CorpusDir;

  for (int I = 1; I < Argc; ++I) {
    auto Value = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (!std::strcmp(Argv[I], "--inputs"))
      Opts.ParserInputs = static_cast<unsigned>(parseUnsignedArg(
          "--inputs", Value(), std::numeric_limits<unsigned>::max()));
    else if (!std::strcmp(Argv[I], "--episodes"))
      Opts.Episodes = static_cast<unsigned>(parseUnsignedArg(
          "--episodes", Value(), std::numeric_limits<unsigned>::max()));
    else if (!std::strcmp(Argv[I], "--seed"))
      Opts.Seed = parseUnsignedArg("--seed", Value());
    else if (!std::strcmp(Argv[I], "--corpus"))
      CorpusDir = Value();
    else {
      std::fprintf(stderr,
                   "usage: %s [--inputs N] [--episodes N] [--seed S] "
                   "[--corpus DIR]\n",
                   Argv[0]);
      return 2;
    }
  }

  fs::path Inflight;
  if (!CorpusDir.empty()) {
    std::error_code Ec;
    fs::create_directories(CorpusDir, Ec);
    Inflight = CorpusDir / ".inflight.mlir";
  }

  std::printf("fuzz: seed %llu, %u parser inputs, %u episodes\n",
              static_cast<unsigned long long>(Opts.Seed), Opts.ParserInputs,
              Opts.Episodes);

  auto Hook = [&](unsigned Index, const std::string &Input) {
    if (Inflight.empty())
      return;
    std::ofstream Out(Inflight, std::ios::trunc);
    Out << "// seed " << Opts.Seed << " index " << Index << "\n" << Input;
  };
  FuzzStats Stats = runFuzzCampaign(Opts, Hook);

  std::printf("fuzz: %s\n", Stats.summary().c_str());
  if (!Stats.ok()) {
    unsigned N = 0;
    for (const FuzzViolation &V : Stats.Violations) {
      std::fprintf(stderr, "VIOLATION [%s]: %s\n", V.Stage.c_str(),
                   V.Message.c_str());
      if (!CorpusDir.empty()) {
        fs::path Crash =
            CorpusDir / ("crash-" + std::to_string(N++) + ".mlir");
        std::ofstream Out(Crash, std::ios::trunc);
        Out << "// " << V.Stage << ": " << V.Message << "\n" << V.Input;
        std::fprintf(stderr, "  input saved to %s\n", Crash.c_str());
      }
    }
    return 1;
  }

  if (!Inflight.empty()) {
    std::error_code Ec;
    fs::remove(Inflight, Ec);
  }
  std::printf("fuzz: clean\n");
  return 0;
}
