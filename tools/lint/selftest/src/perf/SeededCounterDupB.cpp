// Seeded violation (2/2): ...and registered again here -- counter-name-once
// must flag both sites.
namespace mlirrl {
struct R {
  static R &instance();
  int &named(const char *);
};
int &seededCounterB() {
  return R::instance().named("selftest.duplicate_category");
}
} // namespace mlirrl
