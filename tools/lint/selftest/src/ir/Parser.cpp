// Seeded violation: a fatal abort in a path support/Error.h documents as
// recoverable (the parser handles untrusted input).
namespace mlirrl {
void reportFatalError(const char *);
void seededFatal() {
  reportFatalError("parser aborting on untrusted input"); // fatal-in-recoverable
}
} // namespace mlirrl
