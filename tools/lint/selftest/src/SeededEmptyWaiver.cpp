// A waiver without a justification is itself a lint error ("waiver").
#include <cstdlib>

int emptyWaiver(const char *Text) {
  // mlirrl-lint: allow(raw-numeric-parse)
  return atoi(Text);
}
