// Seeded violation: a naked lock()/unlock() pair instead of RAII.
#include <mutex>

std::mutex SeedMutex;

void seededNakedLock() {
  SeedMutex.lock(); // naked-lock
  SeedMutex.unlock(); // naked-lock
}

void raiiIsFine() {
  std::unique_lock<std::mutex> Lock(SeedMutex, std::defer_lock);
  Lock.lock(); // NOT a violation: unique_lock::lock() is still RAII-owned
}
