// Seeded violations: raw-numeric-parse and raw-rng must both fire here.
#include <cstdlib>
#include <random>

int seededParse(const char *Text) {
  return atoi(Text); // raw-numeric-parse
}

unsigned seededRng() {
  std::mt19937 Gen(std::random_device{}()); // raw-rng (twice)
  return static_cast<unsigned>(Gen());
}

// A mention of std::stoi inside this comment must NOT fire (comments are
// stripped before matching).
