// Waived twin: never-iterated lookup table with an in-file justification.
#include <string>
#include <unordered_map>

int waivedUnordered() {
  // mlirrl-lint: allow(unordered-container) -- fixture: lookup only, never iterated
  std::unordered_map<std::string, int> Lookup;
  return static_cast<int>(Lookup.size());
}
