// Seeded violation: an unordered container in a determinism-critical dir.
#include <string>
#include <unordered_map>

int seededUnordered() {
  std::unordered_map<std::string, int> Prices; // unordered-container
  return static_cast<int>(Prices.size());
}
