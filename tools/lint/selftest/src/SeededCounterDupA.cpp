// Seeded violation (1/2): the same counter category registered here...
namespace mlirrl {
struct R {
  static R &instance();
  int &named(const char *);
};
int &seededCounterA() {
  return R::instance().named("selftest.duplicate_category");
}
} // namespace mlirrl
