// Waived twin: the same violation under a justified in-file waiver must
// stay quiet.
#include <cstdlib>

int waivedParse(const char *Text) {
  // mlirrl-lint: allow(raw-numeric-parse) -- fixture: exercising the waiver
  return atoi(Text);
}

unsigned waivedRng();
// mlirrl-lint: allow-file(raw-rng) -- fixture: whole-file waiver form
#include <random>
unsigned waivedRng() { return std::mt19937(7)(); }
