#!/usr/bin/env python3
"""mlirrl repo-invariant linter.

Statically enforces repo-specific rules the C++ compiler cannot check.
The rules encode the project's two standing contracts -- bitwise
determinism across thread/shard/worker counts, and crash-freedom on
untrusted input -- at the places where a single careless line silently
breaks them:

  raw-numeric-parse     no atoi/stoi/strto*/sscanf numeric parsing
                        outside support/Args (raw parses turn "-3" or
                        "10k" into silent wraps; support/Args rejects
                        them with a message).
  fatal-in-recoverable  no reportFatalError / MLIRRL_UNREACHABLE in the
                        paths support/Error.h documents as recoverable
                        (parser, verifier, post-transform checks, fuzz,
                        serve): nothing reachable from a hostile .mlir
                        or an agent action may abort the process.
  unordered-container   no std::unordered_map/unordered_set in the
                        determinism-critical dirs (transforms/, perf/,
                        rl/, env/): their iteration order is
                        unspecified, and an iteration (today's or a
                        refactor's) keyed on one diverges across
                        libstdc++ versions and hash seeds. Use std::map,
                        a sorted vector, or support/StripedLru, or waive
                        with an in-file justification that the container
                        is never iterated.
  naked-lock            no naked Mutex.lock()/unlock() on a std::*mutex
                        (RAII guards only: an early return or exception
                        between lock and unlock deadlocks the pool).
                        .lock() on std::unique_lock/shared_lock is fine.
  raw-rng               no std::random_device / rand() / srand /
                        <random> engines or distributions outside
                        support/Rng: implementation-defined sequences
                        break bitwise reproducibility across stdlibs.
  counter-name-once     every CacheStatsRegistry counter category
                        (dotted lowercase string literal at a
                        registration site in src/) is registered at
                        exactly one site, so two subsystems cannot
                        silently pollute each other's statistics.

Waivers are in-file and must carry a justification:

    // mlirrl-lint: allow(<rule-id>) -- <why this is sound>

on the flagged line or the line above waives that line;

    // mlirrl-lint: allow-file(<rule-id>) -- <why this is sound>

anywhere in the file waives the whole file for that rule. An empty
justification is itself a lint error. There is no out-of-file
allowlist: the justification lives next to the code it excuses.

Usage:
    tools/lint/lint.py [--root DIR]   # lint the tree, exit 1 on findings
    tools/lint/lint.py --self-test    # run on the seeded-violation
                                      # fixture; exit 1 unless every rule
                                      # both fires and is waivable

Runs with the Python standard library only; no build needed.
"""

import argparse
import os
import re
import sys

CPP_EXTENSIONS = (".cpp", ".h")
SCAN_DIRS = ("src", "examples", "bench", "tests")

# ---------------------------------------------------------------------------
# Comment / string stripping
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines
    (line numbers stay valid) and quote characters (so regexes that key
    on string literals can opt back in via the raw text)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated; bail at EOL
                    break
                j += 1
            out.append(quote + " " * max(0, j - i - 2) +
                       (quote if j > i + 1 and text[j - 1] == quote else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def string_literals(line):
    """The double-quoted literals of one raw source line."""
    return re.findall(r'"((?:[^"\\]|\\.)*)"', line)


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------

WAIVE_LINE = re.compile(
    r"mlirrl-lint:\s*allow\(([a-z-]+)\)\s*(?:--\s*(.*))?")
WAIVE_FILE = re.compile(
    r"mlirrl-lint:\s*allow-file\(([a-z-]+)\)\s*(?:--\s*(.*))?")


class FileContext:
    def __init__(self, path, rel, raw):
        self.path = path
        self.rel = rel
        self.raw_lines = raw.splitlines()
        self.stripped_lines = strip_comments_and_strings(raw).splitlines()
        self.file_waivers = {}
        self.line_waivers = {}
        self.waiver_errors = []
        for idx, line in enumerate(self.raw_lines, start=1):
            for rx, store in ((WAIVE_FILE, self.file_waivers),
                              (WAIVE_LINE, self.line_waivers)):
                m = rx.search(line)
                if not m:
                    continue
                rule, why = m.group(1), (m.group(2) or "").strip()
                if not why:
                    self.waiver_errors.append(
                        (idx, "waiver for '%s' has no justification "
                         "(write: mlirrl-lint: allow(%s) -- <reason>)"
                         % (rule, rule)))
                    continue
                if store is self.file_waivers:
                    store[rule] = why
                else:
                    store.setdefault(rule, set()).add(idx)

    def waived(self, rule, lineno):
        if rule in self.file_waivers:
            return True
        lines = self.line_waivers.get(rule, set())
        return lineno in lines or (lineno - 1) in lines


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, rule, rel, lineno, message):
        self.rule, self.rel, self.lineno, self.message = \
            rule, rel, lineno, message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.rel, self.lineno, self.rule,
                                   self.message)


RAW_PARSE = re.compile(
    r"\b(?:std::)?(atoi|atol|atoll|stoi|stol|stoll|stoul|stoull|stof|stod|"
    r"stold|strtol|strtoll|strtoul|strtoull|strtof|strtod|strtold|sscanf)"
    r"\s*\(")


def rule_raw_numeric_parse(ctx):
    # support/Args is the one sanctioned implementation site.
    if ctx.rel.endswith("support/Args.cpp"):
        return
    for idx, line in enumerate(ctx.stripped_lines, start=1):
        m = RAW_PARSE.search(line)
        if m:
            yield Finding(
                "raw-numeric-parse", ctx.rel, idx,
                "raw numeric parse '%s' -- use support/Args "
                "parseUnsignedInteger/parseSignedInteger (Expected-based) "
                "or parseUnsignedArg (CLI)" % m.group(1))


RECOVERABLE_PATHS = (
    "src/ir/Parser.",
    "src/ir/Verifier.",
    "src/transforms/PostTransformChecks.",
    "src/fuzz/",
    "src/serve/",
)
FATAL_CALL = re.compile(r"\breportFatalError\s*\(|\bMLIRRL_UNREACHABLE\s*\(")


def rule_fatal_in_recoverable(ctx):
    if not any(p in ctx.rel for p in RECOVERABLE_PATHS):
        return
    for idx, line in enumerate(ctx.stripped_lines, start=1):
        if FATAL_CALL.search(line):
            yield Finding(
                "fatal-in-recoverable", ctx.rel, idx,
                "fatal abort in a path support/Error.h documents as "
                "recoverable -- return an Expected and count a "
                "robustness.* event instead")


DETERMINISM_DIRS = ("src/transforms/", "src/perf/", "src/rl/", "src/env/")
UNORDERED = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")


def rule_unordered_container(ctx):
    if not any(ctx.rel.startswith(d) for d in DETERMINISM_DIRS):
        return
    for idx, line in enumerate(ctx.stripped_lines, start=1):
        m = UNORDERED.search(line)
        if m:
            yield Finding(
                "unordered-container", ctx.rel, idx,
                "std::unordered_%s in a determinism-critical dir: "
                "iteration order is unspecified across stdlibs -- use "
                "std::map, a sorted vector, or support/StripedLru; if the "
                "container is provably never iterated, waive with a "
                "justification" % m.group(1))


MUTEX_DECL = re.compile(
    r"\bstd::(?:shared_|recursive_|timed_|recursive_timed_)?mutex\s+"
    r"([A-Za-z_]\w*)\s*[;{=]")
LOCK_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*(lock|unlock)\s*\(\)")


def rule_naked_lock(ctx):
    declared = set()
    for line in ctx.stripped_lines:
        for m in MUTEX_DECL.finditer(line):
            declared.add(m.group(1))
    for idx, line in enumerate(ctx.stripped_lines, start=1):
        for m in LOCK_CALL.finditer(line):
            name = m.group(1)
            # Flag calls on declared std::*mutex objects, plus the
            # conventional member spellings (declaration may live in
            # another header).
            if name in declared or re.fullmatch(
                    r".*(Mutex|Mtx|mutex)", name):
                yield Finding(
                    "naked-lock", ctx.rel, idx,
                    "naked %s.%s() -- hold mutexes through "
                    "std::lock_guard/unique_lock/scoped_lock so an early "
                    "return cannot leak the lock" % (name, m.group(2)))


RAW_RNG = re.compile(
    r"\bstd::random_device\b|\bstd::mt19937(?:_64)?\b|"
    r"\bstd::default_random_engine\b|\bstd::minstd_rand0?\b|"
    r"\bstd::(?:uniform_int|uniform_real|normal|bernoulli)_distribution\b|"
    r"(?<![\w:])s?rand\s*\(")


def rule_raw_rng(ctx):
    if ctx.rel.endswith("support/Rng.h") or ctx.rel.endswith(
            "support/Rng.cpp"):
        return
    for idx, line in enumerate(ctx.stripped_lines, start=1):
        m = RAW_RNG.search(line)
        if m:
            yield Finding(
                "raw-rng", ctx.rel, idx,
                "non-deterministic / implementation-defined RNG '%s' -- "
                "all randomness must flow through support/Rng (seedable, "
                "bitwise-stable across stdlibs)" % m.group(0).strip())


# Registration sites: the category argument of CacheStatsRegistry::named,
# of an Enrollment, of a StripedLruMemo construction, or of the
# member-init of a member declared as StripedLruMemo anywhere in src/
# (Evaluator's `Program("evaluator.program_memo", ...)` idiom).
CATEGORY_LITERAL = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+$")
MEMO_MEMBER_DECL = re.compile(r"\bStripedLruMemo<[^;>]*>\s+(\w+)")


def counter_registration_sites(contexts):
    """(name -> [(ctx, lineno)]) over category string literals at counter
    registration sites in src/. Comments are not consulted (the literal
    must sit on a code line that survives stripping with its quotes)."""
    memo_members = set()
    for ctx in contexts:
        if not ctx.rel.startswith("src/"):
            continue
        for line in ctx.stripped_lines:
            for m in MEMO_MEMBER_DECL.finditer(line):
                memo_members.add(m.group(1))
    member_init = re.compile(
        r"\b(%s)\s*[({]\s*\"" % "|".join(sorted(memo_members))
    ) if memo_members else None
    site = re.compile(
        r'\bnamed\s*\(\s*"|Enrollment\s*\(\s*"|StripedLruMemo[^;]*"')

    sites = {}
    for ctx in contexts:
        if not ctx.rel.startswith("src/"):
            continue
        for idx, (raw, stripped) in enumerate(
                zip(ctx.raw_lines, ctx.stripped_lines), start=1):
            if '"' not in stripped:
                continue  # literal only appeared inside a comment
            if not (site.search(stripped) or
                    (member_init and member_init.search(stripped))):
                continue
            for lit in string_literals(raw):
                if CATEGORY_LITERAL.match(lit):
                    sites.setdefault(lit, []).append((ctx, idx))
    return sites


def rule_counter_name_once(contexts):
    for name, where in sorted(counter_registration_sites(contexts).items()):
        if len(where) <= 1:
            continue
        locations = ", ".join("%s:%d" % (c.rel, l) for c, l in where)
        for ctx, lineno in where:
            if ctx.waived("counter-name-once", lineno):
                continue
            yield Finding(
                "counter-name-once", ctx.rel, lineno,
                "counter category \"%s\" appears at %d registration sites "
                "(%s) -- each CacheStatsRegistry category must be "
                "registered exactly once" % (name, len(where), locations))


PER_FILE_RULES = (
    ("raw-numeric-parse", rule_raw_numeric_parse),
    ("fatal-in-recoverable", rule_fatal_in_recoverable),
    ("unordered-container", rule_unordered_container),
    ("naked-lock", rule_naked_lock),
    ("raw-rng", rule_raw_rng),
)
ALL_RULE_IDS = tuple(r for r, _ in PER_FILE_RULES) + ("counter-name-once",)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(root, dirs):
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def lint_tree(root, dirs=SCAN_DIRS):
    contexts = []
    findings = []
    for path in collect_files(root, dirs):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8", errors="replace") as f:
            ctx = FileContext(path, rel, f.read())
        contexts.append(ctx)
        for lineno, msg in ctx.waiver_errors:
            findings.append(Finding("waiver", rel, lineno, msg))
        for rule, fn in PER_FILE_RULES:
            for finding in fn(ctx):
                if not ctx.waived(rule, finding.lineno):
                    findings.append(finding)
    findings.extend(rule_counter_name_once(contexts))
    findings.sort(key=lambda f: (f.rel, f.lineno, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on the seeded fixture, and the waived
# twin of each seed must stay quiet.
# ---------------------------------------------------------------------------


def self_test(root):
    fixture = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "selftest")
    if not os.path.isdir(fixture):
        print("lint self-test: fixture directory missing: " + fixture,
              file=sys.stderr)
        return 1
    findings = lint_tree(fixture)
    fired = {f.rule for f in findings}
    failures = []
    for rule in ALL_RULE_IDS:
        if rule not in fired:
            failures.append("rule '%s' did not fire on its seeded "
                            "violation" % rule)
    for f in findings:
        if "waived" in f.rel:
            failures.append("waived fixture still flagged: %s" % f)
    # The justification-free waiver seed must be rejected.
    if "waiver" not in fired:
        failures.append("empty-justification waiver was not rejected")
    if failures:
        print("lint self-test FAILED:", file=sys.stderr)
        for msg in failures:
            print("  " + msg, file=sys.stderr)
        print("fixture findings were:", file=sys.stderr)
        for f in findings:
            print("  " + str(f), file=sys.stderr)
        return 1
    print("lint self-test: %d seeded findings, all %d rules fired, "
          "waivers honored" % (len(findings), len(ALL_RULE_IDS)))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this file)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the seeded-violation fixture instead of "
                         "the tree; fail unless every rule fires")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.root)

    root = args.root or os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    findings = lint_tree(root)
    for f in findings:
        print(str(f))
    if findings:
        print("lint: %d finding(s); waive only with an in-file "
              "'mlirrl-lint: allow(<rule>) -- <reason>'" % len(findings),
              file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
