#!/usr/bin/env bash
# Tier-1 verification: lint, configure, build, run the test suite, and
# guard against build artifacts ever being committed again (PR 1
# accidentally committed the CMake cache and object files).
#
#   scripts/ci.sh                    # the regular tier-1 gate
#   scripts/ci.sh --sanitize=address # + ASan/UBSan tree in build-san/
#                                    #   (full suite, fuzz, smokes)
#   scripts/ci.sh --sanitize=thread  # + TSan tree in build-tsan/
#                                    #   (concurrency-heavy subset + race
#                                    #   stress, bounded runtime)
#   scripts/ci.sh --sanitize        # alias for --sanitize=address
set -euo pipefail

cd "$(dirname "$0")/.."

sanitize=""
case "${1:-}" in
  --sanitize|--sanitize=address)
    sanitize=address
    shift
    ;;
  --sanitize=thread)
    sanitize=thread
    shift
    ;;
  --sanitize=*)
    echo "error: unknown sanitize mode '${1#--sanitize=}'" \
         "(address or thread)" >&2
    exit 2
    ;;
esac

# --- Repo-invariant lint (always, before any build) -----------------------
# Pure-Python source checks (tools/lint/lint.py): raw numeric parses,
# fatal errors in recoverable paths, unordered containers in
# determinism-critical dirs, naked mutex locks, raw RNG, duplicate
# cache-counter categories. Self-test first so a broken linter can
# never silently pass the tree.
python3 tools/lint/lint.py --self-test
python3 tools/lint/lint.py

# --- Guard: no build artifacts in the index -------------------------------
if git ls-files | grep -E '^build/|\.o$' >/dev/null; then
  echo "error: build artifacts are tracked by git:" >&2
  git ls-files | grep -E '^build/|\.o$' | head >&2
  echo "(add them to .gitignore and 'git rm --cached' them)" >&2
  exit 1
fi

# --- Tier-1 verify --------------------------------------------------------
cmake -B build -S .
cmake --build build -j "$(nproc)"

# --- Static analysis (best-effort) ----------------------------------------
# The curated .clang-tidy check set over the library sources, replaying
# the exact compile lines from the exported compile_commands.json.
# Skipped with a notice when clang-tidy is not installed (the container
# ships only GCC); the repo linter above always runs.
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t tidy_sources < <(git ls-files 'src/*.cpp')
  clang-tidy -p build --quiet "${tidy_sources[@]}"
else
  echo "note: clang-tidy not installed; skipping static-analysis pass"
fi

# --- Test-suite run + temp-dir hygiene guard ------------------------------
# Checkpoint/serialization tests create scratch files; they must stay
# under build/ (the ctest working directory). Snapshot the working tree
# before the suite and fail if anything outside build/ changed -- a
# leaked temp file would otherwise dirty every contributor checkout
# silently. --ignored=matching keeps gitignored leaks visible too
# (*.ckpt and quickstart-ckpt/ are ignored precisely because they are
# expected OUTSIDE the repo tree; build/ and bench JSON are the only
# sanctioned ignored outputs).
snapshot_tree() {
  git status --porcelain --ignored=matching | grep -vE '^!! (build|build-san|build-tsan)/|^!! BENCH_' || true
}
tree_before=$(snapshot_tree)
(cd build && ctest --output-on-failure --repeat until-pass:1 -j "$(nproc)")
tree_after=$(snapshot_tree)
if [[ "$tree_before" != "$tree_after" ]]; then
  echo "error: the test suite wrote outside build/:" >&2
  diff <(printf '%s\n' "$tree_before") <(printf '%s\n' "$tree_after") >&2 || true
  exit 1
fi

# --- Incremental fast-path smoke check ------------------------------------
# One repetition of Immediate-reward episodes through the default
# (incremental) environment path: asserts the per-nest op memo hit rate
# is > 0 and that incremental stepping actually ran (nests materialized
# << ops x steps), so the ScheduleState path cannot silently regress to
# the from-scratch fallback. Also cross-checks the incremental price
# against the from-scratch oracle bitwise, and asserts the packed-GEMM
# scratch arena reaches steady state (repeated packed calls reuse the
# "gemm.pack_arena" block -- at most one allocation, then hits only --
# so the packed path cannot silently regress to per-call malloc).
./build/example_perf_smoke

# --- GEMM dispatch smoke check --------------------------------------------
# Cross-checks the dispatched GEMM micro-kernel (SIMD where the build
# has one) against the portable scalar fallback at runtime on the CI
# machine itself: double AND float, NN/NT/TN, streaming AND packed
# macro-kernel paths, tail-heavy shapes, bitwise comparison. Double
# parity is what the bitwise-deterministic training contract rides on;
# float parity covers the f32 greedy inference path; packed parity is
# the packing-is-pure-layout contract.
./build/example_gemm_smoke

# --- Striped-memo smoke check ---------------------------------------------
# The memo micro-bench in smoke mode: hammers the lock-striped shared
# memo from 4 threads at 1 shard (the global-lock baseline) and 16
# shards, asserting deterministic values, exact
# hits+misses+duplicates accounting, the capacity bound, and -- when the
# global lock actually contended -- that striping reduced contended
# acquisitions.
./build/example_memo_smoke

# --- Fuzz smoke -----------------------------------------------------------
# The deterministic fuzz engine at CI scale: 10k seed-derived parser
# inputs through the import gate plus 200 random-action episodes, zero
# tolerated violations. Each input is persisted to
# tests/fuzz/corpus/.inflight.mlir before it runs; a hard crash leaves
# it behind, and we promote it to a checked-in crash case so the next
# FuzzTest.CorpusReplays run covers it forever.
fuzz_corpus=tests/fuzz/corpus
if ! ./build/example_fuzz_smoke --inputs 10000 --episodes 200 \
      --corpus "$fuzz_corpus"; then
  if [[ -f "$fuzz_corpus/.inflight.mlir" ]]; then
    crash="$fuzz_corpus/crash-$(date +%Y%m%d%H%M%S).mlir"
    mv "$fuzz_corpus/.inflight.mlir" "$crash"
    echo "error: fuzz smoke died; offending input saved to $crash" >&2
  fi
  exit 1
fi

# --- Serving smoke --------------------------------------------------------
# The schedule server end to end: train one tiny iteration, freeze it
# to a checkpoint, load it into a ScheduleServer, and serve a request
# mix covering every guarded edge -- well-formed modules, a malformed
# module (import-gate rejection), concurrent clients (answers must be
# bitwise-identical to sequential serving), and an over-capacity burst
# (clean immediate rejection, never a hang). Scratch checkpoint lives
# under build/ and is removed on exit.
./build/example_serve_smoke --requests 8 --ckpt build/serve_smoke.ckpt

# --- ASan/UBSan pass (opt-in: --sanitize[=address]) -----------------------
# A second tree under ASan+UBSan: the whole test suite plus a reduced
# fuzz campaign, halt-on-error. Kept out of the default gate because the
# instrumented build roughly doubles CI time.
if [[ "$sanitize" == address ]]; then
  cmake -B build-san -S . -DMLIRRL_SANITIZE="address;undefined" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-san -j "$(nproc)"
  (cd build-san &&
     ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
     ctest --output-on-failure -j "$(nproc)")
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ./build-san/example_fuzz_smoke --inputs 2000 --episodes 50 \
    --corpus "$fuzz_corpus"
  # The SIMD micro-kernels under ASan+UBSan (vector loads/stores and
  # the tail delegation are exactly where an out-of-bounds lane read
  # would hide). The packed cross-check runs here too, which makes ASan
  # the pack-arena leak gate: LeakSanitizer fails this invocation if a
  # pack-scratch allocation outlives its thread's arena, and a panel
  # overrun past the padded row stride is an immediate heap-overflow
  # report.
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ./build-san/example_gemm_smoke
  # Pack-arena steady state under the sanitized build as well (the
  # reuse counters are asserted inside).
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ./build-san/example_perf_smoke
  # The serving path under the sanitizers (reduced request count): the
  # worker thread, promise/future handoff, and checkpoint reload are
  # the lifetime-heavy code in this tree.
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ./build-san/example_serve_smoke --requests 4 \
    --ckpt build-san/serve_smoke.ckpt
fi

# --- TSan pass (opt-in: --sanitize=thread) --------------------------------
# A third tree under ThreadSanitizer, restricted to the
# concurrency-heavy subset: the striped-memo and cost-cache tests, the
# full serving suite (including the reload and three-way race hammers),
# the determinism matrix (thread-count sweeps), and the dedicated TSan
# stress test. halt_on_error=1 turns the first report into a failure;
# there is no suppression file -- the repo's benign sharing is already
# expressed as relaxed atomics, so every report is treated as a real
# bug. TSan costs roughly an order of magnitude at runtime, which is
# why this is a subset (the tests themselves also shrink iteration
# counts via support/TsanAnnotations.h) and why the whole pass runs
# under one ctest timeout per test instead of an open-ended suite.
if [[ "$sanitize" == thread ]]; then
  cmake -B build-tsan -S . -DMLIRRL_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$(nproc)"
  tsan_subset='support/TsanStressTest|support/StatsTest|perf/StripedLruTest|perf/CostCacheTest|serve/ServeTest|serve/ServeReloadTest|serve/ServeRaceTest|rl/DeterminismMatrixTest|rl/ParallelDeterminismTest'
  (cd build-tsan &&
     TSAN_OPTIONS=halt_on_error=1 \
     ctest --output-on-failure --timeout 900 -j "$(nproc)" \
           -R "$tsan_subset")
  # The two concurrency smokes in reduced form: the striped memo from
  # many threads and the server worker pool end to end.
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/example_memo_smoke
  TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/example_serve_smoke --requests 4 \
    --ckpt build-tsan/serve_smoke.ckpt
fi
