#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the test suite, and guard
# against build artifacts ever being committed again (PR 1 accidentally
# committed the CMake cache and object files).
set -euo pipefail

cd "$(dirname "$0")/.."

# --- Guard: no build artifacts in the index -------------------------------
if git ls-files | grep -E '^build/|\.o$' >/dev/null; then
  echo "error: build artifacts are tracked by git:" >&2
  git ls-files | grep -E '^build/|\.o$' | head >&2
  echo "(add them to .gitignore and 'git rm --cached' them)" >&2
  exit 1
fi

# --- Tier-1 verify --------------------------------------------------------
cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
