#!/usr/bin/env bash
# Emits BENCH_trainstep.json: ns-per-train-iteration (and the matmul /
# cache counters) from bench_trainstep, as a machine-readable perf
# trajectory for future PRs to compare against.
#
# Usage: scripts/bench_json.sh [--threads] [build-dir] [output.json]
#
#   --threads   sweep only the CollectThreads / UpdateThreads matrix
#               (the multi-core wall-clock numbers PERF.md records;
#               default output BENCH_threads.json). Run it on a
#               multi-core host -- on a 1-core box it records pool
#               overhead, which is still worth pinning.
set -euo pipefail

FILTER=""
DEFAULT_OUT=BENCH_trainstep.json
if [[ "${1:-}" == "--threads" ]]; then
  shift
  FILTER="--benchmark_filter=CollectThreads|UpdateThreads"
  DEFAULT_OUT=BENCH_threads.json
fi

BUILD_DIR=${1:-build}
OUT=${2:-$DEFAULT_OUT}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BIN="$REPO_ROOT/$BUILD_DIR/bench_trainstep"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (configure with google-benchmark available):" >&2
  echo "  cmake -B $BUILD_DIR -S $REPO_ROOT && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" --benchmark_format=console \
       --benchmark_out_format=json \
       --benchmark_out="$OUT" \
       --benchmark_min_time=0.2 ${FILTER:+"$FILTER"} "${@:3}"

echo "wrote $OUT"
