#!/usr/bin/env bash
# Emits BENCH_trainstep.json: ns-per-train-iteration (and the matmul /
# cache counters) from bench_trainstep, as a machine-readable perf
# trajectory for future PRs to compare against.
#
# Usage: scripts/bench_json.sh [build-dir] [output.json]
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_trainstep.json}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BIN="$REPO_ROOT/$BUILD_DIR/bench_trainstep"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (configure with google-benchmark available):" >&2
  echo "  cmake -B $BUILD_DIR -S $REPO_ROOT && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" --benchmark_format=console \
       --benchmark_out_format=json \
       --benchmark_out="$OUT" \
       --benchmark_min_time=0.2 "${@:3}"

echo "wrote $OUT"
