#!/usr/bin/env bash
# Emits BENCH_trainstep.json: ns-per-train-iteration (and the matmul /
# cache counters) from bench_trainstep, as a machine-readable perf
# trajectory for future PRs to compare against.
#
# Usage: scripts/bench_json.sh [--threads|--memo|--gemm|--serve] [build-dir] [output.json]
#
#   --threads   sweep only the CollectThreads / UpdateThreads matrix
#               (the multi-core wall-clock numbers PERF.md records;
#               default output BENCH_threads.json). Run it on a
#               multi-core host -- on a 1-core box it records pool
#               overhead, which is still worth pinning.
#   --memo      sweep the striped-memo contention matrix from bench_memo
#               (shard counts x thread counts; default output
#               BENCH_memo.json). The contended_acquisitions counters
#               are meaningful even on 1 core.
#   --gemm      the raw GEMM kernel GFLOP/s matrix from bench_gemm
#               (dtype x kernel variant x packing x size; default output
#               BENCH_gemm.json). Single-core numbers; the artifact
#               records the compiler and -march the kernels were built
#               with, since the SIMD micro-kernel's throughput is a
#               property of both. Packed rows carry a _packed name
#               suffix next to their streaming twin.
#   --serve     schedule-server requests/s and p50/p99 request latency
#               from bench_serve (default output BENCH_serve.json).
#               The client-thread sweep and the server-worker sweep are
#               pruned to the host's cores and the artifact records
#               nproc (and, like every artifact, the compiler/march
#               keys): on a 1-core box the sweeps measure batching +
#               admission overhead, not parallel serving.
#
# Thread sweeps wider than the host's core count are skipped: a 1-core
# box "benchmarking" 8 collector threads measures pool overhead and
# scheduler noise, not scaling, and silently recording those numbers as
# the perf trajectory misleads the next PR. The emitted JSON records
# the host's nproc so a reader can tell which sweeps a committed
# artifact could have run.
set -euo pipefail

BIN_NAME=bench_trainstep
FILTER=""
DEFAULT_OUT=BENCH_trainstep.json
NPROC=$(nproc)

# The benchmarks' thread/Threads() sweep points, pruned to the host.
threads_regex() {
  local allowed=""
  for t in 1 2 4 8; do
    if [[ "$t" -le "$NPROC" ]]; then
      allowed+="${allowed:+|}$t"
    fi
  done
  echo "($allowed)"
}

case "${1:-}" in
  --threads)
    shift
    FILTER="--benchmark_filter=(CollectThreads|UpdateThreads)/$(threads_regex)\$"
    DEFAULT_OUT=BENCH_threads.json
    ;;
  --memo)
    shift
    BIN_NAME=bench_memo
    # BM_StripedMemoLookup/<shards>/... names carry a "threads:N"
    # suffix (threads:1 included); keep host-feasible thread sweeps
    # plus the suffix-free single-thread hit/eviction benchmarks.
    FILTER="--benchmark_filter=StripedMemo.*(threads:$(threads_regex)\$|/(1|4|16|64)(/real_time)?\$)"
    DEFAULT_OUT=BENCH_memo.json
    ;;
  --gemm)
    shift
    BIN_NAME=bench_gemm
    DEFAULT_OUT=BENCH_gemm.json
    ;;
  --serve)
    shift
    BIN_NAME=bench_serve
    # Keep the single-client latency benchmark, the host-feasible
    # points of the concurrent-client thread sweep, and the
    # server-worker sweep pruned on *workers* (its 4 client threads are
    # mostly-blocked load generators; the worker count is what must not
    # exceed the cores, or the sweep reports scheduler noise as
    # scaling).
    FILTER="--benchmark_filter=(ServeLatency/real_time\$|ServeThroughput.*threads:$(threads_regex)\$|ServeWorkerSweep/workers:$(threads_regex)/)"
    DEFAULT_OUT=BENCH_serve.json
    ;;
  *)
    # Default perf-trajectory artifact: exclude the thread-sweep cases
    # this host cannot actually run (negative filter, google-benchmark
    # >= 1.6). BM_TrainIterationMemoShards pins CollectThreads=4
    # internally, so it goes too on narrower hosts.
    too_wide=""
    for t in 2 4 8; do
      if [[ "$t" -gt "$NPROC" ]]; then
        too_wide+="${too_wide:+|}$t"
      fi
    done
    if [[ -n "$too_wide" ]]; then
      EXCLUDE="(CollectThreads|UpdateThreads)/($too_wide)\$"
      if [[ "$NPROC" -lt 4 ]]; then
        EXCLUDE+="|MemoShards"
      fi
      FILTER="--benchmark_filter=-($EXCLUDE)"
    fi
    ;;
esac

BUILD_DIR=${1:-build}
OUT=${2:-$DEFAULT_OUT}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BIN="$REPO_ROOT/$BUILD_DIR/$BIN_NAME"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (configure with google-benchmark available):" >&2
  echo "  cmake -B $BUILD_DIR -S $REPO_ROOT && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" --benchmark_format=console \
       --benchmark_out_format=json \
       --benchmark_out="$OUT" \
       --benchmark_min_time=0.2 ${FILTER:+"$FILTER"} "${@:3}"

# Record the host's core count in the artifact: google-benchmark's own
# context has num_cpus, but the explicit top-level key makes the
# "which sweeps could this box actually run" question greppable.
# Every artifact also records the compiler and the -march the binary
# was built with -- the GEMM kernels are the obvious dependents, but
# the serve numbers ride the same packed/SIMD inference kernels, so
# --serve carries the keys too and comparing artifacts that differ in
# (machine, compiler, ISA flags) is meaningless either way.
CXX_BIN=$(sed -n 's/^CMAKE_CXX_COMPILER:[A-Z]*=//p' "$REPO_ROOT/$BUILD_DIR/CMakeCache.txt" | head -1)
COMPILER=$("${CXX_BIN:-c++}" --version 2>/dev/null | head -1 || echo unknown)
MARCH=native
grep -q 'MLIRRL_HAS_MARCH_NATIVE:INTERNAL=1' \
    "$REPO_ROOT/$BUILD_DIR/CMakeCache.txt" 2>/dev/null || MARCH=default
TMP="$OUT.tmp"
awk -v nproc="$NPROC" -v compiler="$COMPILER" -v march="$MARCH" '
  NR==1 && $0 ~ /^\{/ {
    print "{"
    print "  \"nproc\": " nproc ","
    print "  \"compiler\": \"" compiler "\","
    print "  \"march\": \"" march "\","
    next
  }
  { print }' "$OUT" > "$TMP"
mv "$TMP" "$OUT"

echo "wrote $OUT (nproc=$NPROC, $COMPILER, -march=$MARCH)"
