//===- Models.h - Neural-network model graphs --------------------*- C++-*-===//
///
/// \file
/// Builders for the three evaluation models of Table III (ResNet-18, VGG,
/// MobileNetV2), mirroring what Torch-MLIR emits for their PyTorch
/// implementations: convolutions, pooling, matmul classifier heads, and
/// the elementwise / normalization operations that lower to
/// linalg.generic. getOpComposition() reproduces the Table V breakdown
/// for our graphs.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_DATASETS_MODELS_H
#define MLIRRL_DATASETS_MODELS_H

#include "ir/Module.h"

#include <map>
#include <string>

namespace mlirrl {

/// ResNet-18 at 224x224, batch 1.
Module makeResNet18();

/// VGG-16 at 224x224, batch 1.
Module makeVgg16();

/// MobileNetV2 at 224x224, batch 1 (depthwise stages modelled as
/// grouped-channel convolutions).
Module makeMobileNetV2();

/// Table V-style composition: counts per column (conv2d, pool, matmul,
/// generic, unknown) plus "total".
std::map<std::string, unsigned> getOpComposition(const Module &M);

} // namespace mlirrl

#endif // MLIRRL_DATASETS_MODELS_H
