//===- Dataset.h - The assembled training dataset ----------------*- C++-*-===//
///
/// \file
/// Assembles the full training dataset of Sec. VI: 1135 single DNN
/// operators (Table II) + 2133 random operator sequences + 691 LQCD
/// kernels = 3959 samples, with a scale factor for laptop-sized training
/// runs.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_DATASETS_DATASET_H
#define MLIRRL_DATASETS_DATASET_H

#include "datasets/DnnOps.h"
#include "datasets/Lqcd.h"
#include "datasets/Sequences.h"

namespace mlirrl {

/// Dataset assembly configuration (defaults = the paper's counts).
struct DatasetConfig {
  DnnDatasetCounts Dnn;
  unsigned Sequences = 2133;
  unsigned Lqcd = 691;
  uint64_t Seed = 2024;

  unsigned total() const { return Dnn.total() + Sequences + Lqcd; }

  /// Scales every component count by \p Factor (at least one sample
  /// each).
  static DatasetConfig scaled(double Factor);
};

/// Builds the shuffled training dataset.
std::vector<Module> buildTrainingDataset(const DatasetConfig &Config = {});

/// Streams a procedurally generated training epoch shard-by-shard
/// instead of materializing all samples up front: only the current
/// shard (ShardSize modules) is resident, which is what lets trainings
/// run over datasets that do not fit in memory.
///
/// Every sample is generated from an RNG stream derived from
/// (Config.Seed, in-epoch sample index), and the epoch order is a
/// fixed seed-derived permutation, so any position can be materialized
/// independently of the positions before it. The dataset itself is
/// finite and fixed, exactly like buildTrainingDataset's: epochs wrap
/// and replay the same samples in the same order. That makes the
/// stream position a complete description of progress: seek(cursor())
/// after a restart reproduces the exact sample sequence an
/// uninterrupted run would have seen — the property checkpoint resume
/// (rl/Checkpoint.h, the 'DSET' chunk) relies on.
class ShardedDataset {
public:
  explicit ShardedDataset(DatasetConfig Config, unsigned ShardSize = 64);

  /// Samples per epoch.
  size_t size() const { return Order.size(); }
  unsigned shardSize() const { return ShardWidth; }

  /// The module at the stream position; advances by one. The returned
  /// reference stays valid until the stream next crosses a shard
  /// boundary (callers that batch across shards must copy).
  const Module &next();

  /// Global stream position: epochs wrap, cursor() % size() is the
  /// in-epoch index.
  uint64_t cursor() const { return Cursor; }

  /// Repositions the stream (e.g. from a checkpoint). O(ShardSize):
  /// only the target shard is (re)generated.
  void seek(uint64_t NewCursor);

  uint64_t seed() const { return Config.Seed; }

private:
  /// Generates the sample at in-epoch position \p Slot (after the
  /// epoch permutation).
  Module generate(size_t Slot) const;
  void materializeShard(size_t Shard);

  DatasetConfig Config;
  unsigned ShardWidth;
  /// The epoch permutation: Order[slot] is the generator index whose
  /// sample occupies that slot.
  std::vector<uint32_t> Order;
  uint64_t Cursor = 0;
  size_t CachedShard;
  std::vector<Module> Cache;
};

} // namespace mlirrl

#endif // MLIRRL_DATASETS_DATASET_H
