//===- Dataset.h - The assembled training dataset ----------------*- C++-*-===//
///
/// \file
/// Assembles the full training dataset of Sec. VI: 1135 single DNN
/// operators (Table II) + 2133 random operator sequences + 691 LQCD
/// kernels = 3959 samples, with a scale factor for laptop-sized training
/// runs.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_DATASETS_DATASET_H
#define MLIRRL_DATASETS_DATASET_H

#include "datasets/DnnOps.h"
#include "datasets/Lqcd.h"
#include "datasets/Sequences.h"

namespace mlirrl {

/// Dataset assembly configuration (defaults = the paper's counts).
struct DatasetConfig {
  DnnDatasetCounts Dnn;
  unsigned Sequences = 2133;
  unsigned Lqcd = 691;
  uint64_t Seed = 2024;

  unsigned total() const { return Dnn.total() + Sequences + Lqcd; }

  /// Scales every component count by \p Factor (at least one sample
  /// each).
  static DatasetConfig scaled(double Factor);
};

/// Builds the shuffled training dataset.
std::vector<Module> buildTrainingDataset(const DatasetConfig &Config = {});

} // namespace mlirrl

#endif // MLIRRL_DATASETS_DATASET_H
