//===- Sequences.h - Random operator-sequence dataset ------------*- C++-*-===//
///
/// \file
/// The second half of the deep-learning dataset (Sec. VI-A): randomly
/// synthesized sequences of L = 5 operations, each consuming the previous
/// operation's output, drawn from {add, matmul, relu, conv_2d, pooling,
/// sigmoid, softmax_2d}. These teach the agent to handle multiple
/// operations (and fusion opportunities) per code sample.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_DATASETS_SEQUENCES_H
#define MLIRRL_DATASETS_SEQUENCES_H

#include "ir/Module.h"
#include "support/Rng.h"

#include <vector>

namespace mlirrl {

/// Configuration of the sequence generator.
struct SequenceConfig {
  /// Sequence length (the paper fixes L = 5).
  unsigned Length = 5;
  /// Bounds on generated tensor extents.
  int64_t MinDim = 16;
  int64_t MaxDim = 256;
};

/// Generates one random operator sequence.
Module generateOperatorSequence(Rng &Rng, const SequenceConfig &Config = {});

/// Generates \p Count sequences (the paper's dataset holds 2133, making
/// the 3959-sample total together with the DNN single ops and LQCD).
std::vector<Module> generateSequenceDataset(Rng &Rng, unsigned Count,
                                            const SequenceConfig &Config = {});

} // namespace mlirrl

#endif // MLIRRL_DATASETS_SEQUENCES_H
