//===- Lqcd.h - Lattice-QCD correlator kernels -------------------*- C++-*-===//
///
/// \file
/// The LQCD half of the dataset (Sec. VI-B) and the three evaluation
/// applications of Table IV. The paper's LQCD compiler emits long
/// sequences of deep loop nests (up to 12+ levels) computing correlators:
/// tensor contractions over lattice sites, spin/color indices and quark
/// permutations, with reductions at the inner levels and some irregular
/// accesses. We generate kernels with exactly that structure
/// (see DESIGN.md, substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_DATASETS_LQCD_H
#define MLIRRL_DATASETS_LQCD_H

#include "ir/Module.h"
#include "support/Rng.h"

#include <vector>

namespace mlirrl {

/// Generates one random LQCD-style loop nest (deep nest, inner
/// reductions, occasional strided/irregular access).
Module generateLqcdKernel(Rng &Rng, unsigned MaxLoops = 12);

/// Generates the LQCD training set (the paper extracted 691 variants from
/// the LQCD compiler's test suite).
std::vector<Module> generateLqcdDataset(Rng &Rng, unsigned Count = 691);

/// The three applications of Table IV. \p S is the lattice size the paper
/// reports next to each benchmark.
Module makeDibaryonDibaryon(int64_t S = 24);
Module makeDibaryonHexaquark(int64_t S = 32);
Module makeHexaquarkHexaquark(int64_t S = 12);

} // namespace mlirrl

#endif // MLIRRL_DATASETS_LQCD_H
