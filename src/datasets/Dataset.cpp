//===- Dataset.cpp --------------------------------------------------------===//

#include "datasets/Dataset.h"

#include <algorithm>
#include <cmath>
#include <utility>

using namespace mlirrl;

DatasetConfig DatasetConfig::scaled(double Factor) {
  DatasetConfig C;
  C.Dnn = DnnDatasetCounts::scaled(Factor);
  C.Sequences = std::max(
      1u, static_cast<unsigned>(std::lround(C.Sequences * Factor)));
  C.Lqcd =
      std::max(1u, static_cast<unsigned>(std::lround(C.Lqcd * Factor)));
  return C;
}

std::vector<Module>
mlirrl::buildTrainingDataset(const DatasetConfig &Config) {
  Rng Rng(Config.Seed);
  std::vector<Module> Dataset = generateDnnOperatorDataset(Rng, Config.Dnn);
  for (Module &M : generateSequenceDataset(Rng, Config.Sequences))
    Dataset.push_back(std::move(M));
  for (Module &M : generateLqcdDataset(Rng, Config.Lqcd))
    Dataset.push_back(std::move(M));
  Rng.shuffle(Dataset);
  return Dataset;
}

//===----------------------------------------------------------------------===//
// ShardedDataset
//===----------------------------------------------------------------------===//

ShardedDataset::ShardedDataset(DatasetConfig Config, unsigned ShardSize)
    : Config(Config), ShardWidth(ShardSize == 0 ? 1 : ShardSize),
      CachedShard(~size_t(0)) {
  // The epoch order is a seed-derived permutation of the generator
  // indices (DNN kinds first, then sequences, then LQCD), so streamed
  // epochs interleave sample kinds the way the materialized dataset's
  // shuffle does.
  Order.resize(Config.total());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = static_cast<uint32_t>(I);
  Rng PermRng(Rng::deriveSeed(Config.Seed, 0x5ea5111eull));
  PermRng.shuffle(Order);
}

Module ShardedDataset::generate(size_t Slot) const {
  uint32_t Index = Order[Slot];
  Rng R(Rng::deriveSeed(Config.Seed, 0xda7a0000ull + Index));
  // Map the generator index onto its component range.
  DnnDatasetCounts One;
  One.Matmul = One.Conv2d = One.Maxpool = One.Add = One.Relu = 0;
  uint32_t Rest = Index;
  const std::pair<unsigned DnnDatasetCounts::*, unsigned> Kinds[] = {
      {&DnnDatasetCounts::Matmul, Config.Dnn.Matmul},
      {&DnnDatasetCounts::Conv2d, Config.Dnn.Conv2d},
      {&DnnDatasetCounts::Maxpool, Config.Dnn.Maxpool},
      {&DnnDatasetCounts::Add, Config.Dnn.Add},
      {&DnnDatasetCounts::Relu, Config.Dnn.Relu}};
  for (const auto &[Field, Count] : Kinds) {
    if (Rest < Count) {
      One.*Field = 1;
      return generateDnnOperatorDataset(R, One).front();
    }
    Rest -= Count;
  }
  if (Rest < Config.Sequences)
    return generateSequenceDataset(R, 1).front();
  return generateLqcdDataset(R, 1).front();
}

void ShardedDataset::materializeShard(size_t Shard) {
  Cache.clear();
  size_t Begin = Shard * ShardWidth;
  size_t End = std::min(Order.size(), Begin + ShardWidth);
  Cache.reserve(End - Begin);
  for (size_t Slot = Begin; Slot < End; ++Slot)
    Cache.push_back(generate(Slot));
  CachedShard = Shard;
}

const Module &ShardedDataset::next() {
  size_t Slot = Cursor % Order.size();
  size_t Shard = Slot / ShardWidth;
  if (Shard != CachedShard)
    materializeShard(Shard);
  ++Cursor;
  return Cache[Slot - Shard * ShardWidth];
}

void ShardedDataset::seek(uint64_t NewCursor) { Cursor = NewCursor; }
