//===- Dataset.cpp --------------------------------------------------------===//

#include "datasets/Dataset.h"

#include <algorithm>
#include <cmath>

using namespace mlirrl;

DatasetConfig DatasetConfig::scaled(double Factor) {
  DatasetConfig C;
  C.Dnn = DnnDatasetCounts::scaled(Factor);
  C.Sequences = std::max(
      1u, static_cast<unsigned>(std::lround(C.Sequences * Factor)));
  C.Lqcd =
      std::max(1u, static_cast<unsigned>(std::lround(C.Lqcd * Factor)));
  return C;
}

std::vector<Module>
mlirrl::buildTrainingDataset(const DatasetConfig &Config) {
  Rng Rng(Config.Seed);
  std::vector<Module> Dataset = generateDnnOperatorDataset(Rng, Config.Dnn);
  for (Module &M : generateSequenceDataset(Rng, Config.Sequences))
    Dataset.push_back(std::move(M));
  for (Module &M : generateLqcdDataset(Rng, Config.Lqcd))
    Dataset.push_back(std::move(M));
  Rng.shuffle(Dataset);
  return Dataset;
}
