//===- Models.cpp ---------------------------------------------------------===//
//
// Model builders. Two deviations from the PyTorch originals, both forced
// by the IR having no implicit padding (documented in DESIGN.md):
//
//  * 3x3 convolutions shrink their spatial extent by two; residual skip
//    connections therefore center-crop the skip tensor (an affine access,
//    exactly expressible in the IR) instead of relying on "same" padding;
//  * flatten is an explicit affine copy op (it lowers from
//    torch.aten.view, which is also an opaque op in Torch-MLIR; we give
//    it OpKind::Unknown, matching the "unknown" column of Table V).
//
//===----------------------------------------------------------------------===//

#include "datasets/Models.h"

#include "ir/Builder.h"

#include <cassert>

using namespace mlirrl;

namespace {

/// Inference-time batch normalization: y = x * scale[c] + shift[c],
/// lowered by Torch-MLIR to a linalg.generic.
std::string batchNorm(Builder &B, Module &M, const std::string &X) {
  const TensorType &Type = M.getValue(X).Type;
  assert(Type.getRank() == 4 && "batchNorm expects NCHW");
  unsigned Rank = 4;
  std::string Scale = B.declareInput({Type.getDimSize(1)});
  std::string Shift = B.declareInput({Type.getDimSize(1)});
  AffineMap ChanMap = AffineMap::projection({1}, Rank);
  ArithCounts Arith;
  Arith.Mul = 1;
  Arith.Add = 1;
  return B.generic(OpKind::Generic, Type.getShape(),
                   std::vector<IteratorKind>(Rank, IteratorKind::Parallel),
                   {X, Scale, Shift},
                   {AffineMap::identity(Rank), ChanMap, ChanMap},
                   AffineMap::identity(Rank), Arith);
}

/// Residual addition with a center crop of the skip tensor: the main
/// branch lost (HSkip - H) rows/cols to unpadded convolutions.
std::string residualAdd(Builder &B, Module &M, const std::string &Main,
                        const std::string &Skip) {
  const TensorType &MainType = M.getValue(Main).Type;
  const TensorType &SkipType = M.getValue(Skip).Type;
  assert(MainType.getDimSize(1) == SkipType.getDimSize(1) &&
         "residual channel mismatch");
  int64_t OffH = (SkipType.getDimSize(2) - MainType.getDimSize(2)) / 2;
  int64_t OffW = (SkipType.getDimSize(3) - MainType.getDimSize(3)) / 2;
  assert(OffH >= 0 && OffW >= 0 && "skip smaller than main branch");
  unsigned Rank = 4;
  AffineMap SkipMap(
      Rank, {AffineExpr::dim(0, Rank), AffineExpr::dim(1, Rank),
             AffineExpr::dim(2, Rank) + AffineExpr::constant(OffH, Rank),
             AffineExpr::dim(3, Rank) + AffineExpr::constant(OffW, Rank)});
  ArithCounts Arith;
  Arith.Add = 1;
  return B.generic(OpKind::Add, MainType.getShape(),
                   std::vector<IteratorKind>(Rank, IteratorKind::Parallel),
                   {Main, Skip}, {AffineMap::identity(Rank), SkipMap},
                   AffineMap::identity(Rank), Arith);
}

/// Conv + BN + ReLU, the ubiquitous block.
std::string convBnRelu(Builder &B, Module &M, const std::string &X,
                       int64_t OutChannels, int64_t Kernel, int64_t Stride) {
  const TensorType &Type = M.getValue(X).Type;
  std::string Ker = B.declareInput(
      {OutChannels, Type.getDimSize(1), Kernel, Kernel});
  std::string Y = B.conv2d(X, Ker, Stride);
  Y = batchNorm(B, M, Y);
  return B.relu(Y);
}

/// Depthwise 3x3 (or 1x1 when the map is tiny) convolution as emitted
/// for MobileNet: per-channel spatial filtering, reductions over the
/// window only.
std::string depthwiseConv(Builder &B, Module &M, const std::string &X,
                          int64_t Stride) {
  const TensorType &Type = M.getValue(X).Type;
  int64_t C = Type.getDimSize(1);
  int64_t H = Type.getDimSize(2), W = Type.getDimSize(3);
  int64_t K = (H >= 5 && W >= 5) ? 3 : 1;
  int64_t Oh = (H - K) / Stride + 1;
  int64_t Ow = (W - K) / Stride + 1;
  std::string Ker = B.declareInput({C, K, K});

  const unsigned NumLoops = 6; // (n, c, oh, ow, kh, kw)
  auto D = [&](unsigned I) { return AffineExpr::dim(I, NumLoops); };
  AffineMap InMap(NumLoops,
                  {D(0), D(1), D(2) * Stride + D(4), D(3) * Stride + D(5)});
  AffineMap KerMap = AffineMap::projection({1, 4, 5}, NumLoops);
  AffineMap OutMap = AffineMap::projection({0, 1, 2, 3}, NumLoops);
  ArithCounts Arith;
  Arith.Mul = 1;
  Arith.Add = 1;
  return B.generic(OpKind::Generic, {1, C, Oh, Ow, K, K},
                   {IteratorKind::Parallel, IteratorKind::Parallel,
                    IteratorKind::Parallel, IteratorKind::Parallel,
                    IteratorKind::Reduction, IteratorKind::Reduction},
                   {X, Ker}, {InMap, KerMap}, OutMap, Arith);
}

/// Flatten NCHW -> [1, C*H*W] as an explicit affine copy (the lowering of
/// torch.aten.view); opaque to the optimizer, hence OpKind::Unknown.
std::string flatten(Builder &B, Module &M, const std::string &X) {
  const TensorType &Type = M.getValue(X).Type;
  assert(Type.getRank() == 4 && Type.getDimSize(0) == 1 &&
         "flatten expects batch-1 NCHW");
  int64_t C = Type.getDimSize(1), H = Type.getDimSize(2),
          W = Type.getDimSize(3);
  const unsigned NumLoops = 3; // (c, h, w)
  AffineMap InMap(NumLoops, {AffineExpr::constant(0, NumLoops),
                             AffineExpr::dim(0, NumLoops),
                             AffineExpr::dim(1, NumLoops),
                             AffineExpr::dim(2, NumLoops)});
  AffineExpr Flat = AffineExpr::dim(0, NumLoops) * (H * W) +
                    AffineExpr::dim(1, NumLoops) * W +
                    AffineExpr::dim(2, NumLoops);
  AffineMap OutMap(NumLoops, {AffineExpr::constant(0, NumLoops), Flat});
  ArithCounts Arith;
  Arith.Add = 1; // a copy still moves data
  return B.generic(OpKind::Unknown, {C, H, W},
                   std::vector<IteratorKind>(NumLoops, IteratorKind::Parallel),
                   {X}, {InMap}, OutMap, Arith);
}

/// Global average pooling NCHW -> [1, C] (torch.aten.mean lowering).
std::string globalAvgPool(Builder &B, Module &M, const std::string &X) {
  const TensorType &Type = M.getValue(X).Type;
  const unsigned NumLoops = 4; // (n, c, h, w)
  AffineMap OutMap = AffineMap::projection({0, 1}, NumLoops);
  ArithCounts Arith;
  Arith.Add = 1;
  return B.generic(OpKind::Generic, Type.getShape(),
                   {IteratorKind::Parallel, IteratorKind::Parallel,
                    IteratorKind::Reduction, IteratorKind::Reduction},
                   {X}, {AffineMap::identity(NumLoops)}, OutMap, Arith);
}

/// Fully connected layer over [1, In].
std::string fullyConnected(Builder &B, Module &M, const std::string &X,
                           int64_t Out) {
  const TensorType &Type = M.getValue(X).Type;
  std::string W = B.declareInput({Type.getDimSize(1), Out});
  return B.matmul(X, W);
}

} // namespace

Module mlirrl::makeResNet18() {
  Module M("resnet18");
  Builder B(M);
  std::string X = B.declareInput({1, 3, 224, 224});

  // Stem: 7x7/2 conv + BN + ReLU + 3x3/2 maxpool.
  X = convBnRelu(B, M, X, 64, 7, 2);
  X = B.poolingMax(X, 3, 3, 2);

  // Four stages of two basic blocks; each block is conv3x3 + conv1x1
  // with a residual connection (the 1x1 second conv limits unpadded
  // shrinkage; see the file header).
  struct Stage {
    int64_t Channels;
    int64_t Stride;
  };
  const Stage Stages[] = {{64, 1}, {128, 2}, {256, 2}, {512, 2}};
  for (const Stage &S : Stages) {
    for (int Block = 0; Block < 2; ++Block) {
      int64_t Stride = Block == 0 ? S.Stride : 1;
      std::string Skip = X;
      std::string Y = convBnRelu(B, M, X, S.Channels, 3, Stride);
      Y = convBnRelu(B, M, Y, S.Channels, 1, 1);
      // Project the skip when shape changes (stride or channel growth).
      const TensorType &SkipType = M.getValue(Skip).Type;
      if (Stride != 1 || SkipType.getDimSize(1) != S.Channels) {
        std::string Proj = B.declareInput(
            {S.Channels, SkipType.getDimSize(1), 1, 1});
        Skip = B.conv2d(Skip, Proj, Stride);
        Skip = batchNorm(B, M, Skip);
      }
      Y = residualAdd(B, M, Y, Skip);
      X = B.relu(Y);
    }
  }

  X = globalAvgPool(B, M, X);
  X = fullyConnected(B, M, X, 1000);
  return M;
}

Module mlirrl::makeVgg16() {
  Module M("vgg16");
  Builder B(M);
  std::string X = B.declareInput({1, 3, 224, 224});

  // The 13 convolutional layers in five pooled groups.
  const std::vector<std::vector<int64_t>> Groups = {
      {64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512},
      {512, 512, 512}};
  for (const std::vector<int64_t> &Group : Groups) {
    for (int64_t Channels : Group)
      X = convBnRelu(B, M, X, Channels, 3, 1);
    X = B.poolingMax(X, 2, 2, 2);
  }

  X = flatten(B, M, X);
  X = B.relu(fullyConnected(B, M, X, 4096));
  X = B.relu(fullyConnected(B, M, X, 4096));
  X = fullyConnected(B, M, X, 1000);
  return M;
}

Module mlirrl::makeMobileNetV2() {
  Module M("mobilenetv2");
  Builder B(M);
  std::string X = B.declareInput({1, 3, 224, 224});

  // Stem.
  X = convBnRelu(B, M, X, 32, 3, 2);

  // Inverted residual blocks: (expansion, channels, repeats, stride).
  struct BlockConfig {
    int64_t Expand, Channels, Repeats, Stride;
  };
  const BlockConfig Configs[] = {{1, 16, 1, 1},  {6, 24, 2, 2},
                                 {6, 32, 3, 2},  {6, 64, 4, 2},
                                 {6, 96, 3, 1},  {6, 160, 3, 2},
                                 {6, 320, 1, 1}};
  for (const BlockConfig &C : Configs) {
    for (int64_t R = 0; R < C.Repeats; ++R) {
      int64_t Stride = R == 0 ? C.Stride : 1;
      const TensorType &InType = M.getValue(X).Type;
      int64_t InChannels = InType.getDimSize(1);
      std::string Skip = X;
      std::string Y = X;
      if (C.Expand != 1)
        Y = convBnRelu(B, M, Y, InChannels * C.Expand, 1, 1);
      Y = depthwiseConv(B, M, Y, Stride);
      Y = batchNorm(B, M, Y);
      Y = B.relu(Y);
      // Linear projection (no activation).
      const TensorType &YType = M.getValue(Y).Type;
      std::string Proj =
          B.declareInput({C.Channels, YType.getDimSize(1), 1, 1});
      Y = B.conv2d(Y, Proj, 1);
      Y = batchNorm(B, M, Y);
      bool SameShape = Stride == 1 && InChannels == C.Channels;
      const TensorType &OutType = M.getValue(Y).Type;
      SameShape &= OutType.getDimSize(2) <= InType.getDimSize(2);
      if (SameShape)
        Y = residualAdd(B, M, Y, Skip);
      X = Y;
    }
  }

  // Head: 1x1 conv to 1280, global pool, classifier.
  X = convBnRelu(B, M, X, 1280, 1, 1);
  X = globalAvgPool(B, M, X);
  X = fullyConnected(B, M, X, 1000);
  return M;
}

std::map<std::string, unsigned> mlirrl::getOpComposition(const Module &M) {
  std::map<std::string, unsigned> Counts = {{"conv2d", 0}, {"pool", 0},
                                            {"matmul", 0}, {"generic", 0},
                                            {"unknown", 0}};
  for (const LinalgOp &Op : M.getOps()) {
    switch (Op.getKind()) {
    case OpKind::Conv2D:
      ++Counts["conv2d"];
      break;
    case OpKind::PoolingMax:
      ++Counts["pool"];
      break;
    case OpKind::Matmul:
      ++Counts["matmul"];
      break;
    case OpKind::Unknown:
      ++Counts["unknown"];
      break;
    default:
      ++Counts["generic"];
      break;
    }
  }
  Counts["total"] = M.getNumOps();
  return Counts;
}
