//===- DnnOps.cpp ---------------------------------------------------------===//

#include "datasets/DnnOps.h"

#include "ir/Builder.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>

using namespace mlirrl;

DnnDatasetCounts DnnDatasetCounts::scaled(double Factor) {
  auto Scale = [Factor](unsigned N) {
    return std::max(1u, static_cast<unsigned>(std::lround(N * Factor)));
  };
  DnnDatasetCounts C;
  C.Matmul = Scale(C.Matmul);
  C.Conv2d = Scale(C.Conv2d);
  C.Maxpool = Scale(C.Maxpool);
  C.Add = Scale(C.Add);
  C.Relu = Scale(C.Relu);
  return C;
}

Module mlirrl::makeMatmulModule(int64_t M, int64_t N, int64_t K) {
  Module Mod(formatString("matmul_%lldx%lldx%lld", static_cast<long long>(M),
                          static_cast<long long>(N),
                          static_cast<long long>(K)));
  Builder B(Mod);
  std::string A = B.declareInput({M, K});
  std::string Bv = B.declareInput({K, N});
  B.matmul(A, Bv);
  return Mod;
}

Module mlirrl::makeConv2dModule(int64_t N, int64_t C, int64_t H, int64_t W,
                                int64_t F, int64_t Kh, int64_t Kw,
                                int64_t Stride) {
  Module Mod(formatString("conv2d_n%lldc%lldh%lldw%lld_f%lldk%lld_s%lld",
                          static_cast<long long>(N), static_cast<long long>(C),
                          static_cast<long long>(H), static_cast<long long>(W),
                          static_cast<long long>(F),
                          static_cast<long long>(Kh),
                          static_cast<long long>(Stride)));
  Builder B(Mod);
  std::string In = B.declareInput({N, C, H, W});
  std::string Ker = B.declareInput({F, C, Kh, Kw});
  B.conv2d(In, Ker, Stride);
  return Mod;
}

Module mlirrl::makeMaxpoolModule(int64_t N, int64_t C, int64_t H, int64_t W,
                                 int64_t Window, int64_t Stride) {
  Module Mod(formatString("maxpool_n%lldc%lldh%lldw%lld_k%llds%lld",
                          static_cast<long long>(N), static_cast<long long>(C),
                          static_cast<long long>(H), static_cast<long long>(W),
                          static_cast<long long>(Window),
                          static_cast<long long>(Stride)));
  Builder B(Mod);
  std::string In = B.declareInput({N, C, H, W});
  B.poolingMax(In, Window, Window, Stride);
  return Mod;
}

Module mlirrl::makeAddModule(std::vector<int64_t> Shape) {
  Module Mod("add");
  Builder B(Mod);
  std::string X = B.declareInput(Shape);
  std::string Y = B.declareInput(Shape);
  B.add(X, Y);
  return Mod;
}

Module mlirrl::makeReluModule(std::vector<int64_t> Shape) {
  Module Mod("relu");
  Builder B(Mod);
  std::string X = B.declareInput(Shape);
  B.relu(X);
  return Mod;
}

namespace {

/// Shape pools mirroring the paper's source: sizes harvested from vision
/// and transformer models.
int64_t pickDim(Rng &Rng, const std::vector<int64_t> &Pool) {
  return Pool[Rng.choiceIndex(Pool)];
}

} // namespace

std::vector<Module>
mlirrl::generateDnnOperatorDataset(Rng &Rng, const DnnDatasetCounts &Counts) {
  std::vector<Module> Dataset;
  Dataset.reserve(Counts.total());

  const std::vector<int64_t> MatDims = {64,  128, 192, 256, 384,
                                        512, 768, 1024};
  for (unsigned I = 0; I < Counts.Matmul; ++I)
    Dataset.push_back(makeMatmulModule(pickDim(Rng, MatDims),
                                       pickDim(Rng, MatDims),
                                       pickDim(Rng, MatDims)));

  const std::vector<int64_t> Channels = {3, 16, 32, 64, 128, 256};
  const std::vector<int64_t> Spatial = {14, 16, 28, 32, 56, 64};
  const std::vector<int64_t> Kernels = {1, 3, 5};
  for (unsigned I = 0; I < Counts.Conv2d; ++I) {
    int64_t C = pickDim(Rng, Channels);
    int64_t HW = pickDim(Rng, Spatial);
    int64_t K = pickDim(Rng, Kernels);
    int64_t F = pickDim(Rng, Channels);
    int64_t Stride = Rng.nextBernoulli(0.3) ? 2 : 1;
    Dataset.push_back(
        makeConv2dModule(1, C, HW + K - 1, HW + K - 1, F, K, K, Stride));
  }

  for (unsigned I = 0; I < Counts.Maxpool; ++I) {
    int64_t C = pickDim(Rng, Channels);
    int64_t HW = pickDim(Rng, Spatial);
    int64_t Window = Rng.nextBernoulli(0.5) ? 2 : 3;
    Dataset.push_back(makeMaxpoolModule(1, C, HW, HW, Window, 2));
  }

  const std::vector<int64_t> ElemDims = {64, 128, 256, 512, 1024, 2048};
  for (unsigned I = 0; I < Counts.Add; ++I)
    Dataset.push_back(
        makeAddModule({pickDim(Rng, ElemDims), pickDim(Rng, ElemDims)}));

  for (unsigned I = 0; I < Counts.Relu; ++I)
    Dataset.push_back(
        makeReluModule({pickDim(Rng, ElemDims), pickDim(Rng, ElemDims)}));

  return Dataset;
}

std::vector<OperatorBenchmark> mlirrl::makeOperatorBenchmarks() {
  std::vector<OperatorBenchmark> Benchmarks;
  auto Add = [&](const char *Op, std::string Size, Module M) {
    Benchmarks.push_back(OperatorBenchmark{Op, std::move(Size), std::move(M)});
  };

  // Matmul: transformer projection / classifier-head shapes.
  Add("matmul", "512x512x512", makeMatmulModule(512, 512, 512));
  Add("matmul", "1024x1024x1024", makeMatmulModule(1024, 1024, 1024));
  Add("matmul", "256x1000x2048", makeMatmulModule(256, 1000, 2048));

  // Conv2D: ResNet stage shapes (stride 1 and 2).
  Add("conv2d", "resnet_56x64", makeConv2dModule(1, 64, 58, 58, 64, 3, 3, 1));
  Add("conv2d", "resnet_28x128",
      makeConv2dModule(1, 128, 30, 30, 128, 3, 3, 1));
  Add("conv2d", "resnet_down_s2",
      makeConv2dModule(1, 64, 57, 57, 128, 3, 3, 2));

  // Maxpool: the ResNet stem pool and a VGG-style pool.
  Add("maxpool", "112x64_3x3s2", makeMaxpoolModule(1, 64, 113, 113, 3, 2));
  Add("maxpool", "56x128_2x2s2", makeMaxpoolModule(1, 128, 56, 56, 2, 2));
  Add("maxpool", "28x256_2x2s2", makeMaxpoolModule(1, 256, 28, 28, 2, 2));

  // Elementwise: residual-add and activation maps.
  Add("add", "1024x1024", makeAddModule({1024, 1024}));
  Add("add", "4096x1024", makeAddModule({4096, 1024}));
  Add("add", "512x2048", makeAddModule({512, 2048}));

  Add("relu", "1024x1024", makeReluModule({1024, 1024}));
  Add("relu", "4096x1024", makeReluModule({4096, 1024}));
  Add("relu", "512x2048", makeReluModule({512, 2048}));

  return Benchmarks;
}
