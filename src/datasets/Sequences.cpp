//===- Sequences.cpp ------------------------------------------------------===//

#include "datasets/Sequences.h"

#include "ir/Builder.h"
#include "support/Format.h"

#include <algorithm>

using namespace mlirrl;

namespace {

/// Op choices of the paper's generator.
enum class SeqOp { Add, Matmul, Relu, Conv2d, Pooling, Sigmoid, Softmax2d };

/// Ops applicable to a value of the given rank (conv/pool need NCHW;
/// matmul and softmax need rank 2; elementwise work anywhere).
std::vector<SeqOp> applicableOps(unsigned Rank, int64_t MinSpatial) {
  std::vector<SeqOp> Ops = {SeqOp::Add, SeqOp::Relu, SeqOp::Sigmoid};
  if (Rank == 2) {
    Ops.push_back(SeqOp::Matmul);
    Ops.push_back(SeqOp::Softmax2d);
  }
  if (Rank == 4 && MinSpatial >= 4) {
    Ops.push_back(SeqOp::Conv2d);
    Ops.push_back(SeqOp::Pooling);
  }
  return Ops;
}

int64_t roundDim(Rng &Rng, const SequenceConfig &Config) {
  // Powers of two within bounds, as model shapes typically are.
  std::vector<int64_t> Pool;
  for (int64_t D = Config.MinDim; D <= Config.MaxDim; D *= 2)
    Pool.push_back(D);
  return Pool[Rng.choiceIndex(Pool)];
}

} // namespace

Module mlirrl::generateOperatorSequence(Rng &Rng,
                                        const SequenceConfig &Config) {
  Module M("seq");
  Builder B(M);

  // Start from a random rank-2 activation or rank-4 feature map.
  std::string Current;
  if (Rng.nextBernoulli(0.5)) {
    Current = B.declareInput({roundDim(Rng, Config), roundDim(Rng, Config)});
  } else {
    int64_t C = std::max<int64_t>(4, roundDim(Rng, Config) / 8);
    int64_t HW = std::clamp<int64_t>(roundDim(Rng, Config), 8, 64);
    Current = B.declareInput({1, C, HW, HW});
  }

  for (unsigned Step = 0; Step < Config.Length; ++Step) {
    const TensorType &Type = M.getValue(Current).Type;
    unsigned Rank = Type.getRank();
    int64_t MinSpatial =
        Rank == 4 ? std::min(Type.getDimSize(2), Type.getDimSize(3)) : 0;
    std::vector<SeqOp> Ops = applicableOps(Rank, MinSpatial);
    switch (Ops[Rng.choiceIndex(Ops)]) {
    case SeqOp::Add: {
      std::string Other = B.declareInput(Type.getShape());
      Current = B.add(Current, Other);
      break;
    }
    case SeqOp::Relu:
      Current = B.relu(Current);
      break;
    case SeqOp::Sigmoid:
      Current = B.sigmoid(Current);
      break;
    case SeqOp::Matmul: {
      int64_t N = roundDim(Rng, Config);
      std::string W = B.declareInput({Type.getDimSize(1), N});
      Current = B.matmul(Current, W);
      break;
    }
    case SeqOp::Softmax2d:
      Current = B.softmax2d(Current);
      break;
    case SeqOp::Conv2d: {
      int64_t K = MinSpatial >= 5 && Rng.nextBernoulli(0.5) ? 3 : 1;
      int64_t F = std::max<int64_t>(4, roundDim(Rng, Config) / 8);
      std::string Ker = B.declareInput({F, Type.getDimSize(1), K, K});
      Current = B.conv2d(Current, Ker, 1);
      break;
    }
    case SeqOp::Pooling:
      Current = B.poolingMax(Current, 2, 2, 2);
      break;
    }
  }
  M.setName(formatString("seq_len%u", Config.Length));
  return M;
}

std::vector<Module>
mlirrl::generateSequenceDataset(Rng &Rng, unsigned Count,
                                const SequenceConfig &Config) {
  std::vector<Module> Dataset;
  Dataset.reserve(Count);
  for (unsigned I = 0; I < Count; ++I)
    Dataset.push_back(generateOperatorSequence(Rng, Config));
  return Dataset;
}
