//===- DnnOps.h - Single-operator DNN dataset --------------------*- C++-*-===//
///
/// \file
/// The deep-learning half of the training dataset (Sec. VI-A): single
/// operators collected from vision / transformer models with varied
/// shapes. The default counts reproduce Table II: 187 matmul, 278 conv2d,
/// 250 maxpool, 271 add, 149 relu = 1135 samples. A separate fixed
/// benchmark set provides the *evaluation* shapes (ResNet-era sizes not
/// seen in training) used by Fig. 5.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_DATASETS_DNNOPS_H
#define MLIRRL_DATASETS_DNNOPS_H

#include "ir/Module.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace mlirrl {

/// Per-operator sample counts (defaults = Table II).
struct DnnDatasetCounts {
  unsigned Matmul = 187;
  unsigned Conv2d = 278;
  unsigned Maxpool = 250;
  unsigned Add = 271;
  unsigned Relu = 149;

  unsigned total() const { return Matmul + Conv2d + Maxpool + Add + Relu; }

  /// A scaled-down configuration for laptop-scale training runs.
  static DnnDatasetCounts scaled(double Factor);
};

/// Generates single-operator training modules with randomized shapes.
std::vector<Module> generateDnnOperatorDataset(Rng &Rng,
                                               const DnnDatasetCounts &Counts);

/// One named evaluation benchmark.
struct OperatorBenchmark {
  std::string OperatorName; // "matmul", "conv2d", "maxpool", "add", "relu"
  std::string SizeName;     // e.g. "512x512x512"
  Module M;
};

/// The fixed evaluation shapes behind Fig. 5 (ResNet-era sizes, disjoint
/// from the randomized training shapes).
std::vector<OperatorBenchmark> makeOperatorBenchmarks();

/// Single-op module constructors used by both the generator and tests.
Module makeMatmulModule(int64_t M, int64_t N, int64_t K);
Module makeConv2dModule(int64_t N, int64_t C, int64_t H, int64_t W, int64_t F,
                        int64_t Kh, int64_t Kw, int64_t Stride);
Module makeMaxpoolModule(int64_t N, int64_t C, int64_t H, int64_t W,
                         int64_t Window, int64_t Stride);
Module makeAddModule(std::vector<int64_t> Shape);
Module makeReluModule(std::vector<int64_t> Shape);

} // namespace mlirrl

#endif // MLIRRL_DATASETS_DNNOPS_H
