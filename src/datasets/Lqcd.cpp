//===- Lqcd.cpp -----------------------------------------------------------===//

#include "datasets/Lqcd.h"

#include "ir/Builder.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace mlirrl;

namespace {

/// Spin and color extents of lattice QCD.
constexpr int64_t SpinDim = 4;
constexpr int64_t ColorDim = 3;

/// Builds one "baryon block" op: B[t, x, s, c] = sum_cp P1 * P2 over the
/// contracted color index cp. Five loops, innermost reduction.
std::string buildBaryonBlock(Builder &B, Module &M, int64_t S,
                             const std::string &Prop1,
                             const std::string &Prop2) {
  (void)M;
  const unsigned NumLoops = 5; // (t, x, s, c, cp)
  AffineMap PropMap = AffineMap::identity(NumLoops);
  AffineMap OutMap = AffineMap::projection({0, 1, 2, 3}, NumLoops);
  ArithCounts Arith;
  Arith.Mul = 1;
  Arith.Add = 1;
  return B.generic(OpKind::Generic, {S, S, SpinDim, ColorDim, ColorDim},
                   {IteratorKind::Parallel, IteratorKind::Parallel,
                    IteratorKind::Parallel, IteratorKind::Parallel,
                    IteratorKind::Reduction},
                   {Prop1, Prop2}, {PropMap, PropMap}, OutMap, Arith,
                   ElementType::F64);
}

/// Builds one two-block correlator contraction:
///   corr[t] = sum_{x, y, s1, c1, s2, c2} B1[t,x,s1,c1] * B2[t,y,s2,c2]
///             * W[s1,c1,s2,c2]
/// Seven loops, six of them inner reductions.
std::string buildTwoBlockContraction(Builder &B, int64_t S,
                                     const std::string &Block1,
                                     const std::string &Block2,
                                     const std::string &Weights) {
  const unsigned NumLoops = 7; // (t, x, y, s1, c1, s2, c2)
  AffineMap B1Map = AffineMap::projection({0, 1, 3, 4}, NumLoops);
  AffineMap B2Map = AffineMap::projection({0, 2, 5, 6}, NumLoops);
  AffineMap WMap = AffineMap::projection({3, 4, 5, 6}, NumLoops);
  AffineMap OutMap = AffineMap::projection({0}, NumLoops);
  ArithCounts Arith;
  Arith.Mul = 2;
  Arith.Add = 1;
  return B.generic(OpKind::Generic,
                   {S, S, S, SpinDim, ColorDim, SpinDim, ColorDim},
                   {IteratorKind::Parallel, IteratorKind::Reduction,
                    IteratorKind::Reduction, IteratorKind::Reduction,
                    IteratorKind::Reduction, IteratorKind::Reduction,
                    IteratorKind::Reduction},
                   {Block1, Block2, Weights}, {B1Map, B2Map, WMap}, OutMap,
                   Arith, ElementType::F64);
}

/// Builds one hexaquark contraction: a deeper nest over two extra
/// spin/color index pairs (9 loops).
std::string buildHexaquarkContraction(Builder &B, int64_t S,
                                      const std::string &Block1,
                                      const std::string &Block2,
                                      const std::string &Weights) {
  const unsigned NumLoops = 9; // (t, x, y, s1, c1, s2, c2, s3, c3)
  AffineMap B1Map = AffineMap::projection({0, 1, 3, 4, 5, 6}, NumLoops);
  AffineMap B2Map = AffineMap::projection({0, 2, 5, 6, 7, 8}, NumLoops);
  AffineMap WMap = AffineMap::projection({3, 4, 7, 8}, NumLoops);
  AffineMap OutMap = AffineMap::projection({0}, NumLoops);
  ArithCounts Arith;
  Arith.Mul = 2;
  Arith.Add = 1;
  return B.generic(
      OpKind::Generic,
      {S, S, S, SpinDim, ColorDim, SpinDim, ColorDim, SpinDim, ColorDim},
      {IteratorKind::Parallel, IteratorKind::Reduction,
       IteratorKind::Reduction, IteratorKind::Reduction,
       IteratorKind::Reduction, IteratorKind::Reduction,
       IteratorKind::Reduction, IteratorKind::Reduction,
       IteratorKind::Reduction},
      {Block1, Block2, Weights}, {B1Map, B2Map, WMap}, OutMap, Arith,
      ElementType::F64);
}

/// Declares a propagator pair and weight tensors used by the apps.
struct LqcdInputs {
  std::string Prop1, Prop2, Weights4;
};

LqcdInputs declareInputs(Builder &B, int64_t S) {
  LqcdInputs In;
  In.Prop1 = B.declareInput({S, S, SpinDim, ColorDim, ColorDim},
                            ElementType::F64);
  In.Prop2 = B.declareInput({S, S, SpinDim, ColorDim, ColorDim},
                            ElementType::F64);
  In.Weights4 = B.declareInput({SpinDim, ColorDim, SpinDim, ColorDim},
                               ElementType::F64);
  return In;
}

/// A six-quark (hexaquark) block: rank-6 output over two spin/color
/// pairs, reduction over the contracted color.
std::string buildHexaquarkBlock(Builder &B, int64_t S,
                                const std::string &Prop1,
                                const std::string &Prop2) {
  const unsigned NumLoops = 7; // (t, x, s1, c1, s2, c2, cp)
  AffineMap P1Map = AffineMap::projection({0, 1, 2, 3, 6}, NumLoops);
  AffineMap P2Map = AffineMap::projection({0, 1, 4, 5, 6}, NumLoops);
  AffineMap OutMap = AffineMap::projection({0, 1, 2, 3, 4, 5}, NumLoops);
  ArithCounts Arith;
  Arith.Mul = 1;
  Arith.Add = 1;
  return B.generic(OpKind::Generic,
                   {S, S, SpinDim, ColorDim, SpinDim, ColorDim, ColorDim},
                   {IteratorKind::Parallel, IteratorKind::Parallel,
                    IteratorKind::Parallel, IteratorKind::Parallel,
                    IteratorKind::Parallel, IteratorKind::Parallel,
                    IteratorKind::Reduction},
                   {Prop1, Prop2}, {P1Map, P2Map}, OutMap, Arith,
                   ElementType::F64);
}

} // namespace

Module mlirrl::makeDibaryonDibaryon(int64_t S) {
  Module M(formatString("dibaryon_dibaryon_S%lld", static_cast<long long>(S)));
  Builder B(M);
  LqcdInputs In = declareInputs(B, S);
  // Two baryon blocks per dibaryon, two dibaryons.
  std::string B1 = buildBaryonBlock(B, M, S, In.Prop1, In.Prop2);
  std::string B2 = buildBaryonBlock(B, M, S, In.Prop2, In.Prop1);
  std::string B3 = buildBaryonBlock(B, M, S, In.Prop1, In.Prop1);
  std::string B4 = buildBaryonBlock(B, M, S, In.Prop2, In.Prop2);
  // Contraction terms across the quark permutations.
  buildTwoBlockContraction(B, S, B1, B2, In.Weights4);
  buildTwoBlockContraction(B, S, B3, B4, In.Weights4);
  buildTwoBlockContraction(B, S, B1, B4, In.Weights4);
  buildTwoBlockContraction(B, S, B2, B3, In.Weights4);
  return M;
}

Module mlirrl::makeDibaryonHexaquark(int64_t S) {
  Module M(
      formatString("dibaryon_hexaquark_S%lld", static_cast<long long>(S)));
  Builder B(M);
  LqcdInputs In = declareInputs(B, S);
  std::string B1 = buildBaryonBlock(B, M, S, In.Prop1, In.Prop2);
  std::string B2 = buildBaryonBlock(B, M, S, In.Prop2, In.Prop1);
  std::string H1 = buildHexaquarkBlock(B, S, In.Prop1, In.Prop2);
  // Mixed dibaryon-hexaquark terms: deeper contractions against the
  // hexaquark block plus two-block terms.
  buildHexaquarkContraction(B, S, H1, H1, In.Weights4);
  buildTwoBlockContraction(B, S, B1, B2, In.Weights4);
  buildTwoBlockContraction(B, S, B2, B1, In.Weights4);
  return M;
}

Module mlirrl::makeHexaquarkHexaquark(int64_t S) {
  Module M(
      formatString("hexaquark_hexaquark_S%lld", static_cast<long long>(S)));
  Builder B(M);
  LqcdInputs In = declareInputs(B, S);
  std::string H1 = buildHexaquarkBlock(B, S, In.Prop1, In.Prop2);
  std::string H2 = buildHexaquarkBlock(B, S, In.Prop2, In.Prop1);
  std::string H3 = buildHexaquarkBlock(B, S, In.Prop1, In.Prop1);
  // The heaviest case: six contraction terms between six-quark states.
  buildHexaquarkContraction(B, S, H1, H2, In.Weights4);
  buildHexaquarkContraction(B, S, H2, H1, In.Weights4);
  buildHexaquarkContraction(B, S, H1, H3, In.Weights4);
  buildHexaquarkContraction(B, S, H3, H2, In.Weights4);
  buildHexaquarkContraction(B, S, H3, H3, In.Weights4);
  buildHexaquarkContraction(B, S, H2, H2, In.Weights4);
  return M;
}

Module mlirrl::generateLqcdKernel(Rng &Rng, unsigned MaxLoops) {
  assert(MaxLoops >= 6 && "LQCD kernels are deep nests");
  unsigned NumLoops =
      static_cast<unsigned>(Rng.nextInt(6, static_cast<int64_t>(MaxLoops)));
  unsigned NumReductions =
      static_cast<unsigned>(Rng.nextInt(2, std::min(NumLoops - 2, 5u)));

  // Bounds: site dims large, spin/color dims small; reductions inner.
  std::vector<int64_t> Bounds(NumLoops);
  std::vector<IteratorKind> Iterators(NumLoops);
  const std::vector<int64_t> SiteDims = {8, 12, 16, 24, 32};
  for (unsigned I = 0; I < NumLoops; ++I) {
    bool IsSite = I < 2 || Rng.nextBernoulli(0.25);
    Bounds[I] = IsSite ? SiteDims[Rng.choiceIndex(SiteDims)]
                       : (Rng.nextBernoulli(0.5) ? SpinDim : ColorDim);
    Iterators[I] = I + NumReductions >= NumLoops ? IteratorKind::Reduction
                                                 : IteratorKind::Parallel;
  }

  Module M("lqcd_kernel");
  Builder B(M);

  // Inputs: 2-3 tensors reading random dim subsets, with occasional
  // irregular accesses (reversed or strided index).
  unsigned NumInputs = static_cast<unsigned>(Rng.nextInt(2, 3));
  std::vector<std::string> Inputs;
  std::vector<AffineMap> InputMaps;
  for (unsigned T = 0; T < NumInputs; ++T) {
    std::vector<AffineExpr> Results;
    std::vector<int64_t> Shape;
    for (unsigned D = 0; D < NumLoops; ++D) {
      if (Rng.nextBernoulli(0.35))
        continue; // tensor does not depend on this dim
      if (Rng.nextBernoulli(0.15)) {
        // Irregular: reversed access bound-1 - d.
        Results.push_back(AffineExpr::constant(Bounds[D] - 1, NumLoops) -
                          AffineExpr::dim(D, NumLoops));
        Shape.push_back(Bounds[D]);
      } else {
        Results.push_back(AffineExpr::dim(D, NumLoops));
        Shape.push_back(Bounds[D]);
      }
    }
    if (Results.empty()) {
      Results.push_back(AffineExpr::dim(0, NumLoops));
      Shape.push_back(Bounds[0]);
    }
    Inputs.push_back(B.declareInput(Shape, ElementType::F64));
    InputMaps.push_back(AffineMap(NumLoops, std::move(Results)));
  }

  // Output over the parallel dims.
  std::vector<unsigned> OutDims;
  for (unsigned D = 0; D < NumLoops; ++D)
    if (Iterators[D] == IteratorKind::Parallel)
      OutDims.push_back(D);
  AffineMap OutMap = AffineMap::projection(OutDims, NumLoops);

  ArithCounts Arith;
  Arith.Mul = static_cast<int64_t>(Rng.nextInt(1, 2));
  Arith.Add = 1;
  B.generic(OpKind::Generic, Bounds, Iterators, Inputs, InputMaps, OutMap,
            Arith, ElementType::F64);
  return M;
}

std::vector<Module> mlirrl::generateLqcdDataset(Rng &Rng, unsigned Count) {
  std::vector<Module> Dataset;
  Dataset.reserve(Count);
  for (unsigned I = 0; I < Count; ++I)
    Dataset.push_back(generateLqcdKernel(Rng));
  return Dataset;
}
