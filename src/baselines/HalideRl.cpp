//===- HalideRl.cpp -------------------------------------------------------===//

#include "baselines/HalideRl.h"

#include "rl/RolloutEngine.h"

using namespace mlirrl;

HalideRlBaseline::HalideRlBaseline(MachineModel Machine)
    : OwnedEval(std::make_unique<CostModelEvaluator>(Machine)),
      Eval(*OwnedEval) {}

HalideRlBaseline::HalideRlBaseline(Evaluator &Eval) : Eval(Eval) {}

HalideRlBaseline::HalideRlBaseline(const RolloutEngine &Engine)
    : Eval(Engine.evaluator()) {}

std::vector<HalideDirectives> HalideRlBaseline::directiveCandidates() {
  std::vector<HalideDirectives> Candidates;
  // No reorder: Halide's storage order fixes the pure-loop order, and
  // the reduction domain is sequential per output regardless.
  for (int64_t Tile : {0, 8, 16, 32, 64})
    for (bool Vectorize : {false, true}) {
      HalideDirectives D;
      D.PureTile = Tile;
      D.Parallel = true;
      D.Vectorize = Vectorize;
      Candidates.push_back(D);
    }
  return Candidates;
}

HalideDirectives
HalideRlBaseline::bestDirectives(const Module &M, unsigned OpIdx,
                                 double *BestSeconds) const {
  HalideDirectives Best;
  double BestTime = 0.0;
  bool First = true;
  for (const HalideDirectives &D : directiveCandidates()) {
    LoopNest Nest = applyHalideDirectives(M, OpIdx, D);
    double T = Eval.timeNests({Nest});
    if (First || T < BestTime) {
      Best = D;
      BestTime = T;
      First = false;
    }
  }
  if (BestSeconds)
    *BestSeconds = BestTime;
  return Best;
}

double HalideRlBaseline::timeModule(const Module &M) const {
  double Total = 0.0;
  for (unsigned I = 0; I < M.getNumOps(); ++I) {
    double Seconds = 0.0;
    bestDirectives(M, I, &Seconds);
    Total += Seconds;
  }
  return Total;
}
