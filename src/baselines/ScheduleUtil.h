//===- ScheduleUtil.h - Shared baseline scheduling helpers -------*- C++-*-===//
///
/// \file
/// Helpers shared by the Halide-style baselines: building loop nests from
/// directive-style decisions (tile pure dims, reorder a pure dim
/// innermost, parallelize, vectorize). Halide's vectorizer is not subject
/// to MLIR's Linalg restrictions (it vectorizes windowed reductions such
/// as pooling), so these helpers set the vector flag directly on the
/// materialized nest.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_BASELINES_SCHEDULEUTIL_H
#define MLIRRL_BASELINES_SCHEDULEUTIL_H

#include "ir/Module.h"
#include "transforms/Apply.h"

namespace mlirrl {

/// Directive-style schedule of one op (Halide vocabulary).
struct HalideDirectives {
  /// Uniform tile size applied to every *parallel* (pure) dim; 0 = none.
  int64_t PureTile = 0;
  /// Reorder the last pure dim innermost before vectorizing.
  bool ReorderPureInnermost = false;
  /// Parallelize the outer tile loops.
  bool Parallel = true;
  /// Vectorize the innermost loop (Halide-style: allowed on windowed
  /// reductions too).
  bool Vectorize = false;

  std::string toString() const;
};

/// Materializes op \p OpIdx of \p M under \p Directives.
LoopNest applyHalideDirectives(const Module &M, unsigned OpIdx,
                               const HalideDirectives &Directives);

/// Index of the last parallel (pure) dim of \p Op, or -1 if none.
int findLastPureDim(const LinalgOp &Op);

} // namespace mlirrl

#endif // MLIRRL_BASELINES_SCHEDULEUTIL_H
