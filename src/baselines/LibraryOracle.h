//===- LibraryOracle.h - PyTorch / torch.compile oracles ---------*- C++-*-===//
///
/// \file
/// Models of the framework baselines of Sec. VII-A4. PyTorch dispatches
/// each operation to a hand-tuned library kernel (oneDNN/MKL):
/// register-tiled GEMM near peak, im2col convolution, comparatively weak
/// NCHW pooling kernels, bandwidth-bound elementwise kernels — plus a
/// per-operation framework dispatch overhead. The PyTorch compiler
/// (torch.jit) additionally fuses elementwise chains and cuts dispatch
/// cost. Both are evaluated on the same machine model as everything else
/// (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_BASELINES_LIBRARYORACLE_H
#define MLIRRL_BASELINES_LIBRARYORACLE_H

#include "ir/Module.h"
#include "perf/MachineModel.h"

#include <string>

namespace mlirrl {

/// Kernel-efficiency profile of a framework.
struct LibraryProfile {
  std::string Name;
  /// Fraction of vector peak the GEMM kernels reach.
  double MatmulEfficiency = 0.85;
  /// Fraction of vector peak conv kernels reach (im2col + GEMM).
  double ConvEfficiency = 0.70;
  /// Fraction of scalar-issue peak the NCHW pooling kernel reaches (the
  /// paper finds frameworks weak here: MLIR RL wins 3.3x).
  double PoolEfficiency = 0.30;
  /// Fraction of DRAM bandwidth the NCHW pooling kernel sustains (eager
  /// pooling parallelizes poorly and pays layout overhead).
  double PoolBandwidthFraction = 0.15;
  /// Fraction of DRAM bandwidth elementwise kernels sustain.
  double ElementwiseBandwidthFraction = 0.85;
  /// Per-operation dispatch overhead, seconds.
  double PerOpOverheadSeconds = 10e-6;
  /// Fuse adjacent exclusively-consumed elementwise ops into one memory
  /// pass (torch.jit graph compilation).
  bool FusesElementwise = false;

  static LibraryProfile pytorchEager();
  static LibraryProfile pytorchCompile();
};

/// A framework baseline: maps every op to its library kernel time.
class LibraryOracle {
public:
  LibraryOracle(MachineModel Machine, LibraryProfile Profile);

  const std::string &getName() const { return Profile.Name; }

  /// Estimated end-to-end time of the module under this framework.
  double timeModule(const Module &M) const;

  /// Time of one op's kernel (without dispatch overhead); exposed for
  /// tests.
  double kernelSeconds(const Module &M, const LinalgOp &Op) const;

private:
  MachineModel Machine;
  LibraryProfile Profile;
};

} // namespace mlirrl

#endif // MLIRRL_BASELINES_LIBRARYORACLE_H
