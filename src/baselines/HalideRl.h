//===- HalideRl.h - The Halide RL baseline -----------------------*- C++-*-===//
///
/// \file
/// A model of Halide RL (Pecenin et al.), the semi-automatic RL baseline
/// of Sec. VII. Its agent picks from a *user-provided directive list*
/// over pure (output) variables only: tile/split, reorder, parallel,
/// vectorize. It therefore (a) can vectorize windowed reductions like
/// pooling (Halide's vectorizer is not Linalg's), and (b) cannot tile or
/// reorder reduction domains, which is what costs it on Matmul (the
/// paper reports MLIR RL 5.32x ahead there). We model the converged
/// agent as exhaustive search over that directive list under the shared
/// cost model.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_BASELINES_HALIDERL_H
#define MLIRRL_BASELINES_HALIDERL_H

#include "baselines/ScheduleUtil.h"
#include "perf/Evaluator.h"

#include <memory>

namespace mlirrl {

class RolloutEngine;

/// The Halide RL baseline.
class HalideRlBaseline {
public:
  /// Owns a CostModelEvaluator over \p Machine (the common case).
  explicit HalideRlBaseline(MachineModel Machine);

  /// Measures through an external evaluator (e.g. a CachingEvaluator
  /// shared with the RL system for like-for-like comparisons). \p Eval
  /// must outlive the baseline.
  explicit HalideRlBaseline(Evaluator &Eval);

  /// Binds to \p Engine's evaluator, so the baseline prices through the
  /// exact memoized seam the RL rollouts use (like-for-like speedups
  /// and shared memo hits). \p Engine must outlive the baseline.
  explicit HalideRlBaseline(const RolloutEngine &Engine);

  /// Best-of-directive-list time for one module (ops scheduled
  /// independently, like per-stage Halide schedules).
  double timeModule(const Module &M) const;

  /// The directive list the "agent" chooses from.
  static std::vector<HalideDirectives> directiveCandidates();

  /// Best directives for one op (exposed for tests).
  HalideDirectives bestDirectives(const Module &M, unsigned OpIdx,
                                  double *BestSeconds = nullptr) const;

private:
  /// Set when constructed from a MachineModel; Eval points at it then.
  std::unique_ptr<CostModelEvaluator> OwnedEval;
  Evaluator &Eval;
};

} // namespace mlirrl

#endif // MLIRRL_BASELINES_HALIDERL_H
