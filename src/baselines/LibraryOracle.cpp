//===- LibraryOracle.cpp --------------------------------------------------===//

#include "baselines/LibraryOracle.h"

#include <algorithm>
#include <set>

using namespace mlirrl;

LibraryProfile LibraryProfile::pytorchEager() {
  LibraryProfile P;
  P.Name = "PyTorch";
  return P;
}

LibraryProfile LibraryProfile::pytorchCompile() {
  LibraryProfile P;
  P.Name = "PyTorch compiler";
  P.PerOpOverheadSeconds = 3e-6;
  P.FusesElementwise = true;
  // Graph compilation also squeezes a little more out of the kernels
  // (layout planning, fewer reorders).
  P.MatmulEfficiency = 0.88;
  P.ConvEfficiency = 0.74;
  return P;
}

LibraryOracle::LibraryOracle(MachineModel Machine, LibraryProfile Profile)
    : Machine(Machine), Profile(std::move(Profile)) {}

namespace {

/// Bytes of all distinct operand tensors (inputs + output) of one op.
double operandBytes(const Module &M, const LinalgOp &Op) {
  std::set<std::string> Seen;
  double Bytes = 0.0;
  auto AddValue = [&](const std::string &Name) {
    if (Seen.insert(Name).second)
      Bytes += static_cast<double>(M.getValue(Name).Type.getByteSize());
  };
  for (const OpOperand &In : Op.getInputs())
    AddValue(In.Value);
  AddValue(Op.getResult());
  return Bytes;
}

/// True for ops the elementwise fuser can merge: no reduction loops.
bool isElementwise(const LinalgOp &Op) {
  return Op.getNumReductionLoops() == 0;
}

} // namespace

double LibraryOracle::kernelSeconds(const Module &M,
                                    const LinalgOp &Op) const {
  const double GiB = 1024.0 * 1024.0 * 1024.0;
  double PeakVector = Machine.vectorFlopsPerSecond(Machine.VectorLanesF32) *
                      Machine.NumCores;
  double PeakScalar = Machine.scalarFlopsPerSecond() * Machine.NumCores;
  double DramBps = Machine.DramBandwidthGBps * GiB;
  double Flops = static_cast<double>(Op.getFlops());
  double Bytes = operandBytes(M, Op);

  switch (Op.getKind()) {
  case OpKind::Matmul: {
    double Compute = Flops / (PeakVector * Profile.MatmulEfficiency);
    double Memory = Bytes / DramBps;
    return std::max(Compute, Memory);
  }
  case OpKind::Conv2D: {
    // im2col materializes the patch matrix: one extra write + read of
    // the expanded input.
    double KernelPoints = 1.0;
    if (Op.getNumLoops() == 7)
      KernelPoints = static_cast<double>(Op.getLoopBound(5)) *
                     static_cast<double>(Op.getLoopBound(6));
    double InputBytes =
        static_cast<double>(M.getValue(Op.getInput(0).Value)
                                .Type.getByteSize());
    double Im2colBytes = 2.0 * InputBytes * KernelPoints;
    double Compute = Flops / (PeakVector * Profile.ConvEfficiency);
    double Memory = (Bytes + Im2colBytes) / DramBps;
    return std::max(Compute, Memory);
  }
  case OpKind::PoolingMax: {
    double Compute = Flops / (PeakScalar * Profile.PoolEfficiency);
    double Memory = Bytes / (DramBps * Profile.PoolBandwidthFraction);
    return std::max(Compute, Memory);
  }
  default: {
    // Elementwise / normalization / reduction kernels: bandwidth-bound.
    double Memory =
        Bytes / (DramBps * Profile.ElementwiseBandwidthFraction);
    double Compute = Flops / PeakVector;
    return std::max(Compute, Memory);
  }
  }
}

double LibraryOracle::timeModule(const Module &M) const {
  const double GiB = 1024.0 * 1024.0 * 1024.0;
  double DramBps = Machine.DramBandwidthGBps * GiB *
                   Profile.ElementwiseBandwidthFraction;
  double Total = 0.0;
  std::vector<bool> Consumed(M.getNumOps(), false);

  for (unsigned I = 0; I < M.getNumOps(); ++I) {
    if (Consumed[I])
      continue;
    const LinalgOp &Op = M.getOp(I);
    if (Profile.FusesElementwise && isElementwise(Op)) {
      // Greedily extend a chain of exclusively-consumed elementwise ops;
      // the fused kernel makes one pass over external inputs + the final
      // output.
      std::set<std::string> External;
      for (const OpOperand &In : Op.getInputs())
        External.insert(In.Value);
      unsigned Last = I;
      double FusedFlops = static_cast<double>(Op.getFlops());
      for (unsigned J = I + 1; J < M.getNumOps(); ++J) {
        const LinalgOp &Next = M.getOp(J);
        std::vector<unsigned> Users = M.getConsumers(Last);
        if (!isElementwise(Next) || Users.size() != 1 || Users[0] != J ||
            !Next.readsValue(M.getOp(Last).getResult()))
          break;
        for (const OpOperand &In : Next.getInputs())
          if (In.Value != M.getOp(Last).getResult())
            External.insert(In.Value);
        FusedFlops += static_cast<double>(Next.getFlops());
        Consumed[J] = true;
        Last = J;
      }
      double Bytes = static_cast<double>(
          M.getValue(M.getOp(Last).getResult()).Type.getByteSize());
      for (const std::string &Name : External)
        Bytes += static_cast<double>(M.getValue(Name).Type.getByteSize());
      double PeakVector =
          Machine.vectorFlopsPerSecond(Machine.VectorLanesF32) *
          Machine.NumCores;
      Total += std::max(Bytes / DramBps, FusedFlops / PeakVector) +
               Profile.PerOpOverheadSeconds;
      continue;
    }
    Total += kernelSeconds(M, Op) + Profile.PerOpOverheadSeconds;
  }
  return Total;
}
