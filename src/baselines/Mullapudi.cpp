//===- Mullapudi.cpp ------------------------------------------------------===//

#include "baselines/Mullapudi.h"

#include "perf/WorkingSet.h"
#include "rl/RolloutEngine.h"

using namespace mlirrl;

MullapudiAutoscheduler::MullapudiAutoscheduler(MachineModel Machine)
    : OwnedEval(std::make_unique<CostModelEvaluator>(Machine)),
      Eval(*OwnedEval), Machine(Machine) {}

MullapudiAutoscheduler::MullapudiAutoscheduler(Evaluator &Eval,
                                               MachineModel Machine)
    : Eval(Eval), Machine(Machine) {}

MullapudiAutoscheduler::MullapudiAutoscheduler(const RolloutEngine &Engine,
                                               MachineModel Machine)
    : Eval(Engine.evaluator()), Machine(Machine) {}

HalideDirectives
MullapudiAutoscheduler::scheduleOp(const Module &M, unsigned OpIdx) const {
  // Parallelism threshold: the autoscheduler only parallelizes when the
  // pure (output) iteration space offers enough parallelism relative to
  // the machine (its grouping heuristic rejects under-parallel outer
  // loops). Deep contractions with a single small pure loop — the LQCD
  // hexaquark correlators at S=12 — fall below it, which is why the
  // paper measures only 1.17x there.
  const LinalgOp &Op = M.getOp(OpIdx);
  double PureIterations = 1.0;
  for (unsigned L = 0; L < Op.getNumLoops(); ++L)
    if (Op.getIterator(L) == IteratorKind::Parallel)
      PureIterations *= static_cast<double>(Op.getLoopBound(L));

  // Greedy tile-size choice: largest tile whose working set fits L2.
  // The heuristic estimates the tile footprint as tile^2 elements per
  // operand (its actual cost model is a footprint heuristic too).
  HalideDirectives D;
  D.Parallel = PureIterations >= Machine.NumCores / 2.0;
  D.Vectorize = true;

  int64_t BestTile = 0;
  double BestTime = 0.0;
  bool First = true;
  for (int64_t Tile : {64, 32, 16, 8, 0}) {
    HalideDirectives Candidate = D;
    Candidate.PureTile = Tile;
    LoopNest Nest = applyHalideDirectives(M, OpIdx, Candidate);
    // The heuristic: tile working set must fit L2; among fitting tiles
    // pick the largest (fewest tiles, most reuse).
    std::vector<FlatLoop> Loops = flattenBodyLoops(Nest, Nest.Bodies.size() - 1);
    unsigned Depth = 0;
    for (unsigned I = 0; I < Loops.size(); ++I)
      if (Loops[I].Loop.IsTileLoop)
        Depth = I + 1;
    double Footprint = 0.0;
    for (const TensorAccess &A : Nest.Bodies.back().Accesses)
      Footprint += static_cast<double>(
          computeFootprint(A, Loops, Depth, Machine.L2.LineBytes).Bytes);
    bool Fits = Footprint <= static_cast<double>(Machine.L2.SizeBytes);
    double T = Eval.timeNests({Nest});
    if (First || (Fits && Tile > BestTile) ||
        (BestTile == 0 && T < BestTime)) {
      BestTile = Fits ? Tile : BestTile;
      BestTime = T;
      First = false;
    }
    if (Fits && Tile > 0)
      break; // largest fitting tile wins (greedy, no global search)
  }
  D.PureTile = BestTile;
  return D;
}

double MullapudiAutoscheduler::timeModule(const Module &M) const {
  double Total = 0.0;
  for (unsigned I = 0; I < M.getNumOps(); ++I) {
    LoopNest Nest = applyHalideDirectives(M, I, scheduleOp(M, I));
    Total += Eval.timeNests({Nest});
  }
  return Total;
}
