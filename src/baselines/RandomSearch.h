//===- RandomSearch.h - Random-search baseline -------------------*- C++-*-===//
///
/// \file
/// A random-search baseline over the environment's own action space:
/// roll K random episodes, keep the best schedule. Useful as a sanity
/// reference for the RL agent (an agent that cannot beat random search
/// at equal budget has learned nothing) and in the examples.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_BASELINES_RANDOMSEARCH_H
#define MLIRRL_BASELINES_RANDOMSEARCH_H

#include "env/Environment.h"

namespace mlirrl {

/// Result of a random search.
struct RandomSearchResult {
  ModuleSchedule Schedule;
  double Speedup = 1.0;
  unsigned EpisodesUsed = 0;
};

/// Runs \p Episodes uniformly random episodes (respecting the action
/// masks) and returns the best schedule found. Measures through the
/// shared Evaluator seam (any implementation works: Runner,
/// CostModelEvaluator, a CachingEvaluator over either).
RandomSearchResult randomSearch(const EnvConfig &Config, Evaluator &Eval,
                                const Module &M, unsigned Episodes,
                                uint64_t Seed = 42);

} // namespace mlirrl

#endif // MLIRRL_BASELINES_RANDOMSEARCH_H
