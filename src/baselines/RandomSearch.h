//===- RandomSearch.h - Random-search baseline -------------------*- C++-*-===//
///
/// \file
/// A random-search baseline over the environment's own action space:
/// roll K random episodes, keep the best schedule. Useful as a sanity
/// reference for the RL agent (an agent that cannot beat random search
/// at equal budget has learned nothing) and in the examples.
///
/// Episodes run through the shared RolloutEngine (the same lockstep
/// loop PPO collection, greedy optimize() and the server use), with a
/// uniform-random ActionSource in place of the policy.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_BASELINES_RANDOMSEARCH_H
#define MLIRRL_BASELINES_RANDOMSEARCH_H

#include "env/Environment.h"
#include "rl/RolloutEngine.h"

namespace mlirrl {

/// Result of a random search.
struct RandomSearchResult {
  ModuleSchedule Schedule;
  double Speedup = 1.0;
  unsigned EpisodesUsed = 0;
};

/// Samples a uniformly random action under the observation's masks.
/// Matches the policy's sampling shape: tiled kinds draw one index per
/// *present* loop level (min(Obs.NumLoops, Config.MaxLoops)) and zero
/// the rest, so the baseline's RNG consumption per action equals the
/// policy head structure. (The old per-MaxLoops draw sampled levels no
/// op has -- RolloutEquivalenceTest pins the fixed shape.)
AgentAction randomAction(const Observation &Obs, const EnvConfig &Config,
                         Rng &Rng);

/// Runs \p Episodes uniformly random episodes (respecting the action
/// masks) through \p Engine and returns the best schedule found. All
/// episodes draw from one sequential stream seeded with \p Seed.
RandomSearchResult randomSearch(const RolloutEngine &Engine, const Module &M,
                                unsigned Episodes, uint64_t Seed = 42);

/// Convenience overload: builds an agent-less engine over
/// (\p Config, \p Eval). Measures through the shared Evaluator seam
/// (any implementation works: Runner, CostModelEvaluator, a
/// CachingEvaluator over either).
RandomSearchResult randomSearch(const EnvConfig &Config, Evaluator &Eval,
                                const Module &M, unsigned Episodes,
                                uint64_t Seed = 42);

} // namespace mlirrl

#endif // MLIRRL_BASELINES_RANDOMSEARCH_H
