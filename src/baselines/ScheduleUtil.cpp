//===- ScheduleUtil.cpp ---------------------------------------------------===//

#include "baselines/ScheduleUtil.h"

#include "support/Format.h"

#include <algorithm>
#include <numeric>

using namespace mlirrl;

std::string HalideDirectives::toString() const {
  return formatString("tile=%lld reorder=%d parallel=%d vectorize=%d",
                      static_cast<long long>(PureTile),
                      ReorderPureInnermost, Parallel, Vectorize);
}

int mlirrl::findLastPureDim(const LinalgOp &Op) {
  for (unsigned L = Op.getNumLoops(); L > 0; --L)
    if (Op.getIterator(L - 1) == IteratorKind::Parallel)
      return static_cast<int>(L - 1);
  return -1;
}

LoopNest mlirrl::applyHalideDirectives(const Module &M, unsigned OpIdx,
                                       const HalideDirectives &Directives) {
  const LinalgOp &Op = M.getOp(OpIdx);
  unsigned N = Op.getNumLoops();
  OpSchedule Sched;

  // Reorder: move the last pure dim to the innermost position (the
  // vectorization axis); everything else keeps its relative order.
  if (Directives.ReorderPureInnermost) {
    int Pure = findLastPureDim(Op);
    if (Pure >= 0 && static_cast<unsigned>(Pure) + 1 != N) {
      std::vector<unsigned> Perm;
      for (unsigned L = 0; L < N; ++L)
        if (L != static_cast<unsigned>(Pure))
          Perm.push_back(L);
      Perm.push_back(static_cast<unsigned>(Pure));
      Sched.Transforms.push_back(Transformation::interchange(Perm));
    }
  }

  // Tile / parallelize the pure dims.
  std::vector<int64_t> Sizes(N, 0);
  bool AnyTile = false;
  // Determine the current order after the optional reorder.
  std::vector<unsigned> Order(N);
  std::iota(Order.begin(), Order.end(), 0u);
  if (!Sched.Transforms.empty())
    for (unsigned L = 0; L < N; ++L)
      Order[L] = Sched.Transforms[0].Permutation[L];
  for (unsigned Level = 0; Level < N; ++Level) {
    unsigned Dim = Order[Level];
    if (Op.getIterator(Dim) != IteratorKind::Parallel)
      continue;
    int64_t Size = Directives.PureTile;
    if (Directives.Parallel && Size == 0)
      Size = 1; // plain parallelization (tile size one)
    if (Size > 0 && Size < Op.getLoopBound(Dim)) {
      Sizes[Level] = Size;
      AnyTile = true;
    } else if (Directives.Parallel) {
      Sizes[Level] = 1;
      AnyTile = true;
    }
  }
  if (AnyTile) {
    Sched.Transforms.push_back(
        Directives.Parallel
            ? Transformation::tiledParallelization(Sizes)
            : Transformation::tiling(Sizes));
  }

  LoopNest Nest = materializeLoopNest(M, OpIdx, Sched);
  // Halide-style vectorization: the SIMD axis is a *pure* variable; the
  // reduction domain stays sequential per output point (no rfactor), so
  // the flag goes on the innermost pure point loop, wherever it sits.
  if (Directives.Vectorize && !Nest.Bodies.empty()) {
    std::vector<ScheduledLoop> &Loops = Nest.Bodies.back().Loops;
    for (unsigned I = Loops.size(); I > 0; --I) {
      ScheduledLoop &L = Loops[I - 1];
      if (!L.IsTileLoop && L.Kind == IteratorKind::Parallel) {
        L.Vectorized = true;
        break;
      }
    }
  }
  return Nest;
}
