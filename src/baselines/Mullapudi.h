//===- Mullapudi.h - The Halide autoscheduler baseline -----------*- C++-*-===//
///
/// \file
/// A model of the Mullapudi et al. Halide autoscheduler (the Table IV
/// baseline): a greedy heuristic that tiles pure dimensions so the tile
/// working set fits the L2 cache, parallelizes the outer tile loops, and
/// vectorizes the innermost pure dimension. Like the real autoscheduler
/// it never reorders or tiles reduction domains and applies one schedule
/// template per stage.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_BASELINES_MULLAPUDI_H
#define MLIRRL_BASELINES_MULLAPUDI_H

#include "baselines/ScheduleUtil.h"
#include "perf/Evaluator.h"

#include <memory>

namespace mlirrl {

class RolloutEngine;

/// The greedy autoscheduler.
class MullapudiAutoscheduler {
public:
  /// Owns a CostModelEvaluator over \p Machine (the common case).
  explicit MullapudiAutoscheduler(MachineModel Machine);

  /// Measures through an external evaluator (e.g. a CachingEvaluator
  /// shared with the RL system). \p Eval must outlive the baseline; the
  /// footprint heuristic still needs the machine description.
  MullapudiAutoscheduler(Evaluator &Eval, MachineModel Machine);

  /// Binds to \p Engine's evaluator (the shared memoized seam RL
  /// rollouts price through); the footprint heuristic still needs the
  /// machine description. \p Engine must outlive the baseline.
  MullapudiAutoscheduler(const RolloutEngine &Engine, MachineModel Machine);

  /// End-to-end time of the module under the autoscheduled program.
  double timeModule(const Module &M) const;

  /// The directives its heuristic picks for one op (for tests).
  HalideDirectives scheduleOp(const Module &M, unsigned OpIdx) const;

private:
  /// Set when constructed from a MachineModel; Eval points at it then.
  std::unique_ptr<CostModelEvaluator> OwnedEval;
  Evaluator &Eval;
  MachineModel Machine;
};

} // namespace mlirrl

#endif // MLIRRL_BASELINES_MULLAPUDI_H
