//===- RandomSearch.cpp ---------------------------------------------------===//

#include "baselines/RandomSearch.h"

#include "support/Rng.h"

using namespace mlirrl;

/// Samples a uniformly random action under the observation's masks.
static AgentAction randomAction(const Observation &Obs,
                                const EnvConfig &Config, Rng &Rng) {
  AgentAction Action;
  if (Config.ActionSpace == ActionSpaceMode::Flat) {
    std::vector<double> Weights = Obs.FlatMask;
    Action.FlatChoice = static_cast<unsigned>(Rng.sampleWeighted(Weights));
    return Action;
  }
  if (Obs.InPointerSequence) {
    Action.Kind = TransformKind::Interchange;
    Action.PointerChoice =
        static_cast<unsigned>(Rng.sampleWeighted(Obs.InterchangeMask));
    return Action;
  }
  Action.Kind = static_cast<TransformKind>(
      Rng.sampleWeighted(Obs.TransformMask));
  switch (Action.Kind) {
  case TransformKind::Tiling:
  case TransformKind::TiledParallelization:
  case TransformKind::TiledFusion:
    Action.TileSizeIdx.resize(Config.MaxLoops);
    for (unsigned &Idx : Action.TileSizeIdx)
      Idx = static_cast<unsigned>(Rng.nextBounded(Config.NumTileSizes));
    break;
  case TransformKind::Interchange:
    if (Config.Interchange == InterchangeMode::LevelPointers)
      Action.PointerChoice =
          static_cast<unsigned>(Rng.sampleWeighted(Obs.InterchangeMask));
    else
      Action.EnumeratedChoice =
          static_cast<unsigned>(Rng.sampleWeighted(Obs.InterchangeMask));
    break;
  case TransformKind::Vectorization:
  case TransformKind::NoTransformation:
    break;
  }
  return Action;
}

RandomSearchResult mlirrl::randomSearch(const EnvConfig &Config,
                                        Evaluator &Eval, const Module &M,
                                        unsigned Episodes, uint64_t Seed) {
  Rng Rng(Seed);
  RandomSearchResult Best;
  for (unsigned E = 0; E < Episodes; ++E) {
    Environment Env(Config, Eval, M);
    while (!Env.isDone())
      Env.step(randomAction(Env.observe(), Config, Rng));
    double Speedup = Env.currentSpeedup();
    ++Best.EpisodesUsed;
    if (Speedup > Best.Speedup) {
      Best.Speedup = Speedup;
      Best.Schedule = Env.getSchedule();
    }
  }
  return Best;
}
