//===- RandomSearch.cpp ---------------------------------------------------===//

#include "baselines/RandomSearch.h"

#include "support/Rng.h"

#include <algorithm>
#include <optional>

using namespace mlirrl;

AgentAction mlirrl::randomAction(const Observation &Obs,
                                 const EnvConfig &Config, Rng &Rng) {
  // This runs against observations of arbitrary imported modules
  // (optimize_ir, the fuzz harness), so every mask draw is checked: an
  // all-masked head -- impossible for a well-formed environment, but
  // not locally provable here -- degrades to a wasted step the
  // environment already knows how to absorb, never an abort
  // (support/Error.h policy). The checked draws are bitwise-identical
  // to the fatal ones whenever any weight is set.
  AgentAction Action;
  if (Config.ActionSpace == ActionSpaceMode::Flat) {
    std::optional<size_t> Choice = Rng.trySampleWeighted(Obs.FlatMask);
    // Out-of-range flat choice = the environment's counted wasted-step
    // path for malformed driver actions.
    Action.FlatChoice = Choice
                            ? static_cast<unsigned>(*Choice)
                            : static_cast<unsigned>(Obs.FlatMask.size());
    return Action;
  }
  if (Obs.InPointerSequence) {
    Action.Kind = TransformKind::Interchange;
    std::optional<size_t> Level = Rng.trySampleWeighted(Obs.InterchangeMask);
    // An already-placed (masked) level is absorbed as a wasted pointer
    // step by the sequence logic.
    Action.PointerChoice = Level ? static_cast<unsigned>(*Level) : 0;
    return Action;
  }
  std::optional<size_t> Kind = Rng.trySampleWeighted(Obs.TransformMask);
  if (!Kind) {
    Action.Kind = TransformKind::NoTransformation;
    return Action;
  }
  Action.Kind = static_cast<TransformKind>(*Kind);
  switch (Action.Kind) {
  case TransformKind::Tiling:
  case TransformKind::TiledParallelization:
  case TransformKind::TiledFusion: {
    // Draw one index per present loop level only, like the policy's
    // tile heads; the remaining MaxLoops slots stay zero (levels past
    // the op's loop count are ignored by the environment, and drawing
    // for them would burn RNG state on nonexistent loops).
    Action.TileSizeIdx.assign(Config.MaxLoops, 0);
    unsigned Levels = std::min(Obs.NumLoops, Config.MaxLoops);
    for (unsigned L = 0; L < Levels; ++L)
      Action.TileSizeIdx[L] =
          static_cast<unsigned>(Rng.nextBounded(Config.NumTileSizes));
    break;
  }
  case TransformKind::Interchange: {
    std::optional<size_t> Perm = Rng.trySampleWeighted(Obs.InterchangeMask);
    if (!Perm) {
      // Interchange was offered but no permutation is legal: treat the
      // whole step as a no-op rather than abort.
      Action.Kind = TransformKind::NoTransformation;
      break;
    }
    if (Config.Interchange == InterchangeMode::LevelPointers)
      Action.PointerChoice = static_cast<unsigned>(*Perm);
    else
      Action.EnumeratedChoice = static_cast<unsigned>(*Perm);
    break;
  }
  case TransformKind::Vectorization:
  case TransformKind::NoTransformation:
    break;
  }
  return Action;
}

RandomSearchResult mlirrl::randomSearch(const RolloutEngine &Engine,
                                        const Module &M, unsigned Episodes,
                                        uint64_t Seed) {
  Rng Stream(Seed);
  const EnvConfig &Config = Engine.envConfig();
  RolloutEngine::ActionSource Source =
      [&](const std::vector<const Observation *> &Obs,
          const std::vector<Rng *> &Streams) {
        std::vector<ActorCritic::Sampled> Out(Obs.size());
        for (size_t I = 0; I < Obs.size(); ++I)
          Out[I].Action = randomAction(*Obs[I], Config, *Streams[I]);
        return Out;
      };

  RolloutEngine::Options Opts;
  Opts.RecordSchedule = true;

  RandomSearchResult Best;
  // Episodes run sequentially, width 1, all drawing from the single
  // stream -- the legacy loop's RNG consumption order.
  for (unsigned E = 0; E < Episodes; ++E) {
    RolloutEngine::Episode Ep =
        std::move(Engine.rolloutGroup({&M}, {&Stream}, Source, Opts).front());
    ++Best.EpisodesUsed;
    if (Ep.Speedup > Best.Speedup) {
      Best.Speedup = Ep.Speedup;
      Best.Schedule = std::move(Ep.Schedule);
    }
  }
  return Best;
}

RandomSearchResult mlirrl::randomSearch(const EnvConfig &Config,
                                        Evaluator &Eval, const Module &M,
                                        unsigned Episodes, uint64_t Seed) {
  RolloutEngine Engine(Config, Eval);
  return randomSearch(Engine, M, Episodes, Seed);
}
