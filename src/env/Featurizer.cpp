//===- Featurizer.cpp -----------------------------------------------------===//

#include "env/Featurizer.h"

#include "support/Error.h"
#include "transforms/Legality.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace mlirrl;

void ActionHistory::ensureSize(unsigned Steps) {
  if (Entries.size() < Steps)
    Entries.resize(Steps);
}

void ActionHistory::recordTiled(unsigned Step, TransformKind Kind,
                                std::vector<unsigned> TileSizeIdx) {
  ensureSize(Step + 1);
  Entries[Step].Kind = Kind;
  Entries[Step].TileSizeIdx = std::move(TileSizeIdx);
  Entries[Step].Used = true;
}

void ActionHistory::recordInterchange(unsigned Step,
                                      std::vector<int> Placement) {
  ensureSize(Step + 1);
  Entries[Step].Kind = TransformKind::Interchange;
  Entries[Step].Placement = std::move(Placement);
  Entries[Step].Used = true;
}

Featurizer::Featurizer(EnvConfig Config) : Config(Config) {}

unsigned Featurizer::staticFeatureSize() const {
  unsigned N = Config.MaxLoops;
  unsigned OpType = 6;
  unsigned LoopRanges = N * 3; // log-bound, parallel, reduction
  unsigned VecFlag = 1;
  unsigned Maps = Config.MaxArrays * Config.MaxRank * (N + 1);
  unsigned OpCounts = 5;
  return OpType + LoopRanges + VecFlag + Maps + OpCounts;
}

unsigned Featurizer::featureSize() const {
  unsigned N = Config.MaxLoops;
  unsigned Tau = Config.MaxScheduleLength;
  unsigned TileHistory = Tau * N * Config.NumTileSizes;
  unsigned InterchangeHistory = Tau * N * N;
  return staticFeatureSize() + TileHistory + InterchangeHistory;
}

/// The six one-hot operation categories of Fig. 1.
static unsigned opTypeIndex(OpKind Kind) {
  switch (Kind) {
  case OpKind::Generic:
  case OpKind::Sigmoid:
  case OpKind::Softmax:
    return 0; // generic (ReLU-like ops explicitly coded are generic too)
  case OpKind::Matmul:
    return 1;
  case OpKind::Conv2D:
    return 2;
  case OpKind::PoolingMax:
    return 3;
  case OpKind::Add:
    return 4;
  case OpKind::ReLU:
    return 0; // coded with linalg.generic in the paper's pipeline
  case OpKind::Unknown:
    return 5;
  }
  MLIRRL_UNREACHABLE("unknown op kind");
}

std::vector<double> Featurizer::featurizeStatic(const Module &M,
                                                const LinalgOp &Op) const {
  unsigned N = Config.MaxLoops;
  std::vector<double> Out;
  Out.reserve(featureSize());

  // 1) Operation type.
  for (unsigned I = 0; I < 6; ++I)
    Out.push_back(I == opTypeIndex(Op.getKind()) ? 1.0 : 0.0);

  // 2) Loop ranges: normalized log2(bound), parallel flag, reduction flag.
  for (unsigned L = 0; L < N; ++L) {
    if (L < Op.getNumLoops()) {
      Out.push_back(std::log2(static_cast<double>(Op.getLoopBound(L))) /
                    16.0);
      bool Parallel = Op.getIterator(L) == IteratorKind::Parallel;
      Out.push_back(Parallel ? 1.0 : 0.0);
      Out.push_back(Parallel ? 0.0 : 1.0);
    } else {
      Out.push_back(0.0);
      Out.push_back(0.0);
      Out.push_back(0.0);
    }
  }

  // 3) Vectorization pre-condition flag.
  Out.push_back(vectorizationPrecondition(Op) ? 1.0 : 0.0);

  // 4) Indexing maps as access matrices (inputs then output), padded to
  // MaxArrays tensors of MaxRank rows and N+1 columns (constant last).
  auto EmitMap = [&](const AffineMap &Map) {
    for (unsigned R = 0; R < Config.MaxRank; ++R) {
      for (unsigned D = 0; D <= N; ++D) {
        double Value = 0.0;
        if (R < Map.getNumResults()) {
          const AffineExpr &E = Map.getResult(R);
          if (D < N)
            Value = D < E.getNumDims()
                        ? static_cast<double>(E.getCoeff(D))
                        : 0.0;
          else
            Value = static_cast<double>(E.getConstant());
        }
        // Coefficients are small integers; constants can be large
        // (crops, reversals), so squash them.
        Out.push_back(std::clamp(Value / 8.0, -4.0, 4.0));
      }
    }
  };
  unsigned Emitted = 0;
  for (const OpOperand &In : Op.getInputs()) {
    if (Emitted == Config.MaxArrays)
      break;
    EmitMap(In.Map);
    ++Emitted;
  }
  if (Emitted < Config.MaxArrays) {
    EmitMap(Op.getOutputMap());
    ++Emitted;
  }
  for (; Emitted < Config.MaxArrays; ++Emitted)
    for (unsigned I = 0; I < Config.MaxRank * (N + 1); ++I)
      Out.push_back(0.0);
  (void)M;

  // 5) Arithmetic operation counts (log1p-normalized).
  const ArithCounts &A = Op.getArith();
  for (int64_t Count : {A.Add, A.Sub, A.Mul, A.Div, A.Exp})
    Out.push_back(std::log1p(static_cast<double>(Count)));

  assert(Out.size() == staticFeatureSize() && "static feature layout drift");
  return Out;
}

void Featurizer::appendHistory(const ActionHistory &History,
                               std::vector<double> &Out) const {
  // 6) Action history: tau x N x M tiled slab, then tau x N x N
  // interchange slab (Appendix A).
  unsigned N = Config.MaxLoops;
  unsigned Tau = Config.MaxScheduleLength;
  unsigned MSizes = Config.NumTileSizes;
  for (unsigned T = 0; T < Tau; ++T) {
    const ActionHistory::Entry *E =
        T < History.Entries.size() ? &History.Entries[T] : nullptr;
    bool Tiled = E && E->Used &&
                 (E->Kind == TransformKind::Tiling ||
                  E->Kind == TransformKind::TiledParallelization ||
                  E->Kind == TransformKind::TiledFusion);
    for (unsigned L = 0; L < N; ++L)
      for (unsigned S = 0; S < MSizes; ++S) {
        bool On = Tiled && L < E->TileSizeIdx.size() &&
                  E->TileSizeIdx[L] == S;
        Out.push_back(On ? 1.0 : 0.0);
      }
  }
  for (unsigned T = 0; T < Tau; ++T) {
    const ActionHistory::Entry *E =
        T < History.Entries.size() ? &History.Entries[T] : nullptr;
    bool Inter = E && E->Used && E->Kind == TransformKind::Interchange;
    for (unsigned Pos = 0; Pos < N; ++Pos)
      for (unsigned Loop = 0; Loop < N; ++Loop) {
        bool On = Inter && Pos < E->Placement.size() &&
                  E->Placement[Pos] == static_cast<int>(Loop);
        Out.push_back(On ? 1.0 : 0.0);
      }
  }
}

std::vector<double> Featurizer::featurize(const Module &M, const LinalgOp &Op,
                                          const ActionHistory &History) const {
  std::vector<double> Out = featurizeStatic(M, Op);
  appendHistory(History, Out);
  assert(Out.size() == featureSize() && "feature layout drift");
  return Out;
}

EnvConfig EnvConfig::laptop() {
  EnvConfig C;
  C.MaxLoops = 9;
  C.MaxArrays = 4;
  C.MaxRank = 6;
  return C;
}
