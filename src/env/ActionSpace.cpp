//===- ActionSpace.cpp ----------------------------------------------------===//

#include "env/ActionSpace.h"

#include "support/Format.h"
#include "transforms/Legality.h"

#include <cmath>

using namespace mlirrl;

std::string AgentAction::toString() const {
  std::string Out = getTransformKindName(Kind);
  if (!TileSizeIdx.empty()) {
    std::vector<std::string> Parts;
    for (unsigned I : TileSizeIdx)
      Parts.push_back(formatString("%u", I));
    Out += "[" + join(Parts, ",") + "]";
  }
  return Out;
}

std::string FlatAction::toString() const {
  return getTransformKindName(Kind) +
         formatString("(tile=%u, swap=%u)", TileSizeIdx, SwapIdx);
}

ActionSpaceInfo::ActionSpaceInfo(const EnvConfig &Config) : Config(Config) {}

unsigned ActionSpaceInfo::interchangeHeadSize() const {
  if (Config.Interchange == InterchangeMode::LevelPointers)
    return Config.MaxLoops;
  unsigned N = Config.MaxLoops;
  return N >= 3 ? 3 * N - 6
                : static_cast<unsigned>(
                      getEnumeratedInterchangeCandidates(N).size());
}

double ActionSpaceInfo::flatTheoreticalSize(unsigned NumLoops) const {
  // |A| = 3 * M^N + N! + 2 (Sec. IV-A).
  double MpowN = std::pow(static_cast<double>(Config.NumTileSizes),
                          static_cast<double>(NumLoops));
  double Factorial = 1.0;
  for (unsigned I = 2; I <= NumLoops; ++I)
    Factorial *= I;
  return 3.0 * MpowN + Factorial + 2.0;
}

std::vector<FlatAction> mlirrl::buildFlatActionList(const EnvConfig &Config) {
  std::vector<FlatAction> Actions;
  // Tiled kinds with uniform non-zero tile sizes.
  for (TransformKind Kind : {TransformKind::Tiling,
                             TransformKind::TiledParallelization,
                             TransformKind::TiledFusion})
    for (unsigned S = 1; S < Config.NumTileSizes; ++S)
      Actions.push_back(FlatAction{Kind, S, 0});
  // Enumerated interchange swaps over the maximal loop count; swaps
  // whose levels exceed the current op's depth are masked at runtime.
  unsigned NumSwaps =
      getEnumeratedInterchangeCandidates(Config.MaxLoops).size();
  for (unsigned I = 0; I < NumSwaps; ++I)
    Actions.push_back(FlatAction{TransformKind::Interchange, 0, I});
  Actions.push_back(FlatAction{TransformKind::Vectorization, 0, 0});
  Actions.push_back(FlatAction{TransformKind::NoTransformation, 0, 0});
  return Actions;
}
