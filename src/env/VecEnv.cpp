//===- VecEnv.cpp ---------------------------------------------------------===//

#include "env/VecEnv.h"

#include "support/Stats.h"

using namespace mlirrl;

VecEnv::VecEnv(const EnvConfig &Config, Evaluator &Eval,
               std::vector<Module> Samples) {
  if (Samples.empty()) {
    // Recoverable misuse (e.g. a dataset shard that filtered down to
    // nothing): a zero-width batch that is allDone() from the start,
    // not an abort.
    recordRobustnessEvent(RobustnessEvent::VecEnvEmptyBatch);
    return;
  }
  Envs.reserve(Samples.size());
  for (Module &Sample : Samples)
    Envs.push_back(
        std::make_unique<Environment>(Config, Eval, std::move(Sample)));
  for (unsigned I = 0; I < Envs.size(); ++I)
    if (!Envs[I]->isDone())
      Live.push_back(I);
}

std::vector<const Observation *> VecEnv::observeLive() const {
  std::vector<const Observation *> Batch;
  Batch.reserve(Live.size());
  for (unsigned Idx : Live)
    Batch.push_back(&Envs[Idx]->observe());
  return Batch;
}

std::vector<VecEnv::StepOutcome>
VecEnv::step(const std::vector<AgentAction> &Actions) {
  if (Actions.size() != Live.size()) {
    // Driver bug, not a reason to kill a training run: nothing is
    // stepped (a partial lockstep step would desynchronize the batch)
    // and the caller gets one inert outcome per live environment.
    recordRobustnessEvent(RobustnessEvent::VecEnvActionArityMismatch);
    std::vector<StepOutcome> Inert(Live.size());
    return Inert;
  }
  std::vector<StepOutcome> Outcomes(Live.size());
  std::vector<unsigned> StillLive;
  StillLive.reserve(Live.size());
  for (unsigned K = 0; K < Live.size(); ++K) {
    Environment &Env = *Envs[Live[K]];
    Environment::StepOutcome Out = Env.step(Actions[K]);
    Outcomes[K].Reward = Out.Reward;
    Outcomes[K].Done = Out.Done;
    if (!Out.Done)
      StillLive.push_back(Live[K]);
  }
  Live = std::move(StillLive);
  return Outcomes;
}
