//===- ActionSpace.h - Multi-discrete and flat action spaces -----*- C++-*-===//
///
/// \file
/// The action-space geometry of Sec. IV-A: head sizes of the
/// multi-discrete formulation (transformation selection, per-level tile
/// sizes, interchange via enumerated candidates or level pointers) and
/// the flat-list formulation used by the Fig. 6 ablation. The
/// environment consumes AgentAction; the policy produces it by sampling
/// the active heads.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_ENV_ACTIONSPACE_H
#define MLIRRL_ENV_ACTIONSPACE_H

#include "env/Config.h"
#include "transforms/Schedule.h"

#include <string>
#include <vector>

namespace mlirrl {

/// One sampled action. Which fields are meaningful depends on Kind and
/// on the environment phase (level-pointer sub-steps only use
/// PointerChoice).
struct AgentAction {
  TransformKind Kind = TransformKind::NoTransformation;

  /// Tiled kinds: per-level index into EnvConfig::TileCandidates
  /// (length MaxLoops; levels beyond the op's N are ignored).
  std::vector<unsigned> TileSizeIdx;

  /// Interchange, enumerated mode: candidate index (swap list).
  unsigned EnumeratedChoice = 0;

  /// Interchange, level-pointer mode: the loop placed at the current
  /// position.
  unsigned PointerChoice = 0;

  /// Flat mode: index into the flat action list.
  unsigned FlatChoice = 0;

  std::string toString() const;
};

/// Geometry of the policy heads for a given configuration.
struct ActionSpaceInfo {
  explicit ActionSpaceInfo(const EnvConfig &Config);

  /// Size of the transformation-selection head (6).
  unsigned transformHeadSize() const { return NumTransformKinds; }

  /// Tile heads: MaxLoops rows of NumTileSizes columns each.
  unsigned tileRows() const { return Config.MaxLoops; }
  unsigned tileCols() const { return Config.NumTileSizes; }

  /// Interchange head size: 3N-6 candidates or N pointers.
  unsigned interchangeHeadSize() const;

  /// Total size of the multi-discrete action space |A| as the paper
  /// counts it: 3 * M^N + N! + 2 (for reporting only).
  double flatTheoreticalSize(unsigned NumLoops) const;

  const EnvConfig &getConfig() const { return Config; }

private:
  EnvConfig Config;
};

/// One entry of the flat action list (Fig. 6 ablation): a fully
/// parameterized transformation.
struct FlatAction {
  TransformKind Kind;
  /// Uniform tile-size candidate index applied to every level (the flat
  /// space cannot afford per-level parameters).
  unsigned TileSizeIdx = 0;
  /// Enumerated interchange candidate.
  unsigned SwapIdx = 0;

  std::string toString() const;
};

/// Builds the flat action list for a configuration: all tiled kinds with
/// every uniform non-zero tile size, all enumerated swaps, vectorization
/// and no-transformation.
std::vector<FlatAction> buildFlatActionList(const EnvConfig &Config);

} // namespace mlirrl

#endif // MLIRRL_ENV_ACTIONSPACE_H
