//===- Featurizer.h - State representation (Fig. 1) --------------*- C++-*-===//
///
/// \file
/// Builds the representation vector of a Linalg operation exactly as the
/// paper's Fig. 1 pipeline does: operation-type one-hot, loop ranges
/// (upper bound + iterator type), vectorization pre-condition flag,
/// indexing maps as D x (N+1) access matrices, arithmetic operation
/// counts, and the one-hot action history of Appendix A (a tau x N x M
/// slab for tiled transformations and a tau x N x N slab for
/// interchange).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_ENV_FEATURIZER_H
#define MLIRRL_ENV_FEATURIZER_H

#include "env/Config.h"
#include "ir/Module.h"
#include "transforms/Schedule.h"

#include <vector>

namespace mlirrl {

/// The recorded action history of one operation (Appendix A): for each
/// time step, the tile sizes chosen per loop (index into the candidate
/// set) or the interchange placement, or nothing.
struct ActionHistory {
  struct Entry {
    TransformKind Kind = TransformKind::NoTransformation;
    /// For tiled kinds: per-level tile candidate index (size N).
    std::vector<unsigned> TileSizeIdx;
    /// For interchange: Placement[i] = loop placed at position i; during
    /// level-pointer sub-steps this is partially filled (the paper feeds
    /// the partial permutation back so the agent knows the stage).
    std::vector<int> Placement;
    bool Used = false;
  };
  std::vector<Entry> Entries;

  /// Records a completed tiled transformation at step \p Step.
  void recordTiled(unsigned Step, TransformKind Kind,
                   std::vector<unsigned> TileSizeIdx);
  /// Records (possibly partially) an interchange at step \p Step.
  void recordInterchange(unsigned Step, std::vector<int> Placement);

  void ensureSize(unsigned Steps);
};

/// Computes feature vectors of fixed layout from (operation, history).
///
/// The layout is a static prefix (operation type, loop ranges,
/// vectorization flag, access matrices, arithmetic counts -- a function
/// of the operation alone) followed by the action-history slabs. The
/// split is exposed so the environment can cache the static prefix per
/// operation and re-emit only the history slabs the last action touched
/// (delta featurization); featurize() itself is the concatenation, so
/// both paths produce bitwise-identical vectors.
class Featurizer {
public:
  explicit Featurizer(EnvConfig Config);

  /// Total feature vector length (fixed across operations).
  unsigned featureSize() const;

  /// Length of the operation-only prefix (featureSize() minus the
  /// history slabs).
  unsigned staticFeatureSize() const;

  /// Featurizes one operation with its action history.
  std::vector<double> featurize(const Module &M, const LinalgOp &Op,
                                const ActionHistory &History) const;

  /// The operation-only prefix (sections 1-5 of the layout).
  std::vector<double> featurizeStatic(const Module &M,
                                      const LinalgOp &Op) const;

  /// Appends the history slabs (section 6) to \p Out, which must hold a
  /// static prefix.
  void appendHistory(const ActionHistory &History,
                     std::vector<double> &Out) const;

  /// The all-zero vector standing in for a missing producer.
  std::vector<double> zeroVector() const {
    return std::vector<double>(featureSize(), 0.0);
  }

  const EnvConfig &getConfig() const { return Config; }

private:
  EnvConfig Config;
};

} // namespace mlirrl

#endif // MLIRRL_ENV_FEATURIZER_H
