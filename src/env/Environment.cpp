//===- Environment.cpp ----------------------------------------------------===//

#include "env/Environment.h"

#include "support/Error.h"
#include "support/Stats.h"
#include "transforms/Legality.h"
#include "transforms/PostTransformChecks.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace mlirrl;

Environment::Environment(EnvConfig Config, Evaluator &Eval, Module Sample)
    : Config(Config), Feat(Config), Space(Config), Eval(Eval),
      Sample(std::move(Sample)), State(this->Sample) {
  assert(this->Sample.getNumOps() > 0 && "empty module");
  if (Config.ActionSpace == ActionSpaceMode::Flat)
    FlatActions = buildFlatActionList(Config);
  StaticFeat.resize(this->Sample.getNumOps());
  ProducerFeat.resize(this->Sample.getNumOps());

  BaselineSeconds = Eval.timeBaseline(this->Sample);
  PreviousSeconds = BaselineSeconds;
  // The baseline itself is measured once (Runs executions).
  MeasurementSeconds += BaselineSeconds;

  CurrentOp = static_cast<int>(this->Sample.getNumOps()) - 1;
  Machine.emplace(this->Sample.getOp(CurrentOp));
  computeObservation();
}

unsigned Environment::effectiveLoops() const {
  return std::min(Config.MaxLoops,
                  Sample.getOp(CurrentOp).getNumLoops());
}

const std::vector<unsigned> &Environment::currentFusedProducers() const {
  static const std::vector<unsigned> Empty;
  auto It = State.getSchedule().OpSchedules.find(
      static_cast<unsigned>(CurrentOp));
  return It == State.getSchedule().OpSchedules.end() ? Empty
                                                     : It->second.FusedProducers;
}

int Environment::findProducerCandidate() const {
  // The fused group: the consumer plus everything already fused into it.
  std::vector<unsigned> Group = currentFusedProducers();
  Group.push_back(static_cast<unsigned>(CurrentOp));

  auto InGroup = [&](unsigned Idx) {
    return std::find(Group.begin(), Group.end(), Idx) != Group.end();
  };

  const ModuleSchedule &Sched = State.getSchedule();
  int Best = -1;
  for (unsigned Member : Group) {
    for (const OpOperand &In : Sample.getOp(Member).getInputs()) {
      int Def = Sample.getDefiningOp(In.Value);
      if (Def < 0 || InGroup(static_cast<unsigned>(Def)) ||
          Sched.isFusedAway(static_cast<unsigned>(Def)))
        continue;
      // The producer must be exclusively consumed by the group
      // (otherwise it still needs a standalone materialization and
      // fusion would duplicate work).
      bool Exclusive = true;
      for (unsigned User : Sample.getConsumers(static_cast<unsigned>(Def)))
        Exclusive &= InGroup(User);
      if (!Exclusive)
        continue;
      if (!canFuseProducer(Sample, static_cast<unsigned>(CurrentOp),
                           static_cast<unsigned>(Def)) &&
          !canFuseProducer(Sample, Member, static_cast<unsigned>(Def)))
        continue;
      Best = std::max(Best, Def);
    }
  }
  return Best;
}

std::vector<int64_t>
Environment::tileSizesFromAction(const AgentAction &Action) const {
  const LinalgOp &Op = Sample.getOp(CurrentOp);
  unsigned N = Op.getNumLoops();
  std::vector<int64_t> Sizes(N, 0);
  for (unsigned L = 0; L < std::min<unsigned>(N, Config.MaxLoops); ++L) {
    unsigned Idx = L < Action.TileSizeIdx.size() ? Action.TileSizeIdx[L] : 0;
    if (Idx < Config.TileCandidates.size())
      Sizes[L] = Config.TileCandidates[Idx];
  }
  return Sizes;
}

double Environment::measuredModuleTime() {
  // Measure the module under the schedule assembled so far, including
  // the in-progress schedule of the current op (the state always holds
  // exactly that). Incremental: only dirty op nests are re-priced.
  // From-scratch: the whole-module oracle path, bitwise-identical.
  if (Config.Incremental)
    return Eval.timeState(State);
  return Eval.timeModule(Sample, State.getSchedule());
}

double Environment::rewardAfterEffectiveStep() {
  if (Config.Reward != RewardMode::Immediate)
    return 0.0;
  // Immediate reward: executing the program after every step to compute
  // the incremental log-speedup. The execution itself costs wall-clock
  // (the paper's argument against this mode).
  double Now = measuredModuleTime();
  MeasurementSeconds += Now;
  double Reward = std::log(PreviousSeconds / Now);
  PreviousSeconds = Now;
  return Reward;
}

void Environment::recordHistoryForTiled(TransformKind Kind,
                                        const std::vector<unsigned> &SizeIdx) {
  History.recordTiled(TauUsed, Kind, SizeIdx);
  ++HistoryVersion;
}

void Environment::recordHistoryForInterchange(
    const std::vector<int> &Placement) {
  History.recordInterchange(TauUsed, Placement);
  ++HistoryVersion;
}

bool Environment::applyTransform(const Transformation &T, int Producer) {
  // Trial-apply against a copy: the engine's routine rejections leave
  // the step a silent no-op exactly as before (trajectory-preserving),
  // and a check failure must not leave a half-applied machine behind.
  OpTransformState Trial = *Machine;
  if (!Trial.apply(T).Applied)
    return false;

  if (Config.PostTransformChecks) {
    // The candidate schedule: everything committed to the current op so
    // far plus this action. Checked from scratch, so divergence between
    // the machine and the transaction state is also caught here.
    OpSchedule Candidate;
    auto It = State.getSchedule().OpSchedules.find(
        static_cast<unsigned>(CurrentOp));
    if (It != State.getSchedule().OpSchedules.end())
      Candidate = It->second;
    Candidate.Transforms.push_back(T);
    if (Producer >= 0)
      Candidate.FusedProducers.push_back(static_cast<unsigned>(Producer));
    std::string Err;
    if (!checkCandidateAction(Sample, static_cast<unsigned>(CurrentOp),
                              Candidate, Err)) {
      recordRobustnessEvent(RobustnessEvent::PostTransformCheckFailed);
      CheckFailedThisStep = true;
      return false;
    }
  }

  *Machine = std::move(Trial);
  State.apply(static_cast<unsigned>(CurrentOp), T, Producer);
  return true;
}

Environment::StepOutcome Environment::step(const AgentAction &Action) {
  if (Done) {
    // A buggy driver (or a future inference server replaying stale
    // actions) must not take the process down: the episode is over, so
    // the step is inert.
    recordRobustnessEvent(RobustnessEvent::StepAfterDone);
    StepOutcome Inert;
    Inert.Done = true;
    return Inert;
  }

  StepOutcome Outcome;
  CheckFailedThisStep = false;
  const unsigned N = effectiveLoops();
  const LinalgOp &Op = Sample.getOp(CurrentOp);

  // ---- Level-pointer continuation ---------------------------------------
  if (InPointerSequence) {
    unsigned Choice = Action.PointerChoice;
    if (Choice < N && PartialPlacement[NextPointerPos] == -1 &&
        std::find(PartialPlacement.begin(), PartialPlacement.end(),
                  static_cast<int>(Choice)) == PartialPlacement.end()) {
      PartialPlacement[NextPointerPos] = static_cast<int>(Choice);
      ++NextPointerPos;
      recordHistoryForInterchange(PartialPlacement);
    }
    if (NextPointerPos == N) {
      // Complete: build the permutation over the full loop count
      // (identity beyond the represented levels).
      unsigned FullN = Op.getNumLoops();
      std::vector<unsigned> Perm(FullN);
      for (unsigned I = 0; I < FullN; ++I)
        Perm[I] = I < N ? static_cast<unsigned>(PartialPlacement[I]) : I;
      applyTransform(Transformation::interchange(Perm));
      InPointerSequence = false;
      ++TauUsed;
      Outcome.Reward = rewardAfterEffectiveStep();
      if (TauUsed >= Config.MaxScheduleLength)
        finishCurrentOp();
    }
    if (CheckFailedThisStep)
      Outcome.Reward -= Config.CheckFailurePenalty;
    Outcome.Done = Done;
    computeObservation();
    return Outcome;
  }

  // ---- Flat-mode decoding ------------------------------------------------
  AgentAction Decoded = Action;
  bool MalformedAction = false;
  if (Config.ActionSpace == ActionSpaceMode::Flat) {
    if (Action.FlatChoice >= FlatActions.size()) {
      // A flat index outside the action list is a driver bug (the
      // policy's head can never produce one): waste the step instead of
      // throwing out of std::vector::at.
      MalformedAction = true;
      ++TauUsed;
      Outcome.Reward = rewardAfterEffectiveStep();
    } else {
      const FlatAction &Flat = FlatActions[Action.FlatChoice];
      Decoded.Kind = Flat.Kind;
      Decoded.TileSizeIdx.assign(Config.MaxLoops, Flat.TileSizeIdx);
      Decoded.EnumeratedChoice = Flat.SwapIdx;
    }
  }

  if (!MalformedAction)
    switch (Decoded.Kind) {
  case TransformKind::Tiling:
  case TransformKind::TiledParallelization: {
    Transformation T =
        Decoded.Kind == TransformKind::Tiling
            ? Transformation::tiling(tileSizesFromAction(Decoded))
            : Transformation::tiledParallelization(
                  tileSizesFromAction(Decoded));
    if (applyTransform(T))
      recordHistoryForTiled(Decoded.Kind, Decoded.TileSizeIdx);
    ++TauUsed;
    Outcome.Reward = rewardAfterEffectiveStep();
    break;
  }
  case TransformKind::TiledFusion: {
    int Producer = findProducerCandidate();
    Transformation T =
        Transformation::tiledFusion(tileSizesFromAction(Decoded));
    if (Producer >= 0 && applyTransform(T, Producer))
      recordHistoryForTiled(Decoded.Kind, Decoded.TileSizeIdx);
    ++TauUsed;
    Outcome.Reward = rewardAfterEffectiveStep();
    break;
  }
  case TransformKind::Interchange: {
    if (Config.ActionSpace == ActionSpaceMode::MultiDiscrete &&
        Config.Interchange == InterchangeMode::LevelPointers) {
      // Start the pointer sequence with the first placement.
      if (N >= 1 && Action.PointerChoice < N) {
        PartialPlacement.assign(N, -1);
        PartialPlacement[0] = static_cast<int>(Action.PointerChoice);
        NextPointerPos = 1;
        InPointerSequence = true;
        recordHistoryForInterchange(PartialPlacement);
        if (N == 1) {
          // Degenerate single-loop interchange: identity, complete now.
          InPointerSequence = false;
          ++TauUsed;
          Outcome.Reward = rewardAfterEffectiveStep();
        }
      } else {
        ++TauUsed; // malformed pointer start: wasted step
      }
    } else {
      // Enumerated swap.
      auto Candidates =
          getEnumeratedInterchangeCandidates(Op.getNumLoops());
      if (Decoded.EnumeratedChoice < Candidates.size()) {
        auto [I, J] = Candidates[Decoded.EnumeratedChoice];
        Transformation T = Transformation::interchange(
            makeSwapPermutation(Op.getNumLoops(), I, J));
        if (applyTransform(T)) {
          std::vector<int> Placement(Op.getNumLoops());
          for (unsigned L = 0; L < Op.getNumLoops(); ++L)
            Placement[L] = static_cast<int>(T.Permutation[L]);
          recordHistoryForInterchange(Placement);
        }
      }
      ++TauUsed;
      Outcome.Reward = rewardAfterEffectiveStep();
    }
    break;
  }
  case TransformKind::Vectorization: {
    applyTransform(Transformation::vectorization());
    ++TauUsed;
    Outcome.Reward = rewardAfterEffectiveStep();
    finishCurrentOp();
    break;
  }
  case TransformKind::NoTransformation: {
    ++TauUsed;
    Outcome.Reward = rewardAfterEffectiveStep();
    finishCurrentOp();
    break;
  }
  }

  if (!Done && !InPointerSequence && TauUsed >= Config.MaxScheduleLength)
    finishCurrentOp();

  // Terminal reward: log-speedup of the fully assembled schedule.
  if (Done && Config.Reward == RewardMode::Final) {
    double Final = measuredModuleTime();
    MeasurementSeconds += Final;
    Outcome.Reward += std::log(BaselineSeconds / Final);
  }

  if (CheckFailedThisStep)
    Outcome.Reward -= Config.CheckFailurePenalty;
  Outcome.Done = Done;
  computeObservation();
  return Outcome;
}

void Environment::finishCurrentOp() {
  // The state already holds everything applied to the current op; the
  // op's schedule needs no commit step.
  advanceToNextOp();
}

void Environment::advanceToNextOp() {
  const ModuleSchedule &Sched = State.getSchedule();
  int Next = CurrentOp - 1;
  while (Next >= 0 && Sched.isFusedAway(static_cast<unsigned>(Next)))
    --Next;
  CurrentOp = Next;
  History = ActionHistory();
  ++HistoryVersion;
  TauUsed = 0;
  InPointerSequence = false;
  if (CurrentOp < 0) {
    Done = true;
    Machine.reset();
    return;
  }
  Machine.emplace(Sample.getOp(CurrentOp));
}

double Environment::currentSpeedup() {
  return BaselineSeconds / measuredModuleTime();
}

const std::vector<double> &Environment::staticFeatures(unsigned OpIdx) {
  std::vector<double> &F = StaticFeat[OpIdx];
  if (F.empty())
    F = Feat.featurizeStatic(Sample, Sample.getOp(OpIdx));
  return F;
}

const std::vector<double> &Environment::consumerFeatures() {
  if (ConsumerFeatOp != CurrentOp || ConsumerFeatVersion != HistoryVersion) {
    ConsumerFeat = staticFeatures(static_cast<unsigned>(CurrentOp));
    Feat.appendHistory(History, ConsumerFeat);
    ConsumerFeatOp = CurrentOp;
    ConsumerFeatVersion = HistoryVersion;
  }
  return ConsumerFeat;
}

const std::vector<double> &Environment::producerFeatures(unsigned OpIdx) {
  std::vector<double> &F = ProducerFeat[OpIdx];
  if (F.empty()) {
    F = staticFeatures(OpIdx);
    Feat.appendHistory(ActionHistory(), F);
  }
  return F;
}

void Environment::computeObservation() {
  Observation Obs;
  if (Done) {
    CurrentObs = Obs;
    return;
  }
  const LinalgOp &Op = Sample.getOp(CurrentOp);
  unsigned N = effectiveLoops();
  Obs.NumLoops = N;
  Obs.InPointerSequence = InPointerSequence;

  int Producer = findProducerCandidate();
  if (Config.Incremental) {
    // Delta featurization: static prefixes are computed once per op,
    // the consumer's history slabs only when the history moved, and
    // producer vectors once per op (empty history). Values are
    // bitwise-identical to the from-scratch featurize() calls below.
    Obs.Consumer = consumerFeatures();
    Obs.Producer = Producer >= 0
                       ? producerFeatures(static_cast<unsigned>(Producer))
                       : Feat.zeroVector();
  } else {
    Obs.Consumer = Feat.featurize(Sample, Op, History);
    Obs.Producer = Producer >= 0
                       ? Feat.featurize(Sample, Sample.getOp(Producer),
                                        ActionHistory())
                       : Feat.zeroVector();
  }

  // Transformation mask.
  Obs.TransformMask.assign(NumTransformKinds, 0.0);
  auto Allow = [&](TransformKind K) {
    Obs.TransformMask[static_cast<unsigned>(K)] = 1.0;
  };
  if (InPointerSequence) {
    Allow(TransformKind::Interchange);
  } else {
    Allow(TransformKind::Tiling);
    Allow(TransformKind::TiledParallelization);
    if (Producer >= 0)
      Allow(TransformKind::TiledFusion);
    if (N >= 2)
      Allow(TransformKind::Interchange);
    if (isVectorizationLegal(Op, Machine->getInnermostTrip()))
      Allow(TransformKind::Vectorization);
    Allow(TransformKind::NoTransformation);
  }

  // Interchange-head mask.
  unsigned HeadSize = Space.interchangeHeadSize();
  Obs.InterchangeMask.assign(HeadSize, 0.0);
  if (Config.Interchange == InterchangeMode::LevelPointers) {
    for (unsigned L = 0; L < std::min(N, HeadSize); ++L) {
      bool Taken =
          InPointerSequence &&
          std::find(PartialPlacement.begin(), PartialPlacement.end(),
                    static_cast<int>(L)) != PartialPlacement.end();
      if (!Taken)
        Obs.InterchangeMask[L] = 1.0;
    }
  } else {
    auto Valid = getEnumeratedInterchangeCandidates(Op.getNumLoops());
    for (unsigned I = 0; I < std::min<size_t>(HeadSize, Valid.size()); ++I)
      Obs.InterchangeMask[I] = 1.0;
  }

  // Flat-mode mask.
  if (Config.ActionSpace == ActionSpaceMode::Flat) {
    Obs.FlatMask.assign(FlatActions.size(), 0.0);
    auto Candidates = getEnumeratedInterchangeCandidates(Op.getNumLoops());
    std::vector<int64_t> Trips = Machine->getPointTrips();
    int64_t MaxTrip = *std::max_element(Trips.begin(), Trips.end());
    for (unsigned I = 0; I < FlatActions.size(); ++I) {
      const FlatAction &F = FlatActions[I];
      bool Legal = true;
      switch (F.Kind) {
      case TransformKind::Tiling:
        Legal = Config.TileCandidates[F.TileSizeIdx] < MaxTrip;
        break;
      case TransformKind::TiledParallelization:
        Legal = true;
        break;
      case TransformKind::TiledFusion:
        Legal = Producer >= 0 &&
                Config.TileCandidates[F.TileSizeIdx] < MaxTrip;
        break;
      case TransformKind::Interchange:
        Legal = F.SwapIdx < Candidates.size();
        break;
      case TransformKind::Vectorization:
        Legal = isVectorizationLegal(Op, Machine->getInnermostTrip());
        break;
      case TransformKind::NoTransformation:
        Legal = true;
        break;
      }
      Obs.FlatMask[I] = Legal ? 1.0 : 0.0;
    }
  }

  CurrentObs = std::move(Obs);
}
