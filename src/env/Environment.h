//===- Environment.h - The MLIR RL environment -------------------*- C++-*-===//
///
/// \file
/// The RL environment of Sec. III/IV. One episode optimizes one code
/// sample (Module): operations are visited in reverse order (consumers
/// before producers); per operation the agent applies up to tau
/// transformations; Vectorization and No Transformation are terminal for
/// the current operation; Tiled Fusion folds the current producer into
/// the consumer's tile loops; level-pointer interchange spans N forced
/// sub-steps (Appendix B). Rewards are log(speedup) over the unoptimized
/// baseline, terminal by default or per-step in Immediate mode, with the
/// simulated measurement cost tracked for the Fig. 7 wall-clock axis.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_ENV_ENVIRONMENT_H
#define MLIRRL_ENV_ENVIRONMENT_H

#include "env/ActionSpace.h"
#include "env/Featurizer.h"
#include "perf/Evaluator.h"
#include "transforms/Apply.h"
#include "transforms/ScheduleState.h"

#include <memory>
#include <optional>

namespace mlirrl {

/// What the agent sees before acting.
struct Observation {
  std::vector<double> Consumer;
  std::vector<double> Producer;        // zeros when there is no producer
  std::vector<double> TransformMask;   // 6 entries, 0/1
  std::vector<double> InterchangeMask; // head-size entries, 0/1
  std::vector<double> FlatMask;        // flat mode only
  /// True while a level-pointer interchange forces continuation.
  bool InPointerSequence = false;
  /// Effective loop count of the current operation (<= MaxLoops).
  unsigned NumLoops = 0;
};

/// One episode over one module.
class Environment {
public:
  /// Rewards are measured through \p Eval, which must outlive the
  /// environment and be thread-safe (it is shared across a VecEnv batch
  /// and across parallel collectors).
  Environment(EnvConfig Config, Evaluator &Eval, Module Sample);

  bool isDone() const { return Done; }
  const Observation &observe() const { return CurrentObs; }
  const Featurizer &getFeaturizer() const { return Feat; }
  const EnvConfig &getConfig() const { return Config; }

  struct StepOutcome {
    double Reward = 0.0;
    bool Done = false;
  };

  /// Applies one agent action. Illegal (unmasked-but-inapplicable)
  /// actions consume a step with no effect.
  StepOutcome step(const AgentAction &Action);

  /// The schedule assembled so far (complete once done), including the
  /// in-progress transforms of the operation currently being optimized.
  const ModuleSchedule &getSchedule() const { return State.getSchedule(); }

  /// The transaction state behind the episode: per-op nest/price caches
  /// and the schedule itself. Shared with the Evaluator for incremental
  /// pricing; exposed for tests and the stats plumbing.
  const ScheduleState &getState() const { return State; }

  /// Speedup of the assembled schedule over the baseline.
  double currentSpeedup();

  /// Accumulated simulated measurement cost (seconds of program
  /// execution the reward computation required so far); the x-axis of
  /// Fig. 7's wall-clock plot.
  double getMeasurementSeconds() const { return MeasurementSeconds; }

  const Module &getModule() const { return Sample; }

  /// Index of the operation currently being optimized (for tests).
  int getCurrentOp() const { return CurrentOp; }

private:
  void computeObservation();
  void recordHistoryForTiled(TransformKind Kind,
                             const std::vector<unsigned> &SizeIdx);
  void recordHistoryForInterchange(const std::vector<int> &Placement);
  double rewardAfterEffectiveStep();
  void finishCurrentOp();
  void advanceToNextOp();
  /// The single commit gate for agent actions: trial-applies \p T to a
  /// copy of the transform state, runs the post-transform checks on the
  /// candidate schedule (when enabled), and only then commits to both
  /// the machine and the transaction state. Returns false on the
  /// engine's routine rejections (silent wasted step, as before) and on
  /// check failures (penalized no-op, robustness counter bumped).
  bool applyTransform(const Transformation &T, int Producer = -1);
  /// The current fusion candidate: the last producer feeding the fused
  /// group, fusable and exclusively consumed by the group. -1 if none.
  int findProducerCandidate() const;
  unsigned effectiveLoops() const;
  std::vector<int64_t> tileSizesFromAction(const AgentAction &Action) const;
  double measuredModuleTime();
  /// Fused producers of the operation currently being optimized.
  const std::vector<unsigned> &currentFusedProducers() const;
  /// Cached static feature prefix of op \p OpIdx (incremental path).
  const std::vector<double> &staticFeatures(unsigned OpIdx);
  /// Consumer features of the current op under the current history
  /// (cached; recomputed only when the history version moved).
  const std::vector<double> &consumerFeatures();
  /// Producer features of op \p OpIdx (empty history; cached per op).
  const std::vector<double> &producerFeatures(unsigned OpIdx);

  EnvConfig Config;
  Featurizer Feat;
  ActionSpaceInfo Space;
  Evaluator &Eval;
  Module Sample;

  /// The transaction layer: schedule + per-op nest/price caches. All
  /// schedule mutations flow through State.apply so dirtiness is exact.
  ScheduleState State;
  bool Done = false;
  int CurrentOp = -1;

  // Per-operation state.
  std::optional<OpTransformState> Machine;
  ActionHistory History;
  unsigned TauUsed = 0;
  /// Set when a post-transform check rejected the current step's action
  /// (the step's reward is then docked by Config.CheckFailurePenalty).
  bool CheckFailedThisStep = false;

  // Feature caches (incremental path). HistoryVersion moves on every
  // history mutation and on op advance; the consumer cache is keyed by
  // (op, version) so untouched steps reuse the full vector.
  std::vector<std::vector<double>> StaticFeat;
  std::vector<std::vector<double>> ProducerFeat;
  std::vector<double> ConsumerFeat;
  int ConsumerFeatOp = -1;
  uint64_t ConsumerFeatVersion = 0;
  uint64_t HistoryVersion = 1;

  // Level-pointer sequence state.
  bool InPointerSequence = false;
  std::vector<int> PartialPlacement;
  unsigned NextPointerPos = 0;

  // Reward bookkeeping.
  double BaselineSeconds = 0.0;
  double PreviousSeconds = 0.0;
  double MeasurementSeconds = 0.0;

  Observation CurrentObs;
  std::vector<FlatAction> FlatActions;
};

} // namespace mlirrl

#endif // MLIRRL_ENV_ENVIRONMENT_H
