//===- VecEnv.h - Vectorized environments ------------------------*- C++-*-===//
///
/// \file
/// Drives a batch of independent Environments in lockstep so the policy
/// can be evaluated once per *step* instead of once per *environment*:
/// observeLive() packs the observations of every unfinished episode,
/// the agent's batched forward turns them into one GEMM per network
/// layer, and step() applies one action per live environment.
///
/// Episodes finish at different times; finished environments simply
/// drop out of the live set (no auto-reset -- the training loop
/// collects exactly one episode per sample). Environments never
/// interact: a width-B batch produces bitwise-identical episodes to B
/// sequential single-environment rollouts fed the same RNG streams.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_ENV_VECENV_H
#define MLIRRL_ENV_VECENV_H

#include "env/Environment.h"

#include <memory>

namespace mlirrl {

/// A fixed batch of environments advancing in lockstep.
class VecEnv {
public:
  /// One environment per sample, all measuring through \p Eval (which
  /// must be thread-safe and outlive the batch). Under parallel
  /// collection every group of every collector thread receives the
  /// *same* evaluator -- typically the trainer's shared lock-striped
  /// CachingEvaluator -- so per-op memo entries cross group and thread
  /// boundaries instead of being re-priced per environment.
  VecEnv(const EnvConfig &Config, Evaluator &Eval,
         std::vector<Module> Samples);

  unsigned size() const { return static_cast<unsigned>(Envs.size()); }
  bool allDone() const { return Live.empty(); }

  /// Indices of unfinished environments, ascending. step() consumes one
  /// action per entry, in this order.
  const std::vector<unsigned> &liveIndices() const { return Live; }

  /// Observations of the live environments, aligned with liveIndices().
  /// Pointers are invalidated by step().
  std::vector<const Observation *> observeLive() const;

  struct StepOutcome {
    double Reward = 0.0;
    bool Done = false;
  };

  /// Applies Actions[k] to environment liveIndices()[k] (sizes must
  /// match), then refreshes the live set. Outcomes align with the
  /// *pre-step* live indices.
  std::vector<StepOutcome> step(const std::vector<AgentAction> &Actions);

  Environment &env(unsigned Idx) { return *Envs.at(Idx); }
  const Environment &env(unsigned Idx) const { return *Envs.at(Idx); }

private:
  std::vector<std::unique_ptr<Environment>> Envs;
  std::vector<unsigned> Live;
};

} // namespace mlirrl

#endif // MLIRRL_ENV_VECENV_H
