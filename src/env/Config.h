//===- Config.h - Environment configuration ----------------------*- C++-*-===//
///
/// \file
/// Configuration of the RL environment. Defaults follow Sec. VII-A5 of
/// the paper: at most 12 loop levels, 8 tile-size candidates (including
/// 0 = "no tiling"), at most 14 accessed arrays of rank at most 12, and a
/// maximum schedule length of 5. The interchange formulation, the action
/// space formulation and the reward mode are all selectable because each
/// is one of the paper's ablations.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_ENV_CONFIG_H
#define MLIRRL_ENV_CONFIG_H

#include <cstdint>
#include <vector>

namespace mlirrl {

/// The two interchange formulations of Sec. IV-A1.
enum class InterchangeMode {
  /// Enumerate swaps of loop levels at distance <= 3 (3N - 6 actions).
  Enumerated,
  /// Pointer-network style: emit the permutation one level per sub-step.
  LevelPointers,
};

/// The two reward structures of Sec. IV-C / Fig. 7.
enum class RewardMode {
  /// log(speedup) at the end of the episode, zero elsewhere (default).
  Final,
  /// log(incremental speedup) after every step (requires "executing" the
  /// program each step, which is what makes it slow in wall-clock).
  Immediate,
};

/// Action-space formulation (Fig. 6 ablation).
enum class ActionSpaceMode {
  /// Transformation selection + per-transformation parameter sub-spaces.
  MultiDiscrete,
  /// One categorical over a fixed list of (transformation, parameters)
  /// combinations.
  Flat,
};

/// Environment configuration.
struct EnvConfig {
  /// N: maximum number of loop levels in a nest.
  unsigned MaxLoops = 12;
  /// M: number of tile-size candidates, including 0.
  unsigned NumTileSizes = 8;
  /// L: maximum number of accessed arrays represented per operation.
  unsigned MaxArrays = 14;
  /// D: maximum rank of array accesses represented.
  unsigned MaxRank = 12;
  /// tau: maximum number of transformations per operation.
  unsigned MaxScheduleLength = 5;

  InterchangeMode Interchange = InterchangeMode::LevelPointers;
  RewardMode Reward = RewardMode::Final;
  ActionSpaceMode ActionSpace = ActionSpaceMode::MultiDiscrete;

  /// Tile-size candidates (first entry must be 0 = "do not tile").
  std::vector<int64_t> TileCandidates = {0, 1, 2, 4, 8, 16, 32, 64};

  /// Price rewards and build observations incrementally through the
  /// ScheduleState transaction layer (only the op nests an action
  /// dirtied are re-materialized, re-priced and re-featurized). Off =
  /// the from-scratch oracle path; both produce bitwise-identical
  /// prices, observations and trajectories (the DeterminismMatrix and
  /// IncrementalEquivalence tests sweep the pair).
  bool Incremental = true;

  /// Run the post-transform invariant pass (transforms/PostTransformChecks)
  /// on every candidate action before committing it: a schedule the
  /// checks reject becomes a penalized no-op instead of corrupt state or
  /// an abort. On legal actions the checks never fire, so trajectories
  /// are bitwise-identical with the flag off; the per-step cost is one
  /// extra candidate materialization (measured in PERF.md).
  bool PostTransformChecks = true;

  /// Reward subtracted when a post-transform check rejects an action
  /// (only ever applied on check failure, never on the routine
  /// engine-level rejections that are silent wasted steps).
  double CheckFailurePenalty = 0.1;

  /// A reduced configuration for laptop-scale experiments: smaller
  /// feature tensors, same action semantics.
  static EnvConfig laptop();
};

} // namespace mlirrl

#endif // MLIRRL_ENV_CONFIG_H
