//===- Reward.h - Reward helpers ----------------------------------*- C++-*-===//
///
/// \file
/// Reward arithmetic shared by the environment and the benchmark
/// harness: log-speedup composition (Sec. IV-C chooses log so that
/// per-step rewards accumulate additively along a trajectory).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_ENV_REWARD_H
#define MLIRRL_ENV_REWARD_H

#include <cmath>

namespace mlirrl {

/// log(speedup): the terminal reward of an episode.
inline double logSpeedupReward(double BaselineSeconds,
                               double OptimizedSeconds) {
  return std::log(BaselineSeconds / OptimizedSeconds);
}

/// Inverse: speedup implied by an accumulated log-reward.
inline double speedupFromReward(double LogReward) {
  return std::exp(LogReward);
}

} // namespace mlirrl

#endif // MLIRRL_ENV_REWARD_H
