//===- CostModel.h - Analytical execution-time estimation --------*- C++-*-===//
///
/// \file
/// The analytical performance model standing in for the paper's program
/// executions (see DESIGN.md, substitution table). Per scheduled loop
/// nest it combines:
///
///  * a compute roofline (scalar vs. SIMD issue, vector-lane utilization,
///    strided-load penalties, loop-carried reduction chains);
///  * a hierarchical memory model: working-set analysis decides the loop
///    depth at which each cache level captures reuse, giving the traffic
///    each level must serve (this is what makes tiling and interchange
///    pay off);
///  * parallel execution across cores (load imbalance, shared DRAM
///    bandwidth, fork overhead);
///  * loop-control overhead (which penalizes degenerate tilings).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_PERF_COSTMODEL_H
#define MLIRRL_PERF_COSTMODEL_H

#include "perf/MachineModel.h"
#include "transforms/LoopNest.h"

#include <string>
#include <vector>

namespace mlirrl {

/// Per-nest time estimate with its components (seconds).
struct TimeBreakdown {
  double ComputeSeconds = 0.0;
  /// Bandwidth-bound components: traffic into L1/L2/L3 served by the next
  /// level out, and DRAM traffic.
  double L1Seconds = 0.0;
  double L2Seconds = 0.0;
  double L3Seconds = 0.0;
  double DramSeconds = 0.0;
  double LoopOverheadSeconds = 0.0;
  double ForkSeconds = 0.0;
  double TotalSeconds = 0.0;

  std::string toString() const;
};

/// Traffic (bytes) into each cache level for one nest, before dividing by
/// bandwidth. Exposed for tests and the cost-model ablation.
struct TrafficBreakdown {
  double IssueBytes = 0.0; // all executed accesses (served by L1)
  double L1Bytes = 0.0;    // misses into L1 (served by L2)
  double L2Bytes = 0.0;    // misses into L2 (served by L3)
  double L3Bytes = 0.0;    // misses into L3 (served by DRAM)
};

/// The analytical cost model.
class CostModel {
public:
  explicit CostModel(MachineModel Machine) : Machine(Machine) {}

  const MachineModel &getMachine() const { return Machine; }

  /// Estimates execution time of one scheduled nest.
  TimeBreakdown estimateNest(const LoopNest &Nest) const;

  /// Estimates memory traffic of one nest (the memory half of
  /// estimateNest, exposed for validation against the trace simulator).
  TrafficBreakdown estimateTraffic(const LoopNest &Nest) const;

  /// Estimates a whole module: the sum over its nests.
  double estimateModule(const std::vector<LoopNest> &Nests) const;

private:
  MachineModel Machine;
};

} // namespace mlirrl

#endif // MLIRRL_PERF_COSTMODEL_H
