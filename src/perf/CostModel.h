//===- CostModel.h - Analytical execution-time estimation --------*- C++-*-===//
///
/// \file
/// The analytical performance model standing in for the paper's program
/// executions (see DESIGN.md, substitution table). Per scheduled loop
/// nest it combines:
///
///  * a compute roofline (scalar vs. SIMD issue, vector-lane utilization,
///    strided-load penalties, loop-carried reduction chains);
///  * a hierarchical memory model: working-set analysis decides the loop
///    depth at which each cache level captures reuse, giving the traffic
///    each level must serve (this is what makes tiling and interchange
///    pay off);
///  * parallel execution across cores (load imbalance, shared DRAM
///    bandwidth, fork overhead);
///  * loop-control overhead (which penalizes degenerate tilings).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_PERF_COSTMODEL_H
#define MLIRRL_PERF_COSTMODEL_H

#include "perf/MachineModel.h"
#include "support/Stats.h"
#include "support/StripedLru.h"
#include "transforms/LoopNest.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mlirrl {

/// Per-nest time estimate with its components (seconds).
struct TimeBreakdown {
  double ComputeSeconds = 0.0;
  /// Bandwidth-bound components: traffic into L1/L2/L3 served by the next
  /// level out, and DRAM traffic.
  double L1Seconds = 0.0;
  double L2Seconds = 0.0;
  double L3Seconds = 0.0;
  double DramSeconds = 0.0;
  double LoopOverheadSeconds = 0.0;
  double ForkSeconds = 0.0;
  double TotalSeconds = 0.0;

  std::string toString() const;
};

/// Traffic (bytes) into each cache level for one nest, before dividing by
/// bandwidth. Exposed for tests and the cost-model ablation.
struct TrafficBreakdown {
  double IssueBytes = 0.0; // all executed accesses (served by L1)
  double L1Bytes = 0.0;    // misses into L1 (served by L2)
  double L2Bytes = 0.0;    // misses into L2 (served by L3)
  double L3Bytes = 0.0;    // misses into L3 (served by DRAM)
};

/// Structural hash of a scheduled nest: loop-nest shape, access maps and
/// arithmetic -- everything estimateNest consumes. Two nests with equal
/// keys are priced identically, which is what makes the schedule memo
/// below sound.
uint64_t hashLoopNest(const LoopNest &Nest);

/// The analytical cost model. estimateNest results are memoized in an
/// LRU table keyed by the structural schedule hash: episode sweeps
/// re-price the same partial schedules constantly (every step re-times
/// the whole module, every episode re-times the baseline), and a hit
/// skips the working-set analysis entirely. The table is thread-safe so
/// parallel episode collection can share one model.
class CostModel {
public:
  explicit CostModel(MachineModel Machine) : Machine(Machine) {}

  /// Copies share the machine description and capacity setting but not
  /// the memo table (entries and counters start fresh). Both reads
  /// happen under the source's lock: now that assignment can replace
  /// Machine, an unlocked read could tear against a concurrent
  /// `Other = ...`.
  CostModel(const CostModel &Other) {
    {
      std::lock_guard<std::mutex> Lock(Other.CacheMutex);
      Machine = Other.Machine;
      CacheCapacity = Other.CacheCapacity;
    }
    Memo.setCapacity(CacheCapacity);
  }
  /// Same semantics as the copy constructor: takes the machine and the
  /// capacity setting, drops our memoized entries (they priced against
  /// the old machine) and resets the counters. Locks both sides in one
  /// deadlock-free scoped_lock, so assigning from a model other threads
  /// are concurrently pricing through is safe; pricing through the
  /// *destination* during assignment is not (the machine description
  /// itself is being replaced).
  CostModel &operator=(const CostModel &Other);

  const MachineModel &getMachine() const { return Machine; }

  /// Estimates execution time of one scheduled nest (memoized).
  TimeBreakdown estimateNest(const LoopNest &Nest) const;

  /// Estimates memory traffic of one nest (the memory half of
  /// estimateNest, exposed for validation against the trace simulator).
  TrafficBreakdown estimateTraffic(const LoopNest &Nest) const;

  /// Estimates a whole module: the sum over its nests.
  double estimateModule(const std::vector<LoopNest> &Nests) const;

  /// Schedule-cache hit/miss counters since construction (or the last
  /// resetCacheCounters()).
  HitMissCounters getCacheCounters() const;
  void resetCacheCounters() const;

  /// Drops every memoized entry (counters untouched).
  void clearCache() const;

  /// Maximum number of memoized schedules (LRU evicted beyond it).
  void setCacheCapacity(size_t Capacity);

private:
  MachineModel Machine;

  /// Uncached pricing (the original analytical pipeline).
  TimeBreakdown computeNest(const LoopNest &Nest) const;

  /// The schedule memo: the shared StripedLruMemo building block (one
  /// shard -- exact total-capacity LRU semantics, which the eviction
  /// tests rely on; the CachingEvaluator in front absorbs the
  /// cross-thread traffic striping targets). It owns its own per-shard
  /// lock and reports under "cost_model.nest_memo" in the
  /// CacheStatsRegistry (each instance keeps its own counts; the
  /// registry aggregates; resetAll resets).
  mutable StripedLruMemo<TimeBreakdown> Memo{"cost_model.nest_memo",
                                             1u << 14, /*ShardCount=*/1};
  /// Guards the settings (Machine, CacheCapacity) against the copy
  /// paths; the memo's shard locks are only ever taken after (never
  /// around) this one.
  mutable std::mutex CacheMutex;
  size_t CacheCapacity = 1u << 14;
};

} // namespace mlirrl

#endif // MLIRRL_PERF_COSTMODEL_H
