//===- WorkingSet.cpp -----------------------------------------------------===//

#include "perf/WorkingSet.h"

#include <algorithm>
#include <cassert>

using namespace mlirrl;

std::vector<FlatLoop> mlirrl::flattenBodyLoops(const LoopNest &Nest,
                                               unsigned BodyIdx) {
  assert(BodyIdx < Nest.Bodies.size() && "body index out of range");
  std::vector<FlatLoop> Loops;
  // The outer band iterates the consumer's dims; it is foreign to every
  // fused producer body (all bodies except the last).
  bool Foreign = BodyIdx + 1 != Nest.Bodies.size();
  for (const ScheduledLoop &L : Nest.OuterBand)
    Loops.push_back(FlatLoop{L, Foreign});
  for (const ScheduledLoop &L : Nest.Bodies[BodyIdx].Loops)
    Loops.push_back(FlatLoop{L, false});
  return Loops;
}

std::vector<int64_t>
mlirrl::computeSubBoxExtents(const std::vector<FlatLoop> &Loops,
                             unsigned Depth, unsigned NumDims) {
  std::vector<int64_t> Extents(NumDims, 1);
  for (unsigned I = Depth; I < Loops.size(); ++I) {
    const FlatLoop &L = Loops[I];
    if (L.Foreign)
      continue;
    assert(L.Loop.IterDim < NumDims && "loop dim out of range");
    Extents[L.Loop.IterDim] *= L.Loop.TripCount;
  }
  return Extents;
}

AccessFootprint mlirrl::computeFootprint(const TensorAccess &Access,
                                         const std::vector<FlatLoop> &Loops,
                                         unsigned Depth, int64_t LineBytes) {
  unsigned NumDims = Access.Map.getNumDims();
  std::vector<int64_t> Extents = computeSubBoxExtents(Loops, Depth, NumDims);

  AccessFootprint FP;
  FP.Elements = 1;
  int64_t OuterDistinct = 1;
  int64_t LastDistinct = 1;
  int64_t LastDimMinStride = 0;
  int64_t LastDimSize = 1;
  unsigned Rank = Access.Map.getNumResults();
  for (unsigned R = 0; R < Rank; ++R) {
    const AffineExpr &E = Access.Map.getResult(R);
    // Span: range of the expression over the sub-box. Points: number of
    // iterator combinations addressing this dimension. Distinct values
    // are bounded by both and by the tensor extent.
    int64_t Span = 1;
    int64_t Points = 1;
    int64_t MinStride = 0;
    for (unsigned D = 0; D < NumDims; ++D) {
      int64_t C = E.getCoeff(D);
      if (C == 0)
        continue;
      int64_t Abs = C < 0 ? -C : C;
      Span += Abs * (Extents[D] - 1);
      if (Extents[D] > 1) {
        Points *= Extents[D];
        if (MinStride == 0 || Abs < MinStride)
          MinStride = Abs;
      }
    }
    int64_t DimSize = R < Access.TensorShape.size() ? Access.TensorShape[R]
                                                    : Span;
    int64_t Distinct = std::max<int64_t>(std::min({Span, Points, DimSize}), 1);
    FP.Elements *= Distinct;
    if (R + 1 == Rank) {
      LastDistinct = Distinct;
      LastDimMinStride = MinStride;
      LastDimSize = DimSize;
    } else {
      OuterDistinct *= Distinct;
    }
  }

  // Line-granular footprint: each distinct combination of outer
  // dimensions addresses a "row" of the fastest-varying dimension.
  // A strided walk of the row touches one line per stride group, and a
  // row narrower than a line still occupies a whole line when rows are
  // at least a line apart.
  int64_t RowBytes = LastDistinct * Access.ElemBytes;
  if (LastDimMinStride > 1) {
    int64_t PadFactor =
        std::min<int64_t>(LineBytes / Access.ElemBytes, LastDimMinStride);
    RowBytes *= std::max<int64_t>(PadFactor, 1);
  }
  RowBytes =
      std::max(RowBytes, std::min(LineBytes, LastDimSize * Access.ElemBytes));
  FP.Bytes = OuterDistinct * RowBytes;

  // Unit stride w.r.t. the innermost non-foreign loop.
  for (unsigned I = Loops.size(); I > Depth; --I) {
    const FlatLoop &L = Loops[I - 1];
    if (L.Foreign)
      continue;
    FP.UnitStrideInnermost = isUnitStrideForLoop(Access, L.Loop.IterDim);
    break;
  }
  return FP;
}

bool mlirrl::isUnitStrideForLoop(const TensorAccess &Access,
                                 unsigned InnerDim) {
  if (Access.Map.getNumResults() == 0)
    return false;
  const AffineExpr &Last =
      Access.Map.getResult(Access.Map.getNumResults() - 1);
  if (InnerDim >= Last.getNumDims())
    return false;
  int64_t C = Last.getCoeff(InnerDim);
  if (C != 1 && C != -1)
    return false;
  // The loop must not also drive an outer tensor dimension with a larger
  // stride (it would then jump lines anyway).
  for (unsigned R = 0; R + 1 < Access.Map.getNumResults(); ++R)
    if (Access.Map.getResult(R).involvesDim(InnerDim))
      return false;
  return true;
}
