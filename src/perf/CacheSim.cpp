//===- CacheSim.cpp -------------------------------------------------------===//

#include "perf/CacheSim.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace mlirrl;

CacheLevelSim::CacheLevelSim(int64_t SizeBytes, int64_t LineBytes,
                             unsigned Associativity)
    : LineBytes(LineBytes), Associativity(Associativity) {
  int64_t Lines = std::max<int64_t>(SizeBytes / LineBytes, Associativity);
  NumSets = static_cast<unsigned>(std::max<int64_t>(Lines / Associativity, 1));
  Sets.resize(NumSets);
}

bool CacheLevelSim::access(uint64_t Address) {
  uint64_t Line = Address / static_cast<uint64_t>(LineBytes);
  unsigned SetIdx = static_cast<unsigned>(Line % NumSets);
  std::vector<uint64_t> &Set = Sets[SetIdx];
  auto It = std::find(Set.begin(), Set.end(), Line);
  if (It != Set.end()) {
    // Move to MRU position.
    Set.erase(It);
    Set.insert(Set.begin(), Line);
    return true;
  }
  Set.insert(Set.begin(), Line);
  if (Set.size() > Associativity)
    Set.pop_back();
  return false;
}

void CacheLevelSim::reset() {
  for (std::vector<uint64_t> &Set : Sets)
    Set.clear();
}

CacheHierarchySim::CacheHierarchySim(const MachineModel &Machine)
    : LineBytes(Machine.L1.LineBytes),
      L1(Machine.L1.SizeBytes, Machine.L1.LineBytes, Machine.L1.Associativity),
      L2(Machine.L2.SizeBytes, Machine.L2.LineBytes, Machine.L2.Associativity),
      L3(Machine.L3.SizeBytes, Machine.L3.LineBytes,
         Machine.L3.Associativity) {}

void CacheHierarchySim::access(uint64_t Address, unsigned Bytes) {
  uint64_t First = Address / static_cast<uint64_t>(LineBytes);
  uint64_t Last = (Address + Bytes - 1) / static_cast<uint64_t>(LineBytes);
  for (uint64_t Line = First; Line <= Last; ++Line) {
    uint64_t LineAddr = Line * static_cast<uint64_t>(LineBytes);
    ++Stats.Accesses;
    if (L1.access(LineAddr))
      continue;
    ++Stats.L1Misses;
    if (L2.access(LineAddr))
      continue;
    ++Stats.L2Misses;
    if (L3.access(LineAddr))
      continue;
    ++Stats.L3Misses;
  }
}

void CacheHierarchySim::reset() {
  L1.reset();
  L2.reset();
  L3.reset();
  Stats = CacheSimStats();
}

namespace {

/// Recursive point-by-point executor of a single-body nest.
class NestExecutor {
public:
  NestExecutor(const LoopNest &Nest, const MachineModel &Machine,
               uint64_t MaxPoints)
      : MaxPoints(MaxPoints), Sim(Machine) {
    assert(Nest.Bodies.size() == 1 &&
           "trace simulation supports single-body nests");
    const NestBody &Body = Nest.Bodies.front();
    Loops = Nest.OuterBand;
    Loops.insert(Loops.end(), Body.Loops.begin(), Body.Loops.end());
    Accesses = &Body.Accesses;

    unsigned NumDims = 0;
    for (const ScheduledLoop &L : Loops)
      NumDims = std::max(NumDims, L.IterDim + 1);
    Point.assign(NumDims, 0);

    // Row-major layout at disjoint bases, 4 KiB aligned.
    uint64_t Base = 4096;
    for (const TensorAccess &A : *Accesses) {
      if (!Bases.count(A.Value)) {
        Bases[A.Value] = Base;
        int64_t Elements = 1;
        for (int64_t Dim : A.TensorShape)
          Elements *= Dim;
        uint64_t Size = static_cast<uint64_t>(Elements) * A.ElemBytes;
        Base += (Size + 4095) / 4096 * 4096 + 4096;
      }
    }
  }

  CacheSimStats run() {
    execute(0);
    return Sim.getStats();
  }

private:
  void execute(unsigned Depth) {
    if (MaxPoints && Points >= MaxPoints)
      return;
    if (Depth == Loops.size()) {
      ++Points;
      for (const TensorAccess &A : *Accesses) {
        std::vector<int64_t> Indices = A.Map.evaluate(Point);
        uint64_t Offset = 0;
        for (unsigned R = 0; R < Indices.size(); ++R) {
          // Boundary tiles of non-dividing tilings can step past the
          // extent; clamp like a peeled epilogue would.
          int64_t Index =
              std::min(std::max<int64_t>(Indices[R], 0), A.TensorShape[R] - 1);
          Offset = Offset * static_cast<uint64_t>(A.TensorShape[R]) +
                   static_cast<uint64_t>(Index);
        }
        Sim.access(Bases[A.Value] + Offset * A.ElemBytes, A.ElemBytes);
      }
      return;
    }
    const ScheduledLoop &L = Loops[Depth];
    int64_t Saved = Point[L.IterDim];
    for (int64_t I = 0; I < L.TripCount; ++I) {
      if (MaxPoints && Points >= MaxPoints)
        break;
      Point[L.IterDim] = Saved + I * L.Step;
      execute(Depth + 1);
    }
    Point[L.IterDim] = Saved;
  }

  uint64_t MaxPoints;
  CacheHierarchySim Sim;
  std::vector<ScheduledLoop> Loops;
  const std::vector<TensorAccess> *Accesses = nullptr;
  std::vector<int64_t> Point;
  std::map<std::string, uint64_t> Bases;
  uint64_t Points = 0;
};

} // namespace

CacheSimStats mlirrl::simulateNest(const LoopNest &Nest,
                                   const MachineModel &Machine,
                                   uint64_t MaxPoints) {
  return NestExecutor(Nest, Machine, MaxPoints).run();
}
