//===- MachineModel.h - CPU model parameters ---------------------*- C++-*-===//
///
/// \file
/// Parameters of the modelled CPU. The default preset matches the paper's
/// testbed: a dual-socket Intel Xeon E5-2680 v4 (Broadwell-EP), 2 x 14
/// cores @ 2.4 GHz, AVX2 with two 256-bit FMA units per core, 32 KiB L1D,
/// 256 KiB L2, 35 MiB L3 per socket.
///
/// The paper measures programs on this machine; we substitute an
/// analytical model over the same machine parameters (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_PERF_MACHINEMODEL_H
#define MLIRRL_PERF_MACHINEMODEL_H

#include <cstdint>

namespace mlirrl {

/// One level of the data-cache hierarchy.
struct CacheLevelModel {
  /// Capacity available to one core (shared caches: divided by sharers at
  /// model construction).
  int64_t SizeBytes = 0;
  int64_t LineBytes = 64;
  /// Sustained bandwidth per core, GiB/s.
  double BandwidthPerCoreGBps = 0.0;
  /// True if bandwidth scales with active cores (private caches).
  bool PerCore = true;
  /// Set-associativity (used by the trace-driven simulator).
  unsigned Associativity = 8;
};

/// The full machine description consumed by the cost model and the trace
/// cache simulator.
struct MachineModel {
  double FrequencyGHz = 2.4;
  unsigned NumCores = 28;

  /// AVX2: 8 f32 lanes / 4 f64 lanes.
  unsigned VectorLanesF32 = 8;
  unsigned VectorLanesF64 = 4;

  /// Scalar issue: one fused multiply-add per cycle (2 flops).
  double ScalarFlopsPerCycle = 2.0;
  /// Vector issue: two 256-bit FMA ports (2 ops x 2 flops per lane).
  double VectorFlopsPerCyclePerLane = 4.0;

  /// Throughput factor of a loop-carried reduction chain (FMA latency ~5
  /// cycles with no unrolling: ~1/4 of peak). Register tiling, which the
  /// paper's action space cannot express, is what removes this.
  double ReductionChainFactor = 0.25;

  /// Penalty factor for vector loads that are not unit-stride in the
  /// fastest-varying tensor dimension (gathers / strided loads).
  double StridedVectorPenalty = 0.4;

  CacheLevelModel L1;
  CacheLevelModel L2;
  CacheLevelModel L3;
  /// Aggregate DRAM bandwidth, GiB/s (shared by all cores).
  double DramBandwidthGBps = 68.0;

  /// Loop-control cost per executed loop iteration, cycles.
  double LoopOverheadCycles = 2.0;
  /// One-time cost of forking a parallel region, seconds.
  double ParallelForkSeconds = 8e-6;

  /// Peak scalar / vector flop rates of one core, flop/s.
  double scalarFlopsPerSecond() const {
    return ScalarFlopsPerCycle * FrequencyGHz * 1e9;
  }
  double vectorFlopsPerSecond(unsigned Lanes) const {
    return VectorFlopsPerCyclePerLane * Lanes * FrequencyGHz * 1e9;
  }

  /// The paper's testbed.
  static MachineModel xeonE5_2680v4();
};

} // namespace mlirrl

#endif // MLIRRL_PERF_MACHINEMODEL_H
