//===- Evaluator.cpp ------------------------------------------------------===//

#include "perf/Evaluator.h"

#include "support/Hash.h"
#include "transforms/Apply.h"

using namespace mlirrl;

double Evaluator::timeModule(const Module &M, const ModuleSchedule &Sched) {
  return timeNests(materializeModule(M, Sched));
}

double Evaluator::timeBaseline(const Module &M) {
  return timeNests(materializeBaseline(M));
}

double Evaluator::speedup(const Module &M, const ModuleSchedule &Sched) {
  return timeBaseline(M) / timeModule(M, Sched);
}

double Evaluator::priceNest(const LoopNest &Nest) {
  return timeNests({Nest});
}

double Evaluator::priceDirtyOp(ScheduleState &State, unsigned OpIdx) {
  return priceNest(State.getNest(OpIdx));
}

double Evaluator::timeState(ScheduleState &State) {
  // One loop for every implementation (priceDirtyOp is the only
  // variation point): re-price dirty ops, reuse every clean op's cached
  // price, and sum in ascending op order -- the exact order
  // materializeModule walks, so the sum is bitwise-identical to the
  // from-scratch path. The counter reference is resolved once:
  // named() hands out stable references, and this is the hot path.
  static HitMissCounters &Reuse =
      CacheStatsRegistry::instance().named("state.price_reuse");
  double Sum = 0.0;
  for (unsigned OpIdx : State.liveOps()) {
    if (State.hasPrice(OpIdx)) {
      Reuse.recordHit();
    } else {
      Reuse.recordMiss();
      State.setPrice(OpIdx, priceDirtyOp(State, OpIdx));
    }
    Sum += State.getPrice(OpIdx);
  }
  return combineNestPrices(Sum);
}

// ---------------------------------------------------------------------------
// Structural hashing
// ---------------------------------------------------------------------------

uint64_t mlirrl::hashModuleStructure(const Module &M) {
  // A direct structural walk (no string formatting on the lookup path):
  // every field a measurement can depend on -- value shapes, loop
  // bounds, iterator kinds, access maps, arithmetic profiles -- is
  // folded into the key.
  FnvHasher H(0xcbf29ce484222325ull);
  auto Map = [&](const AffineMap &A) {
    H.word(A.getNumDims());
    H.word(A.getNumResults());
    for (const AffineExpr &E : A.getResults()) {
      for (int64_t Coeff : E.getCoeffs())
        H.signedWord(Coeff);
      H.signedWord(E.getConstant());
    }
  };
  H.word(M.getValueOrder().size());
  for (const std::string &Name : M.getValueOrder()) {
    const ValueInfo &Value = M.getValue(Name);
    H.bytes(Value.Name);
    H.signedWord(Value.DefiningOp);
    H.word(static_cast<uint64_t>(Value.Type.getElementType()));
    for (int64_t Dim : Value.Type.getShape())
      H.signedWord(Dim);
  }
  H.word(M.getNumOps());
  for (const LinalgOp &Op : M.getOps()) {
    H.bytes(Op.getResult());
    H.word(static_cast<uint64_t>(Op.getKind()));
    H.word(Op.getNumLoops());
    for (int64_t Bound : Op.getLoopBounds())
      H.signedWord(Bound);
    for (IteratorKind Kind : Op.getIterators())
      H.word(static_cast<uint64_t>(Kind));
    H.word(Op.getNumInputs());
    for (const OpOperand &In : Op.getInputs()) {
      H.bytes(In.Value);
      Map(In.Map);
    }
    Map(Op.getOutputMap());
    const ArithCounts &Arith = Op.getArith();
    for (int64_t Count : {Arith.Add, Arith.Sub, Arith.Mul, Arith.Div,
                          Arith.Exp, Arith.Max})
      H.signedWord(Count);
  }
  return H.finish();
}

uint64_t mlirrl::hashModuleSchedule(const ModuleSchedule &Sched) {
  FnvHasher H(0x84222325cbf29ce4ull);
  H.word(Sched.OpSchedules.size());
  for (const auto &[OpIdx, Op] : Sched.OpSchedules) {
    H.word(OpIdx);
    H.word(Op.Transforms.size());
    for (const Transformation &T : Op.Transforms) {
      H.word(static_cast<uint64_t>(T.Kind));
      H.word(T.TileSizes.size());
      for (int64_t S : T.TileSizes)
        H.signedWord(S);
      H.word(T.Permutation.size());
      for (unsigned P : T.Permutation)
        H.word(P);
    }
    H.word(Op.FusedProducers.size());
    for (unsigned P : Op.FusedProducers)
      H.word(P);
  }
  H.word(Sched.FusedAway.size());
  for (unsigned P : Sched.FusedAway)
    H.word(P);
  return H.finish();
}

// ---------------------------------------------------------------------------
// CachingEvaluator
// ---------------------------------------------------------------------------

CachingEvaluator::CachingEvaluator(Evaluator &Inner, size_t Capacity,
                                   unsigned Shards)
    : Inner(Inner), Program("evaluator.program_memo", Capacity, Shards),
      PerOp("evaluator.op_memo", Capacity, Shards) {}

double CachingEvaluator::timeNests(const std::vector<LoopNest> &Nests) {
  FnvHasher H(0x9e3779b97f4a7c15ull);
  H.word(Nests.size());
  for (const LoopNest &Nest : Nests)
    H.word(hashLoopNest(Nest));
  return Program.memoized(H.finish(), [&] { return Inner.timeNests(Nests); });
}

double CachingEvaluator::timeModule(const Module &M,
                                    const ModuleSchedule &Sched) {
  FnvHasher H(0xa0761d6478bd642full);
  H.word(hashModuleStructure(M));
  H.word(hashModuleSchedule(Sched));
  return Program.memoized(H.finish(),
                          [&] { return Inner.timeModule(M, Sched); });
}

double CachingEvaluator::timeBaseline(const Module &M) {
  FnvHasher H(0xe7037ed1a0b428dbull);
  H.word(hashModuleStructure(M));
  return Program.memoized(H.finish(), [&] { return Inner.timeBaseline(M); });
}

double CachingEvaluator::priceNest(const LoopNest &Nest) {
  // No memo of its own: the per-op table keys on schedule-state keys
  // (cheaper than hashing the nest), and the inner cost model already
  // memoizes by nest hash.
  return Inner.priceNest(Nest);
}

double CachingEvaluator::combineNestPrices(double SumSeconds) {
  return Inner.combineNestPrices(SumSeconds);
}

double CachingEvaluator::priceDirtyOp(ScheduleState &State, unsigned OpIdx) {
  return PerOp.memoized(State.opMemoKey(OpIdx), [&] {
    return Inner.priceNest(State.getNest(OpIdx));
  });
}

void CachingEvaluator::clearCache() {
  Program.clear();
  PerOp.clear();
}
