//===- Evaluator.h - The reward-measurement seam -----------------*- C++-*-===//
///
/// \file
/// The one interface everything measures through: the RL environment's
/// rewards, the search baselines (RandomSearch, Mullapudi, Halide RL)
/// and the benches all price programs via an Evaluator instead of
/// hard-wiring a Runner or a CostModel. The core operation prices a
/// materialized program (a list of scheduled loop nests); module-level
/// entry points materialize and delegate. Implementations must be
/// thread-safe: one Evaluator is shared by all parallel episode
/// collectors and by every environment of a VecEnv batch.
///
/// Implementations:
///  * CostModelEvaluator -- the analytical cost model, undisturbed
///    (deterministic; the training default).
///  * Runner (perf/Runner.h) -- adds measurement noise and median-of-K
///    runs on top of the cost model (the paper's testbed stand-in).
///  * CachingEvaluator -- a decorator memoizing whole-program prices in
///    front of any inner evaluator, with thread-safe hit/miss counters.
///    It complements the per-nest schedule memo inside CostModel: a hit
///    here also skips materialization and per-nest hashing.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_PERF_EVALUATOR_H
#define MLIRRL_PERF_EVALUATOR_H

#include "ir/Module.h"
#include "perf/CostModel.h"
#include "support/Stats.h"
#include "transforms/Schedule.h"

#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>

namespace mlirrl {

/// Abstract measurement interface. All entry points are thread-safe.
class Evaluator {
public:
  virtual ~Evaluator() = default;

  /// Prices a materialized program: the "measured" execution time in
  /// seconds of the given scheduled loop nests.
  virtual double timeNests(const std::vector<LoopNest> &Nests) = 0;

  /// "Measured" time of the module under \p Sched. The default
  /// materializes and delegates to timeNests.
  virtual double timeModule(const Module &M, const ModuleSchedule &Sched);

  /// "Measured" time of the unoptimized baseline.
  virtual double timeBaseline(const Module &M);

  /// Speedup of \p Sched over the baseline (> 1 means faster).
  double speedup(const Module &M, const ModuleSchedule &Sched);
};

/// The analytical cost model as an Evaluator: deterministic, no noise.
/// This is what training and the baselines measure through by default.
class CostModelEvaluator : public Evaluator {
public:
  explicit CostModelEvaluator(MachineModel Machine) : Model(Machine) {}

  double timeNests(const std::vector<LoopNest> &Nests) override {
    return Model.estimateModule(Nests);
  }

  const CostModel &getCostModel() const { return Model; }

private:
  CostModel Model;
};

/// Structural content hash of a module (op shapes, access maps,
/// arithmetic) -- combined with a schedule hash it keys whole-program
/// measurements.
uint64_t hashModuleStructure(const Module &M);

/// Structural hash of a module schedule (per-op transformation
/// sequences and the fusion structure).
uint64_t hashModuleSchedule(const ModuleSchedule &Sched);

/// A memoizing decorator over any Evaluator. timeModule/timeBaseline
/// hits skip the inner evaluator entirely -- including materialization
/// -- which is what makes sharing one CachingEvaluator across all
/// collector threads pay off (every episode re-times the baseline,
/// every step of an Immediate-reward episode re-times the module).
///
/// Wrap only deterministic inner evaluators (CostModelEvaluator, or a
/// Runner with noise off): caching a noisy measurement would freeze one
/// noise draw forever.
class CachingEvaluator : public Evaluator {
public:
  explicit CachingEvaluator(Evaluator &Inner, size_t Capacity = 1u << 12)
      : Inner(Inner), Capacity(Capacity) {}

  double timeNests(const std::vector<LoopNest> &Nests) override;
  double timeModule(const Module &M, const ModuleSchedule &Sched) override;
  double timeBaseline(const Module &M) override;

  /// Hit/miss counters since construction (or the last reset). Relaxed
  /// snapshot; safe to read while collectors are running.
  HitMissCounters getCounters() const { return Counters; }
  void resetCounters() { Counters.reset(); }

  /// Drops every memoized entry (counters untouched).
  void clearCache();

private:
  double memoized(uint64_t Key, const std::function<double()> &Compute);

  Evaluator &Inner;

  struct CacheEntry {
    uint64_t Key = 0;
    double Seconds = 0.0;
  };
  /// MRU-ordered entries + key index, guarded by CacheMutex.
  std::list<CacheEntry> CacheOrder;
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> CacheIndex;
  std::mutex CacheMutex;
  size_t Capacity;
  HitMissCounters Counters;
};

} // namespace mlirrl

#endif // MLIRRL_PERF_EVALUATOR_H
