//===- Evaluator.h - The reward-measurement seam -----------------*- C++-*-===//
///
/// \file
/// The one interface everything measures through: the RL environment's
/// rewards, the search baselines (RandomSearch, Mullapudi, Halide RL)
/// and the benches all price programs via an Evaluator instead of
/// hard-wiring a Runner or a CostModel. The core operation prices a
/// materialized program (a list of scheduled loop nests); module-level
/// entry points materialize and delegate. Implementations must be
/// thread-safe: one Evaluator is shared by all parallel episode
/// collectors and by every environment of a VecEnv batch.
///
/// Two pricing granularities coexist:
///
///  * whole-module (timeNests / timeModule / timeBaseline) -- the
///    from-scratch oracle;
///  * per-nest (priceNest + combineNestPrices) and incremental
///    (timeState over a ScheduleState) -- only dirty op nests are
///    re-materialized and re-priced; clean ops reuse their cached
///    price. The contract: summing the per-nest prices of a program's
///    nests in nest order and applying combineNestPrices reproduces
///    timeNests bitwise, so the two granularities are interchangeable.
///
/// Implementations:
///  * CostModelEvaluator -- the analytical cost model, undisturbed
///    (deterministic; the training default).
///  * Runner (perf/Runner.h) -- adds measurement noise and median-of-K
///    runs on top of the cost model (the paper's testbed stand-in).
///  * CachingEvaluator -- a decorator memoizing whole-program prices in
///    front of any inner evaluator, with thread-safe hit/miss counters,
///    plus a per-op memo for timeState keyed by (op structural hash x
///    op schedule hash) so entries survive across samples sharing ops.
///    It complements the per-nest schedule memo inside CostModel: a hit
///    here also skips materialization and per-nest hashing.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_PERF_EVALUATOR_H
#define MLIRRL_PERF_EVALUATOR_H

#include "ir/Module.h"
#include "perf/CostModel.h"
#include "support/Stats.h"
#include "support/StripedLru.h"
#include "transforms/Schedule.h"
#include "transforms/ScheduleState.h"

namespace mlirrl {

/// Abstract measurement interface. All entry points are thread-safe.
class Evaluator {
public:
  virtual ~Evaluator() = default;

  /// Prices a materialized program: the "measured" execution time in
  /// seconds of the given scheduled loop nests.
  virtual double timeNests(const std::vector<LoopNest> &Nests) = 0;

  /// "Measured" time of the module under \p Sched. The default
  /// materializes and delegates to timeNests.
  virtual double timeModule(const Module &M, const ModuleSchedule &Sched);

  /// "Measured" time of the unoptimized baseline.
  virtual double timeBaseline(const Module &M);

  /// Speedup of \p Sched over the baseline (> 1 means faster).
  double speedup(const Module &M, const ModuleSchedule &Sched);

  /// Price of one nest, such that combineNestPrices over the ordered sum
  /// of a program's per-nest prices equals timeNests of that program
  /// bitwise. The default prices a single-nest program with no combiner
  /// applied -- correct for any evaluator whose timeNests is a plain sum
  /// over nests; evaluators with module-level post-processing (Runner's
  /// noise protocol) must override both members as a pair.
  virtual double priceNest(const LoopNest &Nest);

  /// Module-level combiner over the sum of per-nest prices (identity by
  /// default; Runner applies its measurement protocol here).
  virtual double combineNestPrices(double SumSeconds) { return SumSeconds; }

  /// Incremental equivalent of timeModule: prices \p State's schedule,
  /// re-pricing only ops whose cached price was invalidated by
  /// ScheduleState::apply (through the priceDirtyOp hook) and summing
  /// live-op prices in ascending op order (materializeModule's order,
  /// so the result is bitwise equal to the from-scratch path). The
  /// state's price slots are filled as a side effect; a state must only
  /// ever be priced through one evaluator.
  double timeState(ScheduleState &State);

protected:
  /// Prices one dirty op of a state (default: materialize + priceNest;
  /// CachingEvaluator answers from its per-op memo instead).
  virtual double priceDirtyOp(ScheduleState &State, unsigned OpIdx);
};

/// The analytical cost model as an Evaluator: deterministic, no noise.
/// This is what training and the baselines measure through by default.
class CostModelEvaluator : public Evaluator {
public:
  explicit CostModelEvaluator(MachineModel Machine) : Model(Machine) {}

  double timeNests(const std::vector<LoopNest> &Nests) override {
    return Model.estimateModule(Nests);
  }

  double priceNest(const LoopNest &Nest) override {
    return Model.estimateNest(Nest).TotalSeconds;
  }

  const CostModel &getCostModel() const { return Model; }

private:
  CostModel Model;
};

/// Structural content hash of a module (op shapes, access maps,
/// arithmetic) -- combined with a schedule hash it keys whole-program
/// measurements.
uint64_t hashModuleStructure(const Module &M);

/// Structural hash of a module schedule (per-op transformation
/// sequences and the fusion structure).
uint64_t hashModuleSchedule(const ModuleSchedule &Sched);

/// A memoizing decorator over any Evaluator. timeModule/timeBaseline
/// hits skip the inner evaluator entirely -- including materialization
/// -- which is what makes sharing one CachingEvaluator across all
/// collector threads pay off (every episode re-times the baseline).
/// timeState misses consult a second, per-op memo keyed by
/// ScheduleState::opMemoKey: a hit prices a dirty op without
/// materializing its nest, and the keys are content-addressed so the
/// entries survive across episodes and across samples that share ops.
///
/// Both tables are lock-striped (support/StripedLru.h): one instance is
/// meant to be shared by every collector thread and every environment
/// of every VecEnv group, and shard-local mutexes keep that sharing off
/// a global lock. Sharing and eviction order may differ run to run, but
/// every returned price is bitwise-deterministic (the values are pure
/// functions of the keys), which is the invariant DeterminismMatrixTest
/// sweeps across CollectThreads x shard counts.
///
/// Wrap only deterministic inner evaluators (CostModelEvaluator, or a
/// Runner with noise off): caching a noisy measurement would freeze one
/// noise draw forever.
class CachingEvaluator : public Evaluator {
public:
  explicit CachingEvaluator(Evaluator &Inner, size_t Capacity = 1u << 12,
                            unsigned Shards = 16);

  double timeNests(const std::vector<LoopNest> &Nests) override;
  double timeModule(const Module &M, const ModuleSchedule &Sched) override;
  double timeBaseline(const Module &M) override;
  double priceNest(const LoopNest &Nest) override;
  double combineNestPrices(double SumSeconds) override;

  /// Whole-program hit/miss/duplicate counters since construction (or
  /// the last reset), aggregated over shards. Relaxed snapshot; safe to
  /// read while collectors are running.
  HitMissCounters getCounters() const { return Program.counters(); }
  /// Per-op memo counters (timeState lookups).
  HitMissCounters getOpCounters() const { return PerOp.counters(); }
  /// Shard-lock acquisition statistics (total vs. contended), the
  /// striping-effectiveness evidence the memo micro-bench records.
  ContentionCounters getProgramContention() const {
    return Program.contention();
  }
  ContentionCounters getOpContention() const { return PerOp.contention(); }
  void resetCounters() {
    Program.resetCounters();
    PerOp.resetCounters();
  }

  unsigned shardCount() const { return Program.shardCount(); }

  /// Drops every memoized entry (counters untouched).
  void clearCache();

protected:
  /// timeState hook: a per-op memo lookup keyed by
  /// ScheduleState::opMemoKey -- content-addressed, so a hit prices a
  /// dirty op without materializing its nest, and entries are shared
  /// across every episode and sample containing the same op under the
  /// same partial schedule.
  double priceDirtyOp(ScheduleState &State, unsigned OpIdx) override;

private:
  Evaluator &Inner;
  StripedLruMemo<double> Program;
  StripedLruMemo<double> PerOp;
};

} // namespace mlirrl

#endif // MLIRRL_PERF_EVALUATOR_H
