//===- Runner.h - The "execution" facade -------------------------*- C++-*-===//
///
/// \file
/// Runner plays the role of compiling and executing a program on the
/// testbed: it materializes a module under a schedule, estimates its
/// execution time, optionally perturbs it with measurement noise, and
/// reports the median of several "runs" (the paper runs each code five
/// times and takes the median). It is one implementation of the
/// Evaluator measurement seam; the environment's reward is log(speedup)
/// of a schedule over the unoptimized baseline, both produced here.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_PERF_RUNNER_H
#define MLIRRL_PERF_RUNNER_H

#include "ir/Module.h"
#include "perf/CostModel.h"
#include "perf/Evaluator.h"
#include "support/Rng.h"
#include "transforms/Schedule.h"

#include <mutex>

namespace mlirrl {

/// Measurement configuration.
struct RunnerOptions {
  /// Inject multiplicative log-normal noise per run (robustness tests;
  /// off by default so training rewards are deterministic).
  bool Noise = false;
  double NoiseStddev = 0.02;
  /// Runs per measurement; the median is reported (paper: 5).
  unsigned Runs = 5;
  uint64_t Seed = 0x5eed;
};

/// Estimates execution times of (module, schedule) pairs: the cost
/// model plus the testbed's measurement protocol (noise, median-of-K).
class Runner : public Evaluator {
public:
  explicit Runner(MachineModel Machine, RunnerOptions Options = {});

  const CostModel &getCostModel() const { return Model; }

  /// Median "measured" time of a materialized program, seconds.
  double timeNests(const std::vector<LoopNest> &Nests) override;

  /// Per-nest prices are the undisturbed model estimates; the noise +
  /// median-of-K protocol applies once at module level in
  /// combineNestPrices, exactly as timeNests applies it to the summed
  /// estimate -- so incremental pricing reproduces timeNests bitwise.
  double priceNest(const LoopNest &Nest) override;
  double combineNestPrices(double SumSeconds) override;

  // timeModule / timeBaseline / speedup / timeState come from Evaluator
  // (materialize + timeNests, or per-nest prices + the combiner), so
  // every entry point shares the noise protocol.

private:
  double measure(double ModelSeconds);

  CostModel Model;
  RunnerOptions Options;
  /// Noise stream, mutex-guarded so parallel episode collection can
  /// share one Runner. With noise enabled the stream's consumption order
  /// depends on scheduling, so noisy measurements are only
  /// replay-deterministic single-threaded; training keeps noise off.
  Rng Noise;
  std::mutex NoiseMutex;
};

} // namespace mlirrl

#endif // MLIRRL_PERF_RUNNER_H
