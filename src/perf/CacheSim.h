//===- CacheSim.h - Trace-driven cache simulation ----------------*- C++-*-===//
///
/// \file
/// A trace-driven, set-associative, LRU, inclusive three-level cache
/// simulator. It executes a scheduled loop nest access-by-access and
/// counts misses per level. It exists to validate the analytical
/// working-set model on small problems (experiment E10 in DESIGN.md) and
/// as a drop-in substrate for users who want trace-accurate rewards.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_PERF_CACHESIM_H
#define MLIRRL_PERF_CACHESIM_H

#include "perf/MachineModel.h"
#include "transforms/LoopNest.h"

#include <cstdint>
#include <vector>

namespace mlirrl {

/// Miss counts of a simulated access stream.
struct CacheSimStats {
  uint64_t Accesses = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t L3Misses = 0;

  double l1MissRate() const {
    return Accesses ? static_cast<double>(L1Misses) / Accesses : 0.0;
  }
};

/// One set-associative LRU cache level.
class CacheLevelSim {
public:
  CacheLevelSim(int64_t SizeBytes, int64_t LineBytes, unsigned Associativity);

  /// Returns true on hit; on miss the line is installed (LRU evicted).
  bool access(uint64_t Address);

  void reset();

private:
  int64_t LineBytes;
  unsigned NumSets;
  unsigned Associativity;
  /// Per set: tags in LRU order (front = most recent).
  std::vector<std::vector<uint64_t>> Sets;
};

/// A three-level hierarchy fed one address at a time.
class CacheHierarchySim {
public:
  explicit CacheHierarchySim(const MachineModel &Machine);

  /// Simulates one scalar access of \p Bytes at \p Address (split across
  /// lines if needed).
  void access(uint64_t Address, unsigned Bytes);

  const CacheSimStats &getStats() const { return Stats; }
  void reset();

private:
  int64_t LineBytes;
  CacheLevelSim L1, L2, L3;
  CacheSimStats Stats;
};

/// Executes a single-body loop nest point by point through the simulator.
/// Tensors are laid out row-major at disjoint base addresses. Stops after
/// \p MaxPoints iteration points (0 = unlimited); returns the stats
/// gathered so far.
CacheSimStats simulateNest(const LoopNest &Nest, const MachineModel &Machine,
                           uint64_t MaxPoints = 0);

} // namespace mlirrl

#endif // MLIRRL_PERF_CACHESIM_H
