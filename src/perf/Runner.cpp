//===- Runner.cpp ---------------------------------------------------------===//

#include "perf/Runner.h"

#include "support/Stats.h"
#include "transforms/Apply.h"

#include <cmath>

using namespace mlirrl;

Runner::Runner(MachineModel Machine, RunnerOptions Options)
    : Model(Machine), Options(Options), Noise(Options.Seed) {}

double Runner::measure(double ModelSeconds) {
  if (!Options.Noise)
    return ModelSeconds;
  std::lock_guard<std::mutex> Lock(NoiseMutex);
  std::vector<double> Samples;
  Samples.reserve(Options.Runs);
  for (unsigned I = 0; I < Options.Runs; ++I)
    Samples.push_back(ModelSeconds *
                      std::exp(Noise.nextGaussian() * Options.NoiseStddev));
  return median(std::move(Samples));
}

double Runner::timeNests(const std::vector<LoopNest> &Nests) {
  return measure(Model.estimateModule(Nests));
}

double Runner::priceNest(const LoopNest &Nest) {
  return Model.estimateNest(Nest).TotalSeconds;
}

double Runner::combineNestPrices(double SumSeconds) {
  return measure(SumSeconds);
}
