//===- Runner.cpp ---------------------------------------------------------===//

#include "perf/Runner.h"

#include "support/Stats.h"
#include "transforms/Apply.h"

#include <cmath>

using namespace mlirrl;

Runner::Runner(MachineModel Machine, RunnerOptions Options)
    : Model(Machine), Options(Options), Noise(Options.Seed) {}

double Runner::measure(double ModelSeconds) {
  if (!Options.Noise)
    return ModelSeconds;
  std::lock_guard<std::mutex> Lock(NoiseMutex);
  std::vector<double> Samples;
  Samples.reserve(Options.Runs);
  for (unsigned I = 0; I < Options.Runs; ++I)
    Samples.push_back(ModelSeconds *
                      std::exp(Noise.nextGaussian() * Options.NoiseStddev));
  return median(std::move(Samples));
}

double Runner::timeModule(const Module &M, const ModuleSchedule &Sched) {
  return measure(Model.estimateModule(materializeModule(M, Sched)));
}

double Runner::timeBaseline(const Module &M) {
  return measure(Model.estimateModule(materializeBaseline(M)));
}

double Runner::speedup(const Module &M, const ModuleSchedule &Sched) {
  return timeBaseline(M) / timeModule(M, Sched);
}
