//===- MachineModel.cpp ---------------------------------------------------===//

#include "perf/MachineModel.h"

using namespace mlirrl;

MachineModel MachineModel::xeonE5_2680v4() {
  MachineModel M;
  M.FrequencyGHz = 2.4;
  M.NumCores = 28;
  M.VectorLanesF32 = 8;
  M.VectorLanesF64 = 4;

  M.L1 = CacheLevelModel{32 * 1024, 64, /*BandwidthPerCoreGBps=*/150.0,
                         /*PerCore=*/true, /*Associativity=*/8};
  M.L2 = CacheLevelModel{256 * 1024, 64, /*BandwidthPerCoreGBps=*/60.0,
                         /*PerCore=*/true, /*Associativity=*/8};
  // 35 MiB per socket shared by 14 cores: model the per-core share; the
  // bandwidth is also per-core but lower than L2.
  M.L3 = CacheLevelModel{35 * 1024 * 1024 / 14, 64,
                         /*BandwidthPerCoreGBps=*/25.0,
                         /*PerCore=*/true, /*Associativity=*/16};
  // Two sockets of 4-channel DDR4-2400: ~76.8 GiB/s theoretical; ~68
  // sustained.
  M.DramBandwidthGBps = 68.0;
  return M;
}
