//===- CostModel.cpp ------------------------------------------------------===//

#include "perf/CostModel.h"

#include "perf/WorkingSet.h"
#include "support/Format.h"
#include "support/Hash.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace mlirrl;

std::string TimeBreakdown::toString() const {
  return formatString("total=%.3gs compute=%.3g l1=%.3g l2=%.3g l3=%.3g "
                      "dram=%.3g loop=%.3g fork=%.3g",
                      TotalSeconds, ComputeSeconds, L1Seconds, L2Seconds,
                      L3Seconds, DramSeconds, LoopOverheadSeconds,
                      ForkSeconds);
}

namespace {

/// Everything the model derives for one body before aggregation.
struct BodyCosts {
  double Flops = 0.0;
  double ComputeSeconds = 0.0; // single-core
  double IssueBytes = 0.0;
  double L1Bytes = 0.0;
  double L2Bytes = 0.0;
  double L3Bytes = 0.0;
  double LoopIterations = 0.0;
};

} // namespace

/// Number of visits of the loop at \p Depth boundary: the product of trip
/// counts of all loops strictly above it.
static double visitsAtDepth(const std::vector<FlatLoop> &Loops,
                            unsigned Depth) {
  double Visits = 1.0;
  for (unsigned I = 0; I < Depth; ++I)
    Visits *= static_cast<double>(Loops[I].Loop.TripCount);
  return Visits;
}

/// Finds the outermost depth at which the combined working set of all
/// accesses fits \p CapacityBytes; returns Loops.size() when even one
/// iteration's data exceeds it (then every visit misses).
static unsigned findFittingDepth(const std::vector<TensorAccess> &Accesses,
                                 const std::vector<FlatLoop> &Loops,
                                 int64_t CapacityBytes, int64_t LineBytes) {
  for (unsigned Depth = 0; Depth <= Loops.size(); ++Depth) {
    double Total = 0.0;
    for (const TensorAccess &A : Accesses)
      Total += static_cast<double>(
          computeFootprint(A, Loops, Depth, LineBytes).Bytes);
    if (Total <= static_cast<double>(CapacityBytes))
      return Depth;
  }
  return static_cast<unsigned>(Loops.size());
}

/// Traffic into a cache level: every visit of the fitting depth loads the
/// footprint below once.
static double trafficAtLevel(const std::vector<TensorAccess> &Accesses,
                             const std::vector<FlatLoop> &Loops,
                             int64_t CapacityBytes, int64_t LineBytes) {
  unsigned Depth = findFittingDepth(Accesses, Loops, CapacityBytes, LineBytes);
  double Visits = visitsAtDepth(Loops, Depth);
  double Bytes = 0.0;
  for (const TensorAccess &A : Accesses)
    Bytes += static_cast<double>(
        computeFootprint(A, Loops, Depth, LineBytes).Bytes);
  return Visits * Bytes;
}

/// Computes the per-body costs: compute roofline and per-level traffic.
static BodyCosts computeBodyCosts(const MachineModel &Machine,
                                  const LoopNest &Nest, unsigned BodyIdx) {
  const NestBody &Body = Nest.Bodies[BodyIdx];
  std::vector<FlatLoop> Loops = flattenBodyLoops(Nest, BodyIdx);

  BodyCosts Costs;
  double Points = visitsAtDepth(Loops, Loops.size());
  Costs.Flops = Points * static_cast<double>(Body.Arith.total());

  // --- Compute roofline ---------------------------------------------------
  // Find the vectorized loop (SIMD axis) if any, and the innermost loop.
  const ScheduledLoop *Inner = nullptr;
  const ScheduledLoop *Vector = nullptr;
  bool ReductionInsideVector = false;
  for (unsigned I = Loops.size(); I > 0; --I) {
    const FlatLoop &L = Loops[I - 1];
    if (L.Foreign)
      continue;
    if (!Inner)
      Inner = &L.Loop;
    if (!Vector && L.Loop.Vectorized)
      Vector = &L.Loop;
    if (!Vector && L.Loop.Kind == IteratorKind::Reduction)
      ReductionInsideVector = true; // reduction below the (future) SIMD axis
  }

  unsigned ElemBytes = 4;
  if (!Body.Accesses.empty())
    ElemBytes = Body.Accesses.back().ElemBytes;
  unsigned Lanes =
      ElemBytes == 8 ? Machine.VectorLanesF64 : Machine.VectorLanesF32;

  double FlopsPerSecond = Machine.scalarFlopsPerSecond();
  if (Vector) {
    // Lane utilization of short trips.
    double Trip = static_cast<double>(Vector->TripCount);
    double Utilization = Trip / (std::ceil(Trip / Lanes) * Lanes);
    // Strided operands require gathers / strided loads.
    unsigned Involved = 0, UnitStride = 0;
    for (const TensorAccess &A : Body.Accesses) {
      bool Involves = false;
      for (const AffineExpr &E : A.Map.getResults())
        Involves |= E.involvesDim(Vector->IterDim);
      if (!Involves)
        continue; // loop-invariant operand: held in a register
      ++Involved;
      if (isUnitStrideForLoop(A, Vector->IterDim))
        ++UnitStride;
    }
    double StrideFactor = 1.0;
    if (Involved > 0) {
      double UnitFraction =
          static_cast<double>(UnitStride) / static_cast<double>(Involved);
      StrideFactor =
          UnitFraction + (1.0 - UnitFraction) * Machine.StridedVectorPenalty;
    }
    FlopsPerSecond =
        Machine.vectorFlopsPerSecond(Lanes) * Utilization * StrideFactor;
  }

  // Loop-carried additive reduction chains: an accumulator updated every
  // iteration of a sequential reduction loop at (or inside) the SIMD /
  // innermost position serializes the FMA chain. Register tiling, which
  // neither the action space nor Halide-style schedules expose, is what
  // hides this; max-reductions (pooling) have single-cycle latency and
  // are exempt.
  bool AdditiveReduction = Body.Arith.Add > 0 || Body.Arith.Sub > 0;
  bool ChainBound = false;
  if (Vector)
    ChainBound = ReductionInsideVector ||
                 Vector->Kind == IteratorKind::Reduction;
  else
    ChainBound = Inner && Inner->Kind == IteratorKind::Reduction;
  if (ChainBound && AdditiveReduction)
    FlopsPerSecond *= Machine.ReductionChainFactor;
  Costs.ComputeSeconds = Costs.Flops / FlopsPerSecond;

  // --- Memory hierarchy ---------------------------------------------------
  // Fused intermediates live in the consumer's tile: their reuse is
  // tile-local by construction, which the footprint analysis already
  // captures (their footprint never exceeds the per-visit slice), so they
  // participate like ordinary accesses.
  Costs.IssueBytes =
      Points * static_cast<double>(Body.Accesses.size()) * ElemBytes;
  Costs.L1Bytes = trafficAtLevel(Body.Accesses, Loops, Machine.L1.SizeBytes,
                                 Machine.L1.LineBytes);
  Costs.L2Bytes = trafficAtLevel(Body.Accesses, Loops, Machine.L2.SizeBytes,
                                 Machine.L2.LineBytes);
  Costs.L3Bytes = trafficAtLevel(Body.Accesses, Loops, Machine.L3.SizeBytes,
                                 Machine.L3.LineBytes);

  // Fused intermediates are never written back to DRAM: remove them from
  // the L3 miss traffic (they are the mechanism by which fusion saves
  // memory traffic).
  if (!Nest.FusedIntermediates.empty()) {
    std::vector<TensorAccess> NonFused;
    for (const TensorAccess &A : Body.Accesses)
      if (!Nest.isFusedIntermediate(A.Value))
        NonFused.push_back(A);
    Costs.L3Bytes = trafficAtLevel(NonFused, Loops, Machine.L3.SizeBytes,
                                   Machine.L3.LineBytes);
  }

  // --- Loop control ---------------------------------------------------
  double Iterations = 0.0;
  double Enclosing = 1.0;
  for (const FlatLoop &L : Loops) {
    double Trip = static_cast<double>(L.Loop.TripCount);
    if (L.Loop.Vectorized)
      Trip = std::ceil(Trip / Lanes);
    Iterations += Enclosing * Trip;
    Enclosing *= static_cast<double>(L.Loop.TripCount);
  }
  Costs.LoopIterations = Iterations;
  return Costs;
}

TrafficBreakdown CostModel::estimateTraffic(const LoopNest &Nest) const {
  TrafficBreakdown Traffic;
  for (unsigned B = 0; B < Nest.Bodies.size(); ++B) {
    BodyCosts Costs = computeBodyCosts(Machine, Nest, B);
    Traffic.IssueBytes += Costs.IssueBytes;
    Traffic.L1Bytes += Costs.L1Bytes;
    Traffic.L2Bytes += Costs.L2Bytes;
    Traffic.L3Bytes += Costs.L3Bytes;
  }
  return Traffic;
}

// ---------------------------------------------------------------------------
// Schedule memoization
// ---------------------------------------------------------------------------

namespace {

/// The shared FNV-1a word hasher plus nest-specific folds; the nest is
/// folded field by field so any structural difference (trip counts,
/// loop kinds, access maps, arithmetic) lands in the key.
class StructuralHasher : public FnvHasher {
public:
  void string(const std::string &Str) { bytes(Str); }
  void loop(const ScheduledLoop &L) {
    word(L.IterDim);
    signedWord(L.TripCount);
    signedWord(L.Step);
    word(static_cast<uint64_t>(L.Kind));
    word((L.IsTileLoop ? 1u : 0u) | (L.Parallel ? 2u : 0u) |
         (L.Vectorized ? 4u : 0u));
  }
  void affineExpr(const AffineExpr &E) {
    word(E.getNumDims());
    for (int64_t C : E.getCoeffs())
      signedWord(C);
    signedWord(E.getConstant());
  }
  void access(const TensorAccess &A) {
    string(A.Value);
    word(A.Map.getNumDims());
    word(A.Map.getNumResults());
    for (const AffineExpr &E : A.Map.getResults())
      affineExpr(E);
    word(A.TensorShape.size());
    for (int64_t S : A.TensorShape)
      signedWord(S);
    word(A.ElemBytes);
    word(A.IsWrite ? 1u : 0u);
  }
};

} // namespace

uint64_t mlirrl::hashLoopNest(const LoopNest &Nest) {
  StructuralHasher H;
  H.string(Nest.Name);
  H.word(Nest.OuterBand.size());
  for (const ScheduledLoop &L : Nest.OuterBand)
    H.loop(L);
  H.word(Nest.Bodies.size());
  for (const NestBody &Body : Nest.Bodies) {
    H.string(Body.Name);
    H.word(Body.Loops.size());
    for (const ScheduledLoop &L : Body.Loops)
      H.loop(L);
    H.word(Body.Accesses.size());
    for (const TensorAccess &A : Body.Accesses)
      H.access(A);
    H.signedWord(Body.Arith.Add);
    H.signedWord(Body.Arith.Sub);
    H.signedWord(Body.Arith.Mul);
    H.signedWord(Body.Arith.Div);
    H.signedWord(Body.Arith.Exp);
    H.signedWord(Body.Arith.Max);
  }
  H.word(Nest.FusedIntermediates.size());
  for (const std::string &Name : Nest.FusedIntermediates)
    H.string(Name);
  return H.finish();
}

CostModel &CostModel::operator=(const CostModel &Other) {
  if (this == &Other)
    return *this;
  // The memo operations stay under the settings lock: a concurrent
  // setCacheCapacity on the destination also holds CacheMutex, so its
  // capacity cannot be silently overwritten mid-assignment. Lock order
  // is CacheMutex -> shard locks, same as setCacheCapacity.
  std::scoped_lock Lock(CacheMutex, Other.CacheMutex);
  Machine = Other.Machine;
  CacheCapacity = Other.CacheCapacity;
  // Mirror the copy constructor: the memo is per-instance state, and
  // our entries priced against the machine we just replaced.
  Memo.clear();
  Memo.resetCounters();
  Memo.setCapacity(CacheCapacity);
  return *this;
}

TimeBreakdown CostModel::estimateNest(const LoopNest &Nest) const {
  // All the concurrency-sensitive LRU mechanics (re-check under the
  // insert lock, duplicate accounting, tail eviction) live in the
  // shared StripedLruMemo -- one implementation for every memo.
  return Memo.memoized(hashLoopNest(Nest),
                       [&] { return computeNest(Nest); });
}

HitMissCounters CostModel::getCacheCounters() const {
  return Memo.counters();
}

void CostModel::resetCacheCounters() const { Memo.resetCounters(); }

void CostModel::clearCache() const { Memo.clear(); }

void CostModel::setCacheCapacity(size_t Capacity) {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  CacheCapacity = Capacity == 0 ? 1 : Capacity;
  Memo.setCapacity(CacheCapacity);
}

TimeBreakdown CostModel::computeNest(const LoopNest &Nest) const {
  double ComputeSeconds = 0.0, LoopIterations = 0.0;
  TrafficBreakdown Traffic;
  for (unsigned B = 0; B < Nest.Bodies.size(); ++B) {
    BodyCosts Costs = computeBodyCosts(Machine, Nest, B);
    ComputeSeconds += Costs.ComputeSeconds;
    LoopIterations += Costs.LoopIterations;
    Traffic.IssueBytes += Costs.IssueBytes;
    Traffic.L1Bytes += Costs.L1Bytes;
    Traffic.L2Bytes += Costs.L2Bytes;
    Traffic.L3Bytes += Costs.L3Bytes;
  }

  // Parallel execution: work is spread over the cores covered by the
  // parallel outer-band iterations, with load imbalance when they do not
  // divide evenly.
  double ParIters = static_cast<double>(Nest.getParallelIterations());
  double ActiveCores =
      std::min<double>(Machine.NumCores, std::max(1.0, ParIters));
  double Imbalance = 1.0;
  if (ParIters > ActiveCores) {
    double PerCore = ParIters / ActiveCores;
    Imbalance = std::ceil(PerCore) / PerCore;
  }

  const double GiB = 1024.0 * 1024.0 * 1024.0;
  TimeBreakdown T;
  T.ComputeSeconds = ComputeSeconds / ActiveCores * Imbalance;
  T.L1Seconds =
      Traffic.IssueBytes / (Machine.L1.BandwidthPerCoreGBps * GiB) /
      ActiveCores * Imbalance;
  T.L2Seconds = Traffic.L1Bytes / (Machine.L2.BandwidthPerCoreGBps * GiB) /
                ActiveCores * Imbalance;
  T.L3Seconds = Traffic.L2Bytes / (Machine.L3.BandwidthPerCoreGBps * GiB) /
                ActiveCores * Imbalance;
  // DRAM bandwidth is shared; a few cores cannot saturate it.
  double PerCoreDram = 12.0; // GiB/s a single core can sustain
  double DramGBps =
      std::min(Machine.DramBandwidthGBps, PerCoreDram * ActiveCores);
  T.DramSeconds = Traffic.L3Bytes / (DramGBps * GiB);

  T.LoopOverheadSeconds = LoopIterations * Machine.LoopOverheadCycles /
                          (Machine.FrequencyGHz * 1e9) / ActiveCores;
  T.ForkSeconds = ParIters > 1.0 ? Machine.ParallelForkSeconds : 0.0;

  T.TotalSeconds = std::max({T.ComputeSeconds, T.L1Seconds, T.L2Seconds,
                             T.L3Seconds, T.DramSeconds}) +
                   T.LoopOverheadSeconds + T.ForkSeconds;
  return T;
}

double CostModel::estimateModule(const std::vector<LoopNest> &Nests) const {
  double Total = 0.0;
  for (const LoopNest &Nest : Nests)
    Total += estimateNest(Nest).TotalSeconds;
  return Total;
}
