//===- WorkingSet.h - Footprint analysis of scheduled nests ------*- C++-*-===//
///
/// \file
/// Polyhedral-flavoured working-set analysis over materialized loop
/// nests: for each tensor access and each loop depth, how many distinct
/// bytes the sub-nest below that depth touches, and whether the access is
/// contiguous in the fastest-varying tensor dimension. The analytical
/// cost model uses these footprints to decide at which cache level each
/// access's reuse is captured (the mechanism by which tiling pays off).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_PERF_WORKINGSET_H
#define MLIRRL_PERF_WORKINGSET_H

#include "transforms/LoopNest.h"

#include <cstdint>
#include <vector>

namespace mlirrl {

/// The flattened loop list of one body: the nest's shared outer band
/// followed by the body's own loops (outermost first).
///
/// Outer-band loops iterate the *consumer's* dims; for fused producer
/// bodies they do not advance the producer's dims directly, so they are
/// marked Foreign: a foreign loop re-executes the body without growing its
/// per-visit footprint.
struct FlatLoop {
  ScheduledLoop Loop;
  bool Foreign = false;
};

/// Flattens \p Body of \p Nest (outer band first). All bodies share the
/// outer band; producer bodies mark it foreign.
std::vector<FlatLoop> flattenBodyLoops(const LoopNest &Nest,
                                       unsigned BodyIdx);

/// Distinct elements and contiguity of one access over the sub-nest
/// at loop depths >= \p Depth of \p Loops.
struct AccessFootprint {
  /// Distinct bytes touched by the sub-nest (cache-line padded when the
  /// access is not contiguous).
  int64_t Bytes = 0;
  /// Distinct elements (no line padding).
  int64_t Elements = 0;
  /// True when consecutive innermost iterations touch adjacent elements
  /// of the fastest-varying tensor dimension.
  bool UnitStrideInnermost = false;
};

/// Computes the footprint of \p Access for the sub-nest of \p Loops
/// starting at \p Depth (Depth == Loops.size() gives one iteration
/// point).
AccessFootprint computeFootprint(const TensorAccess &Access,
                                 const std::vector<FlatLoop> &Loops,
                                 unsigned Depth, int64_t LineBytes);

/// Per-dimension extents of the iteration sub-box spanned by loops at
/// depths >= \p Depth (for the body's own dims; foreign loops are
/// ignored).
std::vector<int64_t> computeSubBoxExtents(const std::vector<FlatLoop> &Loops,
                                          unsigned Depth, unsigned NumDims);

/// True when the access's fastest-varying tensor dimension advances by
/// one element per iteration of the innermost (vectorizable) loop.
bool isUnitStrideForLoop(const TensorAccess &Access, unsigned InnerDim);

} // namespace mlirrl

#endif // MLIRRL_PERF_WORKINGSET_H
