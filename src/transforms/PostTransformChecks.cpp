//===- PostTransformChecks.cpp --------------------------------------------===//

#include "transforms/PostTransformChecks.h"

#include "ir/Verifier.h"
#include "transforms/Legality.h"

#include <algorithm>
#include <string>

using namespace mlirrl;

namespace {

/// Accumulates the first violation; later check() calls are no-ops once
/// one fired, so callers can chain checks without early returns.
class Checker {
public:
  explicit Checker(std::string &ErrorMessage) : Err(ErrorMessage) {}

  bool check(bool Condition, const std::string &Message) {
    if (!Condition && !Failed) {
      Failed = true;
      Err = Message;
    }
    return Condition;
  }

  bool ok() const { return !Failed; }

private:
  std::string &Err;
  bool Failed = false;
};

std::string loopDesc(const std::string &Where, const ScheduledLoop &L) {
  return Where + " loop (dim " + std::to_string(L.IterDim) + ", trip " +
         std::to_string(L.TripCount) + ", step " + std::to_string(L.Step) +
         ")";
}

int64_t ceilDiv(int64_t A, int64_t B) { return (A + B - 1) / B; }

} // namespace

bool mlirrl::checkTransformState(const OpTransformState &State,
                                 std::string &ErrorMessage) {
  Checker C(ErrorMessage);
  const LinalgOp &Op = State.getOp();
  const unsigned NumLoops = Op.getNumLoops();

  C.check(isValidPermutation(State.getOrder(), NumLoops),
          "loop order of " + Op.getResult() + " is not a permutation");

  // Bands refine the iteration box outermost-in: every non-zero tile
  // entry must be strictly below the extent remaining after the bands
  // above it (applyTiled drops no-op sizes at application time, so a
  // violation here means the state was corrupted after the fact).
  std::vector<int64_t> Remaining = Op.getLoopBounds();
  const auto &Bands = State.getBands();
  for (unsigned BandIdx = 0; BandIdx < Bands.size(); ++BandIdx) {
    const OpTransformState::Band &B = Bands[BandIdx];
    if (!C.check(B.TileByDim.size() == NumLoops,
                 "band " + std::to_string(BandIdx) + " of " + Op.getResult() +
                     " has wrong tile arity"))
      return false;
    C.check(!B.Parallel || BandIdx == 0,
            "parallel flag on non-front band " + std::to_string(BandIdx) +
                " of " + Op.getResult());
    for (unsigned Dim = 0; Dim < NumLoops; ++Dim) {
      int64_t Size = B.TileByDim[Dim];
      if (Size == 0)
        continue;
      C.check(Size > 0 && Size < Remaining[Dim],
              "band " + std::to_string(BandIdx) + " of " + Op.getResult() +
                  ": tile size " + std::to_string(Size) + " on dim " +
                  std::to_string(Dim) + " does not refine extent " +
                  std::to_string(Remaining[Dim]));
      if (Size > 0 && Size < Remaining[Dim])
        Remaining[Dim] = Size;
    }
  }

  if (State.isVectorized())
    C.check(isVectorizationLegal(Op, State.getInnermostTrip()),
            "vectorized state of " + Op.getResult() +
                " violates the vectorization mask (innermost trip " +
                std::to_string(State.getInnermostTrip()) + ")");
  return C.ok();
}

/// Checks one body's access list: exactly one write, in last position,
/// and one access per op input plus the output.
static bool checkBodyAccesses(Checker &C, const LinalgOp &Op,
                              const NestBody &Body) {
  unsigned Writes = 0;
  for (const TensorAccess &A : Body.Accesses)
    Writes += A.IsWrite;
  C.check(Writes == 1 && !Body.Accesses.empty() && Body.Accesses.back().IsWrite,
          "body " + Body.Name + " must have exactly one write access, last");
  C.check(Body.Accesses.size() == Op.getNumInputs() + 1,
          "body " + Body.Name + " access count does not match op operands");
  if (!Body.Accesses.empty())
    C.check(Body.Accesses.back().Value == Op.getResult(),
            "body " + Body.Name + " write access is not the op result");
  return C.ok();
}

bool mlirrl::checkLoopNest(const Module &M, unsigned OpIdx,
                           const OpSchedule &Sched, const LoopNest &Nest,
                           std::string &ErrorMessage) {
  Checker C(ErrorMessage);
  const LinalgOp &Op = M.getOp(OpIdx);
  const unsigned NumLoops = Op.getNumLoops();
  const std::vector<int64_t> Bounds = Op.getLoopBounds();

  if (!C.check(!Nest.Bodies.empty(), "nest of " + Op.getResult() +
                                         " has no bodies"))
    return false;
  if (!C.check(Nest.Bodies.size() == Sched.FusedProducers.size() + 1,
               "nest of " + Op.getResult() +
                   " body count does not match fused producer count"))
    return false;

  // ---- Outer band: tile loops of the consumer -------------------------
  for (const ScheduledLoop &L : Nest.OuterBand) {
    C.check(L.IsTileLoop, loopDesc("outer-band", L) + " is not a tile loop");
    C.check(L.IterDim < NumLoops,
            loopDesc("outer-band", L) + " dim out of range");
    C.check(L.TripCount >= 1 && L.Step >= 1,
            loopDesc("outer-band", L) + " has a degenerate trip or step");
    C.check(!L.Vectorized, loopDesc("outer-band", L) + " is vectorized");
    if (L.IterDim < NumLoops) {
      C.check(L.Kind == Op.getIterator(L.IterDim),
              loopDesc("outer-band", L) + " iterator kind mismatch");
      C.check(!L.Parallel || L.Kind == IteratorKind::Parallel,
              loopDesc("outer-band", L) + " parallelizes a reduction");
    }
  }
  // Only the outermost tile loop of a dimension (the front band's) may
  // be parallel: later bands subdivide a single front-band tile.
  std::vector<bool> SeenTile(NumLoops, false);
  for (const ScheduledLoop &L : Nest.OuterBand) {
    if (L.IterDim >= NumLoops)
      continue;
    C.check(!L.Parallel || !SeenTile[L.IterDim],
            loopDesc("outer-band", L) + " parallel below the front band");
    SeenTile[L.IterDim] = true;
  }

  // ---- Consumer body: point loops covering the residue ----------------
  const NestBody &Consumer = Nest.Bodies.back();
  C.check(Consumer.Name == Op.getResult(),
          "consumer body of " + Op.getResult() + " is named " + Consumer.Name);
  std::vector<int64_t> Remaining = Bounds;
  for (const ScheduledLoop &L : Nest.OuterBand) {
    if (L.IterDim >= NumLoops)
      continue;
    int64_t &Rem = Remaining[L.IterDim];
    C.check(L.Step >= 1 && L.Step < Rem,
            loopDesc("tile", L) + " step does not refine remaining extent " +
                std::to_string(Rem));
    C.check(L.Step < 1 || L.TripCount == ceilDiv(Rem, L.Step),
            loopDesc("tile", L) + " trip is not ceil(" + std::to_string(Rem) +
                " / " + std::to_string(L.Step) + ")");
    if (L.Step >= 1 && L.Step < Rem)
      Rem = L.Step;
  }
  std::vector<unsigned> PointSeen(NumLoops, 0);
  for (const ScheduledLoop &L : Consumer.Loops) {
    C.check(!L.IsTileLoop, loopDesc("consumer", L) + " is a tile loop");
    C.check(!L.Parallel, loopDesc("consumer", L) + " point loop is parallel");
    C.check(L.Step == 1, loopDesc("consumer", L) + " point step is not 1");
    if (!C.check(L.IterDim < NumLoops,
                 loopDesc("consumer", L) + " dim out of range"))
      continue;
    ++PointSeen[L.IterDim];
    C.check(L.TripCount == Remaining[L.IterDim],
            loopDesc("consumer", L) + " trip does not match residual extent " +
                std::to_string(Remaining[L.IterDim]));
    C.check(L.Kind == Op.getIterator(L.IterDim),
            loopDesc("consumer", L) + " iterator kind mismatch");
  }
  for (unsigned Dim = 0; Dim < NumLoops; ++Dim)
    C.check(PointSeen[Dim] == 1, "consumer body of " + Op.getResult() +
                                     " scans dim " + std::to_string(Dim) +
                                     " " + std::to_string(PointSeen[Dim]) +
                                     " times");
  for (unsigned I = 0; I < Consumer.Loops.size(); ++I)
    C.check(!Consumer.Loops[I].Vectorized || I + 1 == Consumer.Loops.size(),
            "vectorized loop of " + Op.getResult() + " is not innermost");
  checkBodyAccesses(C, Op, Consumer);

  // ---- Fused producer bodies ------------------------------------------
  for (unsigned P = 0; P + 1 < Nest.Bodies.size(); ++P) {
    const unsigned ProducerIdx = Sched.FusedProducers[P];
    if (!C.check(ProducerIdx < M.getNumOps(),
                 "fused producer index out of range"))
      return false;
    const LinalgOp &Producer = M.getOp(ProducerIdx);
    const NestBody &Body = Nest.Bodies[P];
    C.check(Body.Name == Producer.getResult(),
            "fused body " + std::to_string(P) + " of " + Op.getResult() +
                " is named " + Body.Name + ", expected " +
                Producer.getResult());
    if (!C.check(Body.Loops.size() == Producer.getNumLoops(),
                 "fused body " + Body.Name + " loop count mismatch"))
      continue;
    const std::vector<int64_t> PBounds = Producer.getLoopBounds();
    for (unsigned I = 0; I < Body.Loops.size(); ++I) {
      const ScheduledLoop &L = Body.Loops[I];
      C.check(L.IterDim == I,
              loopDesc("fused " + Body.Name, L) + " dims out of order");
      C.check(!L.IsTileLoop && !L.Parallel && !L.Vectorized && L.Step == 1,
              loopDesc("fused " + Body.Name, L) + " is not a plain point loop");
      C.check(L.TripCount >= 1 && L.TripCount <= PBounds[I],
              loopDesc("fused " + Body.Name, L) +
                  " trip outside the producer's bound " +
                  std::to_string(PBounds[I]));
      C.check(L.Kind == Producer.getIterator(I),
              loopDesc("fused " + Body.Name, L) + " iterator kind mismatch");
      // Fusion never truncates reductions: a partial reduction would
      // change the computed value, not just its schedule.
      C.check(Producer.getIterator(I) != IteratorKind::Reduction ||
                  L.TripCount == PBounds[I],
              loopDesc("fused " + Body.Name, L) + " truncates a reduction");
    }
    checkBodyAccesses(C, Producer, Body);
    C.check(std::find(Nest.FusedIntermediates.begin(),
                      Nest.FusedIntermediates.end(),
                      Producer.getResult()) != Nest.FusedIntermediates.end(),
            "fused producer " + Producer.getResult() +
                " missing from FusedIntermediates");
  }
  return C.ok();
}

bool mlirrl::checkCandidateAction(const Module &M, unsigned OpIdx,
                                  const OpSchedule &Sched,
                                  std::string &ErrorMessage) {
  Checker C(ErrorMessage);
  if (!C.check(OpIdx < M.getNumOps(), "op index out of range"))
    return false;

  // Fused producer indices must be in range, distinct, and never the
  // consumer itself -- before M.getOp can be asked about them.
  for (unsigned I = 0; I < Sched.FusedProducers.size(); ++I) {
    unsigned P = Sched.FusedProducers[I];
    if (!C.check(P < M.getNumOps() && P != OpIdx,
                 "fused producer index " + std::to_string(P) + " invalid"))
      return false;
    for (unsigned J = 0; J < I; ++J)
      if (!C.check(Sched.FusedProducers[J] != P,
                   "fused producer " + std::to_string(P) + " listed twice"))
        return false;
  }

  Expected<OpTransformState> Replayed =
      replayOpSchedule(M.getOp(OpIdx), Sched);
  if (!C.check(Replayed.hasValue(),
               Replayed ? "" : "schedule does not replay: " +
                                   Replayed.getError()))
    return false;
  if (!checkTransformState(*Replayed, ErrorMessage))
    return false;

  Expected<LoopNest> Nest = materializeLoopNestChecked(M, OpIdx, Sched);
  if (!C.check(Nest.hasValue(), Nest ? "" : "nest does not materialize: " +
                                                Nest.getError()))
    return false;
  if (!checkLoopNest(M, OpIdx, Sched, *Nest, ErrorMessage))
    return false;

  std::string VerifyErr;
  if (!C.check(verifyOp(M, M.getOp(OpIdx), VerifyErr),
               "op fails IR verification: " + VerifyErr))
    return false;
  return C.ok();
}

bool mlirrl::verifyScheduleState(ScheduleState &State,
                                 std::string &ErrorMessage) {
  Checker C(ErrorMessage);
  const Module &M = State.getModule();
  const ModuleSchedule &Sched = State.getSchedule();

  std::string VerifyErr;
  if (!C.check(verifyModule(M, VerifyErr),
               "module fails IR verification: " + VerifyErr))
    return false;

  // ---- Fused-away bookkeeping -----------------------------------------
  // Every fused-away op is claimed by exactly one live op's fused group,
  // keeps no standalone schedule, and is absent from the live set.
  for (unsigned Away : Sched.FusedAway) {
    if (!C.check(Away < M.getNumOps(), "fused-away index out of range"))
      return false;
    C.check(std::find(State.liveOps().begin(), State.liveOps().end(), Away) ==
                State.liveOps().end(),
            "fused-away op " + std::to_string(Away) + " is still live");
    unsigned Claims = 0;
    for (const auto &[Idx, OpSched] : Sched.OpSchedules) {
      if (Sched.isFusedAway(Idx))
        continue;
      Claims += static_cast<unsigned>(
          std::count(OpSched.FusedProducers.begin(),
                     OpSched.FusedProducers.end(), Away));
    }
    C.check(Claims == 1, "fused-away op " + std::to_string(Away) +
                             " claimed by " + std::to_string(Claims) +
                             " live groups");
  }
  for (const auto &[Idx, OpSched] : Sched.OpSchedules)
    for (unsigned P : OpSched.FusedProducers)
      C.check(Sched.isFusedAway(P),
              "fused producer " + std::to_string(P) + " of op " +
                  std::to_string(Idx) + " is not marked fused away");

  // ---- Per-op checks and stale-cache detection ------------------------
  static const OpSchedule EmptySchedule;
  for (unsigned OpIdx : State.liveOps()) {
    auto It = Sched.OpSchedules.find(OpIdx);
    const OpSchedule &OpSched =
        It == Sched.OpSchedules.end() ? EmptySchedule : It->second;
    if (!checkCandidateAction(M, OpIdx, OpSched, ErrorMessage))
      return false;
    // Stale-cache detection: the cached nest must be identical to a
    // from-scratch materialization of the committed schedule.
    Expected<LoopNest> Fresh = materializeLoopNestChecked(M, OpIdx, OpSched);
    if (!C.check(Fresh.hasValue(),
                 Fresh ? "" : "live op " + std::to_string(OpIdx) +
                                  " does not materialize: " + Fresh.getError()))
      return false;
    C.check(State.getNest(OpIdx).toString() == Fresh->toString(),
            "cached nest of op " + std::to_string(OpIdx) +
                " is stale (differs from a fresh materialization)");
  }
  return C.ok();
}
