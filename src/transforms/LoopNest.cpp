//===- LoopNest.cpp -------------------------------------------------------===//

#include "transforms/LoopNest.h"

#include "support/Format.h"

#include <algorithm>

using namespace mlirrl;

std::string ScheduledLoop::toString() const {
  std::string Out = formatString(
      "%s d%u trip=%lld step=%lld", IsTileLoop ? "tile" : "for", IterDim,
      static_cast<long long>(TripCount), static_cast<long long>(Step));
  if (Parallel)
    Out += " parallel";
  if (Vectorized)
    Out += " vectorized";
  if (Kind == IteratorKind::Reduction)
    Out += " reduction";
  return Out;
}

int64_t NestBody::getPointsPerVisit() const {
  int64_t Points = 1;
  for (const ScheduledLoop &L : Loops)
    Points *= L.TripCount;
  return Points;
}

int64_t LoopNest::getOuterVisits() const {
  int64_t Visits = 1;
  for (const ScheduledLoop &L : OuterBand)
    Visits *= L.TripCount;
  return Visits;
}

int64_t LoopNest::getTotalFlops() const {
  int64_t PerVisit = 0;
  for (const NestBody &B : Bodies)
    PerVisit += B.getFlopsPerVisit();
  return PerVisit * getOuterVisits();
}

int64_t LoopNest::getParallelIterations() const {
  int64_t Par = 1;
  for (const ScheduledLoop &L : OuterBand)
    if (L.Parallel)
      Par *= L.TripCount;
  return Par;
}

bool LoopNest::isFusedIntermediate(const std::string &Value) const {
  return std::find(FusedIntermediates.begin(), FusedIntermediates.end(),
                   Value) != FusedIntermediates.end();
}

std::string LoopNest::toString() const {
  std::string Out = "nest " + Name + "\n";
  unsigned Indent = 1;
  auto Pad = [](unsigned Levels) { return std::string(Levels * 2, ' '); };
  for (const ScheduledLoop &L : OuterBand)
    Out += Pad(Indent++) + L.toString() + "\n";
  for (const NestBody &B : Bodies) {
    unsigned BodyIndent = Indent;
    Out += Pad(BodyIndent) + "body " + B.Name + "\n";
    for (const ScheduledLoop &L : B.Loops)
      Out += Pad(++BodyIndent) + L.toString() + "\n";
    for (const TensorAccess &A : B.Accesses)
      Out += Pad(BodyIndent + 1) + (A.IsWrite ? "write " : "read ") + A.Value +
             " " + A.Map.toString() + "\n";
  }
  return Out;
}
