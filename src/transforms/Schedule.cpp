//===- Schedule.cpp -------------------------------------------------------===//

#include "transforms/Schedule.h"

#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>

using namespace mlirrl;

std::string mlirrl::getTransformKindName(TransformKind Kind) {
  switch (Kind) {
  case TransformKind::Tiling:
    return "tiling";
  case TransformKind::TiledParallelization:
    return "tiled_parallelization";
  case TransformKind::TiledFusion:
    return "tiled_fusion";
  case TransformKind::Interchange:
    return "interchange";
  case TransformKind::Vectorization:
    return "vectorization";
  case TransformKind::NoTransformation:
    return "no_transformation";
  }
  MLIRRL_UNREACHABLE("unknown transform kind");
}

Transformation Transformation::tiling(std::vector<int64_t> Sizes) {
  Transformation T;
  T.Kind = TransformKind::Tiling;
  T.TileSizes = std::move(Sizes);
  return T;
}

Transformation
Transformation::tiledParallelization(std::vector<int64_t> Sizes) {
  Transformation T;
  T.Kind = TransformKind::TiledParallelization;
  T.TileSizes = std::move(Sizes);
  return T;
}

Transformation Transformation::tiledFusion(std::vector<int64_t> Sizes) {
  Transformation T;
  T.Kind = TransformKind::TiledFusion;
  T.TileSizes = std::move(Sizes);
  return T;
}

Transformation Transformation::interchange(std::vector<unsigned> Perm) {
  Transformation T;
  T.Kind = TransformKind::Interchange;
  T.Permutation = std::move(Perm);
  return T;
}

Transformation Transformation::vectorization() {
  Transformation T;
  T.Kind = TransformKind::Vectorization;
  return T;
}

Transformation Transformation::noTransformation() {
  return Transformation();
}

std::string Transformation::toString() const {
  std::string Out = getTransformKindName(Kind);
  if (!TileSizes.empty()) {
    std::vector<std::string> Parts;
    for (int64_t S : TileSizes)
      Parts.push_back(formatString("%lld", static_cast<long long>(S)));
    Out += "(" + join(Parts, ", ") + ")";
  }
  if (!Permutation.empty()) {
    std::vector<std::string> Parts;
    for (unsigned P : Permutation)
      Parts.push_back(formatString("%u", P));
    Out += "(" + join(Parts, ", ") + ")";
  }
  return Out;
}

std::string OpSchedule::toString() const {
  std::vector<std::string> Parts;
  for (const Transformation &T : Transforms)
    Parts.push_back(T.toString());
  return "[" + join(Parts, "; ") + "]";
}

bool ModuleSchedule::isFusedAway(unsigned OpIdx) const {
  return std::find(FusedAway.begin(), FusedAway.end(), OpIdx) !=
         FusedAway.end();
}

std::string ModuleSchedule::toString() const {
  std::string Out;
  for (const auto &[OpIdx, Sched] : OpSchedules)
    Out += formatString("op %u: ", OpIdx) + Sched.toString() + "\n";
  return Out;
}
