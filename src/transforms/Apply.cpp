//===- Apply.cpp ----------------------------------------------------------===//

#include "transforms/Apply.h"

#include "support/Error.h"
#include "support/Format.h"
#include "transforms/Legality.h"

#include <cassert>
#include <numeric>

using namespace mlirrl;

OpTransformState::OpTransformState(const LinalgOp &Op) : Op(Op) {
  Order.resize(Op.getNumLoops());
  std::iota(Order.begin(), Order.end(), 0u);
}

std::vector<int64_t> OpTransformState::getPointTrips() const {
  std::vector<int64_t> Trips = Op.getLoopBounds();
  for (const Band &B : Bands)
    for (unsigned Dim = 0; Dim < Trips.size(); ++Dim)
      if (B.TileByDim[Dim] > 0 && B.TileByDim[Dim] < Trips[Dim])
        Trips[Dim] = B.TileByDim[Dim];
  return Trips;
}

int64_t OpTransformState::getInnermostTrip() const {
  return getPointTrips()[Order.back()];
}

OpTransformState::ApplyResult
OpTransformState::applyTiled(const Transformation &T, bool Parallel) {
  if (T.TileSizes.size() != Op.getNumLoops())
    return ApplyResult::failure("tile sizes arity mismatch");
  if (Vectorized)
    return ApplyResult::failure("operation already vectorized (terminal)");

  // Tile sizes are given per current loop level; translate to original
  // dimensions and drop no-op entries (size >= current point trip).
  std::vector<int64_t> PointTrips = getPointTrips();
  std::vector<int64_t> TileByDim(Op.getNumLoops(), 0);
  bool AnyEffective = false;
  for (unsigned Level = 0; Level < Order.size(); ++Level) {
    int64_t Size = T.TileSizes[Level];
    if (Size < 0)
      return ApplyResult::failure("negative tile size");
    unsigned Dim = Order[Level];
    if (Size == 0 || Size >= PointTrips[Dim])
      continue;
    TileByDim[Dim] = Size;
    AnyEffective = true;
  }
  // Parallelization-with-size-one keeps size-1 "tiles": tiling with size 1
  // alone is also representable but pointless, and an all-zero plain tiling
  // is a no-op the engine rejects so the environment can mask it.
  if (!AnyEffective && !Parallel)
    return ApplyResult::failure("tiling has no effect");

  Band NewBand;
  NewBand.TileByDim = std::move(TileByDim);
  NewBand.Parallel = false;
  Bands.push_back(std::move(NewBand));
  if (Parallel)
    Bands.front().Parallel = true;
  ++NumApplied;
  return ApplyResult::success();
}

OpTransformState::ApplyResult
OpTransformState::applyInterchange(const Transformation &T) {
  if (Vectorized)
    return ApplyResult::failure("operation already vectorized (terminal)");
  if (!isValidPermutation(T.Permutation, Op.getNumLoops()))
    return ApplyResult::failure("invalid permutation");
  std::vector<unsigned> NewOrder(Order.size());
  for (unsigned Level = 0; Level < Order.size(); ++Level)
    NewOrder[Level] = Order[T.Permutation[Level]];
  Order = std::move(NewOrder);
  ++NumApplied;
  return ApplyResult::success();
}

OpTransformState::ApplyResult OpTransformState::applyVectorization() {
  if (Vectorized)
    return ApplyResult::failure("operation already vectorized");
  if (!isVectorizationLegal(Op, getInnermostTrip()))
    return ApplyResult::failure("vectorization pre-conditions not met");
  Vectorized = true;
  ++NumApplied;
  return ApplyResult::success();
}

OpTransformState::ApplyResult
OpTransformState::apply(const Transformation &T) {
  switch (T.Kind) {
  case TransformKind::Tiling:
    return applyTiled(T, /*Parallel=*/false);
  case TransformKind::TiledParallelization:
    return applyTiled(T, /*Parallel=*/true);
  case TransformKind::TiledFusion: {
    // Fusion requires an effective consumer tiling (Linalg fuses at tile
    // granularity); the caller supplies the producer separately.
    bool AnyNonZero = false;
    for (int64_t Size : T.TileSizes)
      AnyNonZero |= Size > 0;
    if (!AnyNonZero)
      return ApplyResult::failure("tiled fusion requires tiling");
    return applyTiled(T, /*Parallel=*/false);
  }
  case TransformKind::Interchange:
    return applyInterchange(T);
  case TransformKind::Vectorization:
    return applyVectorization();
  case TransformKind::NoTransformation:
    ++NumApplied;
    return ApplyResult::success();
  }
  MLIRRL_UNREACHABLE("unknown transform kind");
}

//===----------------------------------------------------------------------===//
// Materialization
//===----------------------------------------------------------------------===//

/// Builds the flat loop list of one op from its final transform state:
/// tile bands outermost (in band creation order), then point loops.
/// \p TileLoops receives the band loops; \p PointLoops the point loops.
static void buildLoops(const OpTransformState &State,
                       std::vector<ScheduledLoop> &TileLoops,
                       std::vector<ScheduledLoop> &PointLoops) {
  const LinalgOp &Op = State.getOp();
  const std::vector<unsigned> &Order = State.getOrder();
  std::vector<int64_t> Remaining = Op.getLoopBounds();

  for (unsigned BandIdx = 0; BandIdx < State.getBands().size(); ++BandIdx) {
    const OpTransformState::Band &B = State.getBands()[BandIdx];
    for (unsigned Level = 0; Level < Order.size(); ++Level) {
      unsigned Dim = Order[Level];
      int64_t Size = B.TileByDim[Dim];
      if (Size <= 0 || Size >= Remaining[Dim]) {
        // Parallel bands materialize forall loops even for untiled dims
        // when the "tile" is the whole extent: that is plain
        // parallelization (tile size 1 yields Remaining iterations of
        // size-1 tiles).
        continue;
      }
      ScheduledLoop Loop;
      Loop.IterDim = Dim;
      Loop.TripCount = (Remaining[Dim] + Size - 1) / Size;
      Loop.Step = Size;
      Loop.Kind = Op.getIterator(Dim);
      Loop.IsTileLoop = true;
      Loop.Parallel = B.Parallel && Loop.Kind == IteratorKind::Parallel &&
                      BandIdx == 0;
      TileLoops.push_back(Loop);
      Remaining[Dim] = Size;
    }
  }

  for (unsigned Level = 0; Level < Order.size(); ++Level) {
    unsigned Dim = Order[Level];
    ScheduledLoop Loop;
    Loop.IterDim = Dim;
    Loop.TripCount = Remaining[Dim];
    Loop.Step = 1;
    Loop.Kind = Op.getIterator(Dim);
    Loop.IsTileLoop = false;
    PointLoops.push_back(Loop);
  }
  if (State.isVectorized() && !PointLoops.empty())
    PointLoops.back().Vectorized = true;
}

/// A parallel band whose dims were "tiled by one" (plain parallelization)
/// produces tile loops only where sizes are effective; when the first band
/// is parallel but produced no effective parallel tile loop for a parallel
/// dim (size >= extent or size == 0), parallelism still exists over that
/// dim's tile loop of trip ceil(extent/size). The buildLoops logic above
/// already handles every case except size >= extent with Parallel band:
/// there the whole dim is one tile, i.e. no parallelism from that dim.
///
/// Derives the per-visit domain of a fused producer: for each producer
/// dimension, the extent needed to cover one consumer point box.
static std::vector<int64_t>
computeFusedProducerDomain(const LinalgOp &Producer,
                           const AffineMap &ConsumerReadMap,
                           const std::vector<int64_t> &ConsumerPointBox) {
  // Extent of each producer-output dimension required by one consumer
  // tile: the range of the consumer's read expression over the point box.
  std::vector<int64_t> NeededExtent(ConsumerReadMap.getNumResults(), 1);
  for (unsigned R = 0; R < ConsumerReadMap.getNumResults(); ++R) {
    const AffineExpr &E = ConsumerReadMap.getResult(R);
    int64_t Extent = 1;
    for (unsigned D = 0; D < E.getNumDims(); ++D) {
      int64_t C = E.getCoeff(D);
      if (C < 0)
        C = -C;
      Extent += C * (ConsumerPointBox[D] - 1);
    }
    NeededExtent[R] = Extent;
  }

  // Producer parallel dims appear in its output map (a projected
  // permutation, checked by canFuseProducer); each inherits the needed
  // extent of its output dimension, clamped to its own bound. Reduction
  // dims always run in full.
  std::vector<int64_t> Domain = Producer.getLoopBounds();
  const AffineMap &OutMap = Producer.getOutputMap();
  for (unsigned R = 0; R < OutMap.getNumResults(); ++R) {
    int Dim = OutMap.getResult(R).getSingleDim();
    assert(Dim >= 0 && "fused producer output map not a projection");
    if (R < NeededExtent.size())
      Domain[static_cast<unsigned>(Dim)] =
          std::min(Domain[static_cast<unsigned>(Dim)], NeededExtent[R]);
  }
  return Domain;
}

/// Collects the accesses of \p Op as TensorAccess entries.
static std::vector<TensorAccess> collectAccesses(const Module &M,
                                                 const LinalgOp &Op) {
  std::vector<TensorAccess> Accesses;
  for (const OpOperand &In : Op.getInputs()) {
    const TensorType &Type = M.getValue(In.Value).Type;
    Accesses.push_back(TensorAccess{In.Value, In.Map, Type.getShape(),
                                    getElementByteSize(Type.getElementType()),
                                    /*IsWrite=*/false});
  }
  const TensorType &OutType = M.getValue(Op.getResult()).Type;
  Accesses.push_back(TensorAccess{Op.getResult(), Op.getOutputMap(),
                                  OutType.getShape(),
                                  getElementByteSize(OutType.getElementType()),
                                  /*IsWrite=*/true});
  return Accesses;
}

Expected<OpTransformState> mlirrl::replayOpSchedule(const LinalgOp &Op,
                                                    const OpSchedule &Sched) {
  OpTransformState State(Op);
  for (const Transformation &T : Sched.Transforms) {
    OpTransformState::ApplyResult Result = State.apply(T);
    if (!Result.Applied)
      return makeError<OpTransformState>("illegal schedule for " +
                                         Op.getResult() + ": " +
                                         Result.Reason);
  }
  return State;
}

Expected<LoopNest> mlirrl::materializeLoopNestChecked(const Module &M,
                                                      unsigned OpIdx,
                                                      const OpSchedule &Sched) {
  const LinalgOp &Op = M.getOp(OpIdx);
  Expected<OpTransformState> Replayed = replayOpSchedule(Op, Sched);
  if (!Replayed)
    return makeError<LoopNest>(Replayed.getError());
  const OpTransformState &State = *Replayed;

  std::vector<ScheduledLoop> TileLoops, PointLoops;
  buildLoops(State, TileLoops, PointLoops);

  LoopNest Nest;
  Nest.Name = Op.getResult();
  bool HasFusion = !Sched.FusedProducers.empty();

  // Without fusion everything is one body below an empty outer band.
  if (!HasFusion) {
    NestBody Body;
    Body.Name = Op.getResult();
    Body.Loops = std::move(TileLoops);
    Body.Loops.insert(Body.Loops.end(), PointLoops.begin(), PointLoops.end());
    Body.Accesses = collectAccesses(M, Op);
    Body.Arith = Op.getArith();
    // Parallel tile loops become the shared outer band so the performance
    // model sees the parallelism boundary.
    std::vector<ScheduledLoop> Outer;
    while (!Body.Loops.empty() && Body.Loops.front().IsTileLoop) {
      Outer.push_back(Body.Loops.front());
      Body.Loops.erase(Body.Loops.begin());
    }
    Nest.OuterBand = std::move(Outer);
    Nest.Bodies.push_back(std::move(Body));
    return Nest;
  }

  // With fusion: the consumer's tile loops are the shared band; producer
  // bodies compute their per-tile slice before the consumer's point body.
  Nest.OuterBand = std::move(TileLoops);
  std::vector<int64_t> PointBox = State.getPointTrips();

  // Fusion chains: a later fused producer may be read by an earlier fused
  // producer rather than by the consumer itself. Track each fused body's
  // per-visit domain so chained reads resolve against the right box.
  std::vector<std::pair<const LinalgOp *, std::vector<int64_t>>> Readers;
  Readers.push_back({&Op, PointBox});

  for (unsigned ProducerIdx : Sched.FusedProducers) {
    const LinalgOp &Producer = M.getOp(ProducerIdx);
    // Find a read of this producer's result in the fused group.
    const AffineMap *ReadMap = nullptr;
    const std::vector<int64_t> *ReaderBox = nullptr;
    for (const auto &[Reader, Box] : Readers) {
      for (const OpOperand &In : Reader->getInputs()) {
        if (In.Value == Producer.getResult()) {
          ReadMap = &In.Map;
          ReaderBox = &Box;
          break;
        }
      }
      if (ReadMap)
        break;
    }
    if (!ReadMap)
      return makeError<LoopNest>("fused producer " + Producer.getResult() +
                                 " is not read by the fused group of " +
                                 Op.getResult());

    std::vector<int64_t> Domain =
        computeFusedProducerDomain(Producer, *ReadMap, *ReaderBox);
    Readers.push_back({&Producer, Domain});

    NestBody Body;
    Body.Name = Producer.getResult();
    for (unsigned Dim = 0; Dim < Producer.getNumLoops(); ++Dim) {
      ScheduledLoop Loop;
      Loop.IterDim = Dim;
      Loop.TripCount = Domain[Dim];
      Loop.Step = 1;
      Loop.Kind = Producer.getIterator(Dim);
      Body.Loops.push_back(Loop);
    }
    Body.Accesses = collectAccesses(M, Producer);
    Body.Arith = Producer.getArith();
    Nest.Bodies.push_back(std::move(Body));
    Nest.FusedIntermediates.push_back(Producer.getResult());
  }

  NestBody ConsumerBody;
  ConsumerBody.Name = Op.getResult();
  ConsumerBody.Loops = std::move(PointLoops);
  ConsumerBody.Accesses = collectAccesses(M, Op);
  ConsumerBody.Arith = Op.getArith();
  Nest.Bodies.push_back(std::move(ConsumerBody));
  return Nest;
}

LoopNest mlirrl::materializeLoopNest(const Module &M, unsigned OpIdx,
                                     const OpSchedule &Sched) {
  Expected<LoopNest> Nest = materializeLoopNestChecked(M, OpIdx, Sched);
  if (!Nest)
    reportFatalError("materializeLoopNest: " + Nest.getError());
  return std::move(*Nest);
}

Expected<std::vector<LoopNest>>
mlirrl::materializeModuleChecked(const Module &M, const ModuleSchedule &Sched) {
  std::vector<LoopNest> Nests;
  static const OpSchedule EmptySchedule;
  for (unsigned I = 0; I < M.getNumOps(); ++I) {
    if (Sched.isFusedAway(I))
      continue;
    auto It = Sched.OpSchedules.find(I);
    const OpSchedule &OpSched =
        It == Sched.OpSchedules.end() ? EmptySchedule : It->second;
    Expected<LoopNest> Nest = materializeLoopNestChecked(M, I, OpSched);
    if (!Nest)
      return makeError<std::vector<LoopNest>>(Nest.getError());
    Nests.push_back(std::move(*Nest));
  }
  return Nests;
}

std::vector<LoopNest> mlirrl::materializeModule(const Module &M,
                                                const ModuleSchedule &Sched) {
  Expected<std::vector<LoopNest>> Nests = materializeModuleChecked(M, Sched);
  if (!Nests)
    reportFatalError("materializeModule: " + Nests.getError());
  return std::move(*Nests);
}

std::vector<LoopNest> mlirrl::materializeBaseline(const Module &M) {
  return materializeModule(M, ModuleSchedule());
}
