//===- ScheduleState.cpp --------------------------------------------------===//

#include "transforms/ScheduleState.h"

#include "support/Error.h"
#include "support/Hash.h"
#include "transforms/Apply.h"

#include <algorithm>
#include <cassert>

using namespace mlirrl;

// ---------------------------------------------------------------------------
// Per-op hashing
// ---------------------------------------------------------------------------

static void hashAffineMap(FnvHasher &H, const AffineMap &Map) {
  H.word(Map.getNumDims());
  H.word(Map.getNumResults());
  for (const AffineExpr &E : Map.getResults()) {
    H.word(E.getNumDims());
    for (int64_t Coeff : E.getCoeffs())
      H.signedWord(Coeff);
    H.signedWord(E.getConstant());
  }
}

static void hashValueType(FnvHasher &H, const Module &M,
                          const std::string &Name) {
  const ValueInfo &Value = M.getValue(Name);
  H.bytes(Value.Name);
  H.word(static_cast<uint64_t>(Value.Type.getElementType()));
  for (int64_t Dim : Value.Type.getShape())
    H.signedWord(Dim);
}

uint64_t mlirrl::hashOpStructure(const Module &M, unsigned OpIdx) {
  // Distinct seed from the module/nest key spaces.
  FnvHasher H(0x6a09e667f3bcc908ull);
  const LinalgOp &Op = M.getOp(OpIdx);
  H.bytes(Op.getResult());
  H.word(static_cast<uint64_t>(Op.getKind()));
  H.word(Op.getNumLoops());
  for (int64_t Bound : Op.getLoopBounds())
    H.signedWord(Bound);
  for (IteratorKind Kind : Op.getIterators())
    H.word(static_cast<uint64_t>(Kind));
  H.word(Op.getNumInputs());
  for (const OpOperand &In : Op.getInputs()) {
    hashValueType(H, M, In.Value);
    hashAffineMap(H, In.Map);
  }
  hashValueType(H, M, Op.getResult());
  hashAffineMap(H, Op.getOutputMap());
  const ArithCounts &Arith = Op.getArith();
  for (int64_t Count : {Arith.Add, Arith.Sub, Arith.Mul, Arith.Div,
                        Arith.Exp, Arith.Max})
    H.signedWord(Count);
  return H.finish();
}

uint64_t mlirrl::hashOpSchedule(const OpSchedule &Sched) {
  FnvHasher H(0xbb67ae8584caa73bull);
  H.word(Sched.Transforms.size());
  for (const Transformation &T : Sched.Transforms) {
    H.word(static_cast<uint64_t>(T.Kind));
    H.word(T.TileSizes.size());
    for (int64_t S : T.TileSizes)
      H.signedWord(S);
    H.word(T.Permutation.size());
    for (unsigned P : T.Permutation)
      H.word(P);
  }
  H.word(Sched.FusedProducers.size());
  for (unsigned P : Sched.FusedProducers)
    H.word(P);
  return H.finish();
}

// ---------------------------------------------------------------------------
// ScheduleState
// ---------------------------------------------------------------------------

ScheduleState::ScheduleState(const Module &M) : M(&M) {
  Slots.resize(M.getNumOps());
  Live.reserve(M.getNumOps());
  for (unsigned I = 0; I < M.getNumOps(); ++I)
    Live.push_back(I);
}

void ScheduleState::invalidate(unsigned OpIdx) {
  OpSlot &Slot = Slots[OpIdx];
  Slot.NestValid = false;
  Slot.PriceValid = false;
  Slot.KeyValid = false;
  // StructHash survives: the module is immutable.
}

ScheduleState::DirtySet ScheduleState::apply(unsigned OpIdx,
                                             const Transformation &T,
                                             int FusedProducer) {
  assert(OpIdx < M->getNumOps() && "op index out of range");
  assert(!Sched.isFusedAway(OpIdx) && "transforming a fused-away op");

  DirtySet Dirty;
  OpSchedule &Op = Sched.OpSchedules[OpIdx];
  Op.Transforms.push_back(T);
  invalidate(OpIdx);
  Dirty.Changed.push_back(OpIdx);

  if (FusedProducer >= 0) {
    unsigned P = static_cast<unsigned>(FusedProducer);
    assert(!Sched.isFusedAway(P) && "producer already fused away");
    Op.FusedProducers.push_back(P);
    Sched.FusedAway.push_back(P);
    invalidate(P);
    Live.erase(std::remove(Live.begin(), Live.end(), P), Live.end());
    Dirty.FusedAway.push_back(P);
  }

  ++Tallies.Applies;
  return Dirty;
}

const LoopNest &ScheduleState::getNest(unsigned OpIdx) {
  assert(!Sched.isFusedAway(OpIdx) && "materializing a fused-away op");
  OpSlot &Slot = Slots[OpIdx];
  if (!Slot.NestValid) {
    static const OpSchedule EmptySchedule;
    auto It = Sched.OpSchedules.find(OpIdx);
    const OpSchedule &OpSched =
        It == Sched.OpSchedules.end() ? EmptySchedule : It->second;
    Slot.Nest = materializeLoopNest(*M, OpIdx, OpSched);
    Slot.NestValid = true;
    ++Tallies.NestMaterializations;
  }
  return Slot.Nest;
}

std::vector<LoopNest> ScheduleState::materializeAll() const {
  return materializeModule(*M, Sched);
}

uint64_t ScheduleState::structHash(unsigned OpIdx) {
  OpSlot &Slot = Slots[OpIdx];
  if (!Slot.StructValid) {
    Slot.StructHash = hashOpStructure(*M, OpIdx);
    Slot.StructValid = true;
  }
  return Slot.StructHash;
}

uint64_t ScheduleState::opMemoKey(unsigned OpIdx) {
  OpSlot &Slot = Slots[OpIdx];
  if (!Slot.KeyValid) {
    static const OpSchedule EmptySchedule;
    auto It = Sched.OpSchedules.find(OpIdx);
    const OpSchedule &OpSched =
        It == Sched.OpSchedules.end() ? EmptySchedule : It->second;
    // The nest of an op is a function of the op's structure, the
    // structures of its fused producers, and the op's schedule: fold
    // exactly those three.
    FnvHasher H(0x3c6ef372fe94f82bull);
    H.word(structHash(OpIdx));
    H.word(OpSched.FusedProducers.size());
    for (unsigned P : OpSched.FusedProducers)
      H.word(structHash(P));
    H.word(hashOpSchedule(OpSched));
    Slot.MemoKey = H.finish();
    Slot.KeyValid = true;
  }
  return Slot.MemoKey;
}

void ScheduleState::setPrice(unsigned OpIdx, double Seconds) {
  OpSlot &Slot = Slots[OpIdx];
  Slot.PriceSeconds = Seconds;
  Slot.PriceValid = true;
}
