//===- Legality.cpp -------------------------------------------------------===//

#include "transforms/Legality.h"

#include <cassert>
#include <numeric>

using namespace mlirrl;

const std::vector<int64_t> &mlirrl::getDefaultTileCandidates() {
  static const std::vector<int64_t> Candidates = {0, 1, 2, 4, 8, 16, 32, 64};
  return Candidates;
}

bool mlirrl::vectorizationPrecondition(const LinalgOp &Op) {
  // The MLIR vectorizer requires the output map to be a projected
  // permutation.
  if (!Op.getOutputMap().isProjectedPermutation())
    return false;
  // Windowed max reductions (max-pooling and generic ops with the same
  // structure) are rejected by the Linalg vectorizer.
  if (Op.getKind() == OpKind::PoolingMax)
    return false;
  if (Op.getArith().Max > 0 && Op.getNumReductionLoops() > 0)
    return false;
  return true;
}

bool mlirrl::isVectorizationLegal(const LinalgOp &Op, int64_t InnermostTrip) {
  // A non-positive trip cannot come out of a gated module (bounds are
  // verified positive), but an untrusted schedule can still claim one.
  return InnermostTrip >= 1 && vectorizationPrecondition(Op) &&
         InnermostTrip <= MaxVectorizableInnerTrip;
}

bool mlirrl::canFuseProducer(const Module &M, unsigned Consumer,
                             unsigned Producer) {
  if (Consumer == Producer || Consumer >= M.getNumOps() ||
      Producer >= M.getNumOps())
    return false;
  const LinalgOp &ConsumerOp = M.getOp(Consumer);
  const LinalgOp &ProducerOp = M.getOp(Producer);
  if (!ConsumerOp.readsValue(ProducerOp.getResult()))
    return false;
  // The per-tile producer domain is derived by inverting the producer's
  // output map, which must therefore be a projected permutation (true for
  // every Linalg named op and for the generics our generators emit).
  return ProducerOp.getOutputMap().isProjectedPermutation();
}

bool mlirrl::isValidPermutation(const std::vector<unsigned> &Perm,
                                unsigned NumLoops) {
  if (Perm.size() != NumLoops)
    return false;
  std::vector<bool> Seen(NumLoops, false);
  for (unsigned P : Perm) {
    if (P >= NumLoops || Seen[P])
      return false;
    Seen[P] = true;
  }
  return true;
}

std::vector<std::pair<unsigned, unsigned>>
mlirrl::getEnumeratedInterchangeCandidates(unsigned NumLoops) {
  std::vector<std::pair<unsigned, unsigned>> Candidates;
  for (unsigned Dist = 1; Dist <= 3; ++Dist)
    for (unsigned I = 0; I + Dist < NumLoops; ++I)
      Candidates.push_back({I, I + Dist});
  return Candidates;
}

std::vector<unsigned> mlirrl::makeSwapPermutation(unsigned NumLoops,
                                                  unsigned I, unsigned J) {
  assert(I < NumLoops && J < NumLoops && "swap levels out of range");
  std::vector<unsigned> Perm(NumLoops);
  std::iota(Perm.begin(), Perm.end(), 0u);
  std::swap(Perm[I], Perm[J]);
  return Perm;
}
