//===- ScheduleState.h - Incremental schedule transactions -------*- C++-*-===//
///
/// \file
/// The transaction layer between the environment and the measurement
/// stack. Every environment step changes the schedule of exactly one
/// operation, yet pricing a reward used to re-materialize and re-price
/// every loop nest of the module. A ScheduleState makes the per-op
/// locality explicit: apply() appends one transformation to one op's
/// sequence and returns the dirty set (which op nests changed -- one,
/// plus a removed standalone nest for Tiled Fusion), while the state
/// caches, per operation, the materialized LoopNest, the evaluator's
/// price and the (structural x schedule) memo key. Clean ops keep their
/// cached artifacts across steps, which is what turns Immediate-mode
/// reward from O(module) to O(1) per action.
///
/// The invariant every consumer relies on: pricing through the state is
/// bitwise-identical to pricing the same schedule from scratch
/// (Evaluator::timeState sums live-op prices in ascending op order --
/// exactly materializeModule's order -- and each cached artifact is
/// re-derived only from committed schedule content).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_TRANSFORMS_SCHEDULESTATE_H
#define MLIRRL_TRANSFORMS_SCHEDULESTATE_H

#include "ir/Module.h"
#include "transforms/LoopNest.h"
#include "transforms/Schedule.h"

#include <cstdint>
#include <vector>

namespace mlirrl {

/// Structural hash of one operation: every op field a materialized nest
/// can depend on, plus the shapes and element types of the values it
/// touches. Schedule-independent; combined with hashOpSchedule it keys
/// per-op measurements that survive across samples sharing ops.
uint64_t hashOpStructure(const Module &M, unsigned OpIdx);

/// Structural hash of one op's transformation sequence and fused-producer
/// list (the per-op analogue of hashModuleSchedule).
uint64_t hashOpSchedule(const OpSchedule &Sched);

/// The evolving schedule of one module with per-op incremental caches.
class ScheduleState {
public:
  explicit ScheduleState(const Module &M);

  /// What one transaction invalidated.
  struct DirtySet {
    /// Ops whose materialized nests changed and must be re-priced --
    /// normally just the acted-on op.
    std::vector<unsigned> Changed;
    /// Ops removed from the live set (their standalone nests no longer
    /// exist): the fused producer of a Tiled Fusion.
    std::vector<unsigned> FusedAway;
  };

  /// Appends \p T to op \p OpIdx's transformation sequence; when
  /// \p FusedProducer >= 0 the producer op is additionally folded into
  /// \p OpIdx's fused group (Tiled Fusion). Only the returned dirty set
  /// loses cached artifacts; every other op's nest, price and memo key
  /// stay valid.
  DirtySet apply(unsigned OpIdx, const Transformation &T,
                 int FusedProducer = -1);

  const Module &getModule() const { return *M; }

  /// The schedule assembled so far. Identical, entry for entry, to the
  /// ModuleSchedule the non-incremental path would have built from the
  /// same apply() sequence.
  const ModuleSchedule &getSchedule() const { return Sched; }

  /// Ops with a standalone nest (not fused away), ascending. The
  /// canonical pricing order.
  const std::vector<unsigned> &liveOps() const { return Live; }

  /// The materialized nest of live op \p OpIdx. Cached; re-materialized
  /// only after an apply() dirtied the op.
  const LoopNest &getNest(unsigned OpIdx);

  /// From-scratch materialization of every live op, in liveOps() order
  /// (the materializeModule oracle; bypasses and does not touch the
  /// per-op caches).
  std::vector<LoopNest> materializeAll() const;

  /// (structural x schedule) memo key of live op \p OpIdx: folds the
  /// op's structural hash, the structural hashes of its fused producers
  /// and its schedule hash. Cached until the op is dirtied.
  uint64_t opMemoKey(unsigned OpIdx);

  /// Per-op price slots. The state owns the storage; an Evaluator fills
  /// them (one state must only ever be priced through one evaluator --
  /// the environment's). apply() invalidates the slots of its dirty set.
  bool hasPrice(unsigned OpIdx) const { return Slots[OpIdx].PriceValid; }
  double getPrice(unsigned OpIdx) const { return Slots[OpIdx].PriceSeconds; }
  void setPrice(unsigned OpIdx, double Seconds);

  /// Lifetime tallies (for benches and the CI smoke check).
  struct Counters {
    uint64_t Applies = 0;
    /// Nests materialized, including each op's first. A fully incremental
    /// episode materializes ~1 nest per effective action.
    uint64_t NestMaterializations = 0;
  };
  const Counters &counters() const { return Tallies; }

private:
  struct OpSlot {
    LoopNest Nest;
    bool NestValid = false;
    double PriceSeconds = 0.0;
    bool PriceValid = false;
    uint64_t MemoKey = 0;
    bool KeyValid = false;
    /// The op's schedule-independent structural hash (computed once).
    uint64_t StructHash = 0;
    bool StructValid = false;
  };

  void invalidate(unsigned OpIdx);
  uint64_t structHash(unsigned OpIdx);

  const Module *M;
  ModuleSchedule Sched;
  std::vector<unsigned> Live;
  std::vector<OpSlot> Slots;
  Counters Tallies;
};

} // namespace mlirrl

#endif // MLIRRL_TRANSFORMS_SCHEDULESTATE_H
