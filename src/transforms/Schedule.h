//===- Schedule.h - Transformation sequences ---------------------*- C++-*-===//
///
/// \file
/// The schedule IR: the six transformation kinds of the paper (Sec. IV-A)
/// and per-operation transformation sequences. A Transformation is exactly
/// one agent action; an OpSchedule is the sequence applied to one Linalg
/// operation; a ModuleSchedule collects them for a whole code sample
/// together with the fusion structure the agent chose.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_TRANSFORMS_SCHEDULE_H
#define MLIRRL_TRANSFORMS_SCHEDULE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mlirrl {

/// The six actions of the paper's action space.
enum class TransformKind {
  Tiling,
  TiledParallelization,
  TiledFusion,
  Interchange,
  Vectorization,
  NoTransformation,
};

/// Number of transformation options (the transformation-selection head's
/// output arity).
inline constexpr unsigned NumTransformKinds = 6;

std::string getTransformKindName(TransformKind Kind);

/// One applied transformation with its parameters.
struct Transformation {
  TransformKind Kind = TransformKind::NoTransformation;

  /// For tiled kinds: one entry per loop level (current loop order);
  /// 0 means "do not tile this level" (paper Sec. IV-A).
  std::vector<int64_t> TileSizes;

  /// For interchange: Permutation[i] is the loop placed at level i.
  std::vector<unsigned> Permutation;

  static Transformation tiling(std::vector<int64_t> Sizes);
  static Transformation tiledParallelization(std::vector<int64_t> Sizes);
  static Transformation tiledFusion(std::vector<int64_t> Sizes);
  static Transformation interchange(std::vector<unsigned> Perm);
  static Transformation vectorization();
  static Transformation noTransformation();

  /// True for the per-operation terminal actions (Vectorization and
  /// NoTransformation end the optimization of the current operation).
  bool isTerminal() const {
    return Kind == TransformKind::Vectorization ||
           Kind == TransformKind::NoTransformation;
  }

  std::string toString() const;
};

/// The transformation sequence applied to one operation.
struct OpSchedule {
  std::vector<Transformation> Transforms;

  /// Indices (into the owning module) of producer ops fused into this
  /// operation, in fusion order.
  std::vector<unsigned> FusedProducers;

  bool empty() const { return Transforms.empty() && FusedProducers.empty(); }
  std::string toString() const;
};

/// Schedules for a whole module, keyed by op index. Ops fused into a
/// consumer have no schedule of their own.
struct ModuleSchedule {
  std::map<unsigned, OpSchedule> OpSchedules;

  /// Ops that were fused into some consumer (and therefore must not be
  /// materialized standalone).
  std::vector<unsigned> FusedAway;

  bool isFusedAway(unsigned OpIdx) const;
  std::string toString() const;
};

} // namespace mlirrl

#endif // MLIRRL_TRANSFORMS_SCHEDULE_H
