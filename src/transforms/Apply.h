//===- Apply.h - Applying schedules to operations ----------------*- C++-*-===//
///
/// \file
/// The transformation engine: replays a transformation sequence against a
/// Linalg operation, maintaining the evolving loop structure (tile bands,
/// loop order, parallel and vector markers), and materializes the final
/// LoopNest the performance model executes. Fused producers are
/// materialized at the tile granularity of the consumer, mirroring
/// Linalg's tile-and-fuse.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_TRANSFORMS_APPLY_H
#define MLIRRL_TRANSFORMS_APPLY_H

#include "ir/Module.h"
#include "support/Error.h"
#include "transforms/LoopNest.h"
#include "transforms/Schedule.h"

#include <string>
#include <vector>

namespace mlirrl {

/// The evolving loop structure of one operation under transformation.
class OpTransformState {
public:
  /// Starts from the untransformed operation: original loop order, no
  /// bands, nothing parallel or vectorized.
  explicit OpTransformState(const LinalgOp &Op);

  /// One level of tiling. TileByDim is indexed by *original* dimension;
  /// zero entries leave that dimension untiled at this band.
  struct Band {
    std::vector<int64_t> TileByDim;
    bool Parallel = false;
  };

  const std::vector<unsigned> &getOrder() const { return Order; }
  const std::vector<Band> &getBands() const { return Bands; }
  bool isVectorized() const { return Vectorized; }
  unsigned getNumApplied() const { return NumApplied; }

  /// Point-loop trip count per original dimension after all bands.
  std::vector<int64_t> getPointTrips() const;

  /// Trip count of the current innermost point loop (the vectorization
  /// mask consults this).
  int64_t getInnermostTrip() const;

  /// Outcome of one transformation application.
  struct ApplyResult {
    bool Applied = false;
    std::string Reason;
    static ApplyResult success() { return {true, ""}; }
    static ApplyResult failure(std::string Why) {
      return {false, std::move(Why)};
    }
  };

  /// Applies \p T; on failure the state is unchanged and the reason names
  /// the violated rule.
  ApplyResult apply(const Transformation &T);

  const LinalgOp &getOp() const { return Op; }

private:
  ApplyResult applyTiled(const Transformation &T, bool Parallel);
  ApplyResult applyInterchange(const Transformation &T);
  ApplyResult applyVectorization();

  LinalgOp Op;
  std::vector<unsigned> Order;
  std::vector<Band> Bands;
  bool Vectorized = false;
  unsigned NumApplied = 0;
};

/// Replays \p Sched's transformation sequence against \p Op. Fails with
/// the engine's rejection reason when any transform of the sequence is
/// inapplicable -- the recoverable path for schedules of unknown
/// provenance (imported modules, fuzzed actions, corrupted archives).
Expected<OpTransformState> replayOpSchedule(const LinalgOp &Op,
                                            const OpSchedule &Sched);

/// Materializes the scheduled loop nest of op \p OpIdx. Producer ops in
/// \p Sched.FusedProducers are inlined at the consumer's tile
/// granularity: their per-visit domains are derived from the consumer's
/// point box through the access maps. Fails (instead of aborting) when
/// the transformation sequence does not replay or a fused producer is
/// not read by the fused group -- the untrusted-input entry point.
Expected<LoopNest> materializeLoopNestChecked(const Module &M, unsigned OpIdx,
                                              const OpSchedule &Sched);

/// Like materializeLoopNestChecked, but treats failure as an internal
/// invariant violation (reportFatalError). Only for schedules that were
/// already validated at the boundary (the environment's post-transform
/// gate, engine-generated schedules); anything externally sourced must
/// go through the checked variant.
LoopNest materializeLoopNest(const Module &M, unsigned OpIdx,
                             const OpSchedule &Sched);

/// Materializes every non-fused-away op of the module; fails on the
/// first op whose schedule does not replay.
Expected<std::vector<LoopNest>>
materializeModuleChecked(const Module &M, const ModuleSchedule &Sched);

/// Materializes every non-fused-away op of the module. Fatal-on-error
/// wrapper over materializeModuleChecked (see materializeLoopNest).
std::vector<LoopNest> materializeModule(const Module &M,
                                        const ModuleSchedule &Sched);

/// The baseline used throughout the paper: the module with no loop-level
/// optimization at all.
std::vector<LoopNest> materializeBaseline(const Module &M);

} // namespace mlirrl

#endif // MLIRRL_TRANSFORMS_APPLY_H
