//===- Legality.h - Transformation legality and masking rules ----*- C++-*-===//
///
/// \file
/// Legality predicates shared by the transformation engine and the RL
/// environment's action mask (Sec. IV-A2 of the paper):
///
///  * vectorization pre-conditions (the boolean flag in the state vector);
///  * the "innermost loop larger than 512 iterations" vectorization mask
///    (MLIR's vectorizer fully unrolls the inner loop);
///  * fusion requirements (Linalg fuses at the tile granularity of the
///    consumer, so a fusion action must actually tile);
///  * the enumerated interchange candidate list (swaps of loop levels at
///    distance one, two or three: 3N-6 candidates).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_TRANSFORMS_LEGALITY_H
#define MLIRRL_TRANSFORMS_LEGALITY_H

#include "ir/Module.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace mlirrl {

/// The paper masks vectorization when the innermost loop has more than
/// 512 iterations (the MLIR pass fully unrolls it).
inline constexpr int64_t MaxVectorizableInnerTrip = 512;

/// The paper's tile-size candidate set: M = 8 sizes including 0 ("do not
/// tile").
const std::vector<int64_t> &getDefaultTileCandidates();

/// MLIR vectorization pre-conditions for a Linalg operation (the boolean
/// state feature). Max-pooling style ops (windowed max reductions) fail
/// them, which is why the paper's system cannot vectorize pooling.
bool vectorizationPrecondition(const LinalgOp &Op);

/// The action-mask rule: vectorization must also satisfy the inner-trip
/// bound on the *current* innermost point loop.
bool isVectorizationLegal(const LinalgOp &Op, int64_t InnermostTrip);

/// True if op \p Producer can be fused into op \p Consumer: the consumer
/// reads the producer's result and the producer's output map is a
/// projected permutation (needed to derive the per-tile domain).
bool canFuseProducer(const Module &M, unsigned Consumer, unsigned Producer);

/// True if \p Perm is a permutation of 0..N-1.
bool isValidPermutation(const std::vector<unsigned> &Perm, unsigned NumLoops);

/// Enumerated-candidates interchange: all swaps of levels (i, j) with
/// j - i in {1, 2, 3}. For N >= 3 this yields the paper's 3N - 6
/// candidates.
std::vector<std::pair<unsigned, unsigned>>
getEnumeratedInterchangeCandidates(unsigned NumLoops);

/// Builds the permutation that swaps levels \p I and \p J.
std::vector<unsigned> makeSwapPermutation(unsigned NumLoops, unsigned I,
                                          unsigned J);

} // namespace mlirrl

#endif // MLIRRL_TRANSFORMS_LEGALITY_H
