//===- LoopNest.h - Materialized scheduled loop nests ------------*- C++-*-===//
///
/// \file
/// The output of the transformation engine and the input of the
/// performance model: an explicit loop-nest structure after tiling,
/// parallelization, fusion, interchange and vectorization have been
/// applied. This plays the role of the scf/vector-level IR the real MLIR
/// pipeline lowers to (Listing 2 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_TRANSFORMS_LOOPNEST_H
#define MLIRRL_TRANSFORMS_LOOPNEST_H

#include "ir/AffineMap.h"
#include "ir/LinalgOp.h"
#include "ir/Types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mlirrl {

/// One loop of a scheduled nest.
struct ScheduledLoop {
  /// Original iteration dimension this loop scans (of its body's op).
  unsigned IterDim = 0;
  /// Number of iterations of this loop.
  int64_t TripCount = 1;
  /// How many points of IterDim one iteration advances (tile size for
  /// tile loops, 1 for point loops).
  int64_t Step = 1;
  /// Semantics of the dimension (reductions cannot run in parallel).
  IteratorKind Kind = IteratorKind::Parallel;
  /// True for loops of a tile band (scanning tiles, not points).
  bool IsTileLoop = false;
  /// Executed as scf.forall across cores.
  bool Parallel = false;
  /// Innermost SIMD loop (vector dialect).
  bool Vectorized = false;

  std::string toString() const;
};

/// One tensor access of a body.
struct TensorAccess {
  std::string Value;
  /// Indexing map over the body op's original iteration dims.
  AffineMap Map;
  std::vector<int64_t> TensorShape;
  unsigned ElemBytes = 4;
  bool IsWrite = false;
};

/// One perfectly-nested compute statement: loops below the shared outer
/// band, its accesses and its per-point arithmetic.
struct NestBody {
  /// Name of the op this body computes (its result value).
  std::string Name;
  /// Loops enclosing only this body, outermost first. IterDim refers to
  /// this body's op's iteration space.
  std::vector<ScheduledLoop> Loops;
  std::vector<TensorAccess> Accesses;
  ArithCounts Arith;

  /// Iteration points executed per visit of the shared outer band.
  int64_t getPointsPerVisit() const;
  /// Scalar arithmetic per visit of the shared outer band.
  int64_t getFlopsPerVisit() const {
    return getPointsPerVisit() * Arith.total();
  }
};

/// A fully scheduled loop nest: a shared outer band (the consumer's tile
/// loops, possibly parallel) enclosing one or more bodies (fused producer
/// bodies first, the consumer body last).
struct LoopNest {
  std::string Name;
  std::vector<ScheduledLoop> OuterBand;
  std::vector<NestBody> Bodies;

  /// Values computed by inner bodies and consumed by later bodies within
  /// the same tile (fusion keeps them cache-resident instead of spilling
  /// the full intermediate tensor).
  std::vector<std::string> FusedIntermediates;

  /// Total iterations of the outer band.
  int64_t getOuterVisits() const;
  /// Total scalar floating-point operations of the whole nest.
  int64_t getTotalFlops() const;
  /// Degree of parallelism exposed by parallel outer-band loops.
  int64_t getParallelIterations() const;
  /// True if \p Value is a fused intermediate of this nest.
  bool isFusedIntermediate(const std::string &Value) const;

  std::string toString() const;
};

} // namespace mlirrl

#endif // MLIRRL_TRANSFORMS_LOOPNEST_H
