//===- PostTransformChecks.h - Post-transform invariant pass -----*- C++-*-===//
///
/// \file
/// The invariant pass behind the crash-free untrusted-module pipeline:
/// after every applied action, the evolving transform state and the
/// materialized loop nest are re-validated against the rules the engine
/// is supposed to enforce -- band/tile consistency, permutation
/// validity, fused-producer derivability, structural invariants of the
/// materialized LoopNest, and IR-level verification of the op itself.
/// An illegal schedule is caught at the action that introduced it, not
/// as corrupted pricing three steps later.
///
/// All predicates follow the Verifier idiom: false + ErrorMessage on
/// violation, never a fatal. The environment runs checkCandidateAction
/// before committing an action (behind EnvConfig::PostTransformChecks);
/// tests and the fuzz harness run verifyScheduleState unconditionally
/// after every step.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_TRANSFORMS_POSTTRANSFORMCHECKS_H
#define MLIRRL_TRANSFORMS_POSTTRANSFORMCHECKS_H

#include "transforms/Apply.h"
#include "transforms/ScheduleState.h"

#include <string>

namespace mlirrl {

/// Validates the internal consistency of an evolving per-op transform
/// state: the loop order is a permutation, every band has one tile entry
/// per original dimension with non-negative sizes, the parallel flag
/// only appears on the front band, and a vectorized state satisfies the
/// vectorization mask on its final innermost trip.
bool checkTransformState(const OpTransformState &State,
                         std::string &ErrorMessage);

/// Validates the structural invariants of a materialized nest of op
/// \p OpIdx under \p Sched: per dimension, tile loops refine the extent
/// outermost-in (1 <= Step < remaining, TripCount == ceil(rem/Step))
/// down to exactly one unit-step point loop covering the residue; the
/// parallel flag appears only on front-band tile loops of parallel
/// dimensions; vectorization marks only the consumer's innermost loop;
/// each body carries exactly one write access, in last position; fused
/// producer bodies scan their dimensions in order with trips clamped to
/// the producer's bounds (reductions always in full).
bool checkLoopNest(const Module &M, unsigned OpIdx, const OpSchedule &Sched,
                   const LoopNest &Nest, std::string &ErrorMessage);

/// The per-action gate: replays \p Sched from scratch against op
/// \p OpIdx (catching sequences the engine would reject), materializes
/// the nest through the checked path (catching underivable fused
/// producers), then runs checkTransformState, checkLoopNest and
/// verifyOp. This is what the environment runs before committing each
/// action when EnvConfig::PostTransformChecks is on.
bool checkCandidateAction(const Module &M, unsigned OpIdx,
                          const OpSchedule &Sched, std::string &ErrorMessage);

/// Full-state validation for tests and the fuzz harness: verifies the
/// module, re-runs checkCandidateAction for every live op, checks the
/// fused-away bookkeeping (every fused-away op is claimed by exactly one
/// live op's fused group and has no standalone schedule), and detects
/// stale caches by comparing every cached nest against a from-scratch
/// materialization.
bool verifyScheduleState(ScheduleState &State, std::string &ErrorMessage);

} // namespace mlirrl

#endif // MLIRRL_TRANSFORMS_POSTTRANSFORMCHECKS_H
