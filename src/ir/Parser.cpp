//===- Parser.cpp ---------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Lexer.h"
#include "ir/Verifier.h"
#include "support/Args.h"
#include "support/Format.h"
#include "support/Stats.h"

#include <limits>
#include <map>

using namespace mlirrl;

namespace {

/// Recursive-descent parser over the token stream. When \p Limits is
/// given (the untrusted-input path), resource caps are enforced while
/// parsing so a hostile source fails fast instead of building an
/// arbitrarily large module first.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens,
                  const ImportLimits *Limits = nullptr)
      : Tokens(std::move(Tokens)), Limits(Limits) {}

  Expected<Module> parseModule();

private:
  const Token &peek() const { return Tokens[Pos]; }
  const Token &advance() { return Tokens[Pos++]; }
  bool check(TokenKind Kind) const { return peek().Kind == Kind; }
  bool match(TokenKind Kind) {
    if (!check(Kind))
      return false;
    ++Pos;
    return true;
  }

  /// Records a "line:col: message" diagnostic at the current token; all
  /// parse methods return false after calling this.
  bool error(const std::string &Message) {
    if (Diagnostic.empty())
      Diagnostic = formatString("%u:%u: ", peek().Line, peek().Col) + Message;
    return false;
  }

  bool expect(TokenKind Kind, const char *What) {
    if (match(Kind))
      return true;
    return error(formatString("expected %s, got '%s'", What,
                              peek().Text.c_str()));
  }

  bool parseInteger(int64_t &Value);
  bool parseTensorType(TensorType &Type);
  bool parseStatement(Module &M);
  bool parseOpBody(Module &M, const std::string &Result,
                   const std::string &Mnemonic);
  bool parseAffineMap(AffineMap &Map);
  bool parseAffineExpr(const std::map<std::string, unsigned> &DimIndex,
                       unsigned NumDims, AffineExpr &Expr);
  bool parseArith(ArithCounts &Arith);

  std::vector<Token> Tokens;
  const ImportLimits *Limits;
  size_t Pos = 0;
  std::string Diagnostic;
};

} // namespace

bool Parser::parseInteger(int64_t &Value) {
  bool Negative = match(TokenKind::Minus);
  if (!check(TokenKind::Word))
    return error("expected integer");
  const std::string &Text = peek().Text;
  // The sign arrived as its own Minus token, so the word must be pure
  // digits with magnitude <= INT64_MAX either way (INT64_MIN itself was
  // always rejected here, matching the old strtoll ERANGE behavior).
  Expected<uint64_t> Parsed = parseUnsignedInteger(
      Text, static_cast<uint64_t>(std::numeric_limits<int64_t>::max()));
  if (!Parsed) {
    if (Text.find_first_not_of("0123456789") == std::string::npos)
      return error("integer '" + Text + "' does not fit in 64 bits");
    return error("expected integer, got '" + Text + "'");
  }
  advance();
  Value = static_cast<int64_t>(*Parsed);
  if (Negative)
    Value = -Value;
  return true;
}

bool Parser::parseTensorType(TensorType &Type) {
  if (!check(TokenKind::Word) || peek().Text != "tensor")
    return error("expected 'tensor'");
  advance();
  if (!expect(TokenKind::Less, "'<'"))
    return false;
  if (!check(TokenKind::Word))
    return error("expected shaped type body");
  std::string Body = advance().Text;
  if (!expect(TokenKind::Greater, "'>'"))
    return false;

  // Split "256x1024xf32" on 'x'; the final component is the element type.
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (Start <= Body.size()) {
    size_t X = Body.find('x', Start);
    if (X == std::string::npos) {
      Parts.push_back(Body.substr(Start));
      break;
    }
    Parts.push_back(Body.substr(Start, X - Start));
    Start = X + 1;
  }
  if (Parts.size() < 2)
    return error("tensor type needs at least one dimension: " + Body);

  ElementType Elem;
  const std::string &ElemText = Parts.back();
  if (ElemText == "f32")
    Elem = ElementType::F32;
  else if (ElemText == "f64")
    Elem = ElementType::F64;
  else
    return error("unknown element type '" + ElemText + "'");

  std::vector<int64_t> Shape;
  for (size_t I = 0; I + 1 < Parts.size(); ++I) {
    // Checked parse instead of the old raw strtoll: an oversized literal
    // is a clean rejection here, not a saturate-to-INT64_MAX that only
    // the (optional) dimension cap would later catch.
    Expected<uint64_t> Parsed = parseUnsignedInteger(
        Parts[I], static_cast<uint64_t>(std::numeric_limits<int64_t>::max()));
    if (!Parsed || *Parsed == 0)
      return error("bad tensor dimension '" + Parts[I] + "'");
    int64_t Dim = static_cast<int64_t>(*Parsed);
    if (Limits && Dim > Limits->MaxDimSize)
      return error("tensor dimension " + Parts[I] + " exceeds the cap");
    Shape.push_back(Dim);
  }
  if (Limits && Shape.size() > Limits->MaxLoops)
    return error("tensor rank exceeds the cap");
  Type = TensorType(std::move(Shape), Elem);
  return true;
}

bool Parser::parseAffineExpr(const std::map<std::string, unsigned> &DimIndex,
                             unsigned NumDims, AffineExpr &Expr) {
  Expr = AffineExpr(NumDims);
  bool First = true;
  unsigned Terms = 0;
  for (;;) {
    if (Limits && ++Terms > Limits->MaxAffineTerms)
      return error("affine expression exceeds the term cap");
    int64_t Sign = 1;
    if (match(TokenKind::Minus))
      Sign = -1;
    else if (!First && !match(TokenKind::Plus))
      break;
    else if (!First)
      Sign = 1;

    // A term is: int, int * dim, dim, or dim * int.
    if (!check(TokenKind::Word))
      return error("expected affine term");
    const std::string &Text = peek().Text;
    auto DimIt = DimIndex.find(Text);
    if (DimIt != DimIndex.end()) {
      advance();
      int64_t Coeff = 1;
      if (match(TokenKind::Star)) {
        if (!parseInteger(Coeff))
          return false;
      }
      Expr.setCoeff(DimIt->second, Expr.getCoeff(DimIt->second) + Sign * Coeff);
    } else {
      int64_t Value;
      if (!parseInteger(Value))
        return false;
      if (match(TokenKind::Star)) {
        if (!check(TokenKind::Word))
          return error("expected iterator after '*'");
        auto It = DimIndex.find(peek().Text);
        if (It == DimIndex.end())
          return error("unknown iterator '" + peek().Text + "'");
        advance();
        Expr.setCoeff(It->second, Expr.getCoeff(It->second) + Sign * Value);
      } else {
        Expr.setConstant(Expr.getConstant() + Sign * Value);
      }
    }
    First = false;
    if (!check(TokenKind::Plus) && !check(TokenKind::Minus))
      break;
  }
  return true;
}

bool Parser::parseAffineMap(AffineMap &Map) {
  if (!expect(TokenKind::LParen, "'('"))
    return false;
  std::map<std::string, unsigned> DimIndex;
  unsigned NumDims = 0;
  if (!check(TokenKind::RParen)) {
    do {
      if (!check(TokenKind::Word))
        return error("expected iterator name");
      const std::string &Name = advance().Text;
      if (DimIndex.count(Name))
        return error("duplicate iterator '" + Name + "'");
      DimIndex[Name] = NumDims++;
    } while (match(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "')'") || !expect(TokenKind::Arrow, "'->'") ||
      !expect(TokenKind::LParen, "'('"))
    return false;

  std::vector<AffineExpr> Results;
  if (!check(TokenKind::RParen)) {
    do {
      AffineExpr Expr;
      if (!parseAffineExpr(DimIndex, NumDims, Expr))
        return false;
      Results.push_back(std::move(Expr));
    } while (match(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "')'"))
    return false;
  Map = AffineMap(NumDims, std::move(Results));
  return true;
}

bool Parser::parseArith(ArithCounts &Arith) {
  if (!expect(TokenKind::LBrace, "'{'"))
    return false;
  if (!check(TokenKind::RBrace)) {
    do {
      if (!check(TokenKind::Word))
        return error("expected arith op name");
      std::string Name = advance().Text;
      if (!expect(TokenKind::Colon, "':'"))
        return false;
      int64_t Count;
      if (!parseInteger(Count))
        return false;
      if (Name == "add")
        Arith.Add = Count;
      else if (Name == "sub")
        Arith.Sub = Count;
      else if (Name == "mul")
        Arith.Mul = Count;
      else if (Name == "div")
        Arith.Div = Count;
      else if (Name == "exp")
        Arith.Exp = Count;
      else if (Name == "max")
        Arith.Max = Count;
      else
        return error("unknown arith op '" + Name + "'");
    } while (match(TokenKind::Comma));
  }
  return expect(TokenKind::RBrace, "'}'");
}

bool Parser::parseOpBody(Module &M, const std::string &Result,
                         const std::string &Mnemonic) {
  OpKind Kind;
  if (!parseOpKindName(Mnemonic, Kind))
    return error("unknown operation '" + Mnemonic + "'");

  std::vector<int64_t> Bounds;
  std::vector<IteratorKind> Iterators;
  std::vector<AffineMap> Maps;
  ArithCounts Arith;
  bool HasBounds = false, HasIterators = false, HasMaps = false;

  if (!expect(TokenKind::LBrace, "'{'"))
    return false;
  do {
    if (!check(TokenKind::Word))
      return error("expected attribute name");
    std::string Attr = advance().Text;
    if (!expect(TokenKind::Equal, "'='"))
      return false;
    if (Attr == "bounds") {
      if (!expect(TokenKind::LBracket, "'['"))
        return false;
      do {
        int64_t Bound;
        if (!parseInteger(Bound))
          return false;
        if (Bound <= 0)
          return error("loop bounds must be positive");
        if (Limits && Bound > Limits->MaxDimSize)
          return error("loop bound exceeds the cap");
        Bounds.push_back(Bound);
      } while (match(TokenKind::Comma));
      if (!expect(TokenKind::RBracket, "']'"))
        return false;
      if (Limits && Bounds.size() > Limits->MaxLoops)
        return error("loop count exceeds the cap");
      HasBounds = true;
    } else if (Attr == "iterators") {
      if (!expect(TokenKind::LBracket, "'['"))
        return false;
      do {
        if (!check(TokenKind::Word))
          return error("expected iterator kind");
        const std::string &Name = advance().Text;
        if (Name == "parallel")
          Iterators.push_back(IteratorKind::Parallel);
        else if (Name == "reduction")
          Iterators.push_back(IteratorKind::Reduction);
        else
          return error("unknown iterator kind '" + Name + "'");
      } while (match(TokenKind::Comma));
      if (!expect(TokenKind::RBracket, "']'"))
        return false;
      HasIterators = true;
    } else if (Attr == "maps") {
      if (!expect(TokenKind::LBracket, "'['"))
        return false;
      do {
        AffineMap Map;
        if (!parseAffineMap(Map))
          return false;
        Maps.push_back(std::move(Map));
      } while (match(TokenKind::Comma));
      if (!expect(TokenKind::RBracket, "']'"))
        return false;
      HasMaps = true;
    } else if (Attr == "arith") {
      if (!parseArith(Arith))
        return false;
    } else {
      return error("unknown attribute '" + Attr + "'");
    }
  } while (match(TokenKind::Comma));
  if (!expect(TokenKind::RBrace, "'}'"))
    return false;

  if (!HasBounds || !HasIterators || !HasMaps)
    return error("operation requires bounds, iterators and maps attributes");

  if (!check(TokenKind::Word) || peek().Text != "ins")
    return error("expected 'ins'");
  advance();
  if (!expect(TokenKind::LParen, "'('"))
    return false;
  std::vector<std::string> Inputs;
  if (!check(TokenKind::RParen)) {
    do {
      if (!check(TokenKind::SsaId))
        return error("expected SSA value");
      Inputs.push_back(advance().Text);
    } while (match(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "')'") || !expect(TokenKind::Colon, "':'"))
    return false;
  TensorType ResultType;
  if (!parseTensorType(ResultType))
    return false;

  if (Maps.size() != Inputs.size() + 1)
    return error("expected one map per input plus the output map");
  for (const std::string &In : Inputs)
    if (!M.hasValue(In))
      return error("use of undeclared value '" + In + "'");

  std::vector<OpOperand> Operands;
  for (size_t I = 0; I < Inputs.size(); ++I)
    Operands.push_back(OpOperand{Inputs[I], Maps[I]});
  LinalgOp Op(Result, Kind, std::move(Bounds), std::move(Iterators),
              std::move(Operands), Maps.back(), Arith);
  M.addOp(std::move(Op), std::move(ResultType));
  return true;
}

bool Parser::parseStatement(Module &M) {
  if (!check(TokenKind::SsaId))
    return error("expected SSA value at start of statement");
  std::string Result = advance().Text;
  if (M.hasValue(Result))
    return error("value redefinition '" + Result + "'");
  if (Limits && M.getValueOrder().size() >= Limits->MaxValues)
    return error("value count exceeds the cap");
  if (!expect(TokenKind::Equal, "'='"))
    return false;
  if (!check(TokenKind::Word))
    return error("expected 'tensor' or operation mnemonic");

  if (peek().Text == "tensor") {
    TensorType Type;
    if (!parseTensorType(Type))
      return false;
    M.addInput(Result, std::move(Type));
    return true;
  }
  if (Limits && M.getNumOps() >= Limits->MaxOps)
    return error("operation count exceeds the cap");
  std::string Mnemonic = advance().Text;
  return parseOpBody(M, Result, Mnemonic);
}

Expected<Module> Parser::parseModule() {
  auto Fail = [&]() { return makeError<Module>(Diagnostic); };
  if (!check(TokenKind::Word) || peek().Text != "module") {
    error("expected 'module'");
    return Fail();
  }
  advance();
  Module M;
  if (match(TokenKind::At)) {
    if (!check(TokenKind::Word)) {
      error("expected module name after '@'");
      return Fail();
    }
    M.setName(advance().Text);
  }
  if (!expect(TokenKind::LBrace, "'{'"))
    return Fail();
  while (!check(TokenKind::RBrace)) {
    if (check(TokenKind::Eof)) {
      error("unexpected end of input inside module");
      return Fail();
    }
    if (!parseStatement(M))
      return Fail();
  }
  advance(); // consume '}'
  if (!check(TokenKind::Eof)) {
    error("trailing input after module");
    return Fail();
  }
  return M;
}

Expected<Module> mlirrl::parseModule(const std::string &Source) {
  std::vector<Token> Tokens;
  std::string LexError;
  if (!tokenize(Source, Tokens, LexError))
    return makeError<Module>(LexError);
  return Parser(std::move(Tokens)).parseModule();
}

Expected<Module> mlirrl::parseModuleWithLimits(const std::string &Source,
                                               const ImportLimits &Limits) {
  if (Source.size() > Limits.MaxSourceBytes)
    return makeError<Module>("source exceeds the byte cap (" +
                             std::to_string(Limits.MaxSourceBytes) + ")");
  std::vector<Token> Tokens;
  std::string LexError;
  if (!tokenize(Source, Tokens, LexError, Limits.MaxTokens))
    return makeError<Module>(LexError);
  return Parser(std::move(Tokens), &Limits).parseModule();
}

bool mlirrl::sanitizeModule(const Module &M, const ImportLimits &Limits,
                            std::string &ErrorMessage) {
  auto Fail = [&](const std::string &Why) {
    ErrorMessage = Why;
    return false;
  };
  if (M.getNumOps() == 0)
    return Fail("module has no operations");
  if (M.getNumOps() > Limits.MaxOps)
    return Fail("operation count exceeds the cap");
  if (M.getValueOrder().size() > Limits.MaxValues)
    return Fail("value count exceeds the cap");
  for (unsigned I = 0; I < M.getNumOps(); ++I) {
    const LinalgOp &Op = M.getOp(I);
    if (Op.getNumLoops() == 0)
      return Fail("op " + Op.getResult() + " has no loops");
    if (Op.getNumLoops() > Limits.MaxLoops)
      return Fail("op " + Op.getResult() + " loop count exceeds the cap");
    // The iteration-space product bounds every downstream int64
    // computation (flops, footprints, trip-count products), so cap it
    // with overflow-safe division instead of multiplying first.
    int64_t Space = 1;
    for (int64_t Bound : Op.getLoopBounds()) {
      if (Bound <= 0 || Bound > Limits.MaxDimSize)
        return Fail("op " + Op.getResult() + " loop bound outside the cap");
      if (Space > Limits.MaxIterationSpace / Bound)
        return Fail("op " + Op.getResult() +
                    " iteration space exceeds the cap");
      Space *= Bound;
    }
  }
  for (const std::string &Name : M.getValueOrder()) {
    const TensorType &Type = M.getValue(Name).Type;
    if (Type.getShape().size() > Limits.MaxLoops)
      return Fail("value " + Name + " rank exceeds the cap");
    int64_t Elements = 1;
    for (int64_t Dim : Type.getShape()) {
      if (Dim <= 0 || Dim > Limits.MaxDimSize)
        return Fail("value " + Name + " extent outside the cap");
      if (Elements > Limits.MaxIterationSpace / Dim)
        return Fail("value " + Name + " element count exceeds the cap");
      Elements *= Dim;
    }
  }
  return true;
}

Expected<Module> mlirrl::importModule(const std::string &Source,
                                      const ImportLimits &Limits) {
  auto Reject = [](const std::string &Why) {
    recordRobustnessEvent(RobustnessEvent::ImportRejected);
    return makeError<Module>(Why);
  };
  Expected<Module> M = parseModuleWithLimits(Source, Limits);
  if (!M)
    return Reject(M.getError());
  std::string Err;
  if (!verifyModule(*M, Err))
    return Reject("verifier: " + Err);
  if (!sanitizeModule(*M, Limits, Err))
    return Reject("sanitizer: " + Err);
  return M;
}
