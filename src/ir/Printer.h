//===- Printer.h - Textual IR emission ---------------------------*- C++-*-===//
///
/// \file
/// Prints modules, ops, maps and types in the mini-Linalg textual format.
/// printModule is the inverse of parseModule (round-trip stable).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_PRINTER_H
#define MLIRRL_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace mlirrl {

/// Prints one op as a statement (no trailing newline).
std::string printOp(const LinalgOp &Op, const TensorType &ResultType);

/// Prints the whole module.
std::string printModule(const Module &M);

} // namespace mlirrl

#endif // MLIRRL_IR_PRINTER_H
