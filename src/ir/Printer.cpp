//===- Printer.cpp --------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/Format.h"

using namespace mlirrl;

static std::string printArith(const ArithCounts &Arith) {
  std::vector<std::string> Parts;
  auto Field = [&](const char *Name, int64_t Count) {
    if (Count != 0)
      Parts.push_back(
          formatString("%s: %lld", Name, static_cast<long long>(Count)));
  };
  Field("add", Arith.Add);
  Field("sub", Arith.Sub);
  Field("mul", Arith.Mul);
  Field("div", Arith.Div);
  Field("exp", Arith.Exp);
  Field("max", Arith.Max);
  return "{" + join(Parts, ", ") + "}";
}

std::string mlirrl::printOp(const LinalgOp &Op, const TensorType &ResultType) {
  std::vector<std::string> Bounds;
  for (int64_t B : Op.getLoopBounds())
    Bounds.push_back(formatString("%lld", static_cast<long long>(B)));

  std::vector<std::string> Iterators;
  for (IteratorKind K : Op.getIterators())
    Iterators.push_back(getIteratorKindName(K));

  std::vector<std::string> Maps;
  for (const OpOperand &In : Op.getInputs())
    Maps.push_back(In.Map.toString());
  Maps.push_back(Op.getOutputMap().toString());

  std::vector<std::string> Ins;
  for (const OpOperand &In : Op.getInputs())
    Ins.push_back(In.Value);

  std::string Out = Op.getResult() + " = " + getOpKindName(Op.getKind());
  Out += " {bounds = [" + join(Bounds, ", ") + "]";
  Out += ", iterators = [" + join(Iterators, ", ") + "]";
  Out += ", maps = [" + join(Maps, ", ") + "]";
  Out += ", arith = " + printArith(Op.getArith()) + "}";
  Out += " ins(" + join(Ins, ", ") + ") : " + ResultType.toString();
  return Out;
}

std::string mlirrl::printModule(const Module &M) {
  std::string Out = "module @" + M.getName() + " {\n";
  for (const std::string &Name : M.getValueOrder()) {
    const ValueInfo &Info = M.getValue(Name);
    if (Info.DefiningOp >= 0)
      continue;
    Out += "  " + Name + " = " + Info.Type.toString() + "\n";
  }
  for (unsigned I = 0; I < M.getNumOps(); ++I) {
    const LinalgOp &Op = M.getOp(I);
    const TensorType &ResultType = M.getValue(Op.getResult()).Type;
    Out += "  " + printOp(Op, ResultType) + "\n";
  }
  Out += "}\n";
  return Out;
}
