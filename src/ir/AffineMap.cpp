//===- AffineMap.cpp ------------------------------------------------------===//

#include "ir/AffineMap.h"

#include "support/Format.h"

#include <cassert>

using namespace mlirrl;

AffineMap::AffineMap(unsigned NumDims, std::vector<AffineExpr> Results)
    : NumDims(NumDims), Results(std::move(Results)) {
#ifndef NDEBUG
  for (const AffineExpr &E : this->Results)
    assert(E.getNumDims() == NumDims && "result arity mismatch");
#endif
}

AffineMap AffineMap::identity(unsigned NumDims) {
  std::vector<AffineExpr> Results;
  Results.reserve(NumDims);
  for (unsigned I = 0; I < NumDims; ++I)
    Results.push_back(AffineExpr::dim(I, NumDims));
  return AffineMap(NumDims, std::move(Results));
}

AffineMap AffineMap::projection(const std::vector<unsigned> &Dims,
                                unsigned NumDims) {
  std::vector<AffineExpr> Results;
  Results.reserve(Dims.size());
  for (unsigned D : Dims)
    Results.push_back(AffineExpr::dim(D, NumDims));
  return AffineMap(NumDims, std::move(Results));
}

const AffineExpr &AffineMap::getResult(unsigned Idx) const {
  assert(Idx < Results.size() && "result index out of range");
  return Results[Idx];
}

std::vector<int64_t>
AffineMap::evaluate(const std::vector<int64_t> &Point) const {
  std::vector<int64_t> Out;
  Out.reserve(Results.size());
  for (const AffineExpr &E : Results)
    Out.push_back(E.evaluate(Point));
  return Out;
}

bool AffineMap::involvesDim(unsigned Dim) const {
  for (const AffineExpr &E : Results)
    if (E.involvesDim(Dim))
      return true;
  return false;
}

AffineMap AffineMap::permuteDims(const std::vector<unsigned> &Perm) const {
  std::vector<AffineExpr> NewResults;
  NewResults.reserve(Results.size());
  for (const AffineExpr &E : Results)
    NewResults.push_back(E.permuteDims(Perm));
  return AffineMap(NumDims, std::move(NewResults));
}

std::vector<std::vector<int64_t>> AffineMap::toAccessMatrix() const {
  std::vector<std::vector<int64_t>> Matrix;
  Matrix.reserve(Results.size());
  for (const AffineExpr &E : Results) {
    std::vector<int64_t> Row = E.getCoeffs();
    Row.push_back(E.getConstant());
    Matrix.push_back(std::move(Row));
  }
  return Matrix;
}

bool AffineMap::isProjectedPermutation() const {
  std::vector<bool> Seen(NumDims, false);
  for (const AffineExpr &E : Results) {
    int Dim = E.getSingleDim();
    if (Dim < 0 || Seen[static_cast<unsigned>(Dim)])
      return false;
    Seen[static_cast<unsigned>(Dim)] = true;
  }
  return true;
}

bool AffineMap::operator==(const AffineMap &Other) const {
  return NumDims == Other.NumDims && Results == Other.Results;
}

std::string AffineMap::toString() const {
  std::vector<std::string> Dims;
  for (unsigned I = 0; I < NumDims; ++I)
    Dims.push_back(formatString("d%u", I));
  std::vector<std::string> Outs;
  for (const AffineExpr &E : Results)
    Outs.push_back(E.toString());
  return "(" + join(Dims, ", ") + ") -> (" + join(Outs, ", ") + ")";
}
