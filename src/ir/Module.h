//===- Module.h - A code sample: values + operation list ---------*- C++-*-===//
///
/// \file
/// A Module is one "code sample" of the paper: a straight-line sequence of
/// Linalg operations over SSA tensor values. It provides the use-def
/// queries the environment needs: given a consumer, find its producers;
/// pick the *last* producer (the textually closest one) as the next fusion
/// candidate, per Sec. III.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_MODULE_H
#define MLIRRL_IR_MODULE_H

#include "ir/LinalgOp.h"
#include "ir/Types.h"

#include <map>
#include <string>
#include <vector>

namespace mlirrl {

/// A named SSA tensor value.
struct ValueInfo {
  std::string Name;
  TensorType Type;
  /// Index of the op defining this value, or -1 for module inputs.
  int DefiningOp = -1;
};

/// A sequence of structured operations over tensor values.
class Module {
public:
  Module() = default;
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Declares a module input tensor. The name must be fresh.
  void addInput(const std::string &ValueName, TensorType Type);

  /// Appends \p Op; its result value is declared with \p ResultType and
  /// all its operands must already be declared.
  void addOp(LinalgOp Op, TensorType ResultType);

  unsigned getNumOps() const { return Ops.size(); }
  const LinalgOp &getOp(unsigned Idx) const;
  LinalgOp &getOp(unsigned Idx);
  const std::vector<LinalgOp> &getOps() const { return Ops; }

  /// Replaces op \p Idx in place (e.g. after a transformation rewrites
  /// it). The result name must not change.
  void replaceOp(unsigned Idx, LinalgOp Op);

  bool hasValue(const std::string &ValueName) const;
  const ValueInfo &getValue(const std::string &ValueName) const;
  const std::vector<std::string> &getValueOrder() const { return ValueOrder; }

  /// The op index defining \p ValueName, or -1 if it is a module input.
  int getDefiningOp(const std::string &ValueName) const;

  /// Indices of ops producing inputs of op \p Consumer, in program order.
  std::vector<unsigned> getProducers(unsigned Consumer) const;

  /// The paper's producer-selection rule: the producer occurring last
  /// (textually, right before the consumer). Returns -1 when none exists.
  int getLastProducer(unsigned Consumer) const;

  /// Indices of ops reading the result of op \p Producer.
  std::vector<unsigned> getConsumers(unsigned Producer) const;

  /// Returns true if the result of op \p Idx is read by no other op (a
  /// module output).
  bool isModuleOutput(unsigned Idx) const;

  /// Total floating-point work of the whole module.
  int64_t getTotalFlops() const;

private:
  std::string Name = "module";
  std::vector<LinalgOp> Ops;
  std::map<std::string, ValueInfo> Values;
  std::vector<std::string> ValueOrder;
};

} // namespace mlirrl

#endif // MLIRRL_IR_MODULE_H
