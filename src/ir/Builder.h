//===- Builder.h - Convenience construction of Linalg modules ----*- C++-*-===//
///
/// \file
/// Builder appends named structured operations to a Module, inferring
/// iteration spaces and indexing maps from operand types, exactly as the
/// Linalg named-op definitions do. Dataset generators and tests use this
/// instead of hand-writing maps.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_BUILDER_H
#define MLIRRL_IR_BUILDER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace mlirrl {

/// Appends ops to a Module with type inference for named kinds.
class Builder {
public:
  explicit Builder(Module &M) : M(M) {}

  /// Returns a fresh SSA name "%<Prefix><n>".
  std::string freshName(const std::string &Prefix = "v");

  /// Declares a module input tensor; returns its name.
  std::string declareInput(std::vector<int64_t> Shape,
                           ElementType Elem = ElementType::F32,
                           std::string Name = "");

  /// C[MxN] = A[MxK] * B[KxN]. Iterators (parallel, parallel, reduction).
  std::string matmul(const std::string &Lhs, const std::string &Rhs);

  /// NCHW 2-D convolution: input [N,C,H,W], kernel [F,C,KH,KW], unit
  /// dilation, stride \p Stride. Seven loops (n, f, oh, ow, c, kh, kw).
  std::string conv2d(const std::string &Input, const std::string &Kernel,
                     int64_t Stride = 1);

  /// NCHW max-pooling with window KH x KW and stride \p Stride. Six loops
  /// (n, c, oh, ow, kh, kw).
  std::string poolingMax(const std::string &Input, int64_t Kh, int64_t Kw,
                         int64_t Stride);

  /// Elementwise addition of two same-shaped tensors.
  std::string add(const std::string &Lhs, const std::string &Rhs);

  /// Elementwise max(x, 0).
  std::string relu(const std::string &Input);

  /// Elementwise 1 / (1 + exp(-x)).
  std::string sigmoid(const std::string &Input);

  /// Row-wise softmax of a rank-2 tensor (modelled as a single structured
  /// op with exp/add/div body, as the paper's softmax_2d generator does).
  std::string softmax2d(const std::string &Input);

  /// Fully general structured op. \p InputMaps and \p Inputs must align;
  /// the output shape is derived from \p OutputMap's ranges over
  /// \p Bounds.
  std::string generic(OpKind Kind, std::vector<int64_t> Bounds,
                      std::vector<IteratorKind> Iterators,
                      std::vector<std::string> Inputs,
                      std::vector<AffineMap> InputMaps, AffineMap OutputMap,
                      ArithCounts Arith, ElementType Elem = ElementType::F32);

private:
  /// Appends an op whose output shape is OutputMap's extent over Bounds.
  std::string appendOp(OpKind Kind, std::vector<int64_t> Bounds,
                       std::vector<IteratorKind> Iterators,
                       std::vector<OpOperand> Inputs, AffineMap OutputMap,
                       ArithCounts Arith, ElementType Elem);

  /// Builds a unary elementwise op over \p Input.
  std::string elementwiseUnary(OpKind Kind, const std::string &Input,
                               ArithCounts Arith);

  Module &M;
  unsigned NextId = 0;
};

} // namespace mlirrl

#endif // MLIRRL_IR_BUILDER_H
