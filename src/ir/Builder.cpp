//===- Builder.cpp --------------------------------------------------------===//

#include "ir/Builder.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace mlirrl;

std::string Builder::freshName(const std::string &Prefix) {
  std::string Name;
  do {
    Name = formatString("%%%s%u", Prefix.c_str(), NextId++);
  } while (M.hasValue(Name));
  return Name;
}

std::string Builder::declareInput(std::vector<int64_t> Shape,
                                  ElementType Elem, std::string Name) {
  if (Name.empty())
    Name = freshName("arg");
  M.addInput(Name, TensorType(std::move(Shape), Elem));
  return Name;
}

std::string Builder::appendOp(OpKind Kind, std::vector<int64_t> Bounds,
                              std::vector<IteratorKind> Iterators,
                              std::vector<OpOperand> Inputs,
                              AffineMap OutputMap, ArithCounts Arith,
                              ElementType Elem) {
  std::vector<int64_t> OutShape;
  OutShape.reserve(OutputMap.getNumResults());
  for (const AffineExpr &E : OutputMap.getResults())
    OutShape.push_back(E.maxOverBox(Bounds) + 1);

  std::string Result = freshName();
  LinalgOp Op(Result, Kind, std::move(Bounds), std::move(Iterators),
              std::move(Inputs), OutputMap, Arith);
  M.addOp(std::move(Op), TensorType(std::move(OutShape), Elem));
  return Result;
}

std::string Builder::matmul(const std::string &Lhs, const std::string &Rhs) {
  const TensorType &LhsTy = M.getValue(Lhs).Type;
  const TensorType &RhsTy = M.getValue(Rhs).Type;
  assert(LhsTy.getRank() == 2 && RhsTy.getRank() == 2 && "matmul needs 2-D");
  assert(LhsTy.getDimSize(1) == RhsTy.getDimSize(0) &&
         "matmul contraction dims must agree");
  int64_t MDim = LhsTy.getDimSize(0);
  int64_t NDim = RhsTy.getDimSize(1);
  int64_t KDim = LhsTy.getDimSize(1);

  ArithCounts Arith;
  Arith.Mul = 1;
  Arith.Add = 1;
  return appendOp(
      OpKind::Matmul, {MDim, NDim, KDim},
      {IteratorKind::Parallel, IteratorKind::Parallel, IteratorKind::Reduction},
      {OpOperand{Lhs, AffineMap::projection({0, 2}, 3)},
       OpOperand{Rhs, AffineMap::projection({2, 1}, 3)}},
      AffineMap::projection({0, 1}, 3), Arith, LhsTy.getElementType());
}

std::string Builder::conv2d(const std::string &Input,
                            const std::string &Kernel, int64_t Stride) {
  const TensorType &InTy = M.getValue(Input).Type;
  const TensorType &KerTy = M.getValue(Kernel).Type;
  assert(InTy.getRank() == 4 && KerTy.getRank() == 4 &&
         "conv2d needs NCHW input and FCHW kernel");
  assert(InTy.getDimSize(1) == KerTy.getDimSize(1) &&
         "conv2d channel dims must agree");
  int64_t N = InTy.getDimSize(0), C = InTy.getDimSize(1);
  int64_t H = InTy.getDimSize(2), W = InTy.getDimSize(3);
  int64_t F = KerTy.getDimSize(0);
  int64_t Kh = KerTy.getDimSize(2), Kw = KerTy.getDimSize(3);
  assert(H >= Kh && W >= Kw && "kernel larger than input");
  int64_t Oh = (H - Kh) / Stride + 1;
  int64_t Ow = (W - Kw) / Stride + 1;

  // Loops: (n, f, oh, ow, c, kh, kw).
  const unsigned NumLoops = 7;
  auto D = [&](unsigned I) { return AffineExpr::dim(I, NumLoops); };
  AffineMap InMap(NumLoops,
                  {D(0), D(4), D(2) * Stride + D(5), D(3) * Stride + D(6)});
  AffineMap KerMap = AffineMap::projection({1, 4, 5, 6}, NumLoops);
  AffineMap OutMap = AffineMap::projection({0, 1, 2, 3}, NumLoops);

  ArithCounts Arith;
  Arith.Mul = 1;
  Arith.Add = 1;
  return appendOp(OpKind::Conv2D, {N, F, Oh, Ow, C, Kh, Kw},
                  {IteratorKind::Parallel, IteratorKind::Parallel,
                   IteratorKind::Parallel, IteratorKind::Parallel,
                   IteratorKind::Reduction, IteratorKind::Reduction,
                   IteratorKind::Reduction},
                  {OpOperand{Input, InMap}, OpOperand{Kernel, KerMap}}, OutMap,
                  Arith, InTy.getElementType());
}

std::string Builder::poolingMax(const std::string &Input, int64_t Kh,
                                int64_t Kw, int64_t Stride) {
  const TensorType &InTy = M.getValue(Input).Type;
  assert(InTy.getRank() == 4 && "pooling needs NCHW input");
  int64_t N = InTy.getDimSize(0), C = InTy.getDimSize(1);
  int64_t H = InTy.getDimSize(2), W = InTy.getDimSize(3);
  assert(H >= Kh && W >= Kw && "window larger than input");
  int64_t Oh = (H - Kh) / Stride + 1;
  int64_t Ow = (W - Kw) / Stride + 1;

  // Loops: (n, c, oh, ow, kh, kw).
  const unsigned NumLoops = 6;
  auto D = [&](unsigned I) { return AffineExpr::dim(I, NumLoops); };
  AffineMap InMap(NumLoops,
                  {D(0), D(1), D(2) * Stride + D(4), D(3) * Stride + D(5)});
  AffineMap OutMap = AffineMap::projection({0, 1, 2, 3}, NumLoops);

  ArithCounts Arith;
  Arith.Max = 1;
  return appendOp(OpKind::PoolingMax, {N, C, Oh, Ow, Kh, Kw},
                  {IteratorKind::Parallel, IteratorKind::Parallel,
                   IteratorKind::Parallel, IteratorKind::Parallel,
                   IteratorKind::Reduction, IteratorKind::Reduction},
                  {OpOperand{Input, InMap}}, OutMap, Arith,
                  InTy.getElementType());
}

std::string Builder::add(const std::string &Lhs, const std::string &Rhs) {
  const TensorType &LhsTy = M.getValue(Lhs).Type;
  assert(LhsTy == M.getValue(Rhs).Type && "add operands must match");
  unsigned Rank = LhsTy.getRank();
  AffineMap Identity = AffineMap::identity(Rank);

  ArithCounts Arith;
  Arith.Add = 1;
  return appendOp(OpKind::Add, LhsTy.getShape(),
                  std::vector<IteratorKind>(Rank, IteratorKind::Parallel),
                  {OpOperand{Lhs, Identity}, OpOperand{Rhs, Identity}},
                  Identity, Arith, LhsTy.getElementType());
}

std::string Builder::elementwiseUnary(OpKind Kind, const std::string &Input,
                                      ArithCounts Arith) {
  const TensorType &InTy = M.getValue(Input).Type;
  unsigned Rank = InTy.getRank();
  AffineMap Identity = AffineMap::identity(Rank);
  return appendOp(Kind, InTy.getShape(),
                  std::vector<IteratorKind>(Rank, IteratorKind::Parallel),
                  {OpOperand{Input, Identity}}, Identity, Arith,
                  InTy.getElementType());
}

std::string Builder::relu(const std::string &Input) {
  ArithCounts Arith;
  Arith.Max = 1;
  return elementwiseUnary(OpKind::ReLU, Input, Arith);
}

std::string Builder::sigmoid(const std::string &Input) {
  ArithCounts Arith;
  Arith.Exp = 1;
  Arith.Add = 1;
  Arith.Div = 1;
  return elementwiseUnary(OpKind::Sigmoid, Input, Arith);
}

std::string Builder::softmax2d(const std::string &Input) {
  const TensorType &InTy = M.getValue(Input).Type;
  assert(InTy.getRank() == 2 && "softmax2d needs a rank-2 tensor");
  ArithCounts Arith;
  Arith.Exp = 1;
  Arith.Add = 1;
  Arith.Div = 1;
  return elementwiseUnary(OpKind::Softmax, Input, Arith);
}

std::string Builder::generic(OpKind Kind, std::vector<int64_t> Bounds,
                             std::vector<IteratorKind> Iterators,
                             std::vector<std::string> Inputs,
                             std::vector<AffineMap> InputMaps,
                             AffineMap OutputMap, ArithCounts Arith,
                             ElementType Elem) {
  assert(Inputs.size() == InputMaps.size() && "inputs / maps arity mismatch");
  std::vector<OpOperand> Operands;
  Operands.reserve(Inputs.size());
  for (size_t I = 0; I < Inputs.size(); ++I)
    Operands.push_back(OpOperand{Inputs[I], InputMaps[I]});
  return appendOp(Kind, std::move(Bounds), std::move(Iterators),
                  std::move(Operands), std::move(OutputMap), Arith, Elem);
}
