//===- Lexer.cpp ----------------------------------------------------------===//

#include "ir/Lexer.h"

#include "support/Format.h"

#include <cctype>

using namespace mlirrl;

static bool isWordChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.';
}

bool mlirrl::tokenize(const std::string &Source, std::vector<Token> &Tokens,
                      std::string &ErrorMessage, size_t MaxTokens) {
  Tokens.clear();
  unsigned Line = 1, Col = 1;
  size_t I = 0, N = Source.size();

  while (I < N) {
    if (MaxTokens != 0 && Tokens.size() >= MaxTokens) {
      ErrorMessage = formatString(
          "%u:%u: input exceeds the token cap (%zu tokens)", Line, Col,
          MaxTokens);
      return false;
    }
    char C = Source[I];
    // Whitespace and comments.
    if (C == '\n') {
      ++Line;
      Col = 1;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Col;
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }

    unsigned TokLine = Line, TokCol = Col;
    auto Emit = [&](TokenKind Kind, std::string Text) {
      Tokens.push_back(Token{Kind, std::move(Text), TokLine, TokCol});
    };

    if (C == '%') {
      size_t Start = I++;
      while (I < N && isWordChar(Source[I]))
        ++I;
      if (I == Start + 1) {
        ErrorMessage = formatString("%u:%u: expected name after '%%'", Line,
                                    Col);
        return false;
      }
      Emit(TokenKind::SsaId, Source.substr(Start, I - Start));
      Col += static_cast<unsigned>(I - Start);
      continue;
    }
    if (isWordChar(C)) {
      size_t Start = I;
      while (I < N && isWordChar(Source[I]))
        ++I;
      Emit(TokenKind::Word, Source.substr(Start, I - Start));
      Col += static_cast<unsigned>(I - Start);
      continue;
    }
    if (C == '-' && I + 1 < N && Source[I + 1] == '>') {
      Emit(TokenKind::Arrow, "->");
      I += 2;
      Col += 2;
      continue;
    }

    TokenKind Kind;
    switch (C) {
    case '{':
      Kind = TokenKind::LBrace;
      break;
    case '}':
      Kind = TokenKind::RBrace;
      break;
    case '(':
      Kind = TokenKind::LParen;
      break;
    case ')':
      Kind = TokenKind::RParen;
      break;
    case '[':
      Kind = TokenKind::LBracket;
      break;
    case ']':
      Kind = TokenKind::RBracket;
      break;
    case '<':
      Kind = TokenKind::Less;
      break;
    case '>':
      Kind = TokenKind::Greater;
      break;
    case ',':
      Kind = TokenKind::Comma;
      break;
    case ':':
      Kind = TokenKind::Colon;
      break;
    case '=':
      Kind = TokenKind::Equal;
      break;
    case '+':
      Kind = TokenKind::Plus;
      break;
    case '-':
      Kind = TokenKind::Minus;
      break;
    case '*':
      Kind = TokenKind::Star;
      break;
    case '@':
      Kind = TokenKind::At;
      break;
    default:
      ErrorMessage =
          formatString("%u:%u: unexpected character '%c'", Line, Col, C);
      return false;
    }
    Emit(Kind, std::string(1, C));
    ++I;
    ++Col;
  }
  Tokens.push_back(Token{TokenKind::Eof, "", Line, Col});
  return true;
}
