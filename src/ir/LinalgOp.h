//===- LinalgOp.h - Structured linear-algebra operations ---------*- C++-*-===//
///
/// \file
/// The central IR entity: a Linalg-style structured operation with an
/// explicit iteration space (loop bounds + iterator kinds), affine indexing
/// maps for each operand, and a summary of its scalar arithmetic body.
/// This mirrors MLIR's linalg.generic (Listing 1 of the paper) plus named
/// forms (matmul, conv_2d, pooling, add, relu, ...).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_LINALGOP_H
#define MLIRRL_IR_LINALGOP_H

#include "ir/AffineMap.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mlirrl {

/// Kinds of structured operations. The featurizer collapses these into the
/// paper's six one-hot categories (generic, matmul, conv, pooling, add,
/// other/unknown); keeping richer kinds here lets dataset generators and
/// baselines pattern-match precisely.
enum class OpKind {
  Generic,
  Matmul,
  Conv2D,
  PoolingMax,
  Add,
  ReLU,
  Sigmoid,
  Softmax,
  Unknown,
};

/// The textual mnemonic ("linalg.matmul", ...).
std::string getOpKindName(OpKind Kind);

/// Parses a mnemonic back to a kind. Returns false if unrecognized.
bool parseOpKindName(const std::string &Name, OpKind &Kind);

/// Loop iterator kinds, determining parallelization legality.
enum class IteratorKind { Parallel, Reduction };

std::string getIteratorKindName(IteratorKind Kind);

/// Per-point scalar arithmetic operation counts (Sec. IV-B "Operations
/// Count"). Max is tracked for pooling/relu bodies; the featurizer exposes
/// the five counts the paper lists.
struct ArithCounts {
  int64_t Add = 0;
  int64_t Sub = 0;
  int64_t Mul = 0;
  int64_t Div = 0;
  int64_t Exp = 0;
  int64_t Max = 0;

  /// Total scalar operations per iteration point.
  int64_t total() const { return Add + Sub + Mul + Div + Exp + Max; }

  bool operator==(const ArithCounts &Other) const = default;
};

/// One operand access: the SSA value name and the indexing map describing
/// how iteration points address it.
struct OpOperand {
  std::string Value;
  AffineMap Map;
};

/// A structured operation over tensors.
class LinalgOp {
public:
  LinalgOp() = default;
  LinalgOp(std::string Result, OpKind Kind, std::vector<int64_t> LoopBounds,
           std::vector<IteratorKind> Iterators, std::vector<OpOperand> Inputs,
           AffineMap OutputMap, ArithCounts Arith);

  const std::string &getResult() const { return Result; }
  OpKind getKind() const { return Kind; }

  unsigned getNumLoops() const { return LoopBounds.size(); }
  const std::vector<int64_t> &getLoopBounds() const { return LoopBounds; }
  int64_t getLoopBound(unsigned Loop) const;
  const std::vector<IteratorKind> &getIterators() const { return Iterators; }
  IteratorKind getIterator(unsigned Loop) const;
  bool isParallelLoop(unsigned Loop) const {
    return getIterator(Loop) == IteratorKind::Parallel;
  }
  unsigned getNumParallelLoops() const;
  unsigned getNumReductionLoops() const;

  const std::vector<OpOperand> &getInputs() const { return Inputs; }
  unsigned getNumInputs() const { return Inputs.size(); }
  const OpOperand &getInput(unsigned Idx) const;
  const AffineMap &getOutputMap() const { return OutputMap; }

  const ArithCounts &getArith() const { return Arith; }

  /// Total iteration points of the loop nest.
  int64_t getIterationCount() const;

  /// Total scalar floating-point operations executed by the nest.
  int64_t getFlops() const { return getIterationCount() * Arith.total(); }

  /// Index of the innermost loop (by convention, the last one).
  unsigned getInnermostLoop() const;

  /// Returns true if \p Value is read by this operation.
  bool readsValue(const std::string &Value) const;

private:
  std::string Result;
  OpKind Kind = OpKind::Generic;
  std::vector<int64_t> LoopBounds;
  std::vector<IteratorKind> Iterators;
  std::vector<OpOperand> Inputs;
  AffineMap OutputMap;
  ArithCounts Arith;
};

} // namespace mlirrl

#endif // MLIRRL_IR_LINALGOP_H
