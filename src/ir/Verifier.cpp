//===- Verifier.cpp -------------------------------------------------------===//

#include "ir/Verifier.h"

#include "support/Format.h"

using namespace mlirrl;

/// Checks that \p Map addresses \p Type in bounds over the iteration box
/// \p Bounds.
static bool verifyAccess(const std::string &OpName, const std::string &Value,
                         const AffineMap &Map, const TensorType &Type,
                         const std::vector<int64_t> &Bounds,
                         std::string &ErrorMessage) {
  if (Map.getNumDims() != Bounds.size()) {
    ErrorMessage = formatString(
        "%s: map for %s has %u dims but the op has %zu loops", OpName.c_str(),
        Value.c_str(), Map.getNumDims(), Bounds.size());
    return false;
  }
  if (Map.getNumResults() != Type.getRank()) {
    ErrorMessage = formatString(
        "%s: map for %s has %u results but the tensor has rank %u",
        OpName.c_str(), Value.c_str(), Map.getNumResults(), Type.getRank());
    return false;
  }
  for (unsigned R = 0; R < Map.getNumResults(); ++R) {
    const AffineExpr &E = Map.getResult(R);
    int64_t Lo = E.minOverBox(Bounds);
    int64_t Hi = E.maxOverBox(Bounds);
    if (Lo < 0 || Hi >= Type.getDimSize(R)) {
      ErrorMessage = formatString(
          "%s: access %s dim %u covers [%lld, %lld] outside [0, %lld)",
          OpName.c_str(), Value.c_str(), R, static_cast<long long>(Lo),
          static_cast<long long>(Hi),
          static_cast<long long>(Type.getDimSize(R)));
      return false;
    }
  }
  return true;
}

bool mlirrl::verifyOp(const Module &M, const LinalgOp &Op,
                      std::string &ErrorMessage) {
  const std::string &Name = Op.getResult();
  if (Op.getNumLoops() == 0) {
    ErrorMessage = Name + ": operation has no loops";
    return false;
  }
  if (Op.getLoopBounds().size() != Op.getIterators().size()) {
    ErrorMessage = Name + ": bounds / iterators arity mismatch";
    return false;
  }
  for (int64_t Bound : Op.getLoopBounds()) {
    if (Bound <= 0) {
      ErrorMessage = Name + ": loop bounds must be positive";
      return false;
    }
  }

  for (const OpOperand &In : Op.getInputs()) {
    if (!M.hasValue(In.Value)) {
      ErrorMessage = Name + ": use of undeclared value " + In.Value;
      return false;
    }
    if (!verifyAccess(Name, In.Value, In.Map, M.getValue(In.Value).Type,
                      Op.getLoopBounds(), ErrorMessage))
      return false;
  }

  if (!M.hasValue(Name)) {
    ErrorMessage = Name + ": result value not declared";
    return false;
  }
  if (!verifyAccess(Name, Name, Op.getOutputMap(), M.getValue(Name).Type,
                    Op.getLoopBounds(), ErrorMessage))
    return false;

  // Reduction iterators must not appear in the output map: iterations along
  // them accumulate into the same output element.
  for (unsigned Loop = 0; Loop < Op.getNumLoops(); ++Loop) {
    if (Op.getIterator(Loop) == IteratorKind::Reduction &&
        Op.getOutputMap().involvesDim(Loop)) {
      ErrorMessage = formatString(
          "%s: reduction iterator d%u appears in the output map",
          Name.c_str(), Loop);
      return false;
    }
  }
  return true;
}

bool mlirrl::verifyModule(const Module &M, std::string &ErrorMessage) {
  for (unsigned I = 0; I < M.getNumOps(); ++I) {
    const LinalgOp &Op = M.getOp(I);
    if (!verifyOp(M, Op, ErrorMessage))
      return false;
    // Operands must be defined before use (SSA dominance in a straight
    // line program).
    for (const OpOperand &In : Op.getInputs()) {
      int Def = M.getDefiningOp(In.Value);
      if (Def >= static_cast<int>(I)) {
        ErrorMessage = Op.getResult() + ": operand " + In.Value +
                       " defined after its use";
        return false;
      }
    }
  }
  return true;
}
