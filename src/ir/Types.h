//===- Types.h - Tensor and element types ------------------------*- C++-*-===//
///
/// \file
/// Element and ranked tensor types of the mini-Linalg IR.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_TYPES_H
#define MLIRRL_IR_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

namespace mlirrl {

/// Scalar element types supported by the IR.
enum class ElementType { F32, F64 };

/// Size of one element in bytes.
unsigned getElementByteSize(ElementType Type);

/// The textual spelling ("f32" / "f64").
std::string getElementTypeName(ElementType Type);

/// A statically-shaped ranked tensor.
class TensorType {
public:
  TensorType() = default;
  TensorType(std::vector<int64_t> Shape, ElementType Elem);

  const std::vector<int64_t> &getShape() const { return Shape; }
  unsigned getRank() const { return Shape.size(); }
  int64_t getDimSize(unsigned Dim) const;
  ElementType getElementType() const { return Elem; }

  /// Total number of elements.
  int64_t getNumElements() const;

  /// Total footprint in bytes.
  int64_t getByteSize() const;

  bool operator==(const TensorType &Other) const {
    return Shape == Other.Shape && Elem == Other.Elem;
  }

  /// Prints in MLIR syntax: "tensor<256x1024xf32>".
  std::string toString() const;

private:
  std::vector<int64_t> Shape;
  ElementType Elem = ElementType::F32;
};

} // namespace mlirrl

#endif // MLIRRL_IR_TYPES_H
