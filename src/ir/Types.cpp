//===- Types.cpp ----------------------------------------------------------===//

#include "ir/Types.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace mlirrl;

unsigned mlirrl::getElementByteSize(ElementType Type) {
  switch (Type) {
  case ElementType::F32:
    return 4;
  case ElementType::F64:
    return 8;
  }
  MLIRRL_UNREACHABLE("unknown element type");
}

std::string mlirrl::getElementTypeName(ElementType Type) {
  switch (Type) {
  case ElementType::F32:
    return "f32";
  case ElementType::F64:
    return "f64";
  }
  MLIRRL_UNREACHABLE("unknown element type");
}

TensorType::TensorType(std::vector<int64_t> Shape, ElementType Elem)
    : Shape(std::move(Shape)), Elem(Elem) {
#ifndef NDEBUG
  for (int64_t Dim : this->Shape)
    assert(Dim > 0 && "tensor dimensions must be positive");
#endif
}

int64_t TensorType::getDimSize(unsigned Dim) const {
  assert(Dim < Shape.size() && "dim index out of range");
  return Shape[Dim];
}

int64_t TensorType::getNumElements() const {
  int64_t Count = 1;
  for (int64_t Dim : Shape)
    Count *= Dim;
  return Count;
}

int64_t TensorType::getByteSize() const {
  return getNumElements() * getElementByteSize(Elem);
}

std::string TensorType::toString() const {
  std::string Out = "tensor<";
  for (int64_t Dim : Shape)
    Out += formatString("%lldx", static_cast<long long>(Dim));
  Out += getElementTypeName(Elem) + ">";
  return Out;
}
