//===- AffineMap.h - Multi-result affine maps --------------------*- C++-*-===//
///
/// \file
/// Indexing maps of Linalg operations: a list of AffineExpr results over a
/// shared iteration space, e.g. (d0, d1, d2) -> (d0, d2). The featurizer
/// flattens these into the D x N polyhedral access matrices of the paper
/// (Sec. IV-B, Fig. 2).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_AFFINEMAP_H
#define MLIRRL_IR_AFFINEMAP_H

#include "ir/AffineExpr.h"

#include <string>
#include <vector>

namespace mlirrl {

/// A map from an N-dimensional iteration space to tensor indices.
class AffineMap {
public:
  AffineMap() = default;
  AffineMap(unsigned NumDims, std::vector<AffineExpr> Results);

  /// The identity map (d0, ..., dN-1) -> (d0, ..., dN-1).
  static AffineMap identity(unsigned NumDims);

  /// A projection keeping only \p Dims, e.g. {0, 2} over 3 dims gives
  /// (d0, d1, d2) -> (d0, d2).
  static AffineMap projection(const std::vector<unsigned> &Dims,
                              unsigned NumDims);

  unsigned getNumDims() const { return NumDims; }
  unsigned getNumResults() const { return Results.size(); }
  const AffineExpr &getResult(unsigned Idx) const;
  const std::vector<AffineExpr> &getResults() const { return Results; }

  /// Evaluates all results at iteration point \p Point.
  std::vector<int64_t> evaluate(const std::vector<int64_t> &Point) const;

  /// Returns true if any result involves iterator \p Dim.
  bool involvesDim(unsigned Dim) const;

  /// Rebuilds the map after permuting the iteration space; new iterator j
  /// is old iterator Perm[j].
  AffineMap permuteDims(const std::vector<unsigned> &Perm) const;

  /// The access matrix of the paper (Fig. 2): one row per tensor
  /// dimension, one column per iterator, entries are coefficients. The
  /// constant column is appended last, giving D x (N + 1).
  std::vector<std::vector<int64_t>> toAccessMatrix() const;

  /// Returns true if this map is a (partial) permutation: every result is
  /// a distinct plain iterator.
  bool isProjectedPermutation() const;

  bool operator==(const AffineMap &Other) const;

  /// Prints in MLIR syntax: "(d0, d1, d2) -> (d0, d2)".
  std::string toString() const;

private:
  unsigned NumDims = 0;
  std::vector<AffineExpr> Results;
};

} // namespace mlirrl

#endif // MLIRRL_IR_AFFINEMAP_H
