//===- Lexer.h - Tokenizer for the textual IR --------------------*- C++-*-===//
///
/// \file
/// Tokenizer for the mini-Linalg textual format. Identifiers, op
/// mnemonics (with dots) and bare integers all lex as Word tokens; the
/// parser interprets them, which keeps shaped-type literals like
/// "256x1024xf32" trivial to handle.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_LEXER_H
#define MLIRRL_IR_LEXER_H

#include <string>
#include <vector>

namespace mlirrl {

/// Token kinds of the textual IR.
enum class TokenKind {
  Word,     // module, linalg.matmul, parallel, d0, 256, 256x512xf32
  SsaId,    // %name
  LBrace,   // {
  RBrace,   // }
  LParen,   // (
  RParen,   // )
  LBracket, // [
  RBracket, // ]
  Less,     // <
  Greater,  // >
  Comma,    // ,
  Colon,    // :
  Equal,    // =
  Arrow,    // ->
  Plus,     // +
  Minus,    // -
  Star,     // *
  At,       // @
  Eof,
};

/// A token with source position (1-based line/column) for diagnostics.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  unsigned Line = 1;
  unsigned Col = 1;
};

/// Tokenizes \p Source. On bad characters, emits an Eof token after an
/// error marker token is reported through \p ErrorMessage and returns
/// false. \p MaxTokens caps the token stream for untrusted input (the
/// import gate's first line of defense against pathological sources);
/// 0 means no cap.
bool tokenize(const std::string &Source, std::vector<Token> &Tokens,
              std::string &ErrorMessage, size_t MaxTokens = 0);

} // namespace mlirrl

#endif // MLIRRL_IR_LEXER_H
