//===- Parser.h - Textual IR parsing -----------------------------*- C++-*-===//
///
/// \file
/// Recursive-descent parser for the mini-Linalg textual format:
///
/// \code
///   module @name {
///     %A = tensor<256x1024xf32>
///     %v0 = linalg.matmul {bounds = [256, 512, 1024],
///       iterators = [parallel, parallel, reduction],
///       maps = [(d0, d1, d2) -> (d0, d2), (d0, d1, d2) -> (d2, d1),
///               (d0, d1, d2) -> (d0, d1)],
///       arith = {mul: 1, add: 1}} ins(%A, %B) : tensor<256x512xf32>
///   }
/// \endcode
///
/// Parse errors carry "line:col: message" diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_PARSER_H
#define MLIRRL_IR_PARSER_H

#include "ir/Module.h"
#include "support/Error.h"

#include <string>

namespace mlirrl {

/// Parses a module from \p Source.
Expected<Module> parseModule(const std::string &Source);

/// Resource caps for externally-authored IR. Generated modules are never
/// subject to them; the import gate applies them before untrusted text
/// can reach the environment, so a pathological source is rejected with
/// a diagnostic instead of exhausting memory or overflowing the cost
/// model's integer arithmetic.
struct ImportLimits {
  /// Raw source size cap (rejected before lexing).
  size_t MaxSourceBytes = 1u << 20;
  /// Token-stream cap (enforced inside the lexer).
  size_t MaxTokens = 1u << 17;
  /// Maximum operations per module.
  unsigned MaxOps = 64;
  /// Maximum declared values (inputs + op results).
  unsigned MaxValues = 256;
  /// Maximum loop dimensions per op and maximum tensor rank.
  unsigned MaxLoops = 16;
  /// Maximum single loop bound / tensor extent.
  int64_t MaxDimSize = int64_t(1) << 24;
  /// Maximum product of one op's loop bounds (keeps flop counts and
  /// iteration-space arithmetic far from int64 overflow).
  int64_t MaxIterationSpace = int64_t(1) << 42;
  /// Maximum terms in one affine expression (the parser's loop-depth
  /// guard for untrusted maps).
  unsigned MaxAffineTerms = 64;
};

/// Like parseModule, but enforces \p Limits while parsing (op count,
/// value count, loop/rank arity, dimension sizes, affine-term counts).
Expected<Module> parseModuleWithLimits(const std::string &Source,
                                       const ImportLimits &Limits);

/// Post-parse sanitization: re-checks \p M against \p Limits, including
/// the per-op iteration-space product. Works on any module, parsed or
/// built, so tests can probe the gate directly.
bool sanitizeModule(const Module &M, const ImportLimits &Limits,
                    std::string &ErrorMessage);

/// The untrusted-input entry point: size caps -> lexer -> parser (with
/// limits) -> verifier -> sanitization. Every rejection surfaces as an
/// Expected error (and bumps the robustness.import_rejected counter);
/// a returned module is safe to hand to the environment.
Expected<Module> importModule(const std::string &Source,
                              const ImportLimits &Limits = ImportLimits());

} // namespace mlirrl

#endif // MLIRRL_IR_PARSER_H
