//===- Parser.h - Textual IR parsing -----------------------------*- C++-*-===//
///
/// \file
/// Recursive-descent parser for the mini-Linalg textual format:
///
/// \code
///   module @name {
///     %A = tensor<256x1024xf32>
///     %v0 = linalg.matmul {bounds = [256, 512, 1024],
///       iterators = [parallel, parallel, reduction],
///       maps = [(d0, d1, d2) -> (d0, d2), (d0, d1, d2) -> (d2, d1),
///               (d0, d1, d2) -> (d0, d1)],
///       arith = {mul: 1, add: 1}} ins(%A, %B) : tensor<256x512xf32>
///   }
/// \endcode
///
/// Parse errors carry "line:col: message" diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_PARSER_H
#define MLIRRL_IR_PARSER_H

#include "ir/Module.h"
#include "support/Error.h"

#include <string>

namespace mlirrl {

/// Parses a module from \p Source.
Expected<Module> parseModule(const std::string &Source);

} // namespace mlirrl

#endif // MLIRRL_IR_PARSER_H
