//===- AffineExpr.h - Linear affine expressions ------------------*- C++-*-===//
///
/// \file
/// Linear affine expressions over loop iterators, the building block of
/// Linalg indexing maps. An expression is sum_i Coeff_i * d_i + Constant,
/// which covers everything the paper's access matrices represent (Fig. 2:
/// array[d0, d0 + 2*d1 - 3*d2, 1 - d1]).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_AFFINEEXPR_H
#define MLIRRL_IR_AFFINEEXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace mlirrl {

/// A linear expression over \c getNumDims() loop iterators.
class AffineExpr {
public:
  AffineExpr() = default;

  /// Creates the zero expression over \p NumDims iterators.
  explicit AffineExpr(unsigned NumDims)
      : Coeffs(NumDims, 0), ConstantTerm(0) {}

  /// Creates the expression \p Constant over \p NumDims iterators.
  static AffineExpr constant(int64_t Constant, unsigned NumDims);

  /// Creates the expression d_{Dim} over \p NumDims iterators.
  static AffineExpr dim(unsigned Dim, unsigned NumDims);

  /// Creates Coeffs . d + Constant.
  static AffineExpr fromCoeffs(std::vector<int64_t> Coeffs,
                               int64_t Constant = 0);

  unsigned getNumDims() const { return Coeffs.size(); }
  int64_t getCoeff(unsigned Dim) const;
  void setCoeff(unsigned Dim, int64_t Value);
  int64_t getConstant() const { return ConstantTerm; }
  void setConstant(int64_t Value) { ConstantTerm = Value; }
  const std::vector<int64_t> &getCoeffs() const { return Coeffs; }

  /// Evaluates the expression at iteration point \p Point.
  int64_t evaluate(const std::vector<int64_t> &Point) const;

  /// Returns true if the coefficient of \p Dim is non-zero.
  bool involvesDim(unsigned Dim) const;

  /// If the expression is exactly d_i (coefficient one, no constant, all
  /// other coefficients zero), returns i; otherwise returns -1.
  int getSingleDim() const;

  /// Returns true if every coefficient is zero (a pure constant).
  bool isConstantExpr() const;

  /// Minimum / maximum value over the box [0, Bounds_i - 1]. Linear
  /// expressions attain extrema at box corners, so this is exact.
  int64_t minOverBox(const std::vector<int64_t> &Bounds) const;
  int64_t maxOverBox(const std::vector<int64_t> &Bounds) const;

  /// Rebuilds the expression after a permutation of the iteration space:
  /// new iterator j corresponds to old iterator Perm[j].
  AffineExpr permuteDims(const std::vector<unsigned> &Perm) const;

  AffineExpr operator+(const AffineExpr &Other) const;
  AffineExpr operator-(const AffineExpr &Other) const;
  AffineExpr operator*(int64_t Scale) const;
  bool operator==(const AffineExpr &Other) const;

  /// Prints in MLIR-ish syntax, e.g. "d0 * 2 + d5 - 3".
  std::string toString() const;

private:
  std::vector<int64_t> Coeffs;
  int64_t ConstantTerm = 0;
};

} // namespace mlirrl

#endif // MLIRRL_IR_AFFINEEXPR_H
