//===- Module.cpp ---------------------------------------------------------===//

#include "ir/Module.h"

#include "support/Error.h"

#include <cassert>

using namespace mlirrl;

void Module::addInput(const std::string &ValueName, TensorType Type) {
  if (Values.count(ValueName))
    reportFatalError("value redefinition: " + ValueName);
  Values[ValueName] = ValueInfo{ValueName, std::move(Type), -1};
  ValueOrder.push_back(ValueName);
}

void Module::addOp(LinalgOp Op, TensorType ResultType) {
  for (const OpOperand &In : Op.getInputs())
    if (!Values.count(In.Value))
      reportFatalError("use of undeclared value: " + In.Value);
  const std::string &Result = Op.getResult();
  if (Values.count(Result))
    reportFatalError("value redefinition: " + Result);
  Values[Result] =
      ValueInfo{Result, std::move(ResultType), static_cast<int>(Ops.size())};
  ValueOrder.push_back(Result);
  Ops.push_back(std::move(Op));
}

const LinalgOp &Module::getOp(unsigned Idx) const {
  assert(Idx < Ops.size() && "op index out of range");
  return Ops[Idx];
}

LinalgOp &Module::getOp(unsigned Idx) {
  assert(Idx < Ops.size() && "op index out of range");
  return Ops[Idx];
}

void Module::replaceOp(unsigned Idx, LinalgOp Op) {
  assert(Idx < Ops.size() && "op index out of range");
  assert(Op.getResult() == Ops[Idx].getResult() &&
         "replaceOp must preserve the result name");
  Ops[Idx] = std::move(Op);
}

bool Module::hasValue(const std::string &ValueName) const {
  return Values.count(ValueName) != 0;
}

const ValueInfo &Module::getValue(const std::string &ValueName) const {
  auto It = Values.find(ValueName);
  if (It == Values.end())
    reportFatalError("unknown value: " + ValueName);
  return It->second;
}

int Module::getDefiningOp(const std::string &ValueName) const {
  return getValue(ValueName).DefiningOp;
}

std::vector<unsigned> Module::getProducers(unsigned Consumer) const {
  assert(Consumer < Ops.size() && "op index out of range");
  std::vector<unsigned> Producers;
  for (const OpOperand &In : Ops[Consumer].getInputs()) {
    int Def = getDefiningOp(In.Value);
    if (Def >= 0)
      Producers.push_back(static_cast<unsigned>(Def));
  }
  return Producers;
}

int Module::getLastProducer(unsigned Consumer) const {
  int Last = -1;
  for (unsigned P : getProducers(Consumer))
    Last = std::max(Last, static_cast<int>(P));
  return Last;
}

std::vector<unsigned> Module::getConsumers(unsigned Producer) const {
  assert(Producer < Ops.size() && "op index out of range");
  const std::string &Result = Ops[Producer].getResult();
  std::vector<unsigned> Consumers;
  for (unsigned I = 0; I < Ops.size(); ++I)
    if (I != Producer && Ops[I].readsValue(Result))
      Consumers.push_back(I);
  return Consumers;
}

bool Module::isModuleOutput(unsigned Idx) const {
  return getConsumers(Idx).empty();
}

int64_t Module::getTotalFlops() const {
  int64_t Total = 0;
  for (const LinalgOp &Op : Ops)
    Total += Op.getFlops();
  return Total;
}
