//===- Verifier.h - Structural IR validation ---------------------*- C++-*-===//
///
/// \file
/// Structural validation of modules: arity agreement between bounds,
/// iterators and maps; in-bounds accesses over the whole iteration box;
/// and the Linalg rule that output maps must not involve reduction
/// iterators. The environment assumes only verified modules.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_IR_VERIFIER_H
#define MLIRRL_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>

namespace mlirrl {

/// Verifies \p M; on failure, fills \p ErrorMessage and returns false.
bool verifyModule(const Module &M, std::string &ErrorMessage);

/// Verifies one op against the types in \p M.
bool verifyOp(const Module &M, const LinalgOp &Op, std::string &ErrorMessage);

} // namespace mlirrl

#endif // MLIRRL_IR_VERIFIER_H
