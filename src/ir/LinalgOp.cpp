//===- LinalgOp.cpp -------------------------------------------------------===//

#include "ir/LinalgOp.h"

#include "support/Error.h"

#include <cassert>

using namespace mlirrl;

std::string mlirrl::getOpKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::Generic:
    return "linalg.generic";
  case OpKind::Matmul:
    return "linalg.matmul";
  case OpKind::Conv2D:
    return "linalg.conv_2d";
  case OpKind::PoolingMax:
    return "linalg.pooling_max";
  case OpKind::Add:
    return "linalg.add";
  case OpKind::ReLU:
    return "linalg.relu";
  case OpKind::Sigmoid:
    return "linalg.sigmoid";
  case OpKind::Softmax:
    return "linalg.softmax";
  case OpKind::Unknown:
    return "linalg.unknown";
  }
  MLIRRL_UNREACHABLE("unknown op kind");
}

bool mlirrl::parseOpKindName(const std::string &Name, OpKind &Kind) {
  static const std::pair<const char *, OpKind> Table[] = {
      {"linalg.generic", OpKind::Generic},
      {"linalg.matmul", OpKind::Matmul},
      {"linalg.conv_2d", OpKind::Conv2D},
      {"linalg.pooling_max", OpKind::PoolingMax},
      {"linalg.add", OpKind::Add},
      {"linalg.relu", OpKind::ReLU},
      {"linalg.sigmoid", OpKind::Sigmoid},
      {"linalg.softmax", OpKind::Softmax},
      {"linalg.unknown", OpKind::Unknown},
  };
  for (const auto &[Spelling, K] : Table) {
    if (Name == Spelling) {
      Kind = K;
      return true;
    }
  }
  return false;
}

std::string mlirrl::getIteratorKindName(IteratorKind Kind) {
  return Kind == IteratorKind::Parallel ? "parallel" : "reduction";
}

LinalgOp::LinalgOp(std::string Result, OpKind Kind,
                   std::vector<int64_t> LoopBounds,
                   std::vector<IteratorKind> Iterators,
                   std::vector<OpOperand> Inputs, AffineMap OutputMap,
                   ArithCounts Arith)
    : Result(std::move(Result)), Kind(Kind), LoopBounds(std::move(LoopBounds)),
      Iterators(std::move(Iterators)), Inputs(std::move(Inputs)),
      OutputMap(std::move(OutputMap)), Arith(Arith) {
  assert(this->LoopBounds.size() == this->Iterators.size() &&
         "bounds / iterator arity mismatch");
}

int64_t LinalgOp::getLoopBound(unsigned Loop) const {
  assert(Loop < LoopBounds.size() && "loop index out of range");
  return LoopBounds[Loop];
}

IteratorKind LinalgOp::getIterator(unsigned Loop) const {
  assert(Loop < Iterators.size() && "loop index out of range");
  return Iterators[Loop];
}

unsigned LinalgOp::getNumParallelLoops() const {
  unsigned Count = 0;
  for (IteratorKind K : Iterators)
    if (K == IteratorKind::Parallel)
      ++Count;
  return Count;
}

unsigned LinalgOp::getNumReductionLoops() const {
  return getNumLoops() - getNumParallelLoops();
}

const OpOperand &LinalgOp::getInput(unsigned Idx) const {
  assert(Idx < Inputs.size() && "input index out of range");
  return Inputs[Idx];
}

int64_t LinalgOp::getIterationCount() const {
  int64_t Count = 1;
  for (int64_t Bound : LoopBounds)
    Count *= Bound;
  return Count;
}

unsigned LinalgOp::getInnermostLoop() const {
  assert(!LoopBounds.empty() && "op has no loops");
  return getNumLoops() - 1;
}

bool LinalgOp::readsValue(const std::string &Value) const {
  for (const OpOperand &In : Inputs)
    if (In.Value == Value)
      return true;
  return false;
}
