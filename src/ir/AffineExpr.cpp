//===- AffineExpr.cpp -----------------------------------------------------===//

#include "ir/AffineExpr.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace mlirrl;

AffineExpr AffineExpr::constant(int64_t Constant, unsigned NumDims) {
  AffineExpr E(NumDims);
  E.ConstantTerm = Constant;
  return E;
}

AffineExpr AffineExpr::dim(unsigned Dim, unsigned NumDims) {
  assert(Dim < NumDims && "dim index out of range");
  AffineExpr E(NumDims);
  E.Coeffs[Dim] = 1;
  return E;
}

AffineExpr AffineExpr::fromCoeffs(std::vector<int64_t> Coeffs,
                                  int64_t Constant) {
  AffineExpr E;
  E.Coeffs = std::move(Coeffs);
  E.ConstantTerm = Constant;
  return E;
}

int64_t AffineExpr::getCoeff(unsigned Dim) const {
  assert(Dim < Coeffs.size() && "dim index out of range");
  return Coeffs[Dim];
}

void AffineExpr::setCoeff(unsigned Dim, int64_t Value) {
  assert(Dim < Coeffs.size() && "dim index out of range");
  Coeffs[Dim] = Value;
}

int64_t AffineExpr::evaluate(const std::vector<int64_t> &Point) const {
  assert(Point.size() == Coeffs.size() && "point arity mismatch");
  int64_t Value = ConstantTerm;
  for (unsigned I = 0; I < Coeffs.size(); ++I)
    Value += Coeffs[I] * Point[I];
  return Value;
}

bool AffineExpr::involvesDim(unsigned Dim) const {
  return Dim < Coeffs.size() && Coeffs[Dim] != 0;
}

int AffineExpr::getSingleDim() const {
  if (ConstantTerm != 0)
    return -1;
  int Found = -1;
  for (unsigned I = 0; I < Coeffs.size(); ++I) {
    if (Coeffs[I] == 0)
      continue;
    if (Coeffs[I] != 1 || Found != -1)
      return -1;
    Found = static_cast<int>(I);
  }
  return Found;
}

bool AffineExpr::isConstantExpr() const {
  for (int64_t C : Coeffs)
    if (C != 0)
      return false;
  return true;
}

int64_t AffineExpr::minOverBox(const std::vector<int64_t> &Bounds) const {
  assert(Bounds.size() == Coeffs.size() && "bounds arity mismatch");
  int64_t Value = ConstantTerm;
  for (unsigned I = 0; I < Coeffs.size(); ++I)
    if (Coeffs[I] < 0)
      Value += Coeffs[I] * (Bounds[I] - 1);
  return Value;
}

int64_t AffineExpr::maxOverBox(const std::vector<int64_t> &Bounds) const {
  assert(Bounds.size() == Coeffs.size() && "bounds arity mismatch");
  int64_t Value = ConstantTerm;
  for (unsigned I = 0; I < Coeffs.size(); ++I)
    if (Coeffs[I] > 0)
      Value += Coeffs[I] * (Bounds[I] - 1);
  return Value;
}

AffineExpr AffineExpr::permuteDims(const std::vector<unsigned> &Perm) const {
  assert(Perm.size() == Coeffs.size() && "permutation arity mismatch");
  AffineExpr Result(getNumDims());
  Result.ConstantTerm = ConstantTerm;
  for (unsigned NewDim = 0; NewDim < Perm.size(); ++NewDim) {
    assert(Perm[NewDim] < Coeffs.size() && "permutation entry out of range");
    Result.Coeffs[NewDim] = Coeffs[Perm[NewDim]];
  }
  return Result;
}

AffineExpr AffineExpr::operator+(const AffineExpr &Other) const {
  assert(getNumDims() == Other.getNumDims() && "dim arity mismatch");
  AffineExpr Result = *this;
  for (unsigned I = 0; I < Coeffs.size(); ++I)
    Result.Coeffs[I] += Other.Coeffs[I];
  Result.ConstantTerm += Other.ConstantTerm;
  return Result;
}

AffineExpr AffineExpr::operator-(const AffineExpr &Other) const {
  return *this + (Other * -1);
}

AffineExpr AffineExpr::operator*(int64_t Scale) const {
  AffineExpr Result = *this;
  for (int64_t &C : Result.Coeffs)
    C *= Scale;
  Result.ConstantTerm *= Scale;
  return Result;
}

bool AffineExpr::operator==(const AffineExpr &Other) const {
  return Coeffs == Other.Coeffs && ConstantTerm == Other.ConstantTerm;
}

std::string AffineExpr::toString() const {
  std::string Out;
  auto AppendTerm = [&](int64_t Coeff, const std::string &Symbol) {
    if (Coeff == 0)
      return;
    if (Out.empty()) {
      if (Coeff == -1 && !Symbol.empty())
        Out += "-";
      else if (Coeff != 1 || Symbol.empty())
        Out += formatString("%lld", static_cast<long long>(Coeff)) +
               (Symbol.empty() ? "" : " * ");
    } else {
      Out += Coeff < 0 ? " - " : " + ";
      int64_t Abs = Coeff < 0 ? -Coeff : Coeff;
      if (Abs != 1 || Symbol.empty())
        Out += formatString("%lld", static_cast<long long>(Abs)) +
               (Symbol.empty() ? "" : " * ");
    }
    Out += Symbol;
  };
  for (unsigned I = 0; I < Coeffs.size(); ++I)
    AppendTerm(Coeffs[I], formatString("d%u", I));
  if (ConstantTerm != 0 || Out.empty()) {
    if (Out.empty())
      Out = formatString("%lld", static_cast<long long>(ConstantTerm));
    else {
      Out += ConstantTerm < 0 ? " - " : " + ";
      int64_t Abs = ConstantTerm < 0 ? -ConstantTerm : ConstantTerm;
      Out += formatString("%lld", static_cast<long long>(Abs));
    }
  }
  return Out;
}
