//===- Format.h - printf-style string formatting ----------------*- C++-*-===//
///
/// \file
/// Small string-formatting helpers. Library code builds diagnostics and
/// printed IR with these instead of iostreams.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_FORMAT_H
#define MLIRRL_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>
#include <vector>

namespace mlirrl {

/// Returns a std::string produced by printf-style formatting.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Returns true if \p Str starts with \p Prefix.
bool startsWith(const std::string &Str, const std::string &Prefix);

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_FORMAT_H
