//===- Stats.cpp ----------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace mlirrl;

double mlirrl::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double mlirrl::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  size_t Mid = Values.size() / 2;
  std::nth_element(Values.begin(), Values.begin() + Mid, Values.end());
  double Upper = Values[Mid];
  if (Values.size() % 2 == 1)
    return Upper;
  double Lower = *std::max_element(Values.begin(), Values.begin() + Mid);
  return 0.5 * (Lower + Upper);
}

double mlirrl::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double mlirrl::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Acc = 0.0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size() - 1));
}

double mlirrl::minOf(const std::vector<double> &Values) {
  assert(!Values.empty() && "minOf on empty vector");
  return *std::min_element(Values.begin(), Values.end());
}

double mlirrl::maxOf(const std::vector<double> &Values) {
  assert(!Values.empty() && "maxOf on empty vector");
  return *std::max_element(Values.begin(), Values.end());
}
