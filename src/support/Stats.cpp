//===- Stats.cpp ----------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace mlirrl;

// ---------------------------------------------------------------------------
// CacheStatsRegistry
// ---------------------------------------------------------------------------

CacheStatsRegistry &CacheStatsRegistry::instance() {
  // Leaked singleton: enrolled caches may live in static-duration
  // objects whose destruction order is unknowable.
  static CacheStatsRegistry *Registry = new CacheStatsRegistry();
  return *Registry;
}

CacheStatsRegistry::Enrollment::Enrollment(const char *Category,
                                           HitMissCounters *Counters,
                                           ContentionCounters *Contention) {
  CacheStatsRegistry &R = instance();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  Id = R.NextId++;
  R.EnrolledCounters.push_back({Id, Category, Counters, Contention});
}

CacheStatsRegistry::Enrollment::~Enrollment() {
  if (Id == 0)
    return;
  CacheStatsRegistry &R = instance();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (size_t I = 0; I < R.EnrolledCounters.size(); ++I) {
    if (R.EnrolledCounters[I].Id == Id) {
      R.EnrolledCounters.erase(R.EnrolledCounters.begin() +
                               static_cast<ptrdiff_t>(I));
      return;
    }
  }
}

HitMissCounters &CacheStatsRegistry::named(const char *Category) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, Counters] : NamedCounters)
    if (Name == Category)
      return *Counters;
  // Leaked on purpose: named() hands out stable references that may be
  // cached by callers for the process lifetime.
  NamedCounters.emplace_back(Category, new HitMissCounters());
  return *NamedCounters.back().second;
}

std::vector<CacheStatsRegistry::CategoryStats>
CacheStatsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<CategoryStats> Result;
  auto Fold = [&](const std::string &Category, const HitMissCounters &C,
                  const ContentionCounters *L) {
    CategoryStats *Slot = nullptr;
    for (CategoryStats &S : Result)
      if (S.Category == Category)
        Slot = &S;
    if (!Slot) {
      Result.push_back({Category});
      Slot = &Result.back();
    }
    Slot->Hits += C.Hits.load(std::memory_order_relaxed);
    Slot->Misses += C.Misses.load(std::memory_order_relaxed);
    Slot->Duplicates += C.Duplicates.load(std::memory_order_relaxed);
    if (L) {
      Slot->LockAcquisitions +=
          L->Acquisitions.load(std::memory_order_relaxed);
      Slot->LockContended += L->Contended.load(std::memory_order_relaxed);
    }
  };
  for (const Enrolled &E : EnrolledCounters)
    Fold(E.Category, *E.Counters, E.Contention);
  for (const auto &[Name, Counters] : NamedCounters)
    Fold(Name, *Counters, nullptr);
  std::sort(Result.begin(), Result.end(),
            [](const CategoryStats &A, const CategoryStats &B) {
              return A.Category < B.Category;
            });
  return Result;
}

CacheStatsRegistry::CategoryStats
CacheStatsRegistry::categoryStats(const char *Category) const {
  for (const CategoryStats &S : snapshot())
    if (S.Category == Category)
      return S;
  return {Category, 0, 0};
}

void CacheStatsRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const Enrolled &E : EnrolledCounters) {
    E.Counters->reset();
    if (E.Contention)
      E.Contention->reset();
  }
  for (const auto &[Name, Counters] : NamedCounters)
    Counters->reset();
}

const char *mlirrl::getRobustnessEventName(RobustnessEvent Event) {
  switch (Event) {
  case RobustnessEvent::StepAfterDone:
    return "robustness.step_after_done";
  case RobustnessEvent::PostTransformCheckFailed:
    return "robustness.post_transform_check_failed";
  case RobustnessEvent::VecEnvEmptyBatch:
    return "robustness.vecenv_empty_batch";
  case RobustnessEvent::VecEnvActionArityMismatch:
    return "robustness.vecenv_action_arity_mismatch";
  case RobustnessEvent::ImportRejected:
    return "robustness.import_rejected";
  case RobustnessEvent::RolloutStepCapHit:
    return "robustness.rollout_step_cap";
  case RobustnessEvent::ServerQueueFull:
    return "robustness.server_queue_full";
  case RobustnessEvent::ServerShutdown:
    return "robustness.server_shutdown";
  }
  return "robustness.unknown";
}

HitMissCounters &mlirrl::robustnessCounter(RobustnessEvent Event) {
  return CacheStatsRegistry::instance().named(getRobustnessEventName(Event));
}

void mlirrl::recordRobustnessEvent(RobustnessEvent Event) {
  robustnessCounter(Event).recordMiss();
}

double mlirrl::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double mlirrl::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  size_t Mid = Values.size() / 2;
  std::nth_element(Values.begin(), Values.begin() + Mid, Values.end());
  double Upper = Values[Mid];
  if (Values.size() % 2 == 1)
    return Upper;
  double Lower = *std::max_element(Values.begin(), Values.begin() + Mid);
  return 0.5 * (Lower + Upper);
}

double mlirrl::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double mlirrl::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Acc = 0.0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size() - 1));
}

double mlirrl::minOf(const std::vector<double> &Values) {
  assert(!Values.empty() && "minOf on empty vector");
  return *std::min_element(Values.begin(), Values.end());
}

double mlirrl::maxOf(const std::vector<double> &Values) {
  assert(!Values.empty() && "maxOf on empty vector");
  return *std::max_element(Values.begin(), Values.end());
}
