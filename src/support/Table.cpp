//===- Table.cpp ----------------------------------------------------------===//

#include "support/Table.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cstdio>

using namespace mlirrl;

TextTable::TextTable(std::vector<std::string> Header) {
  Rows.push_back(std::move(Header));
}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Rows.front().size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string TextTable::num(double Value, int Precision) {
  return formatString("%.*f", Precision, Value);
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Rows.front().size(), 0);
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line = "|";
    for (size_t I = 0; I < Row.size(); ++I) {
      Line += " " + Row[I];
      Line.append(Widths[I] - Row[I].size() + 1, ' ');
      Line += "|";
    }
    return Line + "\n";
  };

  std::string Out = RenderRow(Rows.front());
  std::string Sep = "|";
  for (size_t W : Widths) {
    Sep.append(W + 2, '-');
    Sep += "|";
  }
  Out += Sep + "\n";
  for (size_t I = 1; I < Rows.size(); ++I)
    Out += RenderRow(Rows[I]);
  return Out;
}

CsvWriter::CsvWriter(std::vector<std::string> Header) {
  Rows.push_back(std::move(Header));
}

void CsvWriter::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Rows.front().size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string CsvWriter::render() const {
  std::string Out;
  for (const auto &Row : Rows)
    Out += join(Row, ",") + "\n";
  return Out;
}

bool CsvWriter::writeFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  std::string Data = render();
  size_t Written = std::fwrite(Data.data(), 1, Data.size(), File);
  std::fclose(File);
  return Written == Data.size();
}
