//===- Error.h - Lightweight error handling ---------------------*- C++-*-===//
//
// Part of the mlirrl project: a from-scratch reproduction of "A
// Reinforcement Learning Environment for Automatic Code Optimization in the
// MLIR Compiler" (CGO 2026).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight, exception-free error handling in the spirit of
/// llvm::Expected. Library code reports recoverable failures through
/// Expected<T>, and unrecoverable invariant violations through
/// reportFatalError / MLIRRL_UNREACHABLE.
///
/// The policy -- which failures are which
/// ======================================
///
/// The line is drawn at *whose bug it is*:
///
///  * Expected<T> (or bool + ErrorMessage, the Verifier idiom) is for
///    failures an untrusted input can cause: parse errors, verifier
///    rejections, sanitization-cap violations (ir/Parser.h's import
///    gate), and illegal schedules reaching the transform engine
///    (replayOpSchedule, materializeLoopNestChecked,
///    transforms/PostTransformChecks). Nothing a file on disk or an
///    agent action can contain may abort the process: the environment
///    turns such failures into penalized no-op steps and counts them
///    under the "robustness.*" categories (support/Stats.h).
///
///  * reportFatalError is reserved for states no input can legally
///    produce -- a broken internal invariant, i.e. a bug in this
///    library. The fatal convenience wrappers (materializeLoopNest,
///    materializeModule) exist precisely for call sites whose schedules
///    were already validated; new code handling externally influenced
///    data must call the *Checked variants instead.
///
/// When adding a failure path, ask "can a hostile .mlir file or a
/// random agent action reach this?" If yes, it must be an Expected.
/// The fuzz harness (src/fuzz/Fuzz.h) enforces the split: any abort it
/// can trigger from text or actions is a bug.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_ERROR_H
#define MLIRRL_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace mlirrl {

/// Prints \p Message to stderr and aborts. Used for invariant violations
/// that cannot be attributed to user input.
[[noreturn]] void reportFatalError(const std::string &Message);

/// Marks a point in code that must never be reached.
#define MLIRRL_UNREACHABLE(MSG)                                               \
  ::mlirrl::reportFatalError(std::string("unreachable: ") + (MSG))

/// A value-or-error holder for recoverable failures (e.g. parse errors).
///
/// Unlike llvm::Expected, errors are plain strings: this project has a
/// single consumer (the library itself and its tools), so structured error
/// hierarchies would be over-engineering.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure. Use the makeError free function for clarity.
  static Expected failure(std::string Message) {
    Expected E;
    E.ErrorMessage = std::move(Message);
    return E;
  }

  explicit operator bool() const { return Value.has_value(); }
  bool hasValue() const { return Value.has_value(); }

  /// Returns the contained value. Asserts on failure states.
  T &get() {
    assert(Value && "accessing value of a failed Expected");
    return *Value;
  }
  const T &get() const {
    assert(Value && "accessing value of a failed Expected");
    return *Value;
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// Returns the error message. Asserts on success states.
  const std::string &getError() const {
    assert(!Value && "accessing error of a successful Expected");
    return ErrorMessage;
  }

private:
  Expected() = default;

  std::optional<T> Value;
  std::string ErrorMessage;
};

/// Builds a failed Expected<T> carrying \p Message.
template <typename T> Expected<T> makeError(std::string Message) {
  return Expected<T>::failure(std::move(Message));
}

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_ERROR_H
