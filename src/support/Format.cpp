//===- Format.cpp ---------------------------------------------------------===//

#include "support/Format.h"

#include <cstdio>

using namespace mlirrl;

std::string mlirrl::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result;
  if (Needed > 0) {
    Result.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Result.data(), Result.size(), Fmt, ArgsCopy);
    Result.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Result;
}

std::string mlirrl::join(const std::vector<std::string> &Parts,
                         const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool mlirrl::startsWith(const std::string &Str, const std::string &Prefix) {
  return Str.size() >= Prefix.size() &&
         Str.compare(0, Prefix.size(), Prefix) == 0;
}
