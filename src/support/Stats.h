//===- Stats.h - Summary statistics ------------------------------*- C++-*-===//
///
/// \file
/// Summary statistics used by the benchmark harness and by the reward
/// pipeline (the paper reports medians of execution times and geometric
/// means of speedups).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_STATS_H
#define MLIRRL_SUPPORT_STATS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mlirrl {

/// Hit/miss counters for memoization layers (the cost-model schedule
/// cache and the CachingEvaluator report these; PERF.md records the
/// training-loop hit rate). Counts are relaxed atomics so a shared cache
/// can bump them from collector threads without a data race; copies take
/// a relaxed snapshot, so a snapshot read concurrently with updates may
/// mix counts from slightly different instants (fine for statistics).
///
/// Duplicates are the benign-race lookups of a concurrent memo table: a
/// thread that missed, computed, and then found the key already inserted
/// by a racer. Recording those as misses would skew hit rates under
/// parallel collection (the same key would "miss" once per racing
/// thread); recording them separately keeps the accounting identity
/// hits + misses + duplicates == lookups exact, with misses counting
/// actual insertions.
struct HitMissCounters {
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Duplicates{0};

  HitMissCounters() = default;
  HitMissCounters(const HitMissCounters &Other)
      : Hits(Other.Hits.load(std::memory_order_relaxed)),
        Misses(Other.Misses.load(std::memory_order_relaxed)),
        Duplicates(Other.Duplicates.load(std::memory_order_relaxed)) {}
  HitMissCounters &operator=(const HitMissCounters &Other) {
    Hits.store(Other.Hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    Misses.store(Other.Misses.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    Duplicates.store(Other.Duplicates.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  void recordHit() { Hits.fetch_add(1, std::memory_order_relaxed); }
  void recordMiss() { Misses.fetch_add(1, std::memory_order_relaxed); }
  void recordDuplicate() {
    Duplicates.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t total() const {
    return Hits.load(std::memory_order_relaxed) +
           Misses.load(std::memory_order_relaxed) +
           Duplicates.load(std::memory_order_relaxed);
  }
  double hitRate() const {
    uint64_t T = total();
    return T == 0 ? 0.0
                  : static_cast<double>(
                        Hits.load(std::memory_order_relaxed)) /
                        static_cast<double>(T);
  }
  void reset() {
    Hits.store(0, std::memory_order_relaxed);
    Misses.store(0, std::memory_order_relaxed);
    Duplicates.store(0, std::memory_order_relaxed);
  }
};

/// Lock-acquisition counters for striped (or otherwise mutex-guarded)
/// shared structures: how many acquisitions there were and how many of
/// them found the lock already held (try_lock failed and the caller had
/// to block). The contended fraction is the direct evidence striping is
/// (or is not) buying anything on a given host -- PERF.md records it
/// next to the shard-sweep micro-bench.
struct ContentionCounters {
  std::atomic<uint64_t> Acquisitions{0};
  std::atomic<uint64_t> Contended{0};

  ContentionCounters() = default;
  ContentionCounters(const ContentionCounters &Other)
      : Acquisitions(Other.Acquisitions.load(std::memory_order_relaxed)),
        Contended(Other.Contended.load(std::memory_order_relaxed)) {}
  ContentionCounters &operator=(const ContentionCounters &Other) {
    Acquisitions.store(Other.Acquisitions.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    Contended.store(Other.Contended.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }

  void record(bool WasContended) {
    Acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (WasContended)
      Contended.fetch_add(1, std::memory_order_relaxed);
  }

  double contendedRate() const {
    uint64_t A = Acquisitions.load(std::memory_order_relaxed);
    return A == 0 ? 0.0
                  : static_cast<double>(
                        Contended.load(std::memory_order_relaxed)) /
                        static_cast<double>(A);
  }
  void reset() {
    Acquisitions.store(0, std::memory_order_relaxed);
    Contended.store(0, std::memory_order_relaxed);
  }
};

/// The one place every cache in the system reports through: the
/// cost-model schedule memo, the CachingEvaluator's program and per-op
/// tables and the incremental repricer all surface their HitMissCounters
/// here, under a category name, with a single reset entry point
/// (resetAll). Two kinds of entries coexist:
///
///  * enrolled counters -- owned by a cache instance (each CostModel /
///    CachingEvaluator keeps its own counts, as tests rely on), made
///    visible for the instance's lifetime via an RAII Enrollment;
///  * named counters -- owned by the registry itself, for process-wide
///    tallies with no natural owner (the schedule-state repricer, and
///    the packed-GEMM scratch arena under "gemm.pack_arena" -- hits
///    are per-call arena reuses, misses are allocations, so a healthy
///    steady state shows misses frozen at thread count).
///
/// snapshot() aggregates both per category. All entry points are
/// thread-safe; the counters themselves are relaxed atomics.
class CacheStatsRegistry {
public:
  static CacheStatsRegistry &instance();

  /// RAII enrollment of an instance-owned counter set. Default-constructed
  /// enrollments are inert; enrolled ones deregister on destruction.
  /// \p Counters (and \p Contention when given -- striped tables enroll
  /// one set per shard) must outlive the enrollment.
  class Enrollment {
  public:
    Enrollment() = default;
    Enrollment(const char *Category, HitMissCounters *Counters,
               ContentionCounters *Contention = nullptr);
    ~Enrollment();
    Enrollment(const Enrollment &) = delete;
    Enrollment &operator=(const Enrollment &) = delete;

  private:
    uint64_t Id = 0;
  };

  /// The registry-owned counter set of \p Category (created on first
  /// use; a stable reference for the process lifetime).
  HitMissCounters &named(const char *Category);

  /// Per-category aggregate (enrolled + named), sorted by category name.
  struct CategoryStats {
    std::string Category;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Duplicates = 0;
    /// Lock-contention aggregate (zero unless the category enrolled
    /// ContentionCounters, e.g. a striped memo table).
    uint64_t LockAcquisitions = 0;
    uint64_t LockContended = 0;

    uint64_t total() const { return Hits + Misses + Duplicates; }
    double hitRate() const {
      return total() == 0 ? 0.0
                          : static_cast<double>(Hits) /
                                static_cast<double>(total());
    }
    double contendedRate() const {
      return LockAcquisitions == 0
                 ? 0.0
                 : static_cast<double>(LockContended) /
                       static_cast<double>(LockAcquisitions);
    }
  };
  std::vector<CategoryStats> snapshot() const;

  /// The aggregate of one category (zeros when nothing reported yet).
  CategoryStats categoryStats(const char *Category) const;

  /// Resets every live counter set, enrolled and named. The single
  /// entry point benches use between warmup and the timed region.
  void resetAll();

private:
  CacheStatsRegistry() = default;

  struct Enrolled {
    uint64_t Id;
    std::string Category;
    HitMissCounters *Counters;
    ContentionCounters *Contention; // nullptr for plain caches
  };
  mutable std::mutex Mutex;
  std::vector<Enrolled> EnrolledCounters;
  std::vector<std::pair<std::string, HitMissCounters *>> NamedCounters;
  uint64_t NextId = 1;
};

/// Recoverable misuse and untrusted-input failures that would once have
/// been process-fatal. Each event tallies into the registry category
/// "robustness.<event>" (as Misses -- there is no hit notion), so the
/// fuzz harness and a future server can assert on / export them through
/// the same snapshot() path as every cache.
enum class RobustnessEvent {
  /// step() called on a finished episode (returned inert).
  StepAfterDone,
  /// A post-transform check rejected an action (penalized no-op).
  PostTransformCheckFailed,
  /// VecEnv constructed over an empty sample batch.
  VecEnvEmptyBatch,
  /// VecEnv::step received the wrong number of actions.
  VecEnvActionArityMismatch,
  /// An imported module was rejected by the sanitization gate.
  ImportRejected,
  /// A rollout group hit the engine's defensive lockstep-step cap.
  RolloutStepCapHit,
  /// A server request was rejected because the admission queue was full.
  ServerQueueFull,
  /// A server request was rejected because the server was shutting down.
  ServerShutdown,
};

/// Stable category name of \p Event ("robustness.<event>").
const char *getRobustnessEventName(RobustnessEvent Event);

/// The registry-owned counter of \p Event.
HitMissCounters &robustnessCounter(RobustnessEvent Event);

/// Bumps \p Event's tally.
void recordRobustnessEvent(RobustnessEvent Event);

/// Arithmetic mean. Returns 0 for empty input.
double mean(const std::vector<double> &Values);

/// Median (of a copy; input untouched). Returns 0 for empty input.
double median(std::vector<double> Values);

/// Geometric mean. All values must be positive. Returns 0 for empty input.
double geomean(const std::vector<double> &Values);

/// Sample standard deviation. Returns 0 for fewer than two values.
double stddev(const std::vector<double> &Values);

/// Minimum / maximum. Assert on empty input.
double minOf(const std::vector<double> &Values);
double maxOf(const std::vector<double> &Values);

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_STATS_H
