//===- Stats.h - Summary statistics ------------------------------*- C++-*-===//
///
/// \file
/// Summary statistics used by the benchmark harness and by the reward
/// pipeline (the paper reports medians of execution times and geometric
/// means of speedups).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_STATS_H
#define MLIRRL_SUPPORT_STATS_H

#include <cstdint>
#include <vector>

namespace mlirrl {

/// Hit/miss counters for memoization layers (the cost-model schedule
/// cache reports these; PERF.md records the training-loop hit rate).
struct HitMissCounters {
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  uint64_t total() const { return Hits + Misses; }
  double hitRate() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(Hits) /
                              static_cast<double>(total());
  }
  void reset() { Hits = Misses = 0; }
};

/// Arithmetic mean. Returns 0 for empty input.
double mean(const std::vector<double> &Values);

/// Median (of a copy; input untouched). Returns 0 for empty input.
double median(std::vector<double> Values);

/// Geometric mean. All values must be positive. Returns 0 for empty input.
double geomean(const std::vector<double> &Values);

/// Sample standard deviation. Returns 0 for fewer than two values.
double stddev(const std::vector<double> &Values);

/// Minimum / maximum. Assert on empty input.
double minOf(const std::vector<double> &Values);
double maxOf(const std::vector<double> &Values);

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_STATS_H
