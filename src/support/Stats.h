//===- Stats.h - Summary statistics ------------------------------*- C++-*-===//
///
/// \file
/// Summary statistics used by the benchmark harness and by the reward
/// pipeline (the paper reports medians of execution times and geometric
/// means of speedups).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_STATS_H
#define MLIRRL_SUPPORT_STATS_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace mlirrl {

/// Hit/miss counters for memoization layers (the cost-model schedule
/// cache and the CachingEvaluator report these; PERF.md records the
/// training-loop hit rate). Counts are relaxed atomics so a shared cache
/// can bump them from collector threads without a data race; copies take
/// a relaxed snapshot, so a snapshot read concurrently with updates may
/// mix counts from slightly different instants (fine for statistics).
struct HitMissCounters {
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};

  HitMissCounters() = default;
  HitMissCounters(const HitMissCounters &Other)
      : Hits(Other.Hits.load(std::memory_order_relaxed)),
        Misses(Other.Misses.load(std::memory_order_relaxed)) {}
  HitMissCounters &operator=(const HitMissCounters &Other) {
    Hits.store(Other.Hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    Misses.store(Other.Misses.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void recordHit() { Hits.fetch_add(1, std::memory_order_relaxed); }
  void recordMiss() { Misses.fetch_add(1, std::memory_order_relaxed); }

  uint64_t total() const {
    return Hits.load(std::memory_order_relaxed) +
           Misses.load(std::memory_order_relaxed);
  }
  double hitRate() const {
    uint64_t T = total();
    return T == 0 ? 0.0
                  : static_cast<double>(
                        Hits.load(std::memory_order_relaxed)) /
                        static_cast<double>(T);
  }
  void reset() {
    Hits.store(0, std::memory_order_relaxed);
    Misses.store(0, std::memory_order_relaxed);
  }
};

/// Arithmetic mean. Returns 0 for empty input.
double mean(const std::vector<double> &Values);

/// Median (of a copy; input untouched). Returns 0 for empty input.
double median(std::vector<double> Values);

/// Geometric mean. All values must be positive. Returns 0 for empty input.
double geomean(const std::vector<double> &Values);

/// Sample standard deviation. Returns 0 for fewer than two values.
double stddev(const std::vector<double> &Values);

/// Minimum / maximum. Assert on empty input.
double minOf(const std::vector<double> &Values);
double maxOf(const std::vector<double> &Values);

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_STATS_H
