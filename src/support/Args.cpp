//===- Args.cpp -----------------------------------------------------------===//

#include "support/Args.h"

#include <cstdio>
#include <cstdlib>

using namespace mlirrl;

Expected<uint64_t> mlirrl::parseUnsignedInteger(const std::string &Text,
                                                uint64_t Max) {
  if (Text.empty())
    return makeError<uint64_t>("expected an unsigned integer, got \"\"");
  if (Text[0] == '-')
    return makeError<uint64_t>("expected an unsigned integer, got negative "
                               "value \"" +
                               Text + "\"");
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return makeError<uint64_t>("expected an unsigned integer, got \"" +
                                 Text + "\"");
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (std::numeric_limits<uint64_t>::max() - Digit) / 10)
      return makeError<uint64_t>("value \"" + Text + "\" overflows");
    Value = Value * 10 + Digit;
  }
  if (Value > Max)
    return makeError<uint64_t>("value " + Text + " exceeds the maximum " +
                               std::to_string(Max));
  return Value;
}

Expected<int64_t> mlirrl::parseSignedInteger(const std::string &Text,
                                             int64_t Min, int64_t Max) {
  bool Negative = !Text.empty() && Text[0] == '-';
  const std::string Digits = Negative ? Text.substr(1) : Text;
  if (Digits.empty())
    return makeError<int64_t>("expected an integer, got \"" + Text + "\"");
  // Magnitude bound: 2^63 for "-...", 2^63 - 1 otherwise, so INT64_MIN
  // round-trips and INT64_MIN - 1 is rejected as overflow.
  const uint64_t Limit =
      Negative ? (1ull << 63) : static_cast<uint64_t>(
                                    std::numeric_limits<int64_t>::max());
  Expected<uint64_t> Magnitude = parseUnsignedInteger(Digits, Limit);
  if (!Magnitude)
    return makeError<int64_t>(Magnitude.getError());
  int64_t Value =
      Negative ? static_cast<int64_t>(~*Magnitude + 1)
               : static_cast<int64_t>(*Magnitude);
  if (Value < Min || Value > Max)
    return makeError<int64_t>("value " + Text + " is outside [" +
                              std::to_string(Min) + ", " +
                              std::to_string(Max) + "]");
  return Value;
}

uint64_t mlirrl::parseUnsignedArg(const char *Flag, const std::string &Text,
                                  uint64_t Max) {
  Expected<uint64_t> Parsed = parseUnsignedInteger(Text, Max);
  if (!Parsed) {
    std::fprintf(stderr, "error: %s: %s\n", Flag, Parsed.getError().c_str());
    std::exit(2);
  }
  return *Parsed;
}
