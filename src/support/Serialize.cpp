//===- Serialize.cpp ------------------------------------------------------===//

#include "support/Serialize.h"

#include <cassert>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace mlirrl;
using namespace mlirrl::serialize;

// Archive framing constants. The magic doubles as an endianness and
// file-type check; bumping kFormatMagic would orphan every existing
// archive, so format evolution goes through the version field instead.
static const uint8_t kFormatMagic[8] = {'M', 'L', 'R', 'L',
                                        'A', 'R', 'C', '\n'};

uint32_t serialize::crc32(const uint8_t *Data, size_t Size) {
  static uint32_t Table[256];
  static bool TableReady = [] {
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      Table[I] = C;
    }
    return true;
  }();
  (void)TableReady;
  uint32_t Crc = 0xFFFFFFFFu;
  for (size_t I = 0; I < Size; ++I)
    Crc = Table[(Crc ^ Data[I]) & 0xFFu] ^ (Crc >> 8);
  return Crc ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Little-endian primitives
//===----------------------------------------------------------------------===//

static void appendU32(std::vector<uint8_t> &Bytes, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

static void appendU64(std::vector<uint8_t> &Bytes, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

static void patchU32(std::vector<uint8_t> &Bytes, size_t At, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Bytes[At + I] = static_cast<uint8_t>(V >> (8 * I));
}

static void patchU64(std::vector<uint8_t> &Bytes, size_t At, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Bytes[At + I] = static_cast<uint8_t>(V >> (8 * I));
}

static uint32_t loadU32(const uint8_t *P) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

static uint64_t loadU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

//===----------------------------------------------------------------------===//
// ArchiveWriter
//===----------------------------------------------------------------------===//

ArchiveWriter::ArchiveWriter(uint32_t Version) {
  Bytes.insert(Bytes.end(), kFormatMagic, kFormatMagic + sizeof(kFormatMagic));
  appendU32(Bytes, Version);
}

void ArchiveWriter::beginChunk(uint32_t Tag) {
  assert(!InChunk && "beginChunk inside an open chunk");
  assert(!Finished && "beginChunk after finish");
  InChunk = true;
  ChunkHeaderAt = Bytes.size();
  appendU32(Bytes, Tag);
  appendU64(Bytes, 0); // payload size, patched by endChunk
  appendU32(Bytes, 0); // payload CRC, patched by endChunk
  PayloadStart = Bytes.size();
}

void ArchiveWriter::endChunk() {
  assert(InChunk && "endChunk without an open chunk");
  InChunk = false;
  size_t PayloadSize = Bytes.size() - PayloadStart;
  patchU64(Bytes, ChunkHeaderAt + 4, PayloadSize);
  patchU32(Bytes, ChunkHeaderAt + 12,
           crc32(Bytes.data() + PayloadStart, PayloadSize));
}

void ArchiveWriter::writeU8(uint8_t Value) {
  assert(InChunk && "write outside a chunk");
  Bytes.push_back(Value);
}

void ArchiveWriter::writeU32(uint32_t Value) {
  assert(InChunk && "write outside a chunk");
  appendU32(Bytes, Value);
}

void ArchiveWriter::writeU64(uint64_t Value) {
  assert(InChunk && "write outside a chunk");
  appendU64(Bytes, Value);
}

void ArchiveWriter::writeI64(int64_t Value) {
  writeU64(static_cast<uint64_t>(Value));
}

void ArchiveWriter::writeBool(bool Value) { writeU8(Value ? 1 : 0); }

void ArchiveWriter::writeDouble(double Value) {
  uint64_t Pattern;
  static_assert(sizeof(Pattern) == sizeof(Value));
  std::memcpy(&Pattern, &Value, sizeof(Pattern));
  writeU64(Pattern);
}

void ArchiveWriter::writeString(const std::string &Value) {
  writeU64(Value.size());
  assert(InChunk);
  Bytes.insert(Bytes.end(), Value.begin(), Value.end());
}

void ArchiveWriter::writeDoubles(const std::vector<double> &Values) {
  writeDoubles(Values.data(), Values.size());
}

void ArchiveWriter::writeDoubles(const double *Values, size_t Count) {
  writeU64(Count);
  for (size_t I = 0; I < Count; ++I)
    writeDouble(Values[I]);
}

void ArchiveWriter::writeU64s(const std::vector<uint64_t> &Values) {
  writeU64(Values.size());
  for (uint64_t V : Values)
    writeU64(V);
}

void ArchiveWriter::writeU32s(const std::vector<unsigned> &Values) {
  writeU64(Values.size());
  for (unsigned V : Values)
    writeU32(V);
}

std::vector<uint8_t> ArchiveWriter::finish() {
  assert(!InChunk && "finish with an open chunk");
  Finished = true;
  return std::move(Bytes);
}

Expected<bool> ArchiveWriter::writeFile(const std::string &Path) {
  return writeFileBytesAtomic(Path, finish());
}

//===----------------------------------------------------------------------===//
// ChunkReader
//===----------------------------------------------------------------------===//

void ChunkReader::fail(const std::string &Why) {
  if (!Failed) {
    Failed = true;
    Message = Why;
  }
}

bool ChunkReader::take(size_t Count, const uint8_t *&Out) {
  if (Failed)
    return false;
  if (Size - Pos < Count) {
    fail("chunk underrun: needed " + std::to_string(Count) + " bytes, " +
         std::to_string(Size - Pos) + " left");
    return false;
  }
  Out = Data + Pos;
  Pos += Count;
  return true;
}

uint8_t ChunkReader::readU8() {
  const uint8_t *P;
  return take(1, P) ? *P : 0;
}

uint32_t ChunkReader::readU32() {
  const uint8_t *P;
  return take(4, P) ? loadU32(P) : 0;
}

uint64_t ChunkReader::readU64() {
  const uint8_t *P;
  return take(8, P) ? loadU64(P) : 0;
}

int64_t ChunkReader::readI64() { return static_cast<int64_t>(readU64()); }

bool ChunkReader::readBool() { return readU8() != 0; }

double ChunkReader::readDouble() {
  uint64_t Pattern = readU64();
  double Value;
  std::memcpy(&Value, &Pattern, sizeof(Value));
  return Value;
}

std::string ChunkReader::readString() {
  uint64_t Count = readU64();
  const uint8_t *P;
  if (!take(Count, P))
    return {};
  return std::string(reinterpret_cast<const char *>(P), Count);
}

std::vector<double> ChunkReader::readDoubles() {
  uint64_t Count = readU64();
  if (Failed || Count > remaining() / 8) {
    fail("chunk underrun reading a double vector of " +
         std::to_string(Count) + " entries");
    return {};
  }
  std::vector<double> Values(Count);
  for (double &V : Values)
    V = readDouble();
  return Values;
}

std::vector<uint64_t> ChunkReader::readU64s() {
  uint64_t Count = readU64();
  if (Failed || Count > remaining() / 8) {
    fail("chunk underrun reading a u64 vector of " + std::to_string(Count) +
         " entries");
    return {};
  }
  std::vector<uint64_t> Values(Count);
  for (uint64_t &V : Values)
    V = readU64();
  return Values;
}

std::vector<unsigned> ChunkReader::readU32s() {
  uint64_t Count = readU64();
  if (Failed || Count > remaining() / 4) {
    fail("chunk underrun reading a u32 vector of " + std::to_string(Count) +
         " entries");
    return {};
  }
  std::vector<unsigned> Values(Count);
  for (unsigned &V : Values)
    V = readU32();
  return Values;
}

//===----------------------------------------------------------------------===//
// ArchiveReader
//===----------------------------------------------------------------------===//

Expected<ArchiveReader> ArchiveReader::fromBytes(std::vector<uint8_t> Bytes,
                                                 uint32_t ExpectVersion) {
  const size_t HeaderSize = sizeof(kFormatMagic) + 4;
  if (Bytes.size() < HeaderSize)
    return makeError<ArchiveReader>("archive truncated: " +
                                    std::to_string(Bytes.size()) +
                                    " bytes is smaller than the header");
  if (std::memcmp(Bytes.data(), kFormatMagic, sizeof(kFormatMagic)) != 0)
    return makeError<ArchiveReader>("bad archive magic (not an mlirrl "
                                    "archive, or corrupted header)");

  ArchiveReader Reader;
  Reader.Version = loadU32(Bytes.data() + sizeof(kFormatMagic));
  if (Reader.Version != ExpectVersion)
    return makeError<ArchiveReader>(
        "archive version " + std::to_string(Reader.Version) +
        ", expected " + std::to_string(ExpectVersion));

  size_t Pos = HeaderSize;
  while (Pos < Bytes.size()) {
    if (Bytes.size() - Pos < 16)
      return makeError<ArchiveReader>(
          "archive truncated inside a chunk header at offset " +
          std::to_string(Pos));
    ChunkRef Ref;
    Ref.Tag = loadU32(Bytes.data() + Pos);
    uint64_t PayloadSize = loadU64(Bytes.data() + Pos + 4);
    uint32_t StoredCrc = loadU32(Bytes.data() + Pos + 12);
    Pos += 16;
    if (Bytes.size() - Pos < PayloadSize)
      return makeError<ArchiveReader>(
          "archive truncated: chunk at offset " + std::to_string(Pos - 16) +
          " claims " + std::to_string(PayloadSize) + " payload bytes, " +
          std::to_string(Bytes.size() - Pos) + " remain");
    uint32_t ActualCrc = crc32(Bytes.data() + Pos, PayloadSize);
    if (ActualCrc != StoredCrc)
      return makeError<ArchiveReader>(
          "CRC mismatch in chunk at offset " + std::to_string(Pos - 16) +
          " (archive corrupted)");
    Ref.Offset = Pos;
    Ref.Size = PayloadSize;
    Reader.Chunks.push_back(Ref);
    Pos += PayloadSize;
  }
  Reader.Bytes = std::move(Bytes);
  return Reader;
}

Expected<ArchiveReader> ArchiveReader::fromFile(const std::string &Path,
                                                uint32_t ExpectVersion) {
  Expected<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  if (!Bytes)
    return makeError<ArchiveReader>(Bytes.getError());
  return fromBytes(std::move(*Bytes), ExpectVersion);
}

bool ArchiveReader::hasChunk(uint32_t Tag) const {
  for (const ChunkRef &Ref : Chunks)
    if (Ref.Tag == Tag)
      return true;
  return false;
}

Expected<ChunkReader> ArchiveReader::chunk(uint32_t Tag) const {
  for (const ChunkRef &Ref : Chunks)
    if (Ref.Tag == Tag)
      return ChunkReader(Bytes.data() + Ref.Offset, Ref.Size);
  char Name[5] = {static_cast<char>(Tag), static_cast<char>(Tag >> 8),
                  static_cast<char>(Tag >> 16), static_cast<char>(Tag >> 24),
                  0};
  return makeError<ChunkReader>(std::string("archive has no '") + Name +
                                "' chunk");
}

std::vector<uint32_t> ArchiveReader::tags() const {
  std::vector<uint32_t> Tags;
  Tags.reserve(Chunks.size());
  for (const ChunkRef &Ref : Chunks)
    Tags.push_back(Ref.Tag);
  return Tags;
}

//===----------------------------------------------------------------------===//
// File helpers
//===----------------------------------------------------------------------===//

Expected<std::vector<uint8_t>>
serialize::readFileBytes(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return makeError<std::vector<uint8_t>>("cannot open " + Path +
                                           " for reading");
  std::vector<uint8_t> Bytes;
  uint8_t Buffer[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Bytes.insert(Bytes.end(), Buffer, Buffer + Read);
  bool Failed = std::ferror(File) != 0;
  std::fclose(File);
  if (Failed)
    return makeError<std::vector<uint8_t>>("read error on " + Path);
  return Bytes;
}

Expected<bool>
serialize::writeFileBytesAtomic(const std::string &Path,
                                const std::vector<uint8_t> &Bytes) {
  std::string TmpPath = Path + ".tmp";
  std::FILE *File = std::fopen(TmpPath.c_str(), "wb");
  if (!File)
    return makeError<bool>("cannot open " + TmpPath + " for writing");
  bool Ok = Bytes.empty() ||
            std::fwrite(Bytes.data(), 1, Bytes.size(), File) == Bytes.size();
#if defined(__unix__) || defined(__APPLE__)
  // Flush user buffers and force the data to disk before the rename:
  // otherwise the filesystem may persist the rename first and a power
  // loss leaves a short file at the (supposedly atomic) final path.
  Ok = std::fflush(File) == 0 && Ok;
  Ok = (fsync(fileno(File)) == 0) && Ok;
#endif
  Ok = std::fclose(File) == 0 && Ok;
  if (!Ok) {
    std::remove(TmpPath.c_str());
    return makeError<bool>("write error on " + TmpPath);
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return makeError<bool>("cannot rename " + TmpPath + " to " + Path);
  }
  return true;
}
