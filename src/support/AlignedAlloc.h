//===- AlignedAlloc.h - Over-aligned STL allocator ---------------*- C++-*-===//
///
/// \file
/// A minimal std::allocator replacement with a compile-time alignment
/// guarantee, so hot numeric buffers (the tensor arena, the float
/// inference matrices) start on SIMD-friendly boundaries. The GEMM
/// kernels tolerate unaligned operands -- sub-matrix views and odd
/// leading dimensions are legal -- but aligned bases let full-buffer
/// elementwise sweeps and packed panels use aligned vector moves.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_ALIGNEDALLOC_H
#define MLIRRL_SUPPORT_ALIGNEDALLOC_H

#include <cstddef>
#include <new>

namespace mlirrl {

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two no smaller than alignof(T)");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) {}

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T *allocate(std::size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T *P, std::size_t) noexcept {
    ::operator delete(P, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator &, const AlignedAllocator &) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &, const AlignedAllocator &) {
    return false;
  }
};

/// The alignment every tensor/matrix buffer in this codebase uses: one
/// full cache line, which also covers the widest vector unit in play
/// (64-byte AVX-512 zmm loads).
inline constexpr std::size_t BufferAlignment = 64;

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_ALIGNEDALLOC_H
