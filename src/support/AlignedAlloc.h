//===- AlignedAlloc.h - Over-aligned STL allocator ---------------*- C++-*-===//
///
/// \file
/// A minimal std::allocator replacement with a compile-time alignment
/// guarantee, so hot numeric buffers (the tensor arena, the float
/// inference matrices) start on SIMD-friendly boundaries. The GEMM
/// kernels tolerate unaligned operands -- sub-matrix views and odd
/// leading dimensions are legal -- but aligned bases let full-buffer
/// elementwise sweeps and packed panels use aligned vector moves.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_ALIGNEDALLOC_H
#define MLIRRL_SUPPORT_ALIGNEDALLOC_H

#include <cstddef>
#include <new>

namespace mlirrl {

/// The alignment every tensor/matrix buffer in this codebase uses: one
/// full cache line, which also covers the widest vector unit in play
/// (64-byte AVX-512 zmm loads).
inline constexpr std::size_t BufferAlignment = 64;

/// A reusable, growable scratch block at BufferAlignment: the arena the
/// GEMM pack buffers draw from (one arena per pool thread, held
/// thread_local by the owner). get() hands back the same allocation as
/// long as it is large enough, so a steady-state caller -- a training
/// loop issuing thousands of GEMMs -- performs zero per-call
/// allocations after warmup; the owner is expected to surface the
/// reuse/grow split through CacheStatsRegistry (hits = reuses,
/// misses = fresh allocations), which is what lets CI assert the
/// steady state actually holds.
class AlignedArena {
public:
  AlignedArena() = default;
  ~AlignedArena() { release(); }
  AlignedArena(const AlignedArena &) = delete;
  AlignedArena &operator=(const AlignedArena &) = delete;

  /// Returns a BufferAlignment-aligned block of at least \p Bytes,
  /// reusing the current allocation when it is large enough. \p Grew
  /// (when non-null) reports whether a fresh allocation happened. The
  /// block's contents are unspecified either way -- this is scratch.
  void *get(std::size_t Bytes, bool *Grew = nullptr) {
    const bool NeedsAlloc = Bytes > Cap;
    if (NeedsAlloc) {
      release();
      Ptr = ::operator new(Bytes, std::align_val_t(BufferAlignment));
      Cap = Bytes;
    }
    if (Grew)
      *Grew = NeedsAlloc;
    return Ptr;
  }

  /// Bytes currently held (0 until the first get()).
  std::size_t capacity() const { return Cap; }

  /// Frees the held block (get() after this re-allocates).
  void release() {
    if (Ptr)
      ::operator delete(Ptr, std::align_val_t(BufferAlignment));
    Ptr = nullptr;
    Cap = 0;
  }

private:
  void *Ptr = nullptr;
  std::size_t Cap = 0;
};

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two no smaller than alignof(T)");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) {}

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T *allocate(std::size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T *P, std::size_t) noexcept {
    ::operator delete(P, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator &, const AlignedAllocator &) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &, const AlignedAllocator &) {
    return false;
  }
};

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_ALIGNEDALLOC_H
