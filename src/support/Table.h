//===- Table.h - ASCII table and CSV emission -------------------*- C++-*-===//
///
/// \file
/// The benchmark harness regenerates the paper's tables and figure series.
/// TextTable renders aligned ASCII tables; CsvWriter emits figure series
/// (training curves) as CSV for plotting.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_TABLE_H
#define MLIRRL_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace mlirrl {

/// Accumulates rows of strings and renders them as an aligned ASCII table.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends a data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Convenience: formats doubles with \p Precision decimals.
  static std::string num(double Value, int Precision = 2);

  /// Renders the table (header, separator, rows).
  std::string render() const;

private:
  std::vector<std::vector<std::string>> Rows;
};

/// Accumulates rows and renders RFC-4180-ish CSV (no quoting needed for
/// our numeric payloads).
class CsvWriter {
public:
  explicit CsvWriter(std::vector<std::string> Header);

  void addRow(std::vector<std::string> Row);
  std::string render() const;

  /// Renders and writes to \p Path. Returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_TABLE_H
