//===- TsanAnnotations.h - ThreadSanitizer detection helpers ----*- C++-*-===//
///
/// \file
/// Build-mode detection for ThreadSanitizer (scripts/ci.sh
/// --sanitize=thread) plus the one knob tests need: a scale factor for
/// iteration counts. TSan instrumentation costs roughly 5-15x on the
/// lock-heavy paths this repo stresses, so the concurrency tests keep
/// their thread counts (interleavings are the point) but shrink the
/// per-thread operation counts under TSan to bound CI runtime.
///
/// Intentionally NOT here: AnnotateBenignRace-style suppressions. The
/// repo's shared state is either mutex-guarded or already expressed as
/// std::atomic with explicit ordering (support/Stats.h counters use
/// relaxed ops by design), so a TSan report is a bug, not noise. If a
/// genuine benign race ever needs waiving, it goes in the checked-in
/// suppression file the CI gate points TSAN_OPTIONS at, with a written
/// justification -- not a code annotation that silently travels to
/// every future call site.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_TSANANNOTATIONS_H
#define MLIRRL_SUPPORT_TSANANNOTATIONS_H

#include <cstddef>

#if defined(__SANITIZE_THREAD__)
#define MLIRRL_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MLIRRL_TSAN_BUILD 1
#endif
#endif

#ifndef MLIRRL_TSAN_BUILD
#define MLIRRL_TSAN_BUILD 0
#endif

namespace mlirrl {

/// True when this translation unit was compiled with -fsanitize=thread.
inline constexpr bool TsanEnabled = MLIRRL_TSAN_BUILD != 0;

/// Scales a stress-test iteration count for the active build mode:
/// returns \p Full normally and \p Full / \p Divisor (at least 1) under
/// TSan. Thread counts should stay unscaled -- fewer threads means
/// fewer interleavings, which defeats the sanitizer run.
inline constexpr size_t tsanScale(size_t Full, size_t Divisor = 8) {
  return TsanEnabled ? (Full / Divisor > 0 ? Full / Divisor : 1) : Full;
}

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_TSANANNOTATIONS_H
