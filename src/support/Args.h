//===- Args.h - Checked CLI argument parsing ---------------------*- C++-*-===//
///
/// \file
/// Checked numeric command-line parsing for the example, bench and
/// server drivers. The raw std::atoi idiom the early drivers used turns
/// "--inputs -3" or "--inputs 10k" into a silent wrap to a huge
/// unsigned count; these helpers reject non-numeric text, negative
/// values and overflow with a clear message instead.
///
/// Two layers: parseUnsignedInteger is the pure Expected-based core
/// (testable, reusable by library code), and parseUnsignedArg is the
/// CLI convenience that prints the error and exits with status 2 (the
/// usage-error exit code every driver already uses).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_ARGS_H
#define MLIRRL_SUPPORT_ARGS_H

#include "support/Error.h"

#include <cstdint>
#include <limits>
#include <string>

namespace mlirrl {

/// Parses \p Text as a base-10 unsigned integer in [0, Max]. Rejects
/// empty input, leading '-' (including "-0"), trailing garbage, and
/// values past \p Max. Leading '+' and surrounding whitespace are
/// rejected too: an argument vector entry is expected to be exactly the
/// digits.
Expected<uint64_t>
parseUnsignedInteger(const std::string &Text,
                     uint64_t Max = std::numeric_limits<uint64_t>::max());

/// Parses \p Text as a base-10 signed integer in [Min, Max]. Accepts one
/// leading '-'; rejects empty input, "-" alone, trailing garbage,
/// leading '+', surrounding whitespace, and overflow past int64 or the
/// given bounds. This is the one sanctioned signed-integer parse in the
/// tree (the repo linter's raw-numeric-parse rule): the IR parser's
/// integer tokens and any future signed CLI flags route through it.
Expected<int64_t>
parseSignedInteger(const std::string &Text,
                   int64_t Min = std::numeric_limits<int64_t>::min(),
                   int64_t Max = std::numeric_limits<int64_t>::max());

/// CLI wrapper: parses \p Text (the value of option \p Flag) as an
/// unsigned integer in [0, Max]; on failure prints
/// "error: <flag>: <reason>" to stderr and exits with status 2.
uint64_t parseUnsignedArg(const char *Flag, const std::string &Text,
                          uint64_t Max = std::numeric_limits<uint64_t>::max());

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_ARGS_H
