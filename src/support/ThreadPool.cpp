//===- ThreadPool.cpp -----------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>

using namespace mlirrl;

/// One parallelFor invocation: items are claimed by atomic increment;
/// the last finisher signals completion.
struct ThreadPool::Batch {
  size_t N = 0;
  const std::function<void(size_t)> *Fn = nullptr;
  std::atomic<size_t> NextItem{0};
  std::atomic<size_t> DoneItems{0};
  std::mutex DoneMutex;
  std::condition_variable DoneCondition;

  /// Claims and runs items until the batch is drained. Returns the
  /// number of items this thread completed.
  size_t drain() {
    size_t Ran = 0;
    for (;;) {
      size_t Item = NextItem.fetch_add(1, std::memory_order_relaxed);
      if (Item >= N)
        break;
      (*Fn)(Item);
      ++Ran;
    }
    if (Ran > 0 && DoneItems.fetch_add(Ran) + Ran == N) {
      std::lock_guard<std::mutex> Lock(DoneMutex);
      DoneCondition.notify_all();
    }
    return Ran;
  }

  void wait() {
    std::unique_lock<std::mutex> Lock(DoneMutex);
    DoneCondition.wait(Lock, [this] { return DoneItems.load() >= N; });
  }
};

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = hardwareThreads();
  for (unsigned I = 1; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::shared_ptr<Batch> Work;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Pending.empty(); });
      if (ShuttingDown && Pending.empty())
        return;
      Work = Pending.front();
      // Leave the batch visible until drained so every idle worker can
      // join in; drained batches are dropped below.
      if (Work->NextItem.load(std::memory_order_relaxed) >= Work->N) {
        Pending.pop_front();
        continue;
      }
    }
    Work->drain();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Workers.empty() || N == 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  auto Work = std::make_shared<Batch>();
  Work->N = N;
  Work->Fn = &Fn;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Pending.push_back(Work);
  }
  WorkAvailable.notify_all();
  Work->drain();
  Work->wait();
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto It = Pending.begin(); It != Pending.end(); ++It)
    if (*It == Work) {
      Pending.erase(It);
      break;
    }
}
