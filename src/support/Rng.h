//===- Rng.h - Deterministic random number generation -----------*- C++-*-===//
///
/// \file
/// A small, fast, seedable RNG (xoshiro256**) used everywhere randomness is
/// needed: dataset generation, policy sampling, PPO minibatch shuffling.
/// Determinism given a seed is a hard requirement for reproducible
/// experiments, so std::mt19937 distributions (which are implementation
/// defined) are avoided.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_RNG_H
#define MLIRRL_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace mlirrl {

/// xoshiro256** PRNG with splitmix64 seeding. Deterministic across
/// platforms and standard libraries.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-seeds the full 256-bit state from \p Seed via splitmix64.
  void reseed(uint64_t Seed);

  /// The full serializable generator state: the 256-bit xoshiro state
  /// plus the cached Box-Muller spare. Checkpoints (rl/Checkpoint.h)
  /// store it so a restored stream continues bitwise where it stopped.
  struct Snapshot {
    uint64_t Words[4] = {0, 0, 0, 0};
    bool HasSpareGaussian = false;
    double SpareGaussian = 0.0;
  };

  Snapshot snapshot() const {
    Snapshot S;
    for (int I = 0; I < 4; ++I)
      S.Words[I] = State[I];
    S.HasSpareGaussian = HasSpareGaussian;
    S.SpareGaussian = SpareGaussian;
    return S;
  }

  void restore(const Snapshot &S) {
    for (int I = 0; I < 4; ++I)
      State[I] = S.Words[I];
    HasSpareGaussian = S.HasSpareGaussian;
    SpareGaussian = S.SpareGaussian;
  }

  /// Derives an independent stream seed from (Base, Stream), e.g. one
  /// per-episode RNG per sample index. Deterministic and
  /// collision-resistant across nearby stream ids.
  static uint64_t deriveSeed(uint64_t Base, uint64_t Stream);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBounded(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInt(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns a uniform double in [Lo, Hi).
  double nextDouble(double Lo, double Hi);

  /// Returns a standard normal sample (Box-Muller).
  double nextGaussian();

  /// Returns true with probability \p P.
  bool nextBernoulli(double P) { return nextDouble() < P; }

  /// Returns a uniformly random element index of a non-empty container.
  template <typename Container> size_t choiceIndex(const Container &C) {
    assert(!C.empty() && "choice from empty container");
    return static_cast<size_t>(nextBounded(C.size()));
  }

  /// Samples an index from an unnormalized non-negative weight vector.
  /// All-zero weights are a fatal invariant violation: call this only
  /// with masks the caller proved non-empty (the environment's
  /// TransformMask/InterchangeMask construction guarantees at least one
  /// legal entry). Code handling observations it did not construct
  /// itself must use trySampleWeighted instead (support/Error.h policy).
  size_t sampleWeighted(const std::vector<double> &Weights);

  /// Checked variant: returns std::nullopt (drawing nothing -- the
  /// stream is bitwise-unchanged) when every weight is zero, so callers
  /// downstream of untrusted input can turn "no legal action" into a
  /// recoverable no-op instead of an abort. When any weight is positive
  /// the draw is bitwise-identical to sampleWeighted.
  std::optional<size_t>
  trySampleWeighted(const std::vector<double> &Weights);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(nextBounded(I));
      std::swap(Values[I - 1], Values[J]);
    }
  }

private:
  uint64_t State[4];
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_RNG_H
