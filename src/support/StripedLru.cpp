//===- StripedLru.cpp -----------------------------------------------------===//

#include "support/StripedLru.h"

using namespace mlirrl;

unsigned mlirrl::stripedShardCount(unsigned Requested) {
  if (Requested <= 1)
    return 1;
  unsigned N = 1;
  while (N < Requested && N < 256)
    N <<= 1;
  return N;
}

uint64_t mlirrl::stripedShardMix(uint64_t Key) {
  // splitmix64 finalizer: full-avalanche, so any key bit moves every
  // shard-selection bit.
  Key ^= Key >> 30;
  Key *= 0xbf58476d1ce4e5b9ull;
  Key ^= Key >> 27;
  Key *= 0x94d049bb133111ebull;
  Key ^= Key >> 31;
  return Key;
}
