//===- Error.cpp ----------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void mlirrl::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "mlirrl fatal error: %s\n", Message.c_str());
  std::abort();
}
