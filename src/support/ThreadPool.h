//===- ThreadPool.h - Fixed-size worker pool ---------------------*- C++-*-===//
///
/// \file
/// A small fixed-size thread pool for coarse-grained parallelism in the
/// training loop (parallel episode collection). Work is distributed with
/// an atomic index so parallelFor needs no per-item queue traffic, and
/// the calling thread participates, so a 1-thread pool degenerates to a
/// plain loop.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_THREADPOOL_H
#define MLIRRL_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlirrl {

class ThreadPool {
public:
  /// Spawns \p NumThreads - 1 workers (the caller is the remaining
  /// thread); 0 means one per hardware thread.
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of threads that execute parallelFor work (workers + caller).
  unsigned size() const { return static_cast<unsigned>(Workers.size()) + 1; }

  /// Hardware thread count (at least 1).
  static unsigned hardwareThreads();

  /// Runs Fn(0) .. Fn(N-1) across the pool and the calling thread;
  /// returns when all invocations completed. Item order across threads is
  /// unspecified, so Fn must only touch per-index state.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

private:
  struct Batch;
  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::deque<std::shared_ptr<Batch>> Pending;
  bool ShuttingDown = false;
};

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_THREADPOOL_H
