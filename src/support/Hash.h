//===- Hash.h - Structural hashing building block ----------------*- C++-*-===//
///
/// \file
/// The FNV-1a word hasher every structural memo key in the repo is built
/// from (the cost model's per-nest hash, the evaluator's module-level
/// keys, and the schedule-state's per-op keys). Distinct key spaces use
/// distinct seeds; the mixing itself is shared so the key construction
/// stays consistent across layers.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_HASH_H
#define MLIRRL_SUPPORT_HASH_H

#include <cstdint>
#include <string>

namespace mlirrl {

/// FNV-1a over mixed words. Fold every field a consumer of the hashed
/// object can observe; two objects with equal keys are treated as
/// interchangeable by the memo layers.
class FnvHasher {
public:
  static constexpr uint64_t DefaultSeed = 0xcbf29ce484222325ull;

  explicit FnvHasher(uint64_t Seed = DefaultSeed) : Hash(Seed) {}

  void word(uint64_t Value) {
    Hash ^= Value;
    Hash *= 0x100000001b3ull;
  }
  void signedWord(int64_t Value) { word(static_cast<uint64_t>(Value)); }
  void bytes(const std::string &Str) {
    word(Str.size());
    for (char C : Str)
      word(static_cast<uint8_t>(C));
  }
  uint64_t finish() const { return Hash; }

private:
  uint64_t Hash;
};

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_HASH_H
