//===- StripedLru.h - Lock-striped concurrent LRU memo tables ----*- C++-*-===//
///
/// \file
/// The shared-cache building block of the training loop: a memo table
/// split into N independently locked shards so parallel episode
/// collectors stop serializing on one global mutex. Keys are 64-bit
/// content hashes; a finalizing mix selects the shard, each shard is a
/// small mutex-guarded intrusive LRU with its own capacity slice, and
/// per-shard HitMissCounters / ContentionCounters are enrolled in the
/// CacheStatsRegistry under one category (the registry aggregates
/// across shards and instances).
///
/// Sharing one table across threads is only sound for *deterministic*
/// values: memoized(K, Compute) may race, and the loser of the race
/// returns the winner's entry -- identical bitwise only because Compute
/// is a pure function of the key. That is exactly the CachingEvaluator
/// contract (prices are deterministic cost-model outputs), and it is
/// what makes sharing/eviction order free to differ across runs while
/// every returned value stays bitwise-reproducible.
///
/// Accounting is race-exact, not merely race-tolerant:
///
///  * a lookup that finds the key under the shard lock is a hit;
///  * a thread that missed, computed, and finds the key inserted by a
///    racer when it re-checks under the insert lock records a
///    *duplicate* (its compute is discarded) -- never a second miss;
///  * misses are recorded at insertion, so misses == entries inserted
///    and hits + misses + duplicates == lookups always holds.
///
/// Capacity is clamped to >= 1 per shard and eviction pops strictly
/// from the LRU tail after the MRU push, so the just-inserted entry can
/// never evict itself (the capacity-0 footgun of the old single-mutex
/// LruMemo).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_STRIPEDLRU_H
#define MLIRRL_SUPPORT_STRIPEDLRU_H

#include "support/Stats.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace mlirrl {

/// Rounds a requested shard count to the power of two actually used
/// (clamped to [1, 256]) so shard selection is a mask, not a modulo.
unsigned stripedShardCount(unsigned Requested);

/// Finalizing 64-bit mix (splitmix64) applied to keys before shard
/// selection: memo keys are already FNV-folded, but their low bits can
/// still carry structure, and a biased shard choice would re-create the
/// single-lock hot spot striping exists to remove.
uint64_t stripedShardMix(uint64_t Key);

/// A lock-striped memoization table mapping 64-bit keys to
/// deterministic values. Thread-safe; see the file comment for the
/// accounting and determinism contract.
template <typename ValueT> class StripedLruMemo {
public:
  /// \p Capacity is the total entry budget, divided across shards
  /// (clamped so every shard holds at least one entry). \p ShardCount
  /// is rounded up to a power of two; 1 degenerates to a classic
  /// single-mutex LRU (the contention baseline the micro-bench sweeps
  /// against).
  StripedLruMemo(const char *Category, size_t Capacity,
                 unsigned ShardCount = 8) {
    unsigned N = stripedShardCount(ShardCount);
    ShardMask = N - 1;
    size_t Total = Capacity == 0 ? 1 : Capacity;
    size_t PerShard = (Total + N - 1) / N;
    Shards.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Shards.push_back(std::make_unique<Shard>(Category, PerShard));
  }

  /// Returns the memoized value of \p Key, calling \p Compute outside
  /// any lock on a miss so concurrent misses on different keys price in
  /// parallel. \p Compute must be a pure deterministic function of the
  /// key: a racing duplicate's result is discarded in favor of the
  /// entry a concurrent winner inserted. Templated on the callable so
  /// the hit path (the overwhelming majority of hot-loop lookups) pays
  /// no std::function erasure.
  template <typename ComputeT>
  ValueT memoized(uint64_t Key, ComputeT &&Compute) {
    Shard &S = shardFor(Key);
    {
      std::unique_lock<std::mutex> Lock = lockShard(S);
      auto It = S.Index.find(Key);
      if (It != S.Index.end()) {
        S.HitMiss.recordHit();
        S.Order.splice(S.Order.begin(), S.Order, It->second);
        return It->second->Value;
      }
    }

    ValueT Computed = Compute();

    std::unique_lock<std::mutex> Lock = lockShard(S);
    auto It = S.Index.find(Key);
    if (It != S.Index.end()) {
      // A racer inserted the key while we computed: this lookup found a
      // (late) cached value, so it must not count as a miss -- the
      // duplicate counter keeps hits + misses + duplicates == lookups
      // without inflating either side.
      S.HitMiss.recordDuplicate();
      S.Order.splice(S.Order.begin(), S.Order, It->second);
      return It->second->Value;
    }
    S.HitMiss.recordMiss();
    S.Order.push_front(Entry{Key, std::move(Computed)});
    S.Index[Key] = S.Order.begin();
    // Per-shard capacity is >= 1 and the new entry sits at the MRU
    // head, so this only ever evicts *older* entries.
    while (S.Order.size() > S.Capacity) {
      S.Index.erase(S.Order.back().Key);
      S.Order.pop_back();
    }
    return S.Order.front().Value;
  }

  /// Drops every memoized entry (counters untouched).
  void clear() {
    for (auto &S : Shards) {
      std::lock_guard<std::mutex> Lock(S->Mutex);
      S->Order.clear();
      S->Index.clear();
    }
  }

  /// Live entries across all shards (locks each shard in turn; the sum
  /// is a snapshot, exact only when quiescent).
  size_t size() const {
    size_t Total = 0;
    for (const auto &S : Shards) {
      std::lock_guard<std::mutex> Lock(S->Mutex);
      Total += S->Order.size();
    }
    return Total;
  }

  unsigned shardCount() const { return ShardMask + 1; }
  size_t shardCapacity() const {
    std::lock_guard<std::mutex> Lock(Shards.front()->Mutex);
    return Shards.front()->Capacity;
  }
  size_t capacity() const { return shardCapacity() * Shards.size(); }

  /// Re-divides a new total entry budget across the shards (>= 1 each)
  /// and trims overfull shards from their LRU tails.
  void setCapacity(size_t Capacity) {
    size_t Total = Capacity == 0 ? 1 : Capacity;
    size_t PerShard =
        (Total + Shards.size() - 1) / Shards.size();
    for (auto &S : Shards) {
      std::lock_guard<std::mutex> Lock(S->Mutex);
      S->Capacity = PerShard < 1 ? 1 : PerShard;
      while (S->Order.size() > S->Capacity) {
        S->Index.erase(S->Order.back().Key);
        S->Order.pop_back();
      }
    }
  }

  /// Aggregate hit/miss/duplicate snapshot over all shards (relaxed).
  HitMissCounters counters() const {
    HitMissCounters Total;
    for (const auto &S : Shards) {
      Total.Hits.fetch_add(
          S->HitMiss.Hits.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      Total.Misses.fetch_add(
          S->HitMiss.Misses.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      Total.Duplicates.fetch_add(
          S->HitMiss.Duplicates.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    return Total;
  }

  /// Aggregate lock-acquisition snapshot over all shards (relaxed).
  ContentionCounters contention() const {
    ContentionCounters Total;
    for (const auto &S : Shards) {
      Total.Acquisitions.fetch_add(
          S->Locks.Acquisitions.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      Total.Contended.fetch_add(
          S->Locks.Contended.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    return Total;
  }

  void resetCounters() {
    for (auto &S : Shards) {
      S->HitMiss.reset();
      S->Locks.reset();
    }
  }

private:
  struct Entry {
    uint64_t Key = 0;
    ValueT Value;
  };

  /// One stripe: an independent mutex-guarded MRU-ordered LRU with its
  /// own counters, enrolled in the registry so category aggregates span
  /// every shard of every instance.
  struct Shard {
    Shard(const char *Category, size_t Capacity)
        : Capacity(Capacity < 1 ? 1 : Capacity),
          Stats(Category, &HitMiss, &Locks) {}

    mutable std::mutex Mutex;
    std::list<Entry> Order; // MRU first
    std::unordered_map<uint64_t, typename std::list<Entry>::iterator> Index;
    size_t Capacity; // guarded by Mutex (setCapacity can change it)
    HitMissCounters HitMiss;
    ContentionCounters Locks;
    CacheStatsRegistry::Enrollment Stats;
  };

  Shard &shardFor(uint64_t Key) {
    return *Shards[stripedShardMix(Key) & ShardMask];
  }

  /// Acquires the shard lock on the memoized() hot path, recording
  /// whether the acquisition had to block (try_lock probe). Maintenance
  /// entry points (clear/size) lock directly and stay out of the
  /// contention statistics.
  static std::unique_lock<std::mutex> lockShard(Shard &S) {
    std::unique_lock<std::mutex> Lock(S.Mutex, std::try_to_lock);
    bool WasContended = !Lock.owns_lock();
    if (WasContended)
      Lock.lock();
    S.Locks.record(WasContended);
    return Lock;
  }

  std::vector<std::unique_ptr<Shard>> Shards;
  unsigned ShardMask = 0;
};

} // namespace mlirrl

#endif // MLIRRL_SUPPORT_STRIPEDLRU_H
