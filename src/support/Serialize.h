//===- Serialize.h - Versioned binary archives -------------------*- C++-*-===//
///
/// \file
/// A small, endian-stable binary archive format used for checkpoints
/// (rl/Checkpoint.h). An archive is a fixed header (8-byte magic +
/// format version) followed by tagged chunks; every chunk carries its
/// payload size and a CRC32 of the payload, so truncation and bit flips
/// are detected before any consumer state is touched. All integers are
/// encoded little-endian byte by byte and doubles as their IEEE-754
/// bit patterns, so an archive written on one machine restores
/// bitwise-identically on any other.
///
/// Writing the same logical content always produces the same bytes
/// (no timestamps, no pointers, no map iteration order), which is what
/// makes save -> load -> save byte-identity a testable invariant.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_SUPPORT_SERIALIZE_H
#define MLIRRL_SUPPORT_SERIALIZE_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mlirrl {
namespace serialize {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range.
uint32_t crc32(const uint8_t *Data, size_t Size);

/// Packs a four-character chunk tag into its little-endian u32.
constexpr uint32_t fourCC(char A, char B, char C, char D) {
  return static_cast<uint32_t>(static_cast<uint8_t>(A)) |
         static_cast<uint32_t>(static_cast<uint8_t>(B)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(C)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(D)) << 24;
}

/// Builds an archive: beginChunk/endChunk bracket a tagged payload, the
/// write* calls append to the open chunk. finish() seals the archive
/// and returns its bytes; writeFile() additionally writes them through
/// a temp file + atomic rename so a crash never leaves a torn archive
/// at the destination path.
class ArchiveWriter {
public:
  explicit ArchiveWriter(uint32_t Version);

  void beginChunk(uint32_t Tag);
  void endChunk();

  void writeU8(uint8_t Value);
  void writeU32(uint32_t Value);
  void writeU64(uint64_t Value);
  void writeI64(int64_t Value);
  void writeBool(bool Value);
  /// The exact IEEE-754 bit pattern (NaNs and signed zeros included).
  void writeDouble(double Value);
  void writeString(const std::string &Value);
  void writeDoubles(const std::vector<double> &Values);
  /// Pointer/count form for buffers with non-default allocators (the
  /// aligned tensor buffers).
  void writeDoubles(const double *Values, size_t Count);
  void writeU64s(const std::vector<uint64_t> &Values);
  void writeU32s(const std::vector<unsigned> &Values);

  /// Seals the archive and returns its bytes. No chunk may be open.
  std::vector<uint8_t> finish();

  /// Seals the archive and writes it to \p Path atomically
  /// (<Path>.tmp + rename).
  Expected<bool> writeFile(const std::string &Path);

private:
  std::vector<uint8_t> Bytes;
  bool InChunk = false;
  bool Finished = false;
  size_t ChunkHeaderAt = 0;  // offset of the open chunk's tag
  size_t PayloadStart = 0;   // offset of the open chunk's payload
};

/// A bounds-checked cursor over one chunk's payload. Reads past the end
/// (or malformed strings/vectors) set a sticky error instead of
/// touching out-of-range memory; callers check ok() once after a batch
/// of reads.
class ChunkReader {
public:
  ChunkReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  uint8_t readU8();
  uint32_t readU32();
  uint64_t readU64();
  int64_t readI64();
  bool readBool();
  double readDouble();
  std::string readString();
  std::vector<double> readDoubles();
  std::vector<uint64_t> readU64s();
  std::vector<unsigned> readU32s();

  bool ok() const { return !Failed; }
  const std::string &error() const { return Message; }
  bool atEnd() const { return Failed || Pos == Size; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }

private:
  bool take(size_t Count, const uint8_t *&Out);
  void fail(const std::string &Why);

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
  std::string Message;
};

/// Parses and validates a whole archive up front: magic, format
/// version, chunk framing and every chunk's CRC. Chunks are then
/// addressed by tag; the reader owns the bytes, so ChunkReaders stay
/// valid for its lifetime.
class ArchiveReader {
public:
  /// Validates \p Bytes as a version-\p ExpectVersion archive.
  static Expected<ArchiveReader> fromBytes(std::vector<uint8_t> Bytes,
                                           uint32_t ExpectVersion);

  /// Reads and validates the file at \p Path.
  static Expected<ArchiveReader> fromFile(const std::string &Path,
                                          uint32_t ExpectVersion);

  uint32_t version() const { return Version; }

  bool hasChunk(uint32_t Tag) const;

  /// A payload cursor over the first chunk tagged \p Tag; fails when
  /// the archive has no such chunk.
  Expected<ChunkReader> chunk(uint32_t Tag) const;

  /// Tags in archive order (duplicates preserved).
  std::vector<uint32_t> tags() const;

  /// Re-serializes the archive: the identical bytes it was parsed from.
  const std::vector<uint8_t> &bytes() const { return Bytes; }

private:
  ArchiveReader() = default;

  struct ChunkRef {
    uint32_t Tag = 0;
    size_t Offset = 0; // payload offset into Bytes
    size_t Size = 0;   // payload size
  };

  std::vector<uint8_t> Bytes;
  std::vector<ChunkRef> Chunks;
  uint32_t Version = 0;
};

/// Reads a whole file into bytes (helper shared with tests).
Expected<std::vector<uint8_t>> readFileBytes(const std::string &Path);

/// Writes bytes to \p Path through <Path>.tmp + atomic rename.
Expected<bool> writeFileBytesAtomic(const std::string &Path,
                                    const std::vector<uint8_t> &Bytes);

} // namespace serialize
} // namespace mlirrl

#endif // MLIRRL_SUPPORT_SERIALIZE_H
