//===- Rng.cpp ------------------------------------------------------------===//

#include "support/Rng.h"

#include "support/Error.h"

#include <cmath>

using namespace mlirrl;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

uint64_t Rng::deriveSeed(uint64_t Base, uint64_t Stream) {
  // Two splitmix64 steps over a mixed word: adjacent (Base, Stream)
  // pairs land on unrelated seeds.
  uint64_t X = Base ^ (Stream * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull);
  uint64_t A = splitMix64(X);
  return splitMix64(X) ^ rotl(A, 23);
}

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
  HasSpareGaussian = false;
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBounded(uint64_t Bound) {
  assert(Bound > 0 && "nextBounded requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::nextInt(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "nextInt requires Lo <= Hi");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(nextBounded(Span));
}

double Rng::nextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::nextDouble(double Lo, double Hi) {
  return Lo + (Hi - Lo) * nextDouble();
}

double Rng::nextGaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  double U, V, S;
  do {
    U = nextDouble() * 2.0 - 1.0;
    V = nextDouble() * 2.0 - 1.0;
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  double Mul = std::sqrt(-2.0 * std::log(S) / S);
  SpareGaussian = V * Mul;
  HasSpareGaussian = true;
  return U * Mul;
}

size_t Rng::sampleWeighted(const std::vector<double> &Weights) {
  std::optional<size_t> Drawn = trySampleWeighted(Weights);
  if (!Drawn)
    reportFatalError("sampleWeighted: all weights are zero");
  return *Drawn;
}

std::optional<size_t>
Rng::trySampleWeighted(const std::vector<double> &Weights) {
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "weights must be non-negative");
    Total += W;
  }
  // No draw on empty support: the fatal wrapper aborts here, and the
  // checked path must leave the stream untouched so "no legal action"
  // handling cannot perturb any later draw.
  if (Total <= 0.0)
    return std::nullopt;
  double Target = nextDouble() * Total;
  double Acc = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Acc += Weights[I];
    if (Target < Acc)
      return I;
  }
  return Weights.size() - 1;
}
