//===- Distributions.h - Categorical action distributions --------*- C++-*-===//
///
/// \file
/// Masked categorical distributions over logits — the building block of
/// the multi-discrete action space (Sec. IV-A1): the policy first samples
/// a transformation from a 6-way categorical, then parameters from
/// per-head categoricals, all under action masks (Sec. IV-A2).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_DISTRIBUTIONS_H
#define MLIRRL_NN_DISTRIBUTIONS_H

#include "nn/Ops.h"
#include "support/Rng.h"

#include <vector>

namespace mlirrl {
namespace nn {

/// A categorical distribution over one row of logits with a 0/1
/// validity mask. Keeps the graph alive so logProb/entropy are
/// differentiable.
class MaskedCategorical {
public:
  /// \p Logits is 1xN; \p Mask (1xN of 0/1) may be invalid for no mask.
  MaskedCategorical(Tensor Logits, Tensor Mask = Tensor());

  unsigned numCategories() const { return Logits.cols(); }

  /// Samples an index according to the masked distribution.
  unsigned sample(Rng &Rng) const;

  /// The most probable valid index.
  unsigned argmax() const;

  /// Differentiable log-probability of \p Index.
  Tensor logProb(unsigned Index) const;

  /// Differentiable entropy.
  Tensor entropy() const;

  /// Raw probabilities (non-differentiable view).
  std::vector<double> probabilities() const;

  bool isMasked(unsigned Index) const;

private:
  Tensor Logits;
  Tensor Mask;
  Tensor LogProbs; // cached logSoftmax node
};

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_DISTRIBUTIONS_H
