//===- Distributions.h - Categorical action distributions --------*- C++-*-===//
///
/// \file
/// Masked categorical distributions over logits — the building block of
/// the multi-discrete action space (Sec. IV-A1): the policy first samples
/// a transformation from a 6-way categorical, then parameters from
/// per-head categoricals, all under action masks (Sec. IV-A2).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_DISTRIBUTIONS_H
#define MLIRRL_NN_DISTRIBUTIONS_H

#include "nn/Ops.h"
#include "support/Rng.h"

#include <vector>

namespace mlirrl {
namespace nn {

/// A batch of B independent masked categorical distributions over the
/// rows of a [BxN] logits tensor. Row operations are bitwise-identical
/// to a distribution built from that row alone (log-softmax is
/// row-wise and the shared GEMM producing the logits accumulates each
/// row independently), which is what keeps batched rollouts
/// deterministic against the single-env path; MaskedCategorical below
/// is literally this class at B == 1.
///
/// Rows whose head is inactive in a mixed batch may carry an all-zero
/// mask; such rows must simply never be sampled or picked.
class BatchedMaskedCategorical {
public:
  /// \p Logits is BxN; \p Mask (BxN of 0/1) may be invalid for no mask.
  BatchedMaskedCategorical(Tensor Logits, Tensor Mask = Tensor());

  unsigned batchSize() const { return Logits.rows(); }
  unsigned numCategories() const { return Logits.cols(); }

  /// Samples row \p Row from its masked distribution using \p Rng (the
  /// per-env stream of that row's environment).
  unsigned sampleRow(unsigned Row, Rng &Rng) const;

  /// The most probable valid index of row \p Row.
  unsigned argmaxRow(unsigned Row) const;

  /// Non-differentiable log-probability of \p Index under row \p Row.
  double logProbValue(unsigned Row, unsigned Index) const;

  /// Raw probabilities of row \p Row (non-differentiable view).
  std::vector<double> probabilitiesRow(unsigned Row) const;

  /// Differentiable per-row log-probabilities [Bx1]; Cols[r] == -1
  /// contributes 0.0 with no gradient (inactive rows).
  Tensor logProbRows(const std::vector<int> &Cols) const;

  /// Differentiable per-row entropies [Bx1].
  Tensor entropyRows() const;

  bool isMasked(unsigned Row, unsigned Index) const;

private:
  Tensor Logits;
  Tensor Mask;
  Tensor LogProbs; // cached logSoftmax node
};

/// A categorical distribution over one row of logits with a 0/1
/// validity mask: the batch-of-one view of BatchedMaskedCategorical,
/// so there is a single sampling/argmax/log-prob implementation to
/// keep correct. Keeps the graph alive so logProb/entropy are
/// differentiable.
class MaskedCategorical {
public:
  /// \p Logits is 1xN; \p Mask (1xN of 0/1) may be invalid for no mask.
  MaskedCategorical(Tensor Logits, Tensor Mask = Tensor());

  unsigned numCategories() const { return Batch.numCategories(); }

  /// Samples an index according to the masked distribution.
  unsigned sample(Rng &Rng) const { return Batch.sampleRow(0, Rng); }

  /// The most probable valid index.
  unsigned argmax() const { return Batch.argmaxRow(0); }

  /// Differentiable log-probability of \p Index.
  Tensor logProb(unsigned Index) const;

  /// Differentiable entropy.
  Tensor entropy() const { return Batch.entropyRows(); }

  /// Raw probabilities (non-differentiable view).
  std::vector<double> probabilities() const {
    return Batch.probabilitiesRow(0);
  }

  bool isMasked(unsigned Index) const { return Batch.isMasked(0, Index); }

private:
  BatchedMaskedCategorical Batch;
};

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_DISTRIBUTIONS_H
