//===- Serialization.h - Parameter checkpointing -----------------*- C++-*-===//
///
/// \file
/// Saves and restores flat parameter lists (policy/value network weights)
/// in a simple text format, so trained agents can be checkpointed and
/// reloaded (the artifact ships pre-trained policies the same way).
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_SERIALIZATION_H
#define MLIRRL_NN_SERIALIZATION_H

#include "nn/Tensor.h"

#include <string>
#include <vector>

namespace mlirrl {
namespace nn {

/// Writes all parameters to \p Path. Returns false on I/O failure.
bool saveParameters(const std::vector<Tensor> &Params,
                    const std::string &Path);

/// Loads parameters from \p Path into \p Params (shapes must match).
/// Returns false on I/O failure or shape mismatch.
bool loadParameters(const std::vector<Tensor> &Params,
                    const std::string &Path);

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_SERIALIZATION_H
