//===- Gemm.h - Blocked dense matrix kernels ---------------------*- C++-*-===//
///
/// \file
/// Cache-blocked, register-tiled GEMM kernels over raw row-major buffers,
/// shared by the autograd matmul (forward and both backward products) and
/// the fused linear layer. All kernels *accumulate* into C (C += ...),
/// which is exactly the contract gradient accumulation needs; forward
/// callers start from a zeroed buffer.
///
/// Operands are plain pointers with explicit leading dimensions so the
/// kernels run directly on TensorNode::Data / TensorNode::Grad without
/// per-element at(i,j) indexing or temporary transposed copies.
///
/// Every kernel exists for double and for float. The double kernels are
/// the training path and are bitwise-stable (same accumulation order
/// per element regardless of pool size or kernel dispatch); the float
/// kernels carry the opt-in f32 inference path
/// (MlirRlOptions::Inference), where the NN product runs an explicitly
/// SIMD micro-kernel when the platform has one (see setGemmKernel).
/// Large calls additionally route through the packed macro-kernel
/// layer (see setGemmPacking): BLIS-style A/B panel packing into
/// per-thread aligned scratch, bitwise-identical to the streaming
/// kernels by construction.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_GEMM_H
#define MLIRRL_NN_GEMM_H

#include <cstddef>

namespace mlirrl {

class ThreadPool;

namespace nn {

/// Installs a worker pool the GEMM kernels may partition output rows
/// across (nullptr restores serial execution). Partitioning assigns
/// whole output rows to threads and leaves every element's accumulation
/// order untouched, so results are bitwise-identical for every pool
/// size -- which is what lets the PPO update parallelize its minibatch
/// GEMMs without breaking the determinism contract. The caller must
/// keep the pool alive until the setting is cleared; set/clear from one
/// thread only (kernels running concurrently read it).
void setGemmPool(ThreadPool *Pool);
ThreadPool *getGemmPool();

/// Which inner NN micro-kernel the gemmAcc entry points run. The two
/// kernels accumulate every C element over k in the same order (SIMD
/// only widens the independent j lanes), so the choice never changes
/// results -- it is a speed knob, exposed so benchmarks can measure
/// both and the gemm_smoke example can cross-check them at runtime.
enum class GemmKernel {
  Auto,   ///< Simd where compiled in, else Scalar (the default).
  Scalar, ///< Force the portable scalar micro-kernel.
  Simd,   ///< Force the vector-extension micro-kernel (no-op without it).
};

/// Sets the process-wide kernel dispatch (set from one thread only;
/// kernels running concurrently read it).
void setGemmKernel(GemmKernel Kind);
GemmKernel getGemmKernel();

/// Whether the gemmAcc entry points run the packed macro-kernel path:
/// copy each cache block of A/B into dense 64-byte-aligned scratch
/// (transposing for NT/TN so the k-reduction is contiguous) and run the
/// register kernels over the packed panels. Packing is pure layout --
/// every C element keeps the exact accumulation sequence of the
/// unpacked kernels, so like the kernel dispatch this never changes
/// results; it is a speed knob with an Auto heuristic (pack when the
/// operand footprint is large enough to amortize the copy), and On/Off
/// overrides for benchmarks and the 0-ULP cross-checks.
enum class GemmPacking {
  Auto, ///< Heuristic per call shape (the default).
  On,   ///< Always pack (any shape; correctness-complete).
  Off,  ///< Never pack -- the pre-packing streaming kernels.
};

/// Sets the process-wide packing dispatch (set from one thread only;
/// kernels running concurrently read it).
void setGemmPacking(GemmPacking Mode);
GemmPacking getGemmPacking();

/// Capacity in bytes of the calling thread's pack-scratch arena (0
/// until this thread runs its first packed GEMM). The arena grows to
/// the panel footprint once and is reused for every later packed call
/// on the thread; CacheStatsRegistry category "gemm.pack_arena" counts
/// reuses as hits and fresh allocations as misses, which is what
/// perf_smoke and CI assert on. Exposed for tests/benches.
size_t gemmPackScratchCapacity();

/// Whether the SIMD micro-kernel was compiled in (GNU vector
/// extensions; false only on compilers without them, where Simd
/// dispatch silently runs the scalar kernel).
bool gemmSimdAvailable();

/// SIMD lane count per vector for a 4/8-byte element on this build
/// (e.g. 8/4 for the 32-byte generic vectors); 1 without SIMD.
/// For benchmark/perf-log labeling.
unsigned gemmSimdLanes(size_t ElemSize);

/// C(MxN) += A(MxK) . B(KxN). Row-major with leading dimensions LdA /
/// LdB / LdC (elements per row).
void gemmAccNN(unsigned M, unsigned N, unsigned K, const double *A,
               unsigned LdA, const double *B, unsigned LdB, double *C,
               unsigned LdC);
void gemmAccNN(unsigned M, unsigned N, unsigned K, const float *A,
               unsigned LdA, const float *B, unsigned LdB, float *C,
               unsigned LdC);

/// C(MxN) += A(MxK) . B^T where B is stored row-major as NxK:
/// C[i][j] += sum_k A[i][k] * B[j][k]. This is dA += dC . B^T with
/// B passed in its stored (K-major) layout.
void gemmAccNT(unsigned M, unsigned N, unsigned K, const double *A,
               unsigned LdA, const double *B, unsigned LdB, double *C,
               unsigned LdC);
void gemmAccNT(unsigned M, unsigned N, unsigned K, const float *A,
               unsigned LdA, const float *B, unsigned LdB, float *C,
               unsigned LdC);

/// C(MxN) += A^T . B where A is stored row-major as KxM:
/// C[i][j] += sum_k A[k][i] * B[k][j]. This is dW += X^T . dC with X
/// passed in its stored layout.
void gemmAccTN(unsigned M, unsigned N, unsigned K, const double *A,
               unsigned LdA, const double *B, unsigned LdB, double *C,
               unsigned LdC);
void gemmAccTN(unsigned M, unsigned N, unsigned K, const float *A,
               unsigned LdA, const float *B, unsigned LdB, float *C,
               unsigned LdC);

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_GEMM_H
