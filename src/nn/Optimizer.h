//===- Optimizer.h - Gradient-based optimizers -------------------*- C++-*-===//
///
/// \file
/// Adam (used by PPO, as in the paper's training setup) and plain SGD,
/// plus gradient clipping by global norm for stable policy updates.
///
//===----------------------------------------------------------------------===//

#ifndef MLIRRL_NN_OPTIMIZER_H
#define MLIRRL_NN_OPTIMIZER_H

#include "nn/Tensor.h"

#include <map>
#include <vector>

namespace mlirrl {
namespace nn {

/// Zeroes gradients of all parameters.
void zeroGradients(const std::vector<Tensor> &Params);

/// Scales gradients so their global L2 norm is at most \p MaxNorm.
/// Returns the pre-clip norm.
double clipGradNorm(const std::vector<Tensor> &Params, double MaxNorm);

/// Adam optimizer with per-parameter first/second moment state.
class Adam {
public:
  explicit Adam(std::vector<Tensor> Params, double LearningRate = 1e-3,
                double Beta1 = 0.9, double Beta2 = 0.999,
                double Epsilon = 1e-8);

  /// Applies one update from the accumulated gradients.
  void step();

  /// Zeroes all parameter gradients.
  void zeroGrad();

  double getLearningRate() const { return LearningRate; }
  void setLearningRate(double Lr) { LearningRate = Lr; }
  const std::vector<Tensor> &getParams() const { return Params; }

  /// The serializable optimizer state (moments + step count), captured
  /// and restored by rl/Checkpoint so a resumed training's bias
  /// correction and moment decay continue bitwise.
  struct State {
    unsigned StepCount = 0;
    std::vector<std::vector<double>> FirstMoment, SecondMoment;
  };

  State getState() const {
    return State{StepCount, FirstMoment, SecondMoment};
  }

  /// Copy-free views for the checkpoint save path (getState deep-copies
  /// megabytes of moments; serialization only needs to read them).
  unsigned stepCount() const { return StepCount; }
  const std::vector<std::vector<double>> &firstMoments() const {
    return FirstMoment;
  }
  const std::vector<std::vector<double>> &secondMoments() const {
    return SecondMoment;
  }

  /// Restores a captured state. Returns false (and changes nothing)
  /// when the moment shapes do not match the parameter list.
  bool setState(State S) {
    if (S.FirstMoment.size() != Params.size() ||
        S.SecondMoment.size() != Params.size())
      return false;
    for (size_t I = 0; I < Params.size(); ++I)
      if (S.FirstMoment[I].size() != Params[I].size() ||
          S.SecondMoment[I].size() != Params[I].size())
        return false;
    StepCount = S.StepCount;
    FirstMoment = std::move(S.FirstMoment);
    SecondMoment = std::move(S.SecondMoment);
    return true;
  }

private:
  std::vector<Tensor> Params;
  double LearningRate, Beta1, Beta2, Epsilon;
  unsigned StepCount = 0;
  std::vector<std::vector<double>> FirstMoment, SecondMoment;
};

/// Plain SGD (used in tests as a reference).
class Sgd {
public:
  explicit Sgd(std::vector<Tensor> Params, double LearningRate = 1e-2);
  void step();
  void zeroGrad();

private:
  std::vector<Tensor> Params;
  double LearningRate;
};

} // namespace nn
} // namespace mlirrl

#endif // MLIRRL_NN_OPTIMIZER_H
